package ssbyz

import (
	"fmt"
	"time"

	"ssbyz/internal/check"
	"ssbyz/internal/indexed"
	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
	"ssbyz/internal/service"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Engine is the single entry point to the agreement service: n nodes
// under the paper's model (at most f Byzantine, n > 3f, delays bounded by
// d), multiplexing up to Sessions concurrent agreement invocations per
// General (the footnote-9 extension) on either runtime — the
// deterministic discrete-event simulator that verifies the paper's proved
// bounds exactly, or a loopback socket cluster where every message
// crosses the kernel's network stack. Construct with New and functional
// options, obtain Session handles for individual agreements or Log
// handles for the replicated-log service, then Run (scheduled, both
// runtimes) or Start (interactive, sockets).
type Engine struct {
	pp                 protocol.Params
	dSet               bool
	seed               int64
	delayMin, delayMax Ticks
	sessions           int
	queueLimit         int
	rt                 RuntimeSpec
	faulty             map[NodeID]Adversary
	newNode            func() protocol.Node
	corrupt            func(w *simnet.World)

	manual   []sim.Initiation
	open     map[NodeID][]*Session
	logs     map[NodeID]*Log
	logOrder []NodeID
	report   *ServiceReport

	cluster *nettrans.Cluster
	inits   []check.LiveInitiation
	stopped bool
}

// Option configures an Engine at construction; New applies the options
// and then validates the result against the paper's model (n > 3f among
// the checks), reporting violations as ErrBadParams.
type Option func(*Engine) error

// WithN sets the node count n; f defaults to ⌊(n−1)/3⌋, the paper's
// optimal resilience.
func WithN(n int) Option {
	return func(e *Engine) error { e.pp.N = n; return nil }
}

// WithF lowers the Byzantine fault bound below the optimal ⌊(n−1)/3⌋.
func WithF(f int) Option {
	return func(e *Engine) error { e.pp.F = f; return nil }
}

// WithD sets the paper's message delivery+processing bound d, in ticks
// (default 1000 on the simulator, 100 on the socket runtime); every Δ
// constant of Section 3 derives from it.
func WithD(d Ticks) Option {
	return func(e *Engine) error { e.pp.D = d; e.dSet = true; return nil }
}

// WithSeed drives all randomness; identical seeds reproduce simulator
// runs exactly — the determinism every check of the paper's proved
// Timeliness/IA bounds relies on.
func WithSeed(seed int64) Option {
	return func(e *Engine) error { e.seed = seed; return nil }
}

// WithDelayBounds bounds actual message delays (default [d/2, d]) — the
// δ of the paper's headline claim that rounds complete at actual network
// speed rather than the d worst case.
func WithDelayBounds(min, max Ticks) Option {
	return func(e *Engine) error { e.delayMin, e.delayMax = min, max; return nil }
}

// WithSessions sets the number of concurrent agreement sessions each
// General may run (default 1 — the plain protocol of Fig. 1). Above 1,
// correct nodes multiplex indexed invocations per footnote 9, the
// sending-validity criteria IG1–IG3 applying per session.
func WithSessions(s int) Option {
	return func(e *Engine) error {
		if s < 1 {
			return fmt.Errorf("%w: sessions must be ≥ 1, got %d", ErrBadParams, s)
		}
		e.sessions = s
		return nil
	}
}

// WithQueueLimit bounds each replicated log's pending-proposal buffer
// (default 4× the session count); arrivals beyond it are shed, keeping
// the client model open-loop so measured throughput reflects IG1's
// per-session Δ0 admission rate, not queueing back-pressure.
func WithQueueLimit(q int) Option {
	return func(e *Engine) error {
		if q < 1 {
			return fmt.Errorf("%w: queue limit must be ≥ 1, got %d", ErrBadParams, q)
		}
		e.queueLimit = q
		return nil
	}
}

// WithFaultyNode marks node id Byzantine, driven by the given adversary
// (nil for a crashed node); at most f = ⌊(n−1)/3⌋ nodes may be faulty.
func WithFaultyNode(id NodeID, adv Adversary) Option {
	return func(e *Engine) error { e.faulty[id] = adv; return nil }
}

// WithRuntime selects where the engine runs: SimRuntime (default) or
// SocketRuntime. Either way the same protocol state machines execute
// under the paper's bounded-delay axiom (messages arrive within d).
func WithRuntime(rt RuntimeSpec) Option {
	return func(e *Engine) error { e.rt = rt; return nil }
}

// RuntimeSpec names an execution substrate for the Engine. Both run the
// identical protocol state machines; the simulator verifies the paper's
// bounds in virtual time, the socket runtime demonstrates them wall-clock.
type RuntimeSpec struct {
	kind      int // 0 = simulator, 1 = sockets
	transport string
	tick      time.Duration
}

// SimRuntime is the deterministic discrete-event simulator: per-node
// drifting clocks, adversarial message timing, virtual real time — the
// substrate on which the paper's Timeliness/IA bounds are checked
// exactly.
func SimRuntime() RuntimeSpec { return RuntimeSpec{} }

// SocketRuntime is the loopback socket cluster: every message serialized
// by the wire codec and delivered through real UDP ("udp", the default —
// frames older than d are dropped, matching the paper's deliver-within-d
// model) or TCP ("tcp") sockets, with d expressed as ticks of the given
// wall-clock length (default 100µs).
func SocketRuntime(transport string, tick time.Duration) RuntimeSpec {
	return RuntimeSpec{kind: 1, transport: transport, tick: tick}
}

// New builds an Engine from functional options and validates it against
// the paper's model; violations (n ≤ 3f, malformed delays, …) come back
// wrapping ErrBadParams.
func New(opts ...Option) (*Engine, error) {
	e := &Engine{
		sessions: 1,
		faulty:   make(map[NodeID]Adversary),
		open:     make(map[NodeID][]*Session),
		logs:     make(map[NodeID]*Log),
	}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	if e.pp.N == 0 {
		e.pp.N = 7
	}
	if e.pp.F == 0 {
		e.pp.F = protocol.MaxFaults(e.pp.N)
	}
	if !e.dSet && e.pp.D == 0 {
		if e.rt.kind == 1 {
			e.pp.D = 100
		} else {
			e.pp.D = protocol.DefaultParams(e.pp.N).D
		}
	}
	if err := e.pp.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadParams, err)
	}
	if len(e.faulty) > e.pp.F {
		return nil, fmt.Errorf("%w: %d faulty nodes exceeds f=%d", ErrBadParams, len(e.faulty), e.pp.F)
	}
	return e, nil
}

// Params returns the resolved protocol constants (n, f, d and the derived
// Δ bounds of the paper's Section 3).
func (e *Engine) Params() Params { return e.pp }

// OpenSession claims one of General g's concurrent invocation slots
// (footnote 9) for individually proposed agreements. It fails with
// ErrSessionLimit once all Sessions slots of g are claimed, and with
// ErrBadParams if g is faulty or already serves a replicated Log (a
// General is either scripted or load-driven, never both — the pump owns
// every slot of a log-serving General).
func (e *Engine) OpenSession(g NodeID) (*Session, error) {
	if err := e.usableGeneral(g); err != nil {
		return nil, err
	}
	if _, ok := e.logs[g]; ok {
		return nil, fmt.Errorf("%w: General %d already serves a replicated log", ErrBadParams, g)
	}
	if len(e.open[g]) >= e.sessions {
		return nil, fmt.Errorf("%w: General %d has all %d sessions open", ErrSessionLimit, g, e.sessions)
	}
	s := &Session{eng: e, g: g, slot: len(e.open[g])}
	e.open[g] = append(e.open[g], s)
	return s, nil
}

// Log opens (or returns) General g's replicated log: proposals appended
// via the log commit through agreement sessions multiplexed across all of
// g's footnote-9 slots. Fails with ErrBadParams if g is faulty or has
// individually opened sessions.
func (e *Engine) Log(g NodeID) (*Log, error) {
	if l, ok := e.logs[g]; ok {
		return l, nil
	}
	if err := e.usableGeneral(g); err != nil {
		return nil, err
	}
	if len(e.open[g]) > 0 {
		return nil, fmt.Errorf("%w: General %d has individually opened sessions", ErrBadParams, g)
	}
	l := &Log{eng: e, g: g}
	e.logs[g] = l
	e.logOrder = append(e.logOrder, g)
	return l, nil
}

func (e *Engine) usableGeneral(g NodeID) error {
	if g < 0 || int(g) >= e.pp.N {
		return fmt.Errorf("%w: General %d out of range [0,%d)", ErrBadParams, g, e.pp.N)
	}
	if _, bad := e.faulty[g]; bad {
		return fmt.Errorf("%w: General %d is faulty", ErrBadParams, g)
	}
	return nil
}

// nodeFactory resolves the correct-node state machine: an explicit
// override (pulse layer, legacy concurrent slots), else indexed nodes
// when sessions are multiplexed, else the plain core node of Fig. 1.
func (e *Engine) nodeFactory() func() protocol.Node {
	if e.newNode != nil {
		return e.newNode
	}
	if e.sessions > 1 {
		s := e.sessions
		return func() protocol.Node { return indexed.NewNode(s) }
	}
	return nil // sim.Run / nettrans default to core.NewNode
}

// Run executes everything scheduled — session proposals and log traffic —
// to completion and returns the report. runFor bounds the virtual run
// (simulator; 0 derives a horizon that provably outlives the workload:
// Δ0-paced admissions plus the Δagr agreement bound) or the wall-clock
// drain deadline in ticks (sockets; 0 means 60s). Run memoizes: a second
// call returns the same report.
func (e *Engine) Run(runFor Ticks) (*ServiceReport, error) {
	if e.report != nil {
		return e.report, nil
	}
	if e.stopped {
		return nil, ErrStopped
	}
	if e.rt.kind == 1 {
		return e.runLive(runFor)
	}
	return e.runSim(runFor)
}

func (e *Engine) loads() []service.Workload {
	out := make([]service.Workload, 0, len(e.logOrder))
	for _, g := range e.logOrder {
		out = append(out, e.logs[g].workload())
	}
	return out
}

func (e *Engine) runSim(runFor Ticks) (*ServiceReport, error) {
	sc := sim.Scenario{
		Params:      e.pp,
		Seed:        e.seed,
		DelayMin:    e.delayMin,
		DelayMax:    e.delayMax,
		Faulty:      e.faulty,
		NewNode:     e.nodeFactory(),
		Initiations: e.manual,
		Corrupt:     e.corrupt,
	}
	loads := e.loads()
	var lastManual simtime.Real
	for _, init := range e.manual {
		if init.At > lastManual {
			lastManual = init.At
		}
	}
	if len(loads) == 0 {
		// Pure session workload: the legacy horizon — three Δagr
		// agreement spans past the last scheduled initiation.
		if runFor > 0 {
			sc.RunFor = runFor
		} else {
			sc.RunFor = simtime.Duration(lastManual) + 3*e.pp.DeltaAgr()
		}
		res, err := sim.Run(sc)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadParams, err)
		}
		e.report = &ServiceReport{Report: &Report{res: res}}
		return e.report, nil
	}
	if runFor > 0 {
		sc.RunFor = runFor
	}
	sres, err := service.RunSim(service.SimConfig{
		Scenario:   sc,
		Sessions:   e.sessions,
		QueueLimit: e.queueLimit,
		Loads:      loads,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadParams, err)
	}
	// Manual initiations may outlive the service horizon check; they ran
	// in the same world, so one report covers both.
	e.report = newServiceReport(&Report{res: sres.Res}, sres.Logs)
	return e.report, nil
}

func (e *Engine) runLive(runFor Ticks) (*ServiceReport, error) {
	if len(e.manual) > 0 || len(e.open) > 0 {
		return nil, fmt.Errorf("%w: scheduled sessions need the simulator runtime; use Start for interactive socket agreements", ErrBadParams)
	}
	loads := e.loads()
	if len(loads) == 0 {
		return nil, fmt.Errorf("%w: socket Run needs at least one replicated log", ErrBadParams)
	}
	tick := e.rt.tick
	if tick == 0 {
		tick = 100 * time.Microsecond
	}
	timeout := 60 * time.Second
	if runFor > 0 {
		timeout = time.Duration(runFor) * tick
	}
	lres, err := service.RunLive(service.LiveConfig{
		Params:     e.pp,
		Tick:       tick,
		Transport:  e.rt.transport,
		Sessions:   e.sessions,
		QueueLimit: e.queueLimit,
		Faulty:     e.faulty,
	}, loads, timeout)
	if err != nil {
		return nil, err
	}
	e.report = newServiceReport(&Report{res: lres.Res}, lres.Logs)
	return e.report, nil
}

// Start boots the socket cluster for interactive use — Session.Propose,
// Await, CheckLive — instead of a scheduled Run: real sockets enforcing
// the paper's bounded-delay axiom wall-clock. Callers must Stop.
func (e *Engine) Start() error {
	if e.rt.kind != 1 {
		return fmt.Errorf("%w: Start needs the socket runtime (WithRuntime(SocketRuntime(...)))", ErrBadParams)
	}
	if e.stopped {
		return ErrStopped
	}
	if e.cluster != nil {
		return nil
	}
	c, err := nettrans.NewCluster(nettrans.ClusterConfig{
		Params:    e.pp,
		Tick:      e.rt.tick,
		Transport: e.rt.transport,
		Faulty:    e.faulty,
		NewNode:   e.nodeFactory(),
	})
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadParams, err)
	}
	e.cluster = c
	return nil
}

// initiateLive starts one agreement on the running socket cluster,
// recording the traced initiation instant as the t0 of the Validity
// window CheckLive verifies.
func (e *Engine) initiateLive(g NodeID, slot int, v Value) error {
	if e.stopped {
		return ErrStopped
	}
	if e.cluster == nil {
		return fmt.Errorf("%w: engine not started", ErrBadParams)
	}
	t0, wire, err := e.cluster.InitiateIn(g, slot, v, 5*time.Second)
	if err != nil {
		return err
	}
	e.inits = append(e.inits, check.LiveInitiation{G: g, V: wire, T0: t0})
	return nil
}

// Await blocks until every node has returned for General g on the running
// socket cluster or the timeout elapses (Timeliness-3 bounds the return
// by Δagr past the invocation) and returns the unanimous decided value.
// Single-session engines only — with multiplexed sessions, returns are
// per slot and live in the trace.
func (e *Engine) Await(g NodeID, timeout time.Duration) (Value, error) {
	if e.stopped {
		return Bottom, ErrStopped
	}
	if e.cluster == nil {
		return Bottom, fmt.Errorf("%w: engine not started", ErrBadParams)
	}
	if e.sessions > 1 || e.newNode != nil {
		return Bottom, fmt.Errorf("%w: Await reads single-session returns; inspect the trace for multiplexed engines", ErrBadParams)
	}
	tick := e.rt.tick
	if tick == 0 {
		tick = 100 * time.Microsecond
	}
	return awaitUnanimous(e.pp.N, timeout, tick*10, func(i int, fn func(protocol.Node)) {
		e.cluster.DoWait(NodeID(i), fn)
	}, g)
}

// CheckLive runs the full property battery (Agreement, Timeliness, IA
// bounds, plus each initiation's Validity window) over the socket
// cluster's trace collected so far.
func (e *Engine) CheckLive() []Violation {
	if e.cluster == nil {
		return nil
	}
	res := e.cluster.Result(simtime.Duration(e.cluster.NowTicks()) + 1)
	lr := &check.LiveResult{Result: res}
	return lr.Battery(e.inits)
}

// Stop tears the socket cluster down (protocol timers, sockets, event
// loops — nothing runs afterwards, as the self-stabilizing timer traffic
// requires); idempotent, and a no-op for simulator engines.
func (e *Engine) Stop() {
	e.stopped = true
	if e.cluster != nil {
		e.cluster.Stop()
	}
}

// Session is a claimed concurrent-invocation slot of one General: a
// handle for proposing individual agreements, scheduled (simulator) or
// immediate (running socket cluster). The sending-validity criteria
// IG1–IG3 apply within the slot; distinct Sessions run concurrently
// (footnote 9).
type Session struct {
	eng  *Engine
	g    NodeID
	slot int
}

// General returns the General whose footnote-9 slot this session holds.
func (s *Session) General() NodeID { return s.g }

// Slot returns the footnote-9 invocation index this session occupies.
func (s *Session) Slot() int { return s.slot }

// ProposeAt schedules agreement on v at virtual time at (simulator
// runtime; the engine's Run executes the schedule). Refusals of the
// sending-validity criteria IG1–IG3 surface in the report's
// InitiationErrors.
func (s *Session) ProposeAt(v Value, at Ticks) error {
	if s.eng.report != nil || s.eng.stopped {
		return ErrStopped
	}
	if s.eng.rt.kind != 0 {
		return fmt.Errorf("%w: ProposeAt schedules virtual time; use Propose on a started socket engine", ErrBadParams)
	}
	s.eng.manual = append(s.eng.manual, sim.Initiation{
		At: simtime.Real(at), G: s.g, Value: v, Slot: s.slot,
	})
	return nil
}

// Propose initiates agreement on v now, in this session's slot, on the
// started socket cluster. The error reflects the sending-validity
// criteria IG1–IG3.
func (s *Session) Propose(v Value) error {
	if s.eng.rt.kind != 1 {
		return fmt.Errorf("%w: Propose is immediate (socket runtime); use ProposeAt on the simulator", ErrBadParams)
	}
	return s.eng.initiateLive(s.g, s.slot, v)
}

// Decisions returns the correct nodes' decide-returns for this session's
// agreements from a finished report, values with the footnote-9 slot
// namespace stripped.
func (s *Session) Decisions(r *Report) []Decision {
	if s.eng.sessions > 1 {
		return r.SlotDecisions(s.g, s.slot)
	}
	var out []Decision
	for _, d := range r.Decisions(s.g) {
		if d.Decided {
			out = append(out, d)
		}
	}
	return out
}

// Log is General g's replicated log: an ordered sequence of client
// proposals, each committed through one agreement, multiplexed over all
// of g's concurrent sessions. The committed order is the decision-anchor
// order rt(τG) — synchronized across correct nodes to within d (IA-1C) —
// so every correct observer reconstructs the same log.
type Log struct {
	eng      *Engine
	g        NodeID
	arrivals []simtime.Real
	payloads map[int]Value
}

// General returns the General serving this log; every entry becomes one
// ss-Byz-Agree invocation of it through a footnote-9 session slot.
func (l *Log) General() NodeID { return l.g }

// ProposeAt appends a client proposal arriving at the given time (ticks;
// virtual on the simulator, wall-ticks-since-start live). Arrivals must
// be appended in time order; the open-loop pump admits them against the
// bounded queue when the run executes, initiating each under IG1–IG3.
func (l *Log) ProposeAt(v Value, at Ticks) error {
	if l.eng.report != nil || l.eng.stopped {
		return ErrStopped
	}
	if n := len(l.arrivals); n > 0 && simtime.Real(at) < l.arrivals[n-1] {
		return fmt.Errorf("%w: arrival at %d before previous %d", ErrBadParams, at, l.arrivals[n-1])
	}
	if l.payloads == nil {
		l.payloads = make(map[int]Value)
	}
	l.payloads[len(l.arrivals)] = v
	l.arrivals = append(l.arrivals, simtime.Real(at))
	return nil
}

// Traffic describes open-loop synthetic client load: Count proposals
// arriving after Start with exponentially distributed gaps of mean
// MeanGap — a Poisson process, drawn deterministically from Seed. The
// interesting regimes sit around MeanGap ≈ Δ0/Sessions, where IG1's
// per-session admission rate saturates.
type Traffic struct {
	Seed    int64
	Start   Ticks
	MeanGap Ticks
	Count   int
}

// GenerateTraffic appends a Poisson arrival schedule (Traffic) to the
// log — the open-loop client whose offered rate IG1's Δ0 admission
// bound meters. Payloads default to "p<i>".
func (l *Log) GenerateTraffic(tr Traffic) error {
	if l.eng.report != nil || l.eng.stopped {
		return ErrStopped
	}
	if tr.Count <= 0 || tr.MeanGap <= 0 {
		return fmt.Errorf("%w: traffic needs positive Count and MeanGap", ErrBadParams)
	}
	start := simtime.Real(tr.Start)
	if n := len(l.arrivals); n > 0 && l.arrivals[n-1] > start {
		start = l.arrivals[n-1]
	}
	l.arrivals = append(l.arrivals, service.PoissonArrivals(tr.Seed, start, tr.MeanGap, tr.Count)...)
	return nil
}

func (l *Log) workload() service.Workload {
	payloads := l.payloads
	var payload func(int) Value
	if payloads != nil {
		payload = func(i int) Value {
			if v, ok := payloads[i]; ok {
				return v
			}
			return Value("p" + fmt.Sprint(i))
		}
	}
	return service.Workload{G: l.g, Arrivals: l.arrivals, Payload: payload}
}

// LogEntry is one client proposal and its fate — pending, initiated,
// committed (with its decide return and anchor instants), failed (abort
// or past the Δagr+8d protocol extent), or dropped by the open-loop
// bounded queue.
type LogEntry = service.Entry

// LogStats are one finished log's service-level numbers: commit and drop
// counts, the makespan, and per-entry commit latencies (arrival to the
// General's decide return, bounded by Timeliness-3's Δagr once
// initiated) in ticks.
type LogStats = service.Stats

// ServiceReport is a finished Engine run: the protocol-level Report
// (decisions, the Agreement/Timeliness/IA property battery) plus each
// replicated log's outcome.
type ServiceReport struct {
	*Report
	logs    map[NodeID]*LogReport
	ordered []*service.LogResult
}

func newServiceReport(r *Report, logs []*service.LogResult) *ServiceReport {
	sr := &ServiceReport{Report: r, logs: make(map[NodeID]*LogReport), ordered: logs}
	for _, lr := range logs {
		sr.logs[lr.G] = &LogReport{res: lr}
	}
	return sr
}

// LogReport is one General's finished replicated log: the total order
// its committed entries take (ascending IA-1C decision anchors) and the
// fate of every proposal.
type LogReport struct {
	res *service.LogResult
}

// Log returns General g's replicated-log outcome (its IA-1C-anchored
// total order and entry fates), or nil if g served none.
func (sr *ServiceReport) Log(g NodeID) *LogReport { return sr.logs[g] }

// CheckService runs the full per-session property battery over every
// log-serving General — Agreement, Timeliness, the IA bounds split per
// footnote-9 session, plus the Validity window of every committed entry
// anchored at its traced initiation instant.
func (sr *ServiceReport) CheckService() []Violation {
	return service.Battery(sr.res, sr.ordered)
}

// Committed returns the log in its total order — ascending decision
// anchor rt(τG), the per-agreement instant IA-1C synchronizes across
// correct nodes to within d.
func (lr *LogReport) Committed() []*LogEntry { return lr.res.Committed }

// Entries returns every proposal in arrival order, whatever its fate —
// committed, failed (decided ⊥ under a faulty General), or shed by the
// open-loop queue before any invocation.
func (lr *LogReport) Entries() []*LogEntry { return lr.res.Entries }

// Stats computes the log's service-level numbers (LogStats): commit
// counts, makespan, and Timeliness-bounded commit latencies.
func (lr *LogReport) Stats() LogStats { return lr.res.Stats() }
