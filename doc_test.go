package ssbyz_test

// This test is the godoc audit gate for the public facade: every exported
// identifier declared in the audited facade files (the Engine service
// surface included) must carry
// a doc comment, and that comment must state its paper provenance — the
// Block, figure, property, or timing constant of conf_podc_DaliotD06 the
// API surface realizes. The reproduction is only navigable if the facade
// says which part of the paper each knob corresponds to.

import (
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"regexp"
	"strings"
	"testing"
)

// auditedFiles are the facade files under the provenance requirement.
var auditedFiles = map[string]bool{
	"ssbyz.go":       true,
	"live.go":        true,
	"adversaries.go": true,
	"scenarios.go":   true,
	"engine.go":      true,
	"errors.go":      true,
}

// provenance matches the paper anchors a facade doc comment may cite:
// property names (IA-*, TPS-*, IG*, Timeliness, Validity, Agreement,
// Unforgeability, Uniqueness), protocol blocks and figures, the derived
// timing constants (Δ…, Φ, τG, d), the ⊥ value, or an explicit reference
// to the paper itself.
var provenance = regexp.MustCompile(
	`IA-\d|TPS-\d|IG\d|Block [A-Z]|Fig\. \d|Claim \d|Theorem \d|footnote[ -]\d` +
		`|Timeliness|Validity|Agreement|Unforgeability|Uniqueness` +
		`|self-stabiliz|Byzantine|Δ|Φ|τG|⊥|PODC|the paper|paper's`)

// TestTimeModelDocumented pins the §9 time-model documentation: code
// comments across clock/eventloop/nettrans cite "DESIGN.md §9", and the
// README advertises the deterministic virtual-time path, so both
// documents must keep the sections those citations point at.
func TestTimeModelDocumented(t *testing.T) {
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, anchor := range []string{
		"## §9 Time model",
		"§9 time model", // the numbered index at the top
		"AutoAdvance",   // the accelerated-soak driver idiom
		"Busy tokens",   // the quiescence rule that makes Fake deterministic
		"Frames()",      // the record half of record/replay
		"| V1 ",         // the §4 experiment rows riding on virtual time
		"| V2 ",
	} {
		if !strings.Contains(string(design), anchor) {
			t.Errorf("DESIGN.md lost its time-model anchor %q", anchor)
		}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, anchor := range []string{
		"## Virtual time: the live pipeline, deterministically",
		"`-virtual`", // the flag-table row (flags_test pins the full table)
		"Record/replay",
		"Accelerated soak",
	} {
		if !strings.Contains(string(readme), anchor) {
			t.Errorf("README.md lost its virtual-time anchor %q", anchor)
		}
	}
}

// TestAdversarialCampaignDocumented pins the §10 adversarial-campaign
// documentation the code cites ("DESIGN.md §10"): the attack-taxonomy
// section, the V3/L3 experiment rows, and the README's wire-attack and
// in-situ fault recipes and the -fault flag row.
func TestAdversarialCampaignDocumented(t *testing.T) {
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, anchor := range []string{
		"## §10 Adversarial live campaign",
		"§10 adversarial",   // the numbered index at the top
		"Attack taxonomy",   // the class → defense counter table
		"In-situ transient", // CorruptRunning against a RUNNING node
		"Δstb = 2Δreset",    // the recovery budget every surface asserts
		"`corrupt_frames`",  // the injected/defense counter vocabulary
		"| V3 ",             // the §4 experiment rows
		"| L3 ",
	} {
		if !strings.Contains(string(design), anchor) {
			t.Errorf("DESIGN.md lost its adversarial-campaign anchor %q", anchor)
		}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, anchor := range []string{
		"Byte-level attacks on the live wire", // recipe 6
		"In-situ transient fault",             // recipe 7
		"`-fault K`",                          // the flag-table row
		"FrameFault",                          // the daemon control order
	} {
		if !strings.Contains(string(readme), anchor) {
			t.Errorf("README.md lost its adversarial-campaign anchor %q", anchor)
		}
	}
}

// TestOpsLayerDocumented pins the §12 cluster-operations documentation
// the code cites ("DESIGN.md §12"): the control-plane endpoint table,
// the incarnation-epoch story, the V4/L4 experiment rows, and the
// README's fleet-operations walkthrough and rolling-replacement recipe.
func TestOpsLayerDocumented(t *testing.T) {
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, anchor := range []string{
		"## §12 Cluster operations layer",
		"§12 cluster operations layer", // the numbered index at the top
		"`GET /healthz`",               // the control-plane endpoint table
		"Ordered shutdown",             // the drain contract /events relies on
		"Incarnation epochs",           // epoch_unix_nano + incarnation
		"`epoch_drops`, checked before authentication",
		"Δstb = 2Δreset", // the roll budget every surface asserts
		"| V4 ",          // the §4 experiment rows
		"| L4 ",
	} {
		if !strings.Contains(string(design), anchor) {
			t.Errorf("DESIGN.md lost its operations-layer anchor %q", anchor)
		}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, anchor := range []string{
		"## Operating a fleet",
		"Rolling replacement as a transient fault", // recipe 8
		"`GET /healthz`",                           // the control-plane summary
		"ssbyz-cluster -n 4 -roll 2",               // flag-table rows are pinned by flags_test
	} {
		if !strings.Contains(string(readme), anchor) {
			t.Errorf("README.md lost its operations-layer anchor %q", anchor)
		}
	}
}

// TestWireRateDocumented pins the §11 wire-rate documentation the code
// cites ("DESIGN.md §11"): the batch-envelope section, the pump floor
// vocabulary, and the README's perf subsection and -legacy-wire flag
// row (flags_test pins the full table).
func TestWireRateDocumented(t *testing.T) {
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, anchor := range []string{
		"## §11 Wire-rate hot path",
		"§11 wire-rate hot path",    // the numbered index at the top
		"Batch envelope",            // the container-format table
		"`MaxBatchFrames`",          // the container cap the codec exports
		"sendmmsg",                  // the batched-syscall half
		"Sharded ingest",            // the receive half
		"udp_pump_msgs_per_sec_n16", // the artifact floor key the guard reads
		"-legacy-wire",              // the off-switch behind the differential
	} {
		if !strings.Contains(string(design), anchor) {
			t.Errorf("DESIGN.md lost its wire-rate anchor %q", anchor)
		}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, anchor := range []string{
		"### Wire rate: the live hot path",
		"`-legacy-wire`", // the flag-table row
		"BENCH_PR9_quick.json",
		"TestBatchedVsLegacyWireReportsIdentical",
	} {
		if !strings.Contains(string(readme), anchor) {
			t.Errorf("README.md lost its wire-rate anchor %q", anchor)
		}
	}
}

func TestFacadeGodocProvenance(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	astPkg, ok := pkgs["ssbyz"]
	if !ok {
		t.Fatalf("package ssbyz not found (got %v)", pkgs)
	}
	p := doc.New(astPkg, "ssbyz", 0)

	audited := func(node ast.Node) bool {
		return auditedFiles[fset.Position(node.Pos()).Filename]
	}
	check := func(kind, name, docText string, node ast.Node) {
		if !audited(node) {
			return
		}
		t.Helper()
		docText = strings.TrimSpace(docText)
		if docText == "" {
			t.Errorf("%s %s (%s) has no doc comment", kind, name, fset.Position(node.Pos()))
			return
		}
		if !provenance.MatchString(docText) {
			t.Errorf("%s %s: doc comment states no paper provenance (want a Block/property/constant reference): %q",
				kind, name, docText)
		}
	}

	for _, v := range p.Consts {
		check("const", strings.Join(v.Names, ","), v.Doc, v.Decl)
	}
	for _, v := range p.Vars {
		// Blank-named sentinels (var _ = …) are not exported API.
		if len(v.Names) == 1 && v.Names[0] == "_" {
			continue
		}
		check("var", strings.Join(v.Names, ","), v.Doc, v.Decl)
	}
	for _, f := range p.Funcs {
		check("func", f.Name, f.Doc, f.Decl)
	}
	for _, typ := range p.Types {
		// A grouped type declaration documents each spec individually;
		// go/doc surfaces the per-spec comment as typ.Doc already.
		check("type", typ.Name, typ.Doc, typ.Decl)
		for _, f := range typ.Funcs {
			check("func", f.Name, f.Doc, f.Decl)
		}
		for _, m := range typ.Methods {
			check("method", typ.Name+"."+m.Name, m.Doc, m.Decl)
		}
		for _, v := range typ.Consts {
			check("const", strings.Join(v.Names, ","), v.Doc, v.Decl)
		}
		for _, v := range typ.Vars {
			if len(v.Names) == 1 && v.Names[0] == "_" {
				continue
			}
			check("var", strings.Join(v.Names, ","), v.Doc, v.Decl)
		}
	}
}
