package ssbyz_test

import (
	"io"
	"runtime"
	"testing"

	"ssbyz"
	"ssbyz/internal/harness"
)

// One benchmark per experiment of DESIGN.md §4. Each iteration runs the
// experiment's full quick-mode sweep (the same code path whose tables
// `ssbyz-bench -o` records) and fails the benchmark on any property
// violation, so `go test -bench .` doubles as the reproduction gate.
// cmd/ssbyz-bench runs the same experiments at full scale.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var ex *harness.Experiment
	for _, e := range harness.All() {
		if e.ID == id {
			e := e
			ex = &e
			break
		}
	}
	if ex == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := ex.Run(harness.Options{Quick: true})
		if res.Violations != 0 {
			b.Fatalf("%s: %d property violations", id, res.Violations)
		}
	}
}

func BenchmarkE1ValidityLatency(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2AgreementSkew(b *testing.B)        { benchExperiment(b, "E2") }
func BenchmarkE3TerminationBound(b *testing.B)     { benchExperiment(b, "E3") }
func BenchmarkE4EarlyStopping(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5MessageDrivenSpeedup(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6Convergence(b *testing.B)          { benchExperiment(b, "E6") }
func BenchmarkE7FaultyGeneralAgreement(b *testing.B) {
	benchExperiment(b, "E7")
}
func BenchmarkE8InitiatorAccept(b *testing.B)    { benchExperiment(b, "E8") }
func BenchmarkE9MsgdBroadcast(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10MessageComplexity(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkF1LatencyVsN(b *testing.B)         { benchExperiment(b, "F1") }
func BenchmarkF2LatencyVsDelta(b *testing.B)     { benchExperiment(b, "F2") }
func BenchmarkF3RecoveryTimeline(b *testing.B)   { benchExperiment(b, "F3") }
func BenchmarkF4PulseSkew(b *testing.B)          { benchExperiment(b, "F4") }

// BenchmarkS1Scaling runs the large-n scaling workload (n up to 64) —
// the experiment the msglog/scheduler/delivery hot-path rework exists
// for (DESIGN.md §5).
func BenchmarkS1Scaling(b *testing.B) { benchExperiment(b, "S1") }

// BenchmarkS2Campaign runs the randomized adversarial campaign — the
// scenario engine generating and checking hundreds of adversarial
// scenarios against the full battery (DESIGN.md §6).
func BenchmarkS2Campaign(b *testing.B) { benchExperiment(b, "S2") }

// BenchmarkS3Service runs the replicated-log service throughput sweep —
// open-loop Poisson clients draining through footnote-9 concurrent
// sessions (DESIGN.md §8).
func BenchmarkS3Service(b *testing.B) { benchExperiment(b, "S3") }

// BenchmarkSingleAgreement measures the simulator's cost of one complete
// fault-free agreement (7 nodes, ~350 messages) — the unit of work every
// experiment above multiplies.
func BenchmarkSingleAgreement(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := ssbyz.NewSimulation(ssbyz.Config{N: 7, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		s.ScheduleAgreement(0, "bench", 2*s.Params().D)
		report, err := s.Run(0)
		if err != nil {
			b.Fatal(err)
		}
		if !report.Unanimous(0, "bench") {
			b.Fatal("agreement failed")
		}
	}
}

// BenchmarkSingleAgreementN25 is the same unit at n=25 (f=8).
func BenchmarkSingleAgreementN25(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := ssbyz.NewSimulation(ssbyz.Config{N: 25, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		s.ScheduleAgreement(0, "bench", 2*s.Params().D)
		report, err := s.Run(0)
		if err != nil {
			b.Fatal(err)
		}
		if !report.Unanimous(0, "bench") {
			b.Fatal("agreement failed")
		}
	}
}

// BenchmarkExperimentReport measures rendering the full quick-mode suite
// report (the cmd/ssbyz-bench hot path) strictly sequentially — the
// Workers=1 anchor BenchmarkSuiteParallel is compared against.
func BenchmarkExperimentReport(b *testing.B) {
	benchSuite(b, 1)
}

// BenchmarkSuiteParallel is the same quick-mode suite with cells fanned
// across GOMAXPROCS workers; the ratio to BenchmarkExperimentReport is the
// harness's parallel speedup on this machine (output is byte-identical).
func BenchmarkSuiteParallel(b *testing.B) {
	benchSuite(b, runtime.GOMAXPROCS(0))
}

func benchSuite(b *testing.B, workers int) {
	b.Helper()
	if testing.Short() {
		b.Skip("suite run is seconds-long")
	}
	for i := 0; i < b.N; i++ {
		violations, err := ssbyz.RunExperiments(io.Discard, ssbyz.ExperimentOptions{Quick: true, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if violations != 0 {
			b.Fatalf("%d property violations", violations)
		}
	}
}
