package main

// This test pins README.md's flag table to the actual flag set, the way
// cookbook_test.go pins the scenario recipes: the README's "Flags:"
// table and defineFlags drifted apart once (the table missed flags the
// binary had grown), so now any flag added, renamed, or removed without
// updating the table fails here.

import (
	"flag"
	"os"
	"regexp"
	"strings"
	"testing"
)

// readmeFlagNames extracts the flag names documented in README.md's
// ssbyz-bench flag table: rows shaped `| `-name ...` | meaning |` inside
// the "## Running the reproduction suite" section (ssbyz-cluster's table
// lives in its own section and is pinned by that command's flags_test).
func readmeFlagNames(t *testing.T) map[string]bool {
	t.Helper()
	blob, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	section := string(blob)
	if i := strings.Index(section, "## Running the reproduction suite"); i >= 0 {
		section = section[i:]
	} else {
		t.Fatal("README.md lost the \"## Running the reproduction suite\" section")
	}
	if i := strings.Index(section, "## Benchmarks"); i >= 0 {
		section = section[:i]
	}
	rowRe := regexp.MustCompile("(?m)^\\| `-([a-z0-9-]+)[^`]*` \\|")
	names := make(map[string]bool)
	for _, m := range rowRe.FindAllStringSubmatch(section, -1) {
		names[m[1]] = true
	}
	if len(names) == 0 {
		t.Fatal("no flag-table rows found in README.md — did the table move?")
	}
	return names
}

func TestREADMEFlagTableMatchesFlagSet(t *testing.T) {
	fs := flag.NewFlagSet("ssbyz-bench", flag.ContinueOnError)
	defineFlags(fs)
	documented := readmeFlagNames(t)
	defined := make(map[string]bool)
	fs.VisitAll(func(f *flag.Flag) { defined[f.Name] = true })

	for name := range defined {
		if !documented[name] {
			t.Errorf("flag -%s is defined but missing from README.md's flag table", name)
		}
	}
	for name := range documented {
		if !defined[name] {
			t.Errorf("README.md documents flag -%s which ssbyz-bench does not define", name)
		}
	}
}
