// Command ssbyz-bench runs the full reproduction suite — experiments
// E1–E10 and figures F1–F4 of DESIGN.md — and prints every regenerated
// table. The rows it emits are the ones recorded in EXPERIMENTS.md.
//
// Usage:
//
//	ssbyz-bench [-quick] [-seeds 20] [-o EXPERIMENTS-run.md]
//
// The full suite takes a few minutes; -quick shrinks the sweeps for a
// fast smoke run. The exit status is non-zero if any property violation
// is found (a faithful build reports zero).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ssbyz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ssbyz-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		seeds = flag.Int("seeds", 0, "override repetitions per configuration")
		out   = flag.String("o", "", "also write the report to this file")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintln(w, "# ss-Byz-Agree reproduction suite")
	fmt.Fprintln(w)
	violations, err := ssbyz.RunExperiments(w, ssbyz.ExperimentOptions{Quick: *quick, Seeds: *seeds})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "total property violations: %d\n", violations)
	if violations != 0 {
		return fmt.Errorf("%d property violations", violations)
	}
	return nil
}
