// Command ssbyz-bench runs the full reproduction suite — experiments
// E1–E10, figures F1–F4, ablation A1, the scaling workload S1, and the
// randomized adversarial campaign S2 of DESIGN.md §4 — and prints every
// regenerated table.
//
// Usage:
//
//	ssbyz-bench [-quick] [-seeds 20] [-parallel N] [-o report.md] [-json suite.json] [-live]
//	ssbyz-bench -replay spec.json
//	ssbyz-bench -cluster N [-transport udp|tcp] [-procs] [-node-bin path]
//	            [-agreements K] [-sessions C] [-cluster-d ticks] [-tick dur]
//	            [-virtual] [-fault K]
//
// -replay skips the suite and re-runs one scenario spec (as exported by
// the S2 or V3 campaigns for any property-violating scenario, or written
// by hand — see DESIGN.md §6, §10) against the full property battery, on
// whatever runtime the spec names: the simulator (default), the
// deterministic virtual-time cluster ("virtual" — wire codec, byte-level
// attacks, scripted in-situ transient faults), or real loopback sockets
// ("live"). Replay of sim/virtual specs is exact: the spec carries every
// bit of entropy the run consumes, so the verdict reproduces
// deterministically. The exit status is non-zero when the replayed
// scenario violates any of the paper's proved properties.
//
// -cluster skips the suite and runs a live loopback cluster over real
// sockets (DESIGN.md §7): N nodes, in-process by default or one
// ssbyz-node daemon per node with -procs (the daemon binary is found via
// -node-bin, next to ssbyz-bench, or on PATH). It runs K agreements
// (-agreements, default 1, rotating the General), collects the trace
// (over a control socket in -procs mode), and feeds it through the full
// internal/check property battery; the exit status is non-zero if any
// node fails to decide or any paper bound is violated. -transport picks
// UDP (datagram-per-message, deadline drops — the paper-faithful
// default) or TCP (lossless stream baseline); -cluster-d sets d in ticks
// (default 100) and -tick the wall length of one tick (default 100µs),
// so the default d is 10ms. -sessions C with C > 1 switches the cluster
// to service mode: the K agreements arrive at once as a replicated-log
// burst at General 0 and drain through C concurrent footnote-9 sessions
// (in-process only; incompatible with -procs). -virtual runs the cluster
// under virtual time: the same pipeline on a fake clock over the
// deterministic in-memory wire (DESIGN.md §9), so the run is exactly
// reproducible and -tick is a virtual unit rather than a wall sleep
// (in-process only; incompatible with -procs). -fault K corrupts node
// K's RUNNING protocol state after the first agreement — in place
// through its event loop in-process, or as a FrameFault order over the
// daemon's control socket with -procs — plants a phantom mark, requires
// the node to re-stabilize within the paper's Δstb = 2Δreset budget,
// then probes the recovered cluster with a fresh agreement; the trace is
// judged in pre-fault and post-recovery halves, since the paper's
// properties are only promised outside the transient window
// (DESIGN.md §10).
//
// -live appends experiments L1 (live loopback latency/throughput sweep
// over the same socket transport), L2 (the replicated-log service over
// loopback UDP at session concurrency 1 and 8), L3 (byte-level
// attack classes and in-situ transient-fault recovery against real
// sockets), and L4 (the cluster operations campaign: scale-up and a
// rolling replacement under committed traffic, with the Δstb
// re-stabilization and old-incarnation replay-rejection verdicts) to
// the suite run and its JSON artifact. Their numbers are
// wall-clock measurements — unlike every other experiment they vary run
// to run, so they only run when asked.
//
// The full suite takes many minutes single-threaded (S1 stretches to
// n = 256); -parallel fans the independent simulation cells across N
// workers (default GOMAXPROCS) with byte-identical output, and -quick
// shrinks the sweeps for a fast smoke run (S1 still sweeps to n = 128 —
// only its seed count shrinks and the n = 256 point is dropped). -json
// additionally writes the machine-readable suite (the BENCH_*.json
// artifact of the perf trajectory); every table in it is deterministic,
// and the intentionally machine-varying fields — wall_ms, peak_alloc_mb,
// and S1's per-n cell_wall_ms — record what the run cost (DESIGN.md §5).
// The exit status is non-zero if any property violation is found (a
// faithful build reports zero).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ssbyz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ssbyz-bench:", err)
		os.Exit(1)
	}
}

// benchFlags is the resolved flag set. It is defined through defineFlags
// so the README flag table can be pinned against it by flags_test.go.
type benchFlags struct {
	quick    *bool
	seeds    *int
	parallel *int
	out      *string
	jsonOut  *string
	replay   *string
	live     *bool
	legacyW  *bool

	cluster    *int
	transport  *string
	procs      *bool
	nodeBin    *string
	agreements *int
	sessions   *int
	clusterD   *int64
	tick       *time.Duration
	virtual    *bool
	fault      *int
}

// defineFlags registers every ssbyz-bench flag on fs. The definitions
// here are the single source of truth; README.md's flag table is checked
// against them by flags_test.go.
func defineFlags(fs *flag.FlagSet) *benchFlags {
	return &benchFlags{
		quick:    fs.Bool("quick", false, "shrink sweeps for a fast smoke run"),
		seeds:    fs.Int("seeds", 0, "override repetitions per configuration"),
		parallel: fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulation cells (1 = sequential)"),
		out:      fs.String("o", "", "also write the report to this file"),
		jsonOut:  fs.String("json", "", "write the machine-readable suite to this file"),
		replay:   fs.String("replay", "", "replay a scenario spec JSON file against the property battery on the runtime it names (skips the suite)"),
		live:     fs.Bool("live", false, "append experiments L1, L2, L3, and L4 (live loopback sweeps, adversarial cells, and the ops campaign; wall-clock numbers) to the suite"),
		legacyW:  fs.Bool("legacy-wire", false, "run live-runtime clusters with frame coalescing off (one datagram per frame); reports must be byte-identical to the coalesced wire"),

		cluster:    fs.Int("cluster", 0, "run a live loopback cluster of this many nodes over real sockets (skips the suite)"),
		transport:  fs.String("transport", "udp", "-cluster socket transport: udp (deadline drops) or tcp (lossless)"),
		procs:      fs.Bool("procs", false, "-cluster: one ssbyz-node process per node instead of in-process"),
		nodeBin:    fs.String("node-bin", "", "-cluster -procs: path to the ssbyz-node binary (default: sibling of ssbyz-bench, then PATH)"),
		agreements: fs.Int("agreements", 1, "-cluster: number of agreements to run (Generals rotate)"),
		sessions:   fs.Int("sessions", 1, "-cluster: concurrent agreement sessions per node; >1 runs the agreements as a replicated-log burst through the service layer"),
		clusterD:   fs.Int64("cluster-d", 100, "-cluster: the paper's d in ticks"),
		tick:       fs.Duration("tick", 100*time.Microsecond, "-cluster: wall-clock length of one tick"),
		virtual:    fs.Bool("virtual", false, "-cluster: run under virtual time on a fake clock over the deterministic in-memory wire (in-process only; the run is byte-reproducible)"),
		fault:      fs.Int("fault", -1, "-cluster: corrupt this RUNNING node's protocol state in place after the first agreement (in-process, or over the daemon control socket with -procs) and require re-stabilization within Δstb = 2Δreset before a probe agreement"),
	}
}

func run() error {
	f := defineFlags(flag.CommandLine)
	flag.Parse()
	var (
		quick    = f.quick
		seeds    = f.seeds
		parallel = f.parallel
		out      = f.out
		jsonOut  = f.jsonOut
		replay   = f.replay
		live     = f.live
		legacyW  = f.legacyW

		cluster    = f.cluster
		transport  = f.transport
		procs      = f.procs
		nodeBin    = f.nodeBin
		agreements = f.agreements
		sessions   = f.sessions
		clusterD   = f.clusterD
		tick       = f.tick
	)

	if *replay != "" {
		return replayScenario(*replay)
	}
	if *cluster > 0 {
		return runCluster(clusterOpts{
			n:          *cluster,
			transport:  *transport,
			procs:      *procs,
			nodeBin:    *nodeBin,
			agreements: *agreements,
			sessions:   *sessions,
			d:          ssbyz.Ticks(*clusterD),
			tick:       *tick,
			virtual:    *f.virtual,
			fault:      *f.fault,
		})
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintln(w, "# ss-Byz-Agree reproduction suite")
	fmt.Fprintln(w)
	suite, err := ssbyz.RunExperimentsSuite(w, ssbyz.ExperimentOptions{
		Quick:      *quick,
		Seeds:      *seeds,
		Workers:    *parallel,
		LegacyWire: *legacyW,
	})
	if err != nil {
		return err
	}
	if *live {
		for _, run := range []func(io.Writer, ssbyz.ExperimentOptions) (*ssbyz.ExperimentResult, error){
			ssbyz.RunLiveExperiment, ssbyz.RunLiveServiceExperiment,
			ssbyz.RunAdversarialLiveExperiment, ssbyz.RunOpsLiveExperiment,
		} {
			res, err := run(w, ssbyz.ExperimentOptions{Quick: *quick, LegacyWire: *legacyW})
			if err != nil {
				return err
			}
			suite.Results = append(suite.Results, res)
			suite.Violations += res.Violations
		}
	}
	fmt.Fprintf(w, "total property violations: %d\n", suite.Violations)
	if *jsonOut != "" {
		blob, err := json.MarshalIndent(suite, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	if suite.Violations != 0 {
		return fmt.Errorf("%d property violations", suite.Violations)
	}
	return nil
}

// replayScenario re-runs one exported scenario spec with the full battery
// and prints the deterministic verdict.
func replayScenario(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep, err := ssbyz.ReplayScenario(blob)
	if err != nil {
		return err
	}
	sp := rep.Spec
	runtime := sp.Runtime
	if runtime == "" {
		runtime = ssbyz.RuntimeSim
	}
	fmt.Printf("replaying scenario: runtime=%s n=%d f=%d seed=%d adversaries=%d conditions=%d initiations=%d faults=%d\n",
		runtime, sp.N, sp.Params().F, sp.Seed, len(sp.Adversaries), len(sp.Conditions), len(sp.Script), len(sp.Faults))
	for _, init := range sp.Script {
		decided := len(rep.Report.DecisionsFor(init.G, init.Value))
		fmt.Printf("  G%d initiated %q at t=%d: %d correct decide returns\n",
			init.G, init.Value, init.At, decided)
	}
	if rep.Live != nil {
		s := rep.Live.Stats
		fmt.Printf("  frames: sent=%d received=%d\n", s.Sent, s.Received)
		fmt.Printf("  attacks injected: corrupt=%d replay=%d forge=%d dup=%d reorder-held=%d\n",
			s.CorruptFrames, s.ReplayFrames, s.ForgeFrames, s.DupFrames, s.ReorderHolds)
		fmt.Printf("  defenses fired: decode=%d epoch=%d auth=%d late=%d dup=%d clamps=%d rate-deferrals=%d\n",
			s.DecodeDrops, s.EpochDrops, s.AuthDrops, s.LateDrops, s.DupDrops, s.Clamps, s.RateDeferrals)
		for _, rs := range rep.Live.Restab {
			if rs.Ticks < 0 {
				fmt.Printf("  fault at t=%d on node %d: NOT re-stabilized within Δstb = %d ticks\n",
					rs.At, rs.Node, rs.Budget)
			} else {
				fmt.Printf("  fault at t=%d on node %d: re-stabilized in %d ticks (Δstb budget %d)\n",
					rs.At, rs.Node, rs.Ticks, rs.Budget)
			}
		}
	} else {
		fmt.Printf("  total messages: %d\n", rep.Report.Messages())
	}
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Println("  VIOLATION", v)
		}
		return fmt.Errorf("%d property violations reproduced", len(rep.Violations))
	}
	fmt.Println("scenario replayed clean: every checked paper bound holds")
	return nil
}
