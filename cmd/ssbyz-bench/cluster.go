package main

// This file is the `-cluster` mode: spawn an n-node loopback cluster over
// real sockets — in-process (n NetNodes, one per goroutine set, each
// behind its own UDP/TCP socket) or multi-process (n ssbyz-node daemons
// booted from a generated manifest, traces collected over a control
// socket) — run agreements, and feed the collected trace through the
// full internal/check property battery. The exit status is non-zero if
// any node fails to decide or any paper bound is violated, which makes
// the mode CI's live smoke gate.

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"ssbyz/internal/check"
	"ssbyz/internal/clock"
	"ssbyz/internal/core"
	"ssbyz/internal/metrics"
	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
	"ssbyz/internal/service"
	"ssbyz/internal/simtime"
	"ssbyz/internal/transient"
	"ssbyz/internal/wire"
)

// clusterOpts carries the -cluster flag group.
type clusterOpts struct {
	n          int
	transport  string
	procs      bool
	nodeBin    string
	agreements int
	sessions   int
	d          simtime.Duration
	tick       time.Duration
	// virtual runs the cluster on a fake clock over the deterministic
	// in-memory wire: same codec and acceptance pipeline, byte-identical
	// runs (DESIGN.md §9). In-process only.
	virtual bool
	// fault, when ≥ 0, corrupts that RUNNING node's protocol state after
	// the first agreement — in place through its event loop in-process,
	// or over the daemon's control socket as a FrameFault with -procs —
	// and the run measures re-stabilization against Δstb = 2Δreset before
	// probing with a fresh agreement.
	fault int
}

// virtualSeed is the fixed wire seed of -virtual runs: the CLI's output
// must be reproducible, so the one entropy source is pinned.
const virtualSeed = 1

// runCluster executes the -cluster mode end to end.
func runCluster(o clusterOpts) error {
	if o.n < 4 {
		return fmt.Errorf("-cluster needs n ≥ 4 (n > 3f with f ≥ 1), got %d", o.n)
	}
	if o.agreements < 1 {
		o.agreements = 1
	}
	pp := protocol.DefaultParams(o.n)
	pp.D = o.d
	if err := pp.Validate(); err != nil {
		return err
	}
	if o.virtual && o.procs {
		return fmt.Errorf("-virtual needs the in-process cluster; drop -procs")
	}
	mode := "in-process"
	if o.procs {
		mode = "multi-process"
	}
	if o.virtual {
		mode = "in-process (virtual time)"
	}
	fmt.Printf("cluster: n=%d f=%d transport=%s d=%d ticks (%v) tick=%v mode=%s agreements=%d\n",
		pp.N, pp.F, o.transport, pp.D, time.Duration(pp.D)*o.tick, o.tick, mode, o.agreements)

	if o.fault >= 0 {
		if o.fault >= pp.N {
			return fmt.Errorf("-fault node %d outside committee [0,%d)", o.fault, pp.N)
		}
		if o.sessions > 1 {
			return fmt.Errorf("-fault needs the agreement cluster; drop -sessions")
		}
		if o.agreements >= pp.N {
			// The phantom mark is planted under General n-1; the rotation
			// must never script that identity or the mark is unobservable.
			return fmt.Errorf("-fault needs -agreements < n (the mark General n-1 must stay unscripted)")
		}
	}
	if o.sessions > 1 {
		if o.procs {
			return fmt.Errorf("-sessions > 1 needs the in-process service pump; drop -procs")
		}
		return runClusterService(o, pp)
	}
	if o.procs {
		return runClusterProcs(o, pp)
	}
	return runClusterInProcess(o, pp)
}

// runClusterService is the -sessions > 1 form of -cluster: instead of K
// sequential initiate/await rounds, all K values arrive at once as a
// replicated-log burst at General 0 and drain through the configured
// number of footnote-9 concurrent sessions, the way the Engine's Log
// facade drives a live cluster. The verdict is the same battery gate:
// every entry must commit and every per-session paper bound must hold.
func runClusterService(o clusterOpts, pp protocol.Params) error {
	arrivals := make([]simtime.Real, o.agreements)
	for i := range arrivals {
		arrivals[i] = simtime.Real(2 * pp.D)
	}
	cfg := service.LiveConfig{
		Params:     pp,
		Tick:       o.tick,
		Transport:  o.transport,
		Sessions:   o.sessions,
		QueueLimit: o.agreements,
	}
	if o.virtual {
		cfg.Clock = clock.NewFake(time.Time{})
		cfg.Seed = virtualSeed
	}
	start := time.Now()
	res, err := service.RunLive(cfg, []service.Workload{{G: 0, Arrivals: arrivals}}, 120*time.Second)
	if err != nil {
		return err
	}
	wallS := time.Since(start).Seconds()
	st := res.Logs[0].Stats()
	fmt.Printf("traffic: %s\n", fmtStats(res.Stats))
	fmt.Printf("log: committed=%d/%d failed=%d sessions=%d wall=%.2fs (%.1f agr/sec)\n",
		st.Committed, o.agreements, st.Failed, o.sessions, wallS,
		float64(st.Committed)/wallS)
	if st.Committed != o.agreements {
		return fmt.Errorf("only %d/%d entries committed", st.Committed, o.agreements)
	}
	if vs := service.Battery(res.Res, res.Logs); len(vs) > 0 {
		for _, v := range vs {
			fmt.Println("  VIOLATION", v)
		}
		return fmt.Errorf("%d property violations", len(vs))
	}
	fmt.Println("verdict: all entries committed; every checked paper bound holds per session")
	return nil
}

// verdict checks the collected trace against the battery and prints the
// outcome; it returns an error when anything is violated or undecided.
func verdict(res *check.LiveResult, inits []check.LiveInitiation, pp protocol.Params, d float64) error {
	violations := res.Battery(inits)
	for _, in := range inits {
		lats := res.DecideLatencies(in.G, in.V, in.T0)
		if len(lats) != len(res.Result.Correct) {
			violations = append(violations, check.Violation{
				Property: "Live",
				Detail: fmt.Sprintf("G%d %q: only %d/%d correct nodes decided",
					in.G, in.V, len(lats), len(res.Result.Correct)),
			})
			continue
		}
		s := metrics.Summarize(lats)
		fmt.Printf("agreement G%d %q: %d/%d decided, latency p50=%.2fd max=%.2fd\n",
			in.G, in.V, len(lats), len(res.Result.Correct), s.P50/d, s.Max/d)
	}
	fmt.Printf("battery: %d violations over %d trace events\n", len(violations), res.Result.Rec.Len())
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Println("  VIOLATION", v)
		}
		return fmt.Errorf("%d live property violations", len(violations))
	}
	fmt.Println("cluster run clean: every checked paper bound holds over the live trace")
	return nil
}

// ---- in-process ----

// fmtStats renders the full per-class condition/attack counter vector as
// "name=value" pairs — the same schema the daemons stream as FrameStats.
func fmtStats(s nettrans.Stats) string {
	vec := s.Counters()
	parts := make([]string, len(vec))
	for i, name := range nettrans.CounterNames {
		parts[i] = fmt.Sprintf("%s=%d", name, vec[i])
	}
	return strings.Join(parts, " ")
}

func runClusterInProcess(o clusterOpts, pp protocol.Params) error {
	ccfg := nettrans.ClusterConfig{
		Params: pp, Tick: o.tick, Transport: o.transport,
	}
	agrBudget := time.Duration(pp.DeltaAgr())*o.tick + 5*time.Second
	if o.virtual {
		ccfg.Clock = clock.NewFake(time.Time{})
		ccfg.Seed = virtualSeed
		// The budget is virtual ticks now, not wall clock: no slack for
		// host scheduling is needed, only protocol time.
		agrBudget = time.Duration(pp.DeltaAgr()+20*pp.D) * o.tick
	}
	c, err := nettrans.NewCluster(ccfg)
	if err != nil {
		return err
	}
	defer c.Stop()

	runAgreement := func(i int) (check.LiveInitiation, error) {
		g := protocol.NodeID(i % pp.N)
		v := protocol.Value(fmt.Sprintf("v%d", i))
		t0, err := c.Initiate(g, v, 5*time.Second)
		if err != nil {
			return check.LiveInitiation{}, fmt.Errorf("agreement %d: %w", i, err)
		}
		if done := c.AwaitDecisions(g, v, agrBudget); done != pp.N {
			return check.LiveInitiation{}, fmt.Errorf("agreement %d: only %d/%d nodes decided within %v (stats %+v)",
				i, done, pp.N, agrBudget, c.Stats())
		}
		return check.LiveInitiation{G: g, V: v, T0: t0}, nil
	}

	var inits []check.LiveInitiation
	for i := 0; i < o.agreements; i++ {
		init, err := runAgreement(i)
		if err != nil {
			return err
		}
		inits = append(inits, init)
		if i == 0 && o.fault >= 0 {
			break
		}
	}

	if o.fault < 0 {
		fmt.Printf("traffic: %s\n", fmtStats(c.Stats()))
		res := c.Result(simtime.Duration(c.NowTicks()) + 1)
		return verdict(&check.LiveResult{Result: res}, inits, pp, float64(pp.D))
	}

	// Mid-run transient fault: corrupt the RUNNING node in place through
	// its event loop (the same transient.CorruptRunning call the daemon's
	// control socket triggers), measure the re-stabilization of the
	// planted phantom mark against Δstb = 2Δreset, then probe with the
	// remaining agreements and judge the pre- and post-window trace
	// halves separately — the paper's properties are only promised
	// outside the fault window.
	faultNode := protocol.NodeID(o.fault)
	markG := protocol.NodeID(pp.N - 1)
	// Flush the first agreement's tail before the cut: decisions are
	// awaited above but the return events trail them, and the pre-fault
	// verdict below must see a complete agreement.
	if c.Virtual() != nil {
		c.StepUntil(func() bool { return false }, simtime.Duration(c.NowTicks())+8*pp.D)
	} else {
		time.Sleep(time.Duration(8*pp.D) * o.tick)
	}
	faultTick := c.NowTicks()
	c.DoWait(faultNode, func(n protocol.Node) {
		transient.CorruptRunning(n.(*core.Node), pp, transient.Config{
			Seed:  virtualSeed,
			Marks: []protocol.NodeID{markG},
		}, simtime.Local(c.NowTicks()))
	})
	fmt.Printf("fault: node %d state corrupted in place at tick %d (severity 1000‰)\n", faultNode, faultTick)

	markReturned := func() bool {
		returned := false
		c.DoWait(faultNode, func(n protocol.Node) {
			returned, _, _ = n.(*core.Node).Result(markG)
		})
		return returned
	}
	if !markReturned() {
		return fmt.Errorf("fault: the phantom mark was not planted on node %d", faultNode)
	}
	deadline := faultTick + simtime.Real(pp.DeltaStb())
	advanceUntil := func(target simtime.Real, stop func() bool) {
		if fake := c.Virtual(); fake != nil {
			steps := 0
			c.StepUntil(func() bool {
				steps++
				return steps%32 == 0 && stop != nil && stop()
			}, simtime.Duration(target))
			return
		}
		for c.NowTicks() < target {
			if stop != nil && stop() {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	advanceUntil(deadline, func() bool { return !markReturned() })
	if markReturned() {
		return fmt.Errorf("node %d did not re-stabilize within Δstb = %d ticks", faultNode, pp.DeltaStb())
	}
	restab := c.NowTicks() - faultTick
	fmt.Printf("fault: node %d re-stabilized in %d ticks (Δstb budget %d)\n", faultNode, restab, pp.DeltaStb())
	advanceUntil(deadline, nil)

	postStart := c.NowTicks()
	var postInits []check.LiveInitiation
	for i := 1; i < o.agreements; i++ {
		init, err := runAgreement(i)
		if err != nil {
			return err
		}
		postInits = append(postInits, init)
	}
	if len(postInits) == 0 {
		// Always probe after recovery, even when -agreements is 1: the
		// point of the fault run is proving the system still agrees.
		init, err := runAgreement(1)
		if err != nil {
			return err
		}
		postInits = append(postInits, init)
	}
	fmt.Printf("traffic: %s\n", fmtStats(c.Stats()))

	res := c.Result(simtime.Duration(c.NowTicks()) + 1)
	var pre, post []protocol.TraceEvent
	for _, ev := range res.Rec.Events() {
		switch {
		case ev.RT < faultTick:
			pre = append(pre, ev)
		case ev.RT >= postStart:
			post = append(post, ev)
		}
	}
	fmt.Printf("pre-fault window (%d events):\n", len(pre))
	if err := verdict(&check.LiveResult{Result: nettrans.BuildResult(pp, pre, res.Correct, simtime.Duration(faultTick))},
		inits, pp, float64(pp.D)); err != nil {
		return err
	}
	fmt.Printf("post-recovery window (%d events):\n", len(post))
	return verdict(&check.LiveResult{Result: nettrans.BuildResult(pp, post, res.Correct, simtime.Duration(c.NowTicks())+1)},
		postInits, pp, float64(pp.D))
}

// ---- multi-process ----

func runClusterProcs(o clusterOpts, pp protocol.Params) error {
	nodeBin, err := resolveNodeBin(o.nodeBin)
	if err != nil {
		return err
	}

	// Reserve one loopback port per node by binding and releasing; the
	// window between release and the daemon's re-bind is the usual
	// ephemeral-port race, acceptable for a loopback smoke topology.
	addrs := make([]string, pp.N)
	for i := range addrs {
		s, err := nettrans.ListenSocket(o.transport, "127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[i] = s.Addr()
		s.Close()
	}

	// The epoch sits far enough out that every daemon has parsed the
	// manifest and bound its socket before tick 0.
	epoch := time.Now().Add(500 * time.Millisecond)
	t0 := simtime.Real(5 * pp.D)
	runFor := int64(t0) + int64(2*pp.DeltaAgr()) + int64(10*pp.D)

	// With -fault the run stretches past the transient window: the fault
	// order lands after the first agreement settles, the daemons get the
	// full Δstb = 2Δreset budget to re-stabilize, and a second General
	// then probes that the recovered cluster still agrees.
	var (
		faultAt   simtime.Real
		postAt    simtime.Real
		probeNode protocol.NodeID
		vpost     = protocol.Value("vpost")
	)
	if o.fault >= 0 {
		faultAt = t0 + simtime.Real(pp.DeltaAgr()) + simtime.Real(10*pp.D)
		postAt = faultAt + simtime.Real(pp.DeltaStb()) + simtime.Real(2*pp.D)
		// The probe General must be neither node 0 (already the General of
		// v0) nor n-1 (the phantom-mark identity the daemon's fault watcher
		// observes); n ≥ 4 always leaves 1 or 2 free.
		probeNode = 1
		if o.fault == 1 {
			probeNode = 2
		}
		runFor = int64(postAt) + int64(2*pp.DeltaAgr()) + int64(10*pp.D)
	}
	m := nettrans.Manifest{
		N: pp.N, F: pp.F, D: pp.D,
		TickUS:        o.tick.Microseconds(),
		Transport:     o.transport,
		EpochUnixNano: epoch.UnixNano(),
		Nodes:         addrs,
	}
	dir, err := os.MkdirTemp("", "ssbyz-cluster-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	manifestPath := filepath.Join(dir, "cluster.json")
	if err := os.WriteFile(manifestPath, m.Marshal(), 0o644); err != nil {
		return err
	}

	collector, err := newTraceCollector()
	if err != nil {
		return err
	}
	defer collector.close()

	v := protocol.Value("v0")
	procs := make([]*exec.Cmd, pp.N)
	for i := 0; i < pp.N; i++ {
		args := []string{
			"-manifest", manifestPath,
			"-id", fmt.Sprint(i),
			"-control", collector.addr(),
			"-run-for", fmt.Sprint(runFor),
		}
		if i == 0 {
			args = append(args, "-initiate", string(v), "-initiate-at", fmt.Sprint(int64(t0)))
		}
		if o.fault >= 0 && protocol.NodeID(i) == probeNode {
			args = append(args, "-initiate", string(vpost), "-initiate-at", fmt.Sprint(int64(postAt)))
		}
		cmd := exec.Command(nodeBin, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			killAll(procs)
			return fmt.Errorf("spawn node %d: %w", i, err)
		}
		procs[i] = cmd
	}
	if o.fault >= 0 {
		// Deliver the fault order over the control socket at wall time
		// epoch + faultAt ticks — the daemon corrupts its RUNNING state in
		// place and self-reports its re-stabilization.
		go func() {
			time.Sleep(time.Until(epoch.Add(time.Duration(faultAt) * o.tick)))
			if err := collector.sendFault(protocol.NodeID(o.fault),
				wire.FaultCmd{Seed: virtualSeed, SeverityPermille: 1000}); err != nil {
				fmt.Fprintf(os.Stderr, "fault order to node %d: %v\n", o.fault, err)
			}
		}()
	}
	var procErrs []error
	for i, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			procErrs = append(procErrs, fmt.Errorf("node %d: %w", i, err))
		}
	}
	if len(procErrs) > 0 {
		return errors.Join(procErrs...)
	}
	events := collector.drain()
	fmt.Printf("collected %d trace events from %d daemons\n", len(events), pp.N)
	fmt.Printf("traffic: %s\n", fmtStats(collector.totalStats()))

	correct := make([]protocol.NodeID, pp.N)
	for i := range correct {
		correct[i] = protocol.NodeID(i)
	}
	realT0, ok := findInitiate(events, 0, v)
	if !ok {
		return fmt.Errorf("the General's initiation never appeared in the collected trace")
	}

	if o.fault < 0 {
		res := nettrans.BuildResult(pp, events, correct, simtime.Duration(runFor)+1)
		return verdict(&check.LiveResult{Result: res},
			[]check.LiveInitiation{{G: 0, V: v, T0: realT0}}, pp, float64(pp.D))
	}

	// With -fault the trace is judged in two halves around the transient
	// window [faultAt, postAt): the paper's properties are promised before
	// the fault and again once Δstb has elapsed, not during recovery.
	var pre, post []protocol.TraceEvent
	for _, ev := range events {
		switch {
		case ev.RT < faultAt:
			pre = append(pre, ev)
		case ev.RT >= postAt:
			post = append(post, ev)
		}
	}
	postT0, ok := findInitiate(post, probeNode, vpost)
	if !ok {
		return fmt.Errorf("the post-recovery probe initiation (G%d %q) never appeared in the collected trace", probeNode, vpost)
	}
	fmt.Printf("pre-fault window (%d events):\n", len(pre))
	if err := verdict(&check.LiveResult{Result: nettrans.BuildResult(pp, pre, correct, simtime.Duration(faultAt))},
		[]check.LiveInitiation{{G: 0, V: v, T0: realT0}}, pp, float64(pp.D)); err != nil {
		return err
	}
	fmt.Printf("post-recovery window (%d events):\n", len(post))
	return verdict(&check.LiveResult{Result: nettrans.BuildResult(pp, post, correct, simtime.Duration(runFor)+1)},
		[]check.LiveInitiation{{G: probeNode, V: vpost, T0: postT0}}, pp, float64(pp.D))
}

func findInitiate(events []protocol.TraceEvent, g protocol.NodeID, v protocol.Value) (simtime.Real, bool) {
	for _, ev := range events {
		if ev.Kind == protocol.EvInitiate && ev.Node == g && ev.M == v {
			return ev.RT, true
		}
	}
	return 0, false
}

func killAll(procs []*exec.Cmd) {
	for _, cmd := range procs {
		if cmd != nil && cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}
}

// resolveNodeBin locates the ssbyz-node binary: the explicit flag, a
// sibling of this executable, or PATH.
func resolveNodeBin(flagValue string) (string, error) {
	if flagValue != "" {
		return flagValue, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "ssbyz-node")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if p, err := exec.LookPath("ssbyz-node"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("cannot find ssbyz-node (build it with `go build ./cmd/ssbyz-node` and pass -node-bin, or put it next to ssbyz-bench)")
}

// traceCollector accepts the daemons' control connections and decodes
// their trace streams. The connections are bidirectional: each is
// registered under the node id its FrameHello announces so sendFault can
// address a specific RUNNING daemon with a FrameFault order, and the
// FrameStats vector each daemon streams at shutdown is kept so the run
// can print the cluster-wide per-class condition/attack counters.
type traceCollector struct {
	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	events []protocol.TraceEvent
	conns  map[protocol.NodeID]net.Conn
	stats  map[protocol.NodeID]nettrans.Stats
}

func newTraceCollector() (*traceCollector, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	c := &traceCollector{
		ln:    ln,
		conns: make(map[protocol.NodeID]net.Conn),
		stats: make(map[protocol.NodeID]nettrans.Stats),
	}
	go c.acceptLoop()
	return c, nil
}

// sendFault writes a FrameFault order on the named daemon's control
// connection; the daemon corrupts its RUNNING protocol state in place on
// receipt (the in-situ transient-fault injection of DESIGN.md §10).
func (c *traceCollector) sendFault(id protocol.NodeID, cmd wire.FaultCmd) error {
	c.mu.Lock()
	conn := c.conns[id]
	c.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("no control connection from node %d", id)
	}
	frame := wire.AppendFrame(nil, wire.Frame{
		Kind:    wire.FrameFault,
		From:    id,
		Payload: wire.AppendFaultCmd(nil, cmd),
	})
	_, err := conn.Write(frame)
	return err
}

// totalStats sums the per-daemon shutdown counter vectors.
func (c *traceCollector) totalStats() nettrans.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total nettrans.Stats
	for _, s := range c.stats {
		total.Add(s)
	}
	return total
}

func (c *traceCollector) addr() string { return c.ln.Addr().String() }

func (c *traceCollector) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			c.readLoop(conn)
		}()
	}
}

func (c *traceCollector) readLoop(conn net.Conn) {
	var buf []byte
	chunk := make([]byte, 32<<10)
	for {
		n, err := conn.Read(chunk)
		if n > 0 {
			buf = append(buf, chunk[:n]...)
			for {
				f, consumed, derr := wire.DecodeFrame(buf)
				if errors.Is(derr, wire.ErrTruncated) {
					break
				}
				if derr != nil {
					return // corrupt control stream; drop the connection
				}
				buf = buf[consumed:]
				switch f.Kind {
				case wire.FrameHello:
					c.mu.Lock()
					c.conns[f.From] = conn
					c.mu.Unlock()
				case wire.FrameStats:
					if vec, _, err := wire.DecodeCounters(f.Payload); err == nil {
						c.mu.Lock()
						c.stats[f.From] = nettrans.StatsFromCounters(vec)
						c.mu.Unlock()
					}
				case wire.FrameTrace:
					if ev, _, err := wire.DecodeTraceEvent(f.Payload); err == nil {
						c.mu.Lock()
						c.events = append(c.events, ev)
						c.mu.Unlock()
					}
				}
			}
		}
		if err != nil {
			return
		}
	}
}

// drain waits for the open streams to finish and returns the events.
func (c *traceCollector) drain() []protocol.TraceEvent {
	c.ln.Close()
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events
}

func (c *traceCollector) close() {
	c.ln.Close()
	c.wg.Wait()
}
