// Command ssbyz-cluster orchestrates a fleet of ss-Byz-Agree nodes
// through a full operations campaign: boot → scale-up → rolling
// replacement → drain, with replicated-log traffic committing at
// General 0 the whole time. It is the cluster-level counterpart of
// ssbyz-node: the daemon exposes the per-node control plane
// (internal/ops REST API), and this command drives it.
//
// Usage:
//
//	ssbyz-cluster -n 4 -roll 2                 # in-process fleet, wall clock
//	ssbyz-cluster -n 4 -roll 2 -virtual        # deterministic virtual time
//	ssbyz-cluster -n 4 -roll 2 -procs          # one ssbyz-node process per
//	                                           # node, driven over REST
//	ssbyz-cluster -spec campaign.json          # declarative campaign spec
//
// The campaign spec (internal/ops.ClusterSpec) extends the cluster
// manifest with a workload (seed, sessions, entries) and a membership
// schedule: scale steps boot slots held back at start, a roll step
// replaces a running node — stop, bump its incarnation epoch on every
// peer, reboot on the same address — and the drain step ends the run
// once traffic has committed and every roll has re-stabilized. The
// quick form (-n/-roll) synthesizes the canonical schedule: scale the
// last slot at 10d, roll at 22d, drain at 30d.
//
// The verdicts are the paper's: the rolled node must re-stabilize
// within Δstb = 2Δreset (a roll is a transient fault to a
// self-stabilizing protocol — DESIGN.md §12), a frame replayed from its
// previous incarnation must be rejected by every peer (epoch_drops),
// and the workload must commit across the roll. The exit status is
// non-zero if any verdict fails.
//
// In-process modes run the campaign on internal/ops.RunCampaign (the
// same engine as experiments V4/L4); -virtual puts it on a fake clock
// over the deterministic in-memory wire, where the whole campaign —
// schedule, traffic, roll, report — is byte-reproducible. -procs spawns
// one ssbyz-node per committee slot with -ops enabled and orchestrates
// entirely over the REST API: health polls, initiations, epoch bumps,
// the replay probe, and the ordered drain.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/ops"
	"ssbyz/internal/simtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ssbyz-cluster:", err)
		os.Exit(1)
	}
}

// clusterFlags is the resolved flag set, defined through defineFlags so
// the README flag table can be pinned against it by flags_test.go.
type clusterFlags struct {
	spec      *string
	n         *int
	roll      *int
	d         *int64
	tick      *time.Duration
	transport *string
	sessions  *int
	entries   *int
	seed      *int64
	virtual   *bool
	procs     *bool
	nodeBin   *string
	jsonOut   *string
}

// defineFlags registers every ssbyz-cluster flag on fs; README.md's
// flag table is checked against these definitions.
func defineFlags(fs *flag.FlagSet) *clusterFlags {
	return &clusterFlags{
		spec:      fs.String("spec", "", "campaign spec JSON (ops.ClusterSpec: manifest + workload + membership schedule); overrides the quick form"),
		n:         fs.Int("n", 4, "quick form: committee size (slot n-1 boots late as the scale-up)"),
		roll:      fs.Int("roll", 2, "quick form: node to replace mid-campaign (stop, epoch bump, reboot)"),
		d:         fs.Int64("d", 250, "quick form: the paper's d in ticks"),
		tick:      fs.Duration("tick", 100*time.Microsecond, "wall-clock length of one tick"),
		transport: fs.String("transport", "udp", "socket transport for wall-clock fleets: udp (deadline drops) or tcp (lossless)"),
		sessions:  fs.Int("sessions", 1, "concurrent agreement sessions per node (footnote-9 slots) for the traffic pump"),
		entries:   fs.Int("entries", 0, "replicated-log entries the pump commits during the campaign (0 = the spec's default)"),
		seed:      fs.Int64("seed", 7, "campaign seed: wire delays (virtual) and workload arrivals"),
		virtual:   fs.Bool("virtual", false, "run under virtual time on a fake clock over the deterministic in-memory wire (in-process only; byte-reproducible)"),
		procs:     fs.Bool("procs", false, "one ssbyz-node process per slot, orchestrated over the REST ops API (udp only)"),
		nodeBin:   fs.String("node-bin", "", "-procs: path to the ssbyz-node binary (default: sibling of ssbyz-cluster, then PATH)"),
		jsonOut:   fs.String("json", "", "also write the campaign report as JSON to this file"),
	}
}

func run() error {
	f := defineFlags(flag.CommandLine)
	flag.Parse()

	spec, err := loadSpec(f)
	if err != nil {
		return err
	}
	if *f.procs {
		if *f.virtual {
			return fmt.Errorf("-procs and -virtual are mutually exclusive (processes run on the wall clock)")
		}
		return runProcs(f, spec)
	}

	cfg := ops.CampaignConfig{
		Spec:      spec,
		Transport: *f.transport,
		Tick:      *f.tick,
	}
	if *f.virtual {
		cfg.Clock = clock.NewFake(time.Time{})
	}
	rep, err := ops.RunCampaign(cfg)
	if err != nil {
		return err
	}
	printReport(rep, *f.virtual, *f.tick)
	if *f.jsonOut != "" {
		shallow := *rep
		shallow.Result = nil
		blob, err := json.MarshalIndent(shallow, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*f.jsonOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	return judgeReport(rep)
}

// loadSpec resolves the campaign spec: the -spec file, or the quick
// form synthesized from -n/-roll/-d, with -sessions/-entries/-seed
// overrides applied either way.
func loadSpec(f *clusterFlags) (ops.ClusterSpec, error) {
	var spec ops.ClusterSpec
	if *f.spec != "" {
		blob, err := os.ReadFile(*f.spec)
		if err != nil {
			return spec, err
		}
		spec, err = ops.ParseSpec(blob)
		if err != nil {
			return spec, err
		}
	} else {
		spec = ops.QuickSpec(*f.n, *f.roll, simtime.Duration(*f.d), *f.seed)
	}
	if *f.sessions > 1 {
		spec.Sessions = *f.sessions
	}
	if *f.entries > 0 {
		spec.Entries = *f.entries
	}
	if *f.spec == "" {
		spec.Seed = *f.seed
	}
	return spec, spec.Validate()
}

// printReport renders the campaign for a human. Under -virtual every
// number below is deterministic: two runs print identical bytes.
func printReport(rep *ops.CampaignReport, virtual bool, tick time.Duration) {
	mode := "wall"
	if virtual {
		mode = "virtual"
	}
	pp := rep.Params
	fmt.Printf("campaign done (%s time): n=%d f=%d d=%d, horizon %d ticks\n",
		mode, pp.N, pp.F, pp.D, rep.Horizon)
	fmt.Printf("workload: committed=%d failed=%d dropped=%d\n",
		rep.Committed, rep.Failed, rep.Dropped)
	for _, sc := range rep.Scales {
		fmt.Printf("scale: node %d up at tick %d\n", sc.Node, sc.At)
	}
	for _, rr := range rep.Rolls {
		restab := "never"
		if rr.RestabTicks >= 0 {
			restab = fmt.Sprintf("%d ticks (%.3f Δstb)", rr.RestabTicks,
				float64(rr.RestabTicks)/float64(pp.DeltaStb()))
			if !virtual {
				restab += fmt.Sprintf(" = %v", (time.Duration(rr.RestabTicks) * tick).Round(time.Millisecond))
			}
		}
		fmt.Printf("roll: node %d at tick %d → incarnation %d, re-stabilized in %s, replay rejected by %d/%d peers\n",
			rr.Node, rr.At, rr.Incarnation, restab, rr.EpochDropPeers, pp.N-1)
	}
	health := make([]string, len(rep.Health))
	for i, st := range rep.Health {
		health[i] = fmt.Sprintf("%d:%s", i, st)
	}
	fmt.Printf("health: %v\n", health)
	types := make([]string, 0, len(rep.EventCounts))
	for k := range rep.EventCounts {
		types = append(types, k)
	}
	sort.Strings(types)
	for _, k := range types {
		fmt.Printf("events: %s=%d\n", k, rep.EventCounts[k])
	}
	fmt.Printf("traffic: sent=%d received=%d epoch_drops=%d late_drops=%d\n",
		rep.Stats.Sent, rep.Stats.Received, rep.Stats.EpochDrops, rep.Stats.LateDrops)
}

// judgeReport turns the report into the exit verdict: workload
// committed, every roll within Δstb with the replay rejected everywhere,
// final fleet health stabilized.
func judgeReport(rep *ops.CampaignReport) error {
	var errs []string
	if rep.Committed == 0 || rep.Failed != 0 || rep.Dropped != 0 {
		errs = append(errs, fmt.Sprintf("workload: committed=%d failed=%d dropped=%d",
			rep.Committed, rep.Failed, rep.Dropped))
	}
	for _, rr := range rep.Rolls {
		if rr.RestabTicks < 0 || !rr.WithinDeltaStb {
			errs = append(errs, fmt.Sprintf("roll of node %d missed the Δstb=%d budget (restab=%d)",
				rr.Node, rep.Params.DeltaStb(), rr.RestabTicks))
		}
		if rr.EpochDropPeers != rep.Params.N-1 {
			errs = append(errs, fmt.Sprintf("old-incarnation replay rejected by %d/%d peers",
				rr.EpochDropPeers, rep.Params.N-1))
		}
	}
	for id, st := range rep.Health {
		if st != ops.StateStabilized {
			errs = append(errs, fmt.Sprintf("final health[%d] = %q", id, st))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("campaign verdicts failed:\n  %s", joinLines(errs))
	}
	fmt.Println("campaign verdicts: all passed")
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
