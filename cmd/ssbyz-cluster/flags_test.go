package main

// This test pins README.md's ssbyz-cluster flag table (the one in the
// "## Operating a fleet" section) to the actual flag set, the same
// discipline as cmd/ssbyz-bench/flags_test.go: a flag added, renamed,
// or removed without updating the table fails here.

import (
	"flag"
	"os"
	"regexp"
	"strings"
	"testing"
)

// readmeFlagNames extracts the flag names documented in README.md's
// "## Operating a fleet" section: rows shaped `| `-name ...` | meaning |`.
func readmeFlagNames(t *testing.T) map[string]bool {
	t.Helper()
	blob, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	section := string(blob)
	if i := strings.Index(section, "## Operating a fleet"); i >= 0 {
		section = section[i:]
	} else {
		t.Fatal("README.md lost the \"## Operating a fleet\" section")
	}
	if i := strings.Index(section[1:], "\n## "); i >= 0 {
		section = section[:i+1]
	}
	rowRe := regexp.MustCompile("(?m)^\\| `-([a-z0-9-]+)[^`]*` \\|")
	names := make(map[string]bool)
	for _, m := range rowRe.FindAllStringSubmatch(section, -1) {
		names[m[1]] = true
	}
	if len(names) == 0 {
		t.Fatal("no flag-table rows found in README.md's fleet section — did the table move?")
	}
	return names
}

func TestREADMEFlagTableMatchesFlagSet(t *testing.T) {
	fs := flag.NewFlagSet("ssbyz-cluster", flag.ContinueOnError)
	defineFlags(fs)
	documented := readmeFlagNames(t)
	defined := make(map[string]bool)
	fs.VisitAll(func(f *flag.Flag) { defined[f.Name] = true })

	for name := range defined {
		if !documented[name] {
			t.Errorf("flag -%s is defined but missing from README.md's ssbyz-cluster flag table", name)
		}
	}
	for name := range documented {
		if !defined[name] {
			t.Errorf("README.md documents flag -%s which ssbyz-cluster does not define", name)
		}
	}
}
