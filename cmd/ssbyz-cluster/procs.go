package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"ssbyz/internal/nettrans"
	"ssbyz/internal/ops"
	"ssbyz/internal/protocol"
)

// fleet is the orchestrator's view of the running processes: one daemon
// per booted committee slot, addressed over its REST ops API.
type fleet struct {
	nodeBin  string
	manifest string
	dir      string
	epoch    time.Time
	tick     time.Duration
	addrs    []string // protocol (UDP) addresses, by node id

	mu      sync.Mutex
	procs   map[int]*exec.Cmd
	clients map[int]*ops.Client
	incs    []uint64
}

// runProcs executes the campaign with one ssbyz-node process per slot,
// orchestrated entirely over REST: boot the fleet (scale targets held
// back), pump initiations at General 0, execute the schedule — scale
// spawns the held slot, roll stops a daemon over POST /stop, bumps its
// incarnation on every peer over POST /bump-epoch, reboots it with
// -incarnation, offers the old life's replay probe, and asserts
// /healthz stabilized within the wall-clock Δstb budget — then drains
// every daemon through its ordered shutdown.
func runProcs(f *clusterFlags, spec ops.ClusterSpec) error {
	if *f.transport != nettrans.TransportUDP {
		return fmt.Errorf("-procs needs -transport udp (the replay probe is a raw datagram)")
	}
	nodeBin, err := resolveNodeBin(*f.nodeBin)
	if err != nil {
		return err
	}
	pp := spec.Manifest.Params()
	tick := *f.tick
	entries := spec.Entries
	if entries <= 0 {
		entries = 8
	}

	// Rebuild the wire-level manifest for real processes: reserved
	// loopback ports and a wall epoch far enough out for every daemon to
	// bind before tick 0. The spec's committee, schedule, and workload
	// carry over unchanged.
	addrs := make([]string, pp.N)
	for i := range addrs {
		s, err := nettrans.ListenSocket(nettrans.TransportUDP, "127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[i] = s.Addr()
		s.Close()
	}
	epoch := time.Now().Add(750 * time.Millisecond)
	m := nettrans.Manifest{
		N: pp.N, F: pp.F, D: pp.D,
		TickUS:        tick.Microseconds(),
		Transport:     nettrans.TransportUDP,
		EpochUnixNano: epoch.UnixNano(),
		Nodes:         addrs,
	}
	dir, err := os.MkdirTemp("", "ssbyz-cluster-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	manifestPath := filepath.Join(dir, "cluster.json")
	if err := os.WriteFile(manifestPath, m.Marshal(), 0o644); err != nil {
		return err
	}

	fl := &fleet{
		nodeBin: nodeBin, manifest: manifestPath, dir: dir,
		epoch: epoch, tick: tick, addrs: addrs,
		procs:   make(map[int]*exec.Cmd),
		clients: make(map[int]*ops.Client),
		incs:    make([]uint64, pp.N),
	}
	defer fl.killAll()

	// Boot everything except the scale targets.
	held := make(map[int]bool)
	for _, id := range spec.ScaleTargets() {
		held[int(id)] = true
	}
	for id := 0; id < pp.N; id++ {
		if held[id] {
			continue
		}
		if err := fl.spawn(id); err != nil {
			return err
		}
	}
	fmt.Printf("fleet up: %d/%d daemons (scale targets held: %d), epoch %s\n",
		pp.N-len(held), pp.N, len(held), epoch.Format(time.RFC3339Nano))

	// Stream node 0's /events (the NDJSON libpod shape) for the log;
	// decides are counted rather than printed.
	evCtx, evCancel := context.WithCancel(context.Background())
	defer evCancel()
	go func() {
		_ = fl.client(0).Events(evCtx, func(ev ops.Event) {
			if ev.Type != "decide" {
				fmt.Printf("event: %s node=%d tick=%d %v\n", ev.Type, ev.Node, ev.Tick, ev.Attrs)
			}
		})
	}()

	// The traffic pump: REST initiations at General 0, spaced 15d apart
	// (past the paper's Δ0 = 13d sending-validity spacing for distinct
	// values), starting at 5d.
	go func() {
		for i := 0; i < entries; i++ {
			fl.sleepUntilTick(int64(5*pp.D) + int64(i)*int64(15*pp.D))
			if err := fl.client(0).Initiate(0, fmt.Sprintf("e%d", i)); err != nil {
				fmt.Fprintf(os.Stderr, "initiate e%d: %v\n", i, err)
			}
		}
	}()

	// Wall-clock budget for one re-stabilization: the paper's Δstb in
	// real time, plus slack for process start-up.
	stbBudget := time.Duration(pp.DeltaStb())*tick + 10*time.Second
	var verdictErrs []string

	for _, st := range spec.Steps {
		fl.sleepUntilTick(st.At)
		switch st.Op {
		case ops.OpScale:
			if err := fl.spawn(st.Node); err != nil {
				return fmt.Errorf("scale node %d: %w", st.Node, err)
			}
			fmt.Printf("scale: node %d up at tick %d\n", st.Node, fl.nowTicks())

		case ops.OpRoll:
			rollStart := time.Now()
			fmt.Printf("roll: replacing node %d at tick %d\n", st.Node, fl.nowTicks())
			if err := fl.roll(st.Node); err != nil {
				return fmt.Errorf("roll node %d: %w", st.Node, err)
			}
			// The Δstb assertion: the replacement must report stabilized —
			// a decide observed at its new incarnation — within the budget,
			// while the pump keeps committing.
			h, err := fl.client(st.Node).AwaitStabilized(stbBudget)
			if err != nil {
				verdictErrs = append(verdictErrs, fmt.Sprintf("rolled node %d: %v", st.Node, err))
			} else {
				fmt.Printf("roll: node %d re-stabilized in %v (incarnation %d, state %q)\n",
					st.Node, time.Since(rollStart).Round(time.Millisecond), h.Incarnation, h.State)
			}
			// The replay verdict: every peer's epoch_drops counter must move
			// for the probe forged from the old incarnation.
			if err := fl.awaitEpochDrops(st.Node); err != nil {
				verdictErrs = append(verdictErrs, err.Error())
			}

		case ops.OpDrain:
			// Wait for the workload: General 0 observes one decide per entry.
			if err := fl.awaitDecides(0, int64(entries), stbBudget); err != nil {
				verdictErrs = append(verdictErrs, err.Error())
			}
		}
	}

	// Ordered drain: every daemon closes its event bus (clean /events
	// EOF), finishes in-flight handlers, flushes, and exits.
	evCancel()
	fmt.Printf("drain: stopping %d daemons at tick %d\n", len(fl.running()), fl.nowTicks())
	for _, id := range fl.running() {
		if err := fl.client(id).Drain(); err != nil {
			verdictErrs = append(verdictErrs, fmt.Sprintf("drain node %d: %v", id, err))
		}
	}
	for _, id := range fl.running() {
		if err := fl.waitExit(id, 10*time.Second); err != nil {
			verdictErrs = append(verdictErrs, fmt.Sprintf("node %d exit: %v", id, err))
		}
	}

	if len(verdictErrs) > 0 {
		return fmt.Errorf("campaign verdicts failed:\n  %s", joinLines(verdictErrs))
	}
	fmt.Println("campaign verdicts: all passed")
	return nil
}

// spawn boots one daemon for slot id at its current incarnation and
// waits for its REST address to land in the -ops-addr-file.
func (fl *fleet) spawn(id int) error {
	fl.mu.Lock()
	inc := fl.incs[id]
	peerIncs := make([]string, len(fl.incs))
	anyInc := false
	for i, v := range fl.incs {
		peerIncs[i] = fmt.Sprint(v)
		if v != 0 {
			anyInc = true
		}
	}
	fl.mu.Unlock()

	addrFile := filepath.Join(fl.dir, fmt.Sprintf("ops-%d-%d.addr", id, inc))
	args := []string{
		"-manifest", fl.manifest,
		"-id", fmt.Sprint(id),
		"-ops", "127.0.0.1:0",
		"-ops-addr-file", addrFile,
		"-incarnation", fmt.Sprint(inc),
	}
	if anyInc {
		args = append(args, "-peer-incarnations", strings.Join(peerIncs, ","))
	}
	cmd := exec.Command(fl.nodeBin, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawn node %d: %w", id, err)
	}

	// The daemon binds its ops listener after sleeping to the shared
	// epoch, so the address file can take until past tick 0 to appear.
	deadline := time.Until(fl.epoch) + 15*time.Second
	addr, err := awaitFile(addrFile, deadline)
	if err != nil {
		_ = cmd.Process.Kill()
		return fmt.Errorf("node %d ops address: %w", id, err)
	}
	fl.mu.Lock()
	fl.procs[id] = cmd
	fl.clients[id] = ops.NewClient(addr)
	fl.mu.Unlock()
	return nil
}

// roll replaces one running daemon: REST /stop, wait for exit, bump the
// slot's incarnation on every peer over /bump-epoch, reboot it at the
// new incarnation, and offer the old incarnation's replay probe to each
// peer as a raw datagram.
func (fl *fleet) roll(id int) error {
	if err := fl.client(id).Stop(); err != nil {
		return fmt.Errorf("stop: %w", err)
	}
	if err := fl.waitExit(id, 10*time.Second); err != nil {
		return err
	}
	fl.mu.Lock()
	fl.incs[id]++
	newInc := fl.incs[id]
	fl.mu.Unlock()
	for _, peer := range fl.running() {
		if err := fl.client(peer).BumpEpoch(id, newInc); err != nil {
			return fmt.Errorf("bump-epoch on node %d: %w", peer, err)
		}
	}
	if err := fl.spawn(id); err != nil {
		return err
	}
	// The replay probe: one frame stamped with the PREVIOUS incarnation's
	// epoch id, sent from an anonymous socket. Every peer must reject it
	// at the first acceptance-pipeline step (epoch_drops) — the epoch
	// check runs before authentication, by design.
	probe := ops.ReplayProbe(uint64(fl.epoch.UnixNano())+newInc-1, protocol.NodeID(id), fl.nowTicks())
	for _, peer := range fl.running() {
		if peer == id {
			continue
		}
		conn, err := net.Dial("udp", fl.addrs[peer])
		if err != nil {
			return err
		}
		_, _ = conn.Write(probe)
		conn.Close()
	}
	return nil
}

// awaitEpochDrops polls every peer's /metrics until its epoch_drops
// counter is non-zero — the cluster-wide proof the rolled node's old
// incarnation is dead.
func (fl *fleet) awaitEpochDrops(rolled int) error {
	deadline := time.Now().Add(5 * time.Second)
	pending := make(map[int]bool)
	for _, id := range fl.running() {
		if id != rolled {
			pending[id] = true
		}
	}
	for len(pending) > 0 {
		for id := range pending {
			mtr, err := fl.client(id).Metrics()
			if err == nil && mtr.Counters["epoch_drops"] > 0 {
				delete(pending, id)
			}
		}
		if len(pending) == 0 {
			break
		}
		if time.Now().After(deadline) {
			ids := make([]int, 0, len(pending))
			for id := range pending {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			return fmt.Errorf("peers %v never counted an epoch_drop for the old-incarnation replay", ids)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("roll: old-incarnation replay rejected by all %d peers (epoch_drops > 0)\n", len(fl.running())-1)
	return nil
}

// awaitDecides polls a node's /metrics until it has observed at least
// want decides (one per committed workload entry at its General).
func (fl *fleet) awaitDecides(id int, want int64, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	var last int64
	for {
		mtr, err := fl.client(id).Metrics()
		if err == nil {
			last = mtr.Decides
			if last >= want {
				fmt.Printf("workload: node %d observed %d decides (want %d)\n", id, last, want)
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("workload: node %d observed %d/%d decides within %v", id, last, want, budget)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (fl *fleet) client(id int) *ops.Client {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.clients[id]
}

// running lists booted slots, ascending.
func (fl *fleet) running() []int {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	out := make([]int, 0, len(fl.procs))
	for id := range fl.procs {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// waitExit waits for slot id's process to exit and forgets it; the
// process is killed if it outlives the timeout.
func (fl *fleet) waitExit(id int, timeout time.Duration) error {
	fl.mu.Lock()
	cmd := fl.procs[id]
	delete(fl.procs, id)
	delete(fl.clients, id)
	fl.mu.Unlock()
	if cmd == nil {
		return fmt.Errorf("node %d is not running", id)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		<-done
		return fmt.Errorf("node %d did not exit within %v (killed)", id, timeout)
	}
}

func (fl *fleet) killAll() {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	for _, cmd := range fl.procs {
		if cmd != nil && cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}
}

// nowTicks is the wall clock read in manifest ticks since the epoch.
func (fl *fleet) nowTicks() int64 { return int64(time.Since(fl.epoch) / fl.tick) }

// sleepUntilTick blocks until the given tick's wall instant.
func (fl *fleet) sleepUntilTick(at int64) {
	if wait := time.Until(fl.epoch.Add(time.Duration(at) * fl.tick)); wait > 0 {
		time.Sleep(wait)
	}
}

// awaitFile polls for a non-empty file and returns its trimmed content.
func awaitFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		blob, err := os.ReadFile(path)
		if err == nil && len(blob) > 0 {
			return strings.TrimSpace(string(blob)), nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("%s did not appear within %v", path, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// resolveNodeBin locates the ssbyz-node binary: the explicit flag, a
// sibling of this executable, or PATH.
func resolveNodeBin(flagValue string) (string, error) {
	if flagValue != "" {
		return flagValue, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "ssbyz-node")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if p, err := exec.LookPath("ssbyz-node"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("cannot find ssbyz-node (build it with `go build ./cmd/ssbyz-node` and pass -node-bin, or put it next to ssbyz-cluster)")
}
