package main

import (
	"strings"
	"testing"
)

func TestScenariosAllPassChecks(t *testing.T) {
	for _, scenario := range []string{"correct", "equivocate", "partial", "spam"} {
		scenario := scenario
		t.Run(scenario, func(t *testing.T) {
			var sb strings.Builder
			err := runScenario(simConfig{n: 7, seed: 1, scenario: scenario}, &sb)
			if err != nil {
				t.Fatalf("runScenario: %v\n%s", err, sb.String())
			}
			if !strings.Contains(sb.String(), "all checks passed") {
				t.Errorf("output missing the pass line:\n%s", sb.String())
			}
		})
	}
}

func TestTransientScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("transient scenario simulates Δstb; skipped in -short")
	}
	var sb strings.Builder
	if err := runScenario(simConfig{n: 7, seed: 2, scenario: "transient", verbose: true}, &sb); err != nil {
		t.Fatalf("runScenario: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "decide \"recovered\"") {
		t.Errorf("verbose output missing decisions:\n%s", out)
	}
}

func TestUnknownScenario(t *testing.T) {
	var sb strings.Builder
	if err := runScenario(simConfig{n: 7, scenario: "bogus"}, &sb); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestFaultBudgetEnforced(t *testing.T) {
	// n=2 tolerates f=0 faults; the equivocate scenario needs two faulty
	// nodes and must be refused.
	var sb strings.Builder
	if err := runScenario(simConfig{n: 2, scenario: "equivocate"}, &sb); err == nil {
		t.Error("two faulty nodes accepted at f=0")
	}
}

func TestVerboseOutput(t *testing.T) {
	var sb strings.Builder
	if err := runScenario(simConfig{n: 4, seed: 3, scenario: "correct", verbose: true}, &sb); err != nil {
		t.Fatalf("runScenario: %v", err)
	}
	if !strings.Contains(sb.String(), "node 0") || !strings.Contains(sb.String(), "rt(τG)=") {
		t.Errorf("verbose lines missing:\n%s", sb.String())
	}
}
