// Command ssbyz-sim runs one ss-Byz-Agree simulation scenario and prints
// the per-node outcomes and property-check results.
//
// Usage:
//
//	ssbyz-sim [-n 7] [-seed 0] [-scenario correct|equivocate|partial|transient|spam] [-v]
//
// Scenarios:
//
//	correct    — a correct General initiates one agreement (default)
//	equivocate — a faulty General sends two values, amplified by a colluder
//	partial    — a faulty General invites only part of the network
//	transient  — full state corruption at t=0, then a correct agreement
//	             after Δstb (the self-stabilization demo)
//	spam       — two faulty nodes flood garbage while a correct agreement runs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ssbyz"
)

func main() {
	cfg := simConfig{}
	flag.IntVar(&cfg.n, "n", 7, "number of nodes (n > 3f)")
	flag.Int64Var(&cfg.seed, "seed", 0, "random seed (identical seeds reproduce runs)")
	flag.StringVar(&cfg.scenario, "scenario", "correct", "correct|equivocate|partial|transient|spam")
	flag.BoolVar(&cfg.verbose, "v", false, "print every decision")
	flag.Parse()
	if err := runScenario(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssbyz-sim:", err)
		os.Exit(1)
	}
}

// simConfig carries the parsed flags.
type simConfig struct {
	n        int
	seed     int64
	scenario string
	verbose  bool
}

// runScenario assembles, runs, and reports one scenario.
func runScenario(cfg simConfig, w io.Writer) error {
	s, err := ssbyz.NewSimulation(ssbyz.Config{N: cfg.n, Seed: cfg.seed})
	if err != nil {
		return err
	}
	pp := s.Params()
	d := pp.D
	t0 := 2 * d
	general := ssbyz.NodeID(0)
	want := ssbyz.Value("")
	runFor := ssbyz.Ticks(0)

	switch cfg.scenario {
	case "correct":
		want = "v"
		s.ScheduleAgreement(general, want, t0)
	case "equivocate":
		s.WithFaulty(0, ssbyz.EquivocatingGeneral(t0, "a", "b"))
		s.WithFaulty(ssbyz.NodeID(cfg.n-1), ssbyz.Colluder())
		runFor = 5 * pp.DeltaAgr()
	case "partial":
		invitees := []ssbyz.NodeID{1, 2, 3}
		s.WithFaulty(0, ssbyz.PartialGeneral(t0, "p", invitees...))
		runFor = 5 * pp.DeltaAgr()
	case "transient":
		want = "recovered"
		t0 = pp.DeltaStb() + 2*d
		s.WithTransientFault(cfg.seed+1000, 1.0)
		s.ScheduleAgreement(general, want, t0)
		runFor = t0 + 3*pp.DeltaAgr()
	case "spam":
		want = "v"
		s.WithFaulty(ssbyz.NodeID(cfg.n-1), ssbyz.Spammer())
		s.WithFaulty(ssbyz.NodeID(cfg.n-2), ssbyz.Spammer())
		s.ScheduleAgreement(general, want, t0)
	default:
		return fmt.Errorf("unknown scenario %q", cfg.scenario)
	}

	report, err := s.Run(runFor)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "scenario=%s n=%d f=%d d=%d seed=%d\n", cfg.scenario, cfg.n, pp.F, pp.D, cfg.seed)
	decs := report.Decisions(general)
	decided, aborted := 0, 0
	for _, dec := range decs {
		if dec.Decided {
			decided++
		} else {
			aborted++
		}
		if cfg.verbose {
			outcome := "abort ⊥"
			if dec.Decided {
				outcome = fmt.Sprintf("decide %q", dec.Value)
			}
			fmt.Fprintf(w, "  node %-2d %-14s rt=%-8d rt(τG)=%d\n", dec.Node, outcome, dec.RT, dec.RTauG)
		}
	}
	fmt.Fprintf(w, "returned=%d decided=%d aborted=%d messages=%d\n",
		len(decs), decided, aborted, report.Messages())
	for i, err := range report.InitiationErrors() {
		fmt.Fprintf(w, "initiation %d refused: %v\n", i, err)
	}

	violations := report.Check(general)
	if want != "" {
		violations = append(violations, report.CheckValidity(general, t0, want)...)
	}
	if len(violations) == 0 {
		fmt.Fprintln(w, "properties: all checks passed")
		return nil
	}
	for _, v := range violations {
		fmt.Fprintln(w, "VIOLATION:", v)
	}
	return fmt.Errorf("%d property violations", len(violations))
}
