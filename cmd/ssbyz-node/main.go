// Command ssbyz-node runs ONE node of a live ss-Byz-Agree cluster over
// real sockets: the daemon form of the protocol, where each process owns
// one identity of the committee and everything between processes travels
// through the internal/wire codec over UDP (paper-faithful: loss allowed,
// delay bounded by deadline drops) or TCP (lossless baseline).
//
// Usage:
//
//	ssbyz-node -manifest cluster.json -id 2 [-control 127.0.0.1:7700]
//	           [-run-for 6000] [-initiate v1 -initiate-at 500]
//
// The manifest (internal/nettrans.Manifest) is the cluster's single
// source of truth: committee parameters, tick length, every node's listen
// address, the shared epoch (the wall-clock instant all local clocks read
// tick 0, and the incarnation id every frame carries), and an optional
// chaos schedule. Start one daemon per manifest entry and the cluster
// assembles itself; `ssbyz-bench -cluster N -procs` automates exactly
// that for a loopback smoke run.
//
// With -control, the daemon dials the given TCP address and streams every
// trace event (decide/abort/I-accept/…) as wire frames — the collector
// feeds them to the property battery. Without it, trace events print to
// stdout. With -initiate, the node acts as the General at the given tick
// (subject to the sending-validity criteria IG1–IG3). The daemon exits
// after -run-for ticks, or on SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/core"
	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
	"ssbyz/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ssbyz-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		manifestPath = flag.String("manifest", "", "cluster manifest JSON (required)")
		id           = flag.Int("id", -1, "this node's id in the manifest (required)")
		control      = flag.String("control", "", "TCP address to stream trace events to (default: print to stdout)")
		runFor       = flag.Int64("run-for", 0, "exit after this many ticks past the epoch (0 = run until signalled)")
		initValue    = flag.String("initiate", "", "act as the General: initiate agreement on this value")
		initAt       = flag.Int64("initiate-at", 0, "tick (since epoch) of the -initiate initiation")
	)
	flag.Parse()

	if *manifestPath == "" || *id < 0 {
		return fmt.Errorf("both -manifest and -id are required (see -h)")
	}
	blob, err := os.ReadFile(*manifestPath)
	if err != nil {
		return err
	}
	m, err := nettrans.ParseManifest(blob)
	if err != nil {
		return err
	}
	if *id >= m.N {
		return fmt.Errorf("id %d outside manifest committee [0,%d)", *id, m.N)
	}
	nodeID := protocol.NodeID(*id)

	// Control stream: trace events as wire frames over one TCP connection,
	// opened before the node starts so no event is lost.
	var sink func(protocol.TraceEvent)
	if *control != "" {
		cs, err := dialControl(*control, nodeID, uint64(m.Epoch().UnixNano()))
		if err != nil {
			return fmt.Errorf("control stream: %w", err)
		}
		defer cs.close()
		sink = cs.send
	} else {
		sink = func(ev protocol.TraceEvent) {
			fmt.Printf("trace node=%d kind=%v G=%d m=%q rt=%d\n", ev.Node, ev.Kind, ev.G, ev.M, ev.RT)
		}
	}

	// The daemon is the one runtime that is always wall-clock, and it says
	// so explicitly: every wait below and the node's whole timer stack run
	// on this injected clock (the in-process runtimes inject a *clock.Fake
	// through the same seams — DESIGN.md §9).
	clk := clock.Real()

	// All daemons sleep until the shared epoch so tick 0 means the same
	// wall instant everywhere (the manifest sets the epoch slightly in the
	// future to cover process start-up).
	if wait := time.Until(m.Epoch()); wait > 0 {
		clk.Sleep(wait)
	}

	node := core.NewNode()
	cfg := m.NodeConfig(nodeID, nil, sink)
	cfg.Clock = clk
	nn, err := nettrans.Start(cfg, node)
	if err != nil {
		return err
	}
	defer nn.Stop()
	fmt.Printf("ssbyz-node %d up: %s %s, n=%d f=%d d=%d ticks of %v\n",
		nodeID, m.Transport, nn.Addr(), m.N, m.Params().F, m.D, m.Tick())

	if *initValue != "" {
		at := m.Epoch().Add(time.Duration(*initAt) * m.Tick())
		go func() {
			if wait := time.Until(at); wait > 0 {
				clk.Sleep(wait)
			}
			nn.Do(func(n protocol.Node) {
				if err := n.(*core.Node).InitiateAgreement(protocol.Value(*initValue)); err != nil {
					fmt.Fprintf(os.Stderr, "ssbyz-node %d: initiate %q: %v\n", nodeID, *initValue, err)
				}
			})
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *runFor > 0 {
		end := m.Epoch().Add(time.Duration(*runFor) * m.Tick())
		select {
		case <-clk.After(time.Until(end)):
		case <-sig:
		}
	} else {
		<-sig
	}
	stats := nn.Stats()
	fmt.Printf("ssbyz-node %d down: sent=%d received=%d late=%d auth=%d epoch=%d chaos=%d decode=%d\n",
		nodeID, stats.Sent, stats.Received, stats.LateDrops, stats.AuthDrops,
		stats.EpochDrops, stats.ChaosDrops, stats.DecodeDrops)
	return nil
}

// controlStream serializes trace frames onto the collector connection.
type controlStream struct {
	mu      sync.Mutex
	conn    net.Conn
	id      protocol.NodeID
	epoch   uint64
	scratch []byte
}

func dialControl(addr string, id protocol.NodeID, epoch uint64) (*controlStream, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cs := &controlStream{conn: conn, id: id, epoch: epoch}
	hello := wire.AppendFrame(nil, wire.Frame{Kind: wire.FrameHello, From: id, Epoch: epoch})
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, err
	}
	return cs, nil
}

// send streams one trace event; errors are best-effort (the node keeps
// running even if the collector went away).
func (cs *controlStream) send(ev protocol.TraceEvent) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.scratch = cs.scratch[:0]
	cs.scratch = wire.AppendFrame(cs.scratch, wire.Frame{
		Kind:    wire.FrameTrace,
		From:    cs.id,
		Epoch:   cs.epoch,
		Sent:    int64(ev.RT),
		Payload: wire.AppendTraceEvent(nil, ev),
	})
	_, _ = cs.conn.Write(cs.scratch)
}

func (cs *controlStream) close() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	bye := wire.AppendFrame(nil, wire.Frame{Kind: wire.FrameBye, From: cs.id, Epoch: cs.epoch})
	_, _ = cs.conn.Write(bye)
	cs.conn.Close()
}
