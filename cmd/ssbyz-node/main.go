// Command ssbyz-node runs ONE node of a live ss-Byz-Agree cluster over
// real sockets: the daemon form of the protocol, where each process owns
// one identity of the committee and everything between processes travels
// through the internal/wire codec over UDP (paper-faithful: loss allowed,
// delay bounded by deadline drops) or TCP (lossless baseline).
//
// Usage:
//
//	ssbyz-node -manifest cluster.json -id 2 [-control 127.0.0.1:7700]
//	           [-run-for 6000] [-initiate v1 -initiate-at 500]
//
// The manifest (internal/nettrans.Manifest) is the cluster's single
// source of truth: committee parameters, tick length, every node's listen
// address, the shared epoch (the wall-clock instant all local clocks read
// tick 0, and the incarnation id every frame carries), and an optional
// chaos schedule. Start one daemon per manifest entry and the cluster
// assembles itself; `ssbyz-bench -cluster N -procs` automates exactly
// that for a loopback smoke run.
//
// With -control, the daemon dials the given TCP address and streams every
// trace event (decide/abort/I-accept/…) as wire frames — the collector
// feeds them to the property battery. The control connection is
// bidirectional: a FrameFault sent back orders the daemon to corrupt its
// RUNNING protocol state in place (internal/transient's arbitrary-state
// injector, applied inside the event loop) — the live form of the
// transient faults the paper's self-stabilization property quantifies
// over — after which the daemon measures and reports its own
// re-stabilization against Δstb = 2Δreset. At shutdown the daemon
// streams a FrameStats frame carrying its per-class condition/attack
// counters (sends, deadline/auth/epoch/decode/duplicate drops, injected
// attack frames — the nettrans.CounterNames vector), so the collector
// can prove which wire defenses fired. Without -control, trace events
// print to stdout. With -initiate, the node acts as the General at the
// given tick (subject to the sending-validity criteria IG1–IG3). The
// daemon exits after -run-for ticks, on SIGINT/SIGTERM, or on a REST
// drain/stop order.
//
// With -ops, the daemon additionally serves the internal/ops REST
// control plane (libpod-style): GET /healthz reports the protocol-level
// health state (stabilized / re-stabilizing / partitioned, derived from
// the trace and the transport counters against the Δstb = 2Δreset
// budget), GET /metrics the full counter vector, GET /events an NDJSON
// event stream, and POST /initiate, /fault, /bump-epoch, /drain, /stop
// subsume the control-socket frames for orchestrators — this is the
// surface `ssbyz-cluster -procs` drives. -incarnation is the node's
// life number: a rolling replacement reboots the same manifest slot at
// the previous incarnation + 1, every frame carries epoch + incarnation
// as its wire epoch id, and peers (told via POST /bump-epoch or
// -peer-incarnations) reject frames from the old life (epoch_drops).
//
// Shutdown is ordered: the ops server drains first (the event bus
// closes, so /events subscribers read a clean EOF, then in-flight
// handlers finish), the control stream flushes its stats and bye
// frames, and only then do the node's transports come down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/core"
	"ssbyz/internal/nettrans"
	"ssbyz/internal/ops"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
	"ssbyz/internal/transient"
	"ssbyz/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ssbyz-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		manifestPath = flag.String("manifest", "", "cluster manifest JSON (required)")
		id           = flag.Int("id", -1, "this node's id in the manifest (required)")
		control      = flag.String("control", "", "TCP address to stream trace events to (default: print to stdout)")
		runFor       = flag.Int64("run-for", 0, "exit after this many ticks past the epoch (0 = run until signalled)")
		initValue    = flag.String("initiate", "", "act as the General: initiate agreement on this value")
		initAt       = flag.Int64("initiate-at", 0, "tick (since epoch) of the -initiate initiation")
		opsAddr      = flag.String("ops", "", "serve the REST control plane (healthz/metrics/events + initiate/fault/bump-epoch/drain/stop) on this TCP address (empty = off)")
		opsAddrFile  = flag.String("ops-addr-file", "", "write the bound ops address to this file (for -ops 127.0.0.1:0 orchestration)")
		incarnation  = flag.Uint64("incarnation", 0, "this node's incarnation: a rolling replacement reboots the slot at the previous incarnation + 1")
		peerIncs     = flag.String("peer-incarnations", "", "comma-separated expected incarnation per peer (n values; default all 0); advanced at runtime via POST /bump-epoch")
	)
	flag.Parse()

	if *manifestPath == "" || *id < 0 {
		return fmt.Errorf("both -manifest and -id are required (see -h)")
	}
	blob, err := os.ReadFile(*manifestPath)
	if err != nil {
		return err
	}
	m, err := nettrans.ParseManifest(blob)
	if err != nil {
		return err
	}
	if *id >= m.N {
		return fmt.Errorf("id %d outside manifest committee [0,%d)", *id, m.N)
	}
	nodeID := protocol.NodeID(*id)
	peerIncarnations, err := parsePeerIncarnations(*peerIncs, m.N)
	if err != nil {
		return err
	}

	// Control stream: trace events as wire frames over one TCP connection,
	// opened before the node starts so no event is lost. The stream's
	// epoch id carries this life's incarnation, like every wire frame.
	wireEpoch := uint64(m.Epoch().UnixNano()) + *incarnation
	var cs *controlStream
	var sink func(protocol.TraceEvent)
	if *control != "" {
		cs, err = dialControl(*control, nodeID, wireEpoch)
		if err != nil {
			return fmt.Errorf("control stream: %w", err)
		}
		defer cs.close()
		sink = cs.send
	} else {
		sink = func(ev protocol.TraceEvent) {
			fmt.Printf("trace node=%d kind=%v G=%d m=%q rt=%d\n", ev.Node, ev.Kind, ev.G, ev.M, ev.RT)
		}
	}

	// The ops control (when -ops is set) taps every trace event for its
	// health-state machine. It attaches right after the node starts; the
	// atomic keeps the sink race-free during that window.
	var opsCtl atomic.Pointer[ops.Control]
	baseSink := sink
	sink = func(ev protocol.TraceEvent) {
		if c := opsCtl.Load(); c != nil {
			c.Observe(ev)
		}
		baseSink(ev)
	}

	// The daemon is the one runtime that is always wall-clock, and it says
	// so explicitly: every wait below and the node's whole timer stack run
	// on this injected clock (the in-process runtimes inject a *clock.Fake
	// through the same seams — DESIGN.md §9).
	clk := clock.Real()

	// All daemons sleep until the shared epoch so tick 0 means the same
	// wall instant everywhere (the manifest sets the epoch slightly in the
	// future to cover process start-up).
	if wait := time.Until(m.Epoch()); wait > 0 {
		clk.Sleep(wait)
	}

	node := core.NewNode()
	cfg := m.NodeConfig(nodeID, nil, sink)
	cfg.Clock = clk
	cfg.Incarnation = *incarnation
	cfg.PeerIncarnations = peerIncarnations
	nn, err := nettrans.Start(cfg, node)
	if err != nil {
		return err
	}
	defer nn.Stop()
	fmt.Printf("ssbyz-node %d up: %s %s, n=%d f=%d d=%d ticks of %v, incarnation %d\n",
		nodeID, m.Transport, nn.Addr(), m.N, m.Params().F, m.D, m.Tick(), *incarnation)

	// The REST control plane (DESIGN.md §12): health, metrics, events,
	// and the operator verbs. It owns its listener; Shutdown drains it
	// BEFORE the node's transports come down.
	var srv *ops.Server
	if *opsAddr != "" {
		ln, lerr := net.Listen("tcp", *opsAddr)
		if lerr != nil {
			return fmt.Errorf("ops listener: %w", lerr)
		}
		ctl := ops.NewControl(&ops.NetBackend{NN: nn})
		opsCtl.Store(ctl)
		srv = ops.Serve(ln, ctl)
		fmt.Printf("ssbyz-node %d ops: http://%s\n", nodeID, srv.Addr())
		if *opsAddrFile != "" {
			if werr := os.WriteFile(*opsAddrFile, []byte(srv.Addr()), 0o644); werr != nil {
				return fmt.Errorf("ops addr file: %w", werr)
			}
		}
	}

	// The control connection is bidirectional: watch it for FrameFault
	// orders — the in-situ transient-fault injection the campaign drives.
	if cs != nil {
		cs.watchFaults(func(cmd wire.FaultCmd) { applyFault(nn, m, nodeID, opsCtl.Load(), cmd) })
	}

	if *initValue != "" {
		at := m.Epoch().Add(time.Duration(*initAt) * m.Tick())
		go func() {
			if wait := time.Until(at); wait > 0 {
				clk.Sleep(wait)
			}
			nn.Do(func(n protocol.Node) {
				if err := n.(*core.Node).InitiateAgreement(protocol.Value(*initValue)); err != nil {
					fmt.Fprintf(os.Stderr, "ssbyz-node %d: initiate %q: %v\n", nodeID, *initValue, err)
				}
			})
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var opsDone <-chan string
	if srv != nil {
		opsDone = srv.Done()
	}
	reason := "signal"
	var end <-chan time.Time
	if *runFor > 0 {
		end = clk.After(time.Until(m.Epoch().Add(time.Duration(*runFor) * m.Tick())))
	}
	select {
	case <-end:
		reason = "run-for"
	case <-sig:
	case reason = <-opsDone: // REST /drain or /stop
	}

	// Ordered shutdown (the contract the Stop-ordering test pins): drain
	// the ops listeners first — the event bus closes, so every /events
	// subscriber reads a clean EOF over a still-healthy connection, then
	// in-flight handlers finish. Then flush the control stream's stats
	// and bye while the node is still up. Only then stop the transports.
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	}
	stats := nn.Stats()
	if cs != nil {
		// Stream the full per-class counter vector so the collector can
		// prove which attacks were injected and which defenses fired.
		cs.sendStats(stats.Counters())
	}
	nn.Stop()
	fmt.Printf("ssbyz-node %d down (%s): %s\n", nodeID, reason, formatCounters(stats.Counters()))
	return nil
}

// parsePeerIncarnations decodes the -peer-incarnations list: empty means
// every peer at incarnation 0, otherwise exactly n comma-separated
// values indexed by node id.
func parsePeerIncarnations(s string, n int) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("-peer-incarnations has %d values, want n=%d", len(parts), n)
	}
	out := make([]uint64, n)
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-peer-incarnations[%d]: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// formatCounters renders a nettrans.CounterNames vector as "name=value"
// pairs — the human-readable form of the FrameStats payload.
func formatCounters(vec []int64) string {
	parts := make([]string, 0, len(vec))
	for i, name := range nettrans.CounterNames {
		if i >= len(vec) {
			break
		}
		parts = append(parts, fmt.Sprintf("%s=%d", name, vec[i]))
	}
	return strings.Join(parts, " ")
}

// applyFault executes one control-socket FaultCmd: the node's RUNNING
// protocol state is corrupted inside its event loop (arbitrary-state
// placement, the paper's transient-fault model), a phantom mark is
// planted under the highest committee id (which the -cluster General
// rotation never scripts), and a watcher then reports the observed
// re-stabilization against the Δstb = 2Δreset budget the paper's
// self-stabilization property promises.
func applyFault(nn *nettrans.NetNode, m nettrans.Manifest, nodeID protocol.NodeID, ctl *ops.Control, cmd wire.FaultCmd) {
	pp := m.Params()
	markG := protocol.NodeID(pp.N - 1)
	at := nn.Now()
	nn.DoWait(func(n protocol.Node) {
		cn, ok := n.(*core.Node)
		if !ok {
			return
		}
		transient.CorruptRunning(cn, pp, transient.Config{
			Seed:     cmd.Seed,
			Severity: float64(cmd.SeverityPermille) / 1000,
			InFlight: cmd.InFlight,
			Marks:    []protocol.NodeID{markG},
		}, nn.Now())
	})
	if ctl != nil {
		// The control-socket fault opens the same /healthz convergence
		// window as the REST form.
		ctl.MarkFault("fault", map[string]string{"seed": fmt.Sprint(cmd.Seed)})
	}
	fmt.Printf("ssbyz-node %d: transient fault injected at tick %d (seed=%d severity=%d‰)\n",
		nodeID, at, cmd.Seed, cmd.SeverityPermille)
	go func() {
		budget := pp.DeltaStb()
		for {
			time.Sleep(10 * m.Tick())
			returned := false
			nn.DoWait(func(n protocol.Node) {
				if cn, ok := n.(*core.Node); ok {
					returned, _, _ = cn.Result(markG)
				}
			})
			if !returned {
				fmt.Printf("ssbyz-node %d: re-stabilized in %d ticks (Δstb budget %d)\n",
					nodeID, simtime.Duration(nn.Now()-at), budget)
				return
			}
			if simtime.Duration(nn.Now()-at) > budget {
				fmt.Printf("ssbyz-node %d: NOT re-stabilized within Δstb = %d ticks\n",
					nodeID, budget)
				return
			}
		}
	}()
}

// controlStream serializes trace frames onto the collector connection.
type controlStream struct {
	mu      sync.Mutex
	conn    net.Conn
	id      protocol.NodeID
	epoch   uint64
	scratch []byte
}

func dialControl(addr string, id protocol.NodeID, epoch uint64) (*controlStream, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cs := &controlStream{conn: conn, id: id, epoch: epoch}
	hello := wire.AppendFrame(nil, wire.Frame{Kind: wire.FrameHello, From: id, Epoch: epoch})
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, err
	}
	return cs, nil
}

// send streams one trace event; errors are best-effort (the node keeps
// running even if the collector went away).
func (cs *controlStream) send(ev protocol.TraceEvent) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.scratch = cs.scratch[:0]
	cs.scratch = wire.AppendFrame(cs.scratch, wire.Frame{
		Kind:    wire.FrameTrace,
		From:    cs.id,
		Epoch:   cs.epoch,
		Sent:    int64(ev.RT),
		Payload: wire.AppendTraceEvent(nil, ev),
	})
	_, _ = cs.conn.Write(cs.scratch)
}

// sendStats streams the node's per-class counter vector as one
// FrameStats frame (best-effort, like send).
func (cs *controlStream) sendStats(counters []int64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	frame := wire.AppendFrame(nil, wire.Frame{
		Kind:    wire.FrameStats,
		From:    cs.id,
		Epoch:   cs.epoch,
		Payload: wire.AppendCounters(nil, counters),
	})
	_, _ = cs.conn.Write(frame)
}

// watchFaults reads the control connection for FrameFault orders and
// applies each through the given callback. Reads and writes share the
// TCP connection safely; a read error (collector gone, corrupt stream)
// just ends the watch — the node keeps running.
func (cs *controlStream) watchFaults(apply func(wire.FaultCmd)) {
	go func() {
		var buf []byte
		chunk := make([]byte, 4096)
		for {
			n, err := cs.conn.Read(chunk)
			if n > 0 {
				buf = append(buf, chunk[:n]...)
				for {
					f, consumed, derr := wire.DecodeFrame(buf)
					if errors.Is(derr, wire.ErrTruncated) {
						break
					}
					if derr != nil {
						return
					}
					buf = buf[consumed:]
					if f.Kind != wire.FrameFault {
						continue
					}
					if cmd, _, cerr := wire.DecodeFaultCmd(f.Payload); cerr == nil {
						apply(cmd)
					}
				}
			}
			if err != nil {
				return
			}
		}
	}()
}

func (cs *controlStream) close() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	bye := wire.AppendFrame(nil, wire.Frame{Kind: wire.FrameBye, From: cs.id, Epoch: cs.epoch})
	_, _ = cs.conn.Write(bye)
	cs.conn.Close()
}
