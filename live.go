package ssbyz

import (
	"errors"
	"fmt"
	"io"
	"time"

	"ssbyz/internal/core"
	"ssbyz/internal/harness"
	"ssbyz/internal/livenet"
	"ssbyz/internal/protocol"
)

// LiveCluster runs ss-Byz-Agree in real time: one goroutine per node,
// in-process channels with randomized wall-clock delays bounded by the
// paper's d (LiveConfig.D × Tick). It is the configuration a service
// embedding the library would start from; the message-driven rounds mean
// agreements complete at actual channel speed, not at the d worst case
// (the paper's headline claim).
type LiveCluster struct {
	c     *livenet.Cluster
	pp    Params
	tick  time.Duration
	nodes []*core.Node
}

// LiveConfig describes a live cluster: n nodes tolerating f = ⌊(n−1)/3⌋
// Byzantine faults, with the paper's delivery bound d expressed as D
// ticks of wall-clock length Tick.
type LiveConfig struct {
	// N is the number of nodes (default 4).
	N int
	// D is the delivery bound in ticks (default 50).
	D Ticks
	// Tick is the wall-clock length of one tick (default 100µs, making
	// the default d = 5ms).
	Tick time.Duration
	// Seed drives the artificial delay randomness.
	Seed int64
}

// NewLiveCluster assembles and starts a live cluster of correct nodes
// (validating the paper's n > 3f precondition). Callers must Stop it.
func NewLiveCluster(cfg LiveConfig) (*LiveCluster, error) {
	if cfg.N == 0 {
		cfg.N = 4
	}
	pp := protocol.DefaultParams(cfg.N)
	if cfg.D > 0 {
		pp.D = cfg.D
	} else {
		pp.D = 50
	}
	if err := pp.Validate(); err != nil {
		return nil, fmt.Errorf("ssbyz: %w", err)
	}
	c, err := livenet.New(livenet.Config{Params: pp, Tick: cfg.Tick, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("ssbyz: %w", err)
	}
	lc := &LiveCluster{c: c, pp: pp, tick: cfg.Tick, nodes: make([]*core.Node, pp.N)}
	if lc.tick == 0 {
		lc.tick = 100 * time.Microsecond
	}
	for i := 0; i < pp.N; i++ {
		lc.nodes[i] = core.NewNode()
		c.SetNode(protocol.NodeID(i), lc.nodes[i])
	}
	c.Start()
	return lc, nil
}

// Params returns the resolved protocol constants (n, f, d and the
// derived Δ bounds of the paper's Section 3).
func (lc *LiveCluster) Params() Params { return lc.pp }

// Stop shuts down every node goroutine and pending timer (including the
// periodic Δrmv decay sweeps).
func (lc *LiveCluster) Stop() { lc.c.Stop() }

// Initiate asks node g to act as the General and start agreement on v.
// The error reflects the sending-validity criteria IG1–IG3.
func (lc *LiveCluster) Initiate(g NodeID, v Value) error {
	errCh := make(chan error, 1)
	lc.c.DoWait(g, func(n protocol.Node) {
		errCh <- n.(*core.Node).InitiateAgreement(v)
	})
	select {
	case err := <-errCh:
		return err
	default:
		return errors.New("ssbyz: cluster stopped")
	}
}

// Await blocks until every node has returned for General g or the timeout
// elapses (the paper bounds the return by Δagr past the invocation,
// Timeliness-3). It returns the unanimous decided value, or an error on
// abort, value split (a violation of the Agreement property, impossible
// for a correct build), or timeout.
func (lc *LiveCluster) Await(g NodeID, timeout time.Duration) (Value, error) {
	return awaitUnanimous(lc.pp.N, timeout, lc.tick*10, func(i int, fn func(protocol.Node)) {
		lc.c.DoWait(NodeID(i), fn)
	}, g)
}

// awaitUnanimous polls every node's return for General g through the
// given event-loop executor until all have returned (the Agreement
// property then requires one value) or the deadline passes.
func awaitUnanimous(n int, timeout, pollEvery time.Duration,
	doWait func(i int, fn func(protocol.Node)), g NodeID) (Value, error) {
	deadline := time.Now().Add(timeout)
	for {
		values := make(map[Value]int)
		returned := 0
		for i := 0; i < n; i++ {
			var ret, dec bool
			var v Value
			doWait(i, func(nd protocol.Node) {
				ret, dec, v = nd.(*core.Node).Result(g)
			})
			if ret {
				returned++
				if dec {
					values[v]++
				}
			}
		}
		if returned == n {
			switch len(values) {
			case 0:
				return Bottom, errors.New("ssbyz: all nodes aborted")
			case 1:
				for v := range values {
					if values[v] == n {
						return v, nil
					}
					return v, fmt.Errorf("ssbyz: %d/%d nodes decided %q, rest aborted", values[v], n, v)
				}
			default:
				return Bottom, fmt.Errorf("ssbyz: value split across nodes: %v", values)
			}
		}
		if time.Now().After(deadline) {
			return Bottom, fmt.Errorf("ssbyz: timeout with %d/%d nodes returned", returned, n)
		}
		time.Sleep(pollEvery)
	}
}

// SocketConfig describes a real-socket loopback cluster: n nodes
// tolerating f = ⌊(n−1)/3⌋ Byzantine faults, every message crossing a
// real UDP or TCP socket through the binary wire codec, with the paper's
// delivery bound d expressed as D ticks of wall-clock length Tick.
type SocketConfig struct {
	// N is the number of nodes (default 4).
	N int
	// D is the delivery bound d in ticks (default 100). On UDP the
	// transport enforces it: frames older than d are dropped, because the
	// paper's model delivers within d or not at all.
	D Ticks
	// Tick is the wall-clock length of one tick (default 100µs, making
	// the default d = 10ms).
	Tick time.Duration
	// Transport is "udp" (datagram-per-message, loss allowed — the
	// paper-faithful default) or "tcp" (lossless stream baseline).
	Transport string
}

// SocketCluster runs ss-Byz-Agree over real sockets on loopback: the
// same protocol state machines as Simulation and LiveCluster, but every
// message is serialized by the wire codec, authenticated by source
// address, and subject to the transport's enforcement of the paper's
// bounded-delay axiom (DESIGN.md §7). It is the single-process form of
// the cmd/ssbyz-node daemon topology.
//
// Deprecated: SocketCluster is a thin shim over Engine, kept for
// existing callers; new code uses New with SocketRuntime and Start.
type SocketCluster struct {
	eng *Engine
}

// NewSocketCluster assembles and starts a loopback socket cluster of
// correct nodes (validating the paper's n > 3f precondition; failures
// wrap ErrBadParams). Callers must Stop it.
func NewSocketCluster(cfg SocketConfig) (*SocketCluster, error) {
	opts := []Option{WithRuntime(SocketRuntime(cfg.Transport, cfg.Tick))}
	if cfg.N > 0 {
		opts = append(opts, WithN(cfg.N))
	} else {
		opts = append(opts, WithN(4))
	}
	if cfg.D > 0 {
		opts = append(opts, WithD(cfg.D))
	}
	eng, err := New(opts...)
	if err != nil {
		return nil, err
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}
	return &SocketCluster{eng: eng}, nil
}

// Params returns the resolved protocol constants (n, f, d and the
// derived Δ bounds of the paper's Section 3).
func (sc *SocketCluster) Params() Params { return sc.eng.pp }

// Stop shuts down every node: protocol timers, sockets, event loops.
// After Stop returns nothing is running (the eventloop Stop gate —
// required for the self-stabilizing protocol's dense timer traffic).
func (sc *SocketCluster) Stop() { sc.eng.Stop() }

// Initiate asks node g to act as the General and start agreement on v
// over the sockets, recording the traced initiation instant as the t0
// of Check's Validity window. The error reflects the sending-validity
// criteria IG1–IG3.
func (sc *SocketCluster) Initiate(g NodeID, v Value) error {
	if err := sc.eng.initiateLive(g, 0, v); err != nil {
		return fmt.Errorf("ssbyz: %w", err)
	}
	return nil
}

// Await blocks until every node has returned for General g or the
// timeout elapses (Timeliness-3 bounds the return by Δagr past the
// invocation) and returns the unanimous decided value.
func (sc *SocketCluster) Await(g NodeID, timeout time.Duration) (Value, error) {
	return sc.eng.Await(g, timeout)
}

// Check runs the full property battery (Agreement, Timeliness, IA/TPS
// bounds, plus each Initiate's Validity window) over the trace collected
// so far. A correct build over a healthy loopback returns none.
func (sc *SocketCluster) Check() []Violation {
	return sc.eng.CheckLive()
}

// RunLiveExperiment executes experiment L1 — live loopback clusters over
// UDP/TCP sockets sweeping n ∈ {4, 7, 16}, decide-latency percentiles
// against the paper's d-based bounds, msgs/sec, and the property battery
// over every collected trace — and writes the result to w. L1's numbers
// are wall-clock measurements (they vary run to run), which is why it is
// not part of RunExperiments' deterministic suite; `ssbyz-bench -live`
// appends it explicitly.
func RunLiveExperiment(w io.Writer, opt ExperimentOptions) (*ExperimentResult, error) {
	r := harness.L1Live(opt)
	if _, err := r.WriteTo(w); err != nil {
		return r, err
	}
	return r, nil
}

// RunLiveServiceExperiment executes experiment L2 — the replicated-log
// service (Engine's Log facade) over real loopback UDP sockets at
// footnote-9 session concurrency 1 and 8, the wall-clock spot-check of
// S3's virtual-time throughput curve — and writes the result to w. Like L1
// its latency/throughput numbers vary with the host, so it is appended
// by `ssbyz-bench -live` rather than run in the deterministic suite;
// the acceptance is the verdict: every entry commits and the
// per-session property battery stays clean.
func RunLiveServiceExperiment(w io.Writer, opt ExperimentOptions) (*ExperimentResult, error) {
	r := harness.L2LiveService(opt)
	if _, err := r.WriteTo(w); err != nil {
		return r, err
	}
	return r, nil
}

// RunAdversarialLiveExperiment executes experiment L3 — the byte-level
// attack classes (corruption, cross-epoch replay, forged senders,
// duplication) injected into real UDP loopback clusters with the wire
// pipeline's per-class counters proving each defense fired, plus an
// in-situ transient-fault recovery cell where every node of a RUNNING
// cluster is corrupted in place and must re-stabilize within
// Δstb = 2Δreset of wall time — and writes the result to w. It is the
// real-socket mirror of the deterministic V3 campaign; like L1/L2 its
// wall-clock figures vary with the host, so `ssbyz-bench -live` appends
// it rather than the deterministic suite. The acceptance is the verdict:
// every attack injected and rejected, recovery within the paper's
// budget, zero battery violations.
func RunAdversarialLiveExperiment(w io.Writer, opt ExperimentOptions) (*ExperimentResult, error) {
	r := harness.L3AdversarialLive(opt)
	if _, err := r.WriteTo(w); err != nil {
		return r, err
	}
	return r, nil
}

// RunOpsLiveExperiment executes experiment L4 — the cluster operations
// campaign over real UDP loopback sockets: an n=4 fleet boots with one
// slot held back, the replicated-log pump commits entries at General 0
// throughout, the held slot scales up mid-run, a running node is rolled
// (stopped, epoch-bumped on every peer, rebooted at the next
// incarnation on the same address), and the fleet drains once the
// workload is committed and the replacement has re-stabilized — and
// writes the result to w. It is the real-socket mirror of the
// deterministic V4 campaign; its wall-clock times vary with the host,
// so `ssbyz-bench -live` appends it rather than the deterministic
// suite. The acceptance is the verdict: every entry commits under the
// roll, the rolled node re-stabilizes within Δstb = 2Δreset of real
// time (self-stabilization is what makes rolling replacement safe —
// DESIGN.md §12), and a frame replayed from the node's previous
// incarnation is rejected by every peer (epoch_drops > 0).
func RunOpsLiveExperiment(w io.Writer, opt ExperimentOptions) (*ExperimentResult, error) {
	r := harness.L4OpsLive(opt)
	if _, err := r.WriteTo(w); err != nil {
		return r, err
	}
	return r, nil
}
