package ssbyz

import (
	"errors"
	"fmt"
	"time"

	"ssbyz/internal/core"
	"ssbyz/internal/livenet"
	"ssbyz/internal/protocol"
)

// LiveCluster runs ss-Byz-Agree in real time: one goroutine per node,
// in-process channels with randomized wall-clock delays bounded by the
// paper's d (LiveConfig.D × Tick). It is the configuration a service
// embedding the library would start from; the message-driven rounds mean
// agreements complete at actual channel speed, not at the d worst case
// (the paper's headline claim).
type LiveCluster struct {
	c     *livenet.Cluster
	pp    Params
	tick  time.Duration
	nodes []*core.Node
}

// LiveConfig describes a live cluster: n nodes tolerating f = ⌊(n−1)/3⌋
// Byzantine faults, with the paper's delivery bound d expressed as D
// ticks of wall-clock length Tick.
type LiveConfig struct {
	// N is the number of nodes (default 4).
	N int
	// D is the delivery bound in ticks (default 50).
	D Ticks
	// Tick is the wall-clock length of one tick (default 100µs, making
	// the default d = 5ms).
	Tick time.Duration
	// Seed drives the artificial delay randomness.
	Seed int64
}

// NewLiveCluster assembles and starts a live cluster of correct nodes
// (validating the paper's n > 3f precondition). Callers must Stop it.
func NewLiveCluster(cfg LiveConfig) (*LiveCluster, error) {
	if cfg.N == 0 {
		cfg.N = 4
	}
	pp := protocol.DefaultParams(cfg.N)
	if cfg.D > 0 {
		pp.D = cfg.D
	} else {
		pp.D = 50
	}
	if err := pp.Validate(); err != nil {
		return nil, fmt.Errorf("ssbyz: %w", err)
	}
	c, err := livenet.New(livenet.Config{Params: pp, Tick: cfg.Tick, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("ssbyz: %w", err)
	}
	lc := &LiveCluster{c: c, pp: pp, tick: cfg.Tick, nodes: make([]*core.Node, pp.N)}
	if lc.tick == 0 {
		lc.tick = 100 * time.Microsecond
	}
	for i := 0; i < pp.N; i++ {
		lc.nodes[i] = core.NewNode()
		c.SetNode(protocol.NodeID(i), lc.nodes[i])
	}
	c.Start()
	return lc, nil
}

// Params returns the resolved protocol constants (n, f, d and the
// derived Δ bounds of the paper's Section 3).
func (lc *LiveCluster) Params() Params { return lc.pp }

// Stop shuts down every node goroutine and pending timer (including the
// periodic Δrmv decay sweeps).
func (lc *LiveCluster) Stop() { lc.c.Stop() }

// Initiate asks node g to act as the General and start agreement on v.
// The error reflects the sending-validity criteria IG1–IG3.
func (lc *LiveCluster) Initiate(g NodeID, v Value) error {
	errCh := make(chan error, 1)
	lc.c.DoWait(g, func(n protocol.Node) {
		errCh <- n.(*core.Node).InitiateAgreement(v)
	})
	select {
	case err := <-errCh:
		return err
	default:
		return errors.New("ssbyz: cluster stopped")
	}
}

// Await blocks until every node has returned for General g or the timeout
// elapses (the paper bounds the return by Δagr past the invocation,
// Timeliness-3). It returns the unanimous decided value, or an error on
// abort, value split (a violation of the Agreement property, impossible
// for a correct build), or timeout.
func (lc *LiveCluster) Await(g NodeID, timeout time.Duration) (Value, error) {
	deadline := time.Now().Add(timeout)
	for {
		values := make(map[Value]int)
		returned := 0
		for i := 0; i < lc.pp.N; i++ {
			var ret, dec bool
			var v Value
			lc.c.DoWait(NodeID(i), func(n protocol.Node) {
				ret, dec, v = n.(*core.Node).Result(g)
			})
			if ret {
				returned++
				if dec {
					values[v]++
				}
			}
		}
		if returned == lc.pp.N {
			switch len(values) {
			case 0:
				return Bottom, errors.New("ssbyz: all nodes aborted")
			case 1:
				for v := range values {
					if values[v] == lc.pp.N {
						return v, nil
					}
					return v, fmt.Errorf("ssbyz: %d/%d nodes decided %q, rest aborted", values[v], lc.pp.N, v)
				}
			default:
				return Bottom, fmt.Errorf("ssbyz: value split across nodes: %v", values)
			}
		}
		if time.Now().After(deadline) {
			return Bottom, fmt.Errorf("ssbyz: timeout with %d/%d nodes returned", returned, lc.pp.N)
		}
		time.Sleep(lc.tick * 10)
	}
}
