package ssbyz_test

import (
	"testing"

	"ssbyz"
)

func TestPulseFacade(t *testing.T) {
	s, err := ssbyz.NewSimulation(ssbyz.Config{N: 7, Seed: 11})
	if err != nil {
		t.Fatalf("NewSimulation: %v", err)
	}
	pp := s.Params()
	s.WithPulseSynchronization(0)
	report, err := s.Run(5 * (pp.Delta0() + 3*pp.DeltaAgr()))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	byCycle := report.Pulses()
	if len(byCycle) < 2 {
		t.Fatalf("cycles pulsed = %d, want ≥ 2", len(byCycle))
	}
	for k, pulses := range byCycle {
		if len(pulses) != 7 {
			t.Errorf("cycle %d: %d pulses, want 7", k, len(pulses))
			continue
		}
		lo, hi := pulses[0].RT, pulses[0].RT
		for _, p := range pulses {
			if p.Cycle != k {
				t.Errorf("pulse cycle mismatch: %d in bucket %d", p.Cycle, k)
			}
			if p.RT < lo {
				lo = p.RT
			}
			if p.RT > hi {
				hi = p.RT
			}
		}
		if skew := int64(hi - lo); skew > 3*int64(pp.D) {
			t.Errorf("cycle %d: skew %d > 3d", k, skew)
		}
	}
}

func TestVerifiedAndDecisionsFor(t *testing.T) {
	s, err := ssbyz.NewSimulation(ssbyz.Config{N: 4, Seed: 12})
	if err != nil {
		t.Fatalf("NewSimulation: %v", err)
	}
	pp := s.Params()
	t0 := 2 * pp.D
	t1 := t0 + pp.DeltaV() + pp.D
	s.ScheduleAgreement(0, "v", t0)
	s.ScheduleAgreement(0, "v", t1) // same value after Δv: legal
	report, err := s.Run(t1 + 3*pp.DeltaAgr())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if errs := report.InitiationErrors(); len(errs) != 0 {
		t.Fatalf("refusals: %v", errs)
	}
	// Two agreements on the same value: 8 decided entries, each initiation
	// individually verified.
	if got := len(report.DecisionsFor(0, "v")); got != 8 {
		t.Errorf("DecisionsFor = %d entries, want 8", got)
	}
	if !report.Verified(0, "v", t0) {
		t.Error("first initiation not verified")
	}
	if !report.Verified(0, "v", t1) {
		t.Error("second initiation not verified")
	}
	if report.Verified(0, "v", t0+50*pp.D) {
		t.Error("Verified accepted a window with no agreement")
	}
	if report.Verified(0, "other", t0) {
		t.Error("Verified accepted a never-agreed value")
	}
	// Unanimous is the single-agreement view: with two returns per node it
	// reports false by design.
	if report.Unanimous(0, "v") {
		t.Error("Unanimous true across recurring agreements")
	}
}

func TestRunIsIdempotent(t *testing.T) {
	s, err := ssbyz.NewSimulation(ssbyz.Config{N: 4, Seed: 13})
	if err != nil {
		t.Fatalf("NewSimulation: %v", err)
	}
	s.ScheduleAgreement(0, "v", 2*s.Params().D)
	r1, err := s.Run(0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2, err := s.Run(0)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if r1 != r2 {
		t.Error("second Run produced a different report")
	}
}

func TestDefaultConfigIsSevenNodes(t *testing.T) {
	s, err := ssbyz.NewSimulation(ssbyz.Config{})
	if err != nil {
		t.Fatalf("NewSimulation: %v", err)
	}
	if s.Params().N != 7 || s.Params().F != 2 {
		t.Errorf("defaults = n%d f%d, want n7 f2", s.Params().N, s.Params().F)
	}
}

func TestExplicitLowerF(t *testing.T) {
	s, err := ssbyz.NewSimulation(ssbyz.Config{N: 10, F: 1})
	if err != nil {
		t.Fatalf("NewSimulation: %v", err)
	}
	if s.Params().F != 1 {
		t.Errorf("F = %d, want 1", s.Params().F)
	}
}

func TestAdversaryConstructorsRunClean(t *testing.T) {
	// Every adversary constructor wired into one simulation apiece; the
	// run must stay violation-free (n=7 tolerates f=2; use one at a time
	// plus a crashed node).
	d := ssbyz.Ticks(1000)
	advs := map[string]ssbyz.Adversary{
		"crashed":      ssbyz.Crashed(),
		"equivocator":  ssbyz.EquivocatingGeneral(2*d, "a", "b"),
		"partial":      ssbyz.PartialGeneral(2*d, "p", 1, 2, 3),
		"colluder":     ssbyz.Colluder(),
		"lateColluder": ssbyz.LateColluder(0, 3*d),
		"spammer":      ssbyz.Spammer(),
		"replayer":     ssbyz.Replayer(10 * d),
		"echoForger":   ssbyz.EchoForger(0, 1, "f", 1, 2*d),
	}
	for name, adv := range advs {
		name, adv := name, adv
		t.Run(name, func(t *testing.T) {
			s, err := ssbyz.NewSimulation(ssbyz.Config{N: 7, Seed: 14})
			if err != nil {
				t.Fatalf("NewSimulation: %v", err)
			}
			pp := s.Params()
			s.WithFaulty(0, adv)
			s.WithFaulty(6, ssbyz.Crashed())
			report, err := s.Run(4 * pp.DeltaAgr())
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for g := 0; g < pp.N; g++ {
				if vs := report.Check(ssbyz.NodeID(g)); len(vs) != 0 {
					t.Errorf("General %d violations: %v", g, vs)
				}
			}
		})
	}
}

func TestConcurrentSlotsFacade(t *testing.T) {
	s, err := ssbyz.NewSimulation(ssbyz.Config{N: 7, Seed: 15})
	if err != nil {
		t.Fatalf("NewSimulation: %v", err)
	}
	pp := s.Params()
	s.WithConcurrentSlots(2)
	t0 := 2 * pp.D
	s.ScheduleSlotAgreement(0, 0, "a", t0)
	s.ScheduleSlotAgreement(1, 0, "b", t0) // same General, same instant
	report, err := s.Run(3 * pp.DeltaAgr())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if errs := report.InitiationErrors(); len(errs) != 0 {
		t.Fatalf("refusals: %v", errs)
	}
	for slot, want := range []ssbyz.Value{"a", "b"} {
		decs := report.SlotDecisions(0, slot)
		if len(decs) != pp.N {
			t.Errorf("slot %d: %d deciders, want %d", slot, len(decs), pp.N)
		}
		for _, d := range decs {
			if d.Value != want {
				t.Errorf("slot %d: decided %q, want %q", slot, d.Value, want)
			}
		}
	}
}

func TestSlotWithoutIndexedNodesRefused(t *testing.T) {
	s, err := ssbyz.NewSimulation(ssbyz.Config{N: 4, Seed: 16})
	if err != nil {
		t.Fatalf("NewSimulation: %v", err)
	}
	s.ScheduleSlotAgreement(1, 0, "v", 2*s.Params().D) // no WithConcurrentSlots
	report, err := s.Run(0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, ok := report.InitiationErrors()[0]; !ok {
		t.Error("slot initiation on plain nodes not refused")
	}
}
