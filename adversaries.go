package ssbyz

import (
	"ssbyz/internal/byzantine"
	"ssbyz/internal/protocol"
)

// Adversary constructors. Each returns a protocol.Node scripting one of
// the attack strategies the paper's proofs defend against; attach them
// with Simulation.WithFaulty. Faulty nodes cannot forge sender identities
// (the transport authenticates senders, matching the paper's model).

// Crashed returns a forever-silent node — the crash fault, weakest point
// of the paper's Byzantine fault spectrum; the protocol must tolerate f
// of these inside its n > 3f resilience bound just like full traitors.
func Crashed() Adversary { return &byzantine.Silent{} }

// EquivocatingGeneral returns a faulty General that disseminates the given
// values round-robin across the nodes at local time at — the canonical
// attack on the Uniqueness property IA-4 (anchors for different values
// must stay > 4d apart or collapse to one agreement).
func EquivocatingGeneral(at Ticks, values ...Value) Adversary {
	return &byzantine.Equivocator{Values: values, At: at}
}

// PartialGeneral returns a faulty General that sends its initiation only
// to the invitee subset at local time at, leaving the rest of the network
// to discover the agreement — or not — through the primitive's relay
// machinery (Blocks L–N and the Δagr-Relay property IA-3).
func PartialGeneral(at Ticks, v Value, invitees ...NodeID) Adversary {
	return &byzantine.PartialGeneral{Invitees: invitees, Value: v, At: at}
}

// Colluder returns a faulty node that amplifies every wave it observes
// for General g, ignoring the exclusivity condition of Block K and the
// lastq(G)/lastq(G,m) rate limits that correct nodes obey.
func Colluder() Adversary { return &byzantine.Yeasayer{} }

// LateColluder returns a faulty node that contributes to General g's waves
// as late as the message windows allow, stretching every stage toward the
// Δagr = (2f+1)Φ bound (the Timeliness-3 worst case).
func LateColluder(g NodeID, holdLocal Ticks) Adversary {
	return &byzantine.LateSupporter{G: g, HoldLocal: holdLocal}
}

// Spammer returns a faulty node that floods the network with syntactically
// valid garbage — the memory-bound attack on the Δrmv decay rules and the
// Unforgeability properties (IA-2, TPS-2).
func Spammer() Adversary { return &byzantine.Spammer{} }

// Replayer returns a faulty node that captures all traffic and re-emits it
// after delay — the replay attack on the Δrmv decay and the IA-4
// separation machinery (stale waves must never re-anchor an agreement).
func Replayer(delay Ticks) Adversary { return &byzantine.Replayer{Delay: delay} }

// EchoForger returns a faulty node that fabricates broadcast-layer echo
// messages for a broadcast by forgedP that never happened (TPS-2 attack).
func EchoForger(g, forgedP NodeID, v Value, k int, at Ticks) Adversary {
	return &byzantine.EchoForger{G: g, ForgedP: forgedP, ForgedV: v, K: k, At: at}
}

// MirrorVoter returns a faulty node that reflects every wave message
// straight back at its sender — and only its sender — so each correct
// node privately counts the mirror toward a different wave: the most
// view-splitting participation a single Byzantine node can produce
// without forging identities, probing the distinct-sender thresholds of
// Initiator-Accept (IA-1, IA-4) from n directions at once.
func MirrorVoter() Adversary { return &byzantine.MirrorVoter{} }

// EdgeSupporter returns a faulty node that votes exactly when a wave's
// distinct-sender count sits one short of the Byzantine quorum n−2f, so
// thresholds are crossed only through the faulty vote at the last
// admissible instant — the sharpest probe of the paper's "at least one
// correct sender behind every quorum" counting arguments (IA-2, TPS-2).
func EdgeSupporter() Adversary { return &byzantine.EdgeSupporter{} }

// ComposeAdversaries runs several strategies concurrently on ONE faulty
// node — e.g. an equivocating General that also forges echoes. The
// paper's proofs quantify over every Byzantine strategy; composition
// multiplies what a single node of the ≤ f fault budget can exhibit.
func ComposeAdversaries(parts ...Adversary) Adversary {
	nodes := make([]protocol.Node, len(parts))
	for i, p := range parts {
		nodes[i] = p
	}
	return &byzantine.Composite{Parts: nodes}
}

// AdversaryStage is one phase of a StagedAdversary: Adv takes over at
// local time At (the first stage's At is ignored — it runs from the
// start; a nil Adv plays dead for the stage). Staged behavior is the
// self-stabilization-flavoured attack: a node may act correct through one
// agreement and turn Byzantine in the next.
type AdversaryStage struct {
	At  Ticks
	Adv Adversary
}

// StagedAdversary returns a faulty node that switches strategies at
// scripted local times — e.g. silent until Δagr, then equivocating. The
// paper's model fixes WHICH nodes are faulty but never how faults evolve
// in time; staging explores that axis.
func StagedAdversary(stages ...AdversaryStage) Adversary {
	ss := make([]byzantine.Stage, len(stages))
	for i, s := range stages {
		ss[i] = byzantine.Stage{At: s.At, Node: s.Adv}
	}
	return &byzantine.Staged{Stages: ss}
}

// AdaptiveAdversary returns a faulty node that behaves as base (nil =
// dormant) until it observes the first wave message for General g, then
// permanently arms the armed strategy — a state-reactive attack that
// strikes exactly when the watched agreement starts, the timing no fixed
// schedule reproduces. The paper's proofs admit such adversaries: every
// bound must hold regardless.
func AdaptiveAdversary(g NodeID, base, armed Adversary) Adversary {
	return &byzantine.Adaptive{
		Base:    base,
		Trigger: byzantine.OnGeneral(g),
		Then:    func() protocol.Node { return armed },
	}
}

var _ = []Adversary{
	(*byzantine.Silent)(nil),
	(*byzantine.Equivocator)(nil),
	(*byzantine.PartialGeneral)(nil),
	(*byzantine.Yeasayer)(nil),
	(*byzantine.LateSupporter)(nil),
	(*byzantine.Spammer)(nil),
	(*byzantine.Replayer)(nil),
	(*byzantine.EchoForger)(nil),
	(*byzantine.MirrorVoter)(nil),
	(*byzantine.EdgeSupporter)(nil),
	(*byzantine.Composite)(nil),
	(*byzantine.Staged)(nil),
	(*byzantine.Adaptive)(nil),
}

var _ protocol.Node = Adversary(nil)
