package ssbyz

import (
	"ssbyz/internal/byzantine"
	"ssbyz/internal/protocol"
)

// Adversary constructors. Each returns a protocol.Node scripting one of
// the attack strategies the paper's proofs defend against; attach them
// with Simulation.WithFaulty. Faulty nodes cannot forge sender identities
// (the transport authenticates senders, matching the paper's model).

// Crashed returns a forever-silent node — the crash fault, weakest point
// of the paper's Byzantine fault spectrum; the protocol must tolerate f
// of these inside its n > 3f resilience bound just like full traitors.
func Crashed() Adversary { return &byzantine.Silent{} }

// EquivocatingGeneral returns a faulty General that disseminates the given
// values round-robin across the nodes at local time at — the canonical
// attack on the Uniqueness property IA-4 (anchors for different values
// must stay > 4d apart or collapse to one agreement).
func EquivocatingGeneral(at Ticks, values ...Value) Adversary {
	return &byzantine.Equivocator{Values: values, At: at}
}

// PartialGeneral returns a faulty General that sends its initiation only
// to the invitee subset at local time at, leaving the rest of the network
// to discover the agreement — or not — through the primitive's relay
// machinery (Blocks L–N and the Δagr-Relay property IA-3).
func PartialGeneral(at Ticks, v Value, invitees ...NodeID) Adversary {
	return &byzantine.PartialGeneral{Invitees: invitees, Value: v, At: at}
}

// Colluder returns a faulty node that amplifies every wave it observes
// for General g, ignoring the exclusivity condition of Block K and the
// lastq(G)/lastq(G,m) rate limits that correct nodes obey.
func Colluder() Adversary { return &byzantine.Yeasayer{} }

// LateColluder returns a faulty node that contributes to General g's waves
// as late as the message windows allow, stretching every stage toward the
// Δagr = (2f+1)Φ bound (the Timeliness-3 worst case).
func LateColluder(g NodeID, holdLocal Ticks) Adversary {
	return &byzantine.LateSupporter{G: g, HoldLocal: holdLocal}
}

// Spammer returns a faulty node that floods the network with syntactically
// valid garbage — the memory-bound attack on the Δrmv decay rules and the
// Unforgeability properties (IA-2, TPS-2).
func Spammer() Adversary { return &byzantine.Spammer{} }

// Replayer returns a faulty node that captures all traffic and re-emits it
// after delay — the replay attack on the Δrmv decay and the IA-4
// separation machinery (stale waves must never re-anchor an agreement).
func Replayer(delay Ticks) Adversary { return &byzantine.Replayer{Delay: delay} }

// EchoForger returns a faulty node that fabricates broadcast-layer echo
// messages for a broadcast by forgedP that never happened (TPS-2 attack).
func EchoForger(g, forgedP NodeID, v Value, k int, at Ticks) Adversary {
	return &byzantine.EchoForger{G: g, ForgedP: forgedP, ForgedV: v, K: k, At: at}
}

var _ = []Adversary{
	(*byzantine.Silent)(nil),
	(*byzantine.Equivocator)(nil),
	(*byzantine.PartialGeneral)(nil),
	(*byzantine.Yeasayer)(nil),
	(*byzantine.LateSupporter)(nil),
	(*byzantine.Spammer)(nil),
	(*byzantine.Replayer)(nil),
	(*byzantine.EchoForger)(nil),
}

var _ protocol.Node = Adversary(nil)
