package ssbyz

import (
	"fmt"

	"ssbyz/internal/nettrans"
	"ssbyz/internal/scenario"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Time is an instant of virtual real time in ticks — the rt(·) frame of
// the paper's mixed rt/τ bounds. Scenario scripts and network-condition
// windows are expressed in it; Ticks measures durations in the same unit.
type Time = simtime.Real

// This file is the scenario-engine facade: declarative adversarial
// scenarios over the paper's model — composable Byzantine strategies,
// scripted network conditions, and a General script — with a seeded
// random generator, a counterexample minimizer, and byte-exact replay.
// The paper's theorems quantify over every Byzantine strategy and every
// arrival pattern the bounded-delay model admits; a Scenario is one point
// of that space, and experiment S2 (RunExperiments) samples it by the
// thousand against the full property battery.

// Scenario declares one complete adversarial run against the paper's
// model: committee size (n > 3f), seed, up to f adversary assignments,
// a network-condition schedule, and the General script. A Scenario
// carries every bit of entropy its run consumes, so it replays
// byte-identically — the JSON form is the `ssbyz-bench -replay` artifact.
type Scenario = scenario.Spec

// ScenarioAdversary assigns one Byzantine strategy tree — a primitive, or
// a compose/staged/adaptive combinator over primitives — to one faulty
// node of the scenario (at most f = ⌊(n−1)/3⌋ assignments).
type ScenarioAdversary = scenario.AdversarySpec

// ScenarioInitiation is one entry of a scenario's General script: a
// correct General initiating agreement at a virtual real time (the t0 the
// Validity window [t0−d, t0+4d] is measured from).
type ScenarioInitiation = scenario.Initiation

// NetworkCondition is one scripted transport disturbance of a scenario:
// a timed partition, a jitter window, or node churn. Jitter stays within
// the paper's bounded-delay model (clamped into [DelayMin, DelayMax] ≤
// d); partitions and churn drop messages and must therefore only name
// faulty nodes for the property battery to stay meaningful.
type NetworkCondition = simnet.Condition

// Network-condition kinds. ConditionPartition drops messages crossing the
// named group's boundary inside the window; ConditionJitter stretches
// delays within the model's [DelayMin, DelayMax] ≤ d; ConditionChurn
// detaches the named nodes (a NIC crash with recovery — local state and
// timers survive, as a recovering node's must under self-stabilization).
const (
	ConditionPartition = simnet.CondPartition
	ConditionJitter    = simnet.CondJitter
	ConditionChurn     = simnet.CondChurn
)

// Wire-level condition kinds, live runtimes only (RuntimeVirtual /
// RuntimeLive): they act on encoded frames in the socket path, attacking
// exactly what the paper's model assumes away — and what the wire layer
// must re-establish from bytes. ConditionWAN shapes delay with a
// region-pair matrix, jitter, and an optional per-link rate cap, clamped
// into the model's D/2 environment share (clamps are counted);
// ConditionDuplicate re-sends copies that receive-side suppression must
// drop; ConditionReorder holds every Stride-th frame back without
// touching its send tick; ConditionCorrupt flips bytes the codec must
// reject; ConditionReplay re-injects captured frames (stale past d, or
// from another incarnation with CrossEpoch) the deadline/epoch checks
// must kill; ConditionForge rewrites the claimed sender so source
// authentication must refuse it. Corrupt/replay/forge — and reorder
// holds beyond d — void the paper's delivery axiom on the links they
// touch, so model-legal specs confine them to faulty nodes.
const (
	ConditionWAN       = simnet.CondWAN
	ConditionDuplicate = simnet.CondDuplicate
	ConditionReorder   = simnet.CondReorder
	ConditionCorrupt   = simnet.CondCorrupt
	ConditionReplay    = simnet.CondReplay
	ConditionForge     = simnet.CondForge
)

// Scenario runtimes: which substrate a Spec replays on. RuntimeSim (the
// "" default) is the discrete-event simulator of the paper's model;
// RuntimeVirtual is the live socket pipeline — wire codec, receive
// defenses, event loops — on a fake clock over the deterministic
// in-memory wire, so a spec replays byte-identically; RuntimeLive is the
// same pipeline over real loopback sockets under the wall clock.
const (
	RuntimeSim     = scenario.RuntimeSim
	RuntimeVirtual = scenario.RuntimeVirtual
	RuntimeLive    = scenario.RuntimeLive
)

// ScenarioFault is one scripted mid-run transient fault: at virtual real
// time At, node Node's RUNNING protocol state is corrupted in place
// (arbitrary-state injection inside its event loop), the paper's
// transient-fault model made executable. The runner measures the node's
// re-stabilization against Δstb = 2Δreset. Live runtimes only.
type ScenarioFault = scenario.Fault

// LiveNetStats are the live transport's per-class condition/attack
// counters: sends, receives, the injection counters of every wire-level
// attack class, and the defense counters (decode/auth/epoch/deadline/
// duplicate drops, clamps, rate deferrals) proving which rejections
// fired — the byte-level evidence behind a live run's verdict. The
// deadline drops are the transport enforcing the paper's bounded-delay
// axiom (deliver within d or not at all); the rest guard the Byzantine
// wire surface the codec re-establishes from raw bytes (DESIGN.md §10).
type LiveNetStats = nettrans.Stats

// ScenarioRestab is the measured recovery of one scripted fault: the
// ticks until the planted phantom state was observed swept, against the
// Δstb = 2Δreset budget the paper's self-stabilization property promises.
type ScenarioRestab = scenario.RestabSample

// GenerateScenario derives one model-legal randomized scenario from
// (seed, n): adversary strategy trees on up to f nodes, a legal delay
// range, a General script, and network conditions whose message drops
// only ever isolate faulty nodes — so the paper's properties must hold
// on every generated scenario, and any violation is a genuine
// counterexample. Generation is a pure function of (seed, n).
func GenerateScenario(seed int64, n int) Scenario {
	return scenario.Generate(seed, n)
}

// GenerateLiveScenario derives one model-legal randomized LIVE scenario
// from (seed, n): a RuntimeVirtual spec with WAN delay windows,
// duplication, byte-level attackers confined to faulty nodes, adversary
// strategy trees, and optionally a scripted mid-run transient fault with
// a post-Δstb probe initiation — the generated population of the V3
// campaign. The paper's properties must hold outside the fault window on
// every generated spec, so any battery violation is a genuine
// counterexample. Generation is a pure function of (seed, n).
func GenerateLiveScenario(seed int64, n int) Scenario {
	return scenario.GenerateLive(seed, n)
}

// ScenarioReport is a finished scenario run: the spec it ran, the full
// run report, and every violation of the paper's proved properties the
// battery found (empty for a faithful build on a model-legal scenario).
type ScenarioReport struct {
	Spec       Scenario
	Report     *Report
	Violations []Violation
	// Live carries the live-runtime extras — transport attack/defense
	// counters and per-fault re-stabilization measurements — and is nil
	// for simulator specs.
	Live *LiveScenarioReport
}

// LiveScenarioReport is the live-runtime half of a scenario verdict: the
// byte-level evidence (which attacks fired, which defenses rejected
// them) and the self-stabilization measurements of every scripted fault.
type LiveScenarioReport struct {
	Stats  LiveNetStats
	Restab []ScenarioRestab
}

// RunScenario executes a scenario and checks the full property battery
// (Agreement, Timeliness-1..4, IA-*, TPS-* for every General, plus the
// Validity window of each scripted initiation). Specs naming a live
// runtime run on the cluster pipeline — RuntimeVirtual deterministically,
// RuntimeLive over real sockets — with the split-phase battery judging
// around any scripted fault's Δstb window; simulator specs run under
// sim.Run. Identical RuntimeSim/RuntimeVirtual specs produce identical
// reports — parallel campaigns and replays agree byte for byte.
func RunScenario(sp Scenario) (*ScenarioReport, error) {
	if sp.LiveRuntime() {
		run, err := scenario.RunLive(sp)
		if err != nil {
			return nil, fmt.Errorf("ssbyz: %w", err)
		}
		return &ScenarioReport{
			Spec:       sp,
			Report:     &Report{res: run.Res},
			Violations: scenario.CheckLive(run, sp),
			Live:       &LiveScenarioReport{Stats: run.Stats, Restab: run.Restab},
		}, nil
	}
	sc, err := sp.Scenario()
	if err != nil {
		return nil, fmt.Errorf("ssbyz: %w", err)
	}
	res, err := sim.Run(sc)
	if err != nil {
		return nil, fmt.Errorf("ssbyz: %w", err)
	}
	return &ScenarioReport{
		Spec:       sp,
		Report:     &Report{res: res},
		Violations: scenario.Check(res, sp),
	}, nil
}

// ReplayScenario parses a scenario spec from its JSON form (as written by
// Scenario.Marshal, the S2/V3 counterexample exports, or a hand) and
// re-runs it against the paper's full property battery, on whatever
// runtime the spec names — the simulator, the deterministic virtual-time
// cluster, or real sockets. Replay of sim/virtual specs is exact: the
// spec carries all entropy, so the verdict reproduces the original run's
// byte for byte.
func ReplayScenario(blob []byte) (*ScenarioReport, error) {
	sp, err := scenario.Parse(blob)
	if err != nil {
		return nil, fmt.Errorf("ssbyz: %w", err)
	}
	return RunScenario(sp)
}

// MinimizeScenario greedily shrinks a scenario while the failing
// predicate holds: adversaries, conditions, and script entries are
// removed and combinator members hoisted until the spec is 1-minimal —
// the smallest replayable counterexample the move set can reach. fails
// must be deterministic (checking the paper's property battery on a run
// of the spec is; every bit of entropy lives in the spec).
func MinimizeScenario(sp Scenario, fails func(Scenario) bool) Scenario {
	return scenario.Shrink(sp, fails)
}
