package ssbyz

import (
	"fmt"

	"ssbyz/internal/scenario"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Time is an instant of virtual real time in ticks — the rt(·) frame of
// the paper's mixed rt/τ bounds. Scenario scripts and network-condition
// windows are expressed in it; Ticks measures durations in the same unit.
type Time = simtime.Real

// This file is the scenario-engine facade: declarative adversarial
// scenarios over the paper's model — composable Byzantine strategies,
// scripted network conditions, and a General script — with a seeded
// random generator, a counterexample minimizer, and byte-exact replay.
// The paper's theorems quantify over every Byzantine strategy and every
// arrival pattern the bounded-delay model admits; a Scenario is one point
// of that space, and experiment S2 (RunExperiments) samples it by the
// thousand against the full property battery.

// Scenario declares one complete adversarial run against the paper's
// model: committee size (n > 3f), seed, up to f adversary assignments,
// a network-condition schedule, and the General script. A Scenario
// carries every bit of entropy its run consumes, so it replays
// byte-identically — the JSON form is the `ssbyz-bench -replay` artifact.
type Scenario = scenario.Spec

// ScenarioAdversary assigns one Byzantine strategy tree — a primitive, or
// a compose/staged/adaptive combinator over primitives — to one faulty
// node of the scenario (at most f = ⌊(n−1)/3⌋ assignments).
type ScenarioAdversary = scenario.AdversarySpec

// ScenarioInitiation is one entry of a scenario's General script: a
// correct General initiating agreement at a virtual real time (the t0 the
// Validity window [t0−d, t0+4d] is measured from).
type ScenarioInitiation = scenario.Initiation

// NetworkCondition is one scripted transport disturbance of a scenario:
// a timed partition, a jitter window, or node churn. Jitter stays within
// the paper's bounded-delay model (clamped into [DelayMin, DelayMax] ≤
// d); partitions and churn drop messages and must therefore only name
// faulty nodes for the property battery to stay meaningful.
type NetworkCondition = simnet.Condition

// Network-condition kinds. ConditionPartition drops messages crossing the
// named group's boundary inside the window; ConditionJitter stretches
// delays within the model's [DelayMin, DelayMax] ≤ d; ConditionChurn
// detaches the named nodes (a NIC crash with recovery — local state and
// timers survive, as a recovering node's must under self-stabilization).
const (
	ConditionPartition = simnet.CondPartition
	ConditionJitter    = simnet.CondJitter
	ConditionChurn     = simnet.CondChurn
)

// GenerateScenario derives one model-legal randomized scenario from
// (seed, n): adversary strategy trees on up to f nodes, a legal delay
// range, a General script, and network conditions whose message drops
// only ever isolate faulty nodes — so the paper's properties must hold
// on every generated scenario, and any violation is a genuine
// counterexample. Generation is a pure function of (seed, n).
func GenerateScenario(seed int64, n int) Scenario {
	return scenario.Generate(seed, n)
}

// ScenarioReport is a finished scenario run: the spec it ran, the full
// run report, and every violation of the paper's proved properties the
// battery found (empty for a faithful build on a model-legal scenario).
type ScenarioReport struct {
	Spec       Scenario
	Report     *Report
	Violations []Violation
}

// RunScenario executes a scenario and checks the full property battery
// (Agreement, Timeliness-1..4, IA-*, TPS-* for every General, plus the
// Validity window of each scripted initiation). Identical specs produce
// identical reports — parallel campaigns and replays agree byte for byte.
func RunScenario(sp Scenario) (*ScenarioReport, error) {
	sc, err := sp.Scenario()
	if err != nil {
		return nil, fmt.Errorf("ssbyz: %w", err)
	}
	res, err := sim.Run(sc)
	if err != nil {
		return nil, fmt.Errorf("ssbyz: %w", err)
	}
	return &ScenarioReport{
		Spec:       sp,
		Report:     &Report{res: res},
		Violations: scenario.Check(res, sp),
	}, nil
}

// ReplayScenario parses a scenario spec from its JSON form (as written by
// Scenario.Marshal, experiment S2's counterexample export, or a hand) and
// re-runs it against the paper's full property battery. Replay is exact:
// the spec carries all entropy, so the verdict reproduces the original
// run's byte for byte.
func ReplayScenario(blob []byte) (*ScenarioReport, error) {
	sp, err := scenario.Parse(blob)
	if err != nil {
		return nil, fmt.Errorf("ssbyz: %w", err)
	}
	return RunScenario(sp)
}

// MinimizeScenario greedily shrinks a scenario while the failing
// predicate holds: adversaries, conditions, and script entries are
// removed and combinator members hoisted until the spec is 1-minimal —
// the smallest replayable counterexample the move set can reach. fails
// must be deterministic (checking the paper's property battery on a run
// of the spec is; every bit of entropy lives in the spec).
func MinimizeScenario(sp Scenario, fails func(Scenario) bool) Scenario {
	return scenario.Shrink(sp, fails)
}
