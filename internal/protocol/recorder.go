package protocol

import "sync"

// Recorder accumulates trace events from every node in a run. It is safe
// for concurrent use (the live transport appends from many goroutines; the
// discrete-event simulator from one).
type Recorder struct {
	mu     sync.Mutex
	events []TraceEvent
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add appends one event.
func (r *Recorder) Add(ev TraceEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// Events returns a copy of all recorded events in arrival order.
func (r *Recorder) Events() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEvent, len(r.events))
	copy(out, r.events)
	return out
}

// Filter returns the events satisfying pred, in arrival order.
func (r *Recorder) Filter(pred func(TraceEvent) bool) []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []TraceEvent
	for _, ev := range r.events {
		if pred(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// ByKind returns the events of one kind, in arrival order.
func (r *Recorder) ByKind(kind EventKind) []TraceEvent {
	return r.Filter(func(ev TraceEvent) bool { return ev.Kind == kind })
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}
