package protocol

import "sync"

// maxEventKind bounds the kind index of the recorder, derived from the
// EventKind block's sentinel so a newly added kind is indexed without
// touching this file.
const maxEventKind = int(numEventKinds) - 1

// Recorder accumulates trace events from every node in a run and maintains
// a per-kind index over them, so the property checkers read each kind in
// one presized pass instead of re-scanning (and re-copying) the full trace
// per predicate.
//
// NewRecorder returns a locked recorder, safe for concurrent use (the live
// transport appends from many goroutines). NewSequentialRecorder omits the
// mutex for the discrete-event simulator, which drives a world — and
// therefore its recorder — from a single goroutine; there the lock would
// be a pure per-event round-trip with nothing to guard.
type Recorder struct {
	mu     sync.Mutex
	unsync bool
	events []TraceEvent
	// byKind[k] lists the positions of kind-k events within events, in
	// arrival order. Positions (not copies): one TraceEvent is ~9 words,
	// and most kinds are read a handful of times per run.
	byKind [maxEventKind + 1][]int32
}

// NewRecorder returns an empty recorder safe for concurrent use.
func NewRecorder() *Recorder { return &Recorder{} }

// NewSequentialRecorder returns an empty recorder for single-goroutine
// use: same semantics, no locking. Handing it to multiple goroutines is a
// data race.
func NewSequentialRecorder() *Recorder { return &Recorder{unsync: true} }

func (r *Recorder) lock() {
	if !r.unsync {
		r.mu.Lock()
	}
}

func (r *Recorder) unlock() {
	if !r.unsync {
		r.mu.Unlock()
	}
}

// Add appends one event.
func (r *Recorder) Add(ev TraceEvent) {
	r.lock()
	defer r.unlock()
	if k := int(ev.Kind); k >= 0 && k <= maxEventKind {
		r.byKind[k] = append(r.byKind[k], int32(len(r.events)))
	}
	r.events = append(r.events, ev)
}

// Events returns a copy of all recorded events in arrival order.
func (r *Recorder) Events() []TraceEvent {
	r.lock()
	defer r.unlock()
	out := make([]TraceEvent, len(r.events))
	copy(out, r.events)
	return out
}

// Filter returns the events satisfying pred, in arrival order.
func (r *Recorder) Filter(pred func(TraceEvent) bool) []TraceEvent {
	r.lock()
	defer r.unlock()
	var out []TraceEvent
	for _, ev := range r.events {
		if pred(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// ByKind returns the events of one kind, in arrival order. The result is
// presized from the kind index: one allocation, no full-trace scan.
func (r *Recorder) ByKind(kind EventKind) []TraceEvent {
	r.lock()
	defer r.unlock()
	k := int(kind)
	if k < 0 || k > maxEventKind {
		return nil
	}
	idx := r.byKind[k]
	if len(idx) == 0 {
		return nil
	}
	out := make([]TraceEvent, len(idx))
	for i, pos := range idx {
		out[i] = r.events[pos]
	}
	return out
}

// ForEachKind calls fn for every event of the given kinds, in arrival
// order across all of them, without allocating. With one kind this is a
// walk of its index; with several it is an ordered merge of the indices.
// fn must not call back into the recorder.
func (r *Recorder) ForEachKind(fn func(TraceEvent), kinds ...EventKind) {
	r.lock()
	defer r.unlock()
	switch len(kinds) {
	case 0:
		return
	case 1:
		k := int(kinds[0])
		if k < 0 || k > maxEventKind {
			return
		}
		for _, pos := range r.byKind[k] {
			fn(r.events[pos])
		}
		return
	}
	// Ordered merge by position. cursors[i] walks kinds[i]'s index; the
	// smallest position across cursors is the next event in arrival order.
	if len(kinds) > maxEventKind+1 {
		kinds = kinds[:maxEventKind+1]
	}
	var cursors [maxEventKind + 1]int
	for {
		best, bestPos := -1, int32(0)
		for i, kind := range kinds {
			k := int(kind)
			if k < 0 || k > maxEventKind || cursors[i] >= len(r.byKind[k]) {
				continue
			}
			if pos := r.byKind[k][cursors[i]]; best < 0 || pos < bestPos {
				best, bestPos = i, pos
			}
		}
		if best < 0 {
			return
		}
		cursors[best]++
		fn(r.events[bestPos])
	}
}

// ForEachKindFrom calls fn for every kind-event recorded at cursor
// position start or later (positions count events of that kind only, in
// arrival order) and returns the new cursor. It lets a live consumer — the
// service pump watching for decide returns — drain a kind incrementally
// without re-copying the prefix it has already seen.
func (r *Recorder) ForEachKindFrom(kind EventKind, start int, fn func(TraceEvent)) int {
	r.lock()
	defer r.unlock()
	k := int(kind)
	if k < 0 || k > maxEventKind {
		return start
	}
	idx := r.byKind[k]
	if start < 0 {
		start = 0
	}
	for _, pos := range idx[min(start, len(idx)):] {
		fn(r.events[pos])
	}
	return len(idx)
}

// KindLen returns how many events of one kind are recorded, without
// copying anything.
func (r *Recorder) KindLen(kind EventKind) int {
	r.lock()
	defer r.unlock()
	k := int(kind)
	if k < 0 || k > maxEventKind {
		return 0
	}
	return len(r.byKind[k])
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.lock()
	defer r.unlock()
	return len(r.events)
}
