package protocol

import (
	"strconv"
	"strings"
)

// Session-namespaced values implement the paper's footnote-9 extension
// ("one can expand the protocol to a number of concurrent invocations by
// using an index to differentiate among the concurrent invocations"): the
// wire value of concurrent session k is "s<k>|<inner>", so no message-log
// window of one session can ever count messages of another, and the
// property checkers can scope the per-session bounds (Agreement,
// Timeliness-1, IA-4, Timeliness-4) to one concurrent invocation.
//
// These helpers used to live in internal/indexed; they moved here when the
// session-multiplexed engine made the namespace part of the shared
// protocol vocabulary (the checkers and the service layer both parse it).

// SlotValue namespaces v for concurrent session slot.
func SlotValue(slot int, v Value) Value {
	return Value("s" + strconv.Itoa(slot) + "|" + string(v))
}

// ParseSlotValue splits a session-namespaced value. Values that carry no
// namespace (the single-session protocol of Fig. 1) return ok=false with
// the value unchanged.
func ParseSlotValue(v Value) (slot int, inner Value, ok bool) {
	s := string(v)
	if !strings.HasPrefix(s, "s") {
		return 0, v, false
	}
	bar := strings.IndexByte(s, '|')
	if bar < 2 {
		return 0, v, false
	}
	slot, err := strconv.Atoi(s[1:bar])
	if err != nil {
		return 0, v, false
	}
	return slot, Value(s[bar+1:]), true
}

// SlotOf returns the session slot a value is namespaced for, or -1 for
// un-namespaced (single-session) values — the grouping key the per-session
// checkers split concurrent invocations by (footnote-9).
func SlotOf(v Value) int {
	if slot, _, ok := ParseSlotValue(v); ok {
		return slot
	}
	return -1
}
