package protocol

import "ssbyz/internal/simtime"

// TimerTag names a pending timer so handlers can dispatch on it. Tags are
// opaque to the transports.
type TimerTag struct {
	// Name identifies the purpose (e.g. "round-deadline", "cleanup").
	Name string
	// G, M, K optionally scope the timer to a protocol instance.
	G NodeID
	M Value
	K int
}

// TimerID identifies a scheduled timer for cancellation.
type TimerID uint64

// Runtime is the environment a node runs in. Both the discrete-event
// simulator (internal/simnet) and the live goroutine transport
// (internal/livenet) implement it. All methods are called from the node's
// single event loop; implementations serialize delivery so Node code needs
// no locking.
type Runtime interface {
	// ID returns this node's identity.
	ID() NodeID
	// Now returns the node's local clock reading (drifting, possibly
	// wrapped). Protocol code must reason in this frame only.
	Now() simtime.Local
	// Send transmits m to a single node. The transport stamps From.
	Send(to NodeID, m Message)
	// Broadcast transmits m to every node including the sender itself
	// (the model has no broadcast medium; this is n point-to-point sends).
	Broadcast(m Message)
	// After schedules a timer that fires when the local clock has
	// advanced by dl, delivering tag to OnTimer.
	After(dl simtime.Duration, tag TimerTag) TimerID
	// Cancel stops a pending timer; cancelling a fired timer is a no-op.
	Cancel(id TimerID)
	// Params returns the shared protocol parameters.
	Params() Params
	// Trace records a protocol event for the property checkers. Correct
	// nodes call it at decide/abort/I-accept/accept points.
	Trace(ev TraceEvent)
}

// Node is a reactive protocol state machine. Implementations must be
// driven by a single goroutine (the transports guarantee this).
type Node interface {
	// Start attaches the runtime. It is called once, before any message
	// or timer delivery.
	Start(rt Runtime)
	// OnMessage delivers a received message. from is authenticated by the
	// transport.
	OnMessage(from NodeID, m Message)
	// OnTimer delivers a timer expiry.
	OnTimer(tag TimerTag)
}

// EventKind classifies trace events.
type EventKind int

const (
	// EvDecide: node returned ⟨value ≠ ⊥, τG⟩ from ss-Byz-Agree.
	EvDecide EventKind = iota + 1
	// EvAbort: node returned ⟨⊥, τG⟩.
	EvAbort
	// EvIAccept: node executed Line N4 (I-accept ⟨G,m,τG⟩).
	EvIAccept
	// EvAccept: node accepted (p,m,k) inside msgd-broadcast.
	EvAccept
	// EvInvoke: node invoked ss-Byz-Agree (received the Initiator msg).
	EvInvoke
	// EvInitiate: the General sent (Initiator,G,m).
	EvInitiate
	// EvPulse: node emitted a synchronized pulse (pulse extension).
	EvPulse
	// EvBaselineDecide: node decided in the TPS-87 baseline.
	EvBaselineDecide
	// EvExpire: an agreement instance terminated by state reset without
	// returning a value — the paper's second termination mode ("by time
	// (2f+1)·Φ + 3d on its clock all entries will be reset, which is a
	// termination of the protocol"). It occurs when a (possibly faulty)
	// General's initiation never produced an anchor at this node.
	EvExpire

	// numEventKinds is the sentinel bounding the kind space; the
	// recorder's per-kind index is sized from it, so a kind added above
	// is indexed automatically. Keep it last.
	numEventKinds
)

var eventKindNames = map[EventKind]string{
	EvDecide:         "decide",
	EvAbort:          "abort",
	EvIAccept:        "i-accept",
	EvAccept:         "accept",
	EvInvoke:         "invoke",
	EvInitiate:       "initiate",
	EvPulse:          "pulse",
	EvBaselineDecide: "baseline-decide",
	EvExpire:         "expire",
}

func (k EventKind) String() string {
	if s, ok := eventKindNames[k]; ok {
		return s
	}
	return "event(?)"
}

// TraceEvent is one observation recorded during a run. RT is stamped by the
// transport (the simulator knows virtual real time exactly; livenet uses
// wall-clock). Tau and TauG are in the node's local frame; RTauG is the
// real-time instant at which the node's local clock read TauG, computed by
// the transport so checkers can compare anchors across nodes (rt(τG) in the
// paper).
type TraceEvent struct {
	Kind  EventKind
	Node  NodeID
	RT    simtime.Real
	Tau   simtime.Local
	G     NodeID
	M     Value
	K     int
	TauG  simtime.Local
	RTauG simtime.Real
	// P is the broadcaster for EvAccept events (the p of (p, m, k)).
	P NodeID
}
