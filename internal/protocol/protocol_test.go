package protocol

import (
	"strings"
	"testing"

	"ssbyz/internal/simtime"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"n=4 f=1", Params{N: 4, F: 1, D: 1000}, true},
		{"n=7 f=2", Params{N: 7, F: 2, D: 1000}, true},
		{"n=3f", Params{N: 6, F: 2, D: 1000}, false},
		{"zero n", Params{N: 0, F: 0, D: 1000}, false},
		{"negative f", Params{N: 4, F: -1, D: 1000}, false},
		{"zero d", Params{N: 4, F: 1, D: 0}, false},
		{"f=0 allowed", Params{N: 1, F: 0, D: 1}, true},
		{"tiny wrap", Params{N: 4, F: 1, D: 1000, Wrap: 100}, false},
		{"huge wrap", Params{N: 4, F: 1, D: 1000, Wrap: 100_000_000}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(); (err == nil) != tc.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestMaxFaults(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {3, 0}, {4, 1}, {6, 1}, {7, 2}, {10, 3}, {16, 5}, {25, 8}, {31, 10},
	}
	for _, tc := range cases {
		if got := MaxFaults(tc.n); got != tc.want {
			t.Errorf("MaxFaults(%d) = %d, want %d", tc.n, got, tc.want)
		}
		// The optimum must itself validate.
		pp := Params{N: tc.n, F: tc.want, D: 1000}
		if err := pp.Validate(); err != nil {
			t.Errorf("optimal params for n=%d invalid: %v", tc.n, err)
		}
	}
}

// TestDerivedConstants pins every timing constant to the paper's formula
// at d=1000, f=2 (n=7): Φ=8d, Δagr=(2f+1)Φ=40d, Δ0=13d, Δrmv=53d,
// Δv=15d+2Δrmv=121d, Δnode=161d, Δreset=20d+4Δrmv=232d, Δstb=464d.
func TestDerivedConstants(t *testing.T) {
	pp := Params{N: 7, F: 2, D: 1000}
	cases := []struct {
		name string
		got  simtime.Duration
		want simtime.Duration
	}{
		{"τGskew", pp.TauGSkew(), 6000},
		{"Φ", pp.Phi(), 8000},
		{"Δagr", pp.DeltaAgr(), 40000},
		{"Δ0", pp.Delta0(), 13000},
		{"Δrmv", pp.DeltaRmv(), 53000},
		{"Δv", pp.DeltaV(), 121000},
		{"Δnode", pp.DeltaNode(), 161000},
		{"Δreset", pp.DeltaReset(), 232000},
		{"Δstb", pp.DeltaStb(), 464000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.got != tc.want {
				t.Errorf("%s = %d, want %d", tc.name, tc.got, tc.want)
			}
		})
	}
}

func TestQuorums(t *testing.T) {
	pp := Params{N: 7, F: 2, D: 1}
	if got := pp.Quorum(); got != 5 {
		t.Errorf("Quorum = %d, want 5", got)
	}
	if got := pp.ByzQuorum(); got != 3 {
		t.Errorf("ByzQuorum = %d, want 3", got)
	}
	// n−2f ≥ f+1 at the optimum: a byz-quorum always contains a correct node.
	for n := 4; n <= 40; n++ {
		p := DefaultParams(n)
		if p.ByzQuorum() < p.F+1 {
			t.Errorf("n=%d: ByzQuorum %d < f+1 = %d", n, p.ByzQuorum(), p.F+1)
		}
	}
}

func TestParamsWrapHelpers(t *testing.T) {
	pp := Params{N: 4, F: 1, D: 1, Wrap: 1000}
	if got := pp.Sub(10, 990); got != 20 {
		t.Errorf("Sub across wrap = %d, want 20", got)
	}
	if got := pp.Add(990, 20); got != 10 {
		t.Errorf("Add across wrap = %d, want 10", got)
	}
	noWrap := Params{N: 4, F: 1, D: 1}
	if got := noWrap.Sub(10, 990); got != -980 {
		t.Errorf("Sub without wrap = %d, want -980", got)
	}
}

func TestDefaultParams(t *testing.T) {
	pp := DefaultParams(10)
	if pp.N != 10 || pp.F != 3 || pp.D != 1000 {
		t.Errorf("DefaultParams(10) = %+v", pp)
	}
	if err := pp.Validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
}

func TestMsgKindString(t *testing.T) {
	known := []MsgKind{Initiator, Support, Approve, Ready, Init, Echo, InitPrime, EchoPrime, BaselineRound}
	seen := map[string]bool{}
	for _, k := range known {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "msgkind(") {
			t.Errorf("kind %d has no name", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if s := MsgKind(0).String(); !strings.HasPrefix(s, "msgkind(") {
		t.Errorf("zero kind String = %q, want placeholder", s)
	}
}

func TestMessageString(t *testing.T) {
	m := Message{Kind: Support, G: 1, M: "x"}
	if s := m.String(); !strings.Contains(s, "support") || !strings.Contains(s, "G1") {
		t.Errorf("Message.String = %q", s)
	}
	b := Message{Kind: Echo, G: 1, M: "x", P: 3, K: 2}
	if s := b.String(); !strings.Contains(s, "p3") || !strings.Contains(s, "echo") {
		t.Errorf("broadcast Message.String = %q", s)
	}
}

func TestEventKindString(t *testing.T) {
	for _, k := range []EventKind{EvDecide, EvAbort, EvIAccept, EvAccept, EvInvoke, EvInitiate, EvPulse, EvBaselineDecide, EvExpire} {
		if s := k.String(); s == "" || s == "event(?)" {
			t.Errorf("EventKind %d has no name", int(k))
		}
	}
	if s := EventKind(999).String(); s != "event(?)" {
		t.Errorf("unknown EventKind String = %q", s)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Add(TraceEvent{Kind: EvDecide, Node: 1, M: "a"})
	r.Add(TraceEvent{Kind: EvAbort, Node: 2})
	r.Add(TraceEvent{Kind: EvDecide, Node: 3, M: "b"})
	if got := r.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
	if got := len(r.ByKind(EvDecide)); got != 2 {
		t.Errorf("ByKind(EvDecide) = %d, want 2", got)
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Node != 1 || evs[2].Node != 3 {
		t.Errorf("Events order broken: %+v", evs)
	}
	// Events returns a copy: mutating it must not corrupt the recorder.
	evs[0].Node = 99
	if r.Events()[0].Node != 1 {
		t.Error("Events exposed internal storage")
	}
	got := r.Filter(func(ev TraceEvent) bool { return ev.M == "b" })
	if len(got) != 1 || got[0].Node != 3 {
		t.Errorf("Filter = %+v", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				r.Add(TraceEvent{Kind: EvDecide, Node: NodeID(g)})
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := r.Len(); got != 400 {
		t.Errorf("concurrent Len = %d, want 400", got)
	}
}
