package protocol

import (
	"errors"
	"fmt"

	"ssbyz/internal/simtime"
)

// Params carries the model constants of Section 2 and derives every timing
// constant of Section 3. All durations are expressed in ticks of the
// simulation clock; D is the paper's d — the bound on the elapsed time from
// a correct node sending a message until every correct node has received
// and processed it, as measured on any correct node's timer (drift
// included).
//
// The paper fixes τGskew = 6d, giving a phase Φ = τGskew + 2d = 8d, and:
//
//	Δagr   = (2f+1)·Φ                 — agreement duration bound
//	Δ0     = 13d                      — min spacing between initiations
//	Δrmv   = Δagr + Δ0                — decay age of old values
//	Δv     = 15d + 2Δrmv              — min spacing for the same value
//	Δnode  = Δv + Δagr                — non-faulty → correct threshold
//	Δreset = 20d + 4Δrmv              — General back-off after a failure
//	Δstb   = 2·Δreset                 — stabilization time
type Params struct {
	// N is the number of nodes; F the bound on concurrent faults at
	// steady state. The protocol requires N > 3F.
	N, F int
	// D is d: the message delivery + processing bound in ticks.
	D simtime.Duration
	// Wrap is the local-clock wrap modulus (0 disables wrapping). When
	// non-zero it must be much larger than DeltaStb.
	Wrap simtime.Duration
	// BlockRWindow overrides the prompt-decision window of Block R
	// (0 means the default 5d; see the deviation note in DESIGN.md §3).
	// It exists for the A1 ablation, which demonstrates why the paper's
	// literal 4d misses the validity bound; production code leaves it 0.
	BlockRWindow simtime.Duration
}

// Validate checks the resilience precondition n > 3f and basic sanity.
func (p Params) Validate() error {
	if p.N <= 0 {
		return errors.New("protocol: N must be positive")
	}
	if p.F < 0 {
		return errors.New("protocol: F must be non-negative")
	}
	if p.N <= 3*p.F {
		return fmt.Errorf("protocol: need n > 3f, got n=%d f=%d", p.N, p.F)
	}
	if p.D <= 0 {
		return errors.New("protocol: D must be positive")
	}
	if p.Wrap != 0 && p.Wrap < 8*p.DeltaStb() {
		return fmt.Errorf("protocol: wrap modulus %d too small for Δstb=%d", p.Wrap, p.DeltaStb())
	}
	return nil
}

// MaxFaults returns ⌊(n−1)/3⌋, the optimal resilience for n nodes.
func MaxFaults(n int) int { return (n - 1) / 3 }

// TauGSkew is the bound on the real-time spread of the τG anchors at
// correct nodes (property IA-3A): 6d.
func (p Params) TauGSkew() simtime.Duration { return 6 * p.D }

// Phi is the duration of one phase: τGskew + 2d = 8d.
func (p Params) Phi() simtime.Duration { return p.TauGSkew() + 2*p.D }

// DeltaAgr is the upper bound on running the agreement protocol:
// (2f+1)·Φ.
func (p Params) DeltaAgr() simtime.Duration {
	return simtime.Duration(2*p.F+1) * p.Phi()
}

// Delta0 is the minimal time between consecutive initiations by a correct
// General, for different values: 13d.
func (p Params) Delta0() simtime.Duration { return 13 * p.D }

// DeltaRmv is the age after which old values are decayed: Δagr + Δ0.
func (p Params) DeltaRmv() simtime.Duration { return p.DeltaAgr() + p.Delta0() }

// DeltaV is the minimal time between two initiations with the same value:
// 15d + 2Δrmv.
func (p Params) DeltaV() simtime.Duration { return 15*p.D + 2*p.DeltaRmv() }

// DeltaNode is the continuous non-faulty time after which a recovering
// node is considered correct: Δv + Δagr.
func (p Params) DeltaNode() simtime.Duration { return p.DeltaV() + p.DeltaAgr() }

// DeltaReset is the silence period a correct General observes after
// noticing a failed initiation (criterion IG3): 20d + 4Δrmv.
func (p Params) DeltaReset() simtime.Duration { return 20*p.D + 4*p.DeltaRmv() }

// DeltaStb is the stabilization time of the system: 2·Δreset.
func (p Params) DeltaStb() simtime.Duration { return 2 * p.DeltaReset() }

// Quorum returns n−f, the size of the correct quorum.
func (p Params) Quorum() int { return p.N - p.F }

// ByzQuorum returns n−2f, the threshold that guarantees at least one
// correct sender behind a message set.
func (p Params) ByzQuorum() int { return p.N - 2*p.F }

// Sub computes now−then on the node-local clock honoring the wrap modulus.
func (p Params) Sub(now, then simtime.Local) simtime.Duration {
	return simtime.WrapSub(now, then, p.Wrap)
}

// Add advances a local reading honoring the wrap modulus.
func (p Params) Add(t simtime.Local, dl simtime.Duration) simtime.Local {
	return simtime.WrapAdd(t, dl, p.Wrap)
}

// DefaultParams returns a ready-to-use parameter set: n nodes, optimal
// f = ⌊(n−1)/3⌋, and d = 1000 ticks.
func DefaultParams(n int) Params {
	return Params{N: n, F: MaxFaults(n), D: 1000}
}
