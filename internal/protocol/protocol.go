// Package protocol defines the shared vocabulary of the reproduction: node
// identities, values, wire messages, the timing constants of the paper
// (Φ, Δ0, Δrmv, Δv, Δagr, Δnode, Δreset, Δstb), and the transport-agnostic
// Runtime/Node interfaces behind which both the discrete-event simulator
// and the live goroutine transport sit.
package protocol

import "fmt"

// NodeID identifies a node. IDs are dense in [0, N).
type NodeID int

// Value is an agreement value disseminated by a General. The empty string
// is not a valid value; Bottom represents ⊥ (no decision / abort).
type Value string

// Bottom is the ⊥ value returned by aborting nodes.
const Bottom Value = ""

// MsgKind enumerates every wire message of the three layers of the
// protocol stack. Kinds start at 1 so the zero value is invalid
// (a corrupted message is detectable).
type MsgKind int

const (
	// Initiator is the General's initiation (Initiator, G, m) — Block Q0.
	Initiator MsgKind = iota + 1
	// Support, Approve, Ready are the Initiator-Accept messages (Fig. 2).
	Support
	Approve
	Ready
	// Init, Echo, InitPrime, EchoPrime are the msgd-broadcast messages
	// (Fig. 3): (init,p,m,k), (echo,p,m,k), (init′,p,m,k), (echo′,p,m,k).
	Init
	Echo
	InitPrime
	EchoPrime
	// BaselineRound carries the synchronous TPS-87 baseline's messages;
	// its sub-kind lives in the message's Aux field.
	BaselineRound
)

var msgKindNames = map[MsgKind]string{
	Initiator:     "initiator",
	Support:       "support",
	Approve:       "approve",
	Ready:         "ready",
	Init:          "init",
	Echo:          "echo",
	InitPrime:     "init'",
	EchoPrime:     "echo'",
	BaselineRound: "baseline",
}

func (k MsgKind) String() string {
	if s, ok := msgKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("msgkind(%d)", int(k))
}

// Message is the single wire format shared by all protocol layers. The
// network authenticates From (a faulty node cannot forge another sender's
// identity once the network is non-faulty), matching the paper's model.
type Message struct {
	Kind MsgKind
	// G is the General this message concerns.
	G NodeID
	// M is the value.
	M Value
	// P is the broadcasting node for msgd-broadcast triples (p, m, k).
	P NodeID
	// K is the msgd-broadcast round/level k, or the baseline round number.
	K int
	// Aux carries baseline sub-kinds and adversarial payloads.
	Aux int
	// From is stamped by the transport; receivers must not trust any
	// in-body sender claim.
	From NodeID
}

func (m Message) String() string {
	switch m.Kind {
	case Initiator, Support, Approve, Ready:
		return fmt.Sprintf("(%s,G%d,%q)", m.Kind, m.G, string(m.M))
	default:
		return fmt.Sprintf("(%s,p%d,%q,%d)@G%d", m.Kind, m.P, string(m.M), m.K, m.G)
	}
}
