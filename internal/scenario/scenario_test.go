package scenario

import (
	"reflect"
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// simRun aliases sim.Run for the differential test's readability.
var simRun = sim.Run

func TestGeneratedSpecsAreValidAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		sp := Generate(seed, 7)
		if err := sp.Validate(); err != nil {
			t.Fatalf("seed %d: generated spec invalid: %v", seed, err)
		}
		again := Generate(seed, 7)
		if !reflect.DeepEqual(sp, again) {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
	}
	// Different seeds explore the space (no degenerate constant generator).
	if reflect.DeepEqual(Generate(1, 7), Generate(2, 7)) {
		t.Fatal("seeds 1 and 2 generated identical specs")
	}
}

func TestGeneratedSpecsDropOnlyAroundFaultyNodes(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		sp := Generate(seed, 16)
		faulty := map[protocol.NodeID]bool{}
		for _, a := range sp.Adversaries {
			faulty[a.Node] = true
		}
		for _, c := range sp.Conditions {
			if c.Kind == simnet.CondJitter {
				continue
			}
			for _, id := range c.Nodes {
				if !faulty[id] {
					t.Fatalf("seed %d: %s window names correct node %d — model-illegal drop",
						seed, c.Kind, id)
				}
			}
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	sp := Generate(11, 7)
	back, err := Parse(sp.Marshal())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(sp, back) {
		t.Fatalf("round trip changed the spec:\n%+v\nvs\n%+v", sp, back)
	}
}

func TestRunCheckReplaysIdentically(t *testing.T) {
	// The spec carries all entropy: running the same spec twice must give
	// identical violation sets and message counts.
	for seed := int64(0); seed < 5; seed++ {
		sp := Generate(seed, 7)
		resA, vA := RunCheck(sp)
		resB, vB := RunCheck(sp)
		if !reflect.DeepEqual(vA, vB) {
			t.Fatalf("seed %d: violations differ across replays: %v vs %v", seed, vA, vB)
		}
		if resA == nil || resB == nil {
			t.Fatalf("seed %d: run failed: %v", seed, vA)
		}
		totA, _ := resA.World.MessageCount()
		totB, _ := resB.World.MessageCount()
		if totA != totB {
			t.Fatalf("seed %d: message counts differ: %d vs %d", seed, totA, totB)
		}
	}
}

func TestGeneratedCampaignHoldsTheBattery(t *testing.T) {
	if testing.Short() {
		t.Skip("runs dozens of simulations; skipped in -short")
	}
	// The paper's properties hold under every adversary the model admits,
	// so every generated (model-legal) spec must pass the full battery.
	for seed := int64(0); seed < 30; seed++ {
		sp := Generate(seed, 7)
		if _, violations := RunCheck(sp); len(violations) != 0 {
			t.Errorf("seed %d: %d violations, e.g. %v\nspec:\n%s",
				seed, len(violations), violations[0], sp.Marshal())
		}
	}
}

func TestValidateRejectsIllegalSpecs(t *testing.T) {
	base := func() Spec {
		return Spec{N: 7, Seed: 1,
			Script: []Initiation{{At: 2000, G: 0, Value: "v"}}}
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"n<=3f", func(sp *Spec) { sp.F = 2; sp.N = 6 }},
		{"too many adversaries", func(sp *Spec) {
			for i := 1; i <= 3; i++ {
				sp.Adversaries = append(sp.Adversaries,
					AdversarySpec{Node: protocol.NodeID(i), Kind: KindCrash})
			}
		}},
		{"duplicate adversary node", func(sp *Spec) {
			sp.Adversaries = []AdversarySpec{
				{Node: 1, Kind: KindCrash}, {Node: 1, Kind: KindYeasayer}}
		}},
		{"faulty scripted General", func(sp *Spec) {
			sp.Adversaries = []AdversarySpec{{Node: 0, Kind: KindYeasayer}}
		}},
		{"double initiation", func(sp *Spec) {
			sp.Script = append(sp.Script, Initiation{At: 9000, G: 0, Value: "w"})
		}},
		{"bottom value", func(sp *Spec) { sp.Script[0].Value = protocol.Bottom }},
		{"unknown kind", func(sp *Spec) {
			sp.Adversaries = []AdversarySpec{{Node: 1, Kind: "gremlin"}}
		}},
		{"compose without parts", func(sp *Spec) {
			sp.Adversaries = []AdversarySpec{{Node: 1, Kind: KindCompose}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := base()
			tc.mut(&sp)
			if err := sp.Validate(); err == nil {
				t.Error("Validate accepted an illegal spec")
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
}

// TestWeakenedCheckerYieldsMinimizedReplayableSpec is the acceptance
// exercise for the search loop: a deliberately weakened checker (decision
// skew bound tightened from the paper's 3d to zero — unsatisfiable under
// randomized delays) flags a generated spec; Shrink minimizes it; the
// minimized spec still fails, is 1-minimal, and replays to the identical
// verdict after a JSON round trip — exactly what `ssbyz-bench -replay`
// does with an exported counterexample.
func TestWeakenedCheckerYieldsMinimizedReplayableSpec(t *testing.T) {
	// The weakened checker: ANY nonzero decision skew between two correct
	// deciders of a scripted General is a "violation".
	skewed := func(sp Spec) bool {
		res, err := Run(sp)
		if err != nil {
			return false
		}
		for _, init := range sp.Script {
			var rts []simtime.Real
			for _, d := range res.Decisions(init.G) {
				if d.Decided {
					rts = append(rts, d.RT)
				}
			}
			for _, rt := range rts {
				if rt != rts[0] {
					return true
				}
			}
		}
		return false
	}

	// Find a generated spec the weakened checker flags (randomized delays
	// make nonzero skew near-certain once anything decides).
	var failing *Spec
	for seed := int64(0); seed < 20; seed++ {
		sp := Generate(seed, 7)
		if skewed(sp) {
			failing = &sp
			break
		}
	}
	if failing == nil {
		t.Fatal("no generated spec tripped the weakened checker")
	}

	min := Shrink(*failing, skewed)
	if !skewed(min) {
		t.Fatal("minimized spec no longer fails")
	}
	if min.components() > failing.components() {
		t.Fatalf("shrink grew the spec: %d -> %d components",
			failing.components(), min.components())
	}
	// 1-minimality: every single further removal loses the failure.
	for _, cand := range shrinkCandidates(min) {
		if cand.components() < min.components() && skewed(cand) {
			t.Fatalf("not 1-minimal: a smaller failing candidate remains:\n%s", cand.Marshal())
		}
	}
	// Replay discipline: the JSON artifact reproduces the exact verdict.
	back, err := Parse(min.Marshal())
	if err != nil {
		t.Fatalf("minimized spec does not parse: %v", err)
	}
	if !skewed(back) {
		t.Fatal("replayed minimized spec does not reproduce the failure")
	}
	_, vA := RunCheck(back)
	_, vB := RunCheck(back)
	if !reflect.DeepEqual(vA, vB) {
		t.Fatalf("replay verdicts differ: %v vs %v", vA, vB)
	}
}

// TestScenarioLegacyConditionsDifferential pins the conditions-on world
// against the bypassed machinery on a schedule-free spec, end to end
// through the scenario layer: identical traces, counts, and battery
// verdicts.
func TestScenarioLegacyConditionsDifferential(t *testing.T) {
	sp := Generate(3, 7)
	sp.Conditions = nil
	run := func(legacy bool) ([]protocol.TraceEvent, int64, []string) {
		sc, err := sp.Scenario()
		if err != nil {
			t.Fatalf("Scenario: %v", err)
		}
		sc.LegacyConditions = legacy
		res, err := simRun(sc)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		total, _ := res.World.MessageCount()
		var vs []string
		for _, v := range Check(res, sp) {
			vs = append(vs, v.String())
		}
		return res.Rec.Events(), total, vs
	}
	evOn, totOn, vOn := run(false)
	evOff, totOff, vOff := run(true)
	if totOn != totOff {
		t.Fatalf("message counts differ: %d vs %d", totOn, totOff)
	}
	if !reflect.DeepEqual(vOn, vOff) {
		t.Fatalf("verdicts differ: %v vs %v", vOn, vOff)
	}
	if len(evOn) != len(evOff) {
		t.Fatalf("trace lengths differ: %d vs %d", len(evOn), len(evOff))
	}
	for i := range evOn {
		if evOn[i] != evOff[i] {
			t.Fatalf("trace event %d differs: %+v vs %+v", i, evOn[i], evOff[i])
		}
	}
}
