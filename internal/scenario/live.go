package scenario

import (
	"fmt"
	"sort"
	"time"

	"ssbyz/internal/check"
	"ssbyz/internal/clock"
	"ssbyz/internal/core"
	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
	"ssbyz/internal/transient"
)

// This file executes a Spec on the live runtimes: the nettrans cluster in
// virtual time (RuntimeVirtual — byte-deterministic, the default `go
// test` substrate) or over real loopback sockets under the wall clock
// (RuntimeLive). The same spec vocabulary drives both; what the live
// runtimes add over the simulator is bytes — the wire codec, the
// receive-pipeline defenses, the byte-level attack conditions — and
// in-situ transient faults: a scripted Fault corrupts a RUNNING node's
// protocol state (transient.CorruptRunning inside its event loop) and
// the runner measures the observed re-stabilization time against the
// paper's Δstb = 2Δreset bound.

// Virtual/live tick lengths. The virtual tick is arbitrary (time only
// moves when the fake clock steps); the live tick stretches the protocol
// constants so d absorbs loopback scheduling noise.
const (
	virtualTick = time.Millisecond
	liveTick    = 500 * time.Microsecond
)

// RestabSample is the measured recovery of one scripted fault: how long
// after injection the planted phantom record was observed swept
// (Ticks < 0 when it survived to the end of the run), against the
// Budget = Δstb the paper promises.
type RestabSample struct {
	Node   protocol.NodeID  `json:"node"`
	At     simtime.Real     `json:"at"`
	Ticks  simtime.Duration `json:"ticks"`
	Budget simtime.Duration `json:"budget"`
}

// LiveRun is a finished live-runtime execution of a Spec: the shaped
// trace, the actually-traced initiation instants (the Validity anchors),
// per-fault recovery measurements, and the transport's attack/defense
// counters.
type LiveRun struct {
	Res *sim.Result
	// PreInits/PostInits are the traced initiations before the first
	// fault and after the last fault's Δstb window (all of them in
	// PreInits when the spec scripts no faults).
	PreInits, PostInits []check.LiveInitiation
	// InitErrs maps script indices to sending-validity refusals.
	InitErrs map[int]error
	// Restab has one sample per scripted fault, in fault order.
	Restab []RestabSample
	// Stats aggregates every node's transport counters — the proof of
	// which attacks were injected and which defenses fired.
	Stats nettrans.Stats
	// FirstFault/PostStart bound the fault window ([0,0) without faults):
	// the battery judges events outside it.
	FirstFault, PostStart simtime.Real
}

// liveEvent is one scheduled act of the run script: an initiation or a
// fault injection.
type liveEvent struct {
	at    simtime.Real
	init  int // script index, -1 for faults
	fault int // fault index, -1 for initiations
}

// RunLive executes a live-runtime spec to completion. The spec's Seed
// drives the virtual wire's delivery delays, so under RuntimeVirtual the
// whole run — attack schedule included — replays byte-identically.
func RunLive(sp Spec) (*LiveRun, error) {
	if !sp.LiveRuntime() {
		return nil, fmt.Errorf("scenario: runtime %q is not a live runtime (use Run)", sp.Runtime)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	pp := sp.Params()
	cfg := nettrans.ClusterConfig{
		Params:     pp,
		Transport:  sp.Transport,
		Conditions: sp.Conditions,
		Seed:       sp.Seed,
		DelayMin:   sp.DelayMin,
		DelayMax:   sp.DelayMax,
		Faulty:     make(map[protocol.NodeID]protocol.Node, len(sp.Adversaries)),
	}
	if sp.Runtime == RuntimeVirtual {
		cfg.Tick = virtualTick
		cfg.Clock = clock.NewFake(time.Time{})
	} else {
		cfg.Tick = liveTick
	}
	for _, a := range sp.Adversaries {
		machine, err := a.build()
		if err != nil {
			return nil, err
		}
		cfg.Faulty[a.Node] = machine
	}
	c, err := nettrans.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	run := &LiveRun{InitErrs: make(map[int]error)}
	horizon := sp.liveHorizon(pp)
	if len(sp.Faults) > 0 {
		run.FirstFault, run.PostStart = sp.faultWindow(pp)
	}

	// The run script: initiations and fault injections merged by At.
	events := make([]liveEvent, 0, len(sp.Script)+len(sp.Faults))
	for i, init := range sp.Script {
		events = append(events, liveEvent{at: init.At, init: i, fault: -1})
	}
	for i, f := range sp.Faults {
		events = append(events, liveEvent{at: f.At, init: -1, fault: i})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })

	run.Restab = make([]RestabSample, len(sp.Faults))
	for i, f := range sp.Faults {
		run.Restab[i] = RestabSample{Node: f.Node, At: f.At, Ticks: -1, Budget: pp.DeltaStb()}
	}
	mark := sp.markG()
	// pending tracks faults whose phantom is still planted; advancing
	// time polls them so each clearing is timestamped as it happens.
	pending := make(map[int]bool)
	pollMarks := func() {
		for i := range pending {
			f := sp.Faults[i]
			cleared := false
			c.DoWait(f.Node, func(n protocol.Node) {
				cn, ok := n.(*core.Node)
				if !ok {
					cleared = true // non-core machine: nothing was planted
					return
				}
				returned, _, _ := cn.Result(mark)
				cleared = !returned
			})
			if cleared {
				run.Restab[i].Ticks = simtime.Duration(c.NowTicks() - f.At)
				delete(pending, i)
			}
		}
	}
	advanceTo := func(target simtime.Real) {
		if fake := c.Virtual(); fake != nil {
			steps := 0
			c.StepUntil(func() bool {
				if len(pending) > 0 {
					if steps%32 == 0 {
						pollMarks()
					}
					steps++
				}
				return false
			}, simtime.Duration(target))
			return
		}
		for c.NowTicks() < target {
			time.Sleep(2 * time.Millisecond)
			if len(pending) > 0 {
				pollMarks()
			}
		}
	}

	for _, ev := range events {
		advanceTo(ev.at)
		if ev.init >= 0 {
			init := sp.Script[ev.init]
			t0, err := c.Initiate(init.G, init.Value, 10*time.Second)
			if err != nil {
				run.InitErrs[ev.init] = err
				continue
			}
			li := check.LiveInitiation{G: init.G, V: init.Value, T0: t0}
			if len(sp.Faults) == 0 || init.At < run.FirstFault {
				run.PreInits = append(run.PreInits, li)
			} else {
				run.PostInits = append(run.PostInits, li)
			}
			continue
		}
		f := sp.Faults[ev.fault]
		idx := ev.fault
		c.DoWait(f.Node, func(n protocol.Node) {
			cn, ok := n.(*core.Node)
			if !ok {
				return
			}
			transient.CorruptRunning(cn, pp, transient.Config{
				Seed:     f.Seed,
				Severity: float64(f.SeverityPermille) / 1000,
				Marks:    []protocol.NodeID{mark},
			}, simtime.Local(c.NowTicks()))
		})
		pending[idx] = true
	}
	advanceTo(simtime.Real(horizon))
	pollMarks() // final reading for anything that cleared on the last stretch

	run.Res = c.Result(horizon)
	run.Stats = c.Stats()
	return run, nil
}

// markG picks the General id the phantom mark records are planted under:
// a scripted initiation creates a GENUINE returned record for its
// General, which would make a phantom under the same id unobservable
// (the real record keeps Result true long after the sweep), so the mark
// uses an id no script entry initiates from.
func (sp Spec) markG() protocol.NodeID {
	used := make(map[protocol.NodeID]bool, len(sp.Script))
	for _, init := range sp.Script {
		used[init.G] = true
	}
	for id := protocol.NodeID(0); int(id) < sp.N; id++ {
		if !used[id] {
			return id
		}
	}
	return 0 // every id scripted: degenerate, but keep the runner total
}

// liveHorizon resolves the run's extent: RunFor when set, otherwise the
// last initiation + 3Δagr, extended past the last fault's Δstb window.
func (sp Spec) liveHorizon(pp protocol.Params) simtime.Duration {
	if sp.RunFor > 0 {
		return sp.RunFor
	}
	var last simtime.Real
	for _, init := range sp.Script {
		if init.At > last {
			last = init.At
		}
	}
	horizon := simtime.Duration(last) + 3*pp.DeltaAgr()
	for _, f := range sp.Faults {
		if h := simtime.Duration(f.At) + pp.DeltaStb() + pp.DeltaAgr(); h > horizon {
			horizon = h
		}
	}
	return horizon
}

// faultWindow returns [first fault, last fault + Δstb): the stretch the
// battery does not judge, because the paper's properties are only
// promised outside it.
func (sp Spec) faultWindow(pp protocol.Params) (first, postStart simtime.Real) {
	first, last := sp.Faults[0].At, sp.Faults[0].At
	for _, f := range sp.Faults {
		if f.At < first {
			first = f.At
		}
		if f.At > last {
			last = f.At
		}
	}
	return first, last + simtime.Real(pp.DeltaStb())
}

// CheckLive runs the property battery over a live run. Without faults it
// judges the whole trace; with faults it judges the clean prefix (events
// before the first fault) and the recovered suffix (events after the
// last fault's Δstb window) separately — and every fault must have been
// observed to re-stabilize within Δstb, the convergence the paper's
// self-stabilization property promises.
func CheckLive(run *LiveRun, sp Spec) []check.Violation {
	var out []check.Violation
	pp := run.Res.Scenario.Params
	horizon := run.Res.Scenario.RunFor
	if len(sp.Faults) == 0 {
		lr := &check.LiveResult{Result: run.Res}
		out = append(out, lr.Battery(run.PreInits)...)
	} else {
		events := run.Res.Rec.Events()
		var pre, post []protocol.TraceEvent
		for _, ev := range events {
			switch {
			case ev.RT < run.FirstFault:
				pre = append(pre, ev)
			case ev.RT >= run.PostStart:
				post = append(post, ev)
			}
		}
		preLR := &check.LiveResult{Result: nettrans.BuildResult(pp, pre, run.Res.Correct, simtime.Duration(run.FirstFault))}
		out = append(out, preLR.Battery(run.PreInits)...)
		postLR := &check.LiveResult{Result: nettrans.BuildResult(pp, post, run.Res.Correct, horizon)}
		out = append(out, postLR.Battery(run.PostInits)...)
	}
	for i, init := range sp.Script {
		if err, refused := run.InitErrs[i]; refused {
			out = append(out, check.Violation{
				Property: "Script",
				Detail:   fmt.Sprintf("initiation %d (G%d,%q) refused: %v", i, init.G, init.Value, err),
			})
		}
	}
	for _, rs := range run.Restab {
		if rs.Ticks < 0 {
			out = append(out, check.Violation{
				Property: "SelfStabilization",
				Detail:   fmt.Sprintf("fault at %d on node %d: phantom state never swept (budget Δstb = %d ticks)", rs.At, rs.Node, rs.Budget),
			})
		} else if rs.Ticks > rs.Budget {
			out = append(out, check.Violation{
				Property: "SelfStabilization",
				Detail:   fmt.Sprintf("fault at %d on node %d: re-stabilized after %d ticks, budget Δstb = %d", rs.At, rs.Node, rs.Ticks, rs.Budget),
			})
		}
	}
	return out
}

// RunCheckAny executes the spec on whatever runtime it names and returns
// the battery's verdict — the uniform predicate the shrinker and replay
// tooling use. A spec that fails to even run reports one synthetic
// "Spec" violation.
func RunCheckAny(sp Spec) []check.Violation {
	if sp.LiveRuntime() {
		run, err := RunLive(sp)
		if err != nil {
			return []check.Violation{{Property: "Spec", Detail: err.Error()}}
		}
		return CheckLive(run, sp)
	}
	_, viols := RunCheck(sp)
	return viols
}
