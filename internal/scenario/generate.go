package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Generate derives one model-legal randomized Spec from (seed, n): up to
// f adversaries drawn from the full strategy vocabulary (primitives,
// compositions, staged switches, adaptive triggers), a randomized General
// script, a randomized legal delay range, and a network-condition
// schedule. Determinism is total: every bit of the spec comes from the
// seed, and the spec carries its own simulation seed, so (seed, n) →
// spec → run → verdict is a pure function.
//
// Model legality is the generator's contract — the paper's properties are
// only claimed under the model, so every generated spec stays inside it:
//
//   - n > 3f with at most f adversaries (the resilience precondition);
//   - jitter windows may touch any link (clamped jitter keeps delays
//     within [DelayMin, DelayMax] ≤ d, so the delivery axiom holds);
//   - partition and churn windows, which DROP messages, only ever name
//     faulty nodes: silencing an adversary is just more adversary
//     behavior, while disconnecting correct nodes would void the very
//     axioms the battery checks (DESIGN.md §6).
//
// A spec that violates the battery is therefore a genuine counterexample
// to the paper's claims (or to this reproduction's faithfulness), never a
// broken test harness.
func Generate(seed int64, n int) Spec {
	rng := rand.New(rand.NewSource(seed))
	pp := protocol.DefaultParams(n)
	d := pp.D
	sp := Spec{N: n, Seed: rng.Int63()}

	// Legal delay range: 1 ≤ DelayMin ≤ d/2 and DelayMin ≤ DelayMax ≤ d
	// (explicitly non-zero so the spec never falls back to defaults).
	sp.DelayMin = 1 + simtime.Duration(rng.Int63n(int64(d/2)))
	sp.DelayMax = sp.DelayMin + simtime.Duration(rng.Int63n(int64(d-sp.DelayMin)+1))

	// Faulty set: 0..f nodes, then the General script over correct nodes.
	perm := rng.Perm(n)
	fCount := rng.Intn(pp.F + 1)
	faulty := append([]int(nil), perm[:fCount]...)
	correct := perm[fCount:]
	maxGen := len(correct)
	if maxGen > 3 {
		maxGen = 3
	}
	gCount := 1 + rng.Intn(maxGen)
	var lastAt simtime.Real
	for i := 0; i < gCount; i++ {
		at := simtime.Real(2*d) + simtime.Real(rng.Int63n(int64(2*pp.DeltaAgr())))
		if at > lastAt {
			lastAt = at
		}
		sp.Script = append(sp.Script, Initiation{
			At: at, G: protocol.NodeID(correct[i]), Value: protocol.Value(fmt.Sprintf("v%d", i)),
		})
	}
	// Budget the horizon for the latest possible protocol activity: the
	// last scripted initiation, or a staged adversary's compounded attack
	// (switch ≤ d+Δagr, then a timer ≤ d+Δagr after the switch). 3Δagr on
	// top covers resolution plus the expiry sweep, so every generated
	// attack finishes well inside the run and the battery judges all of it.
	lastAttack := simtime.Real(2*d + 2*pp.DeltaAgr())
	if lastAt > lastAttack {
		lastAttack = lastAt
	}
	sp.RunFor = simtime.Duration(lastAttack) + 3*pp.DeltaAgr()

	// Adversaries: primitives, compositions, staged switches, adaptive
	// triggers — one strategy tree per faulty node.
	g := specgen{rng: rng, pp: pp, script: sp.Script}
	for _, node := range faulty {
		sp.Adversaries = append(sp.Adversaries, g.adversary(protocol.NodeID(node)))
	}
	sortAdversaries(sp.Adversaries)

	// Network conditions: jitter anywhere, drops only around faulty nodes.
	horizon := int64(sp.RunFor)
	if rng.Intn(2) == 0 {
		for i, count := 0, 1+rng.Intn(2); i < count; i++ {
			from := simtime.Real(rng.Int63n(horizon))
			c := simnet.Condition{
				Kind:   simnet.CondJitter,
				From:   from,
				Until:  from + simtime.Real(int64(d)*(1+rng.Int63n(19))),
				Jitter: simtime.Duration(rng.Int63n(int64(d) + 1)),
			}
			if rng.Intn(2) == 0 { // scoped to a random link neighbourhood
				c.Nodes = g.nodeSubset(n, 1+rng.Intn(n-1))
			}
			sp.Conditions = append(sp.Conditions, c)
		}
	}
	if fCount > 0 && rng.Intn(5) < 2 {
		kind := simnet.CondPartition
		if rng.Intn(2) == 0 {
			kind = simnet.CondChurn
		}
		from := simtime.Real(rng.Int63n(horizon))
		group := make([]protocol.NodeID, 0, fCount)
		for _, node := range faulty {
			if len(group) == 0 || rng.Intn(2) == 0 {
				group = append(group, protocol.NodeID(node))
			}
		}
		sortNodes(group)
		sp.Conditions = append(sp.Conditions, simnet.Condition{
			Kind:  kind,
			From:  from,
			Until: from + simtime.Real(int64(d)*(1+rng.Int63n(29))),
			Nodes: group,
		})
	}
	return sp
}

// specgen carries the generator's shared draw context.
type specgen struct {
	rng    *rand.Rand
	pp     protocol.Params
	script []Initiation
}

// scriptedG picks a scripted General — the natural target of reactive
// strategies.
func (g *specgen) scriptedG() protocol.NodeID {
	return g.script[g.rng.Intn(len(g.script))].G
}

// nodeSubset draws size distinct node IDs, sorted.
func (g *specgen) nodeSubset(n, size int) []protocol.NodeID {
	perm := g.rng.Perm(n)
	out := make([]protocol.NodeID, size)
	for i := range out {
		out[i] = protocol.NodeID(perm[i])
	}
	sortNodes(out)
	return out
}

// adversary draws one strategy tree for the given faulty node.
func (g *specgen) adversary(node protocol.NodeID) AdversarySpec {
	switch g.rng.Intn(10) {
	case 6: // compose: several strategies on one node
		a := AdversarySpec{Node: node, Kind: KindCompose,
			Parts: []AdversarySpec{g.leaf(node), g.leaf(node)}}
		return a
	case 7: // staged: switch strategies mid-run
		first := g.leaf(node)
		second := g.leaf(node)
		// At doubles as the switch-over time AND (for timer-driven leaves)
		// the member's own attack delay relative to the switch — the
		// horizon budget above assumes both stay ≤ d+Δagr.
		second.At = g.pp.D + simtime.Duration(g.rng.Int63n(int64(g.pp.DeltaAgr())))
		return AdversarySpec{Node: node, Kind: KindStaged,
			Parts: []AdversarySpec{first, second}}
	case 8: // adaptive: arm on the first observed wave of a scripted General
		a := AdversarySpec{Node: node, Kind: KindAdaptive, G: g.scriptedG()}
		if g.rng.Intn(2) == 0 {
			a.Parts = []AdversarySpec{g.leaf(node), g.leaf(node)}
		} else {
			a.Parts = []AdversarySpec{g.leaf(node)}
		}
		return a
	default:
		return g.leaf(node)
	}
}

// leaf draws one primitive strategy.
func (g *specgen) leaf(node protocol.NodeID) AdversarySpec {
	d := g.pp.D
	attackAt := func() simtime.Duration {
		return d + simtime.Duration(g.rng.Int63n(int64(g.pp.DeltaAgr())))
	}
	a := AdversarySpec{Node: node}
	switch g.rng.Intn(10) {
	case 0:
		a.Kind = KindCrash
	case 1:
		a.Kind = KindYeasayer
	case 2:
		a.Kind = KindEquivocator
		a.At = attackAt()
		a.Values = []protocol.Value{"ea", "eb"}
	case 3:
		a.Kind = KindPartial
		a.At = attackAt()
		a.Values = []protocol.Value{"p"}
		a.Targets = g.nodeSubset(g.pp.N, 1+g.rng.Intn(g.pp.N-1))
		a.Hold = simtime.Duration(g.rng.Int63n(int64(d) + 1))
	case 4:
		a.Kind = KindLate
		a.G = g.scriptedG()
		a.Hold = simtime.Duration(g.rng.Int63n(int64(3 * d)))
	case 5:
		a.Kind = KindSpam
		a.Hold = simtime.Duration(int64(d) * (2 + g.rng.Int63n(8)))
	case 6:
		a.Kind = KindReplay
		a.At = simtime.Duration(int64(d) * (2 + g.rng.Int63n(20)))
	case 7:
		a.Kind = KindForge
		a.G = g.scriptedG()
		a.Targets = g.nodeSubset(g.pp.N, 1)
		a.At = attackAt()
		a.Values = []protocol.Value{"fv"}
	case 8:
		a.Kind = KindMirror
	default:
		a.Kind = KindEdge
	}
	return a
}

func sortNodes(ids []protocol.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
