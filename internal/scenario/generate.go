package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Generate derives one model-legal randomized Spec from (seed, n): up to
// f adversaries drawn from the full strategy vocabulary (primitives,
// compositions, staged switches, adaptive triggers), a randomized General
// script, a randomized legal delay range, and a network-condition
// schedule. Determinism is total: every bit of the spec comes from the
// seed, and the spec carries its own simulation seed, so (seed, n) →
// spec → run → verdict is a pure function.
//
// Model legality is the generator's contract — the paper's properties are
// only claimed under the model, so every generated spec stays inside it:
//
//   - n > 3f with at most f adversaries (the resilience precondition);
//   - jitter windows may touch any link (clamped jitter keeps delays
//     within [DelayMin, DelayMax] ≤ d, so the delivery axiom holds);
//   - partition and churn windows, which DROP messages, only ever name
//     faulty nodes: silencing an adversary is just more adversary
//     behavior, while disconnecting correct nodes would void the very
//     axioms the battery checks (DESIGN.md §6).
//
// A spec that violates the battery is therefore a genuine counterexample
// to the paper's claims (or to this reproduction's faithfulness), never a
// broken test harness.
func Generate(seed int64, n int) Spec {
	rng := rand.New(rand.NewSource(seed))
	pp := protocol.DefaultParams(n)
	d := pp.D
	sp := Spec{N: n, Seed: rng.Int63()}

	// Legal delay range: 1 ≤ DelayMin ≤ d/2 and DelayMin ≤ DelayMax ≤ d
	// (explicitly non-zero so the spec never falls back to defaults).
	sp.DelayMin = 1 + simtime.Duration(rng.Int63n(int64(d/2)))
	sp.DelayMax = sp.DelayMin + simtime.Duration(rng.Int63n(int64(d-sp.DelayMin)+1))

	// Faulty set: 0..f nodes, then the General script over correct nodes.
	perm := rng.Perm(n)
	fCount := rng.Intn(pp.F + 1)
	faulty := append([]int(nil), perm[:fCount]...)
	correct := perm[fCount:]
	maxGen := len(correct)
	if maxGen > 3 {
		maxGen = 3
	}
	gCount := 1 + rng.Intn(maxGen)
	var lastAt simtime.Real
	for i := 0; i < gCount; i++ {
		at := simtime.Real(2*d) + simtime.Real(rng.Int63n(int64(2*pp.DeltaAgr())))
		if at > lastAt {
			lastAt = at
		}
		sp.Script = append(sp.Script, Initiation{
			At: at, G: protocol.NodeID(correct[i]), Value: protocol.Value(fmt.Sprintf("v%d", i)),
		})
	}
	// Budget the horizon for the latest possible protocol activity: the
	// last scripted initiation, or a staged adversary's compounded attack
	// (switch ≤ d+Δagr, then a timer ≤ d+Δagr after the switch). 3Δagr on
	// top covers resolution plus the expiry sweep, so every generated
	// attack finishes well inside the run and the battery judges all of it.
	lastAttack := simtime.Real(2*d + 2*pp.DeltaAgr())
	if lastAt > lastAttack {
		lastAttack = lastAt
	}
	sp.RunFor = simtime.Duration(lastAttack) + 3*pp.DeltaAgr()

	// Adversaries: primitives, compositions, staged switches, adaptive
	// triggers — one strategy tree per faulty node.
	g := specgen{rng: rng, pp: pp, script: sp.Script}
	for _, node := range faulty {
		sp.Adversaries = append(sp.Adversaries, g.adversary(protocol.NodeID(node)))
	}
	sortAdversaries(sp.Adversaries)

	// Network conditions: jitter anywhere, drops only around faulty nodes.
	horizon := int64(sp.RunFor)
	if rng.Intn(2) == 0 {
		for i, count := 0, 1+rng.Intn(2); i < count; i++ {
			from := simtime.Real(rng.Int63n(horizon))
			c := simnet.Condition{
				Kind:   simnet.CondJitter,
				From:   from,
				Until:  from + simtime.Real(int64(d)*(1+rng.Int63n(19))),
				Jitter: simtime.Duration(rng.Int63n(int64(d) + 1)),
			}
			if rng.Intn(2) == 0 { // scoped to a random link neighbourhood
				c.Nodes = g.nodeSubset(n, 1+rng.Intn(n-1))
			}
			sp.Conditions = append(sp.Conditions, c)
		}
	}
	if fCount > 0 && rng.Intn(5) < 2 {
		kind := simnet.CondPartition
		if rng.Intn(2) == 0 {
			kind = simnet.CondChurn
		}
		from := simtime.Real(rng.Int63n(horizon))
		group := make([]protocol.NodeID, 0, fCount)
		for _, node := range faulty {
			if len(group) == 0 || rng.Intn(2) == 0 {
				group = append(group, protocol.NodeID(node))
			}
		}
		sortNodes(group)
		sp.Conditions = append(sp.Conditions, simnet.Condition{
			Kind:  kind,
			From:  from,
			Until: from + simtime.Real(int64(d)*(1+rng.Int63n(29))),
			Nodes: group,
		})
	}
	return sp
}

// GenerateLive derives one model-legal live-runtime Spec from (seed, n):
// a RuntimeVirtual spec (byte-deterministic, so (seed, n) → spec → run →
// verdict stays a pure function) with an early General script, up to f
// adversaries, optionally one mid-run transient fault on a correct node
// (with a probe agreement after its Δstb window), and a schedule of
// wire-level network conditions over the live vocabulary.
//
// The legality contract extends Generate's: besides the simulator rules,
//
//   - wan, duplicate, and jitter windows may touch any link — geo delays
//     and env jitter clamp into the chaos layer's d/2 share of the
//     delivery bound, and the receive dedup window absorbs duplicates, so
//     the bounded-delay axiom survives;
//   - corrupt, replay, forge, and hostile reorder windows only ever name
//     faulty nodes: a byte-attacker on an adversary's NIC is just more
//     Byzantine behavior, while unbounded holds or garbage on correct
//     links would void the very axioms the battery checks;
//   - scripted faults keep the paper's phase separation — every pre-fault
//     initiation resolves 3Δagr before the injection, and the probe only
//     starts after the fault's Δstb re-stabilization budget.
func GenerateLive(seed int64, n int) Spec {
	rng := rand.New(rand.NewSource(seed))
	pp := protocol.DefaultParams(n)
	d := pp.D
	sp := Spec{N: n, Seed: rng.Int63(), Runtime: RuntimeVirtual}

	// Legal live delay range: 1 ≤ DelayMin ≤ DelayMax ≤ d/2 (the chaos
	// layer owns the other half of d).
	sp.DelayMin = 1 + simtime.Duration(rng.Int63n(int64(d/4)))
	sp.DelayMax = sp.DelayMin + simtime.Duration(rng.Int63n(int64(d/2-sp.DelayMin)+1))

	perm := rng.Perm(n)
	fCount := rng.Intn(pp.F + 1)
	faulty := append([]int(nil), perm[:fCount]...)
	correct := perm[fCount:]

	// Pre-fault script: one or two early initiations by correct Generals.
	gCount := 1 + rng.Intn(2)
	var lastPre simtime.Real
	for i := 0; i < gCount; i++ {
		at := simtime.Real(2*d) + simtime.Real(rng.Int63n(int64(pp.DeltaAgr())))
		if at > lastPre {
			lastPre = at
		}
		sp.Script = append(sp.Script, Initiation{
			At: at, G: protocol.NodeID(correct[i]), Value: protocol.Value(fmt.Sprintf("v%d", i)),
		})
	}

	// Optionally corrupt one running correct node, clear of the pre-fault
	// script, and optionally probe with a fresh agreement after Δstb.
	if rng.Intn(2) == 0 {
		faultAt := lastPre + simtime.Real(3*pp.DeltaAgr()) + simtime.Real(rng.Int63n(int64(2*d))+1)
		sp.Faults = append(sp.Faults, Fault{
			At:   faultAt,
			Node: protocol.NodeID(correct[rng.Intn(len(correct))]),
			Seed: rng.Int63(), SeverityPermille: 200 + rng.Intn(801),
		})
		if rng.Intn(2) == 0 {
			postAt := faultAt + simtime.Real(pp.DeltaStb()) + simtime.Real(rng.Int63n(int64(d))+1)
			sp.Script = append(sp.Script, Initiation{
				// correct[gCount] is the first correct node with no
				// pre-fault initiation (one initiation per General).
				At: postAt, G: protocol.NodeID(correct[gCount]), Value: "vpost",
			})
		}
	}

	// Horizon: liveHorizon covers the script and the fault's Δstb window;
	// the floor additionally covers a staged adversary's compounded attack
	// (switch ≤ d+Δagr, timer ≤ d+Δagr after it, 3Δagr to resolve).
	sp.RunFor = sp.liveHorizon(pp)
	if floor := simtime.Duration(lastPre) + 2*d + 5*pp.DeltaAgr(); sp.RunFor < floor {
		sp.RunFor = floor
	}

	// Adversaries: the full strategy vocabulary, one tree per faulty node.
	g := specgen{rng: rng, pp: pp, script: sp.Script}
	for _, node := range faulty {
		sp.Adversaries = append(sp.Adversaries, g.adversary(protocol.NodeID(node)))
	}
	sortAdversaries(sp.Adversaries)

	// Network conditions over the live vocabulary.
	horizon := int64(sp.RunFor)
	window := func(maxWindows int64) (simtime.Real, simtime.Real) {
		from := simtime.Real(rng.Int63n(horizon))
		return from, from + simtime.Real(int64(d)*(1+rng.Int63n(maxWindows)))
	}
	if rng.Intn(2) == 0 { // geo-WAN: two regions, asymmetric base delays
		regions := g.wanRegions(n)
		matrix := make([][]simtime.Duration, len(regions))
		for a := range matrix {
			matrix[a] = make([]simtime.Duration, len(regions))
			for b := range matrix[a] {
				if a != b {
					matrix[a][b] = simtime.Duration(rng.Int63n(int64(d)) + 1)
				}
			}
		}
		from, until := window(20)
		c := simnet.Condition{
			Kind: simnet.CondWAN, From: from, Until: until,
			Groups: regions, Matrix: matrix,
			Jitter: simtime.Duration(rng.Int63n(int64(d/2) + 1)),
		}
		if rng.Intn(3) == 0 {
			c.Rate = 1 + rng.Intn(4)
		}
		sp.Conditions = append(sp.Conditions, c)
	}
	if rng.Intn(2) == 0 { // duplication: absorbed by the receive dedup
		from, until := window(10)
		sp.Conditions = append(sp.Conditions, simnet.Condition{
			Kind: simnet.CondDuplicate, From: from, Until: until,
			Copies: 1 + rng.Intn(3), Stride: rng.Intn(4),
		})
	}
	if fCount > 0 { // byte-level attacks, scoped to adversary NICs
		attackers := make([]protocol.NodeID, 0, fCount)
		for _, node := range faulty {
			if len(attackers) == 0 || rng.Intn(2) == 0 {
				attackers = append(attackers, protocol.NodeID(node))
			}
		}
		sortNodes(attackers)
		for _, kind := range []string{simnet.CondCorrupt, simnet.CondReplay, simnet.CondForge, simnet.CondReorder} {
			if rng.Intn(3) != 0 {
				continue
			}
			from, until := window(10)
			c := simnet.Condition{Kind: kind, From: from, Until: until,
				Nodes: attackers, Stride: rng.Intn(3)}
			switch kind {
			case simnet.CondReorder:
				c.Jitter = simtime.Duration(rng.Int63n(int64(3*d)) + 1)
			case simnet.CondReplay:
				c.CrossEpoch = rng.Intn(2) == 0
			}
			sp.Conditions = append(sp.Conditions, c)
		}
	}
	return sp
}

// specgen carries the generator's shared draw context.
type specgen struct {
	rng    *rand.Rand
	pp     protocol.Params
	script []Initiation
}

// scriptedG picks a scripted General — the natural target of reactive
// strategies.
func (g *specgen) scriptedG() protocol.NodeID {
	return g.script[g.rng.Intn(len(g.script))].G
}

// wanRegions splits the cluster into two disjoint geo regions.
func (g *specgen) wanRegions(n int) [][]protocol.NodeID {
	perm := g.rng.Perm(n)
	cut := 1 + g.rng.Intn(n-1)
	a := make([]protocol.NodeID, 0, cut)
	b := make([]protocol.NodeID, 0, n-cut)
	for i, node := range perm {
		if i < cut {
			a = append(a, protocol.NodeID(node))
		} else {
			b = append(b, protocol.NodeID(node))
		}
	}
	sortNodes(a)
	sortNodes(b)
	return [][]protocol.NodeID{a, b}
}

// nodeSubset draws size distinct node IDs, sorted.
func (g *specgen) nodeSubset(n, size int) []protocol.NodeID {
	perm := g.rng.Perm(n)
	out := make([]protocol.NodeID, size)
	for i := range out {
		out[i] = protocol.NodeID(perm[i])
	}
	sortNodes(out)
	return out
}

// adversary draws one strategy tree for the given faulty node.
func (g *specgen) adversary(node protocol.NodeID) AdversarySpec {
	switch g.rng.Intn(10) {
	case 6: // compose: several strategies on one node
		a := AdversarySpec{Node: node, Kind: KindCompose,
			Parts: []AdversarySpec{g.leaf(node), g.leaf(node)}}
		return a
	case 7: // staged: switch strategies mid-run
		first := g.leaf(node)
		second := g.leaf(node)
		// At doubles as the switch-over time AND (for timer-driven leaves)
		// the member's own attack delay relative to the switch — the
		// horizon budget above assumes both stay ≤ d+Δagr.
		second.At = g.pp.D + simtime.Duration(g.rng.Int63n(int64(g.pp.DeltaAgr())))
		return AdversarySpec{Node: node, Kind: KindStaged,
			Parts: []AdversarySpec{first, second}}
	case 8: // adaptive: arm on the first observed wave of a scripted General
		a := AdversarySpec{Node: node, Kind: KindAdaptive, G: g.scriptedG()}
		if g.rng.Intn(2) == 0 {
			a.Parts = []AdversarySpec{g.leaf(node), g.leaf(node)}
		} else {
			a.Parts = []AdversarySpec{g.leaf(node)}
		}
		return a
	default:
		return g.leaf(node)
	}
}

// leaf draws one primitive strategy.
func (g *specgen) leaf(node protocol.NodeID) AdversarySpec {
	d := g.pp.D
	attackAt := func() simtime.Duration {
		return d + simtime.Duration(g.rng.Int63n(int64(g.pp.DeltaAgr())))
	}
	a := AdversarySpec{Node: node}
	switch g.rng.Intn(10) {
	case 0:
		a.Kind = KindCrash
	case 1:
		a.Kind = KindYeasayer
	case 2:
		a.Kind = KindEquivocator
		a.At = attackAt()
		a.Values = []protocol.Value{"ea", "eb"}
	case 3:
		a.Kind = KindPartial
		a.At = attackAt()
		a.Values = []protocol.Value{"p"}
		a.Targets = g.nodeSubset(g.pp.N, 1+g.rng.Intn(g.pp.N-1))
		a.Hold = simtime.Duration(g.rng.Int63n(int64(d) + 1))
	case 4:
		a.Kind = KindLate
		a.G = g.scriptedG()
		a.Hold = simtime.Duration(g.rng.Int63n(int64(3 * d)))
	case 5:
		a.Kind = KindSpam
		a.Hold = simtime.Duration(int64(d) * (2 + g.rng.Int63n(8)))
	case 6:
		a.Kind = KindReplay
		a.At = simtime.Duration(int64(d) * (2 + g.rng.Int63n(20)))
	case 7:
		a.Kind = KindForge
		a.G = g.scriptedG()
		a.Targets = g.nodeSubset(g.pp.N, 1)
		a.At = attackAt()
		a.Values = []protocol.Value{"fv"}
	case 8:
		a.Kind = KindMirror
	default:
		a.Kind = KindEdge
	}
	return a
}

func sortNodes(ids []protocol.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
