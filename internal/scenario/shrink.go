package scenario

import (
	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
)

// Shrink greedily minimizes a failing spec: it tries removing conditions,
// script entries, and adversaries, and hoisting combinator members into
// their parent's place, accepting any strictly smaller spec that still
// fails, until no single removal preserves the failure. fails must be a
// deterministic predicate (running a spec is one — every bit of entropy
// lives in the spec), so the minimized counterexample replays exactly.
//
// The result is 1-minimal with respect to the move set: removing any one
// remaining component makes the failure disappear — small enough to read,
// and still a genuine counterexample by construction.
func Shrink(sp Spec, fails func(Spec) bool) Spec {
	if !fails(sp) {
		return sp
	}
	for improved := true; improved; {
		improved = false
		for _, cand := range shrinkCandidates(sp) {
			if cand.components() < sp.components() && fails(cand) {
				sp = cand
				improved = true
				break // re-enumerate moves against the smaller spec
			}
		}
	}
	return sp
}

// shrinkCandidates enumerates every one-step reduction of the spec, in a
// deterministic order (conditions, then script, then adversaries).
func shrinkCandidates(sp Spec) []Spec {
	var out []Spec
	for i := range sp.Conditions {
		c := sp.clone()
		c.Conditions = append(c.Conditions[:i], c.Conditions[i+1:]...)
		out = append(out, c)
	}
	for i := range sp.Script {
		c := sp.clone()
		c.Script = append(c.Script[:i], c.Script[i+1:]...)
		out = append(out, c)
	}
	for i := range sp.Faults {
		c := sp.clone()
		c.Faults = append(c.Faults[:i], c.Faults[i+1:]...)
		out = append(out, c)
	}
	for i := range sp.Adversaries {
		c := sp.clone()
		c.Adversaries = append(c.Adversaries[:i], c.Adversaries[i+1:]...)
		out = append(out, c)
		// Hoist each combinator member into the parent's slot.
		for j := range sp.Adversaries[i].Parts {
			c := sp.clone()
			member := c.Adversaries[i].Parts[j]
			member.Node = c.Adversaries[i].Node
			c.Adversaries[i] = member
			out = append(out, c)
		}
	}
	return out
}

// clone deep-copies the spec's slices so candidate edits never alias.
func (sp Spec) clone() Spec {
	c := sp
	c.Conditions = append([]simnet.Condition(nil), sp.Conditions...)
	c.Script = append([]Initiation(nil), sp.Script...)
	c.Faults = append([]Fault(nil), sp.Faults...)
	c.Adversaries = make([]AdversarySpec, len(sp.Adversaries))
	for i, a := range sp.Adversaries {
		c.Adversaries[i] = a.cloneAdv()
	}
	return c
}

func (a AdversarySpec) cloneAdv() AdversarySpec {
	c := a
	c.Values = append([]protocol.Value(nil), a.Values...)
	c.Targets = append([]protocol.NodeID(nil), a.Targets...)
	c.Parts = make([]AdversarySpec, len(a.Parts))
	for i, p := range a.Parts {
		c.Parts[i] = p.cloneAdv()
	}
	return c
}
