// Package scenario is the declarative scenario engine: a JSON-serializable
// Spec describing one complete adversarial run — committee size, seed,
// per-node adversary assignments (including composed, staged, and adaptive
// strategies), a network-condition schedule, and the General script — plus
// a seeded random generator of model-legal specs and a greedy shrinker
// that minimizes property-violating specs into replayable counterexamples.
//
// The paper's proofs quantify over every Byzantine strategy and every
// arrival pattern the bounded-delay model admits; a Spec is one point of
// that space, and the S2 campaign (internal/harness) samples it by the
// thousand. Because a Spec carries every bit of entropy a run consumes,
// any violating spec replays byte-identically: `ssbyz-bench -replay
// spec.json` re-runs the exact counterexample.
package scenario

import (
	"encoding/json"
	"fmt"
	"sort"

	"ssbyz/internal/byzantine"
	"ssbyz/internal/check"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Adversary kinds of the declarative vocabulary. Leaves map to one
// internal/byzantine strategy; Compose/Staged/Adaptive combine the specs
// in Parts.
const (
	KindCrash       = "crash"       // forever silent
	KindYeasayer    = "yeasayer"    // amplifies every wave
	KindEquivocator = "equivocator" // faulty General, different values to different nodes
	KindPartial     = "partial"     // faulty General, initiation to a subset
	KindLate        = "late"        // colludes as late as the windows allow
	KindSpam        = "spam"        // floods syntactically valid garbage
	KindReplay      = "replay"      // captures and re-broadcasts traffic
	KindForge       = "forge"       // fabricates broadcast-layer echoes
	KindMirror      = "mirror"      // reflects every wave back at its sender
	KindEdge        = "edge"        // votes exactly on the n−2f threshold edge
	KindCompose     = "compose"     // run all Parts on one node
	KindStaged      = "staged"      // switch between Parts at local times
	KindAdaptive    = "adaptive"    // arm the last Part on a watched event
)

// AdversarySpec declares the strategy of one faulty node. Which fields
// matter depends on Kind; unused fields are ignored (and omitted from
// JSON). For combinators, Parts carries the member specs (their Node
// field is ignored — members share the combinator's node; a Staged
// member's At is its switch-over local time).
type AdversarySpec struct {
	// Node is the faulty node the strategy runs on.
	Node protocol.NodeID `json:"node"`
	Kind string          `json:"kind"`
	// Values parameterizes equivocator (the split values), partial and
	// forge (value [0]), and late (collude only with value [0]).
	Values []protocol.Value `json:"values,omitempty"`
	// At is a local time: attack time (equivocator, partial, forge),
	// replay delay, or stage switch-over inside a Staged parent.
	At simtime.Duration `json:"at,omitempty"`
	// Hold is a secondary local delay: late's contribution hold, spam's
	// stop time, partial's support delay.
	Hold simtime.Duration `json:"hold,omitempty"`
	// G scopes late (the wave to collude with), forge (the agreement
	// context), and adaptive (arm on the first wave observed for G).
	G protocol.NodeID `json:"g,omitempty"`
	// Targets is partial's invitee set and forge's claimed broadcaster
	// ([0]).
	Targets []protocol.NodeID `json:"targets,omitempty"`
	// Parts are the members of a combinator kind.
	Parts []AdversarySpec `json:"parts,omitempty"`
}

// Initiation is one entry of the General script: correct General G
// initiates agreement on Value at virtual real time At.
type Initiation struct {
	At    simtime.Real    `json:"at"`
	G     protocol.NodeID `json:"g"`
	Value protocol.Value  `json:"value"`
}

// Spec is one declarative scenario: everything a run consumes, so a spec
// replays byte-identically. The zero value of optional fields defers to
// the model defaults (F → ⌊(n−1)/3⌋, delays → [d/2, d], RunFor → last
// initiation + 3Δagr).
type Spec struct {
	N int `json:"n"`
	// F lowers the declared fault bound below optimal (0 = optimal).
	F    int   `json:"f,omitempty"`
	Seed int64 `json:"seed"`
	// DelayMin/DelayMax bound actual message delays in ticks. 0 defers to
	// the defaults ([d/2, d]); the generator always sets both explicitly.
	DelayMin simtime.Duration `json:"delay_min,omitempty"`
	DelayMax simtime.Duration `json:"delay_max,omitempty"`
	// Adversaries assigns strategies to faulty nodes (≤ f entries,
	// distinct nodes).
	Adversaries []AdversarySpec `json:"adversaries,omitempty"`
	// Conditions is the network-condition schedule (simnet vocabulary).
	Conditions []simnet.Condition `json:"conditions,omitempty"`
	// Script is the General script: at most one initiation per General,
	// all by correct nodes.
	Script []Initiation `json:"script,omitempty"`
	// RunFor is the virtual duration to simulate (0 = last scripted
	// initiation + 3Δagr).
	RunFor simtime.Duration `json:"run_for,omitempty"`
}

// Params materializes the protocol constants the spec implies.
func (sp Spec) Params() protocol.Params {
	pp := protocol.DefaultParams(sp.N)
	if sp.F > 0 {
		pp.F = sp.F
	}
	return pp
}

// Validate checks the spec against the model: n > 3f, at most f distinct
// faulty nodes, a script of correct Generals with at most one initiation
// each, and well-formed adversary specs. (Conditions are validated by the
// transport when the world is built.)
func (sp Spec) Validate() error {
	pp := sp.Params()
	if err := pp.Validate(); err != nil {
		return err
	}
	if len(sp.Adversaries) > pp.F {
		return fmt.Errorf("scenario: %d adversaries exceed f=%d", len(sp.Adversaries), pp.F)
	}
	faulty := make(map[protocol.NodeID]bool, len(sp.Adversaries))
	for _, a := range sp.Adversaries {
		if a.Node < 0 || int(a.Node) >= pp.N {
			return fmt.Errorf("scenario: adversary on node %d outside [0,%d)", a.Node, pp.N)
		}
		if faulty[a.Node] {
			return fmt.Errorf("scenario: node %d has two adversaries (use %q)", a.Node, KindCompose)
		}
		faulty[a.Node] = true
		if _, err := a.build(); err != nil {
			return err
		}
	}
	scripted := make(map[protocol.NodeID]bool, len(sp.Script))
	for _, init := range sp.Script {
		if init.G < 0 || int(init.G) >= pp.N {
			return fmt.Errorf("scenario: script General %d outside [0,%d)", init.G, pp.N)
		}
		if faulty[init.G] {
			return fmt.Errorf("scenario: script General %d is faulty (adversaries script themselves)", init.G)
		}
		if scripted[init.G] {
			return fmt.Errorf("scenario: General %d initiates twice (one initiation per General)", init.G)
		}
		scripted[init.G] = true
		if init.Value == protocol.Bottom {
			return fmt.Errorf("scenario: General %d initiates ⊥", init.G)
		}
	}
	return nil
}

// build materializes one adversary spec into a protocol.Node.
func (a AdversarySpec) build() (protocol.Node, error) {
	value := func(i int, def protocol.Value) protocol.Value {
		if i < len(a.Values) {
			return a.Values[i]
		}
		return def
	}
	switch a.Kind {
	case KindCrash:
		return &byzantine.Silent{}, nil
	case KindYeasayer:
		return &byzantine.Yeasayer{}, nil
	case KindEquivocator:
		vals := a.Values
		if len(vals) < 2 {
			vals = []protocol.Value{"x", "y"}
		}
		return &byzantine.Equivocator{Values: vals, At: a.At}, nil
	case KindPartial:
		return &byzantine.PartialGeneral{
			Invitees: a.Targets, Value: value(0, "p"), At: a.At, SupportDelay: a.Hold,
		}, nil
	case KindLate:
		return &byzantine.LateSupporter{G: a.G, Value: value(0, protocol.Bottom), HoldLocal: a.Hold}, nil
	case KindSpam:
		return &byzantine.Spammer{Stop: a.Hold, Values: a.Values}, nil
	case KindReplay:
		return &byzantine.Replayer{Delay: a.At}, nil
	case KindForge:
		var p protocol.NodeID
		if len(a.Targets) > 0 {
			p = a.Targets[0]
		}
		return &byzantine.EchoForger{G: a.G, ForgedP: p, ForgedV: value(0, "f"), K: 1, At: a.At}, nil
	case KindMirror:
		return &byzantine.MirrorVoter{}, nil
	case KindEdge:
		return &byzantine.EdgeSupporter{}, nil
	case KindCompose:
		if len(a.Parts) == 0 {
			return nil, fmt.Errorf("scenario: %q adversary on node %d has no parts", a.Kind, a.Node)
		}
		parts := make([]protocol.Node, len(a.Parts))
		for i, p := range a.Parts {
			n, err := p.build()
			if err != nil {
				return nil, err
			}
			parts[i] = n
		}
		return &byzantine.Composite{Parts: parts}, nil
	case KindStaged:
		if len(a.Parts) == 0 {
			return nil, fmt.Errorf("scenario: %q adversary on node %d has no parts", a.Kind, a.Node)
		}
		stages := make([]byzantine.Stage, len(a.Parts))
		for i, p := range a.Parts {
			n, err := p.build()
			if err != nil {
				return nil, err
			}
			stages[i] = byzantine.Stage{At: p.At, Node: n}
		}
		return &byzantine.Staged{Stages: stages}, nil
	case KindAdaptive:
		if len(a.Parts) == 0 || len(a.Parts) > 2 {
			return nil, fmt.Errorf("scenario: %q adversary on node %d needs 1–2 parts", a.Kind, a.Node)
		}
		armedSpec := a.Parts[len(a.Parts)-1]
		var base protocol.Node
		if len(a.Parts) == 2 {
			b, err := a.Parts[0].build()
			if err != nil {
				return nil, err
			}
			base = b
		}
		if _, err := armedSpec.build(); err != nil {
			return nil, err
		}
		return &byzantine.Adaptive{
			Base:    base,
			Trigger: byzantine.OnGeneral(a.G),
			Then: func() protocol.Node {
				n, _ := armedSpec.build()
				return n
			},
		}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown adversary kind %q on node %d", a.Kind, a.Node)
	}
}

// Scenario lowers the spec into the simulator's vocabulary. The caller
// owns delivery-path flags (LegacyFanout etc.) on the returned value.
func (sp Spec) Scenario() (sim.Scenario, error) {
	if err := sp.Validate(); err != nil {
		return sim.Scenario{}, err
	}
	pp := sp.Params()
	sc := sim.Scenario{
		Params:     pp,
		Seed:       sp.Seed,
		DelayMin:   sp.DelayMin,
		DelayMax:   sp.DelayMax,
		Conditions: sp.Conditions,
		RunFor:     sp.RunFor,
		Faulty:     make(map[protocol.NodeID]protocol.Node, len(sp.Adversaries)),
	}
	for _, a := range sp.Adversaries {
		n, err := a.build()
		if err != nil {
			return sim.Scenario{}, err
		}
		sc.Faulty[a.Node] = n
	}
	for _, init := range sp.Script {
		sc.Initiations = append(sc.Initiations,
			sim.Initiation{At: init.At, G: init.G, Value: init.Value})
	}
	if sc.RunFor == 0 {
		var last simtime.Real
		for _, init := range sp.Script {
			if init.At > last {
				last = init.At
			}
		}
		sc.RunFor = simtime.Duration(last) + 3*pp.DeltaAgr()
	}
	return sc, nil
}

// Run executes the spec to completion.
func Run(sp Spec) (*sim.Result, error) {
	sc, err := sp.Scenario()
	if err != nil {
		return nil, err
	}
	return sim.Run(sc)
}

// Check runs the full property battery over a finished run of the spec:
// every General's Agreement/Timeliness/Termination/IA/TPS bounds, plus
// the Validity window of each scripted initiation (a refused scripted
// initiation is itself a violation — the generator only emits legal
// scripts).
func Check(res *sim.Result, sp Spec) []check.Violation {
	var out []check.Violation
	pp := res.Scenario.Params
	for g := 0; g < pp.N; g++ {
		out = append(out, check.All(res, protocol.NodeID(g))...)
	}
	for i, init := range sp.Script {
		if err, refused := res.InitErrs[i]; refused {
			out = append(out, check.Violation{
				Property: "Script",
				Detail:   fmt.Sprintf("initiation %d (G%d,%q) refused: %v", i, init.G, init.Value, err),
			})
			continue
		}
		out = append(out, check.Validity(res, init.G, init.At, init.Value)...)
	}
	return out
}

// RunCheck runs the spec and returns the battery's verdict. A spec that
// fails to even run (invalid params, bad adversary vocabulary) reports
// one synthetic "Spec" violation, so searches can treat run errors and
// property violations uniformly.
func RunCheck(sp Spec) (*sim.Result, []check.Violation) {
	res, err := Run(sp)
	if err != nil {
		return nil, []check.Violation{{Property: "Spec", Detail: err.Error()}}
	}
	return res, Check(res, sp)
}

// Marshal renders the spec as deterministic, replayable JSON (the
// artifact `ssbyz-bench -replay` consumes).
func (sp Spec) Marshal() []byte {
	blob, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		// Spec contains only plain data; marshalling cannot fail.
		panic(fmt.Sprintf("scenario: marshal: %v", err))
	}
	return append(blob, '\n')
}

// Parse decodes a spec from JSON and validates it.
func Parse(blob []byte) (Spec, error) {
	var sp Spec
	if err := json.Unmarshal(blob, &sp); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// components counts the knobs a shrinker can still remove — the size
// measure minimization reports progress against.
func (sp Spec) components() int {
	n := len(sp.Conditions) + len(sp.Script)
	for _, a := range sp.Adversaries {
		n += a.size()
	}
	return n
}

func (a AdversarySpec) size() int {
	n := 1
	for _, p := range a.Parts {
		n += p.size()
	}
	return n
}

// sortAdversaries keeps adversary order canonical (by node) so shrunk and
// generated specs marshal deterministically regardless of construction
// order.
func sortAdversaries(advs []AdversarySpec) {
	sort.Slice(advs, func(i, j int) bool { return advs[i].Node < advs[j].Node })
}
