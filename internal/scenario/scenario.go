// Package scenario is the declarative scenario engine: a JSON-serializable
// Spec describing one complete adversarial run — committee size, seed,
// per-node adversary assignments (including composed, staged, and adaptive
// strategies), a network-condition schedule, and the General script — plus
// a seeded random generator of model-legal specs and a greedy shrinker
// that minimizes property-violating specs into replayable counterexamples.
//
// The paper's proofs quantify over every Byzantine strategy and every
// arrival pattern the bounded-delay model admits; a Spec is one point of
// that space, and the S2 campaign (internal/harness) samples it by the
// thousand. Because a Spec carries every bit of entropy a run consumes,
// any violating spec replays byte-identically: `ssbyz-bench -replay
// spec.json` re-runs the exact counterexample.
package scenario

import (
	"encoding/json"
	"fmt"
	"sort"

	"ssbyz/internal/byzantine"
	"ssbyz/internal/check"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Adversary kinds of the declarative vocabulary. Leaves map to one
// internal/byzantine strategy; Compose/Staged/Adaptive combine the specs
// in Parts.
const (
	KindCrash       = "crash"       // forever silent
	KindYeasayer    = "yeasayer"    // amplifies every wave
	KindEquivocator = "equivocator" // faulty General, different values to different nodes
	KindPartial     = "partial"     // faulty General, initiation to a subset
	KindLate        = "late"        // colludes as late as the windows allow
	KindSpam        = "spam"        // floods syntactically valid garbage
	KindReplay      = "replay"      // captures and re-broadcasts traffic
	KindForge       = "forge"       // fabricates broadcast-layer echoes
	KindMirror      = "mirror"      // reflects every wave back at its sender
	KindEdge        = "edge"        // votes exactly on the n−2f threshold edge
	KindCompose     = "compose"     // run all Parts on one node
	KindStaged      = "staged"      // switch between Parts at local times
	KindAdaptive    = "adaptive"    // arm the last Part on a watched event
)

// AdversarySpec declares the strategy of one faulty node. Which fields
// matter depends on Kind; unused fields are ignored (and omitted from
// JSON). For combinators, Parts carries the member specs (their Node
// field is ignored — members share the combinator's node; a Staged
// member's At is its switch-over local time).
type AdversarySpec struct {
	// Node is the faulty node the strategy runs on.
	Node protocol.NodeID `json:"node"`
	Kind string          `json:"kind"`
	// Values parameterizes equivocator (the split values), partial and
	// forge (value [0]), and late (collude only with value [0]).
	Values []protocol.Value `json:"values,omitempty"`
	// At is a local time: attack time (equivocator, partial, forge),
	// replay delay, or stage switch-over inside a Staged parent.
	At simtime.Duration `json:"at,omitempty"`
	// Hold is a secondary local delay: late's contribution hold, spam's
	// stop time, partial's support delay.
	Hold simtime.Duration `json:"hold,omitempty"`
	// G scopes late (the wave to collude with), forge (the agreement
	// context), and adaptive (arm on the first wave observed for G).
	G protocol.NodeID `json:"g,omitempty"`
	// Targets is partial's invitee set and forge's claimed broadcaster
	// ([0]).
	Targets []protocol.NodeID `json:"targets,omitempty"`
	// Parts are the members of a combinator kind.
	Parts []AdversarySpec `json:"parts,omitempty"`
}

// Initiation is one entry of the General script: correct General G
// initiates agreement on Value at virtual real time At.
type Initiation struct {
	At    simtime.Real    `json:"at"`
	G     protocol.NodeID `json:"g"`
	Value protocol.Value  `json:"value"`
}

// Runtime names a Spec can carry: which execution substrate replays it.
const (
	// RuntimeSim (also the empty default) runs under the discrete-event
	// simulator — message-level adversaries, no bytes on any wire.
	RuntimeSim = "sim"
	// RuntimeVirtual runs on the nettrans virtual-time cluster: the full
	// wire codec and receive pipeline over the deterministic in-memory
	// wire, so byte-level attack conditions and mid-run faults replay
	// byte-identically.
	RuntimeVirtual = "virtual"
	// RuntimeLive runs on the in-process loopback cluster: real sockets,
	// wall-clock time. Same attack vocabulary as virtual, minus
	// determinism.
	RuntimeLive = "live"
)

// Fault is one scripted mid-run transient fault: at virtual real time
// At, the running node's protocol state is corrupted arbitrarily
// (transient.CorruptRunning), seeded by Seed — the live form of the
// arbitrary initial state the paper's self-stabilization property
// quantifies over. The runner plants a phantom "returned" record for
// General Node as the recovery observable and measures the time until
// the recovery sweep clears it, against Δstb = 2Δreset.
type Fault struct {
	At   simtime.Real    `json:"at"`
	Node protocol.NodeID `json:"node"`
	Seed int64           `json:"seed"`
	// SeverityPermille scales each corruption class's hit probability in
	// thousandths (0 = the injector default, 1000).
	SeverityPermille int `json:"severity_permille,omitempty"`
}

// Spec is one declarative scenario: everything a run consumes, so a spec
// replays byte-identically. The zero value of optional fields defers to
// the model defaults (F → ⌊(n−1)/3⌋, delays → [d/2, d], RunFor → last
// initiation + 3Δagr).
type Spec struct {
	N int `json:"n"`
	// F lowers the declared fault bound below optimal (0 = optimal).
	F    int   `json:"f,omitempty"`
	Seed int64 `json:"seed"`
	// Runtime selects the execution substrate: RuntimeSim (default ""),
	// RuntimeVirtual, or RuntimeLive. Wire-level attack conditions and
	// Faults require a live runtime — the simulator has no frames to
	// attack and no running process to corrupt.
	Runtime string `json:"runtime,omitempty"`
	// Transport selects the live cluster's socket flavor ("udp" default,
	// "tcp"); ignored by the simulator.
	Transport string `json:"transport,omitempty"`
	// DelayMin/DelayMax bound actual message delays in ticks. 0 defers to
	// the defaults ([d/2, d] under the simulator, [d/4, d/2] on the live
	// runtimes); the generators always set both explicitly.
	DelayMin simtime.Duration `json:"delay_min,omitempty"`
	DelayMax simtime.Duration `json:"delay_max,omitempty"`
	// Adversaries assigns strategies to faulty nodes (≤ f entries,
	// distinct nodes).
	Adversaries []AdversarySpec `json:"adversaries,omitempty"`
	// Conditions is the network-condition schedule (simnet vocabulary,
	// including the wire-level attack kinds on live runtimes).
	Conditions []simnet.Condition `json:"conditions,omitempty"`
	// Script is the General script: at most one initiation per General,
	// all by correct nodes.
	Script []Initiation `json:"script,omitempty"`
	// Faults is the transient-fault script (live runtimes only). Scripted
	// initiations must complete before the first fault or start after the
	// last fault's Δstb window — the battery judges the clean phases, the
	// fault window is what the paper's convergence claim covers.
	Faults []Fault `json:"faults,omitempty"`
	// RunFor is the virtual duration to simulate (0 = last scripted
	// initiation + 3Δagr, extended past the last fault's Δstb window).
	RunFor simtime.Duration `json:"run_for,omitempty"`
}

// Params materializes the protocol constants the spec implies.
func (sp Spec) Params() protocol.Params {
	pp := protocol.DefaultParams(sp.N)
	if sp.F > 0 {
		pp.F = sp.F
	}
	return pp
}

// LiveRuntime reports whether the spec names a live execution substrate
// (virtual-time or wall-clock cluster) rather than the simulator.
func (sp Spec) LiveRuntime() bool {
	return sp.Runtime == RuntimeVirtual || sp.Runtime == RuntimeLive
}

// Validate checks the spec against the model: n > 3f, at most f distinct
// faulty nodes, a script of correct Generals with at most one initiation
// each, well-formed adversary specs, structurally valid conditions
// (wire-level attack kinds only on live runtimes), and a fault script
// confined to live runtimes with the script phase-separated around it.
// Drop-scope model legality (partitions and byte-level attackers naming
// only faulty nodes) remains the generator's contract, as under the
// simulator: a spec violating it runs, and the battery's verdict on it
// is about the spec, not the paper.
func (sp Spec) Validate() error {
	pp := sp.Params()
	if err := pp.Validate(); err != nil {
		return err
	}
	switch sp.Runtime {
	case "", RuntimeSim, RuntimeVirtual, RuntimeLive:
	default:
		return fmt.Errorf("scenario: unknown runtime %q", sp.Runtime)
	}
	if sp.Transport != "" && !sp.LiveRuntime() {
		return fmt.Errorf("scenario: transport %q requires a live runtime", sp.Transport)
	}
	for i, c := range sp.Conditions {
		if err := simnet.ValidateCondition(i, c, pp.N, sp.LiveRuntime()); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	if sp.LiveRuntime() && sp.DelayMax > pp.D/2 {
		return fmt.Errorf("scenario: live delay max %d exceeds d/2 = %d (the chaos layer owns the other half of d)",
			sp.DelayMax, pp.D/2)
	}
	if len(sp.Faults) > 0 {
		if !sp.LiveRuntime() {
			return fmt.Errorf("scenario: faults require a live runtime (the simulator corrupts state before start, not mid-run)")
		}
		adv := make(map[protocol.NodeID]bool, len(sp.Adversaries))
		for _, a := range sp.Adversaries {
			adv[a.Node] = true
		}
		firstFault, lastFault := sp.Faults[0].At, sp.Faults[0].At
		for _, f := range sp.Faults {
			if f.Node < 0 || int(f.Node) >= pp.N {
				return fmt.Errorf("scenario: fault on node %d outside [0,%d)", f.Node, pp.N)
			}
			if adv[f.Node] {
				return fmt.Errorf("scenario: fault on adversary node %d (transient faults hit correct nodes; Byzantine nodes need no help)", f.Node)
			}
			if f.At <= 0 {
				return fmt.Errorf("scenario: fault at tick %d (must be mid-run, after start)", f.At)
			}
			if f.SeverityPermille < 0 || f.SeverityPermille > 1000 {
				return fmt.Errorf("scenario: fault severity %d‰ outside [0,1000]", f.SeverityPermille)
			}
			if f.At < firstFault {
				firstFault = f.At
			}
			if f.At > lastFault {
				lastFault = f.At
			}
		}
		postStart := lastFault + simtime.Real(pp.DeltaStb())
		for _, init := range sp.Script {
			pre := init.At+simtime.Real(3*pp.DeltaAgr()) <= firstFault
			post := init.At >= postStart
			if !pre && !post {
				return fmt.Errorf("scenario: initiation by General %d at %d overlaps the fault window [%d, %d) — finish 3Δagr before it or start after it",
					init.G, init.At, firstFault, postStart)
			}
		}
	}
	if len(sp.Adversaries) > pp.F {
		return fmt.Errorf("scenario: %d adversaries exceed f=%d", len(sp.Adversaries), pp.F)
	}
	faulty := make(map[protocol.NodeID]bool, len(sp.Adversaries))
	for _, a := range sp.Adversaries {
		if a.Node < 0 || int(a.Node) >= pp.N {
			return fmt.Errorf("scenario: adversary on node %d outside [0,%d)", a.Node, pp.N)
		}
		if faulty[a.Node] {
			return fmt.Errorf("scenario: node %d has two adversaries (use %q)", a.Node, KindCompose)
		}
		faulty[a.Node] = true
		if _, err := a.build(); err != nil {
			return err
		}
	}
	scripted := make(map[protocol.NodeID]bool, len(sp.Script))
	for _, init := range sp.Script {
		if init.G < 0 || int(init.G) >= pp.N {
			return fmt.Errorf("scenario: script General %d outside [0,%d)", init.G, pp.N)
		}
		if faulty[init.G] {
			return fmt.Errorf("scenario: script General %d is faulty (adversaries script themselves)", init.G)
		}
		if scripted[init.G] {
			return fmt.Errorf("scenario: General %d initiates twice (one initiation per General)", init.G)
		}
		scripted[init.G] = true
		if init.Value == protocol.Bottom {
			return fmt.Errorf("scenario: General %d initiates ⊥", init.G)
		}
	}
	return nil
}

// build materializes one adversary spec into a protocol.Node.
func (a AdversarySpec) build() (protocol.Node, error) {
	value := func(i int, def protocol.Value) protocol.Value {
		if i < len(a.Values) {
			return a.Values[i]
		}
		return def
	}
	switch a.Kind {
	case KindCrash:
		return &byzantine.Silent{}, nil
	case KindYeasayer:
		return &byzantine.Yeasayer{}, nil
	case KindEquivocator:
		vals := a.Values
		if len(vals) < 2 {
			vals = []protocol.Value{"x", "y"}
		}
		return &byzantine.Equivocator{Values: vals, At: a.At}, nil
	case KindPartial:
		return &byzantine.PartialGeneral{
			Invitees: a.Targets, Value: value(0, "p"), At: a.At, SupportDelay: a.Hold,
		}, nil
	case KindLate:
		return &byzantine.LateSupporter{G: a.G, Value: value(0, protocol.Bottom), HoldLocal: a.Hold}, nil
	case KindSpam:
		return &byzantine.Spammer{Stop: a.Hold, Values: a.Values}, nil
	case KindReplay:
		return &byzantine.Replayer{Delay: a.At}, nil
	case KindForge:
		var p protocol.NodeID
		if len(a.Targets) > 0 {
			p = a.Targets[0]
		}
		return &byzantine.EchoForger{G: a.G, ForgedP: p, ForgedV: value(0, "f"), K: 1, At: a.At}, nil
	case KindMirror:
		return &byzantine.MirrorVoter{}, nil
	case KindEdge:
		return &byzantine.EdgeSupporter{}, nil
	case KindCompose:
		if len(a.Parts) == 0 {
			return nil, fmt.Errorf("scenario: %q adversary on node %d has no parts", a.Kind, a.Node)
		}
		parts := make([]protocol.Node, len(a.Parts))
		for i, p := range a.Parts {
			n, err := p.build()
			if err != nil {
				return nil, err
			}
			parts[i] = n
		}
		return &byzantine.Composite{Parts: parts}, nil
	case KindStaged:
		if len(a.Parts) == 0 {
			return nil, fmt.Errorf("scenario: %q adversary on node %d has no parts", a.Kind, a.Node)
		}
		stages := make([]byzantine.Stage, len(a.Parts))
		for i, p := range a.Parts {
			n, err := p.build()
			if err != nil {
				return nil, err
			}
			stages[i] = byzantine.Stage{At: p.At, Node: n}
		}
		return &byzantine.Staged{Stages: stages}, nil
	case KindAdaptive:
		if len(a.Parts) == 0 || len(a.Parts) > 2 {
			return nil, fmt.Errorf("scenario: %q adversary on node %d needs 1–2 parts", a.Kind, a.Node)
		}
		armedSpec := a.Parts[len(a.Parts)-1]
		var base protocol.Node
		if len(a.Parts) == 2 {
			b, err := a.Parts[0].build()
			if err != nil {
				return nil, err
			}
			base = b
		}
		if _, err := armedSpec.build(); err != nil {
			return nil, err
		}
		return &byzantine.Adaptive{
			Base:    base,
			Trigger: byzantine.OnGeneral(a.G),
			Then: func() protocol.Node {
				n, _ := armedSpec.build()
				return n
			},
		}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown adversary kind %q on node %d", a.Kind, a.Node)
	}
}

// Scenario lowers the spec into the simulator's vocabulary. The caller
// owns delivery-path flags (LegacyFanout etc.) on the returned value.
func (sp Spec) Scenario() (sim.Scenario, error) {
	if sp.LiveRuntime() {
		return sim.Scenario{}, fmt.Errorf("scenario: %q runtime specs run on the cluster (RunLive), not the simulator", sp.Runtime)
	}
	if err := sp.Validate(); err != nil {
		return sim.Scenario{}, err
	}
	pp := sp.Params()
	sc := sim.Scenario{
		Params:     pp,
		Seed:       sp.Seed,
		DelayMin:   sp.DelayMin,
		DelayMax:   sp.DelayMax,
		Conditions: sp.Conditions,
		RunFor:     sp.RunFor,
		Faulty:     make(map[protocol.NodeID]protocol.Node, len(sp.Adversaries)),
	}
	for _, a := range sp.Adversaries {
		n, err := a.build()
		if err != nil {
			return sim.Scenario{}, err
		}
		sc.Faulty[a.Node] = n
	}
	for _, init := range sp.Script {
		sc.Initiations = append(sc.Initiations,
			sim.Initiation{At: init.At, G: init.G, Value: init.Value})
	}
	if sc.RunFor == 0 {
		var last simtime.Real
		for _, init := range sp.Script {
			if init.At > last {
				last = init.At
			}
		}
		sc.RunFor = simtime.Duration(last) + 3*pp.DeltaAgr()
	}
	return sc, nil
}

// Run executes the spec to completion.
func Run(sp Spec) (*sim.Result, error) {
	sc, err := sp.Scenario()
	if err != nil {
		return nil, err
	}
	return sim.Run(sc)
}

// Check runs the full property battery over a finished run of the spec:
// every General's Agreement/Timeliness/Termination/IA/TPS bounds, plus
// the Validity window of each scripted initiation (a refused scripted
// initiation is itself a violation — the generator only emits legal
// scripts).
func Check(res *sim.Result, sp Spec) []check.Violation {
	var out []check.Violation
	pp := res.Scenario.Params
	for g := 0; g < pp.N; g++ {
		out = append(out, check.All(res, protocol.NodeID(g))...)
	}
	for i, init := range sp.Script {
		if err, refused := res.InitErrs[i]; refused {
			out = append(out, check.Violation{
				Property: "Script",
				Detail:   fmt.Sprintf("initiation %d (G%d,%q) refused: %v", i, init.G, init.Value, err),
			})
			continue
		}
		out = append(out, check.Validity(res, init.G, init.At, init.Value)...)
	}
	return out
}

// RunCheck runs the spec and returns the battery's verdict. A spec that
// fails to even run (invalid params, bad adversary vocabulary) reports
// one synthetic "Spec" violation, so searches can treat run errors and
// property violations uniformly.
func RunCheck(sp Spec) (*sim.Result, []check.Violation) {
	res, err := Run(sp)
	if err != nil {
		return nil, []check.Violation{{Property: "Spec", Detail: err.Error()}}
	}
	return res, Check(res, sp)
}

// Marshal renders the spec as deterministic, replayable JSON (the
// artifact `ssbyz-bench -replay` consumes).
func (sp Spec) Marshal() []byte {
	blob, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		// Spec contains only plain data; marshalling cannot fail.
		panic(fmt.Sprintf("scenario: marshal: %v", err))
	}
	return append(blob, '\n')
}

// Parse decodes a spec from JSON and validates it.
func Parse(blob []byte) (Spec, error) {
	var sp Spec
	if err := json.Unmarshal(blob, &sp); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// components counts the knobs a shrinker can still remove — the size
// measure minimization reports progress against.
func (sp Spec) components() int {
	n := len(sp.Conditions) + len(sp.Script) + len(sp.Faults)
	for _, a := range sp.Adversaries {
		n += a.size()
	}
	return n
}

func (a AdversarySpec) size() int {
	n := 1
	for _, p := range a.Parts {
		n += p.size()
	}
	return n
}

// sortAdversaries keeps adversary order canonical (by node) so shrunk and
// generated specs marshal deterministically regardless of construction
// order.
func sortAdversaries(advs []AdversarySpec) {
	sort.Slice(advs, func(i, j int) bool { return advs[i].Node < advs[j].Node })
}
