package scenario

import (
	"encoding/json"
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// TestGenerateLiveSpecsLegal: every generated live spec validates, names
// the virtual runtime, and — across a seed sweep — the generator actually
// exercises the live vocabulary (faults, wire-level attacks, WAN windows).
func TestGenerateLiveSpecsLegal(t *testing.T) {
	counts := map[string]int{}
	for _, n := range []int{4, 7} {
		for seed := int64(0); seed < 40; seed++ {
			sp := GenerateLive(seed, n)
			if err := sp.Validate(); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if sp.Runtime != RuntimeVirtual {
				t.Fatalf("n=%d seed=%d: runtime %q", n, seed, sp.Runtime)
			}
			if len(sp.Faults) > 0 {
				counts["fault"]++
			}
			for _, c := range sp.Conditions {
				counts[c.Kind]++
			}
			if len(sp.Adversaries) > 0 {
				counts["adversary"]++
			}
		}
	}
	for _, want := range []string{"fault", "adversary", simnet.CondWAN, simnet.CondDuplicate, simnet.CondCorrupt, simnet.CondReplay, simnet.CondForge, simnet.CondReorder} {
		if counts[want] == 0 {
			t.Errorf("80 generated specs never drew %q (coverage hole): %v", want, counts)
		}
	}
}

// liveDeterminismSpec is a fixed virtual-runtime spec exercising WAN
// delays, duplication, and a byte corrupter on an adversary NIC.
func liveDeterminismSpec() Spec {
	pp := protocol.DefaultParams(4)
	return Spec{
		N: 4, Seed: 12345, Runtime: RuntimeVirtual,
		DelayMin: 2, DelayMax: 20,
		Script: []Initiation{
			{At: simtime.Real(2 * pp.D), G: 0, Value: "det-a"},
			{At: simtime.Real(2*pp.D) + simtime.Real(pp.DeltaAgr()), G: 2, Value: "det-b"},
		},
		Adversaries: []AdversarySpec{{Node: 3, Kind: KindYeasayer}},
		Conditions: []simnet.Condition{
			{
				Kind: simnet.CondWAN, From: 0, Until: simtime.Real(4 * pp.DeltaAgr()),
				Groups: [][]protocol.NodeID{{0, 1}, {2, 3}},
				Matrix: [][]simtime.Duration{{0, 30}, {25, 0}},
				Jitter: 10,
			},
			{Kind: simnet.CondDuplicate, From: 0, Until: simtime.Real(4 * pp.DeltaAgr()), Copies: 2},
			{Kind: simnet.CondCorrupt, From: 0, Until: simtime.Real(4 * pp.DeltaAgr()), Nodes: []protocol.NodeID{3}, Stride: 2},
		},
		RunFor: 4 * pp.DeltaAgr(),
	}
}

// TestRunLiveVirtualDeterministic: the virtual runtime is a pure function
// of the spec — two executions produce byte-identical traces, transport
// counters, and verdicts.
func TestRunLiveVirtualDeterministic(t *testing.T) {
	digest := func() string {
		sp := liveDeterminismSpec()
		run, err := RunLive(sp)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(struct {
			Events []protocol.TraceEvent
			Stats  any
			Pre    any
			Viols  any
		}{run.Res.Rec.Events(), run.Stats, run.PreInits, CheckLive(run, sp)})
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	a, b := digest(), digest()
	if a != b {
		t.Fatalf("virtual run not deterministic:\n%s\nvs\n%s", a, b)
	}
	if a == "" || len(a) < 100 {
		t.Fatalf("suspiciously empty digest: %q", a)
	}
}

// TestRunLiveFaultRecovery is the spec-level tentpole: a scripted
// transient fault corrupts a running correct node mid-run, the runner
// measures its re-stabilization against Δstb, a post-window probe
// agreement succeeds, and the battery judges both phases clean.
func TestRunLiveFaultRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a Δstb-length virtual campaign; skipped in -short")
	}
	pp := protocol.DefaultParams(4)
	preAt := simtime.Real(2 * pp.D)
	faultAt := preAt + simtime.Real(3*pp.DeltaAgr())
	postAt := faultAt + simtime.Real(pp.DeltaStb()) + simtime.Real(pp.D)
	sp := Spec{
		N: 4, Seed: 7, Runtime: RuntimeVirtual,
		DelayMin: 1, DelayMax: 20,
		Script: []Initiation{
			{At: preAt, G: 0, Value: "pre"},
			{At: postAt, G: 2, Value: "post"},
		},
		Faults: []Fault{{At: faultAt, Node: 1, Seed: 99, SeverityPermille: 1000}},
		RunFor: simtime.Duration(postAt) + 3*pp.DeltaAgr(),
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	run, err := RunLive(sp)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(run.Restab); got != 1 {
		t.Fatalf("restab samples: %d", got)
	}
	rs := run.Restab[0]
	if rs.Ticks <= 0 || rs.Ticks > pp.DeltaStb() {
		t.Fatalf("re-stabilization %d ticks outside (0, Δstb=%d]", rs.Ticks, pp.DeltaStb())
	}
	t.Logf("node %d re-stabilized in %d ticks (Δstb budget %d)", rs.Node, rs.Ticks, rs.Budget)
	if len(run.PreInits) != 1 || len(run.PostInits) != 1 {
		t.Fatalf("initiation split: pre=%d post=%d", len(run.PreInits), len(run.PostInits))
	}
	if viols := CheckLive(run, sp); len(viols) != 0 {
		t.Fatalf("battery violations: %v", viols)
	}
}

// TestLiveShrinkBrokenSpec closes the counterexample loop for the live
// runtimes: a deliberately model-illegal spec (a churn window detaching a
// CORRECT General across its own initiation — outside the generator's
// legality contract) violates the battery, shrinks to a 1-minimal spec,
// and the minimized JSON replays to the same verdict — exactly what
// `ssbyz-bench -replay` does with an exported counterexample file.
func TestLiveShrinkBrokenSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("runs shrink candidates; skipped in -short")
	}
	pp := protocol.DefaultParams(4)
	sp := Spec{
		N: 4, Seed: 3, Runtime: RuntimeVirtual,
		DelayMin: 1, DelayMax: 20,
		Script: []Initiation{{At: simtime.Real(4 * pp.D), G: 0, Value: "doomed"}},
		Conditions: []simnet.Condition{
			// Two harmless decoys the shrinker must strip...
			{Kind: simnet.CondJitter, From: 0, Until: simtime.Real(2 * pp.D), Jitter: 5},
			{Kind: simnet.CondDuplicate, From: 0, Until: simtime.Real(2 * pp.D), Copies: 1},
			// ...and the actual killer: the scripted General loses its NIC
			// for the whole agreement window.
			{Kind: simnet.CondChurn, From: simtime.Real(2 * pp.D), Until: simtime.Real(2 * pp.DeltaAgr()), Nodes: []protocol.NodeID{0}},
		},
		RunFor: 2 * pp.DeltaAgr(),
	}
	fails := func(c Spec) bool { return len(RunCheckAny(c)) > 0 }
	if !fails(sp) {
		t.Fatal("broken spec unexpectedly passed the battery")
	}
	min := Shrink(sp, fails)
	if len(min.Conditions) != 1 || min.Conditions[0].Kind != simnet.CondChurn {
		t.Fatalf("shrink kept conditions %+v", min.Conditions)
	}
	if len(min.Script) != 1 || len(min.Faults) != 0 || len(min.Adversaries) != 0 {
		t.Fatalf("shrink not minimal: %+v", min)
	}
	// 1-minimality spot check: dropping the churn window heals the run.
	healed := min.clone()
	healed.Conditions = nil
	if fails(healed) {
		t.Fatal("spec still fails without the churn window — shrink kept a non-causal component")
	}
	// The counterexample replays from its JSON form.
	blob, err := json.Marshal(min)
	if err != nil {
		t.Fatal(err)
	}
	var replayed Spec
	if err := json.Unmarshal(blob, &replayed); err != nil {
		t.Fatal(err)
	}
	viols := RunCheckAny(replayed)
	if len(viols) == 0 {
		t.Fatal("replayed counterexample no longer violates the battery")
	}
	t.Logf("minimal counterexample (%d bytes): %s -> %v", len(blob), blob, viols[0])
}
