package sim

import (
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// TestHappyPathDecides is the end-to-end smoke test: a correct General
// among all-correct nodes leads every node to decide the General's value
// within the validity window [t0−d, t0+4d].
func TestHappyPathDecides(t *testing.T) {
	pp := protocol.DefaultParams(7)
	res, err := Run(Scenario{
		Params:      pp,
		Seed:        1,
		Initiations: []Initiation{{At: 0, G: 0, Value: "v"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	decs := res.Decisions(0)
	if len(decs) != pp.N {
		t.Fatalf("want %d decisions, got %d", pp.N, len(decs))
	}
	for _, d := range decs {
		if !d.Decided || d.Value != "v" {
			t.Fatalf("node %d: decided=%v value=%q", d.Node, d.Decided, d.Value)
		}
		if d.RT > simtime.Real(4*pp.D) {
			t.Errorf("node %d decided at rt=%d, beyond t0+4d=%d", d.Node, d.RT, 4*pp.D)
		}
		if d.RTauG < -simtime.Real(pp.D) {
			t.Errorf("node %d anchor rt=%d before t0−d", d.Node, d.RTauG)
		}
	}
}

// TestHappyPathWithCrashFaults checks validity with f silent nodes.
func TestHappyPathWithCrashFaults(t *testing.T) {
	pp := protocol.DefaultParams(7)
	res, err := Run(Scenario{
		Params: pp,
		Seed:   2,
		Faulty: map[protocol.NodeID]protocol.Node{5: nil, 6: nil},
		Initiations: []Initiation{
			{At: 0, G: 0, Value: "x"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	decs := res.Decisions(0)
	if len(decs) != pp.N-2 {
		t.Fatalf("want %d decisions, got %d", pp.N-2, len(decs))
	}
	for _, d := range decs {
		if !d.Decided || d.Value != "x" {
			t.Fatalf("node %d: decided=%v value=%q", d.Node, d.Decided, d.Value)
		}
	}
}
