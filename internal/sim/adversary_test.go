package sim

import (
	"fmt"
	"testing"

	"ssbyz/internal/byzantine"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// decideValues returns the set of distinct non-⊥ decided values for g.
func decideValues(res *Result, g protocol.NodeID) map[protocol.Value]int {
	out := make(map[protocol.Value]int)
	for _, d := range res.Decisions(g) {
		if d.Decided {
			out[d.Value]++
		}
	}
	return out
}

// TestEquivocatingGeneralNoSplit: a faulty General sending two values to
// two halves must never get correct nodes to decide different values
// (all-or-none per value; Agreement).
func TestEquivocatingGeneralNoSplit(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			pp := protocol.DefaultParams(7)
			g := protocol.NodeID(6)
			res, err := Run(Scenario{
				Params: pp,
				Seed:   seed,
				Faulty: map[protocol.NodeID]protocol.Node{
					g: &byzantine.Equivocator{Values: []protocol.Value{"a", "b"}, At: simtime.Duration(seed * 100)},
				},
				RunFor: 4 * pp.DeltaAgr(),
			})
			if err != nil {
				t.Fatal(err)
			}
			vals := decideValues(res, g)
			if len(vals) > 1 {
				t.Fatalf("split decision: %v", vals)
			}
			// If any correct node decided, all must have decided that value.
			for v, cnt := range vals {
				if cnt != len(res.Correct) {
					t.Fatalf("value %q decided by %d/%d correct nodes", v, cnt, len(res.Correct))
				}
			}
		})
	}
}

// TestEquivocatorWithColluders adds f−1 Yeasayer colluders amplifying both
// waves; Agreement must still hold.
func TestEquivocatorWithColluders(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		pp := protocol.DefaultParams(10) // f = 3
		g := protocol.NodeID(9)
		res, err := Run(Scenario{
			Params: pp,
			Seed:   seed,
			Faulty: map[protocol.NodeID]protocol.Node{
				g: &byzantine.Equivocator{Values: []protocol.Value{"a", "b"}, At: 500},
				7: &byzantine.Yeasayer{},
				8: &byzantine.Yeasayer{},
			},
			RunFor: 4 * pp.DeltaAgr(),
		})
		if err != nil {
			t.Fatal(err)
		}
		vals := decideValues(res, g)
		if len(vals) > 1 {
			t.Fatalf("seed %d: split decision: %v", seed, vals)
		}
		for v, cnt := range vals {
			if cnt != len(res.Correct) {
				t.Fatalf("seed %d: value %q decided by %d/%d", seed, v, cnt, len(res.Correct))
			}
		}
	}
}

// TestSpamCannotForge: pure spam from f nodes must never produce an
// I-accept or a decision for a General that never correctly initiated.
func TestSpamCannotForge(t *testing.T) {
	pp := protocol.DefaultParams(7)
	res, err := Run(Scenario{
		Params: pp,
		Seed:   7,
		Faulty: map[protocol.NodeID]protocol.Node{
			5: &byzantine.Spammer{},
			6: &byzantine.Spammer{},
		},
		RunFor: 3 * pp.DeltaStb(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < pp.N; g++ {
		if got := res.IAccepts(protocol.NodeID(g)); len(got) > 0 {
			t.Fatalf("spam produced I-accept for G%d: %+v", g, got[0])
		}
		if got := res.Decisions(protocol.NodeID(g)); len(got) > 0 {
			t.Fatalf("spam produced a return for G%d", g)
		}
	}
}

// TestPartialGeneralAllOrNone: a General inviting only a subset must still
// yield all-or-none outcomes.
func TestPartialGeneralAllOrNone(t *testing.T) {
	pp := protocol.DefaultParams(7)
	for _, k := range []int{1, 2, 3, 4, 5, 6} {
		for seed := int64(0); seed < 10; seed++ {
			invitees := make([]protocol.NodeID, 0, k)
			for i := 0; i < k; i++ {
				invitees = append(invitees, protocol.NodeID(i))
			}
			g := protocol.NodeID(6)
			res, err := Run(Scenario{
				Params: pp,
				Seed:   seed,
				Faulty: map[protocol.NodeID]protocol.Node{
					g: &byzantine.PartialGeneral{Invitees: invitees, Value: "p", At: 100},
				},
				RunFor: 4 * pp.DeltaAgr(),
			})
			if err != nil {
				t.Fatal(err)
			}
			vals := decideValues(res, g)
			for v, cnt := range vals {
				if cnt != len(res.Correct) {
					t.Fatalf("k=%d seed=%d: value %q decided by %d/%d correct nodes",
						k, seed, v, cnt, len(res.Correct))
				}
			}
		}
	}
}
