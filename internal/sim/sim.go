// Package sim assembles and runs complete simulation scenarios: a world of
// correct nodes (internal/core) and adversaries (internal/byzantine),
// scripted initiations, optional transient-fault injection, and result
// extraction for the property checkers and the experiment harness.
package sim

import (
	"fmt"
	"sort"

	"ssbyz/internal/core"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Initiation schedules a General-side agreement initiation at a virtual
// real time. Slot selects a concurrent-invocation slot when the correct
// nodes are indexed (footnote-9 extension); it must be 0 otherwise.
type Initiation struct {
	At    simtime.Real
	G     protocol.NodeID
	Value protocol.Value
	Slot  int
}

// Scenario describes one run.
type Scenario struct {
	// Params are the protocol constants; zero value defaults to
	// DefaultParams(7).
	Params protocol.Params
	// Seed drives all randomness.
	Seed int64
	// DelayMin/DelayMax bound actual message delays (default [D/2, D]).
	DelayMin, DelayMax simtime.Duration
	// Delay optionally overrides the delay policy.
	Delay simnet.DelayFn
	// Clocks optionally sets per-node clocks.
	Clocks []simtime.Clock
	// Faulty maps node IDs to adversary implementations. A nil entry is a
	// crash-faulty (forever silent) node. IDs not present are correct.
	Faulty map[protocol.NodeID]protocol.Node
	// NewNode builds each correct node's state machine (default
	// core.NewNode). Alternative factories (e.g. the pulse layer) must
	// return nodes that implement Initiator for scripted initiations to
	// work.
	NewNode func() protocol.Node
	// Initiations are the scripted General actions. Initiations by faulty
	// Generals are ignored here (the adversary scripts its own behaviour).
	Initiations []Initiation
	// Corrupt, when non-nil, runs at virtual time 0 against the assembled
	// world, before any protocol event (the transient-fault hook).
	Corrupt func(w *simnet.World)
	// Drive, when non-nil, runs after the world starts and before any
	// scripted initiation is registered. It lets a dynamic driver — the
	// replicated-log service pump reacting to decide returns — schedule
	// its own virtual-time callbacks via w.Scheduler(), something the
	// static Initiations list cannot express.
	Drive func(w *simnet.World)
	// RunFor is the virtual real time to simulate (default 3·Δagr).
	RunFor simtime.Duration
	// LegacyFanout forces the per-recipient broadcast delivery path (see
	// simnet.Config.LegacyFanout); the differential tests pin the batched
	// path against it.
	LegacyFanout bool
	// Conditions is the scripted network-condition schedule — timed
	// partitions, jitter windows, node churn — applied deterministically
	// at delivery time (see simnet/conditions.go).
	Conditions []simnet.Condition
	// LegacyConditions bypasses the condition machinery (the schedule is
	// ignored); the differential tests pin the conditions-on path against
	// it on schedule-free scenarios.
	LegacyConditions bool
}

// Initiator is the General-side capability required of correct nodes for
// scripted initiations.
type Initiator interface {
	InitiateAgreement(v protocol.Value) error
}

// SlotInitiator is the indexed (concurrent-invocation) variant.
type SlotInitiator interface {
	InitiateAgreement(slot int, v protocol.Value) error
}

// Decision is the outcome of one correct node for one General.
type Decision struct {
	Node    protocol.NodeID
	Decided bool // false = abort (⊥)
	Value   protocol.Value
	RT      simtime.Real  // real time of the return
	Tau     simtime.Local // local time of the return
	TauG    simtime.Local // the anchor
	RTauG   simtime.Real  // real time at which the local clock read TauG
}

// Result is everything a run produced. The per-General accessors
// (Decisions, IAccepts, Invocations, Initiations) extract from the
// recorder's kind index once and memoize: the property battery asks for
// the same extracts ~10 times per run, and at large n re-scanning (and
// re-copying) the full trace per predicate dominated the checking cost.
// The returned slices are shared — callers must treat them as read-only.
// The accessors are not safe for concurrent use (runs are checked from
// one goroutine).
type Result struct {
	Scenario Scenario
	World    *simnet.World
	Rec      *protocol.Recorder
	// Correct lists the IDs of correct nodes, ascending.
	Correct []protocol.NodeID
	// InitErrs records sending-validity refusals hit by scripted
	// initiations (IG1–IG3), keyed by initiation index.
	InitErrs map[int]error

	// correctSet answers IsCorrect in O(1); index by node ID.
	correctSet []bool
	decCache   map[protocol.NodeID][]Decision
	iaCache    map[protocol.NodeID][]protocol.TraceEvent
	invCache   map[protocol.NodeID][]protocol.TraceEvent
	initCache  map[protocol.NodeID][]protocol.TraceEvent
}

// Run executes the scenario to completion.
func Run(sc Scenario) (*Result, error) {
	if sc.Params.N == 0 {
		sc.Params = protocol.DefaultParams(7)
	}
	if err := sc.Params.Validate(); err != nil {
		return nil, err
	}
	if sc.DelayMax == 0 {
		sc.DelayMax = sc.Params.D
	}
	if sc.DelayMin == 0 {
		sc.DelayMin = sc.Params.D / 2
	}
	if sc.RunFor == 0 {
		sc.RunFor = 3 * sc.Params.DeltaAgr()
	}
	if len(sc.Faulty) > sc.Params.F {
		return nil, fmt.Errorf("sim: %d faulty nodes exceeds f=%d", len(sc.Faulty), sc.Params.F)
	}

	w, err := simnet.New(simnet.Config{
		Params:           sc.Params,
		Seed:             sc.Seed,
		DelayMin:         sc.DelayMin,
		DelayMax:         sc.DelayMax,
		Delay:            sc.Delay,
		Clocks:           sc.Clocks,
		LegacyFanout:     sc.LegacyFanout,
		Conditions:       sc.Conditions,
		LegacyConditions: sc.LegacyConditions,
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Scenario:   sc,
		World:      w,
		Rec:        w.Recorder(),
		InitErrs:   make(map[int]error),
		correctSet: make([]bool, sc.Params.N),
	}
	for i := 0; i < sc.Params.N; i++ {
		id := protocol.NodeID(i)
		if adv, ok := sc.Faulty[id]; ok {
			if adv != nil {
				w.SetNode(id, adv)
			}
			continue
		}
		if sc.NewNode != nil {
			w.SetNode(id, sc.NewNode())
		} else {
			w.SetNode(id, core.NewNode())
		}
		res.Correct = append(res.Correct, id)
		res.correctSet[id] = true
	}
	sort.Slice(res.Correct, func(i, j int) bool { return res.Correct[i] < res.Correct[j] })

	if sc.Corrupt != nil {
		sc.Corrupt(w)
	}
	w.Start()
	if sc.Drive != nil {
		sc.Drive(w)
	}

	for i, init := range sc.Initiations {
		if _, faulty := sc.Faulty[init.G]; faulty {
			continue
		}
		i, init := i, init
		w.Scheduler().At(init.At, func() {
			var err error
			switch n := w.Node(init.G).(type) {
			case SlotInitiator:
				err = n.InitiateAgreement(init.Slot, init.Value)
			case Initiator:
				if init.Slot != 0 {
					err = fmt.Errorf("sim: node %d has no concurrent slots", init.G)
				} else {
					err = n.InitiateAgreement(init.Value)
				}
			default:
				err = fmt.Errorf("sim: node %d cannot initiate agreements", init.G)
			}
			if err != nil {
				res.InitErrs[i] = err
			}
		})
	}

	w.RunUntil(simtime.Real(sc.RunFor))
	return res, nil
}

// IsCorrect reports whether id is a correct node in this run.
func (r *Result) IsCorrect(id protocol.NodeID) bool {
	if r.correctSet != nil {
		return id >= 0 && int(id) < len(r.correctSet) && r.correctSet[id]
	}
	for _, c := range r.Correct {
		if c == id {
			return true
		}
	}
	return false
}

// Decisions returns every correct node's return (decide or abort) for
// General g, in node order. Nodes that never returned are absent. The
// slice is memoized and shared — read-only for callers.
func (r *Result) Decisions(g protocol.NodeID) []Decision {
	if out, ok := r.decCache[g]; ok {
		return out
	}
	var out []Decision
	r.Rec.ForEachKind(func(ev protocol.TraceEvent) {
		if ev.G != g || !r.IsCorrect(ev.Node) {
			return
		}
		d := Decision{Node: ev.Node, Decided: ev.Kind == protocol.EvDecide,
			RT: ev.RT, Tau: ev.Tau, TauG: ev.TauG, RTauG: ev.RTauG}
		if d.Decided {
			d.Value = ev.M
		} else {
			d.Value = protocol.Bottom
		}
		out = append(out, d)
	}, protocol.EvDecide, protocol.EvAbort)
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	if r.decCache == nil {
		r.decCache = make(map[protocol.NodeID][]Decision)
	}
	r.decCache[g] = out
	return out
}

// kindForG extracts kind-events for General g through a per-G cache.
func (r *Result) kindForG(cache *map[protocol.NodeID][]protocol.TraceEvent,
	g protocol.NodeID, kind protocol.EventKind, correctOnly bool) []protocol.TraceEvent {
	if out, ok := (*cache)[g]; ok {
		return out
	}
	var out []protocol.TraceEvent
	r.Rec.ForEachKind(func(ev protocol.TraceEvent) {
		if ev.G == g && (!correctOnly || r.IsCorrect(ev.Node)) {
			out = append(out, ev)
		}
	}, kind)
	if *cache == nil {
		*cache = make(map[protocol.NodeID][]protocol.TraceEvent)
	}
	(*cache)[g] = out
	return out
}

// IAccepts returns the I-accept events of correct nodes for General g
// (memoized; read-only).
func (r *Result) IAccepts(g protocol.NodeID) []protocol.TraceEvent {
	return r.kindForG(&r.iaCache, g, protocol.EvIAccept, true)
}

// Invocations returns the protocol-invocation events of correct nodes for
// General g (Block Q1 executions; memoized; read-only).
func (r *Result) Invocations(g protocol.NodeID) []protocol.TraceEvent {
	return r.kindForG(&r.invCache, g, protocol.EvInvoke, true)
}

// Initiations returns the EvInitiate events for General g (memoized;
// read-only).
func (r *Result) Initiations(g protocol.NodeID) []protocol.TraceEvent {
	return r.kindForG(&r.initCache, g, protocol.EvInitiate, false)
}
