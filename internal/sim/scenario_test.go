package sim

import (
	"testing"

	"ssbyz/internal/byzantine"
	"ssbyz/internal/protocol"
	"ssbyz/internal/pulse"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

func TestRunRejectsInvalidParams(t *testing.T) {
	_, err := Run(Scenario{Params: protocol.Params{N: 6, F: 2, D: 1000}})
	if err == nil {
		t.Error("Run accepted n = 3f")
	}
}

func TestRunRejectsTooManyFaulty(t *testing.T) {
	sc := Scenario{
		Params: protocol.DefaultParams(4),
		Faulty: map[protocol.NodeID]protocol.Node{1: nil, 2: nil},
	}
	if _, err := Run(sc); err == nil {
		t.Error("Run accepted 2 faulty nodes at f=1")
	}
}

func TestRunDefaults(t *testing.T) {
	res, err := Run(Scenario{})
	if err != nil {
		t.Fatalf("Run with zero scenario: %v", err)
	}
	if res.Scenario.Params.N != 7 {
		t.Errorf("default N = %d, want 7", res.Scenario.Params.N)
	}
	if len(res.Correct) != 7 {
		t.Errorf("correct nodes = %d, want 7", len(res.Correct))
	}
}

func TestIsCorrect(t *testing.T) {
	res, err := Run(Scenario{
		Params: protocol.DefaultParams(4),
		Faulty: map[protocol.NodeID]protocol.Node{2: nil},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.IsCorrect(2) {
		t.Error("faulty node reported correct")
	}
	if !res.IsCorrect(0) || !res.IsCorrect(3) {
		t.Error("correct node reported faulty")
	}
}

func TestInitiationByFaultyGeneralSkipped(t *testing.T) {
	pp := protocol.DefaultParams(4)
	sc := Scenario{
		Params:      pp,
		Faulty:      map[protocol.NodeID]protocol.Node{0: &byzantine.Silent{}},
		Initiations: []Initiation{{At: simtime.Real(2 * pp.D), G: 0, Value: "v"}},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Initiations(0)) != 0 {
		t.Error("scripted initiation ran on a faulty General")
	}
	if len(res.InitErrs) != 0 {
		t.Errorf("InitErrs for a skipped initiation: %v", res.InitErrs)
	}
}

func TestNodeFactoryOverride(t *testing.T) {
	pp := protocol.DefaultParams(4)
	sc := Scenario{
		Params:  pp,
		NewNode: func() protocol.Node { return pulse.NewNode(pulse.Config{}) },
		RunFor:  2 * (pulse.MinCycle(pp) + pp.DeltaAgr()),
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Rec.ByKind(protocol.EvPulse)) == 0 {
		t.Error("factory-built pulse nodes fired no pulses")
	}
}

func TestNonInitiatorNodeReported(t *testing.T) {
	pp := protocol.DefaultParams(4)
	sc := Scenario{
		Params: pp,
		// A factory returning nodes that cannot initiate.
		NewNode:     func() protocol.Node { return &byzantine.Silent{} },
		Initiations: []Initiation{{At: 0, G: 0, Value: "v"}},
		RunFor:      pp.DeltaAgr(),
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, ok := res.InitErrs[0]; !ok {
		t.Error("non-Initiator node did not surface an initiation error")
	}
}

func TestCorruptHookRunsBeforeStart(t *testing.T) {
	pp := protocol.DefaultParams(4)
	ran := false
	sc := Scenario{
		Params:  pp,
		Corrupt: func(w *simnet.World) { ran = true },
		RunFor:  pp.D,
	}
	if _, err := Run(sc); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Error("Corrupt hook never ran")
	}
}

func TestDecisionsSortedByNode(t *testing.T) {
	pp := protocol.DefaultParams(7)
	res, err := Run(Scenario{
		Params:      pp,
		Seed:        3,
		Initiations: []Initiation{{At: simtime.Real(2 * pp.D), G: 0, Value: "v"}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	decs := res.Decisions(0)
	for i := 1; i < len(decs); i++ {
		if decs[i].Node < decs[i-1].Node {
			t.Fatalf("decisions not sorted: %v", decs)
		}
	}
}
