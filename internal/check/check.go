// Package check turns the paper's proved properties into machine-checkable
// predicates over simulation results: Agreement, Validity, Termination,
// the Timeliness items 1–4 of Section 3, and the measurable parts of
// IA-1..IA-4 and TPS-1..TPS-4. Every numeric bound uses the exact constant
// from the paper (in units of d and Φ). The discrete-event transport
// stamps both rt(·) and τ(·) on every event, so the mixed-frame bounds are
// checked exactly.
package check

import (
	"fmt"

	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
)

// Violation describes one property violation found in a run.
type Violation struct {
	Property string
	Detail   string
}

func (v Violation) String() string { return v.Property + ": " + v.Detail }

func violate(out *[]Violation, prop, format string, args ...any) {
	*out = append(*out, Violation{Property: prop, Detail: fmt.Sprintf(format, args...)})
}

// Agreement checks: if any correct node decides (G,m), all correct nodes
// decide the same (and so no correct node aborts or hangs).
func Agreement(res *sim.Result, g protocol.NodeID) []Violation {
	var out []Violation
	decs := res.Decisions(g)
	var first *sim.Decision
	for i := range decs {
		if decs[i].Decided {
			first = &decs[i]
			break
		}
	}
	if first == nil {
		return nil // nobody decided: Agreement is vacuous
	}
	returned := make(map[protocol.NodeID]sim.Decision, len(decs))
	for _, d := range decs {
		returned[d.Node] = d
	}
	for _, id := range res.Correct {
		d, ok := returned[id]
		if !ok {
			violate(&out, "Agreement", "node %d never returned although node %d decided %q", id, first.Node, first.Value)
			continue
		}
		if !d.Decided {
			violate(&out, "Agreement", "node %d aborted although node %d decided %q", id, first.Node, first.Value)
			continue
		}
		if d.Value != first.Value {
			violate(&out, "Agreement", "node %d decided %q but node %d decided %q", d.Node, d.Value, first.Node, first.Value)
		}
	}
	return out
}

// Validity checks: a correct General's initiation at real time t0 leads
// every correct node to decide the General's value, and (Timeliness-2)
// t0−d ≤ rt(τG) ≤ rt(τq) ≤ t0+4d.
func Validity(res *sim.Result, g protocol.NodeID, t0 simtime.Real, want protocol.Value) []Violation {
	var out []Violation
	pp := res.Scenario.Params
	decs := res.Decisions(g)
	byNode := make(map[protocol.NodeID]sim.Decision, len(decs))
	for _, d := range decs {
		byNode[d.Node] = d
	}
	for _, id := range res.Correct {
		d, ok := byNode[id]
		if !ok {
			violate(&out, "Validity", "correct node %d never returned", id)
			continue
		}
		if !d.Decided || d.Value != want {
			violate(&out, "Validity", "node %d returned (%v,%q), want decide %q", id, d.Decided, d.Value, want)
			continue
		}
		if d.RTauG < t0-simtime.Real(pp.D) {
			violate(&out, "Timeliness-2", "node %d: rt(τG)=%d < t0−d=%d", id, d.RTauG, t0-simtime.Real(pp.D))
		}
		if d.RTauG > d.RT {
			violate(&out, "Timeliness-2", "node %d: rt(τG)=%d > rt(τq)=%d", id, d.RTauG, d.RT)
		}
		if d.RT > t0+4*simtime.Real(pp.D) {
			violate(&out, "Timeliness-2", "node %d: rt(τq)=%d > t0+4d=%d", id, d.RT, t0+4*simtime.Real(pp.D))
		}
	}
	return out
}

// TimelinessAgreement checks Timeliness-1 over the correct decisions for
// G: (a) decision real times within 3d of each other (2d when validity
// holds), (b) anchors within 6d, (d) rt(τG) ≤ rt(τq) and
// rt(τq) − rt(τG) ≤ Δagr.
func TimelinessAgreement(res *sim.Result, g protocol.NodeID, validityHolds bool) []Violation {
	var out []Violation
	pp := res.Scenario.Params
	var decided []sim.Decision
	for _, d := range res.Decisions(g) {
		if d.Decided {
			decided = append(decided, d)
		}
	}
	if len(decided) == 0 {
		return nil
	}
	skewBound := 3 * simtime.Real(pp.D)
	if validityHolds {
		skewBound = 2 * simtime.Real(pp.D)
	}
	for i := 0; i < len(decided); i++ {
		for j := i + 1; j < len(decided); j++ {
			a, b := decided[i], decided[j]
			if diff := absReal(a.RT - b.RT); diff > skewBound {
				violate(&out, "Timeliness-1a", "nodes %d,%d decision skew %d > %d", a.Node, b.Node, diff, skewBound)
			}
			if diff := absReal(a.RTauG - b.RTauG); diff > 6*simtime.Real(pp.D) {
				violate(&out, "Timeliness-1b", "nodes %d,%d anchor skew %d > 6d=%d", a.Node, b.Node, diff, 6*simtime.Real(pp.D))
			}
		}
	}
	for _, d := range decided {
		if d.RTauG > d.RT {
			violate(&out, "Timeliness-1d", "node %d: rt(τG)=%d > rt(τq)=%d", d.Node, d.RTauG, d.RT)
		}
		if d.RT-d.RTauG > simtime.Real(pp.DeltaAgr()) {
			violate(&out, "Timeliness-1d", "node %d: rt(τq)−rt(τG)=%d > Δagr=%d", d.Node, d.RT-d.RTauG, pp.DeltaAgr())
		}
	}
	return out
}

// AnchorInInvocationWindow checks Timeliness-1c: each decider's rt(τG)
// falls in [t1−2d, t2], where [t1,t2] spans the correct invocations.
func AnchorInInvocationWindow(res *sim.Result, g protocol.NodeID) []Violation {
	var out []Violation
	pp := res.Scenario.Params
	invs := res.Invocations(g)
	if len(invs) == 0 {
		return nil
	}
	t1, t2 := invs[0].RT, invs[0].RT
	for _, ev := range invs {
		if ev.RT < t1 {
			t1 = ev.RT
		}
		if ev.RT > t2 {
			t2 = ev.RT
		}
	}
	for _, d := range res.Decisions(g) {
		if !d.Decided {
			continue
		}
		if d.RTauG < t1-2*simtime.Real(pp.D) || d.RTauG > t2 {
			violate(&out, "Timeliness-1c", "node %d: rt(τG)=%d outside [t1−2d,t2]=[%d,%d]",
				d.Node, d.RTauG, t1-2*simtime.Real(pp.D), t2)
		}
	}
	return out
}

// Termination checks Timeliness-3: every correct node that invoked the
// protocol returns within Δagr of its invocation; nodes that participated
// without invoking return within Δagr + 7d of the earliest invocation.
func Termination(res *sim.Result, g protocol.NodeID) []Violation {
	var out []Violation
	pp := res.Scenario.Params
	invs := res.Invocations(g)
	invokedAt := make(map[protocol.NodeID]simtime.Real, len(invs))
	earliest := simtime.Real(-1)
	for _, ev := range invs {
		if _, ok := invokedAt[ev.Node]; !ok {
			invokedAt[ev.Node] = ev.RT
		}
		if earliest < 0 || ev.RT < earliest {
			earliest = ev.RT
		}
	}
	retAt := make(map[protocol.NodeID]simtime.Real)
	for _, d := range res.Decisions(g) {
		retAt[d.Node] = d.RT
	}
	// Expiry is the paper's second termination mode: "by time (2f+1)·Φ+3d
	// on its clock all entries will be reset, which is a termination of
	// the protocol". The expiry is detected by a periodic sweep, so allow
	// one sweep interval (Δrmv/4) plus drift slack on top.
	expiredAt := make(map[protocol.NodeID]simtime.Real)
	res.Rec.ForEachKind(func(ev protocol.TraceEvent) {
		if ev.G != g || !res.IsCorrect(ev.Node) {
			return
		}
		if _, ok := expiredAt[ev.Node]; !ok {
			expiredAt[ev.Node] = ev.RT
		}
	}, protocol.EvExpire)
	expiryBound := simtime.Real(pp.DeltaAgr()) + 3*simtime.Real(pp.D) +
		simtime.Real(pp.DeltaRmv()/4) + 2*simtime.Real(pp.D)
	for node, t := range invokedAt {
		rt, ok := retAt[node]
		if !ok {
			if exp, expired := expiredAt[node]; expired {
				if exp-t > expiryBound {
					violate(&out, "Termination", "node %d expired %d after invocation (bound (2f+1)Φ+3d+sweep=%d)",
						node, exp-t, expiryBound)
				}
				continue
			}
			violate(&out, "Termination", "node %d invoked at %d but never returned nor expired", node, t)
			continue
		}
		if rt-t > simtime.Real(pp.DeltaAgr())+simtime.Real(7*pp.D) {
			violate(&out, "Termination", "node %d returned %d after invocation (bound Δagr+7d=%d)",
				node, rt-t, simtime.Real(pp.DeltaAgr())+simtime.Real(7*pp.D))
		}
	}
	// Participants that returned without invoking: Δagr + 7d from the
	// earliest invocation.
	if earliest >= 0 {
		for node, rt := range retAt {
			if _, ok := invokedAt[node]; ok {
				continue
			}
			bound := earliest + simtime.Real(pp.DeltaAgr()) + 7*simtime.Real(pp.D)
			if rt > bound {
				violate(&out, "Termination", "non-invoking node %d returned at %d > bound %d", node, rt, bound)
			}
		}
	}
	return out
}

func absReal(x simtime.Real) simtime.Real {
	if x < 0 {
		return -x
	}
	return x
}

func absDur(x simtime.Duration) simtime.Duration {
	if x < 0 {
		return -x
	}
	return x
}
