// Package check turns the paper's proved properties into machine-checkable
// predicates over simulation results: Agreement, Validity, Termination,
// the Timeliness items 1–4 of Section 3, and the measurable parts of
// IA-1..IA-4 and TPS-1..TPS-4. Every numeric bound uses the exact constant
// from the paper (in units of d and Φ). The discrete-event transport
// stamps both rt(·) and τ(·) on every event, so the mixed-frame bounds are
// checked exactly.
package check

import (
	"fmt"
	"sort"

	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
)

// Violation describes one property violation found in a run.
type Violation struct {
	Property string
	Detail   string
}

func (v Violation) String() string { return v.Property + ": " + v.Detail }

func violate(out *[]Violation, prop, format string, args ...any) {
	*out = append(*out, Violation{Property: prop, Detail: fmt.Sprintf(format, args...)})
}

// sessions partitions the correct returns for General g into agreement
// sessions, in two steps. First by concurrent-invocation slot: values of
// concurrent sessions carry the footnote-9 index namespace ("s<k>|…"), and
// every per-session property (Agreement, Timeliness-1, IA-4) applies per
// index — two concurrent invocations deliberately have different values at
// overlapping anchors. Second, within each slot, by anchor adjacency: one
// session's anchors span at most 6d (Timeliness-1b), so a gap > 6d between
// anchor-ordered returns separates two distinct agreements. A (faulty)
// General may legally run several well-separated agreements in one trace —
// IA-4 and Timeliness-4 police the separation — while Agreement and
// Timeliness-1 are per-session properties; without the split, two legal
// agreements 31d apart would read as one giant "violation" (the scenario
// campaign found exactly that). Abort returns carry ⊥ and therefore no
// slot namespace; they land in the un-namespaced group (slot −1), which is
// the whole trace for single-session runs — exactly the pre-multiplexing
// behavior. Sessions are ordered by slot then anchor; returns within one
// session keep anchor order.
func sessions(res *sim.Result, g protocol.NodeID) [][]sim.Decision {
	decs := res.Decisions(g)
	if len(decs) == 0 {
		return nil
	}
	bySlot := make(map[int][]sim.Decision)
	for _, d := range decs {
		slot := -1
		if d.Decided {
			slot = protocol.SlotOf(d.Value)
		}
		bySlot[slot] = append(bySlot[slot], d)
	}
	var out [][]sim.Decision
	for _, slot := range sortedSlots(bySlot) {
		sorted := bySlot[slot]
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].RTauG < sorted[j].RTauG })
		gap := 6 * simtime.Real(res.Scenario.Params.D)
		start := 0
		for i := 1; i <= len(sorted); i++ {
			if i == len(sorted) || sorted[i].RTauG-sorted[i-1].RTauG > gap {
				out = append(out, sorted[start:i])
				start = i
			}
		}
	}
	return out
}

// sortedSlots returns the slot keys of a per-slot grouping in ascending
// order (−1, the un-namespaced single-session group, first) so every
// checker's violation output is deterministic.
func sortedSlots[T any](m map[int]T) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Agreement checks, per agreement session: if any correct node decides
// (G,m), all correct nodes decide the same (and so no correct node aborts
// or hangs in that session).
func Agreement(res *sim.Result, g protocol.NodeID) []Violation {
	var out []Violation
	for _, session := range sessions(res, g) {
		agreementSession(&out, res, session)
	}
	return out
}

func agreementSession(out *[]Violation, res *sim.Result, session []sim.Decision) {
	var first *sim.Decision
	for i := range session {
		if session[i].Decided {
			first = &session[i]
			break
		}
	}
	if first == nil {
		return // nobody decided: Agreement is vacuous for this session
	}
	returned := make(map[protocol.NodeID]sim.Decision, len(session))
	for _, d := range session {
		returned[d.Node] = d
	}
	for _, id := range res.Correct {
		d, ok := returned[id]
		if !ok {
			violate(out, "Agreement", "node %d never returned although node %d decided %q", id, first.Node, first.Value)
			continue
		}
		if !d.Decided {
			violate(out, "Agreement", "node %d aborted although node %d decided %q", id, first.Node, first.Value)
			continue
		}
		if d.Value != first.Value {
			violate(out, "Agreement", "node %d decided %q but node %d decided %q", d.Node, d.Value, first.Node, first.Value)
		}
	}
}

// Validity checks: a correct General's initiation at real time t0 leads
// every correct node to decide the General's value, and (Timeliness-2)
// t0−d ≤ rt(τG) ≤ rt(τq) ≤ t0+4d.
func Validity(res *sim.Result, g protocol.NodeID, t0 simtime.Real, want protocol.Value) []Violation {
	var out []Violation
	pp := res.Scenario.Params
	decs := res.Decisions(g)
	byNode := make(map[protocol.NodeID]sim.Decision, len(decs))
	for _, d := range decs {
		byNode[d.Node] = d
	}
	for _, id := range res.Correct {
		d, ok := byNode[id]
		if !ok {
			violate(&out, "Validity", "correct node %d never returned", id)
			continue
		}
		if !d.Decided || d.Value != want {
			violate(&out, "Validity", "node %d returned (%v,%q), want decide %q", id, d.Decided, d.Value, want)
			continue
		}
		if d.RTauG < t0-simtime.Real(pp.D) {
			violate(&out, "Timeliness-2", "node %d: rt(τG)=%d < t0−d=%d", id, d.RTauG, t0-simtime.Real(pp.D))
		}
		if d.RTauG > d.RT {
			violate(&out, "Timeliness-2", "node %d: rt(τG)=%d > rt(τq)=%d", id, d.RTauG, d.RT)
		}
		if d.RT > t0+4*simtime.Real(pp.D) {
			violate(&out, "Timeliness-2", "node %d: rt(τq)=%d > t0+4d=%d", id, d.RT, t0+4*simtime.Real(pp.D))
		}
	}
	return out
}

// ValidityFor checks Validity/Timeliness-2 for one agreement identified
// by its decided wire value want: every correct node decides want with
// the anchor window t0−d ≤ rt(τG) ≤ rt(τq) ≤ t0+4d. Unlike Validity it
// scopes each node's decision lookup to the value, so it composes with
// recurrent and concurrent (footnote-9) invocations where a node returns
// many times per General — the service battery checks every committed log
// entry this way.
func ValidityFor(res *sim.Result, g protocol.NodeID, t0 simtime.Real, want protocol.Value) []Violation {
	var out []Violation
	pp := res.Scenario.Params
	byNode := make(map[protocol.NodeID]sim.Decision)
	for _, d := range res.Decisions(g) {
		if d.Decided && d.Value == want {
			if _, ok := byNode[d.Node]; !ok {
				byNode[d.Node] = d
			}
		}
	}
	for _, id := range res.Correct {
		d, ok := byNode[id]
		if !ok {
			violate(&out, "Validity", "correct node %d never decided %q", id, want)
			continue
		}
		if d.RTauG < t0-simtime.Real(pp.D) {
			violate(&out, "Timeliness-2", "node %d: rt(τG)=%d < t0−d=%d", id, d.RTauG, t0-simtime.Real(pp.D))
		}
		if d.RTauG > d.RT {
			violate(&out, "Timeliness-2", "node %d: rt(τG)=%d > rt(τq)=%d", id, d.RTauG, d.RT)
		}
		if d.RT > t0+4*simtime.Real(pp.D) {
			violate(&out, "Timeliness-2", "node %d: rt(τq)=%d > t0+4d=%d", id, d.RT, t0+4*simtime.Real(pp.D))
		}
	}
	return out
}

// TimelinessAgreement checks Timeliness-1 over the correct decisions of
// each agreement session for G: (a) decision real times within 3d of each
// other (2d when validity holds), (b) anchors within 6d, (d) rt(τG) ≤
// rt(τq) and rt(τq) − rt(τG) ≤ Δagr. The pairwise skews are per-session
// properties (cross-session gaps are Timeliness-4's subject); the (d)
// bounds hold for every decision regardless of session.
func TimelinessAgreement(res *sim.Result, g protocol.NodeID, validityHolds bool) []Violation {
	var out []Violation
	pp := res.Scenario.Params
	skewBound := 3 * simtime.Real(pp.D)
	if validityHolds {
		skewBound = 2 * simtime.Real(pp.D)
	}
	for _, session := range sessions(res, g) {
		var decided []sim.Decision
		for _, d := range session {
			if d.Decided {
				decided = append(decided, d)
			}
		}
		for i := 0; i < len(decided); i++ {
			for j := i + 1; j < len(decided); j++ {
				a, b := decided[i], decided[j]
				if diff := absReal(a.RT - b.RT); diff > skewBound {
					violate(&out, "Timeliness-1a", "nodes %d,%d decision skew %d > %d", a.Node, b.Node, diff, skewBound)
				}
				if diff := absReal(a.RTauG - b.RTauG); diff > 6*simtime.Real(pp.D) {
					violate(&out, "Timeliness-1b", "nodes %d,%d anchor skew %d > 6d=%d", a.Node, b.Node, diff, 6*simtime.Real(pp.D))
				}
			}
		}
		for _, d := range decided {
			if d.RTauG > d.RT {
				violate(&out, "Timeliness-1d", "node %d: rt(τG)=%d > rt(τq)=%d", d.Node, d.RTauG, d.RT)
			}
			if d.RT-d.RTauG > simtime.Real(pp.DeltaAgr()) {
				violate(&out, "Timeliness-1d", "node %d: rt(τq)−rt(τG)=%d > Δagr=%d", d.Node, d.RT-d.RTauG, pp.DeltaAgr())
			}
		}
	}
	return out
}

// AnchorInInvocationWindow checks Timeliness-1c: each decider's rt(τG)
// falls in [t1−2d, t2], where [t1,t2] spans the correct invocations.
func AnchorInInvocationWindow(res *sim.Result, g protocol.NodeID) []Violation {
	var out []Violation
	pp := res.Scenario.Params
	invs := res.Invocations(g)
	if len(invs) == 0 {
		return nil
	}
	t1, t2 := invs[0].RT, invs[0].RT
	for _, ev := range invs {
		if ev.RT < t1 {
			t1 = ev.RT
		}
		if ev.RT > t2 {
			t2 = ev.RT
		}
	}
	for _, d := range res.Decisions(g) {
		if !d.Decided {
			continue
		}
		if d.RTauG < t1-2*simtime.Real(pp.D) || d.RTauG > t2 {
			violate(&out, "Timeliness-1c", "node %d: rt(τG)=%d outside [t1−2d,t2]=[%d,%d]",
				d.Node, d.RTauG, t1-2*simtime.Real(pp.D), t2)
		}
	}
	return out
}

// Termination checks Timeliness-3: every correct node that invoked the
// protocol returns within Δagr of its invocation; nodes that participated
// without invoking return within Δagr + 7d of the earliest invocation.
//
// The check is horizon-aware: "never returned nor expired" is only
// provable when the simulated run outlived the node's latest legal
// return/expiry instant — an invocation whose deadline lies beyond the
// run's end proves nothing either way (scenario fuzzing generates late
// faulty-General attacks where this matters; a positive late return or
// late expiry is still flagged regardless of the horizon).
func Termination(res *sim.Result, g protocol.NodeID) []Violation {
	var out []Violation
	pp := res.Scenario.Params
	end := simtime.Real(res.Scenario.RunFor)
	// A node may invoke several times for one General across well-separated
	// agreement sessions, so each invocation is matched to the node's FIRST
	// return (or expiry) at or after it — pairing first-invocation with
	// last-return would fuse sessions into phantom Termination violations.
	invs := res.Invocations(g)
	invokedAt := make(map[protocol.NodeID][]simtime.Real, len(invs))
	earliest := simtime.Real(-1)
	for _, ev := range invs { // trace order is chronological
		invokedAt[ev.Node] = append(invokedAt[ev.Node], ev.RT)
		if earliest < 0 || ev.RT < earliest {
			earliest = ev.RT
		}
	}
	retAt := make(map[protocol.NodeID][]simtime.Real)
	for _, d := range res.Decisions(g) {
		retAt[d.Node] = append(retAt[d.Node], d.RT)
	}
	for _, rts := range retAt {
		sort.Slice(rts, func(i, j int) bool { return rts[i] < rts[j] })
	}
	// Expiry is the paper's second termination mode: "by time (2f+1)·Φ+3d
	// on its clock all entries will be reset, which is a termination of
	// the protocol". The expiry is detected by a periodic sweep, so allow
	// one sweep interval (Δrmv/4) plus drift slack on top.
	expiredAt := make(map[protocol.NodeID][]simtime.Real)
	res.Rec.ForEachKind(func(ev protocol.TraceEvent) {
		if ev.G != g || !res.IsCorrect(ev.Node) {
			return
		}
		expiredAt[ev.Node] = append(expiredAt[ev.Node], ev.RT)
	}, protocol.EvExpire)
	expiryBound := simtime.Real(pp.DeltaAgr()) + 3*simtime.Real(pp.D) +
		simtime.Real(pp.DeltaRmv()/4) + 2*simtime.Real(pp.D)
	returnBound := simtime.Real(pp.DeltaAgr()) + simtime.Real(7*pp.D)
	lastLegal := returnBound
	if expiryBound > lastLegal {
		lastLegal = expiryBound
	}
	firstGE := func(sorted []simtime.Real, t simtime.Real) (simtime.Real, bool) {
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= t })
		if i == len(sorted) {
			return 0, false
		}
		return sorted[i], true
	}
	for node, ts := range invokedAt {
		for _, t := range ts {
			// The invocation terminates with whichever comes first: the
			// node's next return, or the next expiry (state reset) — a
			// later session's return must not shadow this session's expiry.
			rt, returned := firstGE(retAt[node], t)
			exp, expired := firstGE(expiredAt[node], t)
			if expired && (!returned || exp < rt) {
				if exp-t > expiryBound {
					violate(&out, "Termination", "node %d expired %d after invocation (bound (2f+1)Φ+3d+sweep=%d)",
						node, exp-t, expiryBound)
				}
				continue
			}
			if !returned {
				if t+lastLegal < end {
					violate(&out, "Termination", "node %d invoked at %d but never returned nor expired", node, t)
				}
				continue
			}
			if rt-t > returnBound {
				violate(&out, "Termination", "node %d returned %d after invocation (bound Δagr+7d=%d)",
					node, rt-t, returnBound)
			}
		}
	}
	// Participants that returned without ever invoking: Δagr + 7d from the
	// earliest invocation.
	if earliest >= 0 {
		for node, rts := range retAt {
			if _, ok := invokedAt[node]; ok {
				continue
			}
			bound := earliest + returnBound
			if rts[0] > bound {
				violate(&out, "Termination", "non-invoking node %d returned at %d > bound %d", node, rts[0], bound)
			}
		}
	}
	return out
}

func absReal(x simtime.Real) simtime.Real {
	if x < 0 {
		return -x
	}
	return x
}

func absDur(x simtime.Duration) simtime.Duration {
	if x < 0 {
		return -x
	}
	return x
}
