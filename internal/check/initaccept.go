package check

import (
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
)

// IACorrectness checks IA-1 for a correct General whose initiation hit the
// network at real time t0:
//
//	1A — all correct nodes I-accept within 4d of the invocation;
//	1B — all I-accepts within 2d of each other;
//	1C — recording times rt(τG) within d of each other;
//	1D — t0−d ≤ rt(τG) ≤ rt(τq) ≤ t0+4d for every I-accepter.
func IACorrectness(res *sim.Result, g protocol.NodeID, t0 simtime.Real) []Violation {
	var out []Violation
	pp := res.Scenario.Params
	accepts := res.IAccepts(g)
	got := make(map[protocol.NodeID]protocol.TraceEvent, len(accepts))
	for _, ev := range accepts {
		if _, ok := got[ev.Node]; !ok {
			got[ev.Node] = ev
		}
	}
	d := simtime.Real(pp.D)
	for _, id := range res.Correct {
		ev, ok := got[id]
		if !ok {
			violate(&out, "IA-1A", "correct node %d never I-accepted", id)
			continue
		}
		if ev.RT > t0+4*d {
			violate(&out, "IA-1A", "node %d I-accepted at %d > t0+4d=%d", id, ev.RT, t0+4*d)
		}
		if ev.RTauG < t0-d {
			violate(&out, "IA-1D", "node %d: rt(τG)=%d < t0−d=%d", id, ev.RTauG, t0-d)
		}
		if ev.RTauG > ev.RT {
			violate(&out, "IA-1D", "node %d: rt(τG)=%d > rt(τq)=%d", id, ev.RTauG, ev.RT)
		}
	}
	for _, a := range got {
		for _, b := range got {
			if a.Node >= b.Node {
				continue
			}
			if diff := absReal(a.RT - b.RT); diff > 2*d {
				violate(&out, "IA-1B", "nodes %d,%d I-accept skew %d > 2d", a.Node, b.Node, diff)
			}
			if diff := absReal(a.RTauG - b.RTauG); diff > d {
				violate(&out, "IA-1C", "nodes %d,%d recording skew %d > d", a.Node, b.Node, diff)
			}
		}
	}
	return out
}

// acceptsBySlot groups correct I-accept events by the footnote-9 session
// slot of the accepted value (−1 for un-namespaced single-session values):
// every IA property quantifies over one concurrent invocation, so the pair
// and relay bounds apply within a slot, never across two sessions that run
// deliberately overlapped. Groups come back in ascending slot order for
// deterministic violation output.
func acceptsBySlot(accepts []protocol.TraceEvent) [][]protocol.TraceEvent {
	bySlot := make(map[int][]protocol.TraceEvent)
	for _, ev := range accepts {
		bySlot[protocol.SlotOf(ev.M)] = append(bySlot[protocol.SlotOf(ev.M)], ev)
	}
	out := make([][]protocol.TraceEvent, 0, len(bySlot))
	for _, slot := range sortedSlots(bySlot) {
		out = append(out, bySlot[slot])
	}
	return out
}

// IARelay checks IA-3: given any correct I-accept within Δagr of its
// anchor, every correct node I-accepts within 2d of it with anchors within
// 6d (3A), and rt(τG) ≤ rt(τq) with rt(τq) − rt(τG) ≤ Δagr + 8d (3C).
// Concurrent sessions (footnote 9) are independent invocations, so the
// relay obligation is checked per session slot.
func IARelay(res *sim.Result, g protocol.NodeID) []Violation {
	var out []Violation
	for _, group := range acceptsBySlot(res.IAccepts(g)) {
		out = append(out, iaRelaySession(res, group)...)
	}
	return out
}

func iaRelaySession(res *sim.Result, accepts []protocol.TraceEvent) []Violation {
	var out []Violation
	pp := res.Scenario.Params
	if len(accepts) == 0 {
		return nil
	}
	d := simtime.Real(pp.D)
	// Find a trigger: a correct I-accept within Δagr of its anchor.
	var trigger *protocol.TraceEvent
	for i := range accepts {
		if accepts[i].RT-accepts[i].RTauG <= simtime.Real(pp.DeltaAgr()) {
			trigger = &accepts[i]
			break
		}
	}
	if trigger == nil {
		return nil
	}
	got := make(map[protocol.NodeID]protocol.TraceEvent, len(accepts))
	for _, ev := range accepts {
		if _, ok := got[ev.Node]; !ok {
			got[ev.Node] = ev
		}
	}
	for _, id := range res.Correct {
		ev, ok := got[id]
		if !ok {
			violate(&out, "IA-3A", "node %d never I-accepted despite node %d's I-accept", id, trigger.Node)
			continue
		}
		if diff := absReal(ev.RT - trigger.RT); diff > 2*d {
			violate(&out, "IA-3A", "node %d I-accept %d from trigger > 2d", id, diff)
		}
		if diff := absReal(ev.RTauG - trigger.RTauG); diff > 6*d {
			violate(&out, "IA-3A", "node %d anchor skew %d > 6d", id, diff)
		}
		if ev.RTauG > ev.RT {
			violate(&out, "IA-3C", "node %d: rt(τG) > rt(τq)", id)
		}
		if ev.RT-ev.RTauG > simtime.Real(pp.DeltaAgr())+8*d {
			violate(&out, "IA-3C", "node %d: rt(τq)−rt(τG)=%d > Δagr+8d", id, ev.RT-ev.RTauG)
		}
	}
	return out
}

// IAUnforgeability checks IA-2: if no correct node invoked
// Initiator-Accept for G, no correct node I-accepts anything from G.
func IAUnforgeability(res *sim.Result, g protocol.NodeID) []Violation {
	var out []Violation
	if len(res.Invocations(g)) > 0 {
		return nil
	}
	for _, ev := range res.IAccepts(g) {
		violate(&out, "IA-2", "node %d I-accepted (G%d,%q) without any correct invocation", ev.Node, g, ev.M)
	}
	return out
}

// IAUniqueness checks IA-4 across every pair of correct I-accepts for G:
//
//	4A — different values: anchors > 4d apart;
//	4B — same value: anchors ≤ 6d apart or > 2Δrmv − 3d apart.
//
// The pair bounds quantify over one concurrent invocation: sessions in
// different footnote-9 slots are distinct agreements whose values may
// legally anchor arbitrarily close, so pairs are formed within a slot only.
func IAUniqueness(res *sim.Result, g protocol.NodeID) []Violation {
	var out []Violation
	pp := res.Scenario.Params
	d := simtime.Real(pp.D)
	for _, accepts := range acceptsBySlot(res.IAccepts(g)) {
		out = append(out, iaUniquenessSession(pp, d, accepts)...)
	}
	return out
}

func iaUniquenessSession(pp protocol.Params, d simtime.Real, accepts []protocol.TraceEvent) []Violation {
	var out []Violation
	for i := 0; i < len(accepts); i++ {
		for j := i + 1; j < len(accepts); j++ {
			a, b := accepts[i], accepts[j]
			gap := absReal(a.RTauG - b.RTauG)
			if a.M != b.M {
				if gap <= 4*d {
					violate(&out, "IA-4A", "nodes %d,%d anchors %d apart ≤ 4d for values %q vs %q",
						a.Node, b.Node, gap, a.M, b.M)
				}
			} else {
				if gap > 6*d && gap <= 2*simtime.Real(pp.DeltaRmv())-3*d {
					violate(&out, "IA-4B", "nodes %d,%d anchors %d apart in forbidden zone (6d, 2Δrmv−3d] for %q",
						a.Node, b.Node, gap, a.M)
				}
			}
		}
	}
	return out
}

// Separation checks Timeliness-4 over correct decisions across all
// agreements for G (same bounds as IA-4 applied to decision anchors).
// Like IA-4 it quantifies over one concurrent invocation, so decisions are
// paired within a footnote-9 session slot only.
func Separation(res *sim.Result, g protocol.NodeID) []Violation {
	var out []Violation
	bySlot := make(map[int][]sim.Decision)
	for _, dec := range res.Decisions(g) {
		if dec.Decided {
			slot := protocol.SlotOf(dec.Value)
			bySlot[slot] = append(bySlot[slot], dec)
		}
	}
	for _, slot := range sortedSlots(bySlot) {
		out = append(out, separationSession(res, bySlot[slot])...)
	}
	return out
}

func separationSession(res *sim.Result, decided []sim.Decision) []Violation {
	var out []Violation
	pp := res.Scenario.Params
	d := simtime.Real(pp.D)
	for i := 0; i < len(decided); i++ {
		for j := i + 1; j < len(decided); j++ {
			a, b := decided[i], decided[j]
			gap := absReal(a.RTauG - b.RTauG)
			if a.Value != b.Value {
				if gap <= 4*d {
					violate(&out, "Timeliness-4a", "decisions %q@%d and %q@%d anchors %d apart ≤ 4d",
						a.Value, a.Node, b.Value, b.Node, gap)
				}
			} else if gap > 6*d && gap <= 2*simtime.Real(pp.DeltaRmv())-3*d {
				violate(&out, "Timeliness-4b", "decisions on %q anchors %d apart in forbidden zone",
					a.Value, gap)
			}
		}
	}
	return out
}

// All runs the core checks (Agreement, Timeliness-1, Termination,
// IA relay/uniqueness, separation) for General g and concatenates the
// violations. Validity/IA-1 need t0 and are checked separately.
func All(res *sim.Result, g protocol.NodeID) []Violation {
	var out []Violation
	out = append(out, Agreement(res, g)...)
	out = append(out, TimelinessAgreement(res, g, false)...)
	out = append(out, AnchorInInvocationWindow(res, g)...)
	out = append(out, Termination(res, g)...)
	out = append(out, IARelay(res, g)...)
	out = append(out, IAUnforgeability(res, g)...)
	out = append(out, IAUniqueness(res, g)...)
	out = append(out, Separation(res, g)...)
	return out
}
