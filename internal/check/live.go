package check

import (
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
)

// This file adapts the property battery to live-transport traces. A live
// run (internal/nettrans, internal/livenet) produces the same TraceEvent
// stream as the simulator — shaped into a sim.Result by
// nettrans.BuildResult — so every checker applies unchanged; what differs
// is bookkeeping: the initiations are scripted by the driver rather than
// a sim.Scenario, and decide latencies are the live experiment's headline
// metric.

// LiveInitiation is one scripted agreement of a live run: General G
// initiated V, and the EvInitiate trace event landed at tick T0 (the t0
// of the Validity window [t0−d, t0+4d]).
type LiveInitiation struct {
	G  protocol.NodeID
	V  protocol.Value
	T0 simtime.Real
}

// LiveResult wraps a live trace for verdicts.
type LiveResult struct {
	Result *sim.Result
}

// Battery runs the full property battery over the live trace: every
// General's Agreement/Timeliness/Termination/IA/TPS bounds plus the
// Validity window of each scripted initiation.
func (lr *LiveResult) Battery(inits []LiveInitiation) []Violation {
	var out []Violation
	pp := lr.Result.Scenario.Params
	for g := 0; g < pp.N; g++ {
		out = append(out, All(lr.Result, protocol.NodeID(g))...)
	}
	for _, in := range inits {
		out = append(out, Validity(lr.Result, in.G, in.T0, in.V)...)
	}
	return out
}

// DecideLatencies returns rt(decide) − t0 in ticks for every correct
// node that decided (G, V) — the live decide-latency sample set.
func (lr *LiveResult) DecideLatencies(g protocol.NodeID, v protocol.Value, t0 simtime.Real) []float64 {
	var out []float64
	for _, d := range lr.Result.Decisions(g) {
		if d.Decided && d.Value == v {
			out = append(out, float64(d.RT-t0))
		}
	}
	return out
}
