package check

import (
	"strings"
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
)

// fakeResult builds a sim.Result with a hand-written trace: the checkers
// only consult the recorder, the correct-node list, and the parameters.
func fakeResult(correct []protocol.NodeID, events ...protocol.TraceEvent) *sim.Result {
	rec := protocol.NewRecorder()
	for _, ev := range events {
		rec.Add(ev)
	}
	// RunFor declares a horizon far past every bound used in these tests:
	// the horizon-aware checks (Termination's "never returned") only claim
	// a hang when the run outlived the node's latest legal return instant.
	return &sim.Result{
		Scenario: sim.Scenario{Params: protocol.DefaultParams(7), RunFor: 1 << 30},
		Rec:      rec,
		Correct:  correct,
	}
}

// decideEv builds a decide event with matching anchor fields.
func decideEv(node protocol.NodeID, g protocol.NodeID, m protocol.Value, rt, rTauG simtime.Real) protocol.TraceEvent {
	return protocol.TraceEvent{Kind: protocol.EvDecide, Node: node, G: g, M: m, RT: rt, RTauG: rTauG, TauG: simtime.Local(rTauG)}
}

func abortEv(node protocol.NodeID, g protocol.NodeID, rt simtime.Real) protocol.TraceEvent {
	return protocol.TraceEvent{Kind: protocol.EvAbort, Node: node, G: g, RT: rt}
}

func hasViolation(vs []Violation, prop string) bool {
	for _, v := range vs {
		if strings.HasPrefix(v.Property, prop) {
			return true
		}
	}
	return false
}

var threeCorrect = []protocol.NodeID{1, 2, 3}

func TestAgreementPasses(t *testing.T) {
	res := fakeResult(threeCorrect,
		decideEv(1, 0, "v", 100, 50),
		decideEv(2, 0, "v", 110, 52),
		decideEv(3, 0, "v", 120, 51),
	)
	if vs := Agreement(res, 0); len(vs) != 0 {
		t.Errorf("unexpected violations: %v", vs)
	}
}

func TestAgreementVacuousWhenNobodyDecides(t *testing.T) {
	res := fakeResult(threeCorrect, abortEv(1, 0, 100), abortEv(2, 0, 105), abortEv(3, 0, 101))
	if vs := Agreement(res, 0); len(vs) != 0 {
		t.Errorf("all-abort flagged: %v", vs)
	}
}

func TestAgreementFlagsValueSplit(t *testing.T) {
	res := fakeResult(threeCorrect,
		decideEv(1, 0, "v", 100, 50),
		decideEv(2, 0, "w", 110, 52),
		decideEv(3, 0, "v", 120, 51),
	)
	vs := Agreement(res, 0)
	if !hasViolation(vs, "Agreement") {
		t.Errorf("value split not flagged: %v", vs)
	}
}

func TestAgreementFlagsMixedReturns(t *testing.T) {
	res := fakeResult(threeCorrect,
		decideEv(1, 0, "v", 100, 50),
		abortEv(2, 0, 110),
		decideEv(3, 0, "v", 120, 51),
	)
	if vs := Agreement(res, 0); !hasViolation(vs, "Agreement") {
		t.Errorf("decide+abort mix not flagged: %v", vs)
	}
}

func TestAgreementFlagsMissingNode(t *testing.T) {
	res := fakeResult(threeCorrect,
		decideEv(1, 0, "v", 100, 50),
		decideEv(2, 0, "v", 110, 52),
		// node 3 never returns
	)
	if vs := Agreement(res, 0); !hasViolation(vs, "Agreement") {
		t.Errorf("hanging node not flagged: %v", vs)
	}
}

func TestValidityPassesInWindow(t *testing.T) {
	// t0=1000, d=1000: decisions by t0+4d=5000, anchors ≥ t0−d=0.
	res := fakeResult(threeCorrect,
		decideEv(1, 0, "v", 4000, 900),
		decideEv(2, 0, "v", 4500, 950),
		decideEv(3, 0, "v", 4900, 920),
	)
	if vs := Validity(res, 0, 1000, "v"); len(vs) != 0 {
		t.Errorf("unexpected violations: %v", vs)
	}
}

func TestValidityFlagsWrongValue(t *testing.T) {
	res := fakeResult(threeCorrect,
		decideEv(1, 0, "w", 4000, 900),
		decideEv(2, 0, "v", 4500, 950),
		decideEv(3, 0, "v", 4900, 920),
	)
	if vs := Validity(res, 0, 1000, "v"); !hasViolation(vs, "Validity") {
		t.Errorf("wrong value not flagged: %v", vs)
	}
}

func TestValidityFlagsLateDecision(t *testing.T) {
	res := fakeResult(threeCorrect,
		decideEv(1, 0, "v", 9000, 900), // > t0+4d
		decideEv(2, 0, "v", 4500, 950),
		decideEv(3, 0, "v", 4900, 920),
	)
	if vs := Validity(res, 0, 1000, "v"); !hasViolation(vs, "Timeliness-2") {
		t.Errorf("late decision not flagged: %v", vs)
	}
}

func TestValidityFlagsEarlyAnchor(t *testing.T) {
	res := fakeResult(threeCorrect,
		decideEv(1, 0, "v", 4000, -5000), // rt(τG) < t0−d
		decideEv(2, 0, "v", 4500, 950),
		decideEv(3, 0, "v", 4900, 920),
	)
	if vs := Validity(res, 0, 1000, "v"); !hasViolation(vs, "Timeliness-2") {
		t.Errorf("early anchor not flagged: %v", vs)
	}
}

func TestTimelinessAgreementSkewBounds(t *testing.T) {
	// d=1000: 3d bound without validity, 2d with.
	base := func(gap simtime.Real) *sim.Result {
		return fakeResult(threeCorrect,
			decideEv(1, 0, "v", 10000, 8000),
			decideEv(2, 0, "v", 10000+gap, 8100),
			decideEv(3, 0, "v", 10500, 8050),
		)
	}
	if vs := TimelinessAgreement(base(2500), 0, false); len(vs) != 0 {
		t.Errorf("2.5d skew flagged under the 3d bound: %v", vs)
	}
	if vs := TimelinessAgreement(base(2500), 0, true); !hasViolation(vs, "Timeliness-1a") {
		t.Errorf("2.5d skew passed under the 2d validity bound: %v", vs)
	}
	if vs := TimelinessAgreement(base(3500), 0, false); !hasViolation(vs, "Timeliness-1a") {
		t.Errorf("3.5d skew passed the 3d bound: %v", vs)
	}
}

func TestTimelinessAgreementAnchorSkew(t *testing.T) {
	// Anchors chained ≤ 6d apart form ONE session (a session split needs
	// a > 6d gap between anchor-neighbours), so a pairwise spread beyond
	// 6d inside the chain is a Timeliness-1b violation.
	res := fakeResult(threeCorrect,
		decideEv(1, 0, "v", 10000, 1000),
		decideEv(2, 0, "v", 10100, 6500),
		decideEv(3, 0, "v", 10200, 12000), // 11d from node 1, chained via node 2
	)
	if vs := TimelinessAgreement(res, 0, false); !hasViolation(vs, "Timeliness-1b") {
		t.Errorf("chained anchor spread not flagged: %v", vs)
	}
	// An isolated anchor outlier (> 6d gap) reads as a separate agreement
	// session; its missing participants surface through Agreement instead
	// of a cross-session Timeliness-1b skew.
	outlier := fakeResult(threeCorrect,
		decideEv(1, 0, "v", 10000, 1000),
		decideEv(2, 0, "v", 10100, 9000),
		decideEv(3, 0, "v", 10200, 1500),
	)
	if vs := TimelinessAgreement(outlier, 0, false); len(vs) != 0 {
		t.Errorf("cross-session anchors flagged by Timeliness-1: %v", vs)
	}
	if vs := Agreement(outlier, 0); len(vs) == 0 {
		t.Error("outlier session's missing participants not flagged by Agreement")
	}
}

func TestMultiSessionAgreementsNotFused(t *testing.T) {
	// A (faulty) General may legally run several well-separated agreements
	// in one trace (the S2 campaign generates them): per-session checks
	// must not fuse two clean sessions into phantom Agreement /
	// Timeliness-1 / Termination violations.
	pp := protocol.DefaultParams(7)
	sessionGap := simtime.Real(40 * pp.D) // far beyond the 6d session span
	var evs []protocol.TraceEvent
	for s, val := range []protocol.Value{"a", "b"} {
		base := simtime.Real(5000) + simtime.Real(s)*sessionGap
		for _, n := range threeCorrect {
			evs = append(evs,
				protocol.TraceEvent{Kind: protocol.EvInvoke, Node: n, G: 0, RT: base},
				decideEv(n, 0, val, base+3000+simtime.Real(n)*100, base+1000+simtime.Real(n)*50),
			)
		}
	}
	res := fakeResult(threeCorrect, evs...)
	if vs := Agreement(res, 0); len(vs) != 0 {
		t.Errorf("two clean sessions fused by Agreement: %v", vs)
	}
	if vs := TimelinessAgreement(res, 0, false); len(vs) != 0 {
		t.Errorf("two clean sessions fused by Timeliness-1: %v", vs)
	}
	if vs := Termination(res, 0); len(vs) != 0 {
		t.Errorf("two clean sessions fused by Termination: %v", vs)
	}
	// A genuinely split second session (different values decided within
	// one anchor cluster) is still a violation.
	bad := fakeResult(threeCorrect,
		decideEv(1, 0, "a", 10000, 8000),
		decideEv(2, 0, "b", 10100, 8100),
		decideEv(3, 0, "a", 10200, 8050),
	)
	if vs := Agreement(bad, 0); !hasViolation(vs, "Agreement") {
		t.Errorf("intra-session split not flagged: %v", vs)
	}
}

func TestTimelinessAgreementAnchorAfterDecision(t *testing.T) {
	res := fakeResult(threeCorrect,
		decideEv(1, 0, "v", 10000, 11000), // rt(τG) > rt(τq)
		decideEv(2, 0, "v", 10100, 9600),
		decideEv(3, 0, "v", 10200, 9500),
	)
	if vs := TimelinessAgreement(res, 0, false); !hasViolation(vs, "Timeliness-1d") {
		t.Errorf("anchor-after-decision not flagged: %v", vs)
	}
}

func TestAnchorInInvocationWindow(t *testing.T) {
	inv := func(node protocol.NodeID, rt simtime.Real) protocol.TraceEvent {
		return protocol.TraceEvent{Kind: protocol.EvInvoke, Node: node, G: 0, RT: rt}
	}
	good := fakeResult(threeCorrect,
		inv(1, 5000), inv(2, 5200), inv(3, 5400),
		decideEv(1, 0, "v", 9000, 4000), // ≥ t1−2d = 3000
		decideEv(2, 0, "v", 9100, 5200),
		decideEv(3, 0, "v", 9200, 5400), // ≤ t2 = 5400
	)
	if vs := AnchorInInvocationWindow(good, 0); len(vs) != 0 {
		t.Errorf("good anchors flagged: %v", vs)
	}
	bad := fakeResult(threeCorrect,
		inv(1, 5000), inv(2, 5200), inv(3, 5400),
		decideEv(1, 0, "v", 9000, 2000), // < t1−2d
		decideEv(2, 0, "v", 9100, 6000), // > t2
		decideEv(3, 0, "v", 9200, 5000),
	)
	if vs := AnchorInInvocationWindow(bad, 0); len(vs) != 2 {
		t.Errorf("want 2 Timeliness-1c violations, got %v", vs)
	}
}

func TestTerminationWithinBound(t *testing.T) {
	pp := protocol.DefaultParams(7)
	inv := protocol.TraceEvent{Kind: protocol.EvInvoke, Node: 1, G: 0, RT: 1000}
	good := fakeResult(threeCorrect, inv, decideEv(1, 0, "v", 1000+simtime.Real(pp.DeltaAgr()), 900))
	if vs := Termination(good, 0); len(vs) != 0 {
		t.Errorf("in-bound return flagged: %v", vs)
	}
	late := fakeResult(threeCorrect, inv, decideEv(1, 0, "v", 1000+simtime.Real(pp.DeltaAgr())+8000, 900))
	if vs := Termination(late, 0); !hasViolation(vs, "Termination") {
		t.Errorf("late return not flagged: %v", vs)
	}
	hang := fakeResult(threeCorrect, inv)
	if vs := Termination(hang, 0); !hasViolation(vs, "Termination") {
		t.Errorf("hang not flagged: %v", vs)
	}
}

func TestTerminationAcceptsExpiry(t *testing.T) {
	pp := protocol.DefaultParams(7)
	inv := protocol.TraceEvent{Kind: protocol.EvInvoke, Node: 1, G: 0, RT: 1000}
	exp := protocol.TraceEvent{Kind: protocol.EvExpire, Node: 1, G: 0, RT: 1000 + simtime.Real(pp.DeltaAgr()) + 4000}
	res := fakeResult(threeCorrect, inv, exp)
	if vs := Termination(res, 0); len(vs) != 0 {
		t.Errorf("timely expiry flagged: %v", vs)
	}
	lateExp := protocol.TraceEvent{Kind: protocol.EvExpire, Node: 1, G: 0, RT: 1000 + 3*simtime.Real(pp.DeltaAgr())}
	res2 := fakeResult(threeCorrect, inv, lateExp)
	if vs := Termination(res2, 0); !hasViolation(vs, "Termination") {
		t.Errorf("late expiry not flagged: %v", vs)
	}
}

func iaccept(node protocol.NodeID, m protocol.Value, rt, rTauG simtime.Real) protocol.TraceEvent {
	return protocol.TraceEvent{Kind: protocol.EvIAccept, Node: node, G: 0, M: m, RT: rt, RTauG: rTauG, TauG: simtime.Local(rTauG)}
}

func TestIACorrectness(t *testing.T) {
	// t0 = 1000, d = 1000.
	good := fakeResult(threeCorrect,
		iaccept(1, "v", 3000, 800),
		iaccept(2, "v", 3500, 900),
		iaccept(3, "v", 4200, 1200),
	)
	if vs := IACorrectness(good, 0, 1000); len(vs) != 0 {
		t.Errorf("good run flagged: %v", vs)
	}
	lateAccept := fakeResult(threeCorrect,
		iaccept(1, "v", 9000, 800), // > t0+4d
		iaccept(2, "v", 3500, 900),
		iaccept(3, "v", 4200, 1200),
	)
	vs := IACorrectness(lateAccept, 0, 1000)
	if !hasViolation(vs, "IA-1A") || !hasViolation(vs, "IA-1B") {
		t.Errorf("late accept not flagged for 1A and 1B: %v", vs)
	}
	spreadAnchors := fakeResult(threeCorrect,
		iaccept(1, "v", 3000, 200),
		iaccept(2, "v", 3500, 1900), // 1.7d from node 1 > d
		iaccept(3, "v", 4200, 1000),
	)
	if vs := IACorrectness(spreadAnchors, 0, 1000); !hasViolation(vs, "IA-1C") {
		t.Errorf("anchor spread not flagged: %v", vs)
	}
	missing := fakeResult(threeCorrect, iaccept(1, "v", 3000, 800))
	if vs := IACorrectness(missing, 0, 1000); !hasViolation(vs, "IA-1A") {
		t.Errorf("missing I-accepters not flagged: %v", vs)
	}
}

func TestIARelay(t *testing.T) {
	good := fakeResult(threeCorrect,
		iaccept(1, "v", 10000, 9000),
		iaccept(2, "v", 11000, 9500),
		iaccept(3, "v", 11500, 8800),
	)
	if vs := IARelay(good, 0); len(vs) != 0 {
		t.Errorf("good relay flagged: %v", vs)
	}
	straggler := fakeResult(threeCorrect,
		iaccept(1, "v", 10000, 9000),
		iaccept(2, "v", 15000, 9500), // 5d after the trigger > 2d
		iaccept(3, "v", 11500, 8800),
	)
	if vs := IARelay(straggler, 0); !hasViolation(vs, "IA-3A") {
		t.Errorf("relay straggler not flagged: %v", vs)
	}
	missing := fakeResult(threeCorrect, iaccept(1, "v", 10000, 9000))
	if vs := IARelay(missing, 0); !hasViolation(vs, "IA-3A") {
		t.Errorf("missing relay not flagged: %v", vs)
	}
}

func TestIAUnforgeability(t *testing.T) {
	// No invocations, but an I-accept: forged.
	res := fakeResult(threeCorrect, iaccept(1, "v", 10000, 9000))
	if vs := IAUnforgeability(res, 0); !hasViolation(vs, "IA-2") {
		t.Errorf("forged I-accept not flagged: %v", vs)
	}
	withInvoke := fakeResult(threeCorrect,
		protocol.TraceEvent{Kind: protocol.EvInvoke, Node: 2, G: 0, RT: 9000},
		iaccept(1, "v", 10000, 9000),
	)
	if vs := IAUnforgeability(withInvoke, 0); len(vs) != 0 {
		t.Errorf("legitimate I-accept flagged: %v", vs)
	}
}

func TestIAUniqueness(t *testing.T) {
	pp := protocol.DefaultParams(7)
	// Different values with anchors ≤ 4d apart: violation.
	tight := fakeResult(threeCorrect,
		iaccept(1, "a", 10000, 9000),
		iaccept(2, "b", 10500, 11000), // 2d apart
	)
	if vs := IAUniqueness(tight, 0); !hasViolation(vs, "IA-4A") {
		t.Errorf("tight different-value anchors not flagged: %v", vs)
	}
	// Same value in the forbidden zone (6d, 2Δrmv−3d].
	forbidden := fakeResult(threeCorrect,
		iaccept(1, "a", 10000, 9000),
		iaccept(2, "a", 30000, 9000+8000), // 8d apart
	)
	if vs := IAUniqueness(forbidden, 0); !hasViolation(vs, "IA-4B") {
		t.Errorf("forbidden-zone same-value anchors not flagged: %v", vs)
	}
	// Same value far apart (> 2Δrmv−3d): a legitimate re-initiation.
	farGap := 2*simtime.Real(pp.DeltaRmv()) - 1000
	far := fakeResult(threeCorrect,
		iaccept(1, "a", 10000, 9000),
		iaccept(2, "a", 10000+farGap+5000, 9000+farGap),
	)
	if vs := IAUniqueness(far, 0); len(vs) != 0 {
		t.Errorf("legitimate re-initiation flagged: %v", vs)
	}
}

func TestSeparation(t *testing.T) {
	good := fakeResult(threeCorrect,
		decideEv(1, 0, "a", 10000, 9000),
		decideEv(2, 0, "b", 16000, 15000), // 6d apart > 4d
	)
	if vs := Separation(good, 0); len(vs) != 0 {
		t.Errorf("well-separated decisions flagged: %v", vs)
	}
	bad := fakeResult(threeCorrect,
		decideEv(1, 0, "a", 10000, 9000),
		decideEv(2, 0, "b", 11000, 10000), // 1d apart ≤ 4d
	)
	if vs := Separation(bad, 0); !hasViolation(vs, "Timeliness-4a") {
		t.Errorf("close different-value decisions not flagged: %v", vs)
	}
}

func TestAllConcatenates(t *testing.T) {
	res := fakeResult(threeCorrect,
		decideEv(1, 0, "v", 10000, 9000),
		decideEv(2, 0, "w", 10100, 9100), // split and 4A at once
		decideEv(3, 0, "v", 10200, 9050),
	)
	vs := All(res, 0)
	if !hasViolation(vs, "Agreement") || !hasViolation(vs, "Timeliness-4a") {
		t.Errorf("All missed expected violations: %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Property: "P", Detail: "d"}
	if v.String() != "P: d" {
		t.Errorf("String = %q", v.String())
	}
}
