package check

import (
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
)

// benchRun produces one fault-free n=31 run to check (seeded, so every
// benchmark iteration sees the same trace).
func benchRun(b *testing.B) (*sim.Result, simtime.Real) {
	b.Helper()
	pp := protocol.DefaultParams(31)
	t0 := simtime.Real(2 * pp.D)
	res, err := sim.Run(sim.Scenario{
		Params:      pp,
		Seed:        11,
		Initiations: []sim.Initiation{{At: t0, G: 0, Value: "v"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	return res, t0
}

// BenchmarkCheckBattery measures the full property battery on a fresh
// result each iteration — extraction runs once per kind over the
// recorder's index and is memoized, so the whole battery is one pass over
// the trace rather than one scan per property.
func BenchmarkCheckBattery(b *testing.B) {
	res, t0 := benchRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Shallow re-wrap: same world and trace, cold extract caches.
		fresh := &sim.Result{Scenario: res.Scenario, World: res.World,
			Rec: res.Rec, Correct: res.Correct}
		vs := All(fresh, 0)
		vs = append(vs, Validity(fresh, 0, t0, "v")...)
		vs = append(vs, IACorrectness(fresh, 0, t0)...)
		if len(vs) != 0 {
			b.Fatalf("violations in benchmark run: %v", vs)
		}
	}
}

// BenchmarkTraceExtract pits the recorder's kind-indexed read path
// against the Filter-based full-trace scan it replaced, over the ~10
// extractions one property battery performs.
func BenchmarkTraceExtract(b *testing.B) {
	res, _ := benchRun(b)
	kinds := []protocol.EventKind{
		protocol.EvDecide, protocol.EvAbort, protocol.EvIAccept,
		protocol.EvInvoke, protocol.EvInitiate, protocol.EvExpire,
	}
	b.Run("kind-indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			total := 0
			for _, k := range kinds {
				res.Rec.ForEachKind(func(protocol.TraceEvent) { total++ }, k)
			}
			if total == 0 {
				b.Fatal("no events extracted")
			}
		}
	})
	b.Run("filter-based", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			total := 0
			for _, k := range kinds {
				k := k
				total += len(res.Rec.Filter(func(ev protocol.TraceEvent) bool { return ev.Kind == k }))
			}
			if total == 0 {
				b.Fatal("no events extracted")
			}
		}
	})
}
