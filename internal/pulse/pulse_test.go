package pulse

import (
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// pulseWorld assembles n pulse nodes (faulty IDs left silent) and runs for
// the given span.
func pulseWorld(t *testing.T, n int, faulty map[protocol.NodeID]bool, seed int64, runFor simtime.Duration) *simnet.World {
	t.Helper()
	pp := protocol.DefaultParams(n)
	w, err := simnet.New(simnet.Config{Params: pp, Seed: seed, DelayMin: pp.D / 2, DelayMax: pp.D})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	for i := 0; i < n; i++ {
		if faulty[protocol.NodeID(i)] {
			continue // nil node: crash-faulty
		}
		w.SetNode(protocol.NodeID(i), NewNode(Config{}))
	}
	w.Start()
	w.RunUntil(simtime.Real(runFor))
	return w
}

// pulsesByCycle groups EvPulse events of correct nodes by cycle index.
func pulsesByCycle(w *simnet.World, faulty map[protocol.NodeID]bool) map[int][]protocol.TraceEvent {
	out := make(map[int][]protocol.TraceEvent)
	for _, ev := range w.Recorder().ByKind(protocol.EvPulse) {
		if faulty[ev.Node] {
			continue
		}
		out[ev.K] = append(out[ev.K], ev)
	}
	return out
}

func TestPulsesFireAndStaySynchronized(t *testing.T) {
	pp := protocol.DefaultParams(7)
	w := pulseWorld(t, 7, nil, 11, 6*MinCycle(pp)+4*pp.DeltaAgr())
	byCycle := pulsesByCycle(w, nil)
	if len(byCycle) < 3 {
		t.Fatalf("only %d cycles pulsed, want ≥ 3", len(byCycle))
	}
	for k, evs := range byCycle {
		if len(evs) != 7 {
			t.Errorf("cycle %d: %d nodes pulsed, want 7", k, len(evs))
			continue
		}
		lo, hi := evs[0].RT, evs[0].RT
		for _, ev := range evs {
			if ev.RT < lo {
				lo = ev.RT
			}
			if ev.RT > hi {
				hi = ev.RT
			}
		}
		// Decision skew bound: ≤ 3d (Timeliness-1a).
		if skew := hi - lo; skew > 3*simtime.Real(pp.D) {
			t.Errorf("cycle %d: pulse skew %d > 3d=%d", k, skew, 3*pp.D)
		}
	}
}

func TestCyclesAdvanceMonotonically(t *testing.T) {
	pp := protocol.DefaultParams(4)
	w := pulseWorld(t, 4, nil, 3, 5*MinCycle(pp)+4*pp.DeltaAgr())
	perNode := make(map[protocol.NodeID][]int)
	for _, ev := range w.Recorder().ByKind(protocol.EvPulse) {
		perNode[ev.Node] = append(perNode[ev.Node], ev.K)
	}
	for id, ks := range perNode {
		for i := 1; i < len(ks); i++ {
			if ks[i] <= ks[i-1] {
				t.Errorf("node %d: cycle sequence %v not strictly increasing", id, ks)
				break
			}
		}
	}
}

// TestFallbackSkipsFaultyGeneral puts the cycle-0 General down; the
// rotation must still produce pulses on every correct node.
func TestFallbackSkipsFaultyGeneral(t *testing.T) {
	pp := protocol.DefaultParams(7)
	faulty := map[protocol.NodeID]bool{0: true, 1: true}
	w := pulseWorld(t, 7, faulty, 5, 4*MinCycle(pp)+10*pp.DeltaAgr())
	byCycle := pulsesByCycle(w, faulty)
	if len(byCycle) == 0 {
		t.Fatal("no pulses fired with faulty Generals in rotation")
	}
	for k, evs := range byCycle {
		if len(evs) != 5 {
			t.Errorf("cycle %d: %d correct nodes pulsed, want 5", k, len(evs))
		}
	}
}

func TestCycleValueRoundTrip(t *testing.T) {
	cases := []int{0, 1, 7, 123456}
	for _, k := range cases {
		got, ok := ParseCycleValue(CycleValue(k))
		if !ok || got != k {
			t.Errorf("ParseCycleValue(CycleValue(%d)) = (%d,%v)", k, got, ok)
		}
	}
	for _, v := range []protocol.Value{"", "x", "pulse-", "pulse-x", "Pulse-3"} {
		if _, ok := ParseCycleValue(v); ok {
			t.Errorf("ParseCycleValue(%q) accepted a foreign value", v)
		}
	}
}

func TestMinCycleEnforced(t *testing.T) {
	pp := protocol.DefaultParams(4)
	w, err := simnet.New(simnet.Config{Params: pp, Seed: 1})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	n := NewNode(Config{Cycle: 1}) // absurdly short
	w.SetNode(0, n)
	for i := 1; i < 4; i++ {
		w.SetNode(protocol.NodeID(i), NewNode(Config{}))
	}
	w.Start()
	if n.cfg.Cycle < MinCycle(pp) {
		t.Errorf("Cycle %d below MinCycle %d after Start", n.cfg.Cycle, MinCycle(pp))
	}
}
