package pulse

import (
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// TestPulsesUnderDriftAndOffsets: pulses must stay synchronized in real
// time even when every node's local clock has a different rate and an
// arbitrary offset — the whole point of re-anchoring each cycle on an
// agreement instead of counting local time.
func TestPulsesUnderDriftAndOffsets(t *testing.T) {
	pp := protocol.DefaultParams(7)
	clocks := make([]simtime.Clock, 7)
	for i := range clocks {
		ppm := int64(i-3) * 150 // −450..+450 ppm
		clocks[i] = simtime.DriftClock(simtime.Local(i)*7_777_777, ppm, 0)
	}
	w, err := simnet.New(simnet.Config{
		Params: pp, Seed: 77, Clocks: clocks, DelayMin: pp.D / 2, DelayMax: pp.D,
	})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	for i := 0; i < 7; i++ {
		w.SetNode(protocol.NodeID(i), NewNode(Config{}))
	}
	w.Start()
	w.RunUntil(simtime.Real(6 * (MinCycle(pp) + pp.DeltaAgr())))

	byCycle := make(map[int][]simtime.Real)
	for _, ev := range w.Recorder().ByKind(protocol.EvPulse) {
		byCycle[ev.K] = append(byCycle[ev.K], ev.RT)
	}
	if len(byCycle) < 3 {
		t.Fatalf("only %d cycles pulsed under drift", len(byCycle))
	}
	for k, rts := range byCycle {
		if len(rts) != 7 {
			t.Errorf("cycle %d: %d pulses, want 7", k, len(rts))
			continue
		}
		lo, hi := rts[0], rts[0]
		for _, rt := range rts {
			if rt < lo {
				lo = rt
			}
			if rt > hi {
				hi = rt
			}
		}
		if hi-lo > 3*simtime.Real(pp.D) {
			t.Errorf("cycle %d: real-time pulse skew %d > 3d under drift", k, hi-lo)
		}
	}
}

// TestPulseCallbackObserved wires the OnPulse hook.
func TestPulseCallbackObserved(t *testing.T) {
	pp := protocol.DefaultParams(4)
	w, err := simnet.New(simnet.Config{Params: pp, Seed: 5})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	fired := make(map[int]int)
	for i := 0; i < 4; i++ {
		w.SetNode(protocol.NodeID(i), NewNode(Config{
			OnPulse: func(k int, at simtime.Local) { fired[k]++ },
		}))
	}
	w.Start()
	w.RunUntil(simtime.Real(3 * (MinCycle(pp) + pp.DeltaAgr())))
	if len(fired) == 0 {
		t.Fatal("OnPulse never called")
	}
	for k, n := range fired {
		if n != 4 {
			t.Errorf("cycle %d: OnPulse called %d times, want 4", k, n)
		}
	}
}

// TestHostAgreementsCoexistWithPulses: the pulse layer must not interfere
// with application agreements run alongside (foreign values pass through).
func TestHostAgreementsCoexistWithPulses(t *testing.T) {
	pp := protocol.DefaultParams(7)
	w, err := simnet.New(simnet.Config{Params: pp, Seed: 6, DelayMin: pp.D / 2, DelayMax: pp.D})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	nodes := make([]*Node, 7)
	for i := 0; i < 7; i++ {
		nodes[i] = NewNode(Config{})
		w.SetNode(protocol.NodeID(i), nodes[i])
	}
	w.Start()
	// Node 3 runs an application agreement mid-pulse-stream. Spaced far
	// enough from its own pulse-General duties by the slot rotation.
	w.Scheduler().At(simtime.Real(MinCycle(pp)/2), func() {
		if err := nodes[3].InitiateAgreement("app-value"); err != nil {
			t.Errorf("host initiation: %v", err)
		}
	})
	w.RunUntil(simtime.Real(4 * (MinCycle(pp) + pp.DeltaAgr())))
	// Node 3 later serves as the General of pulse cycle 3, so Result(3)
	// reflects that newer agreement; the app agreement is verified from
	// the trace.
	appDeciders := make(map[protocol.NodeID]bool)
	for _, ev := range w.Recorder().ByKind(protocol.EvDecide) {
		if ev.M == "app-value" && ev.G == 3 {
			appDeciders[ev.Node] = true
		}
	}
	if len(appDeciders) != 7 {
		t.Errorf("host agreement decided by %d/7 nodes", len(appDeciders))
	}
	if len(w.Recorder().ByKind(protocol.EvPulse)) == 0 {
		t.Error("pulses stopped while a host agreement ran")
	}
}
