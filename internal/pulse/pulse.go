// Package pulse builds self-stabilizing Byzantine pulse synchronization on
// top of ss-Byz-Agree — the companion direction the paper points to:
//
//	"we show in [6] that synchronized pulses can actually be produced
//	more efficiently atop the protocol in the current paper."
//
// Correct nodes fire recurring pulses; once the system is stable, all
// correct nodes fire pulse k within the agreement's decision skew (3d, or
// 2d when the cycle's General is correct) of each other, which in turn can
// serve as the synchronized-round substrate for any classic Byzantine
// algorithm (per the authors' earlier result [5]).
//
// Mechanism. Cycles are numbered; the General of cycle k is node k mod n.
// The cycle-k General initiates ss-Byz-Agree on the value "pulse-k"; every
// correct node fires pulse k at its decision and schedules cycle k+1 one
// Cycle later. If no pulse arrives in time (faulty General, or arbitrary
// post-transient state), a fallback rotation lets the next nodes initiate
// the same cycle with staggered timeouts, so at most f+1 rotations — each
// bounded by Δagr — separate any correct node from the next synchronizing
// decision. Cycle indices carried inside the agreed values keep the
// correct nodes' counters consistent without any shared state beyond the
// agreements themselves.
package pulse

import (
	"fmt"
	"strconv"
	"strings"

	"ssbyz/internal/core"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// Timer tag names of the pulse layer.
const (
	// tagInit fires when this node should initiate its cycle's agreement.
	tagInit = "pulse-init"
	// tagFallback fires when the expected pulse is overdue.
	tagFallback = "pulse-fallback"
)

// valuePrefix prefixes the agreement values of the pulse layer.
const valuePrefix = "pulse-"

// PulseFn observes a fired pulse (cycle index, local time).
type PulseFn func(k int, at simtime.Local)

// Config parameterizes the pulse layer.
type Config struct {
	// Cycle is the local-time spacing between consecutive pulses. It must
	// be at least MinCycle(params) so that the sending-validity criteria
	// (IG1) are respected by construction.
	Cycle simtime.Duration
	// OnPulse optionally observes fired pulses (in addition to the trace).
	OnPulse PulseFn
}

// MinCycle returns the smallest legal cycle length: the General of
// consecutive cycles differs, but a node may serve adjacent cycles when
// n < f+2 rotations wrap; Δ0 spacing plus one agreement span keeps every
// initiation legal and the fallback rotation meaningful.
func MinCycle(pp protocol.Params) simtime.Duration {
	return pp.Delta0() + pp.DeltaAgr()
}

// Node runs ss-Byz-Agree plus the pulse layer. It implements
// protocol.Node, wrapping an inner core.Node whose decisions it observes.
type Node struct {
	rt    protocol.Runtime
	pp    protocol.Params
	cfg   Config
	agree *core.Node

	// cycle is the next cycle index this node expects to fire.
	cycle int
	// retries counts fallback rotations within the current cycle.
	retries int
	// fallbackTimer is the pending overdue-check.
	fallbackTimer protocol.TimerID
	hasFallback   bool
	// lastPulseAt is the local time of the last fired pulse.
	lastPulseAt  simtime.Local
	hasPulsed    bool
	pulsedCycles map[int]bool
}

var _ protocol.Node = (*Node)(nil)

// NewNode returns an unattached pulse node.
func NewNode(cfg Config) *Node {
	return &Node{
		cfg:          cfg,
		agree:        core.NewNode(),
		pulsedCycles: make(map[int]bool),
	}
}

// Agree exposes the inner agreement node (tests, injectors).
func (n *Node) Agree() *core.Node { return n.agree }

// InitiateAgreement starts a host-application agreement with this node as
// General, alongside the pulse cycles (sim.Initiator).
func (n *Node) InitiateAgreement(v protocol.Value) error {
	return n.agree.InitiateAgreement(v)
}

// Cycle returns the next expected cycle index.
func (n *Node) Cycle() int { return n.cycle }

// Start attaches the runtime, interposing a trace hook so the pulse layer
// observes the inner node's decisions.
func (n *Node) Start(rt protocol.Runtime) {
	n.rt = rt
	n.pp = rt.Params()
	if n.cfg.Cycle < MinCycle(n.pp) {
		n.cfg.Cycle = MinCycle(n.pp)
	}
	n.agree.Start(&hookRT{Runtime: rt, onDecide: n.onDecide})

	// Arbitrary initial state: we do not know the current cycle. Act as a
	// fresh cycle-0 participant; the first decision re-aligns everyone.
	n.scheduleInit(n.cycle, 0)
	n.armFallback(n.cfg.Cycle)
}

// scheduleInit arms the General-side initiation for cycle k after dl, if
// this node is the General of cycle k at the current retry rotation.
func (n *Node) scheduleInit(k int, dl simtime.Duration) {
	if n.generalOf(k, n.retries) != n.rt.ID() {
		return
	}
	n.rt.After(dl, protocol.TimerTag{Name: tagInit, K: k})
}

// generalOf returns the General of cycle k at rotation retry.
func (n *Node) generalOf(k, retry int) protocol.NodeID {
	idx := (k + retry) % n.pp.N
	if idx < 0 {
		idx += n.pp.N
	}
	return protocol.NodeID(idx)
}

// armFallback replaces the overdue-check to fire after dl.
func (n *Node) armFallback(dl simtime.Duration) {
	if n.hasFallback {
		n.rt.Cancel(n.fallbackTimer)
	}
	n.fallbackTimer = n.rt.After(dl, protocol.TimerTag{Name: tagFallback, K: n.cycle})
	n.hasFallback = true
}

// OnMessage forwards everything to the inner agreement node.
func (n *Node) OnMessage(from protocol.NodeID, m protocol.Message) {
	n.agree.OnMessage(from, m)
}

// OnTimer handles pulse-layer tags and forwards the rest.
func (n *Node) OnTimer(tag protocol.TimerTag) {
	switch tag.Name {
	case tagInit:
		n.initiate(tag.K)
	case tagFallback:
		n.onOverdue(tag.K)
	default:
		n.agree.OnTimer(tag)
	}
}

// initiate runs the General side of cycle k.
func (n *Node) initiate(k int) {
	if k < n.cycle || n.pulsedCycles[k] {
		return // the cycle already completed while the timer was pending
	}
	// Initiation can fail IG1–IG3 right after a transient period; the
	// fallback rotation covers it, so the error is deliberately dropped
	// after noting it in the trace (no decision will follow from us).
	_ = n.agree.InitiateAgreement(CycleValue(k))
}

// onOverdue handles a missing pulse: rotate the General and extend the
// deadline by one agreement span.
func (n *Node) onOverdue(k int) {
	if k < n.cycle || n.pulsedCycles[k] {
		return
	}
	n.retries++
	if n.retries > n.pp.N {
		n.retries = 0 // full rotation exhausted; restart calmly
	}
	n.scheduleInit(k, 0)
	n.armFallback(n.pp.DeltaAgr() + 8*n.pp.D)
}

// onDecide observes a decision of the inner node. Decisions with pulse
// values drive the cycle structure; everything else is ignored (the host
// application may run its own agreements alongside).
func (n *Node) onDecide(ev protocol.TraceEvent) {
	k, ok := ParseCycleValue(ev.M)
	if !ok {
		return
	}
	if n.pulsedCycles[k] {
		return
	}
	n.firePulse(k)
}

// firePulse fires pulse k and schedules cycle k+1.
func (n *Node) firePulse(k int) {
	now := n.rt.Now()
	n.pulsedCycles[k] = true
	n.hasPulsed = true
	n.lastPulseAt = now
	n.cycle = k + 1
	n.retries = 0
	n.rt.Trace(protocol.TraceEvent{Kind: protocol.EvPulse, K: k})
	if n.cfg.OnPulse != nil {
		n.cfg.OnPulse(k, now)
	}
	// Trim the pulsed-cycle memory (self-stabilization: bounded state).
	for old := range n.pulsedCycles {
		if old < k-2*n.pp.N {
			delete(n.pulsedCycles, old)
		}
	}
	n.scheduleInit(k+1, n.cfg.Cycle)
	n.armFallback(n.cfg.Cycle + n.pp.DeltaAgr() + 8*n.pp.D)
}

// CycleValue encodes the agreement value of cycle k.
func CycleValue(k int) protocol.Value {
	return protocol.Value(valuePrefix + strconv.Itoa(k))
}

// ParseCycleValue decodes a pulse value; ok is false for foreign values.
func ParseCycleValue(v protocol.Value) (k int, ok bool) {
	s := string(v)
	if !strings.HasPrefix(s, valuePrefix) {
		return 0, false
	}
	k, err := strconv.Atoi(s[len(valuePrefix):])
	if err != nil {
		return 0, false
	}
	return k, true
}

// hookRT interposes on Trace to observe decide events; everything else
// passes through to the real runtime.
type hookRT struct {
	protocol.Runtime
	onDecide func(protocol.TraceEvent)
}

func (h *hookRT) Trace(ev protocol.TraceEvent) {
	h.Runtime.Trace(ev)
	if ev.Kind == protocol.EvDecide {
		h.onDecide(ev)
	}
}

// String identifies the node for debugging.
func (n *Node) String() string {
	if n.rt == nil {
		return "pulse.Node(unattached)"
	}
	return fmt.Sprintf("pulse.Node(%d cycle=%d)", n.rt.ID(), n.cycle)
}
