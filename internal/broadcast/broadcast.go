// Package broadcast implements the msgd-broadcast primitive (Fig. 3): a
// message-driven replacement for the time-driven reliable broadcast of
// Toueg, Perry and Srikanth [TPS-87]. Rounds are anchored at the local
// estimate τG of the General's initiation (produced by Initiator-Accept)
// and progress with the arrival of the anticipated messages; the phase
// bounds τG + c·Φ only cap how late a step may still be taken, so the
// primitive "can progress at the speed of message delivery".
//
// Once the system is stable and n > 3f it satisfies (Theorem 2):
//
//	TPS-1 Correctness — a timely correct broadcast is accepted by every
//	      correct node within one phase and within 3d real time.
//	TPS-2 Unforgeability — no acceptance without a correct broadcast.
//	TPS-3 Relay — one correct acceptance at phase r pulls all correct
//	      nodes along by phase r+2.
//	TPS-4 Detection of broadcasters — acceptance implies every correct
//	      node records p ∈ broadcasters by phase 2k+2.
package broadcast

import (
	"ssbyz/internal/msglog"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// triple identifies one broadcast (p, m, k) within a session.
type triple struct {
	P protocol.NodeID
	M protocol.Value
	K int
}

// AcceptFn is called when the node accepts (p, m, k).
type AcceptFn func(p protocol.NodeID, m protocol.Value, k int)

// tripleState consolidates every per-triple flag into a single map entry,
// so the fixed-point evaluator touches one hash per triple per pass
// instead of one per flag (the message-processing hot path, DESIGN.md §5).
type tripleState struct {
	sentEcho      bool
	sentInitPrime bool
	sentEchoPrime bool
	// accepted dedupes acceptances per triple ("accept only once"). It
	// deliberately survives Reset: straggler echo′ residue of a completed
	// agreement arrives within d of the reset, gets logged into the fresh
	// session, and would otherwise re-accept — and re-decide — the old
	// value when the next agreement anchors. The flag decays by age in
	// Cleanup instead, which bounds the memory exactly like the paper's
	// "erase any value or message older than (2f+3)·Φ" rule. Legitimate
	// same-value re-broadcasts are spaced by Δv > (2f+3)·Φ (criterion
	// IG2), so they are never suppressed.
	accepted   bool
	acceptedAt simtime.Local
	// inAct marks membership of the active iteration list (s.act).
	inAct bool
	// Cached key resolutions for the triple's four message classes, so
	// the per-message evaluation does not re-hash the full msglog.Key.
	hInit, hEcho, hInitPrime, hEchoPrime msglog.Handle
}

// Session is one node's msgd-broadcast state for the agreement instance of
// a single General G. Messages are logged before the anchor τG is known
// and replayed once it is ("nodes log messages until they are able to
// process them").
type Session struct {
	rt protocol.Runtime
	g  protocol.NodeID
	pp protocol.Params

	log *msglog.Log

	anchored bool
	tauG     simtime.Local

	states map[triple]*tripleState
	// act lists the triples the evaluator iterates, in first-seen order
	// (deterministic). It is appended to as messages arrive and rebuilt
	// from the log on Cleanup/Reset, so settled or decayed triples stop
	// costing evaluator passes.
	act []triple
	// byP caches the latest triple resolution per broadcasting node p.
	// During one agreement almost every message for p carries the same
	// (m, k), so the per-arrival states-map hash collapses to an indexed
	// compare. Entries are dropped wholesale on Cleanup/Reset (the only
	// points that delete tripleStates).
	byP []cachedTriple

	// broadcasters is a bitmap over node IDs with nBroadcasters its
	// popcount: Block Y3 membership is tested on every post-settlement
	// arrival, so it must not cost a map probe.
	broadcasters []uint64
	nBroadcaster int

	onAccept AcceptFn
}

// cachedTriple is one byP entry: the last (m, k) resolved for p.
type cachedTriple struct {
	m  protocol.Value
	k  int
	st *tripleState
}

// NewSession creates the session for General g at the node owning rt.
func NewSession(rt protocol.Runtime, g protocol.NodeID, onAccept AcceptFn) *Session {
	pp := rt.Params()
	return &Session{
		rt:           rt,
		g:            g,
		pp:           pp,
		log:          msglog.New(pp.Wrap),
		states:       make(map[triple]*tripleState),
		byP:          make([]cachedTriple, pp.N),
		broadcasters: make([]uint64, (pp.N+63)/64),
		onAccept:     onAccept,
	}
}

// isBroadcaster tests p's bit. IDs outside [0, 64·len) (possible only in
// hostile messages) are never set.
func (s *Session) isBroadcaster(p protocol.NodeID) bool {
	w := uint(p) >> 6
	return p >= 0 && int(w) < len(s.broadcasters) && s.broadcasters[w]&(1<<(uint(p)&63)) != 0
}

// setBroadcaster adds p to the broadcasters set (Block Y3), growing the
// bitmap for hostile out-of-range IDs so they still count once each.
func (s *Session) setBroadcaster(p protocol.NodeID) {
	if p < 0 || s.isBroadcaster(p) {
		return
	}
	w := uint(p) >> 6
	for int(w) >= len(s.broadcasters) {
		s.broadcasters = append(s.broadcasters, 0)
	}
	s.broadcasters[w] |= 1 << (uint(p) & 63)
	s.nBroadcaster++
}

// SetAnchor installs τG and replays any logged messages against the now-
// defined round structure. "No correct node will execute the
// msgd-broadcast primitive without first producing the reference
// (anchor) τG."
func (s *Session) SetAnchor(tauG simtime.Local) {
	s.anchored = true
	s.tauG = tauG
	s.evaluate(s.rt.Now())
}

// Anchored reports whether τG is defined.
func (s *Session) Anchored() bool { return s.anchored }

// Broadcast invokes the primitive for this node's own message (Block V):
// node p sends (init, p, m, k) to all nodes.
func (s *Session) Broadcast(m protocol.Value, k int) {
	s.rt.Broadcast(protocol.Message{
		Kind: protocol.Init, G: s.g, M: m, P: s.rt.ID(), K: k,
	})
}

// Broadcasters returns how many distinct nodes are in the broadcasters
// set (Block Y3), as needed by the agreement layer's Block T.
func (s *Session) Broadcasters() int { return s.nBroadcaster }

// IsBroadcaster reports membership of p in broadcasters.
func (s *Session) IsBroadcaster(p protocol.NodeID) bool { return s.isBroadcaster(p) }

// note returns (creating and activating if needed) the state of tr.
func (s *Session) note(tr triple) *tripleState {
	var cache *cachedTriple
	if tr.P >= 0 && int(tr.P) < len(s.byP) {
		cache = &s.byP[tr.P]
		if cache.st != nil && cache.m == tr.M && cache.k == tr.K {
			st := cache.st
			if !st.inAct {
				st.inAct = true
				s.act = append(s.act, tr)
			}
			return st
		}
	}
	st, ok := s.states[tr]
	if !ok {
		key := func(kind protocol.MsgKind) msglog.Key {
			return msglog.Key{Kind: kind, G: s.g, M: tr.M, P: tr.P, K: tr.K}
		}
		// The echo-class keys collect up to n distinct senders each;
		// presizing them skips the append-growth copies (init keys hold
		// only p's own record).
		st = &tripleState{
			hInit:      s.log.NewHandle(key(protocol.Init)),
			hEcho:      s.log.NewHandleSized(key(protocol.Echo), s.pp.N),
			hInitPrime: s.log.NewHandleSized(key(protocol.InitPrime), s.pp.N),
			hEchoPrime: s.log.NewHandleSized(key(protocol.EchoPrime), s.pp.N),
		}
		s.states[tr] = st
	}
	if cache != nil {
		*cache = cachedTriple{m: tr.M, k: tr.K, st: st}
	}
	if !st.inAct {
		st.inAct = true
		s.act = append(s.act, tr)
	}
	return st
}

// dropTripleCache forgets every byP resolution; called whenever states-map
// entries may have been deleted.
func (s *Session) dropTripleCache() {
	for i := range s.byP {
		s.byP[i] = cachedTriple{}
	}
}

// handleFor picks the cached handle matching a message kind.
func (st *tripleState) handleFor(kind protocol.MsgKind) *msglog.Handle {
	switch kind {
	case protocol.Init:
		return &st.hInit
	case protocol.Echo:
		return &st.hEcho
	case protocol.InitPrime:
		return &st.hInitPrime
	default:
		return &st.hEchoPrime
	}
}

// OnMessage records an incoming broadcast-layer message and re-evaluates.
func (s *Session) OnMessage(from protocol.NodeID, m protocol.Message) {
	if m.G != s.g {
		return
	}
	now := s.rt.Now()
	switch m.Kind {
	case protocol.Init:
		// W2 requires the init to come from p itself; the transport
		// authenticates From, so a faulty node cannot plant an init for
		// another p.
		if from != m.P {
			return
		}
	case protocol.Echo, protocol.InitPrime, protocol.EchoPrime:
	default:
		return
	}
	tr := triple{P: m.P, M: m.M, K: m.K}
	st := s.note(tr)
	s.log.RecordVia(st.handleFor(m.Kind), from, now)
	// Only tr's own conditions can newly hold: counts are keyed by the
	// exact (p, m, k) and the phase windows only ever close with time, so
	// re-evaluation is scoped to the affected triple (DESIGN.md §5).
	if s.anchored {
		s.evalTriple(tr, st, now)
	}
}

// maxAge is the cleanup bound: messages older than (2f+3)·Φ are removed
// and never satisfy a condition.
func (s *Session) maxAge() simtime.Duration {
	return simtime.Duration(2*s.pp.F+3) * s.pp.Phi()
}

// withinPhase reports whether the node's current τ is at most
// τG + phases·Φ, the late bound for the corresponding block.
func (s *Session) withinPhase(now simtime.Local, phases int) bool {
	return s.pp.Sub(now, s.tauG) <= simtime.Duration(phases)*s.pp.Phi()
}

// evaluate runs blocks W–Z to a fixed point across every active triple
// (the anchor-install replay path). Triples are independent — no block's
// condition reads another triple's counts or flags — so the fixed point
// factors into one per triple.
func (s *Session) evaluate(now simtime.Local) {
	if !s.anchored {
		return
	}
	for _, tr := range s.act {
		s.evalTriple(tr, s.states[tr], now)
	}
}

// evalTriple runs blocks W–Z for one triple to a fixed point.
func (s *Session) evalTriple(tr triple, st *tripleState, now simtime.Local) {
	for iter := 0; iter < 6; iter++ {
		if !s.tryTriple(tr, st, now) {
			return
		}
	}
}

// tryTriple evaluates all blocks for one (p, m, k).
//
// Each block's window query now sits behind an O(1) incremental-count
// guard (msglog.LenVia, the live record count of the key): a threshold of
// c distinct senders cannot hold while fewer than c records exist at all,
// so below-threshold arrivals — the bulk of a broadcast wave — conclude in
// constant time, and the binary searches run only in the narrow band where
// a block could actually fire (DESIGN.md §5).
func (s *Session) tryTriple(tr triple, st *tripleState, now simtime.Local) bool {
	if st.sentEcho && st.sentInitPrime && st.sentEchoPrime && st.accepted && s.isBroadcaster(tr.P) {
		// Settled: every send fired, the acceptance fired, and p is a
		// known broadcaster — no block can conclude anything new, so a
		// post-threshold arrival is an O(1) drop.
		return false
	}
	changed := false
	byzQ, q := s.pp.ByzQuorum(), s.pp.Quorum()

	// Block W — echo the direct init, by τG + 2k·Φ.
	if !st.sentEcho && s.withinPhase(now, 2*tr.K) && s.log.HasVia(&st.hInit, tr.P) {
		st.sentEcho = true
		s.rt.Broadcast(protocol.Message{Kind: protocol.Echo, G: s.g, M: tr.M, P: tr.P, K: tr.K})
		changed = true
	}

	// Block X — by τG + (2k+1)·Φ.
	if (!st.sentInitPrime || !st.accepted) && s.log.LenVia(&st.hEcho) >= byzQ &&
		s.withinPhase(now, 2*tr.K+1) {
		nEcho := s.log.CountWithinVia(&st.hEcho, s.maxAge(), now)
		if !st.sentInitPrime && nEcho >= byzQ {
			st.sentInitPrime = true
			s.rt.Broadcast(protocol.Message{Kind: protocol.InitPrime, G: s.g, M: tr.M, P: tr.P, K: tr.K})
			changed = true
		}
		if nEcho >= q && s.accept(tr, st) {
			changed = true
		}
	}

	// Block Y — by τG + (2k+2)·Φ.
	if (!st.sentEchoPrime || !s.isBroadcaster(tr.P)) && s.log.LenVia(&st.hInitPrime) >= byzQ &&
		s.withinPhase(now, 2*tr.K+2) {
		nInitPrime := s.log.CountWithinVia(&st.hInitPrime, s.maxAge(), now)
		if nInitPrime >= byzQ && !s.isBroadcaster(tr.P) {
			s.setBroadcaster(tr.P)
			changed = true
		}
		if !st.sentEchoPrime && nInitPrime >= q {
			st.sentEchoPrime = true
			s.rt.Broadcast(protocol.Message{Kind: protocol.EchoPrime, G: s.g, M: tr.M, P: tr.P, K: tr.K})
			changed = true
		}
	}

	// Block Z — at any time.
	if (!st.sentEchoPrime || !st.accepted) && s.log.LenVia(&st.hEchoPrime) >= byzQ {
		nEchoPrime := s.log.CountWithinVia(&st.hEchoPrime, s.maxAge(), now)
		if !st.sentEchoPrime && nEchoPrime >= byzQ {
			st.sentEchoPrime = true
			s.rt.Broadcast(protocol.Message{Kind: protocol.EchoPrime, G: s.g, M: tr.M, P: tr.P, K: tr.K})
			changed = true
		}
		if nEchoPrime >= q && s.accept(tr, st) {
			changed = true
		}
	}
	return changed
}

// accept fires the acceptance of tr exactly once.
func (s *Session) accept(tr triple, st *tripleState) bool {
	if st.accepted {
		return false
	}
	st.accepted = true
	st.acceptedAt = s.rt.Now()
	s.rt.Trace(protocol.TraceEvent{
		Kind: protocol.EvAccept, G: s.g, M: tr.M, K: tr.K, P: tr.P,
	})
	if s.onAccept != nil {
		s.onAccept(tr.P, tr.M, tr.K)
	}
	return true
}

// rebuildAct recomputes the active-triple list from the records that
// survive in the log, keeping first-seen order for the survivors.
func (s *Session) rebuildAct() {
	for _, st := range s.states {
		st.inAct = false
	}
	live := s.act[:0]
	s.log.ForEachKey(func(k msglog.Key) {
		tr := triple{P: k.P, M: k.M, K: k.K}
		if st := s.states[tr]; st != nil && !st.inAct {
			st.inAct = true
			live = append(live, tr)
		}
	})
	s.act = live
}

// Cleanup decays messages and acceptance records older than (2f+3)·Φ and
// drops settled triples from the evaluator's iteration list.
func (s *Session) Cleanup(now simtime.Local) {
	s.log.DecayOlderThan(s.maxAge(), now)
	s.rebuildAct()
	for tr, st := range s.states {
		if st.accepted {
			age := s.pp.Sub(now, st.acceptedAt)
			if age < 0 || age > s.maxAge() {
				st.accepted = false
			}
		}
		if !st.accepted && !st.inAct && !st.sentEcho && !st.sentInitPrime && !st.sentEchoPrime {
			delete(s.states, tr)
		}
	}
	s.dropTripleCache()
}

// Reset clears the session (3d after the agreement layer returned). The
// accepted-triple dedup flags survive — see the tripleState field comment.
func (s *Session) Reset() {
	s.log.Clear()
	s.anchored = false
	s.tauG = 0
	s.act = s.act[:0]
	for tr, st := range s.states {
		if !st.accepted {
			delete(s.states, tr)
			continue
		}
		st.sentEcho = false
		st.sentInitPrime = false
		st.sentEchoPrime = false
		st.inAct = false
	}
	s.dropTripleCache()
	for i := range s.broadcasters {
		s.broadcasters[i] = 0
	}
	s.nBroadcaster = 0
}

// InjectRecord installs a spurious reception record (transient injector).
func (s *Session) InjectRecord(kind protocol.MsgKind, tr protocol.Message, sender protocol.NodeID, at simtime.Local) {
	k := msglog.Key{Kind: kind, G: s.g, M: tr.M, P: tr.P, K: tr.K}
	s.note(triple{P: tr.P, M: tr.M, K: tr.K})
	s.log.InjectRaw(k, sender, at)
}

// InjectBroadcaster plants p in the broadcasters set (transient injector).
func (s *Session) InjectBroadcaster(p protocol.NodeID) { s.setBroadcaster(p) }

// InjectAnchor plants an arbitrary anchor (transient injector).
func (s *Session) InjectAnchor(tauG simtime.Local) {
	s.anchored = true
	s.tauG = tauG
}
