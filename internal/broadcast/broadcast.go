// Package broadcast implements the msgd-broadcast primitive (Fig. 3): a
// message-driven replacement for the time-driven reliable broadcast of
// Toueg, Perry and Srikanth [TPS-87]. Rounds are anchored at the local
// estimate τG of the General's initiation (produced by Initiator-Accept)
// and progress with the arrival of the anticipated messages; the phase
// bounds τG + c·Φ only cap how late a step may still be taken, so the
// primitive "can progress at the speed of message delivery".
//
// Once the system is stable and n > 3f it satisfies (Theorem 2):
//
//	TPS-1 Correctness — a timely correct broadcast is accepted by every
//	      correct node within one phase and within 3d real time.
//	TPS-2 Unforgeability — no acceptance without a correct broadcast.
//	TPS-3 Relay — one correct acceptance at phase r pulls all correct
//	      nodes along by phase r+2.
//	TPS-4 Detection of broadcasters — acceptance implies every correct
//	      node records p ∈ broadcasters by phase 2k+2.
package broadcast

import (
	"ssbyz/internal/msglog"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// triple identifies one broadcast (p, m, k) within a session.
type triple struct {
	P protocol.NodeID
	M protocol.Value
	K int
}

// AcceptFn is called when the node accepts (p, m, k).
type AcceptFn func(p protocol.NodeID, m protocol.Value, k int)

// Session is one node's msgd-broadcast state for the agreement instance of
// a single General G. Messages are logged before the anchor τG is known
// and replayed once it is ("nodes log messages until they are able to
// process them").
type Session struct {
	rt protocol.Runtime
	g  protocol.NodeID
	pp protocol.Params

	log *msglog.Log

	anchored bool
	tauG     simtime.Local

	sentEcho      map[triple]bool
	sentInitPrime map[triple]bool
	sentEchoPrime map[triple]bool
	// accepted dedupes acceptances per triple ("accept only once"). It
	// deliberately survives Reset: straggler echo′ residue of a completed
	// agreement arrives within d of the reset, gets logged into the fresh
	// session, and would otherwise re-accept — and re-decide — the old
	// value when the next agreement anchors. Entries decay by age in
	// Cleanup instead, which bounds the memory exactly like the paper's
	// "erase any value or message older than (2f+3)·Φ" rule. Legitimate
	// same-value re-broadcasts are spaced by Δv > (2f+3)·Φ (criterion
	// IG2), so they are never suppressed.
	accepted     map[triple]simtime.Local
	broadcasters map[protocol.NodeID]bool

	onAccept AcceptFn
}

// NewSession creates the session for General g at the node owning rt.
func NewSession(rt protocol.Runtime, g protocol.NodeID, onAccept AcceptFn) *Session {
	return &Session{
		rt:            rt,
		g:             g,
		pp:            rt.Params(),
		log:           msglog.New(rt.Params().Wrap),
		sentEcho:      make(map[triple]bool),
		sentInitPrime: make(map[triple]bool),
		sentEchoPrime: make(map[triple]bool),
		accepted:      make(map[triple]simtime.Local),
		broadcasters:  make(map[protocol.NodeID]bool),
		onAccept:      onAccept,
	}
}

// SetAnchor installs τG and replays any logged messages against the now-
// defined round structure. "No correct node will execute the
// msgd-broadcast primitive without first producing the reference
// (anchor) τG."
func (s *Session) SetAnchor(tauG simtime.Local) {
	s.anchored = true
	s.tauG = tauG
	s.evaluate(s.rt.Now())
}

// Anchored reports whether τG is defined.
func (s *Session) Anchored() bool { return s.anchored }

// Broadcast invokes the primitive for this node's own message (Block V):
// node p sends (init, p, m, k) to all nodes.
func (s *Session) Broadcast(m protocol.Value, k int) {
	s.rt.Broadcast(protocol.Message{
		Kind: protocol.Init, G: s.g, M: m, P: s.rt.ID(), K: k,
	})
}

// Broadcasters returns how many distinct nodes are in the broadcasters
// set (Block Y3), as needed by the agreement layer's Block T.
func (s *Session) Broadcasters() int { return len(s.broadcasters) }

// IsBroadcaster reports membership of p in broadcasters.
func (s *Session) IsBroadcaster(p protocol.NodeID) bool { return s.broadcasters[p] }

// OnMessage records an incoming broadcast-layer message and re-evaluates.
func (s *Session) OnMessage(from protocol.NodeID, m protocol.Message) {
	if m.G != s.g {
		return
	}
	now := s.rt.Now()
	switch m.Kind {
	case protocol.Init:
		// W2 requires the init to come from p itself; the transport
		// authenticates From, so a faulty node cannot plant an init for
		// another p.
		if from != m.P {
			return
		}
	case protocol.Echo, protocol.InitPrime, protocol.EchoPrime:
	default:
		return
	}
	s.log.Record(msglog.KeyOf(m), from, now)
	s.evaluate(now)
}

// maxAge is the cleanup bound: messages older than (2f+3)·Φ are removed
// and never satisfy a condition.
func (s *Session) maxAge() simtime.Duration {
	return simtime.Duration(2*s.pp.F+3) * s.pp.Phi()
}

// withinPhase reports whether the node's current τ is at most
// τG + phases·Φ, the late bound for the corresponding block.
func (s *Session) withinPhase(now simtime.Local, phases int) bool {
	return s.pp.Sub(now, s.tauG) <= simtime.Duration(phases)*s.pp.Phi()
}

// evaluate runs blocks W–Z to a fixed point across every known triple.
func (s *Session) evaluate(now simtime.Local) {
	if !s.anchored {
		return
	}
	for iter := 0; iter < 6; iter++ {
		changed := false
		for _, tr := range s.activeTriples() {
			if s.tryTriple(tr, now) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// activeTriples enumerates the (p, m, k) triples with any logged state.
func (s *Session) activeTriples() []triple {
	seen := make(map[triple]bool)
	var out []triple
	for _, k := range s.log.Keys() {
		tr := triple{P: k.P, M: k.M, K: k.K}
		if !seen[tr] {
			seen[tr] = true
			out = append(out, tr)
		}
	}
	return out
}

// tryTriple evaluates all blocks for one (p, m, k).
func (s *Session) tryTriple(tr triple, now simtime.Local) bool {
	changed := false
	key := func(kind protocol.MsgKind) msglog.Key {
		return msglog.Key{Kind: kind, G: s.g, M: tr.M, P: tr.P, K: tr.K}
	}
	count := func(kind protocol.MsgKind) int {
		return s.log.CountWithin(key(kind), s.maxAge(), now)
	}

	// Block W — echo the direct init, by τG + 2k·Φ.
	if !s.sentEcho[tr] && s.withinPhase(now, 2*tr.K) && s.log.Has(key(protocol.Init), tr.P) {
		s.sentEcho[tr] = true
		s.rt.Broadcast(protocol.Message{Kind: protocol.Echo, G: s.g, M: tr.M, P: tr.P, K: tr.K})
		changed = true
	}

	// Block X — by τG + (2k+1)·Φ.
	if s.withinPhase(now, 2*tr.K+1) {
		if !s.sentInitPrime[tr] && count(protocol.Echo) >= s.pp.ByzQuorum() {
			s.sentInitPrime[tr] = true
			s.rt.Broadcast(protocol.Message{Kind: protocol.InitPrime, G: s.g, M: tr.M, P: tr.P, K: tr.K})
			changed = true
		}
		if count(protocol.Echo) >= s.pp.Quorum() && s.accept(tr) {
			changed = true
		}
	}

	// Block Y — by τG + (2k+2)·Φ.
	if s.withinPhase(now, 2*tr.K+2) {
		if count(protocol.InitPrime) >= s.pp.ByzQuorum() && !s.broadcasters[tr.P] {
			s.broadcasters[tr.P] = true
			changed = true
		}
		if !s.sentEchoPrime[tr] && count(protocol.InitPrime) >= s.pp.Quorum() {
			s.sentEchoPrime[tr] = true
			s.rt.Broadcast(protocol.Message{Kind: protocol.EchoPrime, G: s.g, M: tr.M, P: tr.P, K: tr.K})
			changed = true
		}
	}

	// Block Z — at any time.
	if !s.sentEchoPrime[tr] && count(protocol.EchoPrime) >= s.pp.ByzQuorum() {
		s.sentEchoPrime[tr] = true
		s.rt.Broadcast(protocol.Message{Kind: protocol.EchoPrime, G: s.g, M: tr.M, P: tr.P, K: tr.K})
		changed = true
	}
	if count(protocol.EchoPrime) >= s.pp.Quorum() && s.accept(tr) {
		changed = true
	}
	return changed
}

// accept fires the acceptance of tr exactly once.
func (s *Session) accept(tr triple) bool {
	if _, ok := s.accepted[tr]; ok {
		return false
	}
	s.accepted[tr] = s.rt.Now()
	s.rt.Trace(protocol.TraceEvent{
		Kind: protocol.EvAccept, G: s.g, M: tr.M, K: tr.K, P: tr.P,
	})
	if s.onAccept != nil {
		s.onAccept(tr.P, tr.M, tr.K)
	}
	return true
}

// Cleanup decays messages and acceptance records older than (2f+3)·Φ.
func (s *Session) Cleanup(now simtime.Local) {
	s.log.DecayOlderThan(s.maxAge(), now)
	for tr, at := range s.accepted {
		age := s.pp.Sub(now, at)
		if age < 0 || age > s.maxAge() {
			delete(s.accepted, tr)
		}
	}
}

// Reset clears the session (3d after the agreement layer returned). The
// accepted-triple dedup set survives — see its field comment.
func (s *Session) Reset() {
	s.log.Clear()
	s.anchored = false
	s.tauG = 0
	s.sentEcho = make(map[triple]bool)
	s.sentInitPrime = make(map[triple]bool)
	s.sentEchoPrime = make(map[triple]bool)
	s.broadcasters = make(map[protocol.NodeID]bool)
}

// InjectRecord installs a spurious reception record (transient injector).
func (s *Session) InjectRecord(kind protocol.MsgKind, tr protocol.Message, sender protocol.NodeID, at simtime.Local) {
	k := msglog.Key{Kind: kind, G: s.g, M: tr.M, P: tr.P, K: tr.K}
	s.log.InjectRaw(k, sender, at)
}

// InjectBroadcaster plants p in the broadcasters set (transient injector).
func (s *Session) InjectBroadcaster(p protocol.NodeID) { s.broadcasters[p] = true }

// InjectAnchor plants an arbitrary anchor (transient injector).
func (s *Session) InjectAnchor(tauG simtime.Local) {
	s.anchored = true
	s.tauG = tauG
}
