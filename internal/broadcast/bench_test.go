package broadcast

import (
	"testing"

	"ssbyz/internal/protocol"
)

// BenchmarkAcceptWave measures one full msgd-broadcast acceptance: five
// echoes into an anchored session.
func BenchmarkAcceptWave(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s, _ := newSession(true)
		feed(s, protocol.Echo, 3, "v", 1, 0, 1, 2, 4, 5)
	}
}

// BenchmarkEvaluateQuiescent measures re-evaluation with live triples but
// no new conclusions.
func BenchmarkEvaluateQuiescent(b *testing.B) {
	rt, s, _ := newSession(true)
	feed(s, protocol.Echo, 3, "v", 1, 0, 1)
	feed(s, protocol.Echo, 4, "w", 2, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.evaluate(rt.now)
	}
}
