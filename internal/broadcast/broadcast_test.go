package broadcast

import (
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// fakeRT is a hand-cranked runtime for driving a Session directly.
type fakeRT struct {
	id     protocol.NodeID
	now    simtime.Local
	pp     protocol.Params
	sent   []protocol.Message
	traces []protocol.TraceEvent
}

var _ protocol.Runtime = (*fakeRT)(nil)

func (f *fakeRT) ID() protocol.NodeID     { return f.id }
func (f *fakeRT) Now() simtime.Local      { return f.now }
func (f *fakeRT) Params() protocol.Params { return f.pp }
func (f *fakeRT) Send(_ protocol.NodeID, m protocol.Message) {
	f.sent = append(f.sent, m)
}
func (f *fakeRT) Broadcast(m protocol.Message) { f.sent = append(f.sent, m) }
func (f *fakeRT) After(simtime.Duration, protocol.TimerTag) protocol.TimerID {
	return 0
}
func (f *fakeRT) Cancel(protocol.TimerID)      {}
func (f *fakeRT) Trace(ev protocol.TraceEvent) { f.traces = append(f.traces, ev) }

func (f *fakeRT) countKind(kind protocol.MsgKind) int {
	n := 0
	for _, m := range f.sent {
		if m.Kind == kind {
			n++
		}
	}
	return n
}

type acceptRec struct {
	p protocol.NodeID
	m protocol.Value
	k int
}

// newSession builds a session for General 0 at node 1 (n=7, f=2), with an
// anchor already set at the current local time.
func newSession(anchored bool) (*fakeRT, *Session, *[]acceptRec) {
	rt := &fakeRT{id: 1, pp: protocol.DefaultParams(7), now: 50_000}
	accepts := &[]acceptRec{}
	s := NewSession(rt, 0, func(p protocol.NodeID, m protocol.Value, k int) {
		*accepts = append(*accepts, acceptRec{p, m, k})
	})
	if anchored {
		s.SetAnchor(rt.now)
	}
	return rt, s, accepts
}

// feed delivers one message per sender at the current local time.
func feed(s *Session, kind protocol.MsgKind, p protocol.NodeID, v protocol.Value, k int, senders ...protocol.NodeID) {
	for _, from := range senders {
		s.OnMessage(from, protocol.Message{Kind: kind, G: 0, M: v, P: p, K: k})
	}
}

func TestEchoOnDirectInit(t *testing.T) {
	rt, s, _ := newSession(true)
	// The init must come from p itself (authenticated).
	s.OnMessage(3, protocol.Message{Kind: protocol.Init, G: 0, M: "v", P: 3, K: 1})
	if got := rt.countKind(protocol.Echo); got != 1 {
		t.Errorf("echoes sent = %d, want 1", got)
	}
}

func TestInitFromWrongSenderIgnored(t *testing.T) {
	rt, s, _ := newSession(true)
	s.OnMessage(4, protocol.Message{Kind: protocol.Init, G: 0, M: "v", P: 3, K: 1})
	if got := rt.countKind(protocol.Echo); got != 0 {
		t.Errorf("echoed a spoofed init: %d", got)
	}
}

func TestAcceptViaEchoQuorum(t *testing.T) {
	_, s, accepts := newSession(true)
	feed(s, protocol.Echo, 3, "v", 1, 0, 1, 2, 4, 5) // n−f = 5 echoes
	if len(*accepts) != 1 || (*accepts)[0] != (acceptRec{3, "v", 1}) {
		t.Fatalf("accepts = %v, want [(3,v,1)]", *accepts)
	}
}

func TestNoAcceptBelowQuorum(t *testing.T) {
	_, s, accepts := newSession(true)
	feed(s, protocol.Echo, 3, "v", 1, 0, 1, 2, 4) // only 4 < n−f
	if len(*accepts) != 0 {
		t.Errorf("accepted below quorum: %v", *accepts)
	}
}

func TestInitPrimeOnByzQuorum(t *testing.T) {
	rt, s, _ := newSession(true)
	feed(s, protocol.Echo, 3, "v", 1, 0, 1, 2) // n−2f = 3
	if got := rt.countKind(protocol.InitPrime); got != 1 {
		t.Errorf("init' sent = %d, want 1", got)
	}
}

func TestBroadcastersViaInitPrime(t *testing.T) {
	_, s, _ := newSession(true)
	if s.Broadcasters() != 0 || s.IsBroadcaster(3) {
		t.Fatal("fresh session has broadcasters")
	}
	feed(s, protocol.InitPrime, 3, "v", 1, 0, 1, 2) // n−2f
	if s.Broadcasters() != 1 || !s.IsBroadcaster(3) {
		t.Errorf("broadcasters = %d, want {3}", s.Broadcasters())
	}
}

func TestEchoPrimeRelayAndAccept(t *testing.T) {
	rt, s, accepts := newSession(true)
	// n−2f echo′ → relay own echo′ (Block Z2/Z3).
	feed(s, protocol.EchoPrime, 3, "v", 1, 0, 2, 4)
	if got := rt.countKind(protocol.EchoPrime); got != 1 {
		t.Errorf("echo' relays = %d, want 1", got)
	}
	// n−f echo′ → accept (Z4/Z5).
	feed(s, protocol.EchoPrime, 3, "v", 1, 5, 6)
	if len(*accepts) != 1 {
		t.Errorf("accepts = %v, want one", *accepts)
	}
}

func TestAcceptOnlyOnce(t *testing.T) {
	_, s, accepts := newSession(true)
	feed(s, protocol.Echo, 3, "v", 1, 0, 1, 2, 4, 5)
	feed(s, protocol.EchoPrime, 3, "v", 1, 0, 1, 2, 4, 5)
	if len(*accepts) != 1 {
		t.Errorf("accepted %d times, want 1", len(*accepts))
	}
}

func TestMessagesLoggedBeforeAnchor(t *testing.T) {
	rt, s, accepts := newSession(false)
	feed(s, protocol.Echo, 3, "v", 1, 0, 1, 2, 4, 5)
	if len(*accepts) != 0 || rt.countKind(protocol.InitPrime) != 0 {
		t.Fatal("session acted before the anchor was set")
	}
	// "Nodes log messages until they are able to process them."
	s.SetAnchor(rt.now)
	if len(*accepts) != 1 {
		t.Errorf("logged messages not replayed on SetAnchor: %v", *accepts)
	}
	if !s.Anchored() {
		t.Error("Anchored() false after SetAnchor")
	}
}

func TestPhaseBoundExpiresEcho(t *testing.T) {
	rt, s, _ := newSession(true)
	// Echo for k=1 is allowed only until τG + 2·Φ; move past it.
	rt.now = rt.now.Add(3 * rt.pp.Phi())
	s.OnMessage(3, protocol.Message{Kind: protocol.Init, G: 0, M: "v", P: 3, K: 1})
	if got := rt.countKind(protocol.Echo); got != 0 {
		t.Errorf("echoed after the phase bound: %d", got)
	}
}

func TestBlockZHasNoPhaseBound(t *testing.T) {
	rt, s, accepts := newSession(true)
	rt.now = rt.now.Add(simtime.Duration(2*rt.pp.F+2) * rt.pp.Phi())
	feed(s, protocol.EchoPrime, 3, "v", 1, 0, 1, 2, 4, 5)
	if len(*accepts) != 1 {
		t.Errorf("Block Z accept blocked by a phase bound: %v", *accepts)
	}
}

func TestWrongGeneralIgnored(t *testing.T) {
	_, s, accepts := newSession(true)
	s.OnMessage(2, protocol.Message{Kind: protocol.Echo, G: 5, M: "v", P: 3, K: 1})
	feed(s, protocol.Echo, 3, "v", 1, 0, 1, 4, 5)
	if len(*accepts) != 0 {
		t.Errorf("message for another General counted toward quorum")
	}
}

func TestBroadcastSendsInit(t *testing.T) {
	rt, s, _ := newSession(true)
	s.Broadcast("mine", 2)
	if len(rt.sent) != 1 {
		t.Fatalf("sent %d messages, want 1", len(rt.sent))
	}
	m := rt.sent[0]
	if m.Kind != protocol.Init || m.P != rt.id || m.K != 2 || m.M != "mine" {
		t.Errorf("Broadcast sent %+v", m)
	}
}

func TestDuplicateSendersCountOnce(t *testing.T) {
	_, s, accepts := newSession(true)
	// The same sender echoing five times must not reach the quorum.
	for i := 0; i < 5; i++ {
		s.OnMessage(2, protocol.Message{Kind: protocol.Echo, G: 0, M: "v", P: 3, K: 1})
	}
	if len(*accepts) != 0 {
		t.Error("duplicate senders satisfied the quorum")
	}
}

func TestCleanupDecaysOldMessages(t *testing.T) {
	rt, s, accepts := newSession(true)
	feed(s, protocol.EchoPrime, 3, "v", 1, 0, 1, 2) // 3 of 5 needed
	rt.now = rt.now.Add(simtime.Duration(2*rt.pp.F+4) * rt.pp.Phi())
	s.Cleanup(rt.now)
	feed(s, protocol.EchoPrime, 3, "v", 1, 4, 5) // 2 more, but old 3 gone
	if len(*accepts) != 0 {
		t.Error("decayed messages completed a quorum")
	}
}

func TestReset(t *testing.T) {
	rt, s, accepts := newSession(true)
	feed(s, protocol.Echo, 3, "v", 1, 0, 1, 2, 4, 5)
	s.Reset()
	if s.Anchored() || s.Broadcasters() != 0 {
		t.Error("Reset left anchor or broadcasters")
	}
	// The acceptance dedup SURVIVES the reset: straggler residue of the
	// finished wave must not re-accept (and re-decide) under the next
	// anchor.
	s.SetAnchor(rt.now)
	feed(s, protocol.Echo, 3, "v", 1, 0, 1, 2, 4, 5)
	if len(*accepts) != 1 {
		t.Errorf("accepts after reset = %d, want 1 (dedup persists)", len(*accepts))
	}
}

func TestAcceptDedupDecays(t *testing.T) {
	rt, s, accepts := newSession(true)
	feed(s, protocol.Echo, 3, "v", 1, 0, 1, 2, 4, 5)
	if len(*accepts) != 1 {
		t.Fatal("setup accept failed")
	}
	// Past the decay age a fresh wave for the same triple accepts again
	// (legitimate same-value re-broadcasts are spaced by Δv > (2f+3)Φ).
	rt.now = rt.now.Add(simtime.Duration(2*rt.pp.F+4) * rt.pp.Phi())
	s.Cleanup(rt.now)
	s.Reset()
	s.SetAnchor(rt.now)
	feed(s, protocol.Echo, 3, "v", 1, 0, 1, 2, 4, 5)
	if len(*accepts) != 2 {
		t.Errorf("accepts after decay = %d, want 2", len(*accepts))
	}
}

func TestInjectHooks(t *testing.T) {
	rt, s, _ := newSession(false)
	s.InjectAnchor(rt.now.Add(-42))
	if !s.Anchored() {
		t.Error("InjectAnchor did not anchor")
	}
	s.InjectBroadcaster(5)
	if !s.IsBroadcaster(5) {
		t.Error("InjectBroadcaster did not register")
	}
	s.InjectRecord(protocol.Echo, protocol.Message{G: 0, M: "g", P: 2, K: 1}, 3, rt.now)
	// The injected record participates in evaluation without panicking.
	feed(s, protocol.Echo, 2, "g", 1, 0, 1)
}

func TestTraceCarriesBroadcaster(t *testing.T) {
	rt, s, _ := newSession(true)
	feed(s, protocol.Echo, 4, "v", 1, 0, 1, 2, 5, 6)
	found := false
	for _, ev := range rt.traces {
		if ev.Kind == protocol.EvAccept && ev.P == 4 {
			found = true
		}
	}
	if !found {
		t.Error("EvAccept trace missing the broadcaster P")
	}
}
