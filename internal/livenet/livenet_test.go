package livenet

import (
	"testing"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/core"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// liveParams returns parameters sized for wall-clock runs: d = 50 ticks of
// 100µs = 5ms, so a full Δagr at f=1 is (2·1+1)·8·5ms = 120ms.
func liveParams(n int) protocol.Params {
	pp := protocol.DefaultParams(n)
	pp.D = 50
	return pp
}

// result queries node id's outcome for General g through the event loop.
func result(c *Cluster, id, g protocol.NodeID) (returned, decided bool, v protocol.Value) {
	c.DoWait(id, func(n protocol.Node) {
		returned, decided, v = n.(*core.Node).Result(g)
	})
	return
}

// awaitDecisions polls until every node decided for General g or the
// deadline passes; it returns the number of deciders.
func awaitDecisions(c *Cluster, n int, g protocol.NodeID, want protocol.Value, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		done := 0
		for i := 0; i < n; i++ {
			if returned, decided, v := result(c, protocol.NodeID(i), g); returned && decided && v == want {
				done++
			}
		}
		if done == n || time.Now().After(deadline) {
			return done
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"defaults", Config{Params: liveParams(4)}, true},
		{"bad n/f", Config{Params: protocol.Params{N: 3, F: 1, D: 10}}, false},
		{"delay above d", Config{Params: liveParams(4), DelayMin: 10, DelayMax: 100}, false},
		{"inverted range", Config{Params: liveParams(4), DelayMin: 30, DelayMax: 20}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if (err == nil) != tc.ok {
				t.Errorf("New error = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

// newCluster builds a started cluster of correct nodes.
func newCluster(t *testing.T, pp protocol.Params, seed int64) *Cluster {
	t.Helper()
	c, err := New(Config{Params: pp, Seed: seed})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < pp.N; i++ {
		c.SetNode(protocol.NodeID(i), core.NewNode())
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

// TestLiveAgreementCorrectGeneral runs a real-time agreement end to end:
// all correct nodes must decide the General's value.
func TestLiveAgreementCorrectGeneral(t *testing.T) {
	pp := liveParams(4)
	c := newCluster(t, pp, 1)
	c.Do(0, func(n protocol.Node) {
		if err := n.(*core.Node).InitiateAgreement("live-v"); err != nil {
			t.Errorf("InitiateAgreement: %v", err)
		}
	})
	if done := awaitDecisions(c, pp.N, 0, "live-v", 5*time.Second); done != pp.N {
		t.Fatalf("only %d/%d nodes decided within the deadline", done, pp.N)
	}
	for _, ev := range c.Recorder().ByKind(protocol.EvDecide) {
		if ev.M != "live-v" {
			t.Errorf("node %d decided %q, want \"live-v\"", ev.Node, ev.M)
		}
	}
}

// TestLiveDecisionSkew checks the Timeliness-1a shape on wall time: all
// decisions within a few d of each other (exact bounds are simulator
// territory; here we assert a loose 10d to absorb host jitter).
func TestLiveDecisionSkew(t *testing.T) {
	pp := liveParams(4)
	c := newCluster(t, pp, 2)
	c.Do(0, func(n protocol.Node) { _ = n.(*core.Node).InitiateAgreement("skew") })
	if done := awaitDecisions(c, pp.N, 0, "skew", 5*time.Second); done != pp.N {
		t.Fatalf("only %d/%d nodes decided", done, pp.N)
	}
	evs := c.Recorder().ByKind(protocol.EvDecide)
	lo, hi := evs[0].RT, evs[0].RT
	for _, ev := range evs {
		if ev.RT < lo {
			lo = ev.RT
		}
		if ev.RT > hi {
			hi = ev.RT
		}
	}
	if skew := hi - lo; skew > 10*simtime.Real(pp.D) {
		t.Errorf("decision skew %d ticks exceeds 10d=%d (host badly overloaded?)", skew, 10*pp.D)
	}
}

// TestStopIsIdempotentAndClean ensures the goroutine lifecycle contract:
// Stop twice is fine and no events are processed after Stop.
func TestStopIsIdempotentAndClean(t *testing.T) {
	pp := liveParams(4)
	c, err := New(Config{Params: pp, Seed: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < pp.N; i++ {
		c.SetNode(protocol.NodeID(i), core.NewNode())
	}
	c.Start()
	c.Stop()
	c.Stop() // idempotent
	before := c.Recorder().Len()
	c.Do(0, func(n protocol.Node) { _ = n.(*core.Node).InitiateAgreement("late") })
	time.Sleep(20 * time.Millisecond)
	if after := c.Recorder().Len(); after != before {
		t.Errorf("events recorded after Stop: %d -> %d", before, after)
	}
}

// TestDoWaitAfterStopDoesNotHang covers the shutdown path of DoWait.
func TestDoWaitAfterStopDoesNotHang(t *testing.T) {
	pp := liveParams(4)
	c, err := New(Config{Params: pp, Seed: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < pp.N; i++ {
		c.SetNode(protocol.NodeID(i), core.NewNode())
	}
	c.Start()
	c.Stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.DoWait(0, func(protocol.Node) {})
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("DoWait hung after Stop")
	}
}

// TestStartStopStress hammers the teardown window the eventloop package
// closes: clusters are started, loaded with an in-flight agreement (so
// artificial-delay and protocol timers are firing constantly), and
// stopped at staggered moments. A time.AfterFunc body that already fired
// must never enqueue into a closed mailbox or touch cluster state after
// Stop returns — under -race this test is the detector; without -race it
// still asserts the no-events-after-Stop contract on every iteration.
func TestStartStopStress(t *testing.T) {
	pp := liveParams(4)
	pp.D = 20 // d = 2ms: timers fire densely within the test budget
	iters := 30
	if testing.Short() {
		iters = 10
	}
	for i := 0; i < iters; i++ {
		c, err := New(Config{Params: pp, Seed: int64(i)})
		if err != nil {
			t.Fatalf("iter %d: New: %v", i, err)
		}
		for j := 0; j < pp.N; j++ {
			c.SetNode(protocol.NodeID(j), core.NewNode())
		}
		c.Start()
		c.Do(0, func(n protocol.Node) { _ = n.(*core.Node).InitiateAgreement("stress") })
		// Stop mid-flight at a different protocol phase each iteration.
		time.Sleep(time.Duration(i%7) * time.Millisecond)
		c.Stop()
		before := c.Recorder().Len()
		time.Sleep(2 * time.Millisecond)
		if after := c.Recorder().Len(); after != before {
			t.Fatalf("iter %d: %d events recorded after Stop returned", i, after-before)
		}
		c.Stop() // idempotent under load
	}
}

// TestRunWrapper exercises the Run convenience.
func TestRunWrapper(t *testing.T) {
	pp := liveParams(4)
	c, err := New(Config{Params: pp, Seed: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < pp.N; i++ {
		c.SetNode(protocol.NodeID(i), core.NewNode())
	}
	ran := false
	c.Run(func() {
		ran = true
		c.Do(1, func(n protocol.Node) { _ = n.(*core.Node).InitiateAgreement("wrapped") })
		if done := awaitDecisions(c, pp.N, 1, "wrapped", 5*time.Second); done != pp.N {
			t.Errorf("only %d/%d nodes decided", done, pp.N)
		}
	})
	if !ran {
		t.Error("Run did not execute the body")
	}
}

// TestStartStopStressVirtual is TestStartStopStress re-pinned on the
// injected FakeClock: the same teardown window, but the "different
// protocol phase each iteration" is a deterministic virtual-time offset
// instead of a wall sleep, and Stop races a concurrent Advance — under
// -race this pins that the Timers gate holds for fake-clock bodies
// (which run on the advancing goroutine) exactly as for time.AfterFunc
// goroutines.
func TestStartStopStressVirtual(t *testing.T) {
	pp := liveParams(4)
	pp.D = 20
	iters := 30
	if testing.Short() {
		iters = 10
	}
	for i := 0; i < iters; i++ {
		clk := clock.NewFake(time.Time{})
		c, err := New(Config{Params: pp, Seed: int64(i), Clock: clk})
		if err != nil {
			t.Fatalf("iter %d: New: %v", i, err)
		}
		for j := 0; j < pp.N; j++ {
			c.SetNode(protocol.NodeID(j), core.NewNode())
		}
		c.Start()
		c.Do(0, func(n protocol.Node) { _ = n.(*core.Node).InitiateAgreement("stress") })
		// Advance concurrently with Stop so the fire-vs-Stop window is
		// exercised from both sides.
		advDone := make(chan struct{})
		go func() {
			defer close(advDone)
			for k := 0; k <= i%7; k++ {
				clk.Advance(time.Duration(pp.D) * c.cfg.Tick)
			}
		}()
		if i%2 == 0 {
			<-advDone // half the iterations stop a quiescent cluster
		}
		c.Stop()
		before := c.Recorder().Len()
		<-advDone
		clk.Advance(time.Duration(pp.D) * c.cfg.Tick)
		if after := c.Recorder().Len(); after != before {
			t.Fatalf("iter %d: %d events recorded after Stop returned", i, after-before)
		}
		c.Stop()
	}
}

// TestLiveAgreementVirtual runs the in-process channel cluster entirely
// under virtual time: one Advance of Δagr must complete the agreement,
// with zero wall-clock waiting.
func TestLiveAgreementVirtual(t *testing.T) {
	pp := liveParams(4)
	clk := clock.NewFake(time.Time{})
	c, err := New(Config{Params: pp, Seed: 7, Clock: clk})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < pp.N; i++ {
		c.SetNode(protocol.NodeID(i), core.NewNode())
	}
	c.Start()
	defer c.Stop()
	c.DoWait(0, func(n protocol.Node) {
		if err := n.(*core.Node).InitiateAgreement("virt-v"); err != nil {
			t.Errorf("InitiateAgreement: %v", err)
		}
	})
	clk.Advance(time.Duration(pp.DeltaAgr()) * c.cfg.Tick)
	decides := c.Recorder().ByKind(protocol.EvDecide)
	if len(decides) != pp.N {
		t.Fatalf("decides = %d, want %d", len(decides), pp.N)
	}
	for _, ev := range decides {
		if ev.M != "virt-v" {
			t.Errorf("node %d decided %q, want \"virt-v\"", ev.Node, ev.M)
		}
	}
}
