// Package livenet is the real-time transport: every node runs its own
// event-loop goroutine, messages travel over in-process channels with
// randomized wall-clock delays, and local clocks read the host's monotonic
// clock. It implements the same protocol.Runtime interface as the
// discrete-event simulator, so the identical protocol state machines run
// unmodified in real time — the configuration a downstream user embedding
// the library in a networked service would start from. The socket
// transport (internal/nettrans) shares this package's execution core
// (internal/eventloop) and swaps the in-process channels for UDP/TCP.
//
// Ticks map to wall time through Config.Tick (default 100µs per tick), so
// the protocol constants keep their paper meaning: with D = 20 ticks, d is
// 2ms of wall time and messages are delivered within that bound as long as
// the host is not overloaded. The transport never drops messages; each
// node's mailbox is an unbounded FIFO drained by its event loop, which
// serializes OnMessage/OnTimer exactly like the simulator does.
package livenet

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/eventloop"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// Config describes a live cluster.
type Config struct {
	Params protocol.Params
	// Tick is the wall-clock duration of one tick (default 100µs).
	Tick time.Duration
	// DelayMin/DelayMax bound the per-message artificial delay, in ticks
	// (defaults [D/4, D/2]; the remaining half of D absorbs scheduling
	// jitter so the d bound holds on a loaded host).
	DelayMin, DelayMax simtime.Duration
	// Seed drives the delay randomness.
	Seed int64
	// Clock is the time source (default clock.Real()). Injecting a
	// *clock.Fake runs the same cluster in deterministic virtual time.
	Clock clock.Clock
}

// Cluster owns the nodes, their mailboxes and event-loop goroutines.
type Cluster struct {
	cfg   Config
	clk   clock.Clock
	rec   *protocol.Recorder
	start time.Time

	mu  sync.Mutex
	rng *rand.Rand

	// timers tracks every wall-clock timer (artificial delays and protocol
	// timers); its Stop gate guarantees no timer body outlives Cluster.Stop.
	timers *eventloop.Timers

	nodes []protocol.Node
	rts   []*nodeRT

	wg sync.WaitGroup
}

// New builds a cluster; attach nodes with SetNode, then Start.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 100 * time.Microsecond
	}
	if cfg.DelayMax == 0 {
		cfg.DelayMax = cfg.Params.D / 2
	}
	if cfg.DelayMin == 0 {
		cfg.DelayMin = cfg.Params.D / 4
	}
	if cfg.DelayMin > cfg.DelayMax || cfg.DelayMax > cfg.Params.D {
		return nil, errors.New("livenet: delay range must satisfy 0 ≤ min ≤ max ≤ D")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	c := &Cluster{
		cfg:    cfg,
		clk:    cfg.Clock,
		rec:    protocol.NewRecorder(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		timers: eventloop.NewTimersOn(cfg.Clock),
		nodes:  make([]protocol.Node, cfg.Params.N),
		rts:    make([]*nodeRT, cfg.Params.N),
	}
	for i := range c.rts {
		c.rts[i] = newNodeRT(c, protocol.NodeID(i))
	}
	return c, nil
}

// SetNode attaches the state machine for id. Must be called before Start.
func (c *Cluster) SetNode(id protocol.NodeID, n protocol.Node) {
	c.nodes[id] = n
}

// Recorder returns the shared trace recorder.
func (c *Cluster) Recorder() *protocol.Recorder { return c.rec }

// Params returns the protocol parameters.
func (c *Cluster) Params() protocol.Params { return c.cfg.Params }

// Start launches every node's event loop and calls Node.Start inside it.
func (c *Cluster) Start() {
	c.start = c.clk.Now()
	for i, n := range c.nodes {
		if n == nil {
			continue // silent (crash-faulty) slot
		}
		rt := c.rts[i]
		node := n
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			rt.mbox.Loop()
		}()
		rt.enqueue(func() { node.Start(rt) })
	}
}

// Stop shuts the cluster down: stops artificial-delay and protocol
// timers — waiting out any timer body already in flight, so no callback
// races the teardown — then closes every mailbox and waits for the event
// loops to drain and exit. After Stop returns, nothing of the cluster is
// still running. Idempotent.
func (c *Cluster) Stop() {
	c.timers.Stop()
	for _, rt := range c.rts {
		rt.mbox.Close()
	}
	c.wg.Wait()
}

// Run starts the cluster, executes body, then stops it.
func (c *Cluster) Run(body func()) {
	c.Start()
	defer c.Stop()
	body()
}

// Do executes fn inside node id's event loop (used to drive General-side
// initiations race-free) and returns once it has been enqueued.
func (c *Cluster) Do(id protocol.NodeID, fn func(n protocol.Node)) {
	node := c.nodes[id]
	if node == nil {
		return
	}
	c.rts[id].enqueue(func() { fn(node) })
}

// DoWait executes fn inside node id's event loop and blocks until it has
// run (or the cluster stopped first). Use it to query node state without
// racing the event loop.
func (c *Cluster) DoWait(id protocol.NodeID, fn func(n protocol.Node)) {
	node := c.nodes[id]
	if node == nil {
		return
	}
	done := make(chan struct{})
	c.rts[id].enqueue(func() {
		defer close(done)
		fn(node)
	})
	select {
	case <-done:
	case <-c.rts[id].mbox.Done():
	}
}

// nowTicks returns clock time since Start in ticks.
func (c *Cluster) nowTicks() simtime.Real {
	return simtime.Real(c.clk.Since(c.start) / c.cfg.Tick)
}

// afterTicks registers fn to run after dl ticks of clock time; the timer
// is tracked so Stop can cancel it (and wait out a body already running).
// Returns the timer for individual cancel, nil if the cluster stopped.
func (c *Cluster) afterTicks(dl simtime.Duration, fn func()) clock.Timer {
	return c.timers.AfterFunc(time.Duration(dl)*c.cfg.Tick, fn)
}

// delay draws one artificial message delay.
func (c *Cluster) delay() simtime.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.DelayMax == c.cfg.DelayMin {
		return c.cfg.DelayMin
	}
	return c.cfg.DelayMin + simtime.Duration(c.rng.Int63n(int64(c.cfg.DelayMax-c.cfg.DelayMin)+1))
}

// nodeRT implements protocol.Runtime for one live node. Mailbox semantics:
// an unbounded FIFO of closures drained by a single goroutine
// (eventloop.Mailbox), so protocol code is single-threaded exactly as
// under the simulator.
type nodeRT struct {
	c    *Cluster
	id   protocol.NodeID
	mbox *eventloop.Mailbox

	timerMu sync.Mutex
	nextID  protocol.TimerID
	pending map[protocol.TimerID]clock.Timer
}

var _ protocol.Runtime = (*nodeRT)(nil)

func newNodeRT(c *Cluster, id protocol.NodeID) *nodeRT {
	gate, _ := c.clk.(clock.Gate)
	return &nodeRT{c: c, id: id, mbox: eventloop.NewMailboxGated(gate),
		pending: make(map[protocol.TimerID]clock.Timer)}
}

// enqueue appends one event to the mailbox (dropped after Stop).
func (rt *nodeRT) enqueue(fn func()) { rt.mbox.Enqueue(fn) }

// ID implements protocol.Runtime.
func (rt *nodeRT) ID() protocol.NodeID { return rt.id }

// Now implements protocol.Runtime. Live clocks are ideal (offset 0); drift
// experiments belong to the simulator, where time is controllable.
func (rt *nodeRT) Now() simtime.Local { return simtime.Local(rt.c.nowTicks()) }

// Params implements protocol.Runtime.
func (rt *nodeRT) Params() protocol.Params { return rt.c.cfg.Params }

// Send implements protocol.Runtime: deliver after an artificial delay.
func (rt *nodeRT) Send(to protocol.NodeID, m protocol.Message) {
	m.From = rt.id // authenticated sender identity
	target := rt.c.rts[to]
	node := rt.c.nodes[to]
	if node == nil {
		return
	}
	from := rt.id
	rt.c.afterTicks(rt.c.delay(), func() {
		target.enqueue(func() { node.OnMessage(from, m) })
	})
}

// Broadcast implements protocol.Runtime: n point-to-point sends.
func (rt *nodeRT) Broadcast(m protocol.Message) {
	for i := 0; i < rt.c.cfg.Params.N; i++ {
		rt.Send(protocol.NodeID(i), m)
	}
}

// After implements protocol.Runtime.
func (rt *nodeRT) After(dl simtime.Duration, tag protocol.TimerTag) protocol.TimerID {
	if dl < 0 {
		dl = 0
	}
	rt.timerMu.Lock()
	rt.nextID++
	id := rt.nextID
	rt.timerMu.Unlock()

	node := rt.c.nodes[rt.id]
	t := rt.c.afterTicks(dl, func() {
		rt.timerMu.Lock()
		delete(rt.pending, id)
		rt.timerMu.Unlock()
		if node != nil {
			rt.enqueue(func() { node.OnTimer(tag) })
		}
	})
	if t != nil {
		rt.timerMu.Lock()
		rt.pending[id] = t
		rt.timerMu.Unlock()
	}
	return id
}

// Cancel implements protocol.Runtime. The cluster-level Cancel also
// forgets the timer in the tracked set, so cancelled timers do not
// accumulate there over a long-running cluster's lifetime.
func (rt *nodeRT) Cancel(id protocol.TimerID) {
	rt.timerMu.Lock()
	t, ok := rt.pending[id]
	if ok {
		delete(rt.pending, id)
	}
	rt.timerMu.Unlock()
	if ok {
		rt.c.timers.Cancel(t)
	}
}

// Trace implements protocol.Runtime.
func (rt *nodeRT) Trace(ev protocol.TraceEvent) {
	ev.Node = rt.id
	ev.RT = rt.c.nowTicks()
	ev.Tau = rt.Now()
	if ev.TauG != 0 || ev.Kind == protocol.EvDecide || ev.Kind == protocol.EvAbort || ev.Kind == protocol.EvIAccept {
		// Live clocks are ideal, so rt(τG) is the reading itself.
		ev.RTauG = simtime.Real(ev.TauG)
	}
	rt.c.rec.Add(ev)
}
