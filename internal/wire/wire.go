// Package wire is the binary codec of the live network runtime: a
// compact, versioned, allocation-frugal encoding of protocol.Message and
// protocol.TraceEvent, plus the session-framing envelope (frame kind,
// sender node id, cluster epoch, send tick, length-prefixed payload) that
// internal/nettrans speaks over UDP datagrams and TCP streams.
//
// The paper's model authenticates the sender of every message ("a
// non-faulty node can identify the sending node of every incoming
// message"); on a real network that guarantee has to be re-established
// from bytes, so every frame carries the claimed sender id and the
// transport cross-checks it against the socket source address before a
// message reaches protocol code. The cluster epoch field rejects frames
// from a previous incarnation of the cluster on a reused port, and the
// send-tick field lets the receiver enforce the paper's bounded-delay
// axiom by dropping frames older than d (transport-level deadline drops —
// late delivery would violate the model the proofs assume, so a late
// frame is treated exactly like a lost one).
//
// Encoding rules (version 1):
//
//   - all integers are varints (encoding/binary), zigzag for signed;
//   - strings are a uvarint byte length followed by raw bytes;
//   - a frame is MAGIC(2) VERSION(1) KIND(1) FROM EPOCH SENT LEN PAYLOAD,
//     self-delimiting so the same bytes work as one UDP datagram or as a
//     record in a TCP stream.
//
// Every Append* function appends to the caller's buffer and returns the
// extended slice, so steady-state encoding performs zero allocations once
// the per-connection scratch buffer has grown to the working-set size.
// Decoding never panics on truncated or corrupt input — the fuzz harness
// (wire_fuzz_test.go) and the corruption tests pin that.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// Version is the codec version stamped into every frame. A decoder
// rejects frames whose version it does not know.
const Version = 1

// magic0, magic1 open every frame ("sB" — ss-Byz). Two fixed bytes let a
// receiver discard port-scan noise and cross-protocol garbage cheaply.
const (
	magic0 = 's'
	magic1 = 'B'
)

// MaxValueLen bounds the decoded length of a Value or other string field;
// a corrupt length prefix larger than this is a decode error, not an
// allocation.
const MaxValueLen = 1 << 16

// MaxPayload bounds a frame's payload length. Protocol messages are tens
// of bytes; anything near this limit is corruption.
const MaxPayload = 1 << 20

// FrameKind tags what a frame's payload carries.
type FrameKind uint8

const (
	// FrameHello opens a session: the payload is empty, the envelope's
	// From/Epoch identify the peer. TCP peers and control streams send it
	// first.
	FrameHello FrameKind = iota + 1
	// FrameMessage carries one encoded protocol.Message.
	FrameMessage
	// FrameTrace carries one encoded protocol.TraceEvent (the control
	// stream a node daemon reports on).
	FrameTrace
	// FrameBye announces an orderly shutdown of the sender.
	FrameBye
	// FrameFault carries one encoded FaultCmd: a control-channel order to
	// corrupt the receiving daemon's in-memory protocol state mid-run (the
	// transient-fault injection the self-stabilization property quantifies
	// over). Only the control stream accepts it; a data-path frame of this
	// kind is discarded.
	FrameFault
	// FrameStats carries an encoded counter vector (AppendCounters): the
	// transport's per-class traffic/drop/attack counters, streamed by a
	// node daemon so a collector can prove which defenses fired.
	FrameStats
	// FrameBatch carries a coalesced batch of complete inner frames
	// (batch.go): COUNT then COUNT × (LEN, frame bytes). One batch is one
	// datagram / one stream record; every inner frame is authenticated and
	// checked individually on receipt.
	FrameBatch
)

func (k FrameKind) String() string {
	switch k {
	case FrameHello:
		return "hello"
	case FrameMessage:
		return "message"
	case FrameTrace:
		return "trace"
	case FrameBye:
		return "bye"
	case FrameFault:
		return "fault"
	case FrameStats:
		return "stats"
	case FrameBatch:
		return "batch"
	}
	return fmt.Sprintf("framekind(%d)", uint8(k))
}

// Frame is the session envelope around every payload.
type Frame struct {
	Kind FrameKind
	// From is the sender's claimed node id; the transport authenticates it
	// against the socket source address (the paper's sender-identification
	// assumption, re-established from bytes).
	From protocol.NodeID
	// Epoch identifies the cluster incarnation (the manifest's epoch, unix
	// nanoseconds). Frames from another epoch are dropped.
	Epoch uint64
	// Sent is the sender's clock reading (ticks since the epoch) when the
	// frame was emitted; receivers drop frames older than d.
	Sent int64
	// Payload is the encoded body. After DecodeFrame it aliases the input
	// buffer — copy before retaining.
	Payload []byte
}

// Decode errors. errors.Is-comparable so transports can count classes.
var (
	// ErrTruncated reports input that ended mid-field.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrCorrupt reports input that parsed but violated an invariant
	// (bad magic, unknown version, oversized length, overlong varint).
	ErrCorrupt = errors.New("wire: corrupt input")
)

// ---- varint primitives ----

// appendUvarint appends v as a uvarint.
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// appendVarint appends v as a zigzag varint.
func appendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// uvarint reads a uvarint at b[off:].
func uvarint(b []byte, off int) (uint64, int, error) {
	if off >= len(b) {
		return 0, off, ErrTruncated
	}
	v, n := binary.Uvarint(b[off:])
	if n == 0 {
		return 0, off, ErrTruncated
	}
	if n < 0 {
		return 0, off, ErrCorrupt
	}
	return v, off + n, nil
}

// varint reads a zigzag varint at b[off:].
func varint(b []byte, off int) (int64, int, error) {
	if off >= len(b) {
		return 0, off, ErrTruncated
	}
	v, n := binary.Varint(b[off:])
	if n == 0 {
		return 0, off, ErrTruncated
	}
	if n < 0 {
		return 0, off, ErrCorrupt
	}
	return v, off + n, nil
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// readString reads a length-prefixed string at b[off:].
func readString(b []byte, off int) (string, int, error) {
	l, off, err := uvarint(b, off)
	if err != nil {
		return "", off, err
	}
	if l > MaxValueLen {
		return "", off, fmt.Errorf("%w: string length %d exceeds %d", ErrCorrupt, l, MaxValueLen)
	}
	if off+int(l) > len(b) {
		return "", off, ErrTruncated
	}
	return string(b[off : off+int(l)]), off + int(l), nil
}

// ---- protocol.Message ----

// AppendMessage appends the version-1 encoding of m to dst and returns
// the extended slice. Field order: Kind, G, P, K, Aux, From, M.
func AppendMessage(dst []byte, m protocol.Message) []byte {
	dst = appendVarint(dst, int64(m.Kind))
	dst = appendVarint(dst, int64(m.G))
	dst = appendVarint(dst, int64(m.P))
	dst = appendVarint(dst, int64(m.K))
	dst = appendVarint(dst, int64(m.Aux))
	dst = appendVarint(dst, int64(m.From))
	dst = appendString(dst, string(m.M))
	return dst
}

// DecodeMessage decodes one message from b, returning it and the number
// of bytes consumed. Trailing bytes are not an error (streams concatenate
// records); truncated or corrupt input is.
func DecodeMessage(b []byte) (protocol.Message, int, error) {
	var m protocol.Message
	var v int64
	var err error
	off := 0
	if v, off, err = varint(b, off); err != nil {
		return m, off, err
	}
	m.Kind = protocol.MsgKind(v)
	if v, off, err = varint(b, off); err != nil {
		return m, off, err
	}
	m.G = protocol.NodeID(v)
	if v, off, err = varint(b, off); err != nil {
		return m, off, err
	}
	m.P = protocol.NodeID(v)
	if v, off, err = varint(b, off); err != nil {
		return m, off, err
	}
	m.K = int(v)
	if v, off, err = varint(b, off); err != nil {
		return m, off, err
	}
	m.Aux = int(v)
	if v, off, err = varint(b, off); err != nil {
		return m, off, err
	}
	m.From = protocol.NodeID(v)
	var s string
	if s, off, err = readString(b, off); err != nil {
		return m, off, err
	}
	m.M = protocol.Value(s)
	return m, off, nil
}

// ---- protocol.TraceEvent ----

// AppendTraceEvent appends the version-1 encoding of ev to dst. Field
// order: Kind, Node, RT, Tau, G, K, TauG, RTauG, P, M.
func AppendTraceEvent(dst []byte, ev protocol.TraceEvent) []byte {
	dst = appendVarint(dst, int64(ev.Kind))
	dst = appendVarint(dst, int64(ev.Node))
	dst = appendVarint(dst, int64(ev.RT))
	dst = appendVarint(dst, int64(ev.Tau))
	dst = appendVarint(dst, int64(ev.G))
	dst = appendVarint(dst, int64(ev.K))
	dst = appendVarint(dst, int64(ev.TauG))
	dst = appendVarint(dst, int64(ev.RTauG))
	dst = appendVarint(dst, int64(ev.P))
	dst = appendString(dst, string(ev.M))
	return dst
}

// DecodeTraceEvent decodes one trace event from b, returning it and the
// bytes consumed.
func DecodeTraceEvent(b []byte) (protocol.TraceEvent, int, error) {
	var ev protocol.TraceEvent
	var v int64
	var err error
	off := 0
	if v, off, err = varint(b, off); err != nil {
		return ev, off, err
	}
	ev.Kind = protocol.EventKind(v)
	if v, off, err = varint(b, off); err != nil {
		return ev, off, err
	}
	ev.Node = protocol.NodeID(v)
	if v, off, err = varint(b, off); err != nil {
		return ev, off, err
	}
	ev.RT = simtime.Real(v)
	if v, off, err = varint(b, off); err != nil {
		return ev, off, err
	}
	ev.Tau = simtime.Local(v)
	if v, off, err = varint(b, off); err != nil {
		return ev, off, err
	}
	ev.G = protocol.NodeID(v)
	if v, off, err = varint(b, off); err != nil {
		return ev, off, err
	}
	ev.K = int(v)
	if v, off, err = varint(b, off); err != nil {
		return ev, off, err
	}
	ev.TauG = simtime.Local(v)
	if v, off, err = varint(b, off); err != nil {
		return ev, off, err
	}
	ev.RTauG = simtime.Real(v)
	if v, off, err = varint(b, off); err != nil {
		return ev, off, err
	}
	ev.P = protocol.NodeID(v)
	var s string
	if s, off, err = readString(b, off); err != nil {
		return ev, off, err
	}
	ev.M = protocol.Value(s)
	return ev, off, nil
}

// ---- frame envelope ----

// AppendFrame appends the full envelope (magic, version, kind, from,
// epoch, sent, payload length, payload) to dst. The result is one UDP
// datagram, or one record of a TCP stream — the encoding is
// self-delimiting either way.
func AppendFrame(dst []byte, f Frame) []byte {
	dst = append(dst, magic0, magic1, Version, byte(f.Kind))
	dst = appendVarint(dst, int64(f.From))
	dst = appendUvarint(dst, f.Epoch)
	dst = appendVarint(dst, f.Sent)
	dst = appendUvarint(dst, uint64(len(f.Payload)))
	return append(dst, f.Payload...)
}

// DecodeFrame decodes one frame from b, returning it and the bytes
// consumed. Frame.Payload aliases b — copy before retaining. A stream
// reader calls DecodeFrame repeatedly, advancing by the consumed count; a
// datagram receiver additionally treats trailing bytes as corruption
// (one frame per datagram).
func DecodeFrame(b []byte) (Frame, int, error) {
	var f Frame
	if len(b) < 4 {
		return f, 0, ErrTruncated
	}
	if b[0] != magic0 || b[1] != magic1 {
		return f, 0, fmt.Errorf("%w: bad magic %#02x%02x", ErrCorrupt, b[0], b[1])
	}
	if b[2] != Version {
		return f, 0, fmt.Errorf("%w: unknown version %d", ErrCorrupt, b[2])
	}
	f.Kind = FrameKind(b[3])
	if f.Kind < FrameHello || f.Kind > FrameBatch {
		return f, 0, fmt.Errorf("%w: unknown frame kind %d", ErrCorrupt, b[3])
	}
	var v int64
	var u uint64
	var err error
	off := 4
	if v, off, err = varint(b, off); err != nil {
		return f, off, err
	}
	f.From = protocol.NodeID(v)
	if u, off, err = uvarint(b, off); err != nil {
		return f, off, err
	}
	f.Epoch = u
	if v, off, err = varint(b, off); err != nil {
		return f, off, err
	}
	f.Sent = v
	if u, off, err = uvarint(b, off); err != nil {
		return f, off, err
	}
	if u > MaxPayload {
		return f, off, fmt.Errorf("%w: payload length %d exceeds %d", ErrCorrupt, u, MaxPayload)
	}
	if off+int(u) > len(b) {
		return f, off, ErrTruncated
	}
	f.Payload = b[off : off+int(u)]
	return f, off + int(u), nil
}

// ---- FaultCmd (FrameFault payload) ----

// FaultCmd is a transient-fault injection order sent to a running node
// daemon over its control stream: "corrupt your in-memory protocol state
// now, seeded and scaled as follows". It is the live form of the
// arbitrary-state placement the paper's self-stabilization property
// quantifies over; the daemon applies it inside its event loop and the
// campaign then measures re-stabilization against Δstb.
type FaultCmd struct {
	// Seed drives the corruption RNG (independent of every other seed).
	Seed int64
	// SeverityPermille scales each corruption class's hit probability in
	// thousandths (1000 = corrupt everything; 0 means the default, 1000).
	SeverityPermille int
	// InFlight is the number of spurious forged-sender messages delivered
	// to the node alongside the state corruption (0 = the injector's
	// default of 2n).
	InFlight int
}

// AppendFaultCmd appends the version-1 encoding of c to dst. Field
// order: Seed, SeverityPermille, InFlight.
func AppendFaultCmd(dst []byte, c FaultCmd) []byte {
	dst = appendVarint(dst, c.Seed)
	dst = appendVarint(dst, int64(c.SeverityPermille))
	dst = appendVarint(dst, int64(c.InFlight))
	return dst
}

// DecodeFaultCmd decodes one fault command from b, returning it and the
// bytes consumed.
func DecodeFaultCmd(b []byte) (FaultCmd, int, error) {
	var c FaultCmd
	var v int64
	var err error
	off := 0
	if v, off, err = varint(b, off); err != nil {
		return c, off, err
	}
	c.Seed = v
	if v, off, err = varint(b, off); err != nil {
		return c, off, err
	}
	c.SeverityPermille = int(v)
	if v, off, err = varint(b, off); err != nil {
		return c, off, err
	}
	c.InFlight = int(v)
	return c, off, nil
}

// ---- counter vector (FrameStats payload) ----

// MaxCounters bounds a decoded counter vector's length; a corrupt count
// prefix larger than this is a decode error, not an allocation.
const MaxCounters = 64

// AppendCounters appends a length-prefixed vector of signed counters to
// dst. The vector's meaning is the sender's (nettrans fixes the order of
// its Stats counters); the codec only carries the numbers.
func AppendCounters(dst []byte, counters []int64) []byte {
	dst = appendUvarint(dst, uint64(len(counters)))
	for _, c := range counters {
		dst = appendVarint(dst, c)
	}
	return dst
}

// DecodeCounters decodes a counter vector from b, returning it and the
// bytes consumed.
func DecodeCounters(b []byte) ([]int64, int, error) {
	l, off, err := uvarint(b, 0)
	if err != nil {
		return nil, off, err
	}
	if l > MaxCounters {
		return nil, off, fmt.Errorf("%w: counter vector length %d exceeds %d", ErrCorrupt, l, MaxCounters)
	}
	out := make([]int64, l)
	for i := range out {
		if out[i], off, err = varint(b, off); err != nil {
			return nil, off, err
		}
	}
	return out, off, nil
}
