package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// allKinds enumerates every message kind of the three protocol layers.
var allKinds = []protocol.MsgKind{
	protocol.Initiator, protocol.Support, protocol.Approve, protocol.Ready,
	protocol.Init, protocol.Echo, protocol.InitPrime, protocol.EchoPrime,
	protocol.BaselineRound,
}

// randomMessage draws one message with adversarial field values: extreme
// ints, empty/unicode/long values, out-of-range kinds.
func randomMessage(rng *rand.Rand) protocol.Message {
	values := []protocol.Value{
		"", "v", "π≠⊥", protocol.Value(strings.Repeat("x", 300)),
		protocol.Value([]byte{0, 255, 128}),
	}
	ints := []int{0, 1, -1, 7, 1 << 30, -(1 << 30), int(int32(-1))}
	return protocol.Message{
		Kind: allKinds[rng.Intn(len(allKinds))],
		G:    protocol.NodeID(ints[rng.Intn(len(ints))]),
		M:    values[rng.Intn(len(values))],
		P:    protocol.NodeID(rng.Intn(256) - 128),
		K:    ints[rng.Intn(len(ints))],
		Aux:  ints[rng.Intn(len(ints))],
		From: protocol.NodeID(rng.Intn(256) - 128),
	}
}

func randomEvent(rng *rand.Rand) protocol.TraceEvent {
	reals := []simtime.Real{0, 1, -5, 1 << 40, -(1 << 40)}
	return protocol.TraceEvent{
		Kind:  protocol.EventKind(rng.Intn(12)),
		Node:  protocol.NodeID(rng.Intn(300)),
		RT:    reals[rng.Intn(len(reals))],
		Tau:   simtime.Local(rng.Int63n(1<<50) - 1<<49),
		G:     protocol.NodeID(rng.Intn(300) - 150),
		M:     protocol.Value([]string{"", "m", "päper", strings.Repeat("y", 100)}[rng.Intn(4)]),
		K:     rng.Intn(1<<20) - 1<<19,
		TauG:  simtime.Local(reals[rng.Intn(len(reals))]),
		RTauG: reals[rng.Intn(len(reals))],
		P:     protocol.NodeID(rng.Intn(300)),
	}
}

// TestMessageRoundTripEveryKind round-trips one representative message of
// every wire kind byte-exactly (the acceptance bar of the codec).
func TestMessageRoundTripEveryKind(t *testing.T) {
	for _, k := range allKinds {
		m := protocol.Message{Kind: k, G: 3, M: "v⊥", P: 2, K: 5, Aux: -7, From: 1}
		b := AppendMessage(nil, m)
		got, n, err := DecodeMessage(b)
		if err != nil {
			t.Fatalf("kind %v: decode: %v", k, err)
		}
		if n != len(b) {
			t.Errorf("kind %v: consumed %d of %d bytes", k, n, len(b))
		}
		if got != m {
			t.Errorf("kind %v: round trip %+v != %+v", k, got, m)
		}
	}
}

// TestMessageRoundTripRandom is the property test: a seeded corpus of
// adversarial field combinations must round-trip byte-exactly, and
// re-encoding the decoded message must reproduce the original bytes.
func TestMessageRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		m := randomMessage(rng)
		b := AppendMessage(nil, m)
		got, n, err := DecodeMessage(b)
		if err != nil {
			t.Fatalf("msg %d (%+v): decode: %v", i, m, err)
		}
		if n != len(b) || got != m {
			t.Fatalf("msg %d: round trip mismatch: %+v -> %+v (%d/%d bytes)", i, m, got, n, len(b))
		}
		if again := AppendMessage(nil, got); !bytes.Equal(again, b) {
			t.Fatalf("msg %d: re-encode differs", i)
		}
	}
}

// TestTraceEventRoundTripRandom is the same property over trace events.
func TestTraceEventRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		ev := randomEvent(rng)
		b := AppendTraceEvent(nil, ev)
		got, n, err := DecodeTraceEvent(b)
		if err != nil {
			t.Fatalf("event %d (%+v): decode: %v", i, ev, err)
		}
		if n != len(b) || got != ev {
			t.Fatalf("event %d: round trip mismatch: %+v -> %+v", i, ev, got)
		}
	}
}

// TestFrameRoundTrip covers the envelope: every frame kind, empty and
// non-empty payloads, extreme epoch/tick values.
func TestFrameRoundTrip(t *testing.T) {
	payload := AppendMessage(nil, protocol.Message{Kind: protocol.Echo, G: 1, M: "m", K: 2})
	frames := []Frame{
		{Kind: FrameHello, From: 0, Epoch: 0},
		{Kind: FrameMessage, From: 3, Epoch: 1<<63 + 17, Sent: 12345, Payload: payload},
		{Kind: FrameTrace, From: 127, Epoch: 42, Sent: -1, Payload: []byte{0}},
		{Kind: FrameBye, From: 6, Epoch: 9, Sent: 1 << 50},
	}
	for _, f := range frames {
		b := AppendFrame(nil, f)
		got, n, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", f.Kind, err)
		}
		if n != len(b) {
			t.Errorf("%v: consumed %d of %d bytes", f.Kind, n, len(b))
		}
		if got.Kind != f.Kind || got.From != f.From || got.Epoch != f.Epoch || got.Sent != f.Sent {
			t.Errorf("%v: envelope mismatch: %+v", f.Kind, got)
		}
		if !bytes.Equal(got.Payload, f.Payload) {
			t.Errorf("%v: payload mismatch", f.Kind)
		}
	}
}

// TestFrameStreamDecoding checks stream semantics: concatenated frames
// decode one after another by advancing the consumed count.
func TestFrameStreamDecoding(t *testing.T) {
	var stream []byte
	want := []Frame{
		{Kind: FrameHello, From: 2, Epoch: 7},
		{Kind: FrameMessage, From: 2, Epoch: 7, Sent: 10, Payload: []byte("abc")},
		{Kind: FrameBye, From: 2, Epoch: 7, Sent: 20},
	}
	for _, f := range want {
		stream = AppendFrame(stream, f)
	}
	off := 0
	for i, f := range want {
		got, n, err := DecodeFrame(stream[off:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != f.Kind || got.Sent != f.Sent {
			t.Errorf("frame %d: got %+v", i, got)
		}
		off += n
	}
	if off != len(stream) {
		t.Errorf("stream not fully consumed: %d of %d", off, len(stream))
	}
}

// TestDecodeTruncatedNeverPanics feeds every proper prefix of valid
// encodings to each decoder: all must error (no partial success at the
// full length minus one) and none may panic.
func TestDecodeTruncatedNeverPanics(t *testing.T) {
	m := protocol.Message{Kind: protocol.InitPrime, G: 5, M: "value", P: 3, K: 9, Aux: 1, From: 4}
	mb := AppendMessage(nil, m)
	for i := 0; i < len(mb); i++ {
		if _, _, err := DecodeMessage(mb[:i]); err == nil {
			t.Errorf("DecodeMessage accepted %d-byte prefix of %d", i, len(mb))
		}
	}
	ev := protocol.TraceEvent{Kind: protocol.EvDecide, Node: 1, RT: 100, M: "v"}
	eb := AppendTraceEvent(nil, ev)
	for i := 0; i < len(eb); i++ {
		if _, _, err := DecodeTraceEvent(eb[:i]); err == nil {
			t.Errorf("DecodeTraceEvent accepted %d-byte prefix of %d", i, len(eb))
		}
	}
	fb := AppendFrame(nil, Frame{Kind: FrameMessage, From: 1, Epoch: 3, Sent: 4, Payload: mb})
	for i := 0; i < len(fb); i++ {
		if _, _, err := DecodeFrame(fb[:i]); err == nil {
			t.Errorf("DecodeFrame accepted %d-byte prefix of %d", i, len(fb))
		}
	}
}

// TestDecodeCorruptFrames pins the corruption taxonomy: bad magic,
// unknown version, unknown kind, oversized declared lengths, overlong
// varints. All must return ErrCorrupt or ErrTruncated — never panic,
// never succeed.
func TestDecodeCorruptFrames(t *testing.T) {
	valid := AppendFrame(nil, Frame{Kind: FrameMessage, From: 1, Epoch: 2, Sent: 3, Payload: []byte("p")})
	overlong := bytes.Repeat([]byte{0x80}, 11) // varint with no terminator in 10 bytes

	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"bad magic", append([]byte{'x', 'y'}, valid[2:]...), ErrCorrupt},
		{"bad version", append([]byte{magic0, magic1, 99}, valid[3:]...), ErrCorrupt},
		{"zero kind", append([]byte{magic0, magic1, Version, 0}, valid[4:]...), ErrCorrupt},
		{"huge kind", append([]byte{magic0, magic1, Version, 200}, valid[4:]...), ErrCorrupt},
		{"overlong varint from", append([]byte{magic0, magic1, Version, byte(FrameHello)}, overlong...), ErrCorrupt},
		{"payload length lies", AppendFrame(nil, Frame{Kind: FrameHello})[:4+3], ErrTruncated},
		{"empty", nil, ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeFrame(tc.b)
			if err == nil {
				t.Fatal("decode succeeded on corrupt input")
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error %v, want %v", err, tc.want)
			}
		})
	}

	// Declared payload length beyond MaxPayload must be ErrCorrupt even
	// though the buffer is short (no allocation from the lie).
	huge := append([]byte{magic0, magic1, Version, byte(FrameMessage)}, 0) // from=0
	huge = appendUvarint(huge, 1)                                          // epoch
	huge = appendVarint(huge, 0)                                           // sent
	huge = appendUvarint(huge, MaxPayload+1)
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized payload length: %v, want ErrCorrupt", err)
	}

	// Oversized string length inside a message payload.
	msg := appendVarint(nil, int64(protocol.Echo))
	for i := 0; i < 5; i++ {
		msg = appendVarint(msg, 0)
	}
	msg = appendUvarint(msg, MaxValueLen+1)
	if _, _, err := DecodeMessage(msg); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized value length: %v, want ErrCorrupt", err)
	}
}

// TestAppendIsAllocationFrugal pins the codec's hot-path contract: with a
// pre-grown scratch buffer, encoding a message (and its frame) performs
// zero allocations.
func TestAppendIsAllocationFrugal(t *testing.T) {
	m := protocol.Message{Kind: protocol.Echo, G: 3, M: "steady-state", P: 1, K: 4, From: 2}
	scratch := make([]byte, 0, 256)
	if avg := testing.AllocsPerRun(200, func() {
		scratch = scratch[:0]
		scratch = AppendMessage(scratch, m)
	}); avg != 0 {
		t.Errorf("AppendMessage allocates %.1f/op with presized buffer, want 0", avg)
	}
	payload := AppendMessage(nil, m)
	frame := make([]byte, 0, 512)
	if avg := testing.AllocsPerRun(200, func() {
		frame = frame[:0]
		frame = AppendFrame(frame, Frame{Kind: FrameMessage, From: 2, Epoch: 5, Sent: 9, Payload: payload})
	}); avg != 0 {
		t.Errorf("AppendFrame allocates %.1f/op with presized buffer, want 0", avg)
	}
}

// TestFaultCmdRoundTrip round-trips the control-channel fault order
// (FrameFault payload) across representative and extreme field values,
// and rejects every truncation.
func TestFaultCmdRoundTrip(t *testing.T) {
	cases := []FaultCmd{
		{},
		{Seed: 1, SeverityPermille: 1000, InFlight: 8},
		{Seed: -(1 << 60), SeverityPermille: 1, InFlight: 1 << 20},
		{Seed: 1<<62 + 7, SeverityPermille: 500},
	}
	for _, c := range cases {
		b := AppendFaultCmd(nil, c)
		got, n, err := DecodeFaultCmd(b)
		if err != nil {
			t.Fatalf("%+v: decode: %v", c, err)
		}
		if n != len(b) || got != c {
			t.Fatalf("%+v: round trip -> %+v (%d/%d bytes)", c, got, n, len(b))
		}
		for i := 0; i < len(b); i++ {
			if _, _, err := DecodeFaultCmd(b[:i]); err == nil {
				t.Fatalf("%+v: accepted %d-byte prefix of %d", c, i, len(b))
			}
		}
	}
}

// TestCountersRoundTrip round-trips the FrameStats counter vector,
// rejects truncations, and refuses a lying length prefix beyond
// MaxCounters without allocating for it.
func TestCountersRoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{1, -1, 1 << 50, -(1 << 50), 42},
		make([]int64, MaxCounters),
	}
	for _, v := range cases {
		b := AppendCounters(nil, v)
		got, n, err := DecodeCounters(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", v, err)
		}
		if n != len(b) || len(got) != len(v) {
			t.Fatalf("%v: round trip -> %v (%d/%d bytes)", v, got, n, len(b))
		}
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("counter %d: %d != %d", i, got[i], v[i])
			}
		}
		for i := 0; i < len(b); i++ {
			if _, _, err := DecodeCounters(b[:i]); err == nil {
				t.Fatalf("%v: accepted %d-byte prefix of %d", v, i, len(b))
			}
		}
	}
	lie := appendUvarint(nil, MaxCounters+1)
	if _, _, err := DecodeCounters(lie); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized counter count: %v, want ErrCorrupt", err)
	}
}

// TestFrameEpochIncarnation pins the envelope behaviour the cross-epoch
// replay defense rests on: the epoch (cluster incarnation id) survives
// the round trip exactly for adjacent and extreme incarnations, so a
// receiver comparing f.Epoch against its own incarnation sees precisely
// what the sender stamped — byte-equal frames differing only in epoch
// differ on the wire.
func TestFrameEpochIncarnation(t *testing.T) {
	payload := AppendMessage(nil, protocol.Message{Kind: protocol.Echo, G: 1, M: "m"})
	epochs := []uint64{0, 1, 1 << 40, 1<<40 + 1, ^uint64(0)}
	encodings := make(map[string]uint64)
	for _, e := range epochs {
		b := AppendFrame(nil, Frame{Kind: FrameMessage, From: 2, Epoch: e, Sent: 7, Payload: payload})
		got, _, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		if got.Epoch != e {
			t.Fatalf("epoch %d decoded as %d", e, got.Epoch)
		}
		if prev, dup := encodings[string(b)]; dup {
			t.Fatalf("epochs %d and %d share an encoding", prev, e)
		}
		encodings[string(b)] = e
	}
}

// TestFrameClaimedSenderIsEnvelopeOnly pins what the forgery defense
// relies on: the claimed sender travels in the frame envelope (From),
// and decoding does not overwrite it from the payload — so a transport
// comparing the envelope against the connection's authenticated
// identity catches a forged claim even when the payload's own From
// field tells a third story.
func TestFrameClaimedSenderIsEnvelopeOnly(t *testing.T) {
	payload := AppendMessage(nil, protocol.Message{Kind: protocol.Support, G: 0, M: "x", From: 5})
	b := AppendFrame(nil, Frame{Kind: FrameMessage, From: 3, Epoch: 1, Sent: 2, Payload: payload})
	f, _, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if f.From != 3 {
		t.Fatalf("envelope sender %d, want the claimed 3", f.From)
	}
	m, _, err := DecodeMessage(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 5 {
		t.Fatalf("payload sender %d, want the encoded 5", m.From)
	}
}

// TestIncarnationEpochRoundTrip pins the envelope property the rolling-
// replacement design rests on: wire epoch ids one incarnation apart
// (epoch base + incarnation counter) survive the codec exactly at every
// magnitude — including the uint64 wrap of a negative epoch base, which
// is what the virtual clusters' zero-time epoch produces — and encode to
// distinct bytes, so a receiver comparing a decoded Epoch against its
// per-peer expectation reliably tells a node's old life from its new
// one.
func TestIncarnationEpochRoundTrip(t *testing.T) {
	payload := AppendMessage(nil, protocol.Message{Kind: protocol.Echo, G: 2, M: "roll", K: 1})
	negBase := int64(-6795364578871) // virtual zero-time epochs wrap a negative base
	bases := []uint64{
		0,               // degenerate base
		1 << 40,         // a plausible unix-nano magnitude
		uint64(negBase), // wrapped negative base
		^uint64(0) - 8,  // near the top, still room for incarnations
	}
	for _, base := range bases {
		var prev []byte
		for inc := uint64(0); inc < 3; inc++ {
			f := Frame{Kind: FrameMessage, From: 4, Epoch: base + inc, Sent: 7, Payload: payload}
			b := AppendFrame(nil, f)
			got, n, err := DecodeFrame(b)
			if err != nil || n != len(b) {
				t.Fatalf("base %d inc %d: decode: n=%d err=%v", base, inc, n, err)
			}
			if got.Epoch != base+inc {
				t.Fatalf("base %d inc %d: epoch %d survived as %d", base, inc, base+inc, got.Epoch)
			}
			if prev != nil && bytes.Equal(b, prev) {
				t.Fatalf("base %d inc %d: adjacent incarnations encode identically", base, inc)
			}
			prev = b
		}
	}
}
