package wire

import (
	"bytes"
	"testing"

	"ssbyz/internal/protocol"
)

// The fuzz harness of the codec. `go test` runs every seed below (plus
// anything under testdata/fuzz) as ordinary unit cases — that seeded
// corpus is what CI executes; `go test -fuzz FuzzDecodeFrame` explores
// live. The invariants are the transport's safety contract: decoding
// arbitrary bytes never panics, and anything that decodes cleanly
// re-encodes to a decode-equal value (no lossy acceptance).

// seedFrames returns valid encodings covering every frame kind.
func seedFrames() [][]byte {
	msg := AppendMessage(nil, protocol.Message{Kind: protocol.Ready, G: 2, M: "s⊥", P: 1, K: 3, Aux: -9, From: 5})
	ev := AppendTraceEvent(nil, protocol.TraceEvent{Kind: protocol.EvIAccept, Node: 3, RT: 777, Tau: -2, G: 1, M: "m", K: 2, TauG: 5, RTauG: 6, P: 4})
	fault := AppendFaultCmd(nil, FaultCmd{Seed: 99, SeverityPermille: 750, InFlight: 14})
	stats := AppendCounters(nil, []int64{5, 4, 0, 1, -1, 1 << 33})
	return [][]byte{
		AppendFrame(nil, Frame{Kind: FrameHello, From: 0, Epoch: 1}),
		AppendFrame(nil, Frame{Kind: FrameMessage, From: 1, Epoch: 1 << 62, Sent: 99, Payload: msg}),
		AppendFrame(nil, Frame{Kind: FrameTrace, From: 2, Epoch: 3, Sent: -4, Payload: ev}),
		AppendFrame(nil, Frame{Kind: FrameBye, From: 3, Epoch: 3, Sent: 1000}),
		AppendFrame(nil, Frame{Kind: FrameFault, From: 4, Epoch: 8, Sent: 12, Payload: fault}),
		AppendFrame(nil, Frame{Kind: FrameStats, From: 5, Epoch: 8, Sent: 13, Payload: stats}),
		// The incarnation-id envelope under attack: a replayed frame whose
		// epoch was bumped to the next incarnation, and maximal epochs.
		AppendFrame(nil, Frame{Kind: FrameMessage, From: 1, Epoch: (1 << 62) + 1, Sent: 99, Payload: msg}),
		AppendFrame(nil, Frame{Kind: FrameMessage, From: 1, Epoch: ^uint64(0), Sent: -99, Payload: msg}),
	}
}

func FuzzDecodeFrame(f *testing.F) {
	for _, b := range seedFrames() {
		f.Add(b)
		f.Add(b[:len(b)/2])                   // truncation
		f.Add(append([]byte{0xff}, b...))     // misaligned garbage
		f.Add(bytes.Repeat([]byte{0x80}, 32)) // overlong varints
	}
	f.Add([]byte{magic0, magic1, Version, byte(FrameMessage)})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		// Accepted input must re-encode to something decode-equal.
		re := AppendFrame(nil, fr)
		fr2, n2, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != len(re) || fr2.Kind != fr.Kind || fr2.From != fr.From ||
			fr2.Epoch != fr.Epoch || fr2.Sent != fr.Sent || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("re-encode not stable: %+v vs %+v", fr, fr2)
		}
	})
}

func FuzzDecodeMessage(f *testing.F) {
	f.Add(AppendMessage(nil, protocol.Message{Kind: protocol.Initiator, G: 1, M: "v"}))
	f.Add(AppendMessage(nil, protocol.Message{Kind: protocol.EchoPrime, G: -1, M: "", P: 9, K: 1 << 30, Aux: -1, From: 2}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 20))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, n, err := DecodeMessage(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		re := AppendMessage(nil, m)
		m2, _, err := DecodeMessage(re)
		if err != nil || m2 != m {
			t.Fatalf("re-encode not stable: %+v vs %+v (%v)", m, m2, err)
		}
	})
}

func FuzzDecodeTraceEvent(f *testing.F) {
	f.Add(AppendTraceEvent(nil, protocol.TraceEvent{Kind: protocol.EvDecide, Node: 0, RT: 1, M: "x"}))
	f.Add(AppendTraceEvent(nil, protocol.TraceEvent{Kind: protocol.EvExpire, Node: 30, RT: -7, Tau: 8, G: 2, K: -3, TauG: 1, RTauG: 2, P: 6}))
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		ev, n, err := DecodeTraceEvent(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		re := AppendTraceEvent(nil, ev)
		ev2, _, err := DecodeTraceEvent(re)
		if err != nil || ev2 != ev {
			t.Fatalf("re-encode not stable: %+v vs %+v (%v)", ev, ev2, err)
		}
	})
}

// FuzzMessageFields drives the encoder from raw field values rather than
// raw bytes: any field combination must round-trip byte-exactly.
func FuzzMessageFields(f *testing.F) {
	f.Add(int64(1), int64(0), int64(0), int64(0), int64(0), int64(0), "v")
	f.Add(int64(9), int64(-1), int64(127), int64(1<<40), int64(-(1 << 40)), int64(3), "")
	f.Fuzz(func(t *testing.T, kind, g, p, k, aux, from int64, m string) {
		if len(m) > MaxValueLen {
			return // encoder contract: values fit the wire bound
		}
		msg := protocol.Message{
			Kind: protocol.MsgKind(kind), G: protocol.NodeID(g), M: protocol.Value(m),
			P: protocol.NodeID(p), K: int(k), Aux: int(aux), From: protocol.NodeID(from),
		}
		b := AppendMessage(nil, msg)
		got, n, err := DecodeMessage(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(b) || got != msg {
			t.Fatalf("round trip mismatch: %+v -> %+v", msg, got)
		}
	})
}

// FuzzDecodeFaultCmd: arbitrary bytes never panic the fault-command
// decoder, and accepted commands re-encode decode-equal.
func FuzzDecodeFaultCmd(f *testing.F) {
	f.Add(AppendFaultCmd(nil, FaultCmd{Seed: 7, SeverityPermille: 1000, InFlight: 8}))
	f.Add(AppendFaultCmd(nil, FaultCmd{Seed: -(1 << 55)}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x80}, 16))
	f.Fuzz(func(t *testing.T, b []byte) {
		c, n, err := DecodeFaultCmd(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		re := AppendFaultCmd(nil, c)
		c2, _, err := DecodeFaultCmd(re)
		if err != nil || c2 != c {
			t.Fatalf("re-encode not stable: %+v vs %+v (%v)", c, c2, err)
		}
	})
}

// buildBatch coalesces the given frame encodings the way the transport
// does: concatenated into one scratch buffer with end offsets.
func buildBatch(from protocol.NodeID, epoch uint64, sent int64, frames [][]byte) []byte {
	var buf []byte
	var ends []int
	for _, fb := range frames {
		buf = append(buf, fb...)
		ends = append(ends, len(buf))
	}
	return AppendBatch(nil, from, epoch, sent, buf, ends)
}

// FuzzDecodeBatch is fuzz target #5: the coalesced batch-envelope
// decoder. Invariants on arbitrary bytes: no panic, the reader
// terminates within MaxBatchFrames iterations, every yielded inner
// frame lies inside the payload, and a cleanly-read batch re-packs to a
// container whose inner frames are byte-identical — so a frame can
// never silently migrate to a different sender (attribution lives in
// the inner bytes, which round-trip exactly).
func FuzzDecodeBatch(f *testing.F) {
	inner := seedFrames()
	whole := buildBatch(1, 7, 42, inner)
	f.Add(whole)
	f.Add(whole[:len(whole)-3])             // truncation mid-inner-frame
	f.Add(buildBatch(2, 7, 43, inner[:1]))  // single-frame batch
	f.Add(buildBatch(3, 7, 44, [][]byte{})) // zero count: corrupt
	// Corrupt an inner length prefix deep in the container.
	mangled := append([]byte(nil), whole...)
	mangled[len(mangled)/2] = 0xff
	f.Add(mangled)
	// Oversized batch count prefix on an otherwise plausible envelope.
	f.Add(AppendFrame(nil, Frame{Kind: FrameBatch, From: 1, Epoch: 7,
		Payload: appendUvarint(nil, MaxBatchFrames+1)}))
	f.Add(bytes.Repeat([]byte{0x80}, 40))
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil || fr.Kind != FrameBatch {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		r, err := ReadBatch(fr.Payload)
		if err != nil {
			return
		}
		var innerCopies [][]byte
		steps := 0
		for {
			fb, ok := r.Next()
			if !ok {
				break
			}
			if steps++; steps > MaxBatchFrames {
				t.Fatalf("reader did not terminate within MaxBatchFrames")
			}
			if len(fb) > len(fr.Payload) {
				t.Fatalf("inner frame larger than payload: %d > %d", len(fb), len(fr.Payload))
			}
			innerCopies = append(innerCopies, append([]byte(nil), fb...))
		}
		if r.Err() != nil {
			return // container framing broke mid-way; yielded frames stand
		}
		re := buildBatch(fr.From, fr.Epoch, fr.Sent, innerCopies)
		fr2, _, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		r2, err := ReadBatch(fr2.Payload)
		if err != nil {
			t.Fatalf("re-encoded batch does not open: %v", err)
		}
		for i := 0; ; i++ {
			fb, ok := r2.Next()
			if !ok {
				if i != len(innerCopies) {
					t.Fatalf("re-encoded batch yields %d frames, want %d", i, len(innerCopies))
				}
				break
			}
			if !bytes.Equal(fb, innerCopies[i]) {
				t.Fatalf("inner frame %d not byte-stable (sender attribution at risk)", i)
			}
		}
	})
}

// TestBatchAttribution pins the mis-attribution invariant directly: a
// batch built from frames of distinct senders yields each inner frame
// with its own From intact, independent of the container's envelope
// sender.
func TestBatchAttribution(t *testing.T) {
	frames := seedFrames()
	b := buildBatch(99, 5, 1, frames)
	fr, _, err := DecodeFrame(b)
	if err != nil || fr.Kind != FrameBatch || fr.From != 99 {
		t.Fatalf("container decode: %+v, %v", fr, err)
	}
	r, err := ReadBatch(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		fb, ok := r.Next()
		if !ok {
			if err := r.Err(); err != nil {
				t.Fatal(err)
			}
			if i != len(frames) {
				t.Fatalf("yielded %d frames, want %d", i, len(frames))
			}
			break
		}
		want, _, err := DecodeFrame(frames[i])
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := DecodeFrame(fb)
		if err != nil {
			t.Fatalf("inner frame %d: %v", i, err)
		}
		if got.From != want.From || got.Kind != want.Kind || got.Epoch != want.Epoch {
			t.Fatalf("inner frame %d mis-attributed: got %+v want %+v", i, got, want)
		}
	}
}

// TestBatchCorruptInnerContentSparesMates pins the battery-preserving
// property the transport depends on: flipping a byte *inside* one inner
// frame's bytes (the chaos layer's corruption model) leaves the
// container framing intact, so every other inner frame still decodes.
func TestBatchCorruptInnerContentSparesMates(t *testing.T) {
	frames := seedFrames()
	b := buildBatch(1, 5, 1, frames)
	fr, _, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	// Locate inner frame #2 within the payload and trash its magic.
	r, _ := ReadBatch(fr.Payload)
	idx := 0
	for {
		fb, ok := r.Next()
		if !ok {
			t.Fatal("batch exhausted before frame 2")
		}
		if idx == 2 {
			fb[0] ^= 0xff // aliases the container bytes
			break
		}
		idx++
	}
	r2, err := ReadBatch(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	decoded, dropped := 0, 0
	for {
		fb, ok := r2.Next()
		if !ok {
			break
		}
		if _, _, err := DecodeFrame(fb); err != nil {
			dropped++
		} else {
			decoded++
		}
	}
	if err := r2.Err(); err != nil {
		t.Fatalf("container framing must survive inner content corruption: %v", err)
	}
	if dropped != 1 || decoded != len(frames)-1 {
		t.Fatalf("decoded=%d dropped=%d, want %d/1", decoded, dropped, len(frames)-1)
	}
}

// FuzzDecodeCounters: the stats-vector decoder neither panics nor
// allocates past MaxCounters on arbitrary bytes, and accepted vectors
// re-encode decode-equal.
func FuzzDecodeCounters(f *testing.F) {
	f.Add(AppendCounters(nil, []int64{1, 2, 3}))
	f.Add(AppendCounters(nil, nil))
	f.Add(appendUvarint(nil, MaxCounters+1))
	f.Add(bytes.Repeat([]byte{0xff}, 24))
	f.Fuzz(func(t *testing.T, b []byte) {
		v, n, err := DecodeCounters(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) || len(v) > MaxCounters {
			t.Fatalf("consumed %d of %d bytes, %d counters", n, len(b), len(v))
		}
		re := AppendCounters(nil, v)
		v2, _, err := DecodeCounters(re)
		if err != nil || len(v2) != len(v) {
			t.Fatalf("re-encode not stable: %v vs %v (%v)", v, v2, err)
		}
		for i := range v {
			if v2[i] != v[i] {
				t.Fatalf("counter %d: %d != %d", i, v2[i], v[i])
			}
		}
	})
}
