package wire

import (
	"bytes"
	"testing"

	"ssbyz/internal/protocol"
)

// The fuzz harness of the codec. `go test` runs every seed below (plus
// anything under testdata/fuzz) as ordinary unit cases — that seeded
// corpus is what CI executes; `go test -fuzz FuzzDecodeFrame` explores
// live. The invariants are the transport's safety contract: decoding
// arbitrary bytes never panics, and anything that decodes cleanly
// re-encodes to a decode-equal value (no lossy acceptance).

// seedFrames returns valid encodings covering every frame kind.
func seedFrames() [][]byte {
	msg := AppendMessage(nil, protocol.Message{Kind: protocol.Ready, G: 2, M: "s⊥", P: 1, K: 3, Aux: -9, From: 5})
	ev := AppendTraceEvent(nil, protocol.TraceEvent{Kind: protocol.EvIAccept, Node: 3, RT: 777, Tau: -2, G: 1, M: "m", K: 2, TauG: 5, RTauG: 6, P: 4})
	fault := AppendFaultCmd(nil, FaultCmd{Seed: 99, SeverityPermille: 750, InFlight: 14})
	stats := AppendCounters(nil, []int64{5, 4, 0, 1, -1, 1 << 33})
	return [][]byte{
		AppendFrame(nil, Frame{Kind: FrameHello, From: 0, Epoch: 1}),
		AppendFrame(nil, Frame{Kind: FrameMessage, From: 1, Epoch: 1 << 62, Sent: 99, Payload: msg}),
		AppendFrame(nil, Frame{Kind: FrameTrace, From: 2, Epoch: 3, Sent: -4, Payload: ev}),
		AppendFrame(nil, Frame{Kind: FrameBye, From: 3, Epoch: 3, Sent: 1000}),
		AppendFrame(nil, Frame{Kind: FrameFault, From: 4, Epoch: 8, Sent: 12, Payload: fault}),
		AppendFrame(nil, Frame{Kind: FrameStats, From: 5, Epoch: 8, Sent: 13, Payload: stats}),
		// The incarnation-id envelope under attack: a replayed frame whose
		// epoch was bumped to the next incarnation, and maximal epochs.
		AppendFrame(nil, Frame{Kind: FrameMessage, From: 1, Epoch: (1 << 62) + 1, Sent: 99, Payload: msg}),
		AppendFrame(nil, Frame{Kind: FrameMessage, From: 1, Epoch: ^uint64(0), Sent: -99, Payload: msg}),
	}
}

func FuzzDecodeFrame(f *testing.F) {
	for _, b := range seedFrames() {
		f.Add(b)
		f.Add(b[:len(b)/2])                   // truncation
		f.Add(append([]byte{0xff}, b...))     // misaligned garbage
		f.Add(bytes.Repeat([]byte{0x80}, 32)) // overlong varints
	}
	f.Add([]byte{magic0, magic1, Version, byte(FrameMessage)})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		// Accepted input must re-encode to something decode-equal.
		re := AppendFrame(nil, fr)
		fr2, n2, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != len(re) || fr2.Kind != fr.Kind || fr2.From != fr.From ||
			fr2.Epoch != fr.Epoch || fr2.Sent != fr.Sent || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("re-encode not stable: %+v vs %+v", fr, fr2)
		}
	})
}

func FuzzDecodeMessage(f *testing.F) {
	f.Add(AppendMessage(nil, protocol.Message{Kind: protocol.Initiator, G: 1, M: "v"}))
	f.Add(AppendMessage(nil, protocol.Message{Kind: protocol.EchoPrime, G: -1, M: "", P: 9, K: 1 << 30, Aux: -1, From: 2}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 20))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, n, err := DecodeMessage(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		re := AppendMessage(nil, m)
		m2, _, err := DecodeMessage(re)
		if err != nil || m2 != m {
			t.Fatalf("re-encode not stable: %+v vs %+v (%v)", m, m2, err)
		}
	})
}

func FuzzDecodeTraceEvent(f *testing.F) {
	f.Add(AppendTraceEvent(nil, protocol.TraceEvent{Kind: protocol.EvDecide, Node: 0, RT: 1, M: "x"}))
	f.Add(AppendTraceEvent(nil, protocol.TraceEvent{Kind: protocol.EvExpire, Node: 30, RT: -7, Tau: 8, G: 2, K: -3, TauG: 1, RTauG: 2, P: 6}))
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		ev, n, err := DecodeTraceEvent(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		re := AppendTraceEvent(nil, ev)
		ev2, _, err := DecodeTraceEvent(re)
		if err != nil || ev2 != ev {
			t.Fatalf("re-encode not stable: %+v vs %+v (%v)", ev, ev2, err)
		}
	})
}

// FuzzMessageFields drives the encoder from raw field values rather than
// raw bytes: any field combination must round-trip byte-exactly.
func FuzzMessageFields(f *testing.F) {
	f.Add(int64(1), int64(0), int64(0), int64(0), int64(0), int64(0), "v")
	f.Add(int64(9), int64(-1), int64(127), int64(1<<40), int64(-(1 << 40)), int64(3), "")
	f.Fuzz(func(t *testing.T, kind, g, p, k, aux, from int64, m string) {
		if len(m) > MaxValueLen {
			return // encoder contract: values fit the wire bound
		}
		msg := protocol.Message{
			Kind: protocol.MsgKind(kind), G: protocol.NodeID(g), M: protocol.Value(m),
			P: protocol.NodeID(p), K: int(k), Aux: int(aux), From: protocol.NodeID(from),
		}
		b := AppendMessage(nil, msg)
		got, n, err := DecodeMessage(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(b) || got != msg {
			t.Fatalf("round trip mismatch: %+v -> %+v", msg, got)
		}
	})
}

// FuzzDecodeFaultCmd: arbitrary bytes never panic the fault-command
// decoder, and accepted commands re-encode decode-equal.
func FuzzDecodeFaultCmd(f *testing.F) {
	f.Add(AppendFaultCmd(nil, FaultCmd{Seed: 7, SeverityPermille: 1000, InFlight: 8}))
	f.Add(AppendFaultCmd(nil, FaultCmd{Seed: -(1 << 55)}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x80}, 16))
	f.Fuzz(func(t *testing.T, b []byte) {
		c, n, err := DecodeFaultCmd(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		re := AppendFaultCmd(nil, c)
		c2, _, err := DecodeFaultCmd(re)
		if err != nil || c2 != c {
			t.Fatalf("re-encode not stable: %+v vs %+v (%v)", c, c2, err)
		}
	})
}

// FuzzDecodeCounters: the stats-vector decoder neither panics nor
// allocates past MaxCounters on arbitrary bytes, and accepted vectors
// re-encode decode-equal.
func FuzzDecodeCounters(f *testing.F) {
	f.Add(AppendCounters(nil, []int64{1, 2, 3}))
	f.Add(AppendCounters(nil, nil))
	f.Add(appendUvarint(nil, MaxCounters+1))
	f.Add(bytes.Repeat([]byte{0xff}, 24))
	f.Fuzz(func(t *testing.T, b []byte) {
		v, n, err := DecodeCounters(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) || len(v) > MaxCounters {
			t.Fatalf("consumed %d of %d bytes, %d counters", n, len(b), len(v))
		}
		re := AppendCounters(nil, v)
		v2, _, err := DecodeCounters(re)
		if err != nil || len(v2) != len(v) {
			t.Fatalf("re-encode not stable: %v vs %v (%v)", v, v2, err)
		}
		for i := range v {
			if v2[i] != v[i] {
				t.Fatalf("counter %d: %d != %d", i, v2[i], v[i])
			}
		}
	})
}
