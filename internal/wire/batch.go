package wire

import (
	"fmt"

	"ssbyz/internal/protocol"
)

// Batch container (version 1): the coalesced multi-frame envelope of the
// wire-rate hot path (DESIGN.md §11). Frames destined for the same
// (link, tick) are
// packed into one FrameBatch frame whose payload is
//
//	COUNT(uvarint) then COUNT × ( LEN(uvarint) FRAME-BYTES )
//
// where each FRAME-BYTES is a complete, self-delimiting AppendFrame
// encoding. The explicit per-frame length prefix means the receiver can
// skip over an inner frame whose *content* is corrupt and still deliver
// its batch-mates — corruption of one coalesced frame must not drop the
// datagram (the chaos layer corrupts inner frames, never the container
// framing, so the per-class injected-AND-rejected accounting is
// preserved under batching). A corrupt length prefix, by contrast,
// destroys the framing from that point on: the reader stops with an
// error and the already-yielded frames stand.
//
// The container's own envelope From/Epoch/Sent mirror the sender and
// the coalescing tick for observability, but carry no authority: every
// inner frame is authenticated, epoch-checked, deadline-checked and
// deduplicated individually, exactly as if it had arrived in its own
// datagram.

// MaxBatchFrames bounds the inner-frame count of one batch container; a
// corrupt count prefix larger than this is a decode error, not a loop.
const MaxBatchFrames = 512

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendBatch appends one FrameBatch envelope coalescing the given inner
// frames to dst and returns the extended slice. frames holds the
// concatenated AppendFrame encodings; ends[i] is the end offset of inner
// frame i, so the builder can accumulate frames back-to-back in one
// scratch buffer with no per-frame allocation. from/epoch/sent stamp the
// container's envelope (the sender and its coalescing tick).
func AppendBatch(dst []byte, from protocol.NodeID, epoch uint64, sent int64, frames []byte, ends []int) []byte {
	psize := uvarintLen(uint64(len(ends)))
	start := 0
	for _, e := range ends {
		l := e - start
		psize += uvarintLen(uint64(l)) + l
		start = e
	}
	dst = append(dst, magic0, magic1, Version, byte(FrameBatch))
	dst = appendVarint(dst, int64(from))
	dst = appendUvarint(dst, epoch)
	dst = appendVarint(dst, sent)
	dst = appendUvarint(dst, uint64(psize))
	dst = appendUvarint(dst, uint64(len(ends)))
	start = 0
	for _, e := range ends {
		dst = appendUvarint(dst, uint64(e-start))
		dst = append(dst, frames[start:e]...)
		start = e
	}
	return dst
}

// BatchReader iterates the inner frames of a FrameBatch payload without
// allocating: each Next returns a subslice of the payload (aliasing it —
// copy before retaining, as with Frame.Payload).
type BatchReader struct {
	b         []byte
	remaining int
	off       int
	err       error
}

// ReadBatch opens a reader over a FrameBatch frame's payload. A zero
// count is corrupt (a batch exists only because it carries frames), as
// is a count beyond MaxBatchFrames.
func ReadBatch(payload []byte) (BatchReader, error) {
	count, off, err := uvarint(payload, 0)
	if err != nil {
		return BatchReader{}, err
	}
	if count == 0 || count > MaxBatchFrames {
		return BatchReader{}, fmt.Errorf("%w: batch frame count %d (max %d)", ErrCorrupt, count, MaxBatchFrames)
	}
	return BatchReader{b: payload, remaining: int(count), off: off}, nil
}

// Next returns the next inner frame's bytes. It returns false when the
// batch is exhausted or the container framing is invalid from this point
// on — check Err to distinguish. Frames yielded before an error stand:
// the transport delivers them and counts the rest as one decode drop.
func (r *BatchReader) Next() ([]byte, bool) {
	if r.err != nil || r.remaining == 0 {
		return nil, false
	}
	l, off, err := uvarint(r.b, r.off)
	if err != nil {
		r.err = err
		return nil, false
	}
	if l > MaxPayload {
		r.err = fmt.Errorf("%w: inner frame length %d exceeds %d", ErrCorrupt, l, MaxPayload)
		return nil, false
	}
	if off+int(l) > len(r.b) {
		r.err = ErrTruncated
		return nil, false
	}
	r.remaining--
	r.off = off + int(l)
	if r.remaining == 0 && r.off != len(r.b) {
		// Trailing bytes after the declared last frame: container corruption
		// (one batch per datagram, like the one-frame-per-datagram rule).
		// The final frame itself parsed cleanly and is still yielded; Err
		// reports the problem.
		r.err = fmt.Errorf("%w: %d trailing bytes after batch", ErrCorrupt, len(r.b)-r.off)
	}
	return r.b[off : off+int(l)], true
}

// Err reports the container-framing error that stopped iteration, if
// any. Inner-frame *content* errors are not container errors — they
// surface from DecodeFrame on the yielded bytes and affect only that
// frame.
func (r *BatchReader) Err() error { return r.err }
