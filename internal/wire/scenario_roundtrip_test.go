package wire_test

// External test package: the scenario engine imports the live transport,
// which imports the codec, so this corpus test must live outside
// `package wire` to avoid a test-archive import cycle.

import (
	"testing"

	"ssbyz/internal/scenario"
	"ssbyz/internal/wire"
)

// TestTraceEventRoundTripGeneratedScenarios round-trips every trace event
// a real adversarial run produces: the scenario engine's seeded generator
// supplies the corpus, so the codec is exercised against genuine protocol
// traffic (decide/abort/accept/invoke/pulse events with real anchors),
// not just synthetic field draws.
func TestTraceEventRoundTripGeneratedScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs generated scenarios; skipped in -short")
	}
	total := 0
	for seed := int64(0); seed < 3; seed++ {
		sp := scenario.Generate(seed, 4)
		res, err := scenario.Run(sp)
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		for _, ev := range res.Rec.Events() {
			b := wire.AppendTraceEvent(nil, ev)
			got, n, err := wire.DecodeTraceEvent(b)
			if err != nil {
				t.Fatalf("seed %d: decode %+v: %v", seed, ev, err)
			}
			if n != len(b) || got != ev {
				t.Fatalf("seed %d: round trip mismatch: %+v -> %+v", seed, ev, got)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("generated scenarios produced no trace events")
	}
}
