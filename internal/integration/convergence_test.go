package integration

import (
	"fmt"
	"testing"

	"ssbyz/internal/check"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
	"ssbyz/internal/transient"
)

// TestConvergenceFromArbitraryState is the paper's headline property: from
// a fully corrupted state (severity 1: every Initiator-Accept variable,
// broadcast session, agreement control state, and in-flight garbage), an
// agreement initiated after Δstb must satisfy Validity and Agreement.
func TestConvergenceFromArbitraryState(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			pp := protocol.DefaultParams(7)
			t0 := simtime.Real(pp.DeltaStb())
			res, err := sim.Run(sim.Scenario{
				Params: pp,
				Seed:   seed,
				Corrupt: func(w *simnet.World) {
					transient.Corrupt(w, transient.Config{Seed: seed + 1000, Severity: 1})
				},
				Initiations: []sim.Initiation{{At: t0, G: 1, Value: "recovered"}},
				RunFor:      simtime.Duration(t0) + 3*pp.DeltaAgr(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.InitErrs) > 0 {
				t.Fatalf("initiation refused: %v", res.InitErrs)
			}
			if vs := check.Validity(res, 1, t0, "recovered"); len(vs) > 0 {
				t.Fatalf("validity violated after Δstb: %v", vs)
			}
			if vs := check.Agreement(res, 1); len(vs) > 0 {
				t.Fatalf("agreement violated after Δstb: %v", vs)
			}
		})
	}
}

// TestConvergenceWithByzantineAndTransient combines both fault models:
// arbitrary initial state AND f permanently Byzantine nodes.
func TestConvergenceWithByzantineAndTransient(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		pp := protocol.DefaultParams(7)
		t0 := simtime.Real(pp.DeltaStb())
		res, err := sim.Run(sim.Scenario{
			Params: pp,
			Seed:   seed,
			Faulty: map[protocol.NodeID]protocol.Node{5: nil, 6: nil},
			Corrupt: func(w *simnet.World) {
				transient.Corrupt(w, transient.Config{Seed: seed * 7, Severity: 1})
			},
			Initiations: []sim.Initiation{{At: t0, G: 0, Value: "v"}},
			RunFor:      simtime.Duration(t0) + 3*pp.DeltaAgr(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.InitErrs) > 0 {
			t.Fatalf("seed %d: initiation refused: %v", seed, res.InitErrs)
		}
		if vs := check.Validity(res, 0, t0, "v"); len(vs) > 0 {
			t.Fatalf("seed %d: validity violated: %v", seed, vs)
		}
	}
}

// TestNoSplitDuringRecovery: even before stabilization completes, correct
// nodes must never decide different values for the same General in the
// same wave once the network is coherent (the corrupted state may cause
// aborts or missed agreements, but authenticated quorums prevent splits).
func TestNoSplitDuringRecovery(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		pp := protocol.DefaultParams(7)
		res, err := sim.Run(sim.Scenario{
			Params: pp,
			Seed:   seed,
			Corrupt: func(w *simnet.World) {
				transient.Corrupt(w, transient.Config{Seed: seed, Severity: 1})
			},
			RunFor: pp.DeltaStb(),
		})
		if err != nil {
			t.Fatal(err)
		}
		// No initiations happened; count conflicting simultaneous decisions.
		for g := 0; g < pp.N; g++ {
			decs := res.Decisions(protocol.NodeID(g))
			for i := 0; i < len(decs); i++ {
				for j := i + 1; j < len(decs); j++ {
					a, b := decs[i], decs[j]
					if !a.Decided || !b.Decided || a.Value == b.Value {
						continue
					}
					gap := a.RT - b.RT
					if gap < 0 {
						gap = -gap
					}
					if gap <= 3*simtime.Real(pp.D) {
						t.Fatalf("seed %d: split during recovery: G%d nodes %d,%d decided %q vs %q within 3d",
							seed, g, a.Node, b.Node, a.Value, b.Value)
					}
				}
			}
		}
	}
}
