package integration

import (
	"math/rand"
	"testing"

	"ssbyz/internal/byzantine"
	"ssbyz/internal/check"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
)

func TestCustomDelayFn(t *testing.T) {
	pp := protocol.DefaultParams(4)
	fixed := pp.D / 3
	sc := sim.Scenario{
		Params: pp,
		Delay: func(from, to protocol.NodeID, m protocol.Message, rng *rand.Rand) simtime.Duration {
			return fixed
		},
		Initiations: []sim.Initiation{{At: simtime.Real(2 * pp.D), G: 0, Value: "v"}},
	}
	res, err := sim.Run(sc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if vs := check.Validity(res, 0, simtime.Real(2*pp.D), "v"); len(vs) != 0 {
		t.Errorf("violations with custom delay: %v", vs)
	}
}

// TestFuzzRandomAdversaries is the core safety fuzz: across many seeds,
// random adversary placements and strategies, the Agreement and IA-4
// properties must never break. This is the property-based equivalent of
// the paper's "malicious nodes incessantly hamper stabilization".
func TestFuzzRandomAdversaries(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep skipped in -short")
	}
	pp := protocol.DefaultParams(7)
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		faulty := make(map[protocol.NodeID]protocol.Node)
		// Pick f random distinct faulty nodes with random strategies.
		for len(faulty) < pp.F {
			id := protocol.NodeID(rng.Intn(pp.N))
			if _, ok := faulty[id]; ok {
				continue
			}
			switch rng.Intn(6) {
			case 0:
				faulty[id] = &byzantine.Silent{}
			case 1:
				faulty[id] = &byzantine.Yeasayer{}
			case 2:
				faulty[id] = &byzantine.Equivocator{
					Values: []protocol.Value{"a", "b"},
					At:     simtime.Duration(rng.Intn(int(4 * pp.D))),
				}
			case 3:
				faulty[id] = &byzantine.LateSupporter{G: 0, HoldLocal: simtime.Duration(rng.Intn(int(6 * pp.D)))}
			case 4:
				faulty[id] = &byzantine.Spammer{}
			case 5:
				faulty[id] = &byzantine.Replayer{Delay: simtime.Duration(rng.Intn(int(pp.DeltaRmv())))}
			}
		}
		sc := sim.Scenario{
			Params: pp,
			Seed:   seed,
			Faulty: faulty,
			RunFor: 5 * pp.DeltaAgr(),
		}
		// A correct General initiates if node 0 is correct.
		if _, isFaulty := faulty[0]; !isFaulty {
			sc.Initiations = []sim.Initiation{{At: simtime.Real(2 * pp.D), G: 0, Value: "real"}}
		}
		res, err := sim.Run(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Check every General the adversaries may have impersonated.
		for g := 0; g < pp.N; g++ {
			vs := check.Agreement(res, protocol.NodeID(g))
			vs = append(vs, check.IAUniqueness(res, protocol.NodeID(g))...)
			vs = append(vs, check.Separation(res, protocol.NodeID(g))...)
			if len(vs) != 0 {
				t.Errorf("seed %d General %d: %v", seed, g, vs)
			}
		}
	}
}
