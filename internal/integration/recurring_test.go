package integration

import (
	"fmt"
	"testing"

	"ssbyz/internal/check"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
	"ssbyz/internal/transient"
)

// TestRecurringAgreementsNoDuplicateDecides is the regression test for the
// stale-acceptance bug: with back-to-back agreements spaced at Δ0 + 2d,
// straggler echo′ residue of wave k used to replay under wave k+1's anchor
// and drive a SECOND decide of value k at the same node (violating the
// one-return-per-agreement contract and the Timeliness-4 separation).
// Every (node, value) pair must decide exactly once.
func TestRecurringAgreementsNoDuplicateDecides(t *testing.T) {
	pp := protocol.DefaultParams(7)
	spacing := pp.Delta0() + 2*pp.D
	var inits []sim.Initiation
	for i := 0; i < 10; i++ {
		inits = append(inits, sim.Initiation{
			At:    simtime.Real(simtime.Duration(i) * spacing),
			G:     0,
			Value: protocol.Value(fmt.Sprintf("r%d", i)),
		})
	}
	for seed := int64(0); seed < 5; seed++ {
		res, err := sim.Run(sim.Scenario{
			Params:      pp,
			Seed:        seed,
			Initiations: inits,
			RunFor:      simtime.Duration(len(inits))*spacing + 3*pp.DeltaAgr(),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		type key struct {
			node protocol.NodeID
			v    protocol.Value
		}
		counts := make(map[key]int)
		for _, d := range res.Decisions(0) {
			if d.Decided {
				counts[key{d.Node, d.Value}]++
			}
		}
		for i := range inits {
			for _, node := range res.Correct {
				k := key{node, inits[i].Value}
				if counts[k] != 1 {
					t.Errorf("seed %d: node %d decided %q %d times, want exactly 1",
						seed, node, inits[i].Value, counts[k])
				}
			}
		}
	}
}

// TestRecurringAgreementsAfterCorruption combines the two stressors: full
// state corruption at t=0 plus the General retrying a fresh value every
// Δ0+2d. Convergence to per-value unanimous, validity-window decisions
// must happen within Δstb of coherence.
func TestRecurringAgreementsAfterCorruption(t *testing.T) {
	pp := protocol.DefaultParams(7)
	spacing := pp.Delta0() + 2*pp.D
	runFor := pp.DeltaStb() + 6*pp.DeltaAgr()
	var inits []sim.Initiation
	for i := 0; simtime.Duration(i)*spacing < runFor-pp.DeltaAgr(); i++ {
		inits = append(inits, sim.Initiation{
			At:    simtime.Real(simtime.Duration(i) * spacing),
			G:     0,
			Value: protocol.Value(fmt.Sprintf("rc%d", i)),
		})
	}
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		res, err := sim.Run(sim.Scenario{
			Params:      pp,
			Seed:        seed,
			Initiations: inits,
			Corrupt: func(w *simnet.World) {
				transient.Corrupt(w, transient.Config{Seed: seed + 500, Severity: 1})
			},
			RunFor: runFor,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		converged := simtime.Real(-1)
		for i, init := range inits {
			if _, refused := res.InitErrs[i]; refused {
				continue
			}
			if ok, last := verifiedInitiation(res, init, pp); ok {
				converged = last
				break
			}
		}
		if converged < 0 {
			t.Errorf("seed %d: never converged to a verified agreement", seed)
			continue
		}
		if converged > simtime.Real(pp.DeltaStb()) {
			t.Errorf("seed %d: first verified agreement at %d > Δstb=%d", seed, converged, pp.DeltaStb())
		}
		// After convergence the system must stay converged (closure): every
		// later non-refused initiation is verified too.
		for i, init := range inits {
			if init.At <= converged || simtime.Duration(init.At) >= runFor-3*pp.DeltaAgr() {
				continue
			}
			if _, refused := res.InitErrs[i]; refused {
				t.Errorf("seed %d: initiation %q refused after convergence", seed, init.Value)
				continue
			}
			if ok, _ := verifiedInitiation(res, init, pp); !ok {
				t.Errorf("seed %d: initiation %q at %d not verified after convergence", seed, init.Value, init.At)
			}
		}
	}
}

// verifiedInitiation reports whether every correct node decided the
// initiation's value within the validity window, and the last decision
// instant.
func verifiedInitiation(res *sim.Result, init sim.Initiation, pp protocol.Params) (bool, simtime.Real) {
	nodes := make(map[protocol.NodeID]bool)
	var last simtime.Real
	for _, d := range res.Decisions(0) {
		if !d.Decided || d.Value != init.Value {
			continue
		}
		if d.RT < init.At-simtime.Real(pp.D) || d.RT > init.At+4*simtime.Real(pp.D) {
			return false, 0
		}
		nodes[d.Node] = true
		if d.RT > last {
			last = d.RT
		}
	}
	return len(nodes) == len(res.Correct), last
}

// TestSeparationAcrossRecurringAgreements runs the Timeliness-4 checker
// over the whole recurring-agreement trace: consecutive same-General
// decisions must respect the separation bounds.
func TestSeparationAcrossRecurringAgreements(t *testing.T) {
	pp := protocol.DefaultParams(7)
	spacing := pp.Delta0() + 2*pp.D
	var inits []sim.Initiation
	for i := 0; i < 8; i++ {
		inits = append(inits, sim.Initiation{
			At:    simtime.Real(simtime.Duration(i) * spacing),
			G:     0,
			Value: protocol.Value(fmt.Sprintf("s%d", i)),
		})
	}
	res, err := sim.Run(sim.Scenario{
		Params:      pp,
		Seed:        9,
		Initiations: inits,
		RunFor:      simtime.Duration(len(inits))*spacing + 3*pp.DeltaAgr(),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if vs := check.Separation(res, 0); len(vs) != 0 {
		t.Errorf("separation violations: %v", vs)
	}
	if vs := check.IAUniqueness(res, 0); len(vs) != 0 {
		t.Errorf("uniqueness violations: %v", vs)
	}
}
