package eventloop

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMailboxFIFO checks ordering and the closed-drop contract.
func TestMailboxFIFO(t *testing.T) {
	m := NewMailbox()
	var got []int
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Loop()
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	for i := 0; i < 100; i++ {
		i := i
		last := i == 99
		if !m.Enqueue(func() {
			got = append(got, i)
			if last {
				wg.Done()
			}
		}) {
			t.Fatalf("enqueue %d refused on open mailbox", i)
		}
	}
	wg.Wait()
	m.Close()
	<-done
	if m.Enqueue(func() { t.Error("event ran after Close") }) {
		t.Error("Enqueue accepted after Close")
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
	select {
	case <-m.Done():
	default:
		t.Error("Done not closed after Close")
	}
}

// TestMailboxCloseIdempotent double-closes.
func TestMailboxCloseIdempotent(t *testing.T) {
	m := NewMailbox()
	go m.Loop()
	m.Close()
	m.Close()
}

// TestTimersStopWaitsForInflightBodies is the regression test for the
// shutdown window this package exists to close: a body that has already
// begun when Stop is called must complete before Stop returns, and no
// body may begin after.
func TestTimersStopWaitsForInflightBodies(t *testing.T) {
	ts := NewTimers()
	started := make(chan struct{})
	var finished atomic.Bool
	ts.AfterFunc(0, func() {
		close(started)
		time.Sleep(30 * time.Millisecond)
		finished.Store(true)
	})
	<-started
	ts.Stop()
	if !finished.Load() {
		t.Fatal("Stop returned while a timer body was still running")
	}
	if tm := ts.AfterFunc(0, func() { t.Error("body started after Stop") }); tm != nil {
		t.Error("AfterFunc accepted a timer after Stop")
	}
	time.Sleep(10 * time.Millisecond)
}

// TestTimersStopCancelsPending ensures a far-future timer neither fires
// nor delays Stop.
func TestTimersStopCancelsPending(t *testing.T) {
	ts := NewTimers()
	fired := make(chan struct{}, 1)
	ts.AfterFunc(time.Hour, func() { fired <- struct{}{} })
	done := make(chan struct{})
	go func() {
		defer close(done)
		ts.Stop()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop blocked on a cancelled pending timer")
	}
	select {
	case <-fired:
		t.Error("cancelled timer fired")
	case <-time.After(20 * time.Millisecond):
	}
}

// TestTimersStressStartStop hammers the fire-vs-Stop race: many short
// timers whose bodies enqueue into a mailbox, stopped at a random moment.
// Run under -race this is the window detector.
func TestTimersStressStartStop(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		ts := NewTimers()
		m := NewMailbox()
		go m.Loop()
		var ran atomic.Int64
		for i := 0; i < 32; i++ {
			ts.AfterFunc(time.Duration(i%4)*time.Millisecond, func() {
				m.Enqueue(func() { ran.Add(1) })
			})
		}
		time.Sleep(time.Duration(iter%5) * time.Millisecond)
		ts.Stop()
		m.Close()
		// After Stop, no body is in flight: enqueues observed from here on
		// would be a contract violation (none can happen — the assertion is
		// that -race sees no unsynchronized access and nothing deadlocks).
	}
}
