package eventloop

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ssbyz/internal/clock"
)

// TestMailboxFIFO checks ordering and the closed-drop contract.
func TestMailboxFIFO(t *testing.T) {
	m := NewMailbox()
	var got []int
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Loop()
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	for i := 0; i < 100; i++ {
		i := i
		last := i == 99
		if !m.Enqueue(func() {
			got = append(got, i)
			if last {
				wg.Done()
			}
		}) {
			t.Fatalf("enqueue %d refused on open mailbox", i)
		}
	}
	wg.Wait()
	m.Close()
	<-done
	if m.Enqueue(func() { t.Error("event ran after Close") }) {
		t.Error("Enqueue accepted after Close")
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
	select {
	case <-m.Done():
	default:
		t.Error("Done not closed after Close")
	}
}

// TestMailboxCloseIdempotent double-closes.
func TestMailboxCloseIdempotent(t *testing.T) {
	m := NewMailbox()
	go m.Loop()
	m.Close()
	m.Close()
}

// TestTimersStopWaitsForInflightBodies is the regression test for the
// shutdown window this package exists to close: a body that has already
// begun when Stop is called must complete before Stop returns, and no
// body may begin after.
func TestTimersStopWaitsForInflightBodies(t *testing.T) {
	ts := NewTimers()
	started := make(chan struct{})
	var finished atomic.Bool
	ts.AfterFunc(0, func() {
		close(started)
		time.Sleep(30 * time.Millisecond)
		finished.Store(true)
	})
	<-started
	ts.Stop()
	if !finished.Load() {
		t.Fatal("Stop returned while a timer body was still running")
	}
	if tm := ts.AfterFunc(0, func() { t.Error("body started after Stop") }); tm != nil {
		t.Error("AfterFunc accepted a timer after Stop")
	}
	time.Sleep(10 * time.Millisecond)
}

// TestTimersStopCancelsPending ensures a far-future timer neither fires
// nor delays Stop.
func TestTimersStopCancelsPending(t *testing.T) {
	ts := NewTimers()
	fired := make(chan struct{}, 1)
	ts.AfterFunc(time.Hour, func() { fired <- struct{}{} })
	done := make(chan struct{})
	go func() {
		defer close(done)
		ts.Stop()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop blocked on a cancelled pending timer")
	}
	select {
	case <-fired:
		t.Error("cancelled timer fired")
	case <-time.After(20 * time.Millisecond):
	}
}

// TestTimersStressStartStop hammers the fire-vs-Stop race: many short
// timers whose bodies enqueue into a mailbox, stopped at a random moment.
// Run under -race this is the window detector.
func TestTimersStressStartStop(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		ts := NewTimers()
		m := NewMailbox()
		go m.Loop()
		var ran atomic.Int64
		for i := 0; i < 32; i++ {
			ts.AfterFunc(time.Duration(i%4)*time.Millisecond, func() {
				m.Enqueue(func() { ran.Add(1) })
			})
		}
		time.Sleep(time.Duration(iter%5) * time.Millisecond)
		ts.Stop()
		m.Close()
		// After Stop, no body is in flight: enqueues observed from here on
		// would be a contract violation (none can happen — the assertion is
		// that -race sees no unsynchronized access and nothing deadlocks).
	}
}

// TestTimersOnFakeClockDeterministicFire pins the virtual-time path:
// timers on a clock.Fake fire in (deadline, registration) order, only
// when the clock is advanced, and Cancel removes them from the heap.
func TestTimersOnFakeClockDeterministicFire(t *testing.T) {
	f := clock.NewFake(time.Time{})
	ts := NewTimersOn(f)
	var got []int
	ts.AfterFunc(10*time.Millisecond, func() { got = append(got, 1) })
	tm := ts.AfterFunc(20*time.Millisecond, func() { got = append(got, 2) })
	ts.AfterFunc(30*time.Millisecond, func() { got = append(got, 3) })
	if len(got) != 0 {
		t.Fatalf("fired before Advance: %v", got)
	}
	ts.Cancel(tm)
	f.Advance(25 * time.Millisecond)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("after 25ms got %v, want [1]", got)
	}
	f.Advance(10 * time.Millisecond)
	if len(got) != 2 || got[1] != 3 {
		t.Fatalf("after 35ms got %v, want [1 3]", got)
	}
	ts.Stop()
	if f.PendingTimers() != 0 {
		t.Fatalf("Stop left %d timers on the fake heap", f.PendingTimers())
	}
}

// TestTimersStopGateOnFakeClock re-pins the stopped-flag gate with the
// clock injected: a pending virtual timer cancelled by Stop must not
// fire on a later Advance, deterministically (no wall-clock window).
func TestTimersStopGateOnFakeClock(t *testing.T) {
	f := clock.NewFake(time.Time{})
	ts := NewTimersOn(f)
	m := NewMailboxGated(f)
	go m.Loop()
	var ran atomic.Int64
	for i := 0; i < 32; i++ {
		ts.AfterFunc(time.Duration(i%4)*time.Millisecond, func() {
			m.Enqueue(func() { ran.Add(1) })
		})
	}
	f.Advance(1 * time.Millisecond) // fires deadlines 0 and 1, cascades drained
	before := ran.Load()
	if before != 16 {
		t.Fatalf("ran = %d after 1ms, want 16 (deadlines 0 and 1)", before)
	}
	ts.Stop()
	f.Advance(10 * time.Millisecond)
	if ran.Load() != before {
		t.Fatalf("timer body ran after Stop: %d → %d", before, ran.Load())
	}
	m.Close()
}

// TestMailboxGateAccounting: a gated mailbox holds one busy token per
// undrained event — Advance cannot pass an enqueued-but-unprocessed
// event, and Close releases the tokens of discarded events.
func TestMailboxGateAccounting(t *testing.T) {
	f := clock.NewFake(time.Time{})
	m := NewMailboxGated(f)
	// No Loop yet: tokens accumulate.
	for i := 0; i < 5; i++ {
		m.Enqueue(func() {})
	}
	advanced := make(chan struct{})
	go func() {
		f.Advance(time.Second)
		close(advanced)
	}()
	select {
	case <-advanced:
		t.Fatal("Advance passed 5 undrained mailbox events")
	case <-time.After(20 * time.Millisecond):
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Loop()
	}()
	<-advanced // the loop drains the queue, tokens release, Advance completes
	// A final enqueue races Close: whichever side consumes the event
	// (loop or Close-discard) must release its token.
	m.Enqueue(func() {})
	m.Close()
	<-done
	f.WaitIdle()
}
