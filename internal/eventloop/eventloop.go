// Package eventloop is the shared single-threaded execution core of the
// real-time transports (internal/livenet over in-process channels,
// internal/nettrans over UDP/TCP sockets): an unbounded FIFO mailbox
// drained by one goroutine per node — so protocol state machines run
// without locking, exactly as under the discrete-event simulator — and a
// tracked set of timers whose shutdown is race-free.
//
// Both pieces are clock-agnostic (internal/clock): NewTimers schedules
// on the wall clock, NewTimersOn on any injected Clock — a clock.Fake
// turns the same node into a deterministic virtual-time runtime. A
// gated mailbox (NewMailboxGated) additionally reports every undrained
// event to the clock's quiescence Gate, which is how a Fake knows no
// work is in flight before it advances.
//
// The shutdown contract is the delicate part. An AfterFunc body that
// has already fired runs concurrently with Stop; if Stop merely stopped
// the timers and returned, such a body could still be mid-flight —
// enqueueing into closing mailboxes, touching transport state that the
// caller is about to tear down. Timers therefore gates every body on the
// stopped flag under the set's lock and counts in-flight bodies; Stop
// flips the flag, cancels the pending timers, and then WAITS for the
// in-flight count to drain. After Stop returns, no timer body is running
// and none will start. The gate is purely the set's own lock and
// counter — nothing about it depends on how the underlying clock
// schedules, so it holds identically for wall-clock timers (bodies on
// their own goroutines) and for a Fake (bodies on the advancing
// goroutine).
package eventloop

import (
	"sync"
	"time"

	"ssbyz/internal/clock"
)

// Mailbox is an unbounded FIFO of closures drained by a single goroutine
// (Loop). Enqueue after Close is a silent no-op, so concurrent producers
// — receive loops, timer bodies — need no shutdown coordination of their
// own.
type Mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
	dead   chan struct{}
	// gate, when non-nil, holds one busy token per event from Enqueue
	// until the event has run (or the mailbox closed with it undrained).
	gate clock.Gate
}

// NewMailbox returns an open mailbox.
func NewMailbox() *Mailbox { return NewMailboxGated(nil) }

// NewMailboxGated returns an open mailbox that reports in-flight events
// to g (one AddBusy per accepted Enqueue, one DoneBusy once the event
// has run or been discarded by Close). A nil g is plain NewMailbox.
func NewMailboxGated(g clock.Gate) *Mailbox {
	m := &Mailbox{dead: make(chan struct{}), gate: g}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Enqueue appends one event; it reports false if the mailbox is closed
// (the event is dropped).
func (m *Mailbox) Enqueue(fn func()) bool {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return false
	}
	m.queue = append(m.queue, fn)
	if m.gate != nil {
		m.gate.AddBusy(1)
	}
	m.cond.Signal()
	m.mu.Unlock()
	return true
}

// Close wakes and terminates Loop; undrained events are discarded (their
// busy tokens released). Close is idempotent.
func (m *Mailbox) Close() {
	m.mu.Lock()
	var dropped int
	if !m.closed {
		m.closed = true
		close(m.dead)
		dropped = len(m.queue)
		m.queue = nil
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	if m.gate != nil && dropped > 0 {
		m.gate.DoneBusy(dropped)
	}
}

// Done is closed when the mailbox shuts down.
func (m *Mailbox) Done() <-chan struct{} { return m.dead }

// Loop drains the mailbox until Close, running each event on the calling
// goroutine. Exactly one goroutine may run Loop.
func (m *Mailbox) Loop() {
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		fn := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		fn()
		if m.gate != nil {
			m.gate.DoneBusy(1)
		}
	}
}

// Timers tracks clock timers so that shutdown is total: after Stop
// returns, no registered body is running and none will ever start.
type Timers struct {
	clk     clock.Clock
	mu      sync.Mutex
	stopped bool
	timers  map[clock.Timer]struct{}
	// inflight counts bodies past the stopped-gate; Stop waits for it.
	inflight sync.WaitGroup
}

// NewTimers returns an empty timer set on the wall clock.
func NewTimers() *Timers { return NewTimersOn(clock.Real()) }

// NewTimersOn returns an empty timer set scheduling on clk.
func NewTimersOn(clk clock.Clock) *Timers {
	return &Timers{clk: clk, timers: make(map[clock.Timer]struct{})}
}

// AfterFunc schedules fn to run after d of clock time. It returns nil if
// the set is already stopped. The returned timer may be passed to Cancel
// (or its own Stop) for individual best-effort cancellation; a body that
// already started is handled by the Stop gate, not by the caller.
func (t *Timers) AfterFunc(d time.Duration, fn func()) clock.Timer {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return nil
	}
	var tm clock.Timer
	tm = t.clk.AfterFunc(d, func() {
		t.mu.Lock()
		if t.stopped {
			t.mu.Unlock()
			return
		}
		t.inflight.Add(1)
		delete(t.timers, tm)
		t.mu.Unlock()
		defer t.inflight.Done()
		fn()
	})
	t.timers[tm] = struct{}{}
	return tm
}

// Cancel stops one pending timer and forgets it. Cancelling a fired or
// already-cancelled timer is a no-op; without the forget step, the set
// would retain one entry (and its captured closure) per timer whose body
// never ran — a leak in long-running processes that cancel protocol
// timers at the end of every agreement.
func (t *Timers) Cancel(tm clock.Timer) {
	if tm == nil {
		return
	}
	tm.Stop()
	t.mu.Lock()
	delete(t.timers, tm)
	t.mu.Unlock()
}

// Stop cancels every pending timer, prevents new ones, and blocks until
// every in-flight body has returned. Idempotent. Bodies must not call
// back into the set's AfterFunc/Stop while holding resources Stop's
// caller is waiting on, and must not block forever.
func (t *Timers) Stop() {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		t.inflight.Wait()
		return
	}
	t.stopped = true
	for tm := range t.timers {
		tm.Stop()
	}
	t.timers = make(map[clock.Timer]struct{})
	t.mu.Unlock()
	t.inflight.Wait()
}
