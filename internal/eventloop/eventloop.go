// Package eventloop is the shared single-threaded execution core of the
// real-time transports (internal/livenet over in-process channels,
// internal/nettrans over UDP/TCP sockets): an unbounded FIFO mailbox
// drained by one goroutine per node — so protocol state machines run
// without locking, exactly as under the discrete-event simulator — and a
// tracked set of wall-clock timers whose shutdown is race-free.
//
// The shutdown contract is the delicate part. A time.AfterFunc body that
// has already fired runs concurrently with Stop; if Stop merely stopped
// the timers and returned, such a body could still be mid-flight —
// enqueueing into closing mailboxes, touching transport state that the
// caller is about to tear down. Timers therefore gates every body on the
// stopped flag under the set's lock and counts in-flight bodies; Stop
// flips the flag, cancels the pending timers, and then WAITS for the
// in-flight count to drain. After Stop returns, no timer body is running
// and none will start.
package eventloop

import (
	"sync"
	"time"
)

// Mailbox is an unbounded FIFO of closures drained by a single goroutine
// (Loop). Enqueue after Close is a silent no-op, so concurrent producers
// — receive loops, timer bodies — need no shutdown coordination of their
// own.
type Mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
	dead   chan struct{}
}

// NewMailbox returns an open mailbox.
func NewMailbox() *Mailbox {
	m := &Mailbox{dead: make(chan struct{})}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Enqueue appends one event; it reports false if the mailbox is closed
// (the event is dropped).
func (m *Mailbox) Enqueue(fn func()) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.queue = append(m.queue, fn)
	m.cond.Signal()
	return true
}

// Close wakes and terminates Loop; undrained events are discarded.
// Close is idempotent.
func (m *Mailbox) Close() {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.dead)
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Done is closed when the mailbox shuts down.
func (m *Mailbox) Done() <-chan struct{} { return m.dead }

// Loop drains the mailbox until Close, running each event on the calling
// goroutine. Exactly one goroutine may run Loop.
func (m *Mailbox) Loop() {
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		fn := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		fn()
	}
}

// Timers tracks wall-clock timers so that shutdown is total: after Stop
// returns, no registered body is running and none will ever start.
type Timers struct {
	mu      sync.Mutex
	stopped bool
	timers  map[*time.Timer]struct{}
	// inflight counts bodies past the stopped-gate; Stop waits for it.
	inflight sync.WaitGroup
}

// NewTimers returns an empty timer set.
func NewTimers() *Timers {
	return &Timers{timers: make(map[*time.Timer]struct{})}
}

// AfterFunc schedules fn to run after d on its own goroutine. It returns
// nil if the set is already stopped. The returned timer may be passed to
// time.Timer.Stop for individual best-effort cancellation; a body that
// already started is handled by the Stop gate, not by the caller.
func (t *Timers) AfterFunc(d time.Duration, fn func()) *time.Timer {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return nil
	}
	var tm *time.Timer
	tm = time.AfterFunc(d, func() {
		t.mu.Lock()
		if t.stopped {
			t.mu.Unlock()
			return
		}
		t.inflight.Add(1)
		delete(t.timers, tm)
		t.mu.Unlock()
		defer t.inflight.Done()
		fn()
	})
	t.timers[tm] = struct{}{}
	return tm
}

// Cancel stops one pending timer and forgets it. Cancelling a fired or
// already-cancelled timer is a no-op; without the forget step, the set
// would retain one entry (and its captured closure) per timer whose body
// never ran — a leak in long-running processes that cancel protocol
// timers at the end of every agreement.
func (t *Timers) Cancel(tm *time.Timer) {
	if tm == nil {
		return
	}
	tm.Stop()
	t.mu.Lock()
	delete(t.timers, tm)
	t.mu.Unlock()
}

// Stop cancels every pending timer, prevents new ones, and blocks until
// every in-flight body has returned. Idempotent. Bodies must not call
// back into the set's AfterFunc/Stop while holding resources Stop's
// caller is waiting on, and must not block forever.
func (t *Timers) Stop() {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		t.inflight.Wait()
		return
	}
	t.stopped = true
	for tm := range t.timers {
		tm.Stop()
	}
	t.timers = make(map[*time.Timer]struct{})
	t.mu.Unlock()
	t.inflight.Wait()
}
