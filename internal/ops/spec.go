package ops

import (
	"encoding/json"
	"fmt"

	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// Step ops. A campaign is boot (implicit: every non-scale slot), then
// any number of scale/roll steps at scheduled ticks, then one drain.
const (
	// OpScale boots a slot that was held absent at cluster start — the
	// orchestrator's scale-up.
	OpScale = "scale"
	// OpRoll replaces a running node: stop, bump its incarnation epoch on
	// every peer, reboot. The campaign asserts re-stabilization within
	// Δstb = 2Δreset and that the old incarnation's frames are rejected.
	OpRoll = "roll"
	// OpDrain ends the campaign: once traffic has drained and every roll
	// has re-stabilized, stop the fleet.
	OpDrain = "drain"
)

// Step is one scheduled membership operation.
type Step struct {
	// Op is OpScale, OpRoll, or OpDrain.
	Op string `json:"op"`
	// Node is the scale/roll target (ignored for drain).
	Node int `json:"node,omitempty"`
	// At is the step's tick since the cluster epoch. Steps execute at
	// quiescent points, so under virtual time the schedule is exact and
	// the whole campaign deterministic.
	At int64 `json:"at"`
}

// ClusterSpec is the orchestrator's declarative input: the PR5 manifest
// (committee, tick, addresses, epoch) extended with a client workload
// and a membership schedule. One spec file describes a whole
// boot→scale→roll→drain campaign.
type ClusterSpec struct {
	Manifest nettrans.Manifest `json:"manifest"`
	// Seed drives every drawn number of the campaign: the virtual wire's
	// delays and the workload's Poisson arrivals.
	Seed int64 `json:"seed,omitempty"`
	// Sessions is the service layer's concurrent-slot count per General
	// (footnote 9; default 1).
	Sessions int `json:"sessions,omitempty"`
	// Entries is how many replicated-log entries the service pump commits
	// at General 0 while the membership schedule runs (default 8).
	Entries int `json:"entries,omitempty"`
	// Steps is the membership schedule, ascending by At.
	Steps []Step `json:"steps"`
}

// Validate checks the spec; every failure wraps nettrans.ErrBadManifest
// (the sentinel-matching discipline of the facade's ErrBadParams).
func (s ClusterSpec) Validate() error {
	if err := s.Manifest.Validate(); err != nil {
		return err // already wraps ErrBadManifest
	}
	pp := s.Manifest.Params()
	if s.Sessions < 0 || s.Entries < 0 {
		return fmt.Errorf("%w: negative sessions/entries", nettrans.ErrBadManifest)
	}
	scaled := make(map[int]bool)
	prevAt := int64(0)
	drained := false
	for i, st := range s.Steps {
		if drained {
			return fmt.Errorf("%w: step %d follows the drain", nettrans.ErrBadManifest, i)
		}
		if st.At < prevAt {
			return fmt.Errorf("%w: step %d at tick %d precedes step %d", nettrans.ErrBadManifest, i, st.At, i-1)
		}
		prevAt = st.At
		switch st.Op {
		case OpScale, OpRoll:
			if st.Node <= 0 || st.Node >= pp.N {
				// Node 0 is the traffic General the service pump drives; it
				// must stay up, so membership ops target [1, n).
				return fmt.Errorf("%w: %s of node %d outside [1,%d)", nettrans.ErrBadManifest, st.Op, st.Node, pp.N)
			}
			if st.Op == OpScale {
				if scaled[st.Node] {
					return fmt.Errorf("%w: node %d scaled twice", nettrans.ErrBadManifest, st.Node)
				}
				scaled[st.Node] = true
			}
		case OpDrain:
			drained = true
		default:
			return fmt.Errorf("%w: step %d has unknown op %q", nettrans.ErrBadManifest, i, st.Op)
		}
	}
	if len(scaled) > pp.F {
		// Absent slots read as crash faults until they boot; more than f
		// of them and the committee cannot agree in the meantime.
		return fmt.Errorf("%w: %d scale targets exceed f=%d", nettrans.ErrBadManifest, len(scaled), pp.F)
	}
	return nil
}

// ScaleTargets lists the slots held absent at boot (the scale steps'
// nodes), ascending by schedule order.
func (s ClusterSpec) ScaleTargets() []protocol.NodeID {
	var out []protocol.NodeID
	for _, st := range s.Steps {
		if st.Op == OpScale {
			out = append(out, protocol.NodeID(st.Node))
		}
	}
	return out
}

// ParseSpec decodes and validates a campaign spec.
func ParseSpec(blob []byte) (ClusterSpec, error) {
	var s ClusterSpec
	if err := json.Unmarshal(blob, &s); err != nil {
		return ClusterSpec{}, fmt.Errorf("ops: spec parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return ClusterSpec{}, err
	}
	return s, nil
}

// QuickSpec synthesizes the canonical boot→scale(+1)→roll(×1)→drain
// campaign for an n-node committee: slot n−1 boots late (scale-up at
// 10d), slot `roll` is replaced at 22d, and the fleet drains once the
// workload commits and the roll re-stabilizes. This is the spec behind
// ssbyz-cluster's quick form, experiment V4, and the L4 smoke.
func QuickSpec(n, roll int, d simtime.Duration, seed int64) ClusterSpec {
	return ClusterSpec{
		Manifest: nettrans.Manifest{
			N: n, D: d,
			EpochUnixNano: 1, // in-process campaigns ignore the wall epoch
			Nodes:         virtualAddrs(n),
		},
		Seed:    seed,
		Entries: 8,
		Steps: []Step{
			{Op: OpScale, Node: n - 1, At: int64(10 * d)},
			{Op: OpRoll, Node: roll, At: int64(22 * d)},
			{Op: OpDrain, At: int64(30 * d)},
		},
	}
}

// virtualAddrs fills the manifest's address table for in-process
// campaigns, where the cluster binds its own loopback sockets (wall) or
// in-memory endpoints (virtual) and the addresses are placeholders.
func virtualAddrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("virtual:%d", i)
	}
	return out
}
