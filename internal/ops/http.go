package ops

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"

	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
)

// Server is a node's REST control plane: the podman-style per-daemon
// API. GET /healthz (200 stabilized / 503 otherwise), GET /metrics,
// GET /events (NDJSON stream), and POST /initiate, /fault, /bump-epoch,
// /drain, /stop — the operations that subsume the ad-hoc control-socket
// frames of the pre-ops daemon.
//
// Shutdown ordering is part of the contract: Shutdown first closes the
// event bus so every /events subscriber reads a clean EOF, then stops
// the HTTP listener and waits for in-flight handlers. Only after
// Shutdown returns may the caller tear the node's transports down —
// reversing that order is the reset-instead-of-EOF bug the Stop-ordering
// test pins.
type Server struct {
	ctl  *Control
	be   NodeBackend
	ln   net.Listener
	http *http.Server

	doneOnce sync.Once
	done     chan string
}

// Serve starts the control plane on ln (which it takes ownership of).
func Serve(ln net.Listener, ctl *Control) *Server {
	s := &Server{
		ctl:  ctl,
		be:   ctl.be,
		ln:   ln,
		done: make(chan string, 1),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("POST /initiate", s.handleInitiate)
	mux.HandleFunc("POST /fault", s.handleFault)
	mux.HandleFunc("POST /bump-epoch", s.handleBumpEpoch)
	mux.HandleFunc("POST /drain", s.handleSignal("drain"))
	mux.HandleFunc("POST /stop", s.handleSignal("stop"))
	s.http = &http.Server{Handler: mux}
	go func() { _ = s.http.Serve(ln) }()
	return s
}

// Addr is the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Done delivers the reason ("drain" or "stop") once an operator asks
// the daemon to exit.
func (s *Server) Done() <-chan string { return s.done }

// Shutdown drains the control plane in the contractual order: event bus
// first (subscribers get EOF while the connections are still healthy),
// then the HTTP server, waiting for in-flight handlers. The caller
// closes transports only after this returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ctl.Close()
	return s.http.Shutdown(ctx)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.ctl.Health()
	code := http.StatusOK
	if h.State != StateStabilized {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ctl.Metrics())
}

// handleEvents streams the bus as NDJSON until the client goes away or
// the bus closes (shutdown — the clean-EOF half of the Stop ordering).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	ch, cancel := s.ctl.Bus().Subscribe(256)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // bus closed: the stream ends in a clean EOF
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// initiateReq is the POST /initiate body.
type initiateReq struct {
	Slot  int    `json:"slot"`
	Value string `json:"value"`
}

func (s *Server) handleInitiate(w http.ResponseWriter, r *http.Request) {
	var req initiateReq
	if !readJSON(w, r, &req) {
		return
	}
	if req.Value == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("initiate needs a value"))
		return
	}
	if err := s.be.Initiate(req.Slot, protocol.Value(req.Value)); err != nil {
		// IG1–IG3 sending-validity refusals are operator-state conflicts,
		// not server failures.
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "initiated", "value": req.Value})
}

// faultReq is the POST /fault body — the REST form of the control-socket
// FrameFault order.
type faultReq struct {
	Seed             int64 `json:"seed"`
	SeverityPermille int   `json:"severity_permille"`
	InFlight         int   `json:"in_flight"`
}

func (s *Server) handleFault(w http.ResponseWriter, r *http.Request) {
	var req faultReq
	if !readJSON(w, r, &req) {
		return
	}
	if req.SeverityPermille <= 0 {
		req.SeverityPermille = 1000
	}
	if err := s.be.InjectFault(req.Seed, req.SeverityPermille, req.InFlight); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.ctl.MarkFault("fault", map[string]string{
		"seed":              fmt.Sprint(req.Seed),
		"severity_permille": fmt.Sprint(req.SeverityPermille),
	})
	writeJSON(w, http.StatusOK, map[string]string{"status": "fault injected"})
}

// bumpReq is the POST /bump-epoch body: a peer's roll is in progress,
// raise its expected incarnation.
type bumpReq struct {
	Peer        int    `json:"peer"`
	Incarnation uint64 `json:"incarnation"`
}

func (s *Server) handleBumpEpoch(w http.ResponseWriter, r *http.Request) {
	var req bumpReq
	if !readJSON(w, r, &req) {
		return
	}
	if err := s.be.BumpPeerEpoch(protocol.NodeID(req.Peer), req.Incarnation); err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, nettrans.ErrEpochSkew) {
			code = http.StatusConflict
		}
		writeError(w, code, err)
		return
	}
	s.ctl.MarkEpoch(protocol.NodeID(req.Peer), req.Incarnation)
	writeJSON(w, http.StatusOK, map[string]string{"status": "epoch bumped"})
}

// handleSignal builds the /drain and /stop handlers: publish the event,
// deliver the reason to Done, acknowledge. The daemon owns the actual
// teardown ordering.
func (s *Server) handleSignal(reason string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.ctl.Bus().Publish(Event{Type: reason, Node: int(s.be.ID()), Tick: int64(s.be.NowTicks())})
		s.doneOnce.Do(func() { s.done <- reason })
		writeJSON(w, http.StatusOK, map[string]string{"status": reason})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// readJSON decodes the request body into v, answering 400 on failure.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}
