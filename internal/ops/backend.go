package ops

import (
	"fmt"

	"ssbyz/internal/core"
	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
	"ssbyz/internal/transient"
)

// NetBackend adapts one live NetNode to the control plane: the
// implementation cmd/ssbyz-node serves. Initiations and fault
// injections run inside the node's event loop (DoWait), exactly like
// the pre-ops control-socket paths they subsume.
type NetBackend struct {
	NN *nettrans.NetNode
}

var _ NodeBackend = (*NetBackend)(nil)

func (b *NetBackend) ID() protocol.NodeID     { return b.NN.ID() }
func (b *NetBackend) Params() protocol.Params { return b.NN.Params() }
func (b *NetBackend) NowTicks() simtime.Real  { return simtime.Real(b.NN.Now()) }
func (b *NetBackend) Stats() nettrans.Stats   { return b.NN.Stats() }
func (b *NetBackend) Incarnation() uint64     { return b.NN.Incarnation() }

func (b *NetBackend) BumpPeerEpoch(peer protocol.NodeID, incarnation uint64) error {
	return b.NN.BumpPeerEpoch(peer, incarnation)
}

// Initiate starts agreement inside the event loop, subject to the
// IG1–IG3 sending-validity criteria the state machine enforces.
func (b *NetBackend) Initiate(slot int, v protocol.Value) error {
	var err error
	b.NN.DoWait(func(n protocol.Node) {
		switch m := n.(type) {
		case sim.SlotInitiator:
			err = m.InitiateAgreement(slot, v)
		case sim.Initiator:
			if slot != 0 {
				err = fmt.Errorf("ops: node %d has no concurrent slots", b.NN.ID())
				return
			}
			err = m.InitiateAgreement(v)
		default:
			err = fmt.Errorf("ops: node %d cannot initiate agreements", b.NN.ID())
		}
	})
	return err
}

// InjectFault corrupts the RUNNING protocol state in place — the REST
// form of the FrameFault order: arbitrary-state placement plus a
// phantom mark under the highest committee id, whose decay the daemon's
// Δstb watcher observes.
func (b *NetBackend) InjectFault(seed int64, severityPermille, inFlight int) error {
	pp := b.NN.Params()
	markG := protocol.NodeID(pp.N - 1)
	injected := false
	b.NN.DoWait(func(n protocol.Node) {
		cn, ok := n.(*core.Node)
		if !ok {
			return
		}
		transient.CorruptRunning(cn, pp, transient.Config{
			Seed:     seed,
			Severity: float64(severityPermille) / 1000,
			InFlight: inFlight,
			Marks:    []protocol.NodeID{markG},
		}, b.NN.Now())
		injected = true
	})
	if !injected {
		return fmt.Errorf("ops: node %d does not run a corruptible core node", b.NN.ID())
	}
	return nil
}
