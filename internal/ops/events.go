package ops

import "sync"

// Event is one structured operations event — the libpod events shape
// (type + actor + instant + attributes), rendered as NDJSON on /events.
// Types: decide, suspicion, stabilized, re-stabilizing, fault, roll,
// epoch, drain, stop.
type Event struct {
	Type string `json:"type"`
	Node int    `json:"node"`
	Tick int64  `json:"tick"`
	// Attrs carries type-specific detail (the General and value of a
	// decide, the peer and incarnation of an epoch change, …).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Bus fans events out to subscribers. Publishing never blocks: a
// subscriber that stops draining loses events rather than stalling the
// node's event loop (the sink path publishes decides). Closing the bus
// closes every subscriber channel, which is how /events streams end in
// a clean EOF during shutdown.
type Bus struct {
	mu     sync.Mutex
	subs   map[int]chan Event
	nextID int
	closed bool
}

// NewBus builds an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[int]chan Event)}
}

// Subscribe registers a subscriber with the given channel buffer
// (minimum 16) and returns its channel plus a cancel function. The
// channel closes on cancel or when the bus closes.
func (b *Bus) Subscribe(buf int) (<-chan Event, func()) {
	if buf < 16 {
		buf = 16
	}
	ch := make(chan Event, buf)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := b.nextID
	b.nextID++
	b.subs[id] = ch
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if sub, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(sub)
		}
	}
}

// Publish offers ev to every subscriber, dropping it at any whose
// buffer is full. No-op after Close.
func (b *Bus) Publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for _, ch := range b.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than block the publisher
		}
	}
}

// Close shuts the bus down: all subscriber channels close (clean EOF
// for streams), later Publishes are dropped. Idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, ch := range b.subs {
		delete(b.subs, id)
		close(ch)
	}
}
