package ops

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Client is the orchestrator's HTTP side of the control plane: thin
// typed wrappers over the daemon endpoints, used by cmd/ssbyz-cluster
// to boot, observe, roll, and drain a fleet over REST.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets one daemon's ops address ("127.0.0.1:7800").
func NewClient(addr string) *Client {
	return &Client{
		base: "http://" + addr,
		http: &http.Client{Timeout: 10 * time.Second},
	}
}

// Health fetches /healthz. The returned ok reports the HTTP verdict
// (200 = stabilized); the body is decoded either way.
func (c *Client) Health() (Health, bool, error) {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return Health{}, false, err
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Health{}, false, err
	}
	return h, resp.StatusCode == http.StatusOK, nil
}

// Metrics fetches /metrics.
func (c *Client) Metrics() (Metrics, error) {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return Metrics{}, err
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return Metrics{}, err
	}
	return m, nil
}

// Initiate posts /initiate: start agreement on value in the given slot.
func (c *Client) Initiate(slot int, value string) error {
	return c.post("/initiate", initiateReq{Slot: slot, Value: value})
}

// Fault posts /fault: corrupt the daemon's running state in place.
func (c *Client) Fault(seed int64, severityPermille int) error {
	return c.post("/fault", faultReq{Seed: seed, SeverityPermille: severityPermille})
}

// BumpEpoch posts /bump-epoch: expect peer at the given incarnation.
func (c *Client) BumpEpoch(peer int, incarnation uint64) error {
	return c.post("/bump-epoch", bumpReq{Peer: peer, Incarnation: incarnation})
}

// Drain posts /drain; Stop posts /stop. Both ask the daemon to exit
// through its ordered shutdown path.
func (c *Client) Drain() error { return c.post("/drain", struct{}{}) }
func (c *Client) Stop() error  { return c.post("/stop", struct{}{}) }

// Events streams /events until ctx is cancelled or the daemon closes
// the stream (clean EOF on drain), delivering each NDJSON event to fn.
func (c *Client) Events(ctx context.Context, fn func(Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/events", nil)
	if err != nil {
		return err
	}
	// Streams outlive the client's request timeout by design.
	streamer := &http.Client{}
	resp, err := streamer.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ops: /events: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return err
		}
		fn(ev)
	}
	return sc.Err()
}

// AwaitStabilized polls /healthz until it reports stabilized or the
// timeout passes — the orchestrator's roll/Δstb assertion.
func (c *Client) AwaitStabilized(timeout time.Duration) (Health, error) {
	deadline := time.Now().Add(timeout)
	var last Health
	for {
		h, ok, err := c.Health()
		if err == nil {
			last = h
			if ok {
				return h, nil
			}
		}
		if time.Now().After(deadline) {
			return last, fmt.Errorf("ops: not stabilized within %v (last state %q)", timeout, last.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (c *Client) post(path string, body any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return fmt.Errorf("ops: %s: %s", path, e.Error)
	}
	return nil
}
