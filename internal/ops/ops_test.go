package ops

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// stubBackend is a scriptable NodeBackend for control-plane tests.
type stubBackend struct {
	mu          sync.Mutex
	id          protocol.NodeID
	pp          protocol.Params
	now         simtime.Real
	stats       nettrans.Stats
	inc         uint64
	initiated   []string
	initiateErr error
	faults      int
	bumps       map[protocol.NodeID]uint64
}

func newStub() *stubBackend {
	return &stubBackend{
		pp:    protocol.Params{N: 4, F: 1, D: 20},
		bumps: make(map[protocol.NodeID]uint64),
	}
}

func (b *stubBackend) ID() protocol.NodeID     { return b.id }
func (b *stubBackend) Params() protocol.Params { return b.pp }
func (b *stubBackend) NowTicks() simtime.Real {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.now
}
func (b *stubBackend) Stats() nettrans.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
func (b *stubBackend) Incarnation() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inc
}
func (b *stubBackend) Initiate(slot int, v protocol.Value) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.initiateErr != nil {
		return b.initiateErr
	}
	b.initiated = append(b.initiated, fmt.Sprintf("%d:%s", slot, v))
	return nil
}
func (b *stubBackend) InjectFault(seed int64, severityPermille, inFlight int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.faults++
	return nil
}
func (b *stubBackend) BumpPeerEpoch(peer protocol.NodeID, incarnation uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if int(peer) >= b.pp.N {
		return fmt.Errorf("%w: peer %d out of range", nettrans.ErrEpochSkew, peer)
	}
	if incarnation < b.bumps[peer] {
		return fmt.Errorf("%w: backwards", nettrans.ErrEpochSkew)
	}
	b.bumps[peer] = incarnation
	return nil
}

func (b *stubBackend) set(fn func(*stubBackend)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fn(b)
}

// TestControlHealthStates walks the health-state machine through its
// three states: boot (re-stabilizing), decide (stabilized), fault
// (re-stabilizing with a Δstb budget), decide again (stabilized), and a
// partition verdict (sends into silence between scrapes) overriding it.
func TestControlHealthStates(t *testing.T) {
	be := newStub()
	ctl := NewControl(be)
	defer ctl.Close()

	if h := ctl.Health(); h.State != StateRestabilizing {
		t.Fatalf("boot state = %q, want %q", h.State, StateRestabilizing)
	}

	ctl.Observe(protocol.TraceEvent{Kind: protocol.EvDecide, Node: 0, RT: 100, G: 1, M: "v"})
	h := ctl.Health()
	if h.State != StateStabilized || h.Decides != 1 {
		t.Fatalf("post-decide health = %+v, want stabilized with 1 decide", h)
	}

	be.set(func(b *stubBackend) { b.now = 200 })
	ctl.MarkFault("fault", nil)
	h = ctl.Health()
	if h.State != StateRestabilizing {
		t.Fatalf("post-fault state = %q, want %q", h.State, StateRestabilizing)
	}
	if h.SinceFault != 0 || h.DeltaStb != int64(be.pp.DeltaStb()) {
		t.Fatalf("fault window = %+v, want since=0 and Δstb=%d", h, be.pp.DeltaStb())
	}

	ctl.Observe(protocol.TraceEvent{Kind: protocol.EvDecide, Node: 0, RT: 300})
	if h = ctl.Health(); h.State != StateStabilized || h.SinceFault != -1 {
		t.Fatalf("recovery health = %+v, want stabilized with no fault window", h)
	}

	// Partition: ≥ partitionSendFloor sends with zero receives since the
	// previous scrape. Bad news wins over the stabilized state.
	be.set(func(b *stubBackend) { b.stats.Sent += partitionSendFloor })
	if h = ctl.Health(); h.State != StatePartitioned {
		t.Fatalf("partition state = %q, want %q", h.State, StatePartitioned)
	}
	// Traffic flows again: back to the underlying stabilized state.
	be.set(func(b *stubBackend) { b.stats.Sent += 2; b.stats.Received += 2 })
	if h = ctl.Health(); h.State != StateStabilized {
		t.Fatalf("post-partition state = %q, want %q", h.State, StateStabilized)
	}
}

// TestControlQuietBootStabilizes pins the boot rule: with no decide, no
// fault, and no traffic, the machine turns stabilized once Δstb passes —
// the theorem's budget with nothing left to converge from.
func TestControlQuietBootStabilizes(t *testing.T) {
	be := newStub()
	ctl := NewControl(be)
	defer ctl.Close()
	if h := ctl.Health(); h.State != StateRestabilizing {
		t.Fatalf("boot state = %q", h.State)
	}
	be.set(func(b *stubBackend) { b.now = simtime.Real(b.pp.DeltaStb()) })
	if h := ctl.Health(); h.State != StateStabilized {
		t.Fatalf("quiet boot past Δstb = %q, want %q", h.State, StateStabilized)
	}
}

// serveStub boots a control-plane server over a loopback listener.
func serveStub(t *testing.T, be *stubBackend) (*Server, *Client) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := Serve(ln, NewControl(be))
	return srv, NewClient(srv.Addr())
}

// TestServerEndpoints exercises the REST surface end to end over a real
// listener: healthz verdict codes, metrics counter names, initiate
// (including the 409 on IG refusals), fault, bump-epoch (409 on skew),
// and the drain signal.
func TestServerEndpoints(t *testing.T) {
	be := newStub()
	srv, cl := serveStub(t, be)
	defer srv.Shutdown(context.Background())

	if _, ok, err := cl.Health(); err != nil || ok {
		t.Fatalf("boot healthz ok=%v err=%v, want 503", ok, err)
	}
	srv.ctl.Observe(protocol.TraceEvent{Kind: protocol.EvDecide, Node: 0, RT: 50})
	h, ok, err := cl.Health()
	if err != nil || !ok || h.State != StateStabilized {
		t.Fatalf("healthz = %+v ok=%v err=%v, want stabilized 200", h, ok, err)
	}

	be.set(func(b *stubBackend) { b.stats.Sent = 7; b.stats.EpochDrops = 3 })
	m, err := cl.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Counters["sent"] != 7 || m.Counters["epoch_drops"] != 3 {
		t.Fatalf("metrics counters = %v", m.Counters)
	}
	if len(m.Counters) != len(nettrans.CounterNames) {
		t.Fatalf("metrics carries %d counters, want the full %d-name vector",
			len(m.Counters), len(nettrans.CounterNames))
	}

	if err := cl.Initiate(0, "hello"); err != nil {
		t.Fatalf("initiate: %v", err)
	}
	if got := be.initiated; len(got) != 1 || got[0] != "0:hello" {
		t.Fatalf("initiated = %v", got)
	}
	be.set(func(b *stubBackend) { b.initiateErr = errors.New("IG2: too soon") })
	if err := cl.Initiate(0, "again"); err == nil || !strings.Contains(err.Error(), "IG2") {
		t.Fatalf("refused initiate error = %v, want IG2 conflict", err)
	}

	if err := cl.Fault(9, 1000); err != nil {
		t.Fatalf("fault: %v", err)
	}
	if be.faults != 1 {
		t.Fatalf("faults = %d", be.faults)
	}
	if h, ok, _ := cl.Health(); ok || h.State != StateRestabilizing {
		t.Fatalf("post-fault healthz = %+v ok=%v, want re-stabilizing 503", h, ok)
	}

	if err := cl.BumpEpoch(2, 5); err != nil {
		t.Fatalf("bump-epoch: %v", err)
	}
	if err := cl.BumpEpoch(2, 1); err == nil || !strings.Contains(err.Error(), "epoch skew") {
		t.Fatalf("backwards bump error = %v, want epoch skew conflict", err)
	}
	if be.bumps[2] != 5 {
		t.Fatalf("bumps = %v", be.bumps)
	}

	if err := cl.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case reason := <-srv.Done():
		if reason != "drain" {
			t.Fatalf("done reason = %q", reason)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drain signal never delivered")
	}
}

// TestShutdownOrderingCleanEOF pins the daemon teardown contract under
// -race: an in-flight /events subscriber must see the stream end in a
// clean EOF when Shutdown runs — the bus closes BEFORE the HTTP
// listener, while the connection is still healthy. Reversing the order
// (transports first) surfaces as a read error here.
func TestShutdownOrderingCleanEOF(t *testing.T) {
	be := newStub()
	srv, cl := serveStub(t, be)

	var mu sync.Mutex
	var got []Event
	errCh := make(chan error, 1)
	go func() {
		errCh <- cl.Events(context.Background(), func(ev Event) {
			mu.Lock()
			got = append(got, ev)
			mu.Unlock()
		})
	}()

	// Publish until the subscriber provably receives — then we know the
	// stream is attached and mid-flight when Shutdown fires.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.ctl.Bus().Publish(Event{Type: "tick", Node: 0})
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never attached")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("/events ended with %v, want clean EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("/events stream never ended after Shutdown")
	}
}

// TestEventsStream checks the NDJSON shape on the wire: subscribe over
// HTTP, publish typed events, and decode them back field for field.
func TestEventsStream(t *testing.T) {
	be := newStub()
	srv, cl := serveStub(t, be)
	defer srv.Shutdown(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	evCh := make(chan Event, 16)
	go func() {
		_ = cl.Events(ctx, func(ev Event) { evCh <- ev })
	}()

	want := Event{Type: "epoch", Node: 3, Tick: 42, Attrs: map[string]string{"peer": "1", "incarnation": "2"}}
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.ctl.Bus().Publish(want)
		select {
		case ev := <-evCh:
			if ev.Type != want.Type || ev.Node != want.Node || ev.Tick != want.Tick ||
				ev.Attrs["peer"] != "1" || ev.Attrs["incarnation"] != "2" {
				t.Fatalf("event = %+v, want %+v", ev, want)
			}
			return
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("published event never arrived")
		}
	}
}

// TestSpecValidation pins the sentinel-matching discipline: every bad
// spec fails with errors.Is(err, nettrans.ErrBadManifest), never a
// string match.
func TestSpecValidation(t *testing.T) {
	good := QuickSpec(4, 2, 100, 7)
	if err := good.Validate(); err != nil {
		t.Fatalf("QuickSpec invalid: %v", err)
	}
	if got := good.ScaleTargets(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("ScaleTargets = %v, want [3]", got)
	}

	cases := []struct {
		name string
		mut  func(*ClusterSpec)
	}{
		{"bad manifest", func(s *ClusterSpec) { s.Manifest.N = 0 }},
		{"negative entries", func(s *ClusterSpec) { s.Entries = -1 }},
		{"descending steps", func(s *ClusterSpec) { s.Steps[1].At = s.Steps[0].At - 1 }},
		{"step after drain", func(s *ClusterSpec) {
			s.Steps = append(s.Steps, Step{Op: OpRoll, Node: 1, At: s.Steps[2].At + 1})
		}},
		{"roll of the General", func(s *ClusterSpec) { s.Steps[1].Node = 0 }},
		{"scale out of range", func(s *ClusterSpec) { s.Steps[0].Node = 9 }},
		{"scale twice", func(s *ClusterSpec) {
			s.Steps = append([]Step{{Op: OpScale, Node: 3, At: 0}}, s.Steps...)
		}},
		{"unknown op", func(s *ClusterSpec) { s.Steps[0].Op = "reboot" }},
		{"too many scale targets", func(s *ClusterSpec) {
			s.Steps = append([]Step{{Op: OpScale, Node: 1, At: 0}}, s.Steps...)
		}},
	}
	for _, tc := range cases {
		s := QuickSpec(4, 2, 100, 7)
		tc.mut(&s)
		if err := s.Validate(); !errors.Is(err, nettrans.ErrBadManifest) {
			t.Errorf("%s: err = %v, want ErrBadManifest", tc.name, err)
		}
	}

	if _, err := ParseSpec([]byte("{")); err == nil {
		t.Fatal("ParseSpec of garbage succeeded")
	}
	blob, err := json.Marshal(good)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := ParseSpec(blob)
	if err != nil {
		t.Fatalf("ParseSpec round trip: %v", err)
	}
	if len(back.Steps) != 3 || back.Steps[1].Op != OpRoll {
		t.Fatalf("round-tripped spec = %+v", back)
	}
}
