package ops

import (
	"bytes"
	"testing"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/simtime"
)

// runVirtualCampaign executes the canonical quick campaign (n=4, scale
// node 3 at 10d, roll node 2 at 22d, drain) under a fresh fake clock and
// returns the report plus a canonical byte rendering: the JSON report
// (trace pointer stripped) followed by every trace event, sorted and
// wire-encoded. Two runs of the same seed must produce identical bytes.
func runVirtualCampaign(t *testing.T, seed int64) (*CampaignReport, []byte) {
	t.Helper()
	rep, err := RunCampaign(CampaignConfig{
		Spec:  QuickSpec(4, 2, 250, seed),
		Tick:  100 * time.Microsecond,
		Clock: clock.NewFake(time.Time{}),
	})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}

	return rep, rep.Canonical()
}

// TestCampaignVirtual drives the full boot→scale→roll→drain campaign in
// virtual time and checks the operational claims the orchestrator
// asserts: the workload commits, the scale-up and roll both execute, the
// rolled node re-stabilizes within Δstb = 2Δreset, every peer rejects
// the old incarnation's replay probe, and the fleet's final health is
// stabilized across the board.
func TestCampaignVirtual(t *testing.T) {
	rep, _ := runVirtualCampaign(t, 7)

	if rep.Committed == 0 || rep.Failed != 0 || rep.Dropped != 0 {
		t.Fatalf("workload: committed=%d failed=%d dropped=%d",
			rep.Committed, rep.Failed, rep.Dropped)
	}
	if len(rep.Scales) != 1 || rep.Scales[0].Node != 3 {
		t.Fatalf("scales = %+v", rep.Scales)
	}
	if len(rep.Rolls) != 1 {
		t.Fatalf("rolls = %+v", rep.Rolls)
	}
	roll := rep.Rolls[0]
	if roll.Node != 2 || roll.Incarnation != 1 {
		t.Fatalf("roll = %+v", roll)
	}
	if roll.RestabTicks < 0 || !roll.WithinDeltaStb {
		t.Fatalf("roll never re-stabilized within Δstb=%d: %+v", rep.Params.DeltaStb(), roll)
	}
	if roll.EpochDropPeers != rep.Params.N-1 {
		t.Fatalf("replay probe rejected by %d peers, want %d", roll.EpochDropPeers, rep.Params.N-1)
	}
	for id, st := range rep.Health {
		if st != StateStabilized {
			t.Fatalf("final health[%d] = %q, want %q", id, st, StateStabilized)
		}
	}
	if rep.EventCounts["decide"] == 0 || rep.EventCounts["stabilized"] == 0 {
		t.Fatalf("event counts = %v", rep.EventCounts)
	}
	if simtime.Duration(rep.Horizon) <= 30*rep.Params.D {
		t.Fatalf("horizon %d did not pass the drain tick", rep.Horizon)
	}
}

// TestCampaignDeterministic pins V4's core property: the same spec and
// seed produce byte-identical campaigns — report and full sorted trace —
// across independent runs under virtual time.
func TestCampaignDeterministic(t *testing.T) {
	_, a := runVirtualCampaign(t, 7)
	_, b := runVirtualCampaign(t, 7)
	if !bytes.Equal(a, b) {
		t.Fatalf("campaign not deterministic: run lengths %d vs %d", len(a), len(b))
	}
	_, c := runVirtualCampaign(t, 8)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical campaigns — seed is not wired through")
	}
}
