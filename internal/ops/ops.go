// Package ops is the cluster operations layer: the control plane that
// turns a running ss-Byz-Agree node into something an operator (or the
// ssbyz-cluster orchestrator) can observe and steer while the protocol
// is live. It is built on the one property the paper proves that makes
// day-2 operations safe at all — self-stabilization: from an arbitrary
// state the system re-converges within Δstb = 2Δreset, so a node that
// is stopped, replaced, and rebooted at a higher incarnation is just
// another transient fault the protocol already recovers from, and the
// ops layer's job is to expose that recovery (health states, events,
// counters) and to prove it end to end (the roll campaign).
//
// The surface mirrors the libpod/podman server shape: a per-node REST
// API (/healthz, /metrics, /events as NDJSON, POST initiate/fault/
// drain/stop/bump-epoch — http.go), a health-state machine derived from
// the node's actual protocol trace and transport counters (this file),
// and a declarative cluster spec the orchestrator executes as a
// boot→scale→roll→drain campaign (spec.go, campaign.go). Everything
// runs identically under the injected virtual clock, which is how the
// campaign joins the deterministic experiment suite as V4.
package ops

import (
	"fmt"
	"sync"

	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// NodeBackend is the node-side surface the control plane drives: the
// daemon implements it over its NetNode (backend.go), tests over stubs.
type NodeBackend interface {
	// ID is this node's committee identity.
	ID() protocol.NodeID
	// Params are the protocol constants (Δstb budgets derive from them).
	Params() protocol.Params
	// NowTicks is the node's clock reading in ticks since the epoch.
	NowTicks() simtime.Real
	// Stats is the live 15-counter transport vector.
	Stats() nettrans.Stats
	// Incarnation is the node's current incarnation number.
	Incarnation() uint64
	// Initiate starts agreement on v in the given concurrent-invocation
	// slot (slot 0 on single-session nodes); IG1–IG3 refusals come back
	// as errors.
	Initiate(slot int, v protocol.Value) error
	// InjectFault corrupts the RUNNING protocol state in place — the
	// paper's transient-fault model, applied inside the event loop.
	InjectFault(seed int64, severityPermille, inFlight int) error
	// BumpPeerEpoch raises the expected incarnation of a peer (a roll in
	// progress); backwards moves fail with nettrans.ErrEpochSkew.
	BumpPeerEpoch(peer protocol.NodeID, incarnation uint64) error
}

// State is one of the three operational health states /healthz reports.
type State string

const (
	// StateStabilized: the node has evidence of convergence — a decide
	// observed with no fault pending, or Δstb of quiet since boot (the
	// theorem's budget with nothing left to converge from).
	StateStabilized State = "stabilized"
	// StateRestabilizing: the node is inside a convergence window — just
	// booted, or a transient fault / roll was injected and no decide has
	// landed since. The paper bounds this window by Δstb = 2Δreset.
	StateRestabilizing State = "re-stabilizing"
	// StatePartitioned: the transport is sending but nothing has arrived
	// since the previous health scrape — the node is cut off from the
	// committee and cannot converge until connectivity returns.
	StatePartitioned State = "partitioned"
)

// partitionSendFloor is how many sends must go unanswered between two
// health scrapes before the node calls itself partitioned; below it the
// scrape window was too quiet to judge.
const partitionSendFloor = 8

// Control is the per-node health-state machine and event source: the
// node's trace sink feeds Observe, operations (faults, rolls, epoch
// bumps) feed the Mark methods, and the REST layer reads Health and
// Metrics and streams the Bus.
type Control struct {
	be  NodeBackend
	bus *Bus

	mu         sync.Mutex
	state      State
	decides    int64
	suspicions int64
	lastDecide simtime.Real
	faultAt    simtime.Real // tick of the pending fault/roll; -1 when none
	lastSent   int64        // previous health scrape, for partition detection
	lastRecv   int64
}

// NewControl builds the state machine in its boot state: re-stabilizing,
// because a node fresh from arbitrary state has no evidence of
// convergence until a decide lands or Δstb passes.
func NewControl(be NodeBackend) *Control {
	return &Control{
		be:         be,
		bus:        NewBus(),
		state:      StateRestabilizing,
		lastDecide: -1,
		faultAt:    -1,
	}
}

// Bus returns the node's event bus (the /events source).
func (c *Control) Bus() *Bus { return c.bus }

// Close shuts the event bus down: every subscriber's channel closes, so
// in-flight /events streams end with a clean EOF. Part of the daemon's
// shutdown ordering contract — Close runs BEFORE transports come down.
func (c *Control) Close() { c.bus.Close() }

// Observe taps one trace event from the node's sink: decides move the
// machine to stabilized (and clear a pending fault window), aborts are
// published as suspicions. Cheap by design — it runs on the node's
// event-loop path.
func (c *Control) Observe(ev protocol.TraceEvent) {
	switch ev.Kind {
	case protocol.EvDecide:
		c.mu.Lock()
		c.decides++
		c.lastDecide = ev.RT
		transitioned := c.state != StateStabilized
		c.state = StateStabilized
		c.faultAt = -1
		c.mu.Unlock()
		c.bus.Publish(Event{Type: "decide", Node: int(ev.Node), Tick: int64(ev.RT),
			Attrs: map[string]string{"g": fmt.Sprint(ev.G), "value": string(ev.M)}})
		if transitioned {
			c.bus.Publish(Event{Type: "stabilized", Node: int(ev.Node), Tick: int64(ev.RT)})
		}
	case protocol.EvAbort:
		c.mu.Lock()
		c.suspicions++
		c.mu.Unlock()
		c.bus.Publish(Event{Type: "suspicion", Node: int(ev.Node), Tick: int64(ev.RT),
			Attrs: map[string]string{"g": fmt.Sprint(ev.G)}})
	}
}

// MarkFault opens a convergence window: a transient fault was injected
// (or the node was rolled), so the machine reports re-stabilizing until
// the next decide. kind names the cause in the published event.
func (c *Control) MarkFault(kind string, attrs map[string]string) {
	now := c.be.NowTicks()
	c.mu.Lock()
	c.state = StateRestabilizing
	c.faultAt = now
	c.mu.Unlock()
	c.bus.Publish(Event{Type: kind, Node: int(c.be.ID()), Tick: int64(now), Attrs: attrs})
	c.bus.Publish(Event{Type: "re-stabilizing", Node: int(c.be.ID()), Tick: int64(now)})
}

// MarkEpoch publishes an incarnation-epoch change (a peer's roll).
func (c *Control) MarkEpoch(peer protocol.NodeID, incarnation uint64) {
	c.bus.Publish(Event{Type: "epoch", Node: int(c.be.ID()), Tick: int64(c.be.NowTicks()),
		Attrs: map[string]string{"peer": fmt.Sprint(peer), "incarnation": fmt.Sprint(incarnation)}})
}

// Health is the /healthz body: the derived state plus the numbers it
// was derived from.
type Health struct {
	State       State  `json:"state"`
	Node        int    `json:"node"`
	Tick        int64  `json:"tick"`
	Incarnation uint64 `json:"incarnation"`
	Decides     int64  `json:"decides"`
	// SinceFault is ticks since the pending fault/roll, -1 when none —
	// compare against DeltaStb to see how much budget is left.
	SinceFault int64 `json:"since_fault_ticks"`
	// DeltaStb is the stabilization budget 2Δreset in ticks.
	DeltaStb int64 `json:"delta_stb_ticks"`
}

// Health derives the current operational state. The machine prefers bad
// news: a partition verdict (transport sending into silence since the
// last scrape) overrides everything, then a pending fault window, then
// the stabilized/boot logic.
func (c *Control) Health() Health {
	now := c.be.NowTicks()
	st := c.be.Stats()
	pp := c.be.Params()
	c.mu.Lock()
	defer c.mu.Unlock()
	dSent, dRecv := st.Sent-c.lastSent, st.Received-c.lastRecv
	c.lastSent, c.lastRecv = st.Sent, st.Received
	state := c.state
	if state == StateRestabilizing && c.faultAt < 0 && c.decides == 0 &&
		simtime.Duration(now) >= pp.DeltaStb() {
		// Quiet boot past the theorem's budget: with no fault pending and
		// no traffic to disagree about, the system has converged.
		c.state = StateStabilized
		state = StateStabilized
	}
	if c.faultAt >= 0 {
		state = StateRestabilizing
	}
	if dSent >= partitionSendFloor && dRecv == 0 {
		state = StatePartitioned
	}
	sinceFault := int64(-1)
	if c.faultAt >= 0 {
		sinceFault = int64(now - c.faultAt)
	}
	return Health{
		State:       state,
		Node:        int(c.be.ID()),
		Tick:        int64(now),
		Incarnation: c.be.Incarnation(),
		Decides:     c.decides,
		SinceFault:  sinceFault,
		DeltaStb:    int64(pp.DeltaStb()),
	}
}

// Metrics is the /metrics body: the nettrans counter vector by name
// plus the service-level throughput the control plane itself observed.
type Metrics struct {
	Node        int              `json:"node"`
	Tick        int64            `json:"tick"`
	State       State            `json:"state"`
	Incarnation uint64           `json:"incarnation"`
	Decides     int64            `json:"decides"`
	Suspicions  int64            `json:"suspicions"`
	Counters    map[string]int64 `json:"counters"`
}

// Metrics snapshots the node's observable numbers.
func (c *Control) Metrics() Metrics {
	st := c.be.Stats()
	vec := st.Counters()
	counters := make(map[string]int64, len(vec))
	for i, name := range nettrans.CounterNames {
		if i < len(vec) {
			counters[name] = vec[i]
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Metrics{
		Node:        int(c.be.ID()),
		Tick:        int64(c.be.NowTicks()),
		State:       c.state,
		Incarnation: c.be.Incarnation(),
		Decides:     c.decides,
		Suspicions:  c.suspicions,
		Counters:    counters,
	}
}
