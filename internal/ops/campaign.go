package ops

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/indexed"
	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
	"ssbyz/internal/service"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
	"ssbyz/internal/wire"
)

// CampaignConfig runs a ClusterSpec as an in-process campaign: an
// n-node nettrans cluster (loopback sockets on the wall path, the
// deterministic in-memory wire under a *clock.Fake), the service pump
// committing replicated-log entries at General 0 throughout, and the
// spec's membership schedule executed at quiescent points. The virtual
// form is experiment V4; the wall form over real UDP is the L4 smoke.
type CampaignConfig struct {
	Spec      ClusterSpec
	Transport string        // nettrans.TransportUDP (default) or TCP
	Tick      time.Duration // wall tick length (default 100µs)
	// Clock switches to deterministic virtual time when it is a
	// *clock.Fake (nil = wall clock).
	Clock clock.Clock
	// LegacyWire disables frame coalescing (one datagram per frame), for
	// the wire differential suite. Reports must be identical either way.
	LegacyWire bool
}

// ScaleReport is one executed scale-up step.
type ScaleReport struct {
	Node int   `json:"node"`
	At   int64 `json:"at"` // tick the slot booted
}

// RollReport is one executed rolling replacement and its verdicts.
type RollReport struct {
	Node        int    `json:"node"`
	At          int64  `json:"at"` // tick the roll executed
	Incarnation uint64 `json:"incarnation"`
	// RestabTicks is the observed re-stabilization time: first decide by
	// the replacement after the roll, in ticks (-1 if never observed).
	RestabTicks int64 `json:"restab_ticks"`
	// WithinDeltaStb is the paper's contract: RestabTicks ≤ Δstb = 2Δreset.
	WithinDeltaStb bool `json:"within_delta_stb"`
	// EpochDropPeers counts peers that rejected old-incarnation frames
	// (the replay probe) after the roll — the proof the old life is dead.
	EpochDropPeers int `json:"epoch_drop_peers"`
}

// CampaignReport is a finished campaign.
type CampaignReport struct {
	Params    protocol.Params
	Committed int // replicated-log entries committed at General 0
	Failed    int
	Dropped   int
	Scales    []ScaleReport
	Rolls     []RollReport
	// Health is every slot's final health state, indexed by node id,
	// derived by replaying the canonical (sorted) trace through each
	// node's Control — deterministic under virtual time.
	Health []State
	// EventCounts tallies the ops events the replay published, by type.
	EventCounts map[string]int
	Stats       nettrans.Stats
	Horizon     int64 // the campaign's extent in ticks
	// Result is the shaped trace, for callers that want the battery.
	Result *sim.Result
}

// clusterBackend adapts one cluster slot to the NodeBackend surface for
// the end-of-run health replay.
type clusterBackend struct {
	c  *nettrans.Cluster
	id protocol.NodeID
}

func (b *clusterBackend) ID() protocol.NodeID     { return b.id }
func (b *clusterBackend) Params() protocol.Params { return b.c.Params() }
func (b *clusterBackend) NowTicks() simtime.Real  { return b.c.NowTicks() }
func (b *clusterBackend) Stats() nettrans.Stats   { return b.c.NodeStats(b.id) }
func (b *clusterBackend) Incarnation() uint64     { return b.c.Incarnations()[b.id] }
func (b *clusterBackend) BumpPeerEpoch(peer protocol.NodeID, inc uint64) error {
	return b.c.BumpPeerEpoch(peer, inc)
}
func (b *clusterBackend) Initiate(slot int, v protocol.Value) error {
	_, _, err := b.c.InitiateIn(b.id, slot, v, 2*time.Second)
	return err
}
func (b *clusterBackend) InjectFault(seed int64, severityPermille, inFlight int) error {
	return fmt.Errorf("ops: campaign backends do not inject faults")
}

// pumpBackend drives pump initiations through the cluster, like the
// service layer's live backend.
type pumpBackend struct{ c *nettrans.Cluster }

func (b *pumpBackend) Initiate(g protocol.NodeID, slot int, v protocol.Value) (protocol.Value, error) {
	_, wireV, err := b.c.InitiateIn(g, slot, v, 2*time.Second)
	return wireV, err
}

// pendingRoll tracks one executed roll until its verdicts land.
type pendingRoll struct {
	report     *RollReport
	rollTick   simtime.Real
	dropsAt    map[protocol.NodeID]int64 // EpochDrops per peer before the probe
	restabbed  bool
	probeJudge bool
}

// RunCampaign executes the spec end to end and reports. An error means
// the campaign could not run or timed out; protocol-level verdicts
// (re-stabilization, replay rejection) are in the report for the caller
// to judge.
func RunCampaign(cfg CampaignConfig) (*CampaignReport, error) {
	spec := cfg.Spec
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pp := spec.Manifest.Params()
	tick := cfg.Tick
	if tick <= 0 {
		tick = 100 * time.Microsecond
	}
	sessions := spec.Sessions
	if sessions < 1 {
		sessions = 1
	}
	entries := spec.Entries
	if entries <= 0 {
		entries = 8
	}

	ccfg := nettrans.ClusterConfig{
		Params:    pp,
		Tick:      tick,
		Transport: cfg.Transport,
		Clock:     cfg.Clock,
		Seed:      spec.Seed,
		Absent:    spec.ScaleTargets(),

		LegacyDatagramPerFrame: cfg.LegacyWire,
	}
	if sessions > 1 {
		ccfg.NewNode = func() protocol.Node { return indexed.NewNode(sessions) }
	}
	c, err := nettrans.NewCluster(ccfg)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	pump := service.NewPump(service.PumpConfig{
		Params:   pp,
		Backend:  &pumpBackend{c: c},
		Recorder: c.Recorder(),
		Sessions: sessions,
		// The campaign judges the roll under a fully committed workload, so
		// nothing sheds: the queue holds the whole arrival schedule.
		QueueLimit: entries,
		Loads: []service.Workload{{
			G:        0,
			Arrivals: service.PoissonArrivals(spec.Seed+1, simtime.Real(2*pp.D), 3*pp.D, entries),
		}},
	})

	report := &CampaignReport{Params: pp, EventCounts: make(map[string]int)}
	steps := append([]Step(nil), spec.Steps...)
	var pending []*pendingRoll
	drained := false

	// The budget: the whole schedule, plus Δstb for the last roll to
	// re-stabilize, plus agreement time for the tail of the workload.
	var lastAt int64
	for _, st := range steps {
		if st.At > lastAt {
			lastAt = st.At
		}
	}
	horizon := simtime.Duration(lastAt) + pp.DeltaStb() + 2*pp.DeltaAgr() + 40*pp.D
	fake, _ := cfg.Clock.(*clock.Fake)
	quarter := time.Duration(pp.D) / 4 * tick
	deadline := time.Now().Add(time.Duration(horizon)*tick + 60*time.Second)

	execute := func(st Step, now simtime.Real) error {
		switch st.Op {
		case OpScale:
			if err := c.StartNode(protocol.NodeID(st.Node)); err != nil {
				return fmt.Errorf("ops: scale step: %w", err)
			}
			report.Scales = append(report.Scales, ScaleReport{Node: st.Node, At: int64(now)})
		case OpRoll:
			id := protocol.NodeID(st.Node)
			oldInc := c.Incarnations()[id]
			drops := make(map[protocol.NodeID]int64)
			for _, peer := range c.Correct() {
				if peer != id {
					drops[peer] = c.NodeStats(peer).EpochDrops
				}
			}
			inc, err := c.RollNode(id)
			if err != nil {
				return fmt.Errorf("ops: roll step: %w", err)
			}
			// The replay probe: one frame stamped with the node's previous
			// incarnation, offered to every peer. The acceptance pipeline
			// must reject it at its first step (EpochDrops).
			probe := replayProbe(c, id, oldInc, now)
			for peer := range drops {
				if err := c.InjectFrame(id, peer, probe); err != nil {
					return fmt.Errorf("ops: replay probe to %d: %w", peer, err)
				}
			}
			rr := &RollReport{Node: st.Node, At: int64(now), Incarnation: inc, RestabTicks: -1}
			report.Rolls = append(report.Rolls, *rr)
			pending = append(pending, &pendingRoll{
				report:   &report.Rolls[len(report.Rolls)-1],
				rollTick: now,
				dropsAt:  drops,
			})
		}
		return nil
	}

	// settle tracks the post-drain flush: decide returns trail the last
	// commit by up to 2d, and the trace freezes only after them.
	for {
		now := c.NowTicks()
		// Membership steps execute at quiescent points: under virtual time
		// the fake clock has fully settled between advances, so the
		// schedule is exact and the campaign deterministic.
		for len(steps) > 0 && simtime.Real(steps[0].At) <= now && steps[0].Op != OpDrain {
			st := steps[0]
			steps = steps[1:]
			if err := execute(st, now); err != nil {
				return nil, err
			}
		}
		pump.Step(now)
		judgeRolls(c, pending, pp)

		// The drain gate: schedule exhausted up to the drain, workload
		// committed, every roll re-stabilized (or its budget blown — the
		// report carries the verdict either way).
		if len(steps) > 0 && steps[0].Op == OpDrain && simtime.Real(steps[0].At) <= now &&
			pump.Idle() && rollsSettled(pending, now, pp) {
			steps = steps[1:]
			drained = true
		}
		if drained && len(steps) == 0 {
			break
		}
		if simtime.Duration(now) >= horizon {
			return nil, fmt.Errorf("ops: campaign did not drain within %d ticks (pump idle=%v, %d steps left)",
				horizon, pump.Idle(), len(steps))
		}
		if fake != nil {
			fake.Advance(quarter)
		} else {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("ops: campaign wall deadline exceeded (%d steps left)", len(steps))
			}
			time.Sleep(quarter)
		}
	}
	// Flush the decide-return tail before freezing the trace (the
	// General's own return leads peers by ≤ 2d).
	if fake != nil {
		fake.Advance(2 * time.Duration(pp.D) * tick)
	} else {
		time.Sleep(2 * time.Duration(pp.D) * tick)
	}
	judgeRolls(c, pending, pp)

	report.Horizon = int64(c.NowTicks())
	report.Stats = c.Stats()
	for _, lr := range pump.Results() {
		report.Committed += len(lr.Committed)
		report.Dropped += lr.Dropped
		report.Failed += lr.Failed
	}
	report.Result = c.Result(simtime.Duration(report.Horizon) + 1)
	replayHealth(c, report)
	return report, nil
}

// Canonical renders the report to bytes that must be identical for two
// runs of the same spec and seed under virtual time: the JSON report
// (minus the trace pointer) followed by every trace event, sorted
// (RT, node, kind) and wire-encoded. V4's determinism gate compares
// these byte strings across runs and worker counts.
func (r *CampaignReport) Canonical() []byte {
	events := r.Result.Rec.Events()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].RT != events[j].RT {
			return events[i].RT < events[j].RT
		}
		if events[i].Node != events[j].Node {
			return events[i].Node < events[j].Node
		}
		return events[i].Kind < events[j].Kind
	})
	shallow := *r
	shallow.Result = nil
	blob, err := json.Marshal(shallow)
	if err != nil {
		blob = []byte(err.Error())
	}
	for _, ev := range events {
		blob = wire.AppendTraceEvent(blob, ev)
	}
	return blob
}

// judgeRolls updates pending rolls against the trace and counters:
// re-stabilization is the first decide by the replacement after the
// roll (order-insensitive recorder query, so virtual runs stay
// deterministic), replay rejection is an EpochDrops increase at every
// probed peer.
func judgeRolls(c *nettrans.Cluster, pending []*pendingRoll, pp protocol.Params) {
	for _, pr := range pending {
		if !pr.restabbed {
			first := simtime.Real(-1)
			c.Recorder().ForEachKind(func(ev protocol.TraceEvent) {
				if ev.Node == protocol.NodeID(pr.report.Node) && ev.RT >= pr.rollTick &&
					(first < 0 || ev.RT < first) {
					first = ev.RT
				}
			}, protocol.EvDecide)
			if first >= 0 {
				pr.restabbed = true
				pr.report.RestabTicks = int64(first - pr.rollTick)
				pr.report.WithinDeltaStb = simtime.Duration(pr.report.RestabTicks) <= pp.DeltaStb()
			}
		}
		peers := 0
		for peer, before := range pr.dropsAt {
			if c.NodeStats(peer).EpochDrops > before {
				peers++
			}
		}
		pr.report.EpochDropPeers = peers
	}
}

// rollsSettled reports whether every roll has either re-stabilized or
// exhausted its Δstb budget (the report then carries the failure).
func rollsSettled(pending []*pendingRoll, now simtime.Real, pp protocol.Params) bool {
	for _, pr := range pending {
		if !pr.restabbed && simtime.Duration(now-pr.rollTick) <= pp.DeltaStb() {
			return false
		}
	}
	return true
}

// replayProbe forges one frame from node id's PREVIOUS incarnation.
func replayProbe(c *nettrans.Cluster, id protocol.NodeID, oldInc uint64, now simtime.Real) []byte {
	return ReplayProbe(c.WireEpochID(oldInc), id, int64(now))
}

// ReplayProbe forges a protocol frame stamped with the given wire epoch
// id — an old incarnation of node from. Orchestrators offer it to each
// peer after a roll; the acceptance pipeline must reject it at its
// first step (epoch_drops), proving the old life is dead.
func ReplayProbe(epochID uint64, from protocol.NodeID, sent int64) []byte {
	return wire.AppendFrame(nil, wire.Frame{
		Kind:  wire.FrameMessage,
		From:  from,
		Epoch: epochID,
		Sent:  sent,
		Payload: wire.AppendMessage(nil, protocol.Message{
			Kind: protocol.Initiator, G: from, From: from, M: "stale",
		}),
	})
}

// replayHealth replays the campaign's canonical trace through one
// Control per slot and records the final health states and event
// tallies. The trace is sorted (RT, then node) first, so the replay —
// and with it the report — is independent of recorder arrival order.
func replayHealth(c *nettrans.Cluster, report *CampaignReport) {
	events := c.Recorder().Events()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].RT != events[j].RT {
			return events[i].RT < events[j].RT
		}
		return events[i].Node < events[j].Node
	})
	n := report.Params.N
	report.Health = make([]State, n)
	controls := make([]*Control, n)
	chans := make([]<-chan Event, n)
	for i := 0; i < n; i++ {
		controls[i] = NewControl(&clusterBackend{c: c, id: protocol.NodeID(i)})
		ch, _ := controls[i].Bus().Subscribe(2*len(events) + 64)
		chans[i] = ch
	}
	for _, ev := range events {
		if int(ev.Node) < n {
			controls[ev.Node].Observe(ev)
		}
	}
	for i := 0; i < n; i++ {
		report.Health[i] = controls[i].Health().State
		controls[i].Close()
		for ev := range chans[i] {
			report.EventCounts[ev.Type]++
		}
	}
}
