package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Min != 0 || s.Max != 0 || s.Mean != 0 {
		t.Errorf("empty Summarize = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.N != 1 || s.Min != 42 || s.Max != 42 || s.Mean != 42 || s.P50 != 42 || s.P99 != 42 || s.StdDev != 0 {
		t.Errorf("single Summarize = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Errorf("basic stats wrong: %+v", s)
	}
	if s.Mean != 5.5 {
		t.Errorf("Mean = %v, want 5.5", s.Mean)
	}
	if s.P50 != 5 {
		t.Errorf("P50 = %v, want 5 (nearest rank)", s.P50)
	}
	if s.P95 != 10 {
		t.Errorf("P95 = %v, want 10", s.P95)
	}
	wantStd := math.Sqrt(8.25)
	if math.Abs(s.StdDev-wantStd) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", s.StdDev, wantStd)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

// TestSummarizeProperties: min ≤ p50 ≤ p95 ≤ p99 ≤ max and min ≤ mean ≤ max.
func TestSummarizeProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		in := make([]float64, len(raw))
		for i, v := range raw {
			in[i] = float64(v)
		}
		s := Summarize(in)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.N == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPercentileMatchesNearestRank cross-checks against a direct
// nearest-rank computation.
func TestPercentileMatchesNearestRank(t *testing.T) {
	f := func(raw []int16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		in := make([]float64, len(raw))
		for i, v := range raw {
			in[i] = float64(v)
		}
		sort.Float64s(in)
		p := float64(pRaw%101) / 100
		idx := int(math.Ceil(p*float64(len(in)))) - 1
		if idx < 0 {
			idx = 0
		}
		return percentile(in, p) == in[idx]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInts(t *testing.T) {
	got := Ints([]int64{1, 2, 3})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Ints = %v", got)
	}
	type myInt int
	got2 := Ints([]myInt{7})
	if got2[0] != 7 {
		t.Errorf("Ints custom type = %v", got2)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", 1.0)
	tab.AddRow("beta", 2.5)
	tab.AddRow("g", 12)
	out := tab.String()
	if !strings.Contains(out, "### demo") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, blank, header, separator, 3 rows.
	if len(lines) != 7 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Whole floats render without decimals; fractional with two.
	if !strings.Contains(out, " 1 ") || !strings.Contains(out, "2.50") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	// All rows align to the same width.
	w := len(lines[2])
	for _, l := range lines[2:] {
		if len(l) != w {
			t.Errorf("misaligned row %q (%d vs %d)", l, len(l), w)
		}
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tab := NewTable("", "h")
	tab.AddRow("x")
	if strings.Contains(tab.String(), "###") {
		t.Error("untitled table rendered a title")
	}
}

func TestInD(t *testing.T) {
	if got := InD(4200, 1000); got != "4.20d" {
		t.Errorf("InD = %q", got)
	}
	if got := InD(4200, 0); got != "4200" {
		t.Errorf("InD with d=0 = %q", got)
	}
}
