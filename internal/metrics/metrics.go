// Package metrics provides the small statistics and table-rendering
// toolkit used by the experiment harness: summaries (min/mean/percentile/
// max) over tick-valued samples and fixed-width table output matching the
// report `ssbyz-bench -o` writes.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics over a sample set.
type Summary struct {
	N             int
	Min, Max      float64
	Mean          float64
	P50, P95, P99 float64
	StdDev        float64
}

// Summarize computes a Summary; an empty input yields a zero Summary.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	varsum := 0.0
	for _, v := range s {
		varsum += (v - mean) * (v - mean)
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   mean,
		P50:    percentile(s, 0.50),
		P95:    percentile(s, 0.95),
		P99:    percentile(s, 0.99),
		StdDev: math.Sqrt(varsum / float64(len(s))),
	}
}

// percentile returns the p-quantile (0 ≤ p ≤ 1) of sorted samples by the
// nearest-rank method.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Ints converts integer-like samples to float64.
func Ints[T ~int | ~int64](in []T) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = float64(v)
	}
	return out
}

// Table renders aligned rows with a header, in GitHub-flavored markdown.
// It also marshals into the harness's JSON suite artifact.
type Table struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// InD formats a tick count as a multiple of d for readability, e.g. 4200
// ticks with d=1000 renders "4.20d".
func InD(ticks, d float64) string {
	if d == 0 {
		return trimFloat(ticks)
	}
	return fmt.Sprintf("%.2fd", ticks/d)
}
