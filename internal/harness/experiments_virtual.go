package harness

import (
	"fmt"
	"time"

	"ssbyz/internal/check"
	"ssbyz/internal/clock"
	"ssbyz/internal/metrics"
	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
	"ssbyz/internal/service"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Experiments V1/V2 "Deterministic live campaign": the live runtimes — the
// socket-shaped nettrans pipeline (V1) and the replicated-log service over
// it (V2) — run under virtual time on a clock.Fake over the deterministic
// in-memory wire (DESIGN.md §9). The SAME code as L1/L2 executes above the
// transport: wire codec, source authentication, epoch checks, deadline
// drops, chaos schedules, event loops, the pump. What changes is time:
// every timer fires in (deadline, seq) order and every cascade drains
// before the next, so — unlike L1/L2, whose wall-clock numbers vary with
// the host — these cells are exactly reproducible and their columns are
// reported in ticks and multiples of d. That is why V1/V2 live in All()
// and the default `go test ./...` while L1/L2 need `-live`: a deterministic
// live campaign can gate CI byte-for-byte.

// virtCell is one virtual live cluster run (the deterministic counterpart
// of liveCell: same pipeline, no wall-clock fields).
type virtCell struct {
	lats       []float64 // per-node decide latency, ticks
	stats      nettrans.Stats
	violations int
	errs       []string
}

// runVirtualCell runs one agreement on a fresh virtual cluster. All
// randomness is the wire seed; equal arguments give equal cells, which is
// what lets the sweep fan out across workers without losing determinism.
func runVirtualCell(n int, transport string, conds []simnet.Condition,
	faulty map[protocol.NodeID]protocol.Node, seed int64, legacy bool) virtCell {
	var c virtCell
	fail := func(format string, args ...any) virtCell {
		c.violations++
		c.errs = append(c.errs, fmt.Sprintf(format, args...))
		return c
	}
	pp := protocol.DefaultParams(n)
	pp.D = liveD
	cl, err := nettrans.NewCluster(nettrans.ClusterConfig{
		Params: pp, Tick: liveTick, Transport: transport,
		Conditions: conds, Faulty: faulty,
		Clock: clock.NewFake(time.Time{}), Seed: seed,
		LegacyDatagramPerFrame: legacy,
	})
	if err != nil {
		return fail("cluster: %v", err)
	}
	defer cl.Stop()

	const value = protocol.Value("v1")
	t0, err := cl.Initiate(0, value, time.Second)
	if err != nil {
		return fail("initiate: %v", err)
	}
	budget := time.Duration(pp.DeltaAgr()+20*pp.D) * liveTick
	deciders := cl.AwaitDecisions(0, value, budget)
	c.stats = cl.Stats()

	res := cl.Result(simtime.Duration(cl.NowTicks()) + 1)
	lr := &check.LiveResult{Result: res}
	c.lats = lr.DecideLatencies(0, value, t0)
	if deciders != len(res.Correct) || len(c.lats) != len(res.Correct) {
		// Unlike L1 there is no retry path: virtual time cannot be starved
		// by the host, so non-decision here is always protocol signal.
		return fail("only %d/%d correct nodes decided under virtual time", deciders, len(res.Correct))
	}
	vs := lr.Battery([]check.LiveInitiation{{G: 0, V: value, T0: t0}})
	c.violations += len(vs)
	for _, v := range vs {
		c.errs = append(c.errs, v.String())
	}
	return c
}

// virtRow aggregates a (config, seeds) series into one deterministic row.
func virtRow(t *metrics.Table, label string, n, seeds int, cells []virtCell, r *Result) {
	pp := protocol.DefaultParams(n)
	var lats []float64
	var sent, late, chaosDrops int64
	violations := 0
	for _, c := range cells {
		lats = append(lats, c.lats...)
		sent += c.stats.Sent
		late += c.stats.LateDrops
		chaosDrops += c.stats.ChaosDrops
		violations += c.violations
		for _, e := range c.errs {
			r.Notes = append(r.Notes, fmt.Sprintf("%s n=%d: %s", label, n, e))
		}
	}
	s := metrics.Summarize(lats)
	t.AddRow(label, n, pp.F, seeds,
		fmt.Sprintf("%.0f", s.P50),
		fmt.Sprintf("%.0f", s.P95),
		fmt.Sprintf("%.0f", s.Max),
		fmt.Sprintf("%.3f", s.P50/float64(liveD)),
		float64(sent)/float64(seeds),
		late, chaosDrops, violations)
	r.Violations += violations
}

// virtConfig is one V1 sweep cell configuration.
type virtConfig struct {
	label     string
	n         int
	transport string
	conds     []simnet.Condition
	faulty    map[protocol.NodeID]protocol.Node
}

// V1VirtualLive is the deterministic mirror of L1: the same committee
// sweep, TCP baseline, and chaos replay, over the virtual wire. Cells run
// on the shared worker pool — each owns its fake clock, so parallelism
// cannot perturb the cells, and the report is byte-identical for every
// Workers setting and every run.
func V1VirtualLive(opt Options) *Result {
	r := &Result{ID: "V1", Title: "Deterministic live campaign: the socket pipeline under virtual time"}
	seeds := 2
	if !opt.Quick {
		seeds = 5
	}
	horizon := simtime.Real(simtime.Duration(10000) * liveD)
	configs := []virtConfig{
		{"udp", 4, nettrans.TransportUDP, nil, nil},
		{"udp", 7, nettrans.TransportUDP, nil, nil},
		{"udp", 16, nettrans.TransportUDP, nil, nil},
		{"tcp", 4, nettrans.TransportTCP, nil, nil},
		{"udp+chaos", 7, nettrans.TransportUDP,
			[]simnet.Condition{
				{Kind: simnet.CondJitter, From: 0, Until: horizon, Jitter: liveD / 4},
				{Kind: simnet.CondPartition, From: 0, Until: horizon, Nodes: []protocol.NodeID{6}},
			},
			map[protocol.NodeID]protocol.Node{6: nil}},
	}
	grid := sweep(opt, configs, seeds, func(cfg virtConfig, seed int) virtCell {
		return runVirtualCell(cfg.n, cfg.transport, cfg.conds, cfg.faulty,
			int64(cfg.n)*1000+int64(seed), opt.LegacyWire)
	})
	t := metrics.NewTable(
		fmt.Sprintf("virtual-time live agreement (d = %d ticks; all columns deterministic)", liveD),
		"transport", "n", "f", "seeds", "p50 ticks", "p95 ticks", "max ticks", "p50 (d)",
		"msgs/agr", "late drops", "chaos drops", "violations")
	for ci, cfg := range configs {
		virtRow(t, cfg.label, cfg.n, seeds, grid[ci], r)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"same pipeline as L1 — wire codec, authentication, deadline drops, chaos — but timers fire on a fake clock over the deterministic in-memory wire, so every number above is exact and reproducible (DESIGN.md §9)",
		"latencies are in ticks of virtual time, not wall milliseconds: the run is a schedule, not a measurement, and it is byte-identical across runs, hosts, and worker counts",
		"the chaos row replays the L1 ConditionSchedule (jitter everywhere + partition around a crashed node) with a clean battery — deterministically, every time",
	)
	return r
}

// V2VirtualService is the deterministic mirror of L2: the replicated-log
// service with footnote-9 concurrent sessions, driven by the pump under
// virtual time.
func V2VirtualService(opt Options) *Result {
	r := &Result{ID: "V2", Title: "Deterministic live service: replicated log under virtual time"}
	seeds, entries := 2, 6
	if !opt.Quick {
		seeds, entries = 3, 12
	}
	pp := protocol.DefaultParams(4)
	pp.D = liveD
	t := metrics.NewTable(
		fmt.Sprintf("replicated-log service over the virtual wire (n=4, d = %d ticks, %d entries)", liveD, entries),
		"transport", "sessions", "seeds", "committed", "p50 commit ticks", "violations")
	type v2Out struct {
		committed  int
		lats       []float64
		violations int
		errs       []string
	}
	sessionsSweep := []int{1, 8}
	grid := sweep(opt, sessionsSweep, seeds, func(sessions, seed int) v2Out {
		var out v2Out
		arrivals := service.PoissonArrivals(int64(100*sessions+seed),
			simtime.Real(2*pp.D), pp.D/2, entries)
		res, err := service.RunLive(service.LiveConfig{
			Params:     pp,
			Tick:       liveTick,
			Sessions:   sessions,
			QueueLimit: entries, // the spot-check drains everything; S3 owns shedding
			Clock:      clock.NewFake(time.Time{}),
			Seed:       int64(sessions)*100 + int64(seed),
		}, []service.Workload{{G: 0, Arrivals: arrivals}},
			time.Duration(pp.DeltaStb())*liveTick)
		if err != nil {
			out.violations++
			out.errs = append(out.errs, err.Error())
			return out
		}
		lg := res.Logs[0]
		out.committed = len(lg.Committed)
		for _, e := range lg.Committed {
			out.lats = append(out.lats, float64(e.CommittedAt-e.ArrivedAt))
		}
		if lg.Failed != 0 || lg.Dropped != 0 {
			out.violations++
			out.errs = append(out.errs, fmt.Sprintf("failed=%d dropped=%d", lg.Failed, lg.Dropped))
		}
		vs := service.Battery(res.Res, res.Logs)
		out.violations += len(vs)
		for _, v := range vs {
			out.errs = append(out.errs, v.String())
		}
		return out
	})
	for ci, sessions := range sessionsSweep {
		var committed float64
		var lats []float64
		violations := 0
		for _, out := range grid[ci] {
			committed += float64(out.committed)
			lats = append(lats, out.lats...)
			violations += out.violations
			for _, e := range out.errs {
				r.Notes = append(r.Notes, fmt.Sprintf("sessions=%d: %s", sessions, e))
			}
		}
		s := metrics.Summarize(lats)
		t.AddRow("virtual", sessions, seeds, committed/float64(seeds),
			fmt.Sprintf("%.0f", s.P50), violations)
		r.Violations += violations
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"the L2 burst as a deterministic schedule: the pump advances the fake clock a quarter-d at a time, sessions multiplex over the virtual wire, and commit latencies come out in exact ticks",
	)
	return r
}
