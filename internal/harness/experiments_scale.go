package harness

import (
	"fmt"
	"time"

	"ssbyz/internal/check"
	"ssbyz/internal/metrics"
	"ssbyz/internal/protocol"
)

// ScalingNs is the committee-size sweep of experiment S1. Unlike the
// E-series sweeps it is NOT shrunk in quick mode: proving that the
// substrate sustains n = 128 routinely is the point of the experiment, so
// quick mode shrinks only the seed count. Full mode stretches the sweep
// through n = 256 up to n = 1024 (each step ≈8× the previous message
// volume — reachable, not routine; giant cells run seedCapForN seeds).
// The n = 512 quick cell is not part of any default sweep: it runs as the
// env-gated TestScalingQuickBudgetN512 tripwire (scaling_test.go).
func ScalingNs(full bool) []int {
	ns := []int{4, 7, 16, 31, 64, 128}
	if full {
		ns = append(ns, 256, 512, 1024)
	}
	return ns
}

// seedCapForN bounds the per-cell seed count for giant committees: the
// n ≥ 256 cells exist to prove the substrate reaches that scale, and at
// Θ(n³) messages per agreement a single seed is already 10⁷–10⁸
// simulated deliveries — repeating it 8× buys no additional signal for
// hours of wall-clock.
func seedCapForN(n, seeds int) int {
	if n >= 256 {
		return 1
	}
	return seeds
}

// scaleCell is one (n, seed) head-to-head measurement.
type scaleCell struct {
	lats       []float64 // ss-Byz-Agree per-node decision latency, ticks
	msgs       int64     // ss-Byz-Agree total messages
	events     uint64    // discrete events processed (deterministic cost)
	baseLats   []float64 // TPS-87 baseline latencies, ticks
	baseMsgs   int64
	violations int
	// skipped marks a grid cell beyond seedCapForN(n): giant committees
	// run fewer seeds than the rest of the sweep, and the worker-pool
	// grid stays rectangular by filling the tail with skip markers.
	skipped bool
	// wallMS is this cell's wall-clock cost (both protocols + property
	// checks). Non-deterministic; it feeds only the JSON artifact's
	// cell_wall_ms field, never the table.
	wallMS float64
}

// runScaleCell measures one fault-free agreement of both protocols at
// size n with the standard delay range [d/2, d].
func runScaleCell(opt Options, n, seed int) scaleCell {
	start := time.Now()
	var c scaleCell
	pp := protocol.DefaultParams(n)
	sc, t0 := correctGeneralScenario(n, int64(seed), pp.D/2, pp.D)
	res, err := opt.run(sc)
	if err != nil {
		c.violations++
		return c
	}
	lats, _, all := decisionLatencies(res, 0, t0)
	if !all {
		c.violations++
	}
	c.lats = lats
	c.msgs, _ = res.World.MessageCount()
	c.events = res.World.Scheduler().Processed()
	c.violations += countViolations(
		check.Validity(res, 0, t0, "v"),
		check.Agreement(res, 0),
	)
	c.baseLats, c.baseMsgs = runBaseline(opt, pp, int64(seed), pp.D)
	c.wallMS = float64(time.Since(start).Microseconds()) / 1000
	return c
}

// ScalingTable runs the S1 sweep over the given committee sizes and
// returns the result table, the violation count, and the mean per-seed
// wall-clock cost per committee size (keyed by n, in ms). Every figure in
// the table is deterministic (latencies in d, message totals, processed
// discrete events), so the table is byte-identical across machines and
// worker counts; wall-clock cost is deliberately kept out of it and
// reported through the suite's wall_ms / cell_wall_ms JSON fields
// instead.
func ScalingTable(opt Options, ns []int) (*metrics.Table, int, map[string]float64) {
	t := metrics.NewTable("agreement cost vs n (fault-free, δ ∈ [d/2, d])",
		"n", "f", "seeds", "ours lat (d)", "base lat (d)",
		"ours msgs", "base msgs", "ours msgs/n²", "events")
	seeds := opt.seeds(8)
	cells := sweep(opt, ns, seeds, func(n, seed int) scaleCell {
		if seed >= seedCapForN(n, seeds) {
			return scaleCell{skipped: true}
		}
		return runScaleCell(opt, n, seed)
	})
	violations := 0
	cellWall := make(map[string]float64, len(ns))
	for i, n := range ns {
		pp := protocol.DefaultParams(n)
		var lats, baseLats []float64
		var msgs, baseMsgs, events, wall float64
		for _, c := range cells[i] {
			if c.skipped {
				continue
			}
			violations += c.violations
			lats = append(lats, c.lats...)
			baseLats = append(baseLats, c.baseLats...)
			msgs += float64(c.msgs)
			baseMsgs += float64(c.baseMsgs)
			events += float64(c.events)
			wall += c.wallMS
		}
		nSeeds := seedCapForN(n, seeds)
		sN := float64(nSeeds)
		t.AddRow(n, pp.F, nSeeds,
			dF(metrics.Summarize(lats).Mean, pp),
			dF(metrics.Summarize(baseLats).Mean, pp),
			msgs/sN, baseMsgs/sN, msgs/sN/float64(n*n), events/sN)
		cellWall[fmt.Sprint(n)] = wall / sN
	}
	return t, violations, cellWall
}

// S1Scaling is the large-n scalability experiment: agreement latency,
// message count, and simulation cost for ss-Byz-Agree vs the TPS-87
// baseline as the committee grows to n = 128 (256 in full mode). Latency
// stays flat (rounds, not size, bound it) while messages grow
// superquadratically in n at the msgd-broadcast layer — the workload that
// motivated the hot-path rework of msglog, the scheduler, and the
// delivery path (DESIGN.md §5).
func S1Scaling(opt Options) *Result {
	r := &Result{ID: "S1", Title: "Scaling: agreement cost vs n"}
	t, violations, cellWall := ScalingTable(opt, ScalingNs(!opt.Quick))
	r.Violations += violations
	r.Tables = append(r.Tables, t)
	r.CellWallMS = cellWall
	r.Notes = append(r.Notes,
		"latency is flat in n for both protocols (round-bound); ours sits near the actual δ, the baseline near whole Φ rounds",
		"ours msgs/n² grows with n: each msgd-broadcast instance is Θ(n²) and Θ(n) instances run per agreement (see E10 for the per-instance bound)",
		fmt.Sprintf("events is the deterministic discrete-event count per run; per-n wall-clock is recorded as cell_wall_ms in the JSON suite artifact (seeds=%d)", opt.seeds(8)),
	)
	return r
}
