package harness

import (
	"fmt"
	"time"

	"ssbyz/internal/check"
	"ssbyz/internal/clock"
	"ssbyz/internal/core"
	"ssbyz/internal/metrics"
	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
	"ssbyz/internal/scenario"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
	"ssbyz/internal/transient"
)

// Experiments V3/L3 "Adversarial live campaign": the byte-level threat
// model the paper assumes away — and the live runtimes must re-establish
// from bytes. The paper's model gives every correct pair an authenticated
// bounded-delay channel; a real network gives neither, so the wire layer
// rebuilds the model with a codec, source authentication, incarnation
// epochs, the d-deadline, and duplicate suppression (DESIGN.md §10). V3
// attacks every one of those defenses on the virtual-time pipeline: each
// attack class has an injection counter proving the attack fired and a
// defense counter proving the rejection fired, agreement staying correct
// throughout. It then corrupts RUNNING nodes in place (the paper's
// transient faults, via transient.CorruptRunning inside the event loop)
// across a severity sweep, measuring re-stabilization against
// Δstb = 2Δreset, and closes with a generated campaign of live scenario
// specs — WAN matrices, byte attackers, scripted mid-run faults — checked
// by the split-phase battery and shrunk to replayable counterexamples on
// failure. Everything in V3 is byte-deterministic (fake clock, seeded
// wire), so it lives in All() and gates CI; L3 replays the same attack
// classes and the in-situ recovery over REAL loopback sockets under the
// wall clock, appended by `ssbyz-bench -live`.

// advWindow covers any virtual or live attack cell these experiments run.
const advWindow = simtime.Real(1 << 30)

// advClass is one attack class of the V3/L3 matrix: the condition
// schedule that injects it, the counter that proves injection, and the
// counter that proves the corresponding defense rejected it.
type advClass struct {
	label      string
	conds      []simnet.Condition
	attacker   protocol.NodeID // -1: attack legal on correct links, all nodes correct
	agreements int             // 2 for stale replay: the tape must age past d
	flush      bool            // step +8d before reading counters (held/late frames)
	injected   string          // Stats counter name proving the attack fired
	defense    string          // Stats counter name proving the defense fired
}

// advClasses enumerates the attack taxonomy. Attacker-scoped classes put
// the byte attacker on a FAULTY node's NIC (an honest machine in a faulty
// slot): eating or mangling a faulty node's traffic is model-legal
// Byzantine behaviour, so the battery over the correct nodes must stay
// clean. Duplication, in-bound reordering, and WAN shaping are legal on
// any link — those cells run all-correct.
func advClasses() []advClass {
	wan := func(m simtime.Duration, rate int) []simnet.Condition {
		return []simnet.Condition{{
			Kind: simnet.CondWAN, From: 0, Until: advWindow,
			Groups: [][]protocol.NodeID{{0, 1}, {2, 3}},
			Matrix: [][]simtime.Duration{{0, m}, {m, 0}},
			Rate:   rate,
		}}
	}
	return []advClass{
		{label: "corrupt", attacker: 1, injected: "corrupt_frames", defense: "decode_drops",
			conds: []simnet.Condition{{Kind: simnet.CondCorrupt, From: 0, Until: advWindow, Nodes: []protocol.NodeID{1}}}},
		{label: "replay-xepoch", attacker: 1, injected: "replay_frames", defense: "epoch_drops",
			conds: []simnet.Condition{{Kind: simnet.CondReplay, From: 0, Until: advWindow, Nodes: []protocol.NodeID{1}, CrossEpoch: true}}},
		{label: "replay-stale", attacker: 1, agreements: 2, flush: true, injected: "replay_frames", defense: "late_drops",
			conds: []simnet.Condition{{Kind: simnet.CondReplay, From: 0, Until: advWindow, Nodes: []protocol.NodeID{1}}}},
		{label: "forge", attacker: 1, injected: "forge_frames", defense: "auth_drops",
			conds: []simnet.Condition{{Kind: simnet.CondForge, From: 0, Until: advWindow, Nodes: []protocol.NodeID{1}}}},
		{label: "duplicate", attacker: -1, injected: "dup_frames", defense: "dup_drops",
			conds: []simnet.Condition{{Kind: simnet.CondDuplicate, From: 0, Until: advWindow, Copies: 2}}},
		{label: "reorder-hostile", attacker: 1, flush: true, injected: "reorder_holds", defense: "late_drops",
			conds: []simnet.Condition{{Kind: simnet.CondReorder, From: 0, Until: advWindow, Nodes: []protocol.NodeID{1}, Jitter: 3 * liveD}}},
		{label: "wan-clamp", attacker: -1, injected: "sent", defense: "clamps",
			conds: wan(2*liveD, 0)},
		{label: "rate-cap", attacker: -1, injected: "sent", defense: "rate_deferrals",
			conds: []simnet.Condition{{
				Kind: simnet.CondWAN, From: 0, Until: advWindow,
				Groups: [][]protocol.NodeID{{0, 1, 2, 3}},
				Matrix: [][]simtime.Duration{{0}},
				Rate:   1,
			}}},
	}
}

// statCounter reads one Stats counter by its CounterNames name.
func statCounter(s nettrans.Stats, name string) int64 {
	v := s.Counters()
	for i, n := range nettrans.CounterNames {
		if n == name {
			return v[i]
		}
	}
	return -1
}

// advCell is one attack-class run: injection and defense counts plus the
// usual verdicts.
type advCell struct {
	injected, defense int64
	stats             nettrans.Stats
	cellWallMS        float64
	violations        int
	errs              []string
	incomplete        bool // live-only: host starvation, see liveCell
}

// runAdvCell runs the class's agreements on one fresh cluster. virtual
// selects the fake-clock deterministic wire (V3) versus real UDP
// loopback sockets (L3).
func runAdvCell(class advClass, seed int64, virtual, legacy bool) advCell {
	cellStart := time.Now()
	var c advCell
	fail := func(format string, args ...any) advCell {
		c.violations++
		c.errs = append(c.errs, fmt.Sprintf(format, args...))
		c.cellWallMS = float64(time.Since(cellStart).Microseconds()) / 1000
		return c
	}
	pp := protocol.DefaultParams(4)
	pp.D = liveD
	cfg := nettrans.ClusterConfig{
		Params: pp, Tick: liveTick, Transport: nettrans.TransportUDP,
		Conditions: class.conds, Seed: seed,
		LegacyDatagramPerFrame: legacy,
	}
	if virtual {
		cfg.Clock = clock.NewFake(time.Time{})
	}
	if class.attacker >= 0 {
		cfg.Faulty = map[protocol.NodeID]protocol.Node{class.attacker: core.NewNode()}
	}
	cl, err := nettrans.NewCluster(cfg)
	if err != nil {
		return fail("cluster: %v", err)
	}
	defer cl.Stop()

	budget := time.Duration(pp.DeltaAgr()+20*pp.D) * liveTick
	if !virtual {
		budget += 5 * time.Second
	}
	agreements := class.agreements
	if agreements == 0 {
		agreements = 1
	}
	var inits []check.LiveInitiation
	for a := 0; a < agreements; a++ {
		g := protocol.NodeID(2 * a) // 0, then 2 — both correct (attacker is 1)
		v := protocol.Value(fmt.Sprintf("v3-%s-%d", class.label, a))
		t0, err := cl.Initiate(g, v, 5*time.Second)
		if err != nil {
			return fail("initiate g=%d: %v", g, err)
		}
		if done := cl.AwaitDecisions(g, v, budget); done != len(cl.Correct()) {
			c.incomplete = !virtual
			return fail("%s: %d/%d correct nodes decided", class.label, done, len(cl.Correct()))
		}
		inits = append(inits, check.LiveInitiation{G: g, V: v, T0: t0})
	}
	if class.flush {
		if virtual {
			cl.StepUntil(func() bool { return false },
				simtime.Duration(cl.NowTicks())+8*pp.D)
		} else {
			time.Sleep(time.Duration(8*pp.D) * liveTick)
		}
	}
	c.stats = cl.Stats()
	c.injected = statCounter(c.stats, class.injected)
	c.defense = statCounter(c.stats, class.defense)
	if c.injected <= 0 {
		fail("%s: attack counter %s never fired: %+v", class.label, class.injected, c.stats)
	}
	if c.defense <= 0 {
		fail("%s: defense counter %s never fired: %+v", class.label, class.defense, c.stats)
	}
	lr := &check.LiveResult{Result: cl.Result(simtime.Duration(cl.NowTicks()) + 1)}
	vs := lr.Battery(inits)
	c.violations += len(vs)
	for _, v := range vs {
		c.errs = append(c.errs, class.label+": "+v.String())
	}
	c.cellWallMS = float64(time.Since(cellStart).Microseconds()) / 1000
	return c
}

// recovCell is one in-situ transient-fault recovery run.
type recovCell struct {
	restab     float64 // observed re-stabilization, ticks
	budget     float64 // Δstb in the cell's params
	cellWallMS float64
	violations int
	errs       []string
}

// runRecoveryCell corrupts EVERY correct node of a running cluster in
// place — transient.CorruptRunning executed inside each node's event
// loop, exactly the daemon's control-socket fault path — and measures how
// long until the planted phantom records are swept on all of them. The
// observed time must land within Δstb = 2Δreset, and a probe agreement
// after the window plus the battery over the post-recovery suffix prove
// the system behaves as if the transient never happened.
func runRecoveryCell(severityPermille int, seed int64, virtual, legacy bool) recovCell {
	cellStart := time.Now()
	var c recovCell
	fail := func(format string, args ...any) recovCell {
		c.violations++
		c.errs = append(c.errs, fmt.Sprintf(format, args...))
		c.cellWallMS = float64(time.Since(cellStart).Microseconds()) / 1000
		return c
	}
	pp := protocol.DefaultParams(4)
	pp.D = liveD
	c.budget = float64(pp.DeltaStb())
	cfg := nettrans.ClusterConfig{
		Params: pp, Tick: liveTick, Transport: nettrans.TransportUDP, Seed: seed,
		LegacyDatagramPerFrame: legacy,
	}
	if virtual {
		cfg.Clock = clock.NewFake(time.Time{})
	}
	cl, err := nettrans.NewCluster(cfg)
	if err != nil {
		return fail("cluster: %v", err)
	}
	defer cl.Stop()

	budget := time.Duration(pp.DeltaAgr()+20*pp.D) * liveTick
	if !virtual {
		budget += 5 * time.Second
	}
	runAgreement := func(g protocol.NodeID, v protocol.Value) (simtime.Real, bool) {
		t0, err := cl.Initiate(g, v, 5*time.Second)
		if err != nil {
			fail("initiate g=%d: %v", g, err)
			return 0, false
		}
		if done := cl.AwaitDecisions(g, v, budget); done != len(cl.Correct()) {
			fail("%q: %d/%d correct nodes decided", v, done, len(cl.Correct()))
			return 0, false
		}
		return t0, true
	}

	// A healthy agreement first: the corruption hits a warm system.
	if _, ok := runAgreement(0, "pre-fault"); !ok {
		return c
	}

	const markG = protocol.NodeID(3)
	corruptAt := cl.NowTicks()
	for _, id := range cl.Correct() {
		id := id
		cl.DoWait(id, func(n protocol.Node) {
			transient.CorruptRunning(n.(*core.Node), pp, transient.Config{
				Seed:     seed*100 + int64(id),
				Severity: float64(severityPermille) / 1000,
				Marks:    []protocol.NodeID{markG},
			}, simtime.Local(cl.NowTicks()))
		})
	}
	marksCleared := func() bool {
		cleared := true
		for _, id := range cl.Correct() {
			id := id
			cl.DoWait(id, func(n protocol.Node) {
				if returned, _, _ := n.(*core.Node).Result(markG); returned {
					cleared = false
				}
			})
		}
		return cleared
	}
	if marksCleared() {
		return fail("severity %d‰: phantom marks were not planted", severityPermille)
	}

	deadline := corruptAt + simtime.Real(pp.DeltaStb())
	recovered := false
	if fake := cl.Virtual(); fake != nil {
		for steps := 0; cl.NowTicks() < deadline; steps++ {
			if steps%32 == 0 && marksCleared() {
				recovered = true
				break
			}
			if !fake.Step() {
				break
			}
		}
	} else {
		for cl.NowTicks() < deadline {
			if marksCleared() {
				recovered = true
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if !recovered && !marksCleared() {
		return fail("severity %d‰: phantom state survived Δstb = %d ticks", severityPermille, pp.DeltaStb())
	}
	c.restab = float64(cl.NowTicks() - corruptAt)
	if c.restab <= 0 || c.restab > c.budget {
		fail("severity %d‰: re-stabilization %v ticks outside (0, Δstb=%v]", severityPermille, c.restab, c.budget)
	}

	// Let the full Δstb window pass, then probe: the battery over the
	// post-recovery suffix measures the promised post-stabilization
	// behaviour.
	if fake := cl.Virtual(); fake != nil {
		cl.StepUntil(func() bool { return false }, simtime.Duration(deadline))
	} else {
		for cl.NowTicks() < deadline {
			time.Sleep(2 * time.Millisecond)
		}
	}
	suffixStart := cl.NowTicks()
	t0, ok := runAgreement(2, "post-fault")
	if !ok {
		return c
	}
	res := cl.Result(simtime.Duration(cl.NowTicks()) + 1)
	var suffix []protocol.TraceEvent
	for _, ev := range res.Rec.Events() {
		if ev.RT >= suffixStart {
			suffix = append(suffix, ev)
		}
	}
	lr := &check.LiveResult{Result: nettrans.BuildResult(pp, suffix, res.Correct, simtime.Duration(cl.NowTicks())+1)}
	vs := lr.Battery([]check.LiveInitiation{{G: 2, V: "post-fault", T0: t0}})
	c.violations += len(vs)
	for _, v := range vs {
		c.errs = append(c.errs, fmt.Sprintf("severity %d‰ post-recovery: %s", severityPermille, v.String()))
	}
	c.cellWallMS = float64(time.Since(cellStart).Microseconds()) / 1000
	return c
}

// V3CampaignPlan returns the committee sizes and per-size generated-spec
// counts of the V3 live campaign.
func V3CampaignPlan(quick bool) (ns, counts []int) {
	if quick {
		return []int{4, 7}, []int{8, 4}
	}
	return []int{4, 7}, []int{32, 12}
}

// V3CampaignSeed derives the generator seed of live spec i at committee
// size n; scenario.GenerateLive(V3CampaignSeed(n, i), n) regenerates the
// exact spec, the same replay discipline S2 uses. The high bit keeps the
// V3 stream disjoint from S2's CampaignSeed space.
func V3CampaignSeed(n, i int) int64 { return 1<<62 | int64(n)<<32 | int64(i) }

// v3CampCell is the outcome of one generated live scenario.
type v3CampCell struct {
	faults, attacks, conditions int
	sent, attackFrames, drops   int64
	restabRatios                []float64
	violations                  int
	minimized                   []byte
}

// runV3CampaignCell generates live spec (n, idx), runs it on the virtual
// runtime, checks the split-phase battery, and shrinks on failure.
func runV3CampaignCell(n, idx int) v3CampCell {
	sp := scenario.GenerateLive(V3CampaignSeed(n, idx), n)
	var c v3CampCell
	c.faults = len(sp.Faults)
	c.conditions = len(sp.Conditions)
	for _, cond := range sp.Conditions {
		if simnet.WireLevel(cond.Kind) {
			c.attacks++
		}
	}
	run, err := scenario.RunLive(sp)
	if err != nil {
		c.violations++
		c.minimized = sp.Marshal()
		return c
	}
	s := run.Stats
	c.sent = s.Sent
	c.attackFrames = s.CorruptFrames + s.ReplayFrames + s.ForgeFrames + s.DupFrames + s.ReorderHolds
	c.drops = s.DecodeDrops + s.EpochDrops + s.AuthDrops + s.LateDrops + s.DupDrops
	for _, rs := range run.Restab {
		if rs.Ticks >= 0 {
			c.restabRatios = append(c.restabRatios, float64(rs.Ticks)/float64(rs.Budget))
		}
	}
	viols := scenario.CheckLive(run, sp)
	c.violations = len(viols)
	if c.violations > 0 {
		min := scenario.Shrink(sp, func(cand scenario.Spec) bool {
			return len(scenario.RunCheckAny(cand)) > 0
		})
		c.minimized = min.Marshal()
	}
	return c
}

// V3AdversarialLive is the deterministic adversarial live campaign: the
// per-class attack/defense matrix, the in-situ transient-fault severity
// sweep, and the generated live-spec campaign, all on the virtual-time
// pipeline — every number byte-identical across runs, hosts, and worker
// counts.
func V3AdversarialLive(opt Options) *Result {
	r := &Result{ID: "V3", Title: "Adversarial live campaign: byte-level attacks and in-situ recovery under virtual time"}
	pp := protocol.DefaultParams(4)
	pp.D = liveD

	// Phase 1: the attack/defense matrix.
	seeds := 2
	if !opt.Quick {
		seeds = 4
	}
	classes := advClasses()
	grid := sweep(opt, classes, seeds, func(class advClass, seed int) advCell {
		return runAdvCell(class, 7000+int64(seed), true, opt.LegacyWire)
	})
	mt := metrics.NewTable(
		fmt.Sprintf("attack/defense matrix (n=4, d = %d ticks, virtual time; counters summed over seeds)", liveD),
		"class", "seeds", "attack counter", "injected", "defense counter", "rejected", "violations")
	for ci, class := range classes {
		var injected, defense int64
		violations := 0
		for _, c := range grid[ci] {
			injected += c.injected
			defense += c.defense
			violations += c.violations
			for _, e := range c.errs {
				r.Notes = append(r.Notes, e)
			}
		}
		mt.AddRow(class.label, seeds, class.injected, injected, class.defense, defense, violations)
		r.Violations += violations
	}
	r.Tables = append(r.Tables, mt)

	// Phase 2: in-situ transient-fault recovery across severities.
	severities := []int{250, 600, 1000}
	rSeeds := 2
	if !opt.Quick {
		rSeeds = 3
	}
	rGrid := sweep(opt, severities, rSeeds, func(sev, seed int) recovCell {
		return runRecoveryCell(sev, 9000+int64(sev)*10+int64(seed), true, opt.LegacyWire)
	})
	rt := metrics.NewTable(
		fmt.Sprintf("in-situ recovery: every correct node of a RUNNING cluster corrupted mid-run (n=4, Δstb = %d ticks)", pp.DeltaStb()),
		"severity ‰", "seeds", "restab p50 ticks", "restab max ticks", "max restab/Δstb", "violations")
	for si, sev := range severities {
		var restabs []float64
		violations := 0
		for _, c := range rGrid[si] {
			if c.restab > 0 {
				restabs = append(restabs, c.restab)
			}
			violations += c.violations
			for _, e := range c.errs {
				r.Notes = append(r.Notes, e)
			}
		}
		s := metrics.Summarize(restabs)
		rt.AddRow(sev, rSeeds,
			fmt.Sprintf("%.0f", s.P50),
			fmt.Sprintf("%.0f", s.Max),
			fmt.Sprintf("%.3f", s.Max/float64(pp.DeltaStb())),
			violations)
		r.Violations += violations
	}
	r.Tables = append(r.Tables, rt)

	// Phase 3: generated live campaign — WAN matrices, byte attackers,
	// scripted mid-run faults, split-phase battery, shrink on failure.
	ns, counts := V3CampaignPlan(opt.Quick)
	type cfg struct{ n, count int }
	cfgs := make([]cfg, len(ns))
	maxCount := 0
	for i, n := range ns {
		cfgs[i] = cfg{n, counts[i]}
		if counts[i] > maxCount {
			maxCount = counts[i]
		}
	}
	cells := sweep(opt, cfgs, maxCount, func(c cfg, idx int) *v3CampCell {
		if idx >= c.count {
			return nil
		}
		cell := runV3CampaignCell(c.n, idx)
		return &cell
	})
	ct := metrics.NewTable(
		"generated live campaign (virtual runtime, split-phase battery, shrink on failure)",
		"n", "f", "specs", "wire attacks", "faults", "frames sent", "attack frames",
		"defense drops", "max restab/Δstb", "violations")
	var examples []Counterexample
	for i, n := range ns {
		npp := protocol.DefaultParams(n)
		var agg v3CampCell
		var ratios []float64
		for idx, c := range cells[i] {
			if c == nil {
				continue
			}
			agg.attacks += c.attacks
			agg.faults += c.faults
			agg.sent += c.sent
			agg.attackFrames += c.attackFrames
			agg.drops += c.drops
			agg.violations += c.violations
			ratios = append(ratios, c.restabRatios...)
			if c.minimized != nil {
				examples = append(examples, Counterexample{
					N: n, Index: idx, Violations: c.violations, Spec: c.minimized,
				})
			}
		}
		maxRatio := 0.0
		for _, x := range ratios {
			if x > maxRatio {
				maxRatio = x
			}
		}
		ct.AddRow(n, npp.F, counts[i], agg.attacks, agg.faults, agg.sent,
			agg.attackFrames, agg.drops, fmt.Sprintf("%.3f", maxRatio), agg.violations)
		r.Violations += agg.violations
	}
	r.Tables = append(r.Tables, ct)

	r.Notes = append(r.Notes,
		"every attack class is proven twice: the attack counter shows the injection fired, the defense counter shows the wire pipeline rejected it, and the battery shows agreement survived — the paper's channel assumptions re-established from bytes (DESIGN.md §10)",
		"the recovery sweep corrupts RUNNING nodes through transient.CorruptRunning inside their event loops — the same path the node daemon's control socket exposes — and the observed re-stabilization stays within Δstb = 2Δreset at every severity",
		"live spec i at size n regenerates from scenario.GenerateLive(V3CampaignSeed(n,i), n); a violating spec is shrunk 1-minimal and replays with `ssbyz-bench -replay spec.json`",
	)
	for _, ex := range examples {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"COUNTEREXAMPLE n=%d live-spec=%d (%d violations), minimized spec: %s",
			ex.N, ex.Index, ex.Violations, compactJSON(ex.Spec)))
	}
	if dir := counterexampleDir(); dir != "" && len(examples) > 0 {
		if err := exportCounterexamples(dir, "V3", examples); err != nil {
			r.Notes = append(r.Notes, "counterexample export failed: "+err.Error())
		}
	}
	return r
}

// L3AdversarialLive replays the V3 attack classes and the in-situ
// recovery over REAL loopback sockets under the wall clock. Like L1/L2 it
// is not in All() — wall-clock numbers vary with the host — and runs
// strictly sequentially; `ssbyz-bench -live` appends it. The
// deterministic acceptance is the verdict: every attack class injected
// and rejected, recovery within Δstb, zero battery violations.
func L3AdversarialLive(opt Options) *Result {
	r := &Result{ID: "L3", Title: "Adversarial live cluster: byte-level attacks and in-situ recovery over real sockets"}
	pp := protocol.DefaultParams(4)
	pp.D = liveD
	cellWall := make(map[string]float64)

	// Smoke subset of the matrix: one class per defense family that needs
	// no virtual-time flush discipline.
	classes := []advClass{}
	for _, class := range advClasses() {
		switch class.label {
		case "corrupt", "forge", "duplicate", "replay-xepoch":
			classes = append(classes, class)
		}
	}
	mt := metrics.NewTable(
		fmt.Sprintf("attack/defense smoke over real UDP loopback (n=4, d = %d ticks × %v)", liveD, liveTick),
		"class", "attack counter", "injected", "defense counter", "rejected", "violations")
	retries := 0
	for _, class := range classes {
		var c advCell
		for attempt := 0; ; attempt++ {
			c = runAdvCell(class, 7000+int64(attempt), false, opt.LegacyWire)
			if !c.incomplete || attempt >= 2 {
				retries += attempt
				break
			}
		}
		mt.AddRow(class.label, class.injected, c.injected, class.defense, c.defense, c.violations)
		r.Violations += c.violations
		for _, e := range c.errs {
			r.Notes = append(r.Notes, e)
		}
		cellWall[class.label+"/4"] = c.cellWallMS
	}
	r.Tables = append(r.Tables, mt)

	// One wall-clock in-situ recovery cell: the Δstb window is real time
	// here (Δstb ticks × tick length), so a single full-severity cell
	// keeps the -live budget honest.
	rc := runRecoveryCell(1000, 9001, false, opt.LegacyWire)
	rt := metrics.NewTable(
		fmt.Sprintf("in-situ recovery over real sockets (n=4, Δstb = %d ticks = %v)",
			pp.DeltaStb(), time.Duration(pp.DeltaStb())*liveTick),
		"severity ‰", "restab ticks", "restab/Δstb", "restab wall", "violations")
	rt.AddRow(1000,
		fmt.Sprintf("%.0f", rc.restab),
		fmt.Sprintf("%.3f", rc.restab/rc.budget),
		(time.Duration(rc.restab) * liveTick).Round(time.Millisecond).String(),
		rc.violations)
	r.Violations += rc.violations
	for _, e := range rc.errs {
		r.Notes = append(r.Notes, e)
	}
	cellWall["recovery/4"] = rc.cellWallMS
	r.Tables = append(r.Tables, rt)

	r.CellWallMS = cellWall
	if retries > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%d cell(s) were rerun after an incomplete first attempt (host contention starved the run past the d deadline)", retries))
	}
	r.Notes = append(r.Notes,
		"same attack classes as V3 but over real UDP sockets: the byte attacker mangles genuine datagrams in the socket send path, and the receive pipeline's counters prove the same defenses fire outside virtual time",
		"the recovery row corrupts every node of a RUNNING loopback cluster in place and watches the phantom state get swept under the wall clock — Δstb here is real seconds, not a schedule",
	)
	return r
}
