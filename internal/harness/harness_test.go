package harness

import (
	"bytes"
	"strings"
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// TestSuiteQuick runs every experiment in quick mode and requires zero
// property violations and non-empty tables — the reproduction's end-to-end
// smoke test.
func TestSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run is seconds-long; skipped in -short")
	}
	for _, ex := range All() {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			res := ex.Run(Options{Quick: true})
			if res.Violations != 0 {
				var buf bytes.Buffer
				_, _ = res.WriteTo(&buf)
				t.Errorf("%s: %d property violations\n%s", ex.ID, res.Violations, buf.String())
			}
			if len(res.Tables) == 0 {
				t.Errorf("%s produced no tables", ex.ID)
			}
			for _, tab := range res.Tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s produced an empty table %q", ex.ID, tab.Title)
				}
			}
		})
	}
}

func TestRunAllWritesEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run is seconds-long; skipped in -short")
	}
	var buf bytes.Buffer
	results, err := RunAll(&buf, Options{Quick: true})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(results) != len(All()) {
		t.Fatalf("RunAll returned %d results, want %d", len(results), len(All()))
	}
	out := buf.String()
	for _, ex := range All() {
		if !strings.Contains(out, "## "+ex.ID+" ") {
			t.Errorf("output missing section for %s", ex.ID)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		def  int
		want int
	}{
		{"quick overrides", Options{Quick: true, Seeds: 50}, 20, 3},
		{"explicit seeds", Options{Seeds: 7}, 20, 7},
		{"default", Options{}, 20, 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.opt.seeds(tc.def); got != tc.want {
				t.Errorf("seeds(%d) = %d, want %d", tc.def, got, tc.want)
			}
		})
	}
	if got := (Options{Quick: true}).nSweep(); len(got) != 2 {
		t.Errorf("quick nSweep = %v, want 2 entries", got)
	}
	if got := (Options{}).nSweep(); len(got) != 6 {
		t.Errorf("full nSweep = %v, want 6 entries", got)
	}
}

func TestPairwiseSkew(t *testing.T) {
	cases := []struct {
		name string
		in   []simtime.Real
		want simtime.Duration
	}{
		{"empty", nil, 0},
		{"single", []simtime.Real{5}, 0},
		{"spread", []simtime.Real{3, 9, 5}, 6},
		{"equal", []simtime.Real{4, 4, 4}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := pairwiseSkew(tc.in); got != tc.want {
				t.Errorf("pairwiseSkew(%v) = %d, want %d", tc.in, got, tc.want)
			}
		})
	}
}

func TestDF(t *testing.T) {
	pp := protocol.Params{N: 4, F: 1, D: 1000}
	if got := dF(4200, pp); got != 4.2 {
		t.Errorf("dF(4200) = %v, want 4.2", got)
	}
}
