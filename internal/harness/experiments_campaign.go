package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ssbyz/internal/metrics"
	"ssbyz/internal/protocol"
	"ssbyz/internal/scenario"
	"ssbyz/internal/sim"
)

// Experiment S2 "Randomized adversarial campaign": the scenario engine's
// generator (internal/scenario) samples the space the paper's proofs
// quantify over — every Byzantine strategy, every legal arrival pattern —
// and the full property battery checks every sampled point. Quick mode
// runs a few hundred generated scenarios across n ∈ {7, 16, 31}; full
// mode thousands. A violating scenario is a counterexample to the paper's
// claims (or to this reproduction's faithfulness): it is greedily
// minimized and reported as a replayable spec (`ssbyz-bench -replay
// spec.json`), and exported to $SSBYZ_COUNTEREXAMPLE_DIR when set (the CI
// pipeline uploads that directory as a workflow artifact).

// CampaignPlan returns the committee sizes and per-size scenario counts
// of the S2 campaign. Quick mode trades depth for suite-budget fit but
// keeps every committee size — the strategy mix matters more than the
// sample count.
func CampaignPlan(quick bool) (ns, counts []int) {
	if quick {
		return []int{7, 16, 31}, []int{160, 48, 16}
	}
	return []int{7, 16, 31}, []int{2000, 640, 160}
}

// CampaignSeed derives the generator seed of scenario index i at
// committee size n. The formula is part of the replay discipline: a
// violation report names (n, i), and anyone can regenerate the exact spec
// with scenario.Generate(CampaignSeed(n, i), n).
func CampaignSeed(n, i int) int64 { return int64(n)<<32 | int64(i) }

// Counterexample is one minimized property-violating spec found by the
// campaign.
type Counterexample struct {
	N, Index   int
	Violations int
	// Spec is the minimized replayable spec (indented JSON).
	Spec []byte
}

// campaignCell is the outcome of one generated scenario.
type campaignCell struct {
	adversaries int
	conditions  int
	drops       int64
	initiations int
	decided     int
	refused     int
	violations  int
	minimized   []byte // non-nil when violations > 0
}

// runCampaignCell generates, runs, and checks scenario (n, idx), and
// minimizes it on failure.
func runCampaignCell(opt Options, n, idx int) campaignCell {
	sp := scenario.Generate(CampaignSeed(n, idx), n)
	var c campaignCell
	c.adversaries = len(sp.Adversaries)
	c.conditions = len(sp.Conditions)
	c.initiations = len(sp.Script)

	run := func(sp scenario.Spec) (*sim.Result, []string) {
		sc, err := sp.Scenario()
		if err != nil {
			return nil, []string{"Spec: " + err.Error()}
		}
		res, err := opt.run(sc)
		if err != nil {
			return nil, []string{"Spec: " + err.Error()}
		}
		var out []string
		for _, v := range scenario.Check(res, sp) {
			out = append(out, v.String())
		}
		return res, out
	}

	res, violations := run(sp)
	c.violations = len(violations)
	if res != nil {
		c.drops = res.World.ConditionDrops()
		c.refused = len(res.InitErrs)
		for _, init := range sp.Script {
			for _, d := range res.Decisions(init.G) {
				if d.Decided {
					c.decided++
				}
			}
		}
	}
	if c.violations > 0 {
		min := scenario.Shrink(sp, func(cand scenario.Spec) bool {
			_, vs := run(cand)
			return len(vs) > 0
		})
		c.minimized = min.Marshal()
	}
	return c
}

// CampaignTable runs the campaign over the given (n, count) plan and
// returns the result table, the violation total, and any minimized
// counterexamples. Every figure is a pure function of the plan — cells
// are sealed (spec ← CampaignSeed(n, i)), merges run in input order — so
// table, total, and counterexample set are byte-identical across worker
// counts and machines.
func CampaignTable(opt Options, ns, counts []int) (*metrics.Table, int, []Counterexample) {
	t := metrics.NewTable("randomized adversarial campaign (generated scenarios, full battery)",
		"n", "f", "scenarios", "adversaries", "conditions", "msgs dropped",
		"initiations", "refused", "decide returns", "violations")
	type cfg struct{ n, count int }
	cfgs := make([]cfg, len(ns))
	maxCount := 0
	for i, n := range ns {
		cfgs[i] = cfg{n: n, count: counts[i]}
		if counts[i] > maxCount {
			maxCount = counts[i]
		}
	}
	// One sweep cell per scenario index; sizes with fewer scenarios leave
	// the tail of their row empty.
	cells := sweep(opt, cfgs, maxCount, func(c cfg, idx int) *campaignCell {
		if idx >= c.count {
			return nil
		}
		cell := runCampaignCell(opt, c.n, idx)
		return &cell
	})
	violations := 0
	var examples []Counterexample
	for i, n := range ns {
		pp := protocol.DefaultParams(n)
		var agg campaignCell
		for idx, c := range cells[i] {
			if c == nil {
				continue
			}
			agg.adversaries += c.adversaries
			agg.conditions += c.conditions
			agg.drops += c.drops
			agg.initiations += c.initiations
			agg.decided += c.decided
			agg.refused += c.refused
			agg.violations += c.violations
			if c.minimized != nil {
				examples = append(examples, Counterexample{
					N: n, Index: idx, Violations: c.violations, Spec: c.minimized,
				})
			}
		}
		violations += agg.violations
		t.AddRow(n, pp.F, counts[i], agg.adversaries, agg.conditions, agg.drops,
			agg.initiations, agg.refused, agg.decided, agg.violations)
	}
	return t, violations, examples
}

// CounterexampleDirEnv names the environment variable that, when set,
// makes S2 export every minimized counterexample spec as a JSON file in
// that directory (created if missing). The CI pipeline sets it and
// uploads the directory as a workflow artifact.
const CounterexampleDirEnv = "SSBYZ_COUNTEREXAMPLE_DIR"

// counterexampleDir returns the export directory from the environment,
// empty when exporting is off.
func counterexampleDir() string { return os.Getenv(CounterexampleDirEnv) }

// exportCounterexamples writes minimized specs to dir; file names encode
// the experiment and the (n, index) coordinates so the matching seed
// formula (CampaignSeed for S2, V3CampaignSeed for V3) regenerates the
// original.
func exportCounterexamples(dir, prefix string, examples []Counterexample) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, ex := range examples {
		name := fmt.Sprintf("%s_n%d_i%d.json", prefix, ex.N, ex.Index)
		if err := os.WriteFile(filepath.Join(dir, name), ex.Spec, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// compactJSON re-marshals an indented spec into its one-line form for
// report notes, falling back to the input on error.
func compactJSON(spec []byte) []byte {
	var compact json.RawMessage = spec
	buf, err := json.Marshal(compact)
	if err != nil {
		return spec
	}
	return buf
}

// S2Campaign is the randomized adversarial campaign: scenario-engine
// fuzzing of the full property battery, with violating specs minimized
// into replayable counterexamples.
func S2Campaign(opt Options) *Result {
	r := &Result{ID: "S2", Title: "Randomized adversarial campaign"}
	ns, counts := CampaignPlan(opt.Quick)
	t, violations, examples := CampaignTable(opt, ns, counts)
	r.Violations += violations
	r.Tables = append(r.Tables, t)
	total := 0
	for _, c := range counts {
		total += c
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("%d generated scenarios (composed/staged/adaptive adversaries, partitions, jitter, churn), every run checked by the full battery", total),
		"scenario i at size n regenerates from scenario.Generate(CampaignSeed(n,i), n); specs are self-contained, so any violation replays with `ssbyz-bench -replay spec.json`",
	)
	for _, ex := range examples {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"COUNTEREXAMPLE n=%d scenario=%d (%d violations), minimized spec: %s",
			ex.N, ex.Index, ex.Violations, compactJSON(ex.Spec)))
	}
	if dir := counterexampleDir(); dir != "" && len(examples) > 0 {
		if err := exportCounterexamples(dir, "S2", examples); err != nil {
			r.Notes = append(r.Notes, "counterexample export failed: "+err.Error())
		}
	}
	return r
}
