//go:build race

package harness

// raceEnabled reports that this build runs under the race detector, whose
// 5–20× slowdown makes wall-clock tripwire budgets meaningless.
const raceEnabled = true
