// Package harness defines the experiment suite of the reproduction: one
// experiment per proved bound / headline claim of the paper (E1–E10), the
// figure-shaped series (F1–F4), the Block R ablation (A1), the large-n
// scaling workload (S1), and the randomized adversarial campaign (S2),
// as indexed in DESIGN.md §4. Each
// experiment regenerates the report tables that `ssbyz-bench -o` writes;
// the root bench_test.go exposes one testing.B target per experiment and
// cmd/ssbyz-bench prints the full suite.
//
// The paper is a theory paper: its "tables" are proved numeric bounds (in
// units of d and Φ) and its "figures" are the claimed behavioural shapes
// (message-driven speed, linear early stopping, Δstb convergence). The
// harness measures each on the discrete-event simulator, where rt(·) and
// τ(·) are exact, and reports measured-vs-bound.
package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"ssbyz/internal/check"
	"ssbyz/internal/metrics"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
)

// Options tunes the suite's cost.
type Options struct {
	// Seeds is the number of randomized repetitions per configuration
	// (default 20; the heavier experiments cap it themselves).
	Seeds int
	// Quick shrinks sweeps for unit tests (3 seeds, small n only).
	Quick bool
	// Workers bounds how many simulation cells run concurrently (default
	// runtime.GOMAXPROCS(0)). Output is byte-identical for every value:
	// parallelism only reorders execution, never presentation.
	Workers int
	// LegacyFanout runs every simulated world on the per-recipient
	// broadcast delivery path instead of the batched one. The suite's
	// output must be byte-identical either way (the differential tests
	// assert it); the flag exists only to demonstrate that.
	LegacyFanout bool
	// LegacyWire runs every live-runtime cluster (the nettrans pipeline
	// behind L1/L3 and their deterministic mirrors V1/V3) with frame
	// coalescing off: one datagram per frame, exactly the pre-batching
	// wire. Like LegacyFanout, the reports must be byte-identical either
	// way — the wire differential tests assert it.
	LegacyWire bool

	// pool, when set by RunAll, is the token pool shared by every sweep of
	// every overlapping experiment.
	pool chan struct{}
}

// run executes a scenario with the options' delivery-path choice applied.
// Every experiment cell goes through here, so the whole suite honors
// LegacyFanout.
func (o Options) run(sc sim.Scenario) (*sim.Result, error) {
	sc.LegacyFanout = o.LegacyFanout
	return sim.Run(sc)
}

// seeds returns the effective repetition count.
func (o Options) seeds(def int) int {
	if o.Quick {
		return 3
	}
	if o.Seeds > 0 {
		return o.Seeds
	}
	return def
}

// nSweep returns the node-count sweep.
func (o Options) nSweep() []int {
	if o.Quick {
		return []int{4, 7}
	}
	return []int{4, 7, 10, 16, 25, 31}
}

// Result is one experiment's output. It marshals directly into the JSON
// suite artifact (see Suite), so renames here are artifact-schema changes.
type Result struct {
	ID     string           `json:"id"`
	Title  string           `json:"title"`
	Tables []*metrics.Table `json:"tables"`
	// Notes carries shape conclusions ("ours wins by ×12 at δ=d/10").
	Notes []string `json:"notes,omitempty"`
	// Violations counts property violations found during the experiment
	// (must be zero for a faithful reproduction).
	Violations int `json:"violations"`
	// WallMS, PeakAllocMB and CellWallMS are the non-deterministic
	// fields of the JSON suite artifact (they record the perf trajectory
	// across commits) and are deliberately excluded from WriteTo, so the
	// human-readable report stays byte-identical across machines and
	// worker counts.
	//
	// WallMS is the experiment's wall-clock cost in milliseconds, filled
	// by RunAll.
	WallMS float64 `json:"wall_ms,omitempty"`
	// PeakAllocMB is the process heap high-water (MB) sampled while the
	// experiment ran, filled by RunAll. Experiments overlap on a shared
	// worker pool, so read it as "heap pressure while this experiment was
	// in flight", not an isolated footprint.
	PeakAllocMB float64 `json:"peak_alloc_mb,omitempty"`
	// CellWallMS breaks an experiment's cost down by configuration (S1
	// fills it with the mean per-seed wall clock per committee size) —
	// the series the BENCH regression guard compares across commits.
	CellWallMS map[string]float64 `json:"cell_wall_ms,omitempty"`
	// Floors records measured rates a committed artifact must prove (L1
	// fills it with the transport pump's aggregate msgs/sec): the bench
	// guard asserts a minimum on the committed value, so a regression on
	// the builder machine cannot be committed silently. Like WallMS it is
	// machine-varying and excluded from WriteTo.
	Floors map[string]float64 `json:"floors,omitempty"`
}

// WriteTo renders the result.
func (r *Result) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(format string, args ...any) error {
		m, err := fmt.Fprintf(w, format, args...)
		n += int64(m)
		return err
	}
	if err := write("## %s — %s\n\n", r.ID, r.Title); err != nil {
		return n, err
	}
	for _, t := range r.Tables {
		if err := write("%s\n", t.String()); err != nil {
			return n, err
		}
	}
	for _, note := range r.Notes {
		if err := write("- %s\n", note); err != nil {
			return n, err
		}
	}
	if err := write("- property violations: %d\n\n", r.Violations); err != nil {
		return n, err
	}
	return n, nil
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	ID    string
	Title string
	// Claim cites the paper property the experiment reproduces.
	Claim string
	Run   func(Options) *Result
}

// All returns the full suite in presentation order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Validity latency under a correct General", "Validity + Timeliness-2: decide within [t0−d, t0+4d]", E1ValidityLatency},
		{"E2", "Decision and anchor skew", "Timeliness-1: skew ≤ 3d (2d under validity), anchors ≤ 6d", E2AgreementSkew},
		{"E3", "Termination bound", "Timeliness-3: return within Δagr (+7d if not invoked)", E3TerminationBound},
		{"E4", "Early stopping in the actual fault count", "O(f′) rounds, f′ ≤ f actual faults", E4EarlyStopping},
		{"E5", "Message-driven vs time-driven rounds", "headline: runtime tracks actual δ, not the worst-case bound", E5MessageDrivenSpeedup},
		{"E6", "Convergence from arbitrary state", "self-stabilization within Δstb = 2Δreset", E6Convergence},
		{"E7", "Agreement under a faulty General", "Agreement: all-or-none, no splits (IA-4)", E7FaultyGeneralAgreement},
		{"E8", "Initiator-Accept bounds", "IA-1A..1D, IA-4 on the primitive in isolation", E8InitiatorAccept},
		{"E9", "msgd-broadcast bounds", "TPS-1/TPS-2: 3d accept skew, unforgeability", E9MsgdBroadcast},
		{"E10", "Message complexity", "O(n²) messages per agreement", E10MessageComplexity},
		{"F1", "Latency vs n (ours vs baseline)", "figure: scalability series", F1LatencyVsN},
		{"F2", "Latency vs actual δ (ours vs baseline)", "figure: the crossover-free domination shape", F2LatencyVsDelta},
		{"F3", "Recovery timeline after a transient fault", "figure: fraction recovered vs time since coherence", F3RecoveryTimeline},
		{"F4", "Pulse synchronization skew", "figure: companion [6] pulse layer atop agreement", F4PulseSkew},
		{"A1", "Block R window ablation", "why the repo uses 5d where Fig. 1 says 4d (DESIGN.md §3)", A1BlockRWindow},
		{"S1", "Scaling: agreement cost vs n", "new workload: the substrate sustains n = 64 committees (DESIGN.md §5)", S1Scaling},
		{"S2", "Randomized adversarial campaign", "new workload: generated adversaries/conditions vs the full battery (DESIGN.md §6)", S2Campaign},
		{"S3", "Service throughput vs session concurrency", "new workload: the replicated-log service scales with footnote-9 concurrent sessions (DESIGN.md §8)", S3Service},
		{"V1", "Deterministic live campaign under virtual time", "the live socket pipeline on an injected fake clock: exact, reproducible ticks (DESIGN.md §9)", V1VirtualLive},
		{"V2", "Deterministic live service under virtual time", "the replicated-log service as a deterministic schedule (DESIGN.md §9)", V2VirtualService},
		{"V3", "Adversarial live campaign under virtual time", "byte-level attacks vs the wire defenses, in-situ transient recovery within Δstb (DESIGN.md §10)", V3AdversarialLive},
		{"V4", "Cluster operations campaign under virtual time", "live membership: scale-up, rolling replacement within Δstb, old-incarnation replay rejection (DESIGN.md §12)", V4OpsCampaign},
	}
}

// RunAll executes the full suite and writes every result to w. Whole
// experiments overlap — each runs in its own goroutine, all drawing cells
// from one Workers-sized pool — but results are written strictly in
// presentation order, so the report is byte-identical for every Workers
// setting.
func RunAll(w io.Writer, opt Options) ([]*Result, error) {
	opt = opt.withSharedPool()
	exps := All()
	results := make([]*Result, len(exps))
	done := make([]chan struct{}, len(exps))
	sampler := newPeakSampler()
	defer sampler.stop()
	for i := range exps {
		i := i
		done[i] = make(chan struct{})
		go func() {
			defer close(done[i])
			start := time.Now()
			win := sampler.open()
			results[i] = exps[i].Run(opt)
			// Experiments overlap on a shared pool, so this includes time
			// spent waiting for workers — read it as "cost within a full
			// suite run", not an isolated measurement.
			results[i].WallMS = float64(time.Since(start).Microseconds()) / 1000
			results[i].PeakAllocMB = sampler.close(win)
		}()
	}
	var out []*Result
	for i := range exps {
		<-done[i]
		out = append(out, results[i])
		if _, err := results[i].WriteTo(w); err != nil {
			// Drain the stragglers so no goroutine outlives the call.
			for _, ch := range done[i+1:] {
				<-ch
			}
			return out, err
		}
	}
	return out, nil
}

// Suite is the machine-readable form of a full run, shaped for the
// BENCH_*.json perf-trajectory artifacts: the resolved options, every
// result (tables as header/row string grids), and the violation total.
type Suite struct {
	Quick      bool      `json:"quick"`
	Seeds      int       `json:"seeds,omitempty"`
	Workers    int       `json:"workers"`
	Violations int       `json:"violations"`
	Results    []*Result `json:"results"`
}

// NewSuite packages finished results with the options that produced them.
func NewSuite(opt Options, results []*Result) *Suite {
	s := &Suite{
		Quick:   opt.Quick,
		Seeds:   opt.Seeds,
		Workers: opt.workers(),
		Results: results,
	}
	for _, r := range results {
		s.Violations += r.Violations
	}
	return s
}

// ---- shared helpers ----

// dF converts ticks to multiples of d for presentation.
func dF(ticks float64, pp protocol.Params) float64 { return ticks / float64(pp.D) }

// correctGeneralScenario builds the canonical fault-free scenario: General
// 0 initiates "v" at t0 = 2d.
func correctGeneralScenario(n int, seed int64, delayMin, delayMax simtime.Duration) (sim.Scenario, simtime.Real) {
	pp := protocol.DefaultParams(n)
	t0 := simtime.Real(2 * pp.D)
	sc := sim.Scenario{
		Params:      pp,
		Seed:        seed,
		DelayMin:    delayMin,
		DelayMax:    delayMax,
		Initiations: []sim.Initiation{{At: t0, G: 0, Value: "v"}},
		RunFor:      simtime.Duration(t0) + 3*pp.DeltaAgr(),
	}
	return sc, t0
}

// decisionLatencies returns rt(decision) − t0 per correct decider, the
// max, and whether all correct nodes decided.
func decisionLatencies(res *sim.Result, g protocol.NodeID, t0 simtime.Real) (lats []float64, maxLat float64, all bool) {
	decs := res.Decisions(g)
	decided := 0
	for _, d := range decs {
		if !d.Decided {
			continue
		}
		decided++
		lat := float64(d.RT - t0)
		lats = append(lats, lat)
		if lat > maxLat {
			maxLat = lat
		}
	}
	return lats, maxLat, decided == len(res.Correct)
}

// pairwiseSkew returns the maximal pairwise gap of the given instants.
func pairwiseSkew(ts []simtime.Real) simtime.Duration {
	if len(ts) == 0 {
		return 0
	}
	lo, hi := ts[0], ts[0]
	for _, t := range ts {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return simtime.Duration(hi - lo)
}

// decideTimes extracts decision/anchor instants of correct deciders.
func decideTimes(res *sim.Result, g protocol.NodeID) (rts, anchors []simtime.Real) {
	for _, d := range res.Decisions(g) {
		if d.Decided {
			rts = append(rts, d.RT)
			anchors = append(anchors, d.RTauG)
		}
	}
	return rts, anchors
}

// countViolations tallies check results, appending details to notes when
// verbose diagnosis is useful.
func countViolations(vs ...[]check.Violation) int {
	n := 0
	for _, v := range vs {
		n += len(v)
	}
	return n
}

// sortedKeys returns the sorted keys of an int-keyed map (table ordering).
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
