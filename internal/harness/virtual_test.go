package harness

import (
	"bytes"
	"testing"
)

// renderVirtual runs the deterministic live campaign (V1) and service
// (V2) and renders both reports.
func renderVirtual(t *testing.T, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	opt := Options{Quick: true, Workers: workers}
	for _, run := range []func(Options) *Result{V1VirtualLive, V2VirtualService} {
		r := run(opt)
		if r.Violations != 0 {
			t.Fatalf("%s: %d violations: %v", r.ID, r.Violations, r.Notes)
		}
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatalf("%s: render: %v", r.ID, err)
		}
	}
	return buf.Bytes()
}

// TestVirtualCampaignDeterministic is the acceptance gate of the
// virtual-time runtimes: the V1 sweep (n ∈ {4,7,16}, TCP baseline, chaos
// replay) and the V2 service burst must produce byte-identical reports
// across two runs AND across worker counts — live-pipeline numbers with
// simulator-grade reproducibility, in the default `go test ./...` with no
// -live flag. (TestRunAllDeterministicAcrossWorkers re-checks the same
// inside the full suite.)
func TestVirtualCampaignDeterministic(t *testing.T) {
	seq := renderVirtual(t, 1)
	seqAgain := renderVirtual(t, 1)
	par := renderVirtual(t, 8)
	if !bytes.Equal(seq, seqAgain) {
		t.Errorf("virtual campaign differs across two sequential runs (%d vs %d bytes)",
			len(seq), len(seqAgain))
	}
	if !bytes.Equal(seq, par) {
		t.Errorf("virtual campaign differs between Workers=1 (%d bytes) and Workers=8 (%d bytes)",
			len(seq), len(par))
	}
	if len(seq) == 0 {
		t.Fatal("virtual campaign rendered nothing")
	}
}
