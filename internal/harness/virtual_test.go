package harness

import (
	"bytes"
	"strings"
	"testing"
)

// renderVirtual runs the deterministic live campaign (V1), service (V2),
// adversarial campaign (V3), and ops campaign (V4) and renders the
// reports.
func renderVirtual(t *testing.T, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	opt := Options{Quick: true, Workers: workers}
	for _, run := range []func(Options) *Result{V1VirtualLive, V2VirtualService, V3AdversarialLive, V4OpsCampaign} {
		r := run(opt)
		if r.Violations != 0 {
			t.Fatalf("%s: %d violations: %v", r.ID, r.Violations, r.Notes)
		}
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatalf("%s: render: %v", r.ID, err)
		}
	}
	return buf.Bytes()
}

// TestVirtualCampaignDeterministic is the acceptance gate of the
// virtual-time runtimes: the V1 sweep (n ∈ {4,7,16}, TCP baseline, chaos
// replay) and the V2 service burst must produce byte-identical reports
// across two runs AND across worker counts — live-pipeline numbers with
// simulator-grade reproducibility, in the default `go test ./...` with no
// -live flag. (TestRunAllDeterministicAcrossWorkers re-checks the same
// inside the full suite.)
func TestVirtualCampaignDeterministic(t *testing.T) {
	seq := renderVirtual(t, 1)
	seqAgain := renderVirtual(t, 1)
	par := renderVirtual(t, 8)
	if !bytes.Equal(seq, seqAgain) {
		t.Errorf("virtual campaign differs across two sequential runs (%d vs %d bytes)",
			len(seq), len(seqAgain))
	}
	if !bytes.Equal(seq, par) {
		t.Errorf("virtual campaign differs between Workers=1 (%d bytes) and Workers=8 (%d bytes)",
			len(seq), len(par))
	}
	if len(seq) == 0 {
		t.Fatal("virtual campaign rendered nothing")
	}
}

// TestOpsVirtualCampaign is V4's own acceptance gate: the deterministic
// boot→scale→roll→drain campaign must commit its workload, re-stabilize
// the rolled node within Δstb, and show the old-incarnation replay
// rejected by every peer — with zero violations, including the internal
// rerun-and-compare determinism gate (DESIGN.md §12).
func TestOpsVirtualCampaign(t *testing.T) {
	r := V4OpsCampaign(Options{Quick: true, Workers: 4})
	if r.Violations != 0 {
		t.Fatalf("V4: %d violations: %v", r.Violations, r.Notes)
	}
	if len(r.Tables) != 1 {
		t.Fatalf("V4: want 1 table, got %d", len(r.Tables))
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"restab", "replay-rejecting", "determinism gate"} {
		if !strings.Contains(buf.String(), needle) {
			t.Errorf("V4 report lost %q", needle)
		}
	}
}

// TestAdversarialVirtualCampaign is V3's own acceptance gate: every
// byte-level attack class must show as injected AND defended (the cells
// assert both counters non-zero, surfacing any failure as a violation),
// every in-situ recovery must land within Δstb = 2Δreset, and the
// generated live campaign must hold the battery — all deterministic, so
// any failure here is a hard bug, never flaky timing (DESIGN.md §10).
func TestAdversarialVirtualCampaign(t *testing.T) {
	r := V3AdversarialLive(Options{Quick: true, Workers: 4})
	if r.Violations != 0 {
		t.Fatalf("V3: %d violations: %v", r.Violations, r.Notes)
	}
	if len(r.Tables) != 3 {
		t.Fatalf("V3: want 3 tables (attack/defense, recovery, campaign), got %d", len(r.Tables))
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	report := buf.String()
	for _, class := range advClasses() {
		if !strings.Contains(report, class.label) {
			t.Errorf("V3 report lost attack class %q", class.label)
		}
	}
}
