package harness

import (
	"fmt"

	"ssbyz/internal/metrics"
	"ssbyz/internal/protocol"
	"ssbyz/internal/pulse"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
	"ssbyz/internal/transient"
)

// F1LatencyVsN produces the scalability series: mean decision latency of
// ss-Byz-Agree and the TPS-87 baseline as n grows, identical delay traces.
func F1LatencyVsN(opt Options) *Result {
	r := &Result{ID: "F1", Title: "Latency vs n (ours vs baseline)"}
	seeds := opt.seeds(10)
	t := metrics.NewTable("mean decision latency vs n (δ = d/2, in d)",
		"n", "ss-Byz-Agree", "TPS-87 baseline")
	ns := opt.nSweep()
	cells := sweep(opt, ns, seeds, func(n, seed int) latCell {
		pp := protocol.DefaultParams(n)
		return runLatencyCell(opt, pp, seed, pp.D/2)
	})
	for i, n := range ns {
		pp := protocol.DefaultParams(n)
		ours, base := mergeLatCells(cells[i], &r.Violations)
		t.AddRow(n, dF(ours, pp), dF(base, pp))
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes, "both series are flat in n (latency is round-, not size-, bound); ours sits near the actual δ, the baseline near whole Φ rounds")
	return r
}

// F2LatencyVsDelta produces the headline figure: latency of both systems
// as the actual network delay shrinks below the worst-case bound d.
func F2LatencyVsDelta(opt Options) *Result {
	r := &Result{ID: "F2", Title: "Latency vs actual δ (ours vs baseline)"}
	pp := protocol.DefaultParams(7)
	seeds := opt.seeds(10)
	t := metrics.NewTable("mean decision latency vs δ (n=7, in d)",
		"δ/d", "ss-Byz-Agree", "TPS-87 baseline", "speedup")
	deltas := []simtime.Duration{pp.D / 20, pp.D / 10, pp.D / 5, pp.D / 4, pp.D / 2, 3 * pp.D / 4, pp.D}
	if opt.Quick {
		deltas = []simtime.Duration{pp.D / 10, pp.D / 2, pp.D}
	}
	cells := sweep(opt, deltas, seeds, func(delta simtime.Duration, seed int) latCell {
		return runLatencyCell(opt, pp, seed, delta)
	})
	for i, delta := range deltas {
		ours, base := mergeLatCells(cells[i], &r.Violations)
		ratio := 0.0
		if ours > 0 {
			ratio = base / ours
		}
		t.AddRow(float64(delta)/float64(pp.D), dF(ours, pp), dF(base, pp), ratio)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes, "the series never crosses: message-driven rounds dominate at every δ and the gap widens as the network gets faster")
	return r
}

// F3RecoveryTimeline plots the fraction of recurring agreements that
// complete with full validity as a function of time since coherence, after
// a full-severity transient corruption at t = 0.
func F3RecoveryTimeline(opt Options) *Result {
	r := &Result{ID: "F3", Title: "Recovery timeline after a transient fault"}
	n := 10
	if opt.Quick {
		n = 7
	}
	pp := protocol.DefaultParams(n)
	seeds := opt.seeds(10)
	t := metrics.NewTable(fmt.Sprintf("fraction of verified agreements vs time since coherence (n=%d)", n),
		"window (d)", "window (Δstb)", "verified fraction")

	spacing := pp.Delta0() + 2*pp.D
	runFor := pp.DeltaStb() + 6*pp.DeltaAgr()
	nWindows := 8
	winLen := runFor / simtime.Duration(nWindows)

	type cell struct {
		ok, tot    map[int]int
		violations int
	}
	cells := sweepSeeds(opt, seeds, func(seed int) cell {
		c := cell{ok: make(map[int]int), tot: make(map[int]int)}
		var inits []sim.Initiation
		for i := 0; simtime.Duration(i)*spacing < runFor-pp.DeltaAgr(); i++ {
			inits = append(inits, sim.Initiation{
				At:    simtime.Real(simtime.Duration(i) * spacing),
				G:     0,
				Value: protocol.Value(fmt.Sprintf("f3-%d", i)),
			})
		}
		seed64 := int64(seed)
		res, err := opt.run(sim.Scenario{
			Params:      pp,
			Seed:        seed64,
			Initiations: inits,
			Corrupt: func(w *simnet.World) {
				transient.Corrupt(w, transient.Config{Seed: seed64 + 2000, Severity: 1})
			},
			RunFor: runFor,
		})
		if err != nil {
			c.violations++
			return c
		}
		for i, init := range inits {
			win := int(simtime.Duration(init.At) / winLen)
			if win >= nWindows {
				win = nWindows - 1
			}
			c.tot[win]++
			if _, refused := res.InitErrs[i]; refused {
				continue // refusal ⇒ not verified in this window
			}
			decs := decisionsFor(res, 0, init.Value)
			if len(decs) != len(res.Correct) {
				continue
			}
			ok := true
			for _, d := range decs {
				if d.RT > init.At+4*simtime.Real(pp.D) {
					ok = false
					break
				}
			}
			if ok {
				c.ok[win]++
			}
		}
		return c
	})
	okCount := make(map[int]int)
	totCount := make(map[int]int)
	for _, c := range cells {
		r.Violations += c.violations
		for win, v := range c.ok {
			okCount[win] += v
		}
		for win, v := range c.tot {
			totCount[win] += v
		}
	}
	for _, win := range sortedKeys(totCount) {
		frac := 0.0
		if totCount[win] > 0 {
			frac = float64(okCount[win]) / float64(totCount[win])
		}
		start := float64(simtime.Duration(win) * winLen)
		t.AddRow(dF(start, pp), start/float64(pp.DeltaStb()), frac)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes, "the verified fraction climbs to 1 before one Δstb has elapsed and stays there — convergence + closure")
	return r
}

// F4PulseSkew runs the pulse-synchronization layer and reports per-cycle
// pulse skew over time.
func F4PulseSkew(opt Options) *Result {
	r := &Result{ID: "F4", Title: "Pulse synchronization skew"}
	pp := protocol.DefaultParams(7)
	seeds := opt.seeds(5)
	cycles := 8
	if opt.Quick {
		cycles = 4
	}
	t := metrics.NewTable("pulse skew per cycle (n=7, in d)",
		"cycle", "runs pulsed", "max skew", "bound 3d")

	type cell struct {
		skews      map[int]float64
		violations int
	}
	cells := sweepSeeds(opt, seeds, func(seed int) cell {
		c := cell{skews: make(map[int]float64)}
		w, err := simnet.New(simnet.Config{
			Params: pp, Seed: int64(seed), DelayMin: pp.D / 2, DelayMax: pp.D,
			LegacyFanout: opt.LegacyFanout,
		})
		if err != nil {
			c.violations++
			return c
		}
		for i := 0; i < pp.N; i++ {
			w.SetNode(protocol.NodeID(i), pulse.NewNode(pulse.Config{}))
		}
		w.Start()
		w.RunUntil(simtime.Real(simtime.Duration(cycles+2) * (pulse.MinCycle(pp) + pp.DeltaAgr())))

		byCycle := make(map[int][]simtime.Real)
		for _, ev := range w.Recorder().ByKind(protocol.EvPulse) {
			byCycle[ev.K] = append(byCycle[ev.K], ev.RT)
		}
		for k, rts := range byCycle {
			if k >= cycles || len(rts) != pp.N {
				continue
			}
			s := dF(float64(pairwiseSkew(rts)), pp)
			c.skews[k] = s
			// Per-(seed, cycle) count, not per cross-seed running max:
			// cells must be order-independent for the Workers determinism
			// guarantee.
			if s > 3 {
				c.violations++
			}
		}
		return c
	})
	skews := make(map[int]float64)
	counts := make(map[int]int)
	for _, c := range cells {
		r.Violations += c.violations
		for k, s := range c.skews {
			counts[k]++
			skews[k] = max(skews[k], s)
		}
	}
	for _, k := range sortedKeys(counts) {
		t.AddRow(k, counts[k], skews[k], "3d")
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes, "pulse skew inherits the agreement's decision skew (Timeliness-1a) in every cycle; the layer re-synchronizes each cycle rather than accumulating drift")
	return r
}
