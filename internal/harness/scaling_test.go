package harness

import (
	"os"
	"testing"
	"time"
)

// TestScalingSweepShape is the acceptance gate of the S1 workload: the
// quick sweep must reach n = 128 and the full sweep n = 1024 (quick
// shrinks seeds, never the committee sizes — sustaining large n IS the
// experiment; the giant n ≥ 256 cells run seedCapForN = 1 seed), and an
// n = 64 sweep must produce its row cleanly.
func TestScalingSweepShape(t *testing.T) {
	ns := ScalingNs(false)
	if ns[len(ns)-1] != 128 {
		t.Fatalf("ScalingNs = %v, want a quick sweep ending at 128", ns)
	}
	if full := ScalingNs(true); full[len(full)-1] != 1024 {
		t.Fatalf("ScalingNs(full) = %v, want a sweep ending at 1024", full)
	}
	if got := seedCapForN(512, 8); got != 1 {
		t.Fatalf("seedCapForN(512, 8) = %d, want 1 (giant cells run one seed)", got)
	}
	if got := seedCapForN(128, 8); got != 8 {
		t.Fatalf("seedCapForN(128, 8) = %d, want the sweep's seed count", got)
	}
	if testing.Short() {
		t.Skip("running the sweep is seconds-long; skipped in -short")
	}
	tab, violations, _ := ScalingTable(Options{Quick: true}, []int{64})
	if violations != 0 {
		t.Fatalf("S1 at n=64: %d property violations", violations)
	}
	if len(tab.Rows) != 1 || tab.Rows[0][0] != "64" {
		t.Fatalf("S1 table rows = %v, want one n=64 row", tab.Rows)
	}
}

// TestScalingQuickBudgetN31 is the CI regression tripwire: the quick S1
// sweep at n = 31 must fit a generous wall-clock budget. It is not a
// microbenchmark — the budget is ~20× the current cost — but it fails
// loudly if a change reintroduces superlinear simulator overhead (the
// pre-rework substrate would blow it).
func TestScalingQuickBudgetN31(t *testing.T) {
	if testing.Short() {
		t.Skip("running the sweep is seconds-long; skipped in -short")
	}
	if raceEnabled {
		t.Skip("wall-clock budget is meaningless under the race detector")
	}
	const budget = 60 * time.Second
	start := time.Now()
	_, violations, _ := ScalingTable(Options{Quick: true}, []int{31})
	elapsed := time.Since(start)
	if violations != 0 {
		t.Fatalf("S1 at n=31: %d property violations", violations)
	}
	if elapsed > budget {
		t.Fatalf("quick S1 sweep at n=31 took %v, budget %v — the simulation substrate regressed", elapsed, budget)
	}
	t.Logf("quick S1 sweep at n=31: %v (budget %v)", elapsed, budget)
}

// TestScalingQuickBudgetN128 is the n=128 wall-clock tripwire, guarding
// the tentpole of this substrate generation: the quick S1 sweep at n=128
// (three seeds, ~19M messages each plus the TPS-87 baseline) must fit a
// generous budget. ~8× the current cost — it fails loudly on a
// superlinear regression, not on machine variance.
func TestScalingQuickBudgetN128(t *testing.T) {
	if testing.Short() {
		t.Skip("three n=128 agreements take ~20s; skipped in -short")
	}
	if raceEnabled {
		t.Skip("wall-clock budget is meaningless under the race detector")
	}
	const budget = 180 * time.Second
	start := time.Now()
	_, violations, _ := ScalingTable(Options{Quick: true}, []int{128})
	elapsed := time.Since(start)
	if violations != 0 {
		t.Fatalf("S1 at n=128: %d property violations", violations)
	}
	if elapsed > budget {
		t.Fatalf("quick S1 sweep at n=128 took %v, budget %v — the simulation substrate regressed", elapsed, budget)
	}
	t.Logf("quick S1 sweep at n=128: %v (budget %v)", elapsed, budget)
}

// TestScalingQuickBudgetN512 is the env-gated giant-cell tripwire: one
// n=512 seed (≈ 4×10⁸ simulated deliveries plus the TPS-87 baseline)
// must complete clean inside a generous wall-clock budget. Measured at
// ~43 minutes on the reference 2.1 GHz core, it cannot ride in the
// default `go test` run — the 10-minute per-package timeout alone
// forbids it — so CI invokes it explicitly (set SSBYZ_S1_512=1 and
// pass -timeout 2h). The budget is ~2× the measured cost; blowing it
// means the buffer-discipline gains of the chunked scheduler wheel
// regressed.
func TestScalingQuickBudgetN512(t *testing.T) {
	if os.Getenv("SSBYZ_S1_512") == "" {
		t.Skip("giant cell: ~45 minutes; set SSBYZ_S1_512=1 (and -timeout 2h) to run")
	}
	if raceEnabled {
		t.Skip("wall-clock budget is meaningless under the race detector")
	}
	const budget = 90 * time.Minute
	start := time.Now()
	tab, violations, _ := ScalingTable(Options{Quick: true}, []int{512})
	elapsed := time.Since(start)
	if violations != 0 {
		t.Fatalf("S1 at n=512: %d property violations", violations)
	}
	if len(tab.Rows) != 1 || tab.Rows[0][0] != "512" {
		t.Fatalf("S1 table rows = %v, want one n=512 row", tab.Rows)
	}
	if elapsed > budget {
		t.Fatalf("quick S1 cell at n=512 took %v, budget %v — the simulation substrate regressed", elapsed, budget)
	}
	t.Logf("quick S1 cell at n=512: %v (budget %v)", elapsed, budget)
}

// TestScalingTableDeterministicAcrossWorkers: every figure of the S1
// table (including the processed-event cost column) must be identical
// whether cells run sequentially or fanned out.
func TestScalingTableDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep twice; skipped in -short")
	}
	ns := []int{4, 7, 16}
	seq, vSeq, _ := ScalingTable(Options{Quick: true, Workers: 1}, ns)
	par, vPar, _ := ScalingTable(Options{Quick: true, Workers: 8}, ns)
	if vSeq != vPar {
		t.Fatalf("violations differ across workers: %d vs %d", vSeq, vPar)
	}
	if seq.String() != par.String() {
		t.Fatalf("S1 table differs across worker counts:\n%s\nvs\n%s", seq.String(), par.String())
	}
}

// TestScalingCellDeterministic: the per-cell measurement (including the
// scheduler's processed-event count) is a pure function of (n, seed).
func TestScalingCellDeterministic(t *testing.T) {
	a := runScaleCell(Options{}, 7, 3)
	b := runScaleCell(Options{}, 7, 3)
	if a.msgs != b.msgs || a.events != b.events || a.baseMsgs != b.baseMsgs {
		t.Fatalf("cell not deterministic: %+v vs %+v", a, b)
	}
	if a.events == 0 || a.msgs == 0 {
		t.Fatalf("cell measured nothing: %+v", a)
	}
	if len(a.lats) != len(b.lats) {
		t.Fatalf("latency sets differ: %d vs %d", len(a.lats), len(b.lats))
	}
	for i := range a.lats {
		if a.lats[i] != b.lats[i] {
			t.Fatalf("latency %d differs: %v vs %v", i, a.lats[i], b.lats[i])
		}
	}
}
