package harness

import (
	"ssbyz/internal/baseline"
	"ssbyz/internal/metrics"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// runBaseline executes one fault-free TPS-87 baseline agreement (General
// 0, value "v", initiated at 2d) with actual delays in [δ/2, δ] and
// returns per-node decision latencies in ticks.
func runBaseline(pp protocol.Params, seed int64, delta simtime.Duration) []float64 {
	min := delta / 2
	if min == 0 {
		min = 1
	}
	w, err := simnet.New(simnet.Config{
		Params:   pp,
		Seed:     seed,
		DelayMin: min,
		DelayMax: delta,
	})
	if err != nil {
		return nil
	}
	nodes := make([]*baseline.Node, pp.N)
	for i := 0; i < pp.N; i++ {
		nodes[i] = baseline.NewNode()
		w.SetNode(protocol.NodeID(i), nodes[i])
	}
	w.Start()
	t0 := simtime.Real(2 * pp.D)
	w.Scheduler().At(t0, func() { nodes[0].InitiateAgreement("v") })
	w.RunUntil(simtime.Real(10 * pp.DeltaAgr()))

	var lats []float64
	for _, ev := range w.Recorder().ByKind(protocol.EvBaselineDecide) {
		lats = append(lats, float64(ev.RT-t0))
	}
	return lats
}

// meanBaselineLatency averages the baseline's decision latency over seeds.
func meanBaselineLatency(pp protocol.Params, seeds int, delta simtime.Duration) float64 {
	var lats []float64
	for seed := 0; seed < seeds; seed++ {
		lats = append(lats, runBaseline(pp, int64(seed), delta)...)
	}
	return metrics.Summarize(lats).Mean
}
