package harness

import (
	"ssbyz/internal/baseline"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// runBaseline executes one fault-free TPS-87 baseline agreement (General
// 0, value "v", initiated at 2d) with actual delays in [δ/2, δ] and
// returns per-node decision latencies in ticks plus the total message
// count. It is the baseline half of a latCell and of the S1 scaling
// cells; the head-to-head experiments fan it out per seed via sweep.
func runBaseline(opt Options, pp protocol.Params, seed int64, delta simtime.Duration) ([]float64, int64) {
	min := delta / 2
	if min == 0 {
		min = 1
	}
	w, err := simnet.New(simnet.Config{
		Params:       pp,
		Seed:         seed,
		DelayMin:     min,
		DelayMax:     delta,
		LegacyFanout: opt.LegacyFanout,
	})
	if err != nil {
		return nil, 0
	}
	nodes := make([]*baseline.Node, pp.N)
	for i := 0; i < pp.N; i++ {
		nodes[i] = baseline.NewNode()
		w.SetNode(protocol.NodeID(i), nodes[i])
	}
	w.Start()
	t0 := simtime.Real(2 * pp.D)
	w.Scheduler().At(t0, func() { nodes[0].InitiateAgreement("v") })
	w.RunUntil(simtime.Real(10 * pp.DeltaAgr()))

	var lats []float64
	for _, ev := range w.Recorder().ByKind(protocol.EvBaselineDecide) {
		lats = append(lats, float64(ev.RT-t0))
	}
	msgs, _ := w.MessageCount()
	return lats, msgs
}
