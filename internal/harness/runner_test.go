package harness

import (
	"bytes"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestSweepOrderPreserved floods the pool with more cells than workers and
// checks the grid comes back indexed by (config, seed), not by completion
// order.
func TestSweepOrderPreserved(t *testing.T) {
	configs := []int{10, 20, 30}
	const seeds = 17
	grid := sweep(Options{Workers: 8}, configs, seeds, func(cfg, seed int) int {
		return cfg*1000 + seed
	})
	if len(grid) != len(configs) {
		t.Fatalf("got %d config rows, want %d", len(grid), len(configs))
	}
	for ci, cfg := range configs {
		if len(grid[ci]) != seeds {
			t.Fatalf("config %d: got %d cells, want %d", cfg, len(grid[ci]), seeds)
		}
		for s, got := range grid[ci] {
			if want := cfg*1000 + s; got != want {
				t.Errorf("grid[%d][%d] = %d, want %d", ci, s, got, want)
			}
		}
	}
}

// TestSweepBoundsConcurrency checks that no more than Workers cells are
// ever in flight at once.
func TestSweepBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	sweepSeeds(Options{Workers: workers}, 64, func(seed int) struct{} {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		for i := 0; i < 1000; i++ {
			runtime.Gosched()
		}
		inFlight.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds Workers=%d", p, workers)
	}
}

// TestSweepSharedPool checks that experiments handed a shared pool draw
// their cells from it rather than minting a fresh one per sweep.
func TestSweepSharedPool(t *testing.T) {
	opt := Options{Workers: 2}.withSharedPool()
	if opt.pool == nil {
		t.Fatal("withSharedPool did not install a pool")
	}
	if got := cap(opt.pool); got != 2 {
		t.Fatalf("shared pool capacity = %d, want 2", got)
	}
	if opt.limiter() != opt.pool {
		t.Error("limiter() ignored the shared pool")
	}
	again := opt.withSharedPool()
	if again.pool != opt.pool {
		t.Error("withSharedPool replaced an existing pool")
	}
}

func TestWorkersDefaults(t *testing.T) {
	if got := (Options{}).workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Options{Workers: 5}).workers(); got != 5 {
		t.Errorf("explicit workers = %d, want 5", got)
	}
}

// TestSweepEmpty covers the zero-cell edge cases.
func TestSweepEmpty(t *testing.T) {
	if grid := sweep(Options{}, nil, 3, func(cfg, seed int) int { return 0 }); len(grid) != 0 {
		t.Errorf("empty configs: got %d rows", len(grid))
	}
	grid := sweep(Options{}, []int{1}, 0, func(cfg, seed int) int { return 0 })
	if len(grid) != 1 || len(grid[0]) != 0 {
		t.Errorf("zero seeds: got %v", grid)
	}
}

// TestRunAllDeterministicAcrossWorkers is the suite-level determinism
// gate: the full quick-mode report must be byte-identical whether cells
// run one at a time or fanned across eight workers. Run under -race this
// also exercises the pool for data races.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite twice; skipped in -short")
	}
	var seq, par bytes.Buffer
	if _, err := RunAll(&seq, Options{Quick: true, Workers: 1}); err != nil {
		t.Fatalf("RunAll(Workers=1): %v", err)
	}
	if _, err := RunAll(&par, Options{Quick: true, Workers: 8}); err != nil {
		t.Fatalf("RunAll(Workers=8): %v", err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Errorf("suite output differs between Workers=1 (%d bytes) and Workers=8 (%d bytes)",
			seq.Len(), par.Len())
	}
}

// TestNewSuiteTotalsViolations checks the JSON artifact aggregates.
func TestNewSuiteTotalsViolations(t *testing.T) {
	s := NewSuite(Options{Quick: true, Workers: 4}, []*Result{
		{ID: "X1", Violations: 2},
		{ID: "X2", Violations: 3},
	})
	if s.Violations != 5 {
		t.Errorf("suite violations = %d, want 5", s.Violations)
	}
	if !s.Quick || s.Workers != 4 {
		t.Errorf("suite options not carried: %+v", s)
	}
	if len(s.Results) != 2 {
		t.Errorf("suite kept %d results, want 2", len(s.Results))
	}
}
