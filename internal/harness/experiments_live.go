package harness

import (
	"fmt"
	"time"

	"ssbyz/internal/check"
	"ssbyz/internal/metrics"
	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Experiment L1 "Live loopback cluster": the protocol over REAL sockets —
// internal/nettrans's UDP transport (datagram-per-message, wire codec,
// source-address authentication, deadline drops) on 127.0.0.1 — measured
// the way a deployment would measure it: decide-latency percentiles in
// wall time, messages per second, and the full property battery over the
// collected trace. A TCP row gives the lossless-stream baseline, and a
// chaos sweep replays a PR4-style ConditionSchedule (jitter plus a
// partition around a crash-faulty node) against the live sockets.
//
// Unlike every other experiment, L1's numbers are wall-clock
// measurements: they vary with the host and the run. It therefore does
// NOT appear in All() (whose report must be byte-identical across worker
// counts — the determinism gates pin that); `ssbyz-bench -live` appends
// it to the suite and its JSON artifact explicitly, and the committed
// BENCH_*.json artifacts carry its trajectory. What must NOT vary is the
// verdict: zero checker violations and full decision coverage on every
// cell.

// LiveNs is the L1 committee sweep. All three sizes run even in quick
// mode (the sweep is the point); only the per-size seed count shrinks.
func LiveNs() []int { return []int{4, 7, 16} }

// liveD is the paper's d for live cells, in ticks of liveTick: 250 ticks
// × 100µs = 25ms, generous enough that host scheduling jitter does not
// masquerade as protocol latency (or trip the deadline drops) even when
// the rest of the suite is saturating the machine's cores.
const (
	liveD    = simtime.Duration(250)
	liveTick = 100 * time.Microsecond
)

// liveCell is one live cluster run: a cluster is brought up, one
// agreement runs to decision, the trace is checked, the cluster torn
// down.
type liveCell struct {
	lats       []float64 // per-node decide latency, ticks
	stats      nettrans.Stats
	agrWallS   float64 // initiate→all-decided wall seconds (msgs/sec base)
	cellWallMS float64 // full cell wall clock incl. setup/teardown
	violations int
	errs       []string
	// incomplete marks an environmental failure — not every correct node
	// decided, which on a loopback with no adversary means the HOST
	// starved the run (deadline drops under CPU contention), not that the
	// protocol failed. Incomplete cells are retried a bounded number of
	// times; battery violations on a complete run are never retried.
	incomplete bool
}

// runLiveCell runs one agreement on a fresh loopback cluster.
func runLiveCell(n int, transport string, conds []simnet.Condition,
	faulty map[protocol.NodeID]protocol.Node, legacy bool) liveCell {
	cellStart := time.Now()
	var c liveCell
	fail := func(format string, args ...any) liveCell {
		c.violations++
		c.errs = append(c.errs, fmt.Sprintf(format, args...))
		c.cellWallMS = float64(time.Since(cellStart).Microseconds()) / 1000
		return c
	}
	pp := protocol.DefaultParams(n)
	pp.D = liveD
	cl, err := nettrans.NewCluster(nettrans.ClusterConfig{
		Params: pp, Tick: liveTick, Transport: transport,
		Conditions: conds, Faulty: faulty,
		LegacyDatagramPerFrame: legacy,
	})
	if err != nil {
		return fail("cluster: %v", err)
	}
	defer cl.Stop()

	agrStart := time.Now()
	const value = protocol.Value("l1")
	t0, err := cl.Initiate(0, value, 5*time.Second)
	if err != nil {
		return fail("initiate: %v", err)
	}
	budget := time.Duration(pp.DeltaAgr())*liveTick + 5*time.Second
	deciders := cl.AwaitDecisions(0, value, budget)
	c.agrWallS = time.Since(agrStart).Seconds()
	c.stats = cl.Stats()

	res := cl.Result(simtime.Duration(cl.NowTicks()) + 1)
	lr := &check.LiveResult{Result: res}
	c.lats = lr.DecideLatencies(0, value, t0)
	if deciders != len(res.Correct) || len(c.lats) != len(res.Correct) {
		c.incomplete = true
		return fail("only %d/%d correct nodes decided (%d late drops — host contention?)",
			deciders, len(res.Correct), c.stats.LateDrops)
	}
	vs := lr.Battery([]check.LiveInitiation{{G: 0, V: value, T0: t0}})
	c.violations += len(vs)
	for _, v := range vs {
		c.errs = append(c.errs, v.String())
	}
	c.cellWallMS = float64(time.Since(cellStart).Microseconds()) / 1000
	return c
}

// runLiveCellRetry reruns environmentally failed (incomplete) cells up
// to two more times. A cell that stays incomplete after three attempts,
// or that completes with battery violations on any attempt, is reported
// as-is: persistent non-decision IS signal, and a violated bound on a
// complete run always is.
func runLiveCellRetry(n int, transport string, conds []simnet.Condition,
	faulty map[protocol.NodeID]protocol.Node, legacy bool) (liveCell, int) {
	var c liveCell
	for attempt := 0; ; attempt++ {
		c = runLiveCell(n, transport, conds, faulty, legacy)
		if !c.incomplete || attempt >= 2 {
			return c, attempt
		}
	}
}

// liveRow aggregates a (config, seeds) series into one table row.
func liveRow(t *metrics.Table, label string, n, seeds int, cells []liveCell,
	r *Result, cellWall map[string]float64, wallKey string) {
	pp := protocol.DefaultParams(n)
	var lats []float64
	var sent, late, chaosDrops int64
	var agrWallS, cellMS float64
	violations := 0
	for _, c := range cells {
		lats = append(lats, c.lats...)
		sent += c.stats.Sent
		late += c.stats.LateDrops
		chaosDrops += c.stats.ChaosDrops
		agrWallS += c.agrWallS
		cellMS += c.cellWallMS
		violations += c.violations
		for _, e := range c.errs {
			r.Notes = append(r.Notes, fmt.Sprintf("%s n=%d: %s", label, n, e))
		}
	}
	s := metrics.Summarize(lats)
	tickMS := float64(liveTick.Microseconds()) / 1000
	msgsPerSec := 0.0
	if agrWallS > 0 {
		msgsPerSec = float64(sent) / agrWallS
	}
	t.AddRow(label, n, pp.F, seeds,
		fmt.Sprintf("%.2f", s.P50*tickMS),
		fmt.Sprintf("%.2f", s.P95*tickMS),
		fmt.Sprintf("%.2f", s.Max*tickMS),
		fmt.Sprintf("%.3f", s.P50/float64(liveD)),
		float64(sent)/float64(seeds),
		fmt.Sprintf("%.0f", msgsPerSec),
		late, chaosDrops, violations)
	r.Violations += violations
	cellWall[wallKey] = cellMS / float64(seeds)
}

// L1Live is the live loopback experiment. Cells run strictly
// sequentially — overlapping live clusters would contend for the host
// and pollute each other's wall-clock numbers — so Options.Workers is
// deliberately ignored.
func L1Live(opt Options) *Result {
	r := &Result{ID: "L1", Title: "Live loopback cluster: sockets, wire codec, wall-clock latency"}
	seeds := 2
	if !opt.Quick {
		seeds = 5
	}
	cellWall := make(map[string]float64)
	t := metrics.NewTable(
		fmt.Sprintf("live loopback agreement (d = %d ticks × %v = %v)", liveD, liveTick, time.Duration(liveD)*liveTick),
		"transport", "n", "f", "seeds", "p50 ms", "p95 ms", "max ms", "p50 (d)",
		"msgs/agr", "msgs/sec", "late drops", "chaos drops", "violations")

	retries := 0
	runSeries := func(n int, transport string, conds []simnet.Condition,
		faulty map[protocol.NodeID]protocol.Node) []liveCell {
		cells := make([]liveCell, seeds)
		for s := range cells {
			var tries int
			cells[s], tries = runLiveCellRetry(n, transport, conds, faulty, opt.LegacyWire)
			retries += tries
		}
		return cells
	}

	for _, n := range LiveNs() {
		cells := runSeries(n, nettrans.TransportUDP, nil, nil)
		liveRow(t, "udp", n, seeds, cells, r, cellWall, fmt.Sprintf("udp/%d", n))
	}
	// Lossless stream baseline at the smallest size.
	liveRow(t, "tcp", 4, seeds, runSeries(4, nettrans.TransportTCP, nil, nil),
		r, cellWall, "tcp/4")
	r.Tables = append(r.Tables, t)

	// Chaos replay: a PR4-style ConditionSchedule against real sockets —
	// jitter on every link plus a partition around a crash-faulty node
	// (drops only touch the faulty node, so the battery must stay clean).
	chaosTable := metrics.NewTable(
		"ConditionSchedule replayed over live sockets (jitter everywhere + partition around a crashed node)",
		"transport", "n", "f", "seeds", "p50 ms", "p95 ms", "max ms", "p50 (d)",
		"msgs/agr", "msgs/sec", "late drops", "chaos drops", "violations")
	pp := protocol.DefaultParams(7)
	pp.D = liveD
	horizon := simtime.Real(simtime.Duration(10000) * liveD)
	conds := []simnet.Condition{
		{Kind: simnet.CondJitter, From: 0, Until: horizon, Jitter: liveD / 4},
		{Kind: simnet.CondPartition, From: 0, Until: horizon, Nodes: []protocol.NodeID{6}},
	}
	faulty := map[protocol.NodeID]protocol.Node{6: nil}
	liveRow(chaosTable, "udp+chaos", 7, seeds,
		runSeries(7, nettrans.TransportUDP, conds, faulty), r, cellWall, "chaos/7")
	r.Tables = append(r.Tables, chaosTable)

	// Wire-rate pump: the transport stack alone (encode → coalesce →
	// sendmmsg → recvmmsg → shards → decode → dedup → deliver), protocol
	// state machines stubbed out by NullNode. The measured aggregate rate
	// lands in Floors, where the bench guard holds the committed artifact
	// to the 10⁶ msgs/sec floor.
	r.Floors = map[string]float64{}
	l1PumpRow(r, cellWall, opt.LegacyWire)

	r.CellWallMS = cellWall
	r.Notes = append(r.Notes,
		"the wire-rate pump floods NullNode state machines through the full transport stack (coalesced frames, batched syscalls, sharded ingest) — the aggregate delivered rate is recorded in the artifact's floors and held to the 10⁶ msgs/sec floor by the bench guard; shortfall against sent is genuine datagram loss under deliberate overload, which the paper's model tolerates")
	if retries > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%d cell(s) were rerun after an incomplete first attempt (host contention starved the run past the d deadline); persistent failures are reported, one-off starvation is not", retries))
	}
	r.Notes = append(r.Notes,
		"every cell is a real loopback cluster: one socket per node, every message through the wire codec with source-address authentication; the trace passes the full property battery",
		"latency columns are wall-clock and vary with the host — the DETERMINISTIC acceptance here is zero violations and full decision coverage; p50 (d) shows message-driven speed: decisions land far inside the d-based bounds",
		"the chaos table replays a scenario-engine ConditionSchedule against real sockets (DESIGN.md §7): scripted jitter delays the socket write, the partition eats frames around the crashed node (chaos drops > 0)",
	)
	return r
}

// l1PumpBroadcasts is the pump's offered load: 20000 broadcasts at
// n = 16 are 300k point-to-point messages — enough to amortize startup
// and the settle window while keeping the quick -live run fast.
const l1PumpBroadcasts = 20000

// l1PumpRow measures the transport's wire rate: one n=16 loopback UDP
// cluster of NullNode state machines, flooded by the pump from node 0.
// Every message crosses the real stack — encode, coalesce, sendmmsg,
// recvmmsg, ingest shards, decode, dedup, delivery — so the delivered
// aggregate rate is the transport's, not the protocol's. The rate lands
// in r.Floors["udp_pump_msgs_per_sec_n16"]; the committed BENCH artifact
// must prove ≥ 10⁶ there (bench_guard_test.go).
func l1PumpRow(r *Result, cellWall map[string]float64, legacy bool) {
	const n = 16
	cellStart := time.Now()
	pp := protocol.DefaultParams(n)
	// A wide deadline window: the pump deliberately overloads the host,
	// so receive-side lag must read as loss (kernel drops), never as
	// late-frame rejections that would understate the stack's rate.
	pp.D = 10000
	mode := "coalesced"
	if legacy {
		mode = "legacy"
	}
	t := metrics.NewTable(
		fmt.Sprintf("transport wire-rate pump (NullNode machines, %d broadcasts from one node, wall-clock)", l1PumpBroadcasts),
		"mode", "n", "sent", "delivered", "delivered/sent", "msgs/sec", "batches", "frames/batch")
	cl, err := nettrans.NewCluster(nettrans.ClusterConfig{
		Params: pp, Tick: liveTick, Transport: nettrans.TransportUDP,
		NewNode:                func() protocol.Node { return nettrans.NullNode{} },
		LegacyDatagramPerFrame: legacy,
	})
	if err != nil {
		r.Violations++
		r.Notes = append(r.Notes, fmt.Sprintf("pump cluster: %v", err))
		return
	}
	defer cl.Stop()
	// Warm the pipeline first (dedup tables, coalescer buffers, socket
	// pools grow to steady-state capacity), then measure: the floor is a
	// steady-state wire rate, not a cold-start one.
	cl.Pump(0, l1PumpBroadcasts/10, 10*time.Second)
	res := cl.Pump(0, l1PumpBroadcasts, 30*time.Second)
	bs := cl.BatchStats()
	ratio, perBatch := 0.0, 0.0
	if res.Sent > 0 {
		ratio = float64(res.Received) / float64(res.Sent)
	}
	if bs.BatchesSent > 0 {
		perBatch = float64(bs.BatchedFrames) / float64(bs.BatchesSent)
	}
	rate := res.MsgsPerSec()
	t.AddRow(mode, n, res.Sent, res.Received,
		fmt.Sprintf("%.3f", ratio),
		fmt.Sprintf("%.0f", rate),
		bs.BatchesSent,
		fmt.Sprintf("%.1f", perBatch))
	if res.Received == 0 {
		r.Violations++
		r.Notes = append(r.Notes, "pump delivered nothing — the transport stack is stalled")
	}
	r.Tables = append(r.Tables, t)
	r.Floors["udp_pump_msgs_per_sec_n16"] = rate
	cellWall["pump/16"] = float64(time.Since(cellStart).Microseconds()) / 1000
}
