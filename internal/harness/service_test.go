package harness

import (
	"bytes"
	"testing"
)

// TestServiceThroughputFloor is the PR's acceptance gate on experiment
// S3: multiplexing 16 concurrent sessions must sustain at least 4× the
// single-session agreement rate (IG1's Δ0 per-slot admission bound
// predicts ~16×; 4× leaves margin for queue-shed edge effects), with
// zero property violations across the whole sweep.
func TestServiceThroughputFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("S3 quick sweep exceeds -short budget")
	}
	_, violations, _, thr, errs := ServiceThroughputTable(Options{Quick: true}, ServiceConcurrency())
	for _, e := range errs {
		t.Errorf("cell error: %s", e)
	}
	if violations != 0 {
		t.Fatalf("S3 sweep produced %d property violations", violations)
	}
	if thr[1] <= 0 {
		t.Fatalf("single-session throughput %.4f not positive", thr[1])
	}
	if ratio := thr[16] / thr[1]; ratio < 4 {
		t.Fatalf("concurrency 16 sustains only ×%.2f the single-session rate, want ≥4×", ratio)
	}
}

// TestServiceDeterministicAcrossWorkers pins the suite contract for S3:
// the rendered experiment (tables, notes, violation count) is
// byte-identical whether its cells run sequentially or on 8 workers —
// every cell is a sealed simulator world, and aggregation happens in
// presentation order after the barrier.
func TestServiceDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("S3 quick sweep exceeds -short budget")
	}
	render := func(workers int) string {
		r := S3Service(Options{Quick: true, Workers: workers})
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("S3 report differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
}

// TestL2LiveServiceQuick runs the live service spot-check (quick: 2
// seeds, 6 entries, sessions 1 and 8) against real loopback sockets.
// Wall-clock numbers vary; the acceptance is the verdict — every entry
// committed, zero violations, both cells costed for the BENCH artifact.
func TestL2LiveServiceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("brings up real socket clusters; skipped in -short")
	}
	res := L2LiveService(Options{Quick: true})
	if res.Violations != 0 {
		var buf bytes.Buffer
		_, _ = res.WriteTo(&buf)
		t.Fatalf("L2 found %d violations:\n%s", res.Violations, buf.String())
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 2 {
		t.Fatalf("L2 table shape wrong: %+v", res.Tables)
	}
	for _, key := range []string{"svc/udp/4/c1", "svc/udp/4/c8"} {
		if v, ok := res.CellWallMS[key]; !ok || v <= 0 {
			t.Errorf("CellWallMS[%q] = %v, want > 0", key, v)
		}
	}
}
