package harness

import (
	"runtime"
	"sync"
	"time"
)

// peakSampler records the process heap high-water (runtime.MemStats
// HeapAlloc) over per-experiment windows. One background goroutine
// samples every few milliseconds and folds the reading into every open
// window, so the cost is shared across however many experiments overlap.
// The readings feed Result.PeakAllocMB — a perf-trajectory number like
// WallMS, explicitly non-deterministic and excluded from the rendered
// report.
type peakSampler struct {
	mu      sync.Mutex
	windows map[*uint64]struct{}
	done    chan struct{}
	wg      sync.WaitGroup
}

const peakSampleEvery = 10 * time.Millisecond

func newPeakSampler() *peakSampler {
	s := &peakSampler{
		windows: make(map[*uint64]struct{}),
		done:    make(chan struct{}),
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ticker := time.NewTicker(peakSampleEvery)
		defer ticker.Stop()
		for {
			select {
			case <-s.done:
				return
			case <-ticker.C:
				s.sample()
			}
		}
	}()
	return s
}

// sample reads the heap size once and raises every open window's peak.
func (s *peakSampler) sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.mu.Lock()
	for w := range s.windows {
		if m.HeapAlloc > *w {
			*w = m.HeapAlloc
		}
	}
	s.mu.Unlock()
}

// open starts a window. The immediate sample bounds the error for
// experiments shorter than the sampling period.
func (s *peakSampler) open() *uint64 {
	w := new(uint64)
	s.mu.Lock()
	s.windows[w] = struct{}{}
	s.mu.Unlock()
	s.sample()
	return w
}

// close ends the window and returns its peak in MB.
func (s *peakSampler) close(w *uint64) float64 {
	s.sample()
	s.mu.Lock()
	delete(s.windows, w)
	peak := *w
	s.mu.Unlock()
	return float64(peak) / 1e6
}

// stop shuts the sampling goroutine down.
func (s *peakSampler) stop() {
	close(s.done)
	s.wg.Wait()
}
