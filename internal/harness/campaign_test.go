package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ssbyz/internal/scenario"
)

// TestCampaignPlanShape pins the S2 acceptance shape: quick mode runs a
// few hundred scenarios, full mode thousands, both across n ∈ {7,16,31}.
func TestCampaignPlanShape(t *testing.T) {
	ns, counts := CampaignPlan(true)
	if len(ns) != 3 || ns[0] != 7 || ns[1] != 16 || ns[2] != 31 {
		t.Fatalf("quick plan sizes = %v, want [7 16 31]", ns)
	}
	quickTotal := 0
	for _, c := range counts {
		quickTotal += c
	}
	if quickTotal < 200 {
		t.Fatalf("quick plan runs %d scenarios, want a few hundred", quickTotal)
	}
	_, fullCounts := CampaignPlan(false)
	fullTotal := 0
	for _, c := range fullCounts {
		fullTotal += c
	}
	if fullTotal < 2000 {
		t.Fatalf("full plan runs %d scenarios, want thousands", fullTotal)
	}
}

// TestCampaignCellDeterministic: a campaign cell is a pure function of
// its (n, index) coordinates.
func TestCampaignCellDeterministic(t *testing.T) {
	a := runCampaignCell(Options{}, 7, 5)
	b := runCampaignCell(Options{}, 7, 5)
	if a.adversaries != b.adversaries || a.drops != b.drops ||
		a.decided != b.decided || a.violations != b.violations ||
		!bytes.Equal(a.minimized, b.minimized) {
		t.Fatalf("cell not deterministic: %+v vs %+v", a, b)
	}
	if a.initiations == 0 {
		t.Fatalf("cell generated no script: %+v", a)
	}
}

// TestCampaignDeterministicAcrossWorkers: the S2 report — table, notes,
// violation count, counterexample set — must be byte-identical whether
// scenarios run sequentially or fanned out. This is the worker-count half
// of the replay discipline: a campaign verdict names scenarios anyone can
// regenerate, so it cannot depend on scheduling.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a reduced campaign twice; skipped in -short")
	}
	ns, counts := []int{7, 16}, []int{24, 6}
	tSeq, vSeq, exSeq := CampaignTable(Options{Workers: 1}, ns, counts)
	tPar, vPar, exPar := CampaignTable(Options{Workers: 8}, ns, counts)
	if vSeq != vPar {
		t.Fatalf("violations differ across workers: %d vs %d", vSeq, vPar)
	}
	if tSeq.String() != tPar.String() {
		t.Fatalf("S2 table differs across worker counts:\n%s\nvs\n%s", tSeq, tPar)
	}
	if len(exSeq) != len(exPar) {
		t.Fatalf("counterexample sets differ: %d vs %d", len(exSeq), len(exPar))
	}
	for i := range exSeq {
		if exSeq[i].N != exPar[i].N || exSeq[i].Index != exPar[i].Index ||
			!bytes.Equal(exSeq[i].Spec, exPar[i].Spec) {
			t.Fatalf("counterexample %d differs across workers", i)
		}
	}
}

// TestCampaignQuickBudget is the CI tripwire for S2 (same pattern as
// TestScalingQuickBudgetN128): the whole quick campaign — hundreds of
// generated adversarial scenarios plus the battery on each — must fit a
// generous wall-clock budget, and a faithful build must come back with
// zero violations. When the campaign DOES find counterexamples and
// $SSBYZ_COUNTEREXAMPLE_DIR is set, S2Campaign exports the minimized
// specs there for the pipeline to upload before this test fails the run.
func TestCampaignQuickBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick campaign; skipped in -short")
	}
	if raceEnabled {
		t.Skip("wall-clock budget is meaningless under the race detector")
	}
	const budget = 120 * time.Second
	start := time.Now()
	r := S2Campaign(Options{Quick: true})
	elapsed := time.Since(start)
	if r.Violations != 0 {
		for _, n := range r.Notes {
			if strings.HasPrefix(n, "COUNTEREXAMPLE") {
				t.Log(n)
			}
		}
		t.Fatalf("quick S2 campaign found %d property violations — minimized specs logged above", r.Violations)
	}
	if elapsed > budget {
		t.Fatalf("quick S2 campaign took %v, budget %v — the scenario engine regressed", elapsed, budget)
	}
	t.Logf("quick S2 campaign: %v (budget %v)", elapsed, budget)
}

// TestCampaignExportsMinimizedCounterexamples drives the full export path
// on a synthetic counterexample (violations in a faithful build are
// supposed to be nonexistent): the exported file must parse as a valid
// spec and regenerate from its (n, index) coordinates via CampaignSeed.
func TestCampaignExportsMinimizedCounterexamples(t *testing.T) {
	dir := t.TempDir()
	sp := scenario.Generate(CampaignSeed(7, 3), 7)
	ex := Counterexample{N: 7, Index: 3, Violations: 1, Spec: sp.Marshal()}
	if err := exportCounterexamples(dir, "S2", []Counterexample{ex}); err != nil {
		t.Fatalf("export: %v", err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "S2_n7_i3.json"))
	if err != nil {
		t.Fatalf("exported file missing: %v", err)
	}
	parsed, err := scenario.Parse(blob)
	if err != nil {
		t.Fatalf("exported spec does not parse: %v", err)
	}
	if parsed.N != 7 {
		t.Fatalf("exported spec n = %d, want 7", parsed.N)
	}
}
