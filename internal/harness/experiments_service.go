package harness

import (
	"fmt"
	"time"

	"ssbyz/internal/metrics"
	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
	"ssbyz/internal/service"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
)

// Experiment S3 "Service throughput vs session concurrency": the
// replicated-log facade under an open-loop Poisson client, sweeping the
// footnote-9 concurrent-invocation slot count. The paper's IG1 admission
// rule spaces successive invocations of one General by Δ0 = 13d PER
// INVOCATION SLOT, so a single-session General sustains at most one
// agreement per 13d no matter how fast clients arrive — the bounded
// pending queue sheds the excess. Multiplexing C concurrent sessions
// over the same nodes, msglogs, and timers lifts the sustained rate
// toward C/Δ0 until the client's arrival rate itself saturates. S3
// measures that curve: sustained agreements/sec, shed fraction, and
// commit-latency percentiles at C ∈ {1, 4, 16, 64}, with the full
// per-session property battery on every cell.
//
// Like the rest of the deterministic suite the numbers are virtual-time
// (1 tick = 1 ms, so the default d = 1000 ticks reads as one second);
// wall-clock cost goes to cell_wall_ms. Experiment L2 below spot-checks
// the same service against real loopback sockets.

// ServiceConcurrency is the S3 session-count sweep. It is not shrunk in
// quick mode — the concurrency curve is the point — only the entry and
// seed counts shrink.
func ServiceConcurrency() []int { return []int{1, 4, 16, 64} }

// svcMeanGap is the open-loop client's mean inter-arrival gap: d/6, an
// offered load of ~78 agreements per Δ0 — far past what one session can
// admit (1 per Δ0), and just above what 64 sessions can drain, so every
// sweep point is saturated and "agreements/sec" reads as SUSTAINED
// throughput, not arrival echo.
func svcMeanGap(pp protocol.Params) simtime.Duration { return pp.D / 6 }

// svcCell is one (concurrency, seed) service run.
type svcCell struct {
	proposed   int
	committed  int
	dropped    int
	failed     int
	lats       []float64 // commit − arrival per committed entry, ticks
	makespan   float64   // first arrival → last commit, ticks
	violations int
	errs       []string
	wallMS     float64
}

// runServiceCell pushes one open-loop workload of `entries` arrivals
// through General 0 with the given concurrent-session count and the
// service's default bounded queue (4·sessions).
func runServiceCell(opt Options, sessions, entries, seed int) svcCell {
	start := time.Now()
	var c svcCell
	pp := protocol.DefaultParams(16)
	arrivals := service.PoissonArrivals(int64(1000*sessions+seed),
		simtime.Real(2*pp.D), svcMeanGap(pp), entries)
	res, err := service.RunSim(service.SimConfig{
		Scenario: sim.Scenario{Params: pp, Seed: int64(7000*sessions + seed),
			LegacyFanout: opt.LegacyFanout},
		Sessions: sessions,
		Loads:    []service.Workload{{G: 0, Arrivals: arrivals}},
	})
	if err != nil {
		c.violations++
		c.errs = append(c.errs, err.Error())
		return c
	}
	st := res.Logs[0].Stats()
	c.proposed, c.committed = st.Proposed, st.Committed
	c.dropped, c.failed = st.Dropped, st.Failed
	c.makespan = float64(st.MakespanTicks)
	for _, l := range st.Latencies {
		c.lats = append(c.lats, float64(l))
	}
	if c.failed > 0 {
		c.errs = append(c.errs, fmt.Sprintf("%d entries failed (no decide within the reclaim extent)", c.failed))
	}
	vs := service.Battery(res.Res, res.Logs)
	c.violations += len(vs)
	for _, v := range vs {
		c.errs = append(c.errs, v.String())
	}
	c.wallMS = float64(time.Since(start).Microseconds()) / 1000
	return c
}

// ServiceThroughputTable runs the S3 sweep and returns the table, the
// violation count, the mean per-seed wall clock per concurrency (JSON
// cell_wall_ms), and the mean sustained agreements/sec per concurrency —
// the series the throughput-floor gate checks. Everything in the table
// is virtual-time deterministic.
func ServiceThroughputTable(opt Options, concs []int) (*metrics.Table, int, map[string]float64, map[int]float64, []string) {
	entries, seeds := 128, 3
	if opt.Quick {
		entries, seeds = 64, 2
	}
	t := metrics.NewTable(
		fmt.Sprintf("replicated-log service, n=16, open-loop Poisson mean gap d/6, queue 4·C (%d arrivals, 1 tick = 1 ms)", entries),
		"conc", "seeds", "proposed", "committed", "shed", "agr/sec", "×c1",
		"p50 lat (d)", "p99 lat (d)")
	cells := sweep(opt, concs, seeds, func(conc, seed int) svcCell {
		return runServiceCell(opt, conc, entries, seed)
	})
	violations := 0
	var errs []string
	cellWall := make(map[string]float64, len(concs))
	thr := make(map[int]float64, len(concs))
	rows := make([][]any, 0, len(concs))
	for i, conc := range concs {
		pp := protocol.DefaultParams(16)
		var lats []float64
		var proposed, committed, dropped float64
		var agrSec, wall float64
		for _, c := range cells[i] {
			violations += c.violations
			for _, e := range c.errs {
				errs = append(errs, fmt.Sprintf("c%d: %s", conc, e))
			}
			lats = append(lats, c.lats...)
			proposed += float64(c.proposed)
			committed += float64(c.committed)
			dropped += float64(c.dropped)
			if c.makespan > 0 {
				// 1 tick = 1 ms ⇒ ticks/1000 = seconds.
				agrSec += float64(c.committed) / (c.makespan / 1000)
			}
			wall += c.wallMS
		}
		sN := float64(seeds)
		thr[conc] = agrSec / sN
		s := metrics.Summarize(lats)
		rows = append(rows, []any{conc, seeds, proposed / sN, committed / sN,
			dropped / sN, fmt.Sprintf("%.3f", thr[conc]),
			fmt.Sprintf("%.1f", thr[conc]/thr[concs[0]]),
			fmt.Sprintf("%.1f", dF(s.P50, pp)), fmt.Sprintf("%.1f", dF(s.P99, pp))})
		cellWall[fmt.Sprintf("c%d", conc)] = wall / sN
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, violations, cellWall, thr, errs
}

// S3Service is the session-concurrency throughput experiment.
func S3Service(opt Options) *Result {
	r := &Result{ID: "S3", Title: "Service throughput vs session concurrency"}
	t, violations, cellWall, thr, errs := ServiceThroughputTable(opt, ServiceConcurrency())
	r.Violations += violations
	r.Tables = append(r.Tables, t)
	r.CellWallMS = cellWall
	r.Notes = append(r.Notes, errs...)
	r.Notes = append(r.Notes,
		"IG1 spaces invocations by Δ0 = 13d per slot, so one session sustains ≈1/13 agreements per d-second while the bounded queue sheds the open-loop excess; C sessions scale toward C/Δ0",
		fmt.Sprintf("sustained throughput at concurrency 16 is ×%.1f the single-session rate (the PR gate requires ≥4×)", thr[16]/thr[1]),
		"p50/p99 are commit−arrival (queue wait included): saturation at low concurrency shows up as latency, exactly the open-loop story",
		"every cell runs the full per-session property battery (Agreement, Timeliness, IA/TPS bounds, per-entry Validity) — violations must be zero",
	)
	return r
}

// ---- L2: the service against real loopback sockets ----

// L2 spot-checks the replicated-log service where S3's virtual-time
// claims must survive contact with the kernel: an in-process loopback
// UDP cluster (wire codec, source-address authentication, deadline
// drops), the same pump polling on wall-clock. Like L1 its numbers are
// wall-clock and vary with the host, so it is NOT in All(); ssbyz-bench
// -live appends it after L1. The deterministic acceptance is the
// verdict: every entry commits and the per-session battery is clean.

// l2Cell is one live service run.
type l2Cell struct {
	committed  int
	agrSec     float64 // committed per wall-second of drain
	p50MS      float64
	violations int
	errs       []string
	wallMS     float64
	timedOut   bool
}

func runL2Cell(sessions, entries, seed int) l2Cell {
	start := time.Now()
	var c l2Cell
	pp := protocol.DefaultParams(4)
	pp.D = liveD
	arrivals := service.PoissonArrivals(int64(100*sessions+seed),
		simtime.Real(2*pp.D), pp.D/2, entries)
	res, err := service.RunLive(service.LiveConfig{
		Params:     pp,
		Tick:       liveTick,
		Transport:  nettrans.TransportUDP,
		Sessions:   sessions,
		QueueLimit: entries, // spot-check drains everything; S3 owns shedding
	}, []service.Workload{{G: 0, Arrivals: arrivals}}, 60*time.Second)
	drainS := time.Since(start).Seconds()
	if err != nil {
		c.timedOut = true
		c.violations++
		c.errs = append(c.errs, err.Error())
		c.wallMS = float64(time.Since(start).Microseconds()) / 1000
		return c
	}
	st := res.Logs[0].Stats()
	c.committed = st.Committed
	if st.Committed != entries || st.Failed > 0 || st.Dropped > 0 {
		c.violations++
		c.errs = append(c.errs, fmt.Sprintf(
			"live log incomplete: committed=%d failed=%d dropped=%d of %d",
			st.Committed, st.Failed, st.Dropped, entries))
	}
	if drainS > 0 {
		c.agrSec = float64(st.Committed) / drainS
	}
	tickMS := float64(liveTick.Microseconds()) / 1000
	var lats []float64
	for _, l := range st.Latencies {
		lats = append(lats, float64(l))
	}
	c.p50MS = metrics.Summarize(lats).P50 * tickMS
	vs := service.Battery(res.Res, res.Logs)
	c.violations += len(vs)
	for _, v := range vs {
		c.errs = append(c.errs, v.String())
	}
	c.wallMS = float64(time.Since(start).Microseconds()) / 1000
	return c
}

// L2LiveService is the live service spot-check. Cells run sequentially
// for the same reason L1's do: overlapping clusters would contend for
// the host. Cells that time out (host starvation, not protocol failure)
// are retried a bounded number of times, L1-style.
func L2LiveService(opt Options) *Result {
	r := &Result{ID: "L2", Title: "Live service: replicated log over loopback sockets"}
	seeds, entries := 2, 6
	if !opt.Quick {
		seeds, entries = 3, 12
	}
	t := metrics.NewTable(
		fmt.Sprintf("replicated-log service over UDP loopback (n=4, d = %d ticks × %v, %d entries)",
			liveD, liveTick, entries),
		"transport", "sessions", "seeds", "committed", "agr/sec", "p50 lat ms", "violations")
	cellWall := make(map[string]float64)
	retries := 0
	for _, sessions := range []int{1, 8} {
		var committed float64
		var agrSec, p50, wall float64
		violations := 0
		for seed := 0; seed < seeds; seed++ {
			var c l2Cell
			for attempt := 0; ; attempt++ {
				c = runL2Cell(sessions, entries, seed)
				if !c.timedOut || attempt >= 2 {
					break
				}
				retries++
			}
			committed += float64(c.committed)
			agrSec += c.agrSec
			p50 += c.p50MS
			wall += c.wallMS
			violations += c.violations
			for _, e := range c.errs {
				r.Notes = append(r.Notes, fmt.Sprintf("sessions=%d: %s", sessions, e))
			}
		}
		sN := float64(seeds)
		t.AddRow("udp", sessions, seeds, committed/sN,
			fmt.Sprintf("%.1f", agrSec/sN), fmt.Sprintf("%.2f", p50/sN), violations)
		r.Violations += violations
		cellWall[fmt.Sprintf("svc/udp/4/c%d", sessions)] = wall / sN
	}
	r.Tables = append(r.Tables, t)
	r.CellWallMS = cellWall
	if retries > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%d cell(s) were rerun after a drain timeout (host contention); persistent failures are reported", retries))
	}
	r.Notes = append(r.Notes,
		"the same pump as S3 against real sockets: every initiation crosses the wire codec, commits are harvested from the live trace, and the per-session battery must stay clean",
		"agr/sec here is wall-clock (host-dependent); the deterministic acceptance is full commitment and zero violations",
	)
	return r
}
