package harness

import (
	"fmt"

	"ssbyz/internal/byzantine"
	"ssbyz/internal/check"
	"ssbyz/internal/metrics"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
)

// Every experiment below is phrased for the parallel engine in runner.go:
// a pure per-(config, seed) cell function fanned out by sweep, followed by
// an in-order merge on the caller's goroutine. Cells never share state;
// merges never depend on execution order.

// E1ValidityLatency sweeps n with a correct General and measures the
// decision latency of every correct node against the Validity /
// Timeliness-2 window [t0−d, t0+4d].
func E1ValidityLatency(opt Options) *Result {
	r := &Result{ID: "E1", Title: "Validity latency under a correct General"}
	t := metrics.NewTable("decision latency, correct General (latencies in d)",
		"n", "f", "seeds", "mean", "p95", "max", "bound", "all decided")

	type cell struct {
		lats       []float64
		allDecided bool
		note       string
		violations int
	}
	ns := opt.nSweep()
	seeds := opt.seeds(20)
	cells := sweep(opt, ns, seeds, func(n, seed int) cell {
		c := cell{allDecided: true}
		sc, t0 := correctGeneralScenario(n, int64(seed), 0, 0)
		res, err := opt.run(sc)
		if err != nil {
			c.note = fmt.Sprintf("n=%d seed=%d: %v", n, seed, err)
			c.violations++
			return c
		}
		ls, _, all := decisionLatencies(res, 0, t0)
		c.allDecided = all
		for _, l := range ls {
			c.lats = append(c.lats, dF(l, sc.Params))
		}
		c.violations += countViolations(
			check.Validity(res, 0, t0, "v"),
			check.TimelinessAgreement(res, 0, true),
			check.Termination(res, 0),
		)
		return c
	})
	for i, n := range ns {
		var lats []float64
		allDecided := true
		for _, c := range cells[i] {
			if c.note != "" {
				r.Notes = append(r.Notes, c.note)
			}
			r.Violations += c.violations
			if !c.allDecided {
				allDecided = false
			}
			lats = append(lats, c.lats...)
		}
		s := metrics.Summarize(lats)
		t.AddRow(n, protocol.DefaultParams(n).F, seeds, s.Mean, s.P95, s.Max, "4d", allDecided)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes, "paper bound: every correct node decides within [t0−d, t0+4d] (Timeliness-2)")
	return r
}

// E2AgreementSkew measures decision-time and anchor skews across correct
// deciders under a correct General and under a faulty (partial) General.
func E2AgreementSkew(opt Options) *Result {
	r := &Result{ID: "E2", Title: "Decision and anchor skew"}
	t := metrics.NewTable("pairwise skew across correct deciders (in d)",
		"general", "seeds", "max decision skew", "bound", "max anchor skew", "bound")

	seeds := opt.seeds(100)
	pp := protocol.DefaultParams(7)

	type cell struct {
		dec, anc   float64
		decided    bool
		violations int
	}

	// Correct General: validity holds, bound 2d / 6d.
	correct := sweepSeeds(opt, seeds, func(seed int) cell {
		var c cell
		sc, _ := correctGeneralScenario(7, int64(seed), 0, 0)
		res, err := opt.run(sc)
		if err != nil {
			c.violations++
			return c
		}
		rts, anchors := decideTimes(res, 0)
		c.dec = dF(float64(pairwiseSkew(rts)), pp)
		c.anc = dF(float64(pairwiseSkew(anchors)), pp)
		c.violations += countViolations(check.TimelinessAgreement(res, 0, true))
		return c
	})
	var maxDec, maxAnc float64
	for _, c := range correct {
		r.Violations += c.violations
		maxDec = max(maxDec, c.dec)
		maxAnc = max(maxAnc, c.anc)
	}
	t.AddRow("correct", seeds, maxDec, "2d", maxAnc, "6d")

	// Faulty General: partial initiation that still lets a decision form;
	// validity does not hold, bound 3d / 6d.
	faulty := sweepSeeds(opt, seeds, func(seed int) cell {
		var c cell
		scPP := protocol.DefaultParams(7)
		invitees := []protocol.NodeID{1, 2, 3, 4, 5}
		sc := sim.Scenario{
			Params: scPP,
			Seed:   int64(seed),
			Faulty: map[protocol.NodeID]protocol.Node{
				0: &byzantine.PartialGeneral{Invitees: invitees, Value: "pv", At: 2 * scPP.D},
				6: &byzantine.Yeasayer{},
			},
			RunFor: 4 * scPP.DeltaAgr(),
		}
		res, err := opt.run(sc)
		if err != nil {
			c.violations++
			return c
		}
		rts, anchors := decideTimes(res, 0)
		c.decided = len(rts) > 0
		c.dec = dF(float64(pairwiseSkew(rts)), scPP)
		c.anc = dF(float64(pairwiseSkew(anchors)), scPP)
		c.violations += countViolations(
			check.Agreement(res, 0),
			check.TimelinessAgreement(res, 0, false),
		)
		return c
	})
	maxDec, maxAnc = 0, 0
	decidedRuns := 0
	for _, c := range faulty {
		r.Violations += c.violations
		if c.decided {
			decidedRuns++
		}
		maxDec = max(maxDec, c.dec)
		maxAnc = max(maxAnc, c.anc)
	}
	t.AddRow("faulty(partial)", seeds, maxDec, "3d", maxAnc, "6d")
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		fmt.Sprintf("faulty-General runs reaching a decision: %d/%d (the rest abort consistently — allowed)", decidedRuns, seeds))
	return r
}

// E3TerminationBound stresses Timeliness-3 with a staggering faulty
// General plus colluders, measuring the worst return time.
func E3TerminationBound(opt Options) *Result {
	r := &Result{ID: "E3", Title: "Termination bound"}
	t := metrics.NewTable("worst-case return time (in d)",
		"scenario", "seeds", "max return−invoke", "bound Δagr+7d", "violations")
	seeds := opt.seeds(50)
	pp := protocol.DefaultParams(7)
	bound := dF(float64(pp.DeltaAgr()+7*pp.D), pp)

	scenarios := []struct {
		name   string
		faulty func(seed int64) map[protocol.NodeID]protocol.Node
	}{
		{"partial General", func(int64) map[protocol.NodeID]protocol.Node {
			return map[protocol.NodeID]protocol.Node{
				0: &byzantine.PartialGeneral{Invitees: []protocol.NodeID{1, 2, 3}, Value: "x", At: 2 * pp.D, SupportDelay: pp.D},
			}
		}},
		{"partial General + late supporter", func(int64) map[protocol.NodeID]protocol.Node {
			return map[protocol.NodeID]protocol.Node{
				0: &byzantine.PartialGeneral{Invitees: []protocol.NodeID{1, 2, 3, 4}, Value: "x", At: 2 * pp.D},
				6: &byzantine.LateSupporter{G: 0, Delay: pp.D, HoldLocal: 3 * pp.D},
			}
		}},
		{"equivocator + yeasayer", func(int64) map[protocol.NodeID]protocol.Node {
			return map[protocol.NodeID]protocol.Node{
				0: &byzantine.Equivocator{Values: []protocol.Value{"a", "b"}, At: 2 * pp.D},
				6: &byzantine.Yeasayer{},
			}
		}},
	}

	type cell struct {
		worst      float64
		violations int
	}
	idx := make([]int, len(scenarios))
	for i := range idx {
		idx[i] = i
	}
	cells := sweep(opt, idx, seeds, func(si, seed int) cell {
		var c cell
		res, err := opt.run(sim.Scenario{
			Params: pp,
			Seed:   int64(seed),
			Faulty: scenarios[si].faulty(int64(seed)),
			RunFor: 5 * pp.DeltaAgr(),
		})
		if err != nil {
			c.violations++
			return c
		}
		c.violations += countViolations(check.Termination(res, 0), check.Agreement(res, 0))
		c.worst = worstReturn(res, 0, pp)
		return c
	})
	for i, sc := range scenarios {
		var worst float64
		vio := 0
		for _, c := range cells[i] {
			vio += c.violations
			worst = max(worst, c.worst)
		}
		t.AddRow(sc.name, seeds, worst, bound, vio)
		r.Violations += vio
	}
	r.Tables = append(r.Tables, t)
	return r
}

// worstReturn is the worst correct-node return time for General g relative
// to the earliest correct invocation, in units of d (0 when no correct
// node invoked).
func worstReturn(res *sim.Result, g protocol.NodeID, pp protocol.Params) float64 {
	invs := res.Invocations(g)
	if len(invs) == 0 {
		return 0
	}
	earliest := invs[0].RT
	for _, ev := range invs {
		if ev.RT < earliest {
			earliest = ev.RT
		}
	}
	var worst float64
	for _, d := range res.Decisions(g) {
		if lat := dF(float64(d.RT-earliest), pp); lat > worst {
			worst = lat
		}
	}
	return worst
}

// E4EarlyStopping measures how the worst-case return time grows with the
// actual number of faults f′ at fixed n: the O(f′) claim. With f′ = 0 the
// run finishes within the validity window; every additional actual fault
// can stretch the round structure by at most ~2Φ.
func E4EarlyStopping(opt Options) *Result {
	r := &Result{ID: "E4", Title: "Early stopping in the actual fault count"}
	n := 16
	if opt.Quick {
		n = 7
	}
	pp := protocol.DefaultParams(n)
	seeds := opt.seeds(20)
	t := metrics.NewTable(fmt.Sprintf("worst return time vs actual faults f′ (n=%d, f=%d, in d)", n, pp.F),
		"f'", "general", "seeds", "max return", "cap (2f+1)Φ", "violations")
	capD := dF(float64(pp.DeltaAgr()), pp)

	fPrimes := make([]int, pp.F+1)
	for i := range fPrimes {
		fPrimes[i] = i
	}
	type cell struct {
		worst      float64
		violations int
	}
	cells := sweep(opt, fPrimes, seeds, func(fPrime, seed int) cell {
		var c cell
		faulty := make(map[protocol.NodeID]protocol.Node, fPrime)
		if fPrime > 0 {
			// The General itself is the first actual fault; it invites
			// only part of the network so rounds are actually needed.
			invitees := make([]protocol.NodeID, 0, pp.N-pp.F)
			for i := 1; i < pp.N-pp.F+1; i++ {
				invitees = append(invitees, protocol.NodeID(i))
			}
			faulty[0] = &byzantine.PartialGeneral{Invitees: invitees, Value: "e4", At: 2 * pp.D, SupportDelay: pp.D}
		}
		for extra := 1; extra < fPrime; extra++ {
			faulty[protocol.NodeID(pp.N-extra)] = &byzantine.LateSupporter{
				G: 0, Delay: pp.D, HoldLocal: simtime.Duration(extra) * 2 * pp.D,
			}
		}
		sc := sim.Scenario{Params: pp, Seed: int64(seed), Faulty: faulty, RunFor: 5 * pp.DeltaAgr()}
		if fPrime == 0 {
			sc.Initiations = []sim.Initiation{{At: simtime.Real(2 * pp.D), G: 0, Value: "e4"}}
		}
		res, err := opt.run(sc)
		if err != nil {
			c.violations++
			return c
		}
		c.violations += countViolations(check.Agreement(res, 0), check.Termination(res, 0))
		c.worst = worstReturn(res, 0, pp)
		return c
	})
	for i, fPrime := range fPrimes {
		var worst float64
		vio := 0
		for _, c := range cells[i] {
			vio += c.violations
			worst = max(worst, c.worst)
		}
		general := "correct"
		if fPrime > 0 {
			general = "faulty"
		}
		t.AddRow(fPrime, general, seeds, worst, capD, vio)
		r.Violations += vio
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes, "shape: worst return grows with f′ and stays far below the (2f+1)Φ cap for small f′")
	return r
}

// E5MessageDrivenSpeedup runs ss-Byz-Agree and the TPS-87 baseline on
// identical delay distributions and reports the latency ratio across the
// actual-δ sweep — the paper's headline claim.
func E5MessageDrivenSpeedup(opt Options) *Result {
	r := &Result{ID: "E5", Title: "Message-driven vs time-driven rounds"}
	pp := protocol.DefaultParams(7)
	seeds := opt.seeds(20)
	t := metrics.NewTable("mean decision latency from initiation (n=7, in d)",
		"δ/d", "ss-Byz-Agree", "TPS-87 baseline", "speedup")
	deltas := []simtime.Duration{pp.D / 20, pp.D / 10, pp.D / 4, pp.D / 2, 3 * pp.D / 4, pp.D}
	if opt.Quick {
		deltas = []simtime.Duration{pp.D / 10, pp.D}
	}
	cells := sweep(opt, deltas, seeds, func(delta simtime.Duration, seed int) latCell {
		return runLatencyCell(opt, pp, seed, delta)
	})
	for i, delta := range deltas {
		ours, base := mergeLatCells(cells[i], &r.Violations)
		speedup := 0.0
		if ours > 0 {
			speedup = base / ours
		}
		t.AddRow(float64(delta)/float64(pp.D), dF(ours, pp), dF(base, pp), speedup)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"ss-Byz-Agree latency tracks the actual δ; the baseline is pinned to whole Φ rounds regardless of δ (time-driven)",
		"no crossover: the message-driven protocol never loses on identical traces")
	return r
}

// latCell is one seed's head-to-head latency measurement: ss-Byz-Agree and
// the TPS-87 baseline on the same delay distribution.
type latCell struct {
	ours, base []float64
	violations int
}

// runLatencyCell measures one (params, seed, δ) cell of the comparison,
// with actual delays in [δ/2, δ].
func runLatencyCell(opt Options, pp protocol.Params, seed int, delta simtime.Duration) latCell {
	var c latCell
	min := delta / 2
	if min == 0 {
		min = 1
	}
	sc, t0 := correctGeneralScenario(pp.N, int64(seed), min, delta)
	res, err := opt.run(sc)
	if err != nil {
		c.violations++
	} else {
		ls, _, all := decisionLatencies(res, 0, t0)
		if !all {
			c.violations++
		}
		c.ours = ls
		c.violations += countViolations(check.Validity(res, 0, t0, "v"))
	}
	c.base, _ = runBaseline(opt, pp, int64(seed), delta)
	return c
}

// mergeLatCells folds one configuration's cells (in seed order) into the
// two mean latencies, accumulating violations.
func mergeLatCells(cells []latCell, violations *int) (ours, base float64) {
	var oursLats, baseLats []float64
	for _, c := range cells {
		*violations += c.violations
		oursLats = append(oursLats, c.ours...)
		baseLats = append(baseLats, c.base...)
	}
	return metrics.Summarize(oursLats).Mean, metrics.Summarize(baseLats).Mean
}
