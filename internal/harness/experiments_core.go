package harness

import (
	"fmt"

	"ssbyz/internal/byzantine"
	"ssbyz/internal/check"
	"ssbyz/internal/metrics"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
)

// E1ValidityLatency sweeps n with a correct General and measures the
// decision latency of every correct node against the Validity /
// Timeliness-2 window [t0−d, t0+4d].
func E1ValidityLatency(opt Options) *Result {
	r := &Result{ID: "E1", Title: "Validity latency under a correct General"}
	t := metrics.NewTable("decision latency, correct General (latencies in d)",
		"n", "f", "seeds", "mean", "p95", "max", "bound", "all decided")
	for _, n := range opt.nSweep() {
		var lats []float64
		allDecided := true
		var pp protocol.Params
		for seed := 0; seed < opt.seeds(20); seed++ {
			sc, t0 := correctGeneralScenario(n, int64(seed), 0, 0)
			pp = sc.Params
			res, err := sim.Run(sc)
			if err != nil {
				r.Notes = append(r.Notes, fmt.Sprintf("n=%d seed=%d: %v", n, seed, err))
				r.Violations++
				continue
			}
			ls, _, all := decisionLatencies(res, 0, t0)
			if !all {
				allDecided = false
			}
			for _, l := range ls {
				lats = append(lats, dF(l, sc.Params))
			}
			r.Violations += countViolations(
				check.Validity(res, 0, t0, "v"),
				check.TimelinessAgreement(res, 0, true),
				check.Termination(res, 0),
			)
		}
		s := metrics.Summarize(lats)
		t.AddRow(n, pp.F, opt.seeds(20), s.Mean, s.P95, s.Max, "4d", allDecided)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes, "paper bound: every correct node decides within [t0−d, t0+4d] (Timeliness-2)")
	return r
}

// E2AgreementSkew measures decision-time and anchor skews across correct
// deciders under a correct General and under a faulty (partial) General.
func E2AgreementSkew(opt Options) *Result {
	r := &Result{ID: "E2", Title: "Decision and anchor skew"}
	t := metrics.NewTable("pairwise skew across correct deciders (in d)",
		"general", "seeds", "max decision skew", "bound", "max anchor skew", "bound")

	seeds := opt.seeds(100)
	pp := protocol.DefaultParams(7)

	// Correct General: validity holds, bound 2d / 6d.
	var maxDec, maxAnc float64
	for seed := 0; seed < seeds; seed++ {
		sc, _ := correctGeneralScenario(7, int64(seed), 0, 0)
		res, err := sim.Run(sc)
		if err != nil {
			r.Violations++
			continue
		}
		rts, anchors := decideTimes(res, 0)
		if d := dF(float64(pairwiseSkew(rts)), pp); d > maxDec {
			maxDec = d
		}
		if d := dF(float64(pairwiseSkew(anchors)), pp); d > maxAnc {
			maxAnc = d
		}
		r.Violations += countViolations(check.TimelinessAgreement(res, 0, true))
	}
	t.AddRow("correct", seeds, maxDec, "2d", maxAnc, "6d")

	// Faulty General: partial initiation that still lets a decision form;
	// validity does not hold, bound 3d / 6d.
	maxDec, maxAnc = 0, 0
	decidedRuns := 0
	for seed := 0; seed < seeds; seed++ {
		scPP := protocol.DefaultParams(7)
		invitees := []protocol.NodeID{1, 2, 3, 4, 5}
		sc := sim.Scenario{
			Params: scPP,
			Seed:   int64(seed),
			Faulty: map[protocol.NodeID]protocol.Node{
				0: &byzantine.PartialGeneral{Invitees: invitees, Value: "pv", At: 2 * scPP.D},
				6: &byzantine.Yeasayer{},
			},
			RunFor: 4 * scPP.DeltaAgr(),
		}
		res, err := sim.Run(sc)
		if err != nil {
			r.Violations++
			continue
		}
		rts, anchors := decideTimes(res, 0)
		if len(rts) > 0 {
			decidedRuns++
		}
		if d := dF(float64(pairwiseSkew(rts)), scPP); d > maxDec {
			maxDec = d
		}
		if d := dF(float64(pairwiseSkew(anchors)), scPP); d > maxAnc {
			maxAnc = d
		}
		r.Violations += countViolations(
			check.Agreement(res, 0),
			check.TimelinessAgreement(res, 0, false),
		)
	}
	t.AddRow("faulty(partial)", seeds, maxDec, "3d", maxAnc, "6d")
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		fmt.Sprintf("faulty-General runs reaching a decision: %d/%d (the rest abort consistently — allowed)", decidedRuns, seeds))
	return r
}

// E3TerminationBound stresses Timeliness-3 with a staggering faulty
// General plus colluders, measuring the worst return time.
func E3TerminationBound(opt Options) *Result {
	r := &Result{ID: "E3", Title: "Termination bound"}
	t := metrics.NewTable("worst-case return time (in d)",
		"scenario", "seeds", "max return−invoke", "bound Δagr+7d", "violations")
	seeds := opt.seeds(50)
	pp := protocol.DefaultParams(7)
	bound := dF(float64(pp.DeltaAgr()+7*pp.D), pp)

	scenarios := []struct {
		name   string
		faulty func(seed int64) map[protocol.NodeID]protocol.Node
	}{
		{"partial General", func(int64) map[protocol.NodeID]protocol.Node {
			return map[protocol.NodeID]protocol.Node{
				0: &byzantine.PartialGeneral{Invitees: []protocol.NodeID{1, 2, 3}, Value: "x", At: 2 * pp.D, SupportDelay: pp.D},
			}
		}},
		{"partial General + late supporter", func(int64) map[protocol.NodeID]protocol.Node {
			return map[protocol.NodeID]protocol.Node{
				0: &byzantine.PartialGeneral{Invitees: []protocol.NodeID{1, 2, 3, 4}, Value: "x", At: 2 * pp.D},
				6: &byzantine.LateSupporter{G: 0, Delay: pp.D, HoldLocal: 3 * pp.D},
			}
		}},
		{"equivocator + yeasayer", func(int64) map[protocol.NodeID]protocol.Node {
			return map[protocol.NodeID]protocol.Node{
				0: &byzantine.Equivocator{Values: []protocol.Value{"a", "b"}, At: 2 * pp.D},
				6: &byzantine.Yeasayer{},
			}
		}},
	}
	for _, sc := range scenarios {
		var worst float64
		vio := 0
		for seed := 0; seed < seeds; seed++ {
			res, err := sim.Run(sim.Scenario{
				Params: pp,
				Seed:   int64(seed),
				Faulty: sc.faulty(int64(seed)),
				RunFor: 5 * pp.DeltaAgr(),
			})
			if err != nil {
				vio++
				continue
			}
			vio += countViolations(check.Termination(res, 0), check.Agreement(res, 0))
			// Worst return time relative to the earliest correct invocation.
			invs := res.Invocations(0)
			if len(invs) == 0 {
				continue
			}
			earliest := invs[0].RT
			for _, ev := range invs {
				if ev.RT < earliest {
					earliest = ev.RT
				}
			}
			for _, d := range res.Decisions(0) {
				if lat := dF(float64(d.RT-earliest), pp); lat > worst {
					worst = lat
				}
			}
		}
		t.AddRow(sc.name, seeds, worst, bound, vio)
		r.Violations += vio
	}
	r.Tables = append(r.Tables, t)
	return r
}

// E4EarlyStopping measures how the worst-case return time grows with the
// actual number of faults f′ at fixed n: the O(f′) claim. With f′ = 0 the
// run finishes within the validity window; every additional actual fault
// can stretch the round structure by at most ~2Φ.
func E4EarlyStopping(opt Options) *Result {
	r := &Result{ID: "E4", Title: "Early stopping in the actual fault count"}
	n := 16
	if opt.Quick {
		n = 7
	}
	pp := protocol.DefaultParams(n)
	seeds := opt.seeds(20)
	t := metrics.NewTable(fmt.Sprintf("worst return time vs actual faults f′ (n=%d, f=%d, in d)", n, pp.F),
		"f'", "general", "seeds", "max return", "cap (2f+1)Φ", "violations")
	capD := dF(float64(pp.DeltaAgr()), pp)

	for fPrime := 0; fPrime <= pp.F; fPrime++ {
		var worst float64
		vio := 0
		for seed := 0; seed < seeds; seed++ {
			faulty := make(map[protocol.NodeID]protocol.Node, fPrime)
			if fPrime > 0 {
				// The General itself is the first actual fault; it invites
				// only part of the network so rounds are actually needed.
				invitees := make([]protocol.NodeID, 0, pp.N-pp.F)
				for i := 1; i < pp.N-pp.F+1; i++ {
					invitees = append(invitees, protocol.NodeID(i))
				}
				faulty[0] = &byzantine.PartialGeneral{Invitees: invitees, Value: "e4", At: 2 * pp.D, SupportDelay: pp.D}
			}
			for extra := 1; extra < fPrime; extra++ {
				faulty[protocol.NodeID(pp.N-extra)] = &byzantine.LateSupporter{
					G: 0, Delay: pp.D, HoldLocal: simtime.Duration(extra) * 2 * pp.D,
				}
			}
			sc := sim.Scenario{Params: pp, Seed: int64(seed), Faulty: faulty, RunFor: 5 * pp.DeltaAgr()}
			if fPrime == 0 {
				sc.Initiations = []sim.Initiation{{At: simtime.Real(2 * pp.D), G: 0, Value: "e4"}}
			}
			res, err := sim.Run(sc)
			if err != nil {
				vio++
				continue
			}
			vio += countViolations(check.Agreement(res, 0), check.Termination(res, 0))
			invs := res.Invocations(0)
			if len(invs) == 0 {
				continue
			}
			earliest := invs[0].RT
			for _, ev := range invs {
				if ev.RT < earliest {
					earliest = ev.RT
				}
			}
			for _, d := range res.Decisions(0) {
				if lat := dF(float64(d.RT-earliest), pp); lat > worst {
					worst = lat
				}
			}
		}
		general := "correct"
		if fPrime > 0 {
			general = "faulty"
		}
		t.AddRow(fPrime, general, seeds, worst, capD, vio)
		r.Violations += vio
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes, "shape: worst return grows with f′ and stays far below the (2f+1)Φ cap for small f′")
	return r
}

// E5MessageDrivenSpeedup runs ss-Byz-Agree and the TPS-87 baseline on
// identical delay distributions and reports the latency ratio across the
// actual-δ sweep — the paper's headline claim.
func E5MessageDrivenSpeedup(opt Options) *Result {
	r := &Result{ID: "E5", Title: "Message-driven vs time-driven rounds"}
	pp := protocol.DefaultParams(7)
	seeds := opt.seeds(20)
	t := metrics.NewTable("mean decision latency from initiation (n=7, in d)",
		"δ/d", "ss-Byz-Agree", "TPS-87 baseline", "speedup")
	deltas := []simtime.Duration{pp.D / 20, pp.D / 10, pp.D / 4, pp.D / 2, 3 * pp.D / 4, pp.D}
	if opt.Quick {
		deltas = []simtime.Duration{pp.D / 10, pp.D}
	}
	for _, delta := range deltas {
		ours := meanOursLatency(pp, seeds, delta, &r.Violations)
		base := meanBaselineLatency(pp, seeds, delta)
		speedup := 0.0
		if ours > 0 {
			speedup = base / ours
		}
		t.AddRow(float64(delta)/float64(pp.D), dF(ours, pp), dF(base, pp), speedup)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"ss-Byz-Agree latency tracks the actual δ; the baseline is pinned to whole Φ rounds regardless of δ (time-driven)",
		"no crossover: the message-driven protocol never loses on identical traces")
	return r
}

// meanOursLatency is the mean correct-node decision latency for
// ss-Byz-Agree with actual delays in [δ/2, δ].
func meanOursLatency(pp protocol.Params, seeds int, delta simtime.Duration, violations *int) float64 {
	var lats []float64
	min := delta / 2
	if min == 0 {
		min = 1
	}
	for seed := 0; seed < seeds; seed++ {
		sc, t0 := correctGeneralScenario(pp.N, int64(seed), min, delta)
		res, err := sim.Run(sc)
		if err != nil {
			*violations++
			continue
		}
		ls, _, all := decisionLatencies(res, 0, t0)
		if !all {
			*violations++
		}
		lats = append(lats, ls...)
		*violations += countViolations(check.Validity(res, 0, t0, "v"))
	}
	return metrics.Summarize(lats).Mean
}
