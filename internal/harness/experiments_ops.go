package harness

import (
	"bytes"
	"fmt"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/metrics"
	"ssbyz/internal/nettrans"
	"ssbyz/internal/ops"
	"ssbyz/internal/protocol"
)

// Experiments V4/L4 "Cluster operations campaign": the ops layer's
// boot→scale→roll→drain schedule (DESIGN.md §12) executed end to end —
// an n-node fleet boots with one slot held back, the service pump
// commits replicated-log entries at General 0 throughout, the held slot
// scales up mid-run, a running node is rolled (stop → incarnation bump
// on every peer → reboot), and the fleet drains once the workload is
// committed and the replacement has re-stabilized. The claims under
// test are the ones that make day-2 operations safe on this protocol:
// the rolled node re-converges within the paper's Δstb = 2Δreset budget
// (a roll is just a transient fault to a self-stabilizing system), and
// the old incarnation is provably dead — a frame replayed from it is
// rejected by every peer at the first step of the acceptance pipeline
// (epoch_drops). V4 runs the campaign under virtual time (exact,
// byte-identical across runs and worker counts — it gates CI inside
// All()); L4 is the same campaign over real UDP loopback sockets under
// the wall clock, appended by `ssbyz-bench -live`.

// v4Config is one V4 campaign configuration.
type v4Config struct {
	n, roll int
}

// opsCell is one campaign run reduced to its operational verdicts.
type opsCell struct {
	committed  int
	scaleAt    int64
	rollAt     int64
	restab     int64
	within     bool
	replayPeer int
	canon      []byte
	cellWallMS float64
	violations int
	errs       []string
}

// runOpsCell executes one campaign and judges it: workload committed,
// schedule executed, roll re-stabilized within Δstb, replay probe
// rejected by every peer, final fleet health stabilized.
func runOpsCell(n, roll int, seed int64, virtual, legacy bool) opsCell {
	var c opsCell
	fail := func(format string, args ...any) {
		c.violations++
		c.errs = append(c.errs, fmt.Sprintf("ops n=%d seed=%d: %s", n, seed, fmt.Sprintf(format, args...)))
	}
	cfg := ops.CampaignConfig{
		Spec:       ops.QuickSpec(n, roll, liveD, seed),
		Tick:       liveTick,
		LegacyWire: legacy,
	}
	if virtual {
		cfg.Clock = clock.NewFake(time.Time{})
	} else {
		cfg.Transport = nettrans.TransportUDP
	}
	start := time.Now()
	rep, err := ops.RunCampaign(cfg)
	c.cellWallMS = float64(time.Since(start).Microseconds()) / 1000
	if err != nil {
		fail("campaign: %v", err)
		return c
	}
	c.committed = rep.Committed
	c.canon = rep.Canonical()
	if rep.Committed == 0 || rep.Failed != 0 || rep.Dropped != 0 {
		fail("workload: committed=%d failed=%d dropped=%d", rep.Committed, rep.Failed, rep.Dropped)
	}
	if len(rep.Scales) != 1 || len(rep.Rolls) != 1 {
		fail("schedule executed %d scales and %d rolls, want 1+1", len(rep.Scales), len(rep.Rolls))
		return c
	}
	c.scaleAt = rep.Scales[0].At
	rr := rep.Rolls[0]
	c.rollAt, c.restab, c.within, c.replayPeer = rr.At, rr.RestabTicks, rr.WithinDeltaStb, rr.EpochDropPeers
	if rr.RestabTicks < 0 || !rr.WithinDeltaStb {
		fail("rolled node %d did not re-stabilize within Δstb=%d (restab=%d)",
			rr.Node, rep.Params.DeltaStb(), rr.RestabTicks)
	}
	if rr.EpochDropPeers != n-1 {
		fail("old-incarnation replay rejected by %d/%d peers", rr.EpochDropPeers, n-1)
	}
	for id, st := range rep.Health {
		if st != ops.StateStabilized {
			fail("final health[%d] = %q", id, st)
		}
	}
	return c
}

// V4OpsCampaign is the deterministic operations campaign: live
// membership on the virtual wire. Every number is exact; the explicit
// determinism gate reruns the first cell and compares the canonical
// bytes (report + full sorted trace).
func V4OpsCampaign(opt Options) *Result {
	r := &Result{ID: "V4", Title: "Cluster operations campaign: boot→scale→roll→drain under virtual time"}
	seeds := 2
	configs := []v4Config{{4, 2}}
	if !opt.Quick {
		seeds = 3
		configs = append(configs, v4Config{7, 3})
	}
	grid := sweep(opt, configs, seeds, func(cfg v4Config, seed int) opsCell {
		return runOpsCell(cfg.n, cfg.roll, int64(cfg.n)*100+int64(seed), true, opt.LegacyWire)
	})
	t := metrics.NewTable(
		fmt.Sprintf("ops campaign over the virtual wire (d = %d ticks; scale@10d, roll@22d; all columns deterministic)", liveD),
		"n", "f", "seeds", "committed/seed", "restab p50 ticks", "restab max (Δstb)",
		"replay-rejecting peers", "violations")
	for ci, cfg := range configs {
		pp := protocol.DefaultParams(cfg.n)
		pp.D = liveD
		var restabs []float64
		committed, peers, violations := 0, 0, 0
		for _, c := range grid[ci] {
			committed += c.committed
			peers += c.replayPeer
			violations += c.violations
			if c.restab >= 0 {
				restabs = append(restabs, float64(c.restab))
			}
			for _, e := range c.errs {
				r.Notes = append(r.Notes, e)
			}
		}
		s := metrics.Summarize(restabs)
		t.AddRow(cfg.n, pp.F, seeds,
			fmt.Sprintf("%.1f", float64(committed)/float64(seeds)),
			fmt.Sprintf("%.0f", s.P50),
			fmt.Sprintf("%.3f", s.Max/float64(pp.DeltaStb())),
			fmt.Sprintf("%d/%d", peers, seeds*(cfg.n-1)),
			violations)
		r.Violations += violations
	}
	r.Tables = append(r.Tables, t)

	// The determinism gate: the same spec and seed must reproduce the
	// campaign byte for byte — report and full sorted trace.
	base := runOpsCell(configs[0].n, configs[0].roll, int64(configs[0].n)*100, true, opt.LegacyWire)
	if !bytes.Equal(base.canon, grid[0][0].canon) {
		r.Violations++
		r.Notes = append(r.Notes, fmt.Sprintf(
			"determinism: repeated campaign diverged (%d vs %d canonical bytes)",
			len(base.canon), len(grid[0][0].canon)))
	}
	r.Notes = append(r.Notes,
		"live membership as a deterministic schedule: the absent slot boots at 10d, a node is stopped, epoch-bumped, and rebooted at 22d, and the fleet drains only after the workload commits and the replacement decides again — all on the fake clock, byte-identical across runs and worker counts",
		"the replay-rejecting column is the incarnation proof: a frame forged from the rolled node's previous epoch id is offered to every peer and must die at the first acceptance-pipeline step (epoch_drops) on all of them (DESIGN.md §12)",
		fmt.Sprintf("determinism gate: the first cell reruns and its canonical rendering (%d bytes) matched byte for byte", len(base.canon)),
	)
	return r
}

// L4OpsLive is the wall-clock mirror of V4: the same
// boot→scale→roll→drain campaign over real UDP loopback sockets. Its
// times vary with the host, so `ssbyz-bench -live` appends it; the
// deterministic acceptance is the verdict — workload committed under
// the roll, re-stabilization within Δstb of real time, replay rejected
// by every peer.
func L4OpsLive(opt Options) *Result {
	r := &Result{ID: "L4", Title: "Cluster operations campaign over real sockets: roll under traffic"}
	pp := protocol.DefaultParams(4)
	pp.D = liveD
	seeds := 1
	if !opt.Quick {
		seeds = 2
	}
	cellWall := make(map[string]float64)
	t := metrics.NewTable(
		fmt.Sprintf("ops campaign over real UDP loopback (n=4, d = %d ticks × %v, Δstb = %v)",
			liveD, liveTick, time.Duration(pp.DeltaStb())*liveTick),
		"seed", "committed", "restab ticks", "restab/Δstb", "restab wall", "replay peers", "violations")
	retries := 0
	for seed := 0; seed < seeds; seed++ {
		var c opsCell
		for attempt := 0; ; attempt++ {
			c = runOpsCell(4, 2, 9100+int64(seed)+1000*int64(attempt), false, opt.LegacyWire)
			if c.violations == 0 || attempt >= 2 {
				retries += attempt
				break
			}
		}
		restabWall := "-"
		ratio := "-"
		if c.restab >= 0 {
			restabWall = (time.Duration(c.restab) * liveTick).Round(time.Millisecond).String()
			ratio = fmt.Sprintf("%.3f", float64(c.restab)/float64(pp.DeltaStb()))
		}
		t.AddRow(seed, c.committed, c.restab, ratio, restabWall,
			fmt.Sprintf("%d/3", c.replayPeer), c.violations)
		r.Violations += c.violations
		for _, e := range c.errs {
			r.Notes = append(r.Notes, e)
		}
		cellWall[fmt.Sprintf("campaign/%d", seed)] = c.cellWallMS
	}
	r.Tables = append(r.Tables, t)
	r.CellWallMS = cellWall
	if retries > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%d cell(s) were rerun after an incomplete first attempt (host contention starved the run past the d deadline)", retries))
	}
	r.Notes = append(r.Notes,
		"same campaign as V4 but over real UDP sockets under the wall clock: the rolled node's socket closes, its replacement rebinds the same address at the next incarnation, and Δstb here is real milliseconds, not a schedule",
		"the replay column injects the old incarnation's frame through an anonymous UDP sender — the live pipeline's epoch check (before authentication, by design) must count it on every peer",
	)
	return r
}
