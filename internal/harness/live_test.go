package harness

import (
	"bytes"
	"testing"
)

// TestLiveExperimentQuick runs L1 (quick: 2 seeds per cell) against real
// loopback sockets. The wall-clock numbers vary; the acceptance is the
// deterministic part — zero violations, full table shape, per-cell wall
// costs recorded for the BENCH artifact.
func TestLiveExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("brings up real socket clusters; skipped in -short")
	}
	res := L1Live(Options{Quick: true})
	if res.Violations != 0 {
		var buf bytes.Buffer
		_, _ = res.WriteTo(&buf)
		t.Fatalf("L1 found %d violations:\n%s", res.Violations, buf.String())
	}
	if len(res.Tables) != 3 {
		t.Fatalf("L1 produced %d tables, want 3 (sweep + chaos + wire-rate pump)", len(res.Tables))
	}
	if rows := len(res.Tables[0].Rows); rows != len(LiveNs())+1 {
		t.Errorf("sweep table has %d rows, want %d (udp sweep + tcp baseline)", rows, len(LiveNs())+1)
	}
	if rows := len(res.Tables[1].Rows); rows != 1 {
		t.Errorf("chaos table has %d rows, want 1", rows)
	}
	for _, key := range []string{"udp/4", "udp/7", "udp/16", "tcp/4", "chaos/7", "pump/16"} {
		if v, ok := res.CellWallMS[key]; !ok || v <= 0 {
			t.Errorf("CellWallMS[%q] = %v, want > 0", key, v)
		}
	}
	if rate, ok := res.Floors["udp_pump_msgs_per_sec_n16"]; !ok || rate <= 0 {
		t.Errorf("Floors[udp_pump_msgs_per_sec_n16] = %v, want > 0 (the committed-artifact guard enforces the 10^6 bar)", rate)
	}
}

// TestAdversarialLiveQuick runs L3 against real loopback sockets: the
// byte-level attack classes and the in-situ recovery cell outside
// virtual time. The wall-clock figures vary; the verdict must not —
// every class injected and rejected, recovery within Δstb, battery
// clean.
func TestAdversarialLiveQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("brings up real socket clusters and waits a real Δstb window; skipped in -short")
	}
	res := L3AdversarialLive(Options{Quick: true})
	if res.Violations != 0 {
		var buf bytes.Buffer
		_, _ = res.WriteTo(&buf)
		t.Fatalf("L3 found %d violations:\n%s", res.Violations, buf.String())
	}
	if len(res.Tables) != 2 {
		t.Fatalf("L3 produced %d tables, want 2 (attack smoke + recovery)", len(res.Tables))
	}
	for _, key := range []string{"corrupt/4", "forge/4", "duplicate/4", "replay-xepoch/4", "recovery/4"} {
		if v, ok := res.CellWallMS[key]; !ok || v <= 0 {
			t.Errorf("CellWallMS[%q] = %v, want > 0", key, v)
		}
	}
}

// TestOpsLiveQuick runs L4 against real loopback sockets: the full
// boot→scale→roll→drain campaign under the wall clock. The times vary
// with the host; the verdict must not — workload committed under the
// roll, the replacement re-stabilized within Δstb of real time, the
// old-incarnation replay rejected by every peer.
func TestOpsLiveQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("brings up a real socket fleet and rolls a node under traffic; skipped in -short")
	}
	res := L4OpsLive(Options{Quick: true})
	if res.Violations != 0 {
		var buf bytes.Buffer
		_, _ = res.WriteTo(&buf)
		t.Fatalf("L4 found %d violations:\n%s", res.Violations, buf.String())
	}
	if len(res.Tables) != 1 {
		t.Fatalf("L4 produced %d tables, want 1", len(res.Tables))
	}
	if v, ok := res.CellWallMS["campaign/0"]; !ok || v <= 0 {
		t.Errorf("CellWallMS[campaign/0] = %v, want > 0", v)
	}
}
