package harness

import (
	"bytes"
	"testing"
)

// The wire differential at campaign scale: -legacy-wire must be a pure
// wire-format switch. V1 (the deterministic live campaign) and V3 (the
// deterministic adversarial campaign) run the full nettrans pipeline
// over the virtual wire, so their rendered reports — latency tables,
// per-class injected/rejected accounting, violations, notes — must come
// out byte-identical whether frames cross the wire coalesced into
// FrameBatch containers or one datagram per frame, at any worker count.

// TestBatchedVsLegacyWireReportsIdentical renders V1+V3 under all four
// (wire mode × worker count) corners and requires one unique byte
// stream. Workers is swept too because the coalescer runs inside each
// cell's event loops: a cell-parallelism leak into coalescing decisions
// would show up here as a diff between the Workers=1 and Workers=8
// renderings before it could corrupt CI.
func TestBatchedVsLegacyWireReportsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two campaigns four times; skipped in -short")
	}
	var ref []byte
	var refMode string
	for _, legacy := range []bool{false, true} {
		for _, workers := range []int{1, 8} {
			opt := Options{Quick: true, Workers: workers, LegacyWire: legacy}
			got := renderReport(t, opt, V1VirtualLive, V3AdversarialLive)
			mode := map[bool]string{false: "coalesced", true: "legacy"}[legacy]
			if ref == nil {
				ref, refMode = got, mode
				continue
			}
			if !bytes.Equal(ref, got) {
				t.Fatalf("V1/V3 reports differ: %s vs %s workers=%d:\n--- ref ---\n%s\n--- got ---\n%s",
					refMode, mode, workers, ref, got)
			}
		}
	}
}
