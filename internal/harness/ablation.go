package harness

import (
	"fmt"
	"math/rand"

	"ssbyz/internal/check"
	"ssbyz/internal/metrics"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// A1BlockRWindow is the ablation for the one documented deviation from
// Fig. 1: the prompt-decision window of Block R. The paper's text says
// τq − τG ≤ 4d, but its own Claim 1 timeline lets a correct node's N4
// trail its recording time by up to 5d (IA-1D: rt(τG) can be t0−d while
// the I-accept lands at t0+4d). Uniform-random delays never realize the
// (4d, 5d] corner, so the ablation runs two regimes:
//
//   - random: delays uniform in [d/4, d] — both windows pass;
//   - adversarial: a legal delay schedule that pins one victim's
//     recording time at t0−d (fast Initiator and two fast supports) while
//     every quorum leg crawls at the full d, pushing the victim's own
//     I-accept gap past 4d. The literal 4d window then drops the prompt
//     decision and the victim misses the t0+4d validity bound.
func A1BlockRWindow(opt Options) *Result {
	r := &Result{ID: "A1", Title: "Ablation: Block R prompt-decision window (4d vs 5d)"}
	seeds := opt.seeds(50)
	t := metrics.NewTable("fault-free validity misses by window and delay regime (n=7)",
		"window", "regime", "seeds", "validity misses", "worst own-node gap (d)")

	type regime struct {
		window      simtime.Duration
		adversarial bool
	}
	var regimes []regime
	for _, window := range []simtime.Duration{4, 5} {
		for _, adversarial := range []bool{false, true} {
			regimes = append(regimes, regime{window, adversarial})
		}
	}
	cells := sweep(opt, regimes, seeds, func(rg regime, seed int) a1Cell {
		return a1Run(opt, rg.window, rg.adversarial, seed)
	})
	for i, rg := range regimes {
		misses := 0
		var worstGap float64
		for _, c := range cells[i] {
			if c.miss {
				misses++
			}
			worstGap = max(worstGap, c.gap)
		}
		name := "random"
		if rg.adversarial {
			name = "adversarial"
		}
		t.AddRow(fmt.Sprintf("%dd", rg.window), name, seeds, misses, worstGap)
		// Only the repo's 5d configuration must be violation-free; the
		// 4d rows exist to show the failure.
		if rg.window == 5 {
			r.Violations += misses
		}
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"under the adversarial-yet-legal schedule the victim's own-node gap exceeds 4d, so the literal Fig. 1 window drops the prompt decision and Timeliness-2 breaks; the repo's 5d window is the constant consistent with Claim 1 / IA-1D",
		"safety is unaffected either way: Block R still requires an I-accept, and IA-4 bounds anchors across values")
	return r
}

// a1Cell is one (window, regime, seed) outcome: whether the run missed
// the validity window, and the worst observed rt(τq)−rt(τG) at an
// I-accept, in units of d.
type a1Cell struct {
	miss bool
	gap  float64
}

// a1Run executes one seed of one (window, regime) cell.
func a1Run(opt Options, window simtime.Duration, adversarial bool, seed int) a1Cell {
	var c a1Cell
	pp := protocol.DefaultParams(7)
	pp.BlockRWindow = window * pp.D
	t0 := simtime.Real(2 * pp.D)
	sc := sim.Scenario{
		Params:      pp,
		Seed:        int64(seed),
		Initiations: []sim.Initiation{{At: t0, G: 6, Value: "v"}},
		RunFor:      simtime.Duration(t0) + 3*pp.DeltaAgr(),
	}
	if adversarial {
		sc.DelayMin = 1
		sc.DelayMax = pp.D
		sc.Delay = a1AdversarialDelay(pp)
	} else {
		sc.DelayMin = pp.D / 4
		sc.DelayMax = pp.D
	}
	res, err := opt.run(sc)
	if err != nil {
		c.miss = true
		return c
	}
	c.miss = len(check.Validity(res, 6, t0, "v")) > 0
	for _, ev := range res.IAccepts(6) {
		if gap := float64(ev.RT-ev.RTauG) / float64(pp.D); gap > c.gap {
			c.gap = gap
		}
	}
	return c
}

// a1AdversarialDelay builds the legal worst-case schedule realizing the
// Claim 1 / IA-1D corner. Node 0 is the victim:
//
//   - the General's Initiator reaches the victim instantly but everyone
//     else after the full d, so the victim's Block K recording time is
//     t0 − d while the rest of the wave starts a whole d later;
//   - every support toward the victim travels instantly, keeping the
//     victim's Block L shortest-window candidate at or below its Block K
//     value (the max rule never raises rt(τG) above t0 − d);
//   - every other message (support among the rest, all approves, all
//     readys) takes the full d, so the victim's ready quorum — and with
//     it Line N4 — lands at t0 + 4d.
//
// The victim's own-node gap rt(τq) − rt(τG) is then 5d − ε: a correct
// node, a correct General, every delay within the legal [0, d] — and the
// literal 4d Block R window rejects the prompt decision.
func a1AdversarialDelay(pp protocol.Params) simnet.DelayFn {
	const victim = protocol.NodeID(0)
	fast := simtime.Duration(pp.D / 100)
	return func(from, to protocol.NodeID, m protocol.Message, _ *rand.Rand) simtime.Duration {
		switch {
		case m.Kind == protocol.Initiator && to == victim:
			return fast
		case m.Kind == protocol.Support && to == victim:
			return fast
		default:
			return pp.D
		}
	}
}
