package harness

import (
	"runtime"
	"sync"
)

// This file is the suite's parallel execution engine. Every experiment is
// a sweep over independent (configuration, seed) cells — each cell one
// deterministic simulator run — so the fan-out is embarrassingly parallel.
// sweep schedules the cells onto a bounded worker pool and reassembles the
// per-cell outputs in input order, which keeps every table, note, and
// violation count byte-identical across Workers=1 and Workers=N: each cell
// is sealed (its own simnet world, its own rand stream seeded by the cell
// coordinates), and all cross-cell aggregation happens after the barrier,
// in presentation order, on the caller's goroutine.

// workers resolves the effective parallelism.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// limiter returns the pool tokens sweeps draw from: the shared pool when
// RunAll installed one (so concurrent experiments cannot oversubscribe the
// machine), otherwise a fresh pool sized for this sweep alone.
func (o Options) limiter() chan struct{} {
	if o.pool != nil {
		return o.pool
	}
	return make(chan struct{}, o.workers())
}

// withSharedPool returns a copy of o whose sweeps all draw from one
// Workers-sized token pool, bounding total concurrency across overlapping
// experiments.
func (o Options) withSharedPool() Options {
	if o.pool == nil {
		o.pool = make(chan struct{}, o.workers())
	}
	return o
}

// sweep runs run(config, seed) for every cell of the configs × seeds grid
// on the worker pool and returns the outputs indexed [config][seed]. run
// must derive all randomness from its arguments and must not touch state
// shared with other cells; under that contract the returned grid is
// identical for every Workers setting.
func sweep[C, T any](opt Options, configs []C, seeds int, run func(cfg C, seed int) T) [][]T {
	out := make([][]T, len(configs))
	for i := range out {
		out[i] = make([]T, seeds)
	}
	pool := opt.limiter()
	var wg sync.WaitGroup
	for ci := range configs {
		for s := 0; s < seeds; s++ {
			ci, s := ci, s
			pool <- struct{}{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-pool }()
				out[ci][s] = run(configs[ci], s)
			}()
		}
	}
	wg.Wait()
	return out
}

// sweepSeeds is sweep over a single configuration: one cell per seed.
func sweepSeeds[T any](opt Options, seeds int, run func(seed int) T) []T {
	grid := sweep(opt, []struct{}{{}}, seeds, func(_ struct{}, seed int) T {
		return run(seed)
	})
	return grid[0]
}
