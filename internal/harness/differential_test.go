package harness

import (
	"bytes"
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
)

// renderReport renders experiment results the way RunAll does, minus the
// non-deterministic JSON-only fields (WallMS etc. are not written by
// WriteTo), so two renders can be compared byte for byte.
func renderReport(t *testing.T, opt Options, exps ...func(Options) *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, run := range exps {
		if _, err := run(opt).WriteTo(&buf); err != nil {
			t.Fatalf("render: %v", err)
		}
	}
	return buf.Bytes()
}

// TestBatchedVsLegacyReportsIdentical pins the batched fan-out delivery
// path to the legacy per-recipient one across whole experiments: E1
// (fault-free sweeps), E7 (equivocating General + colluder), and the S1
// scaling table (head-to-head incl. the TPS-87 baseline and the
// deterministic processed-event column). The reports must be byte
// identical — batching may only change how deliveries are scheduled,
// never what any node observes.
func TestBatchedVsLegacyReportsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three experiments twice; skipped in -short")
	}
	batched := renderReport(t, Options{Quick: true}, E1ValidityLatency, E7FaultyGeneralAgreement)
	legacy := renderReport(t, Options{Quick: true, LegacyFanout: true}, E1ValidityLatency, E7FaultyGeneralAgreement)
	if !bytes.Equal(batched, legacy) {
		t.Fatalf("E1/E7 reports differ between batched and legacy fan-out:\n--- batched ---\n%s\n--- legacy ---\n%s", batched, legacy)
	}

	// S1 on a reduced sweep (the full quick sweep reaches n=128; the
	// differential result is independent of n, and n=31 already exercises
	// multi-recipient batches on every tick).
	ns := []int{4, 16, 31}
	tb, vb, _ := ScalingTable(Options{Quick: true}, ns)
	tl, vl, _ := ScalingTable(Options{Quick: true, LegacyFanout: true}, ns)
	if vb != vl {
		t.Fatalf("S1 violations differ: batched %d vs legacy %d", vb, vl)
	}
	if tb.String() != tl.String() {
		t.Fatalf("S1 table differs between batched and legacy fan-out:\n%s\nvs\n%s", tb.String(), tl.String())
	}
}

// TestBatchedVsLegacyWorldIdentical compares a single world run under both
// fan-out modes at the trace level: every recorded event (in order), the
// per-kind message counts, and the processed-event counter must agree
// exactly — the strongest form of the delivery-order guarantee.
func TestBatchedVsLegacyWorldIdentical(t *testing.T) {
	run := func(legacy bool, seed int64) (*sim.Result, int64, map[protocol.MsgKind]int64, uint64) {
		pp := protocol.DefaultParams(16)
		res, err := sim.Run(sim.Scenario{
			Params:       pp,
			Seed:         seed,
			Initiations:  []sim.Initiation{{At: simtime.Real(2 * pp.D), G: 0, Value: "v"}},
			LegacyFanout: legacy,
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		total, byKind := res.World.MessageCount()
		return res, total, byKind, res.World.Scheduler().Processed()
	}
	for seed := int64(0); seed < 3; seed++ {
		resB, totB, kindB, procB := run(false, seed)
		resL, totL, kindL, procL := run(true, seed)
		if totB != totL {
			t.Fatalf("seed %d: MessageCount %d (batched) != %d (legacy)", seed, totB, totL)
		}
		for k, v := range kindL {
			if kindB[k] != v {
				t.Fatalf("seed %d: kind %v count %d (batched) != %d (legacy)", seed, k, kindB[k], v)
			}
		}
		if procB != procL {
			t.Fatalf("seed %d: Processed %d (batched) != %d (legacy)", seed, procB, procL)
		}
		evB, evL := resB.Rec.Events(), resL.Rec.Events()
		if len(evB) != len(evL) {
			t.Fatalf("seed %d: %d trace events (batched) != %d (legacy)", seed, len(evB), len(evL))
		}
		for i := range evB {
			if evB[i] != evL[i] {
				t.Fatalf("seed %d: trace event %d differs:\nbatched: %+v\nlegacy:  %+v", seed, i, evB[i], evL[i])
			}
		}
	}
}
