package harness

import (
	"fmt"

	"ssbyz/internal/byzantine"
	"ssbyz/internal/check"
	"ssbyz/internal/metrics"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
	"ssbyz/internal/transient"
)

// E6Convergence corrupts every node's state at the moment of coherence and
// measures when the first fully-verified agreement completes — the
// self-stabilization claim, bound Δstb = 2Δreset.
func E6Convergence(opt Options) *Result {
	r := &Result{ID: "E6", Title: "Convergence from arbitrary state"}
	pp := protocol.DefaultParams(7)
	seeds := opt.seeds(20)
	t := metrics.NewTable("time to first verified agreement after coherence (in d)",
		"seeds", "mean", "p95", "max", "bound Δstb", "recovered")

	type cell struct {
		conv       simtime.Duration
		ok         bool
		violations int
	}
	cells := sweepSeeds(opt, seeds, func(seed int) cell {
		conv, ok, vio := convergenceTime(opt, pp, int64(seed))
		return cell{conv: conv, ok: ok, violations: vio}
	})
	var times []float64
	recovered := 0
	for _, c := range cells {
		r.Violations += c.violations
		if c.ok {
			recovered++
			times = append(times, dF(float64(c.conv), pp))
		}
	}
	s := metrics.Summarize(times)
	t.AddRow(seeds, s.Mean, s.P95, s.Max, dF(float64(pp.DeltaStb()), pp), fmt.Sprintf("%d/%d", recovered, seeds))
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"state corrupted at t=0 (every protocol variable, spurious in-flight messages); a correct General retries initiations throughout")
	return r
}

// convergenceTime runs one corruption scenario and returns the real time
// of the first initiation that every correct node decided with full
// validity, ok=false when none succeeded within the run.
func convergenceTime(opt Options, pp protocol.Params, seed int64) (simtime.Duration, bool, int) {
	spacing := pp.Delta0() + 2*pp.D
	runFor := pp.DeltaStb() + 6*pp.DeltaAgr()
	var inits []sim.Initiation
	for i := 0; simtime.Duration(i)*spacing < runFor; i++ {
		inits = append(inits, sim.Initiation{
			At:    simtime.Real(simtime.Duration(i) * spacing),
			G:     0,
			Value: protocol.Value(fmt.Sprintf("c%d", i)),
		})
	}
	sc := sim.Scenario{
		Params:      pp,
		Seed:        seed,
		Initiations: inits,
		Corrupt: func(w *simnet.World) {
			transient.Corrupt(w, transient.Config{Seed: seed + 1000, Severity: 1})
		},
		RunFor: runFor,
	}
	res, err := opt.run(sc)
	if err != nil {
		return 0, false, 1
	}
	vio := 0
	for i, init := range inits {
		if _, refused := res.InitErrs[i]; refused {
			continue // IG1–IG3 refusals are part of convergence
		}
		decs := decisionsFor(res, 0, init.Value)
		if len(decs) != len(res.Correct) {
			continue
		}
		// Verified: every correct node decided this value in the validity
		// window relative to the initiation.
		ok := true
		var last simtime.Real
		for _, d := range decs {
			if d.RT > init.At+4*simtime.Real(pp.D) || !d.Decided {
				ok = false
				break
			}
			if d.RT > last {
				last = d.RT
			}
		}
		if ok {
			return simtime.Duration(last), true, vio
		}
	}
	return 0, false, vio
}

// decisionsFor filters correct-node decisions for one value, one entry
// per node (the first).
func decisionsFor(res *sim.Result, g protocol.NodeID, v protocol.Value) []sim.Decision {
	var out []sim.Decision
	seen := make(map[protocol.NodeID]bool)
	for _, d := range res.Decisions(g) {
		if d.Decided && d.Value == v && !seen[d.Node] {
			seen[d.Node] = true
			out = append(out, d)
		}
	}
	return out
}

// E7FaultyGeneralAgreement hammers the all-or-none guarantee with an
// equivocating General amplified by colluders across many seeds.
func E7FaultyGeneralAgreement(opt Options) *Result {
	r := &Result{ID: "E7", Title: "Agreement under a faulty General"}
	pp := protocol.DefaultParams(7)
	seeds := opt.seeds(200)
	t := metrics.NewTable("equivocating General outcomes (n=7)",
		"seeds", "all decide", "all abort", "mixed returns", "value splits")

	type outcome int
	const (
		outErr outcome = iota
		outAllDecide
		outAllAbort
		outMixed
		outSplit
	)
	type cell struct {
		out        outcome
		violations int
	}
	cells := sweepSeeds(opt, seeds, func(seed int) cell {
		var c cell
		res, err := opt.run(sim.Scenario{
			Params: pp,
			Seed:   int64(seed),
			Faulty: map[protocol.NodeID]protocol.Node{
				0: &byzantine.Equivocator{Values: []protocol.Value{"a", "b"}, At: 2 * pp.D},
				6: &byzantine.Yeasayer{},
			},
			RunFor: 5 * pp.DeltaAgr(),
		})
		if err != nil {
			c.violations++
			return c
		}
		c.violations += countViolations(
			check.Agreement(res, 0),
			check.IAUniqueness(res, 0),
			check.Separation(res, 0),
		)
		decs := res.Decisions(0)
		values := make(map[protocol.Value]bool)
		nDec := 0
		for _, d := range decs {
			if d.Decided {
				nDec++
				values[d.Value] = true
			}
		}
		switch {
		case len(values) > 1:
			c.out = outSplit
		case nDec == len(res.Correct):
			c.out = outAllDecide
		case nDec == 0:
			c.out = outAllAbort
		default:
			c.out = outMixed
		}
		return c
	})
	allDecide, allAbort, mixed, splits := 0, 0, 0, 0
	for _, c := range cells {
		r.Violations += c.violations
		switch c.out {
		case outAllDecide:
			allDecide++
		case outAllAbort:
			allAbort++
		case outMixed:
			mixed++
		case outSplit:
			splits++
		}
	}
	t.AddRow(seeds, allDecide, allAbort, mixed, splits)
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"the Agreement property requires value splits = 0 and mixed returns = 0 whenever any node decides;",
		"all-abort outcomes are permitted for a faulty General")
	if splits > 0 || mixed > 0 {
		r.Violations += splits + mixed
	}
	return r
}

// E8InitiatorAccept measures the primitive's IA-1 bounds in isolation
// (through full-protocol runs, whose I-accept events the primitive owns)
// and the IA-4 uniqueness bound under equivocation.
func E8InitiatorAccept(opt Options) *Result {
	r := &Result{ID: "E8", Title: "Initiator-Accept bounds"}
	seeds := opt.seeds(30)
	t := metrics.NewTable("IA-1 bounds, correct General (in d)",
		"n", "max accept−t0", "bound 4d", "max mutual skew", "bound 2d", "max anchor skew", "bound d")

	type ia1Cell struct {
		win, skew, anchor float64
		violations        int
	}
	ns := opt.nSweep()
	ia1 := sweep(opt, ns, seeds, func(n, seed int) ia1Cell {
		var c ia1Cell
		pp := protocol.DefaultParams(n)
		sc, t0 := correctGeneralScenario(n, int64(seed), 0, 0)
		res, err := opt.run(sc)
		if err != nil {
			c.violations++
			return c
		}
		c.violations += countViolations(check.IACorrectness(res, 0, t0))
		accepts := res.IAccepts(0)
		var rts, anchors []simtime.Real
		for _, ev := range accepts {
			rts = append(rts, ev.RT)
			anchors = append(anchors, ev.RTauG)
			if w := dF(float64(ev.RT-t0), pp); w > c.win {
				c.win = w
			}
		}
		c.skew = dF(float64(pairwiseSkew(rts)), pp)
		c.anchor = dF(float64(pairwiseSkew(anchors)), pp)
		return c
	})
	for i, n := range ns {
		var maxWin, maxSkew, maxAnchor float64
		for _, c := range ia1[i] {
			r.Violations += c.violations
			maxWin = max(maxWin, c.win)
			maxSkew = max(maxSkew, c.skew)
			maxAnchor = max(maxAnchor, c.anchor)
		}
		t.AddRow(n, maxWin, "4d", maxSkew, "2d", maxAnchor, "1d")
	}
	r.Tables = append(r.Tables, t)

	// IA-4 uniqueness under equivocation.
	pp := protocol.DefaultParams(7)
	uniq := metrics.NewTable("IA-4 uniqueness under an equivocating General (n=7)",
		"seeds", "runs with any I-accept", "IA-4 violations")
	type ia4Cell struct {
		accepted   bool
		violations int
	}
	ia4 := sweepSeeds(opt, seeds, func(seed int) ia4Cell {
		var c ia4Cell
		res, err := opt.run(sim.Scenario{
			Params: pp,
			Seed:   int64(seed),
			Faulty: map[protocol.NodeID]protocol.Node{
				0: &byzantine.Equivocator{Values: []protocol.Value{"a", "b"}, At: 2 * pp.D},
				6: &byzantine.Yeasayer{},
			},
			RunFor: 5 * pp.DeltaAgr(),
		})
		if err != nil {
			c.violations++
			return c
		}
		c.accepted = len(res.IAccepts(0)) > 0
		c.violations += countViolations(check.IAUniqueness(res, 0), check.IARelay(res, 0))
		return c
	})
	withAccept, vio := 0, 0
	for _, c := range ia4 {
		if c.accepted {
			withAccept++
		}
		vio += c.violations
	}
	uniq.AddRow(seeds, withAccept, vio)
	r.Violations += vio
	r.Tables = append(r.Tables, uniq)
	return r
}

// E9MsgdBroadcast measures TPS-1 (3d accept skew for correct broadcasts)
// and TPS-2 (no acceptance of forged broadcasts).
func E9MsgdBroadcast(opt Options) *Result {
	r := &Result{ID: "E9", Title: "msgd-broadcast bounds"}
	seeds := opt.seeds(30)
	pp := protocol.DefaultParams(7)

	// TPS-1: fault-free run; every decider broadcasts (q, v, 1); group
	// accepts by broadcaster and measure the acceptance spread.
	t := metrics.NewTable("TPS-1 accept skew per correct broadcast (n=7, in d)",
		"seeds", "broadcasts", "max skew", "bound 3d")
	type tps1Cell struct {
		broadcasts int
		maxSkew    float64
		violations int
	}
	tps1 := sweepSeeds(opt, seeds, func(seed int) tps1Cell {
		var c tps1Cell
		sc, _ := correctGeneralScenario(7, int64(seed), 0, 0)
		res, err := opt.run(sc)
		if err != nil {
			c.violations++
			return c
		}
		byTriple := make(map[string][]simtime.Real)
		res.Rec.ForEachKind(func(ev protocol.TraceEvent) {
			if !res.IsCorrect(ev.Node) || ev.G != 0 {
				return
			}
			key := fmt.Sprintf("%d|%s|%d", ev.P, ev.M, ev.K)
			byTriple[key] = append(byTriple[key], ev.RT)
		}, protocol.EvAccept)
		for _, rts := range byTriple {
			if len(rts) < pp.Quorum() {
				continue // partially-collected triple (post-reset stragglers)
			}
			c.broadcasts++
			if s := dF(float64(pairwiseSkew(rts)), pp); s > c.maxSkew {
				c.maxSkew = s
			}
		}
		// Violations are counted per seed over its own max, never against
		// a cross-seed running max: cells must be order-independent for
		// the Workers determinism guarantee (the sequential harness's
		// running-max count also varied with map iteration order).
		if c.maxSkew > 3 {
			c.violations++
		}
		return c
	})
	broadcasts := 0
	var maxSkew float64
	for _, c := range tps1 {
		r.Violations += c.violations
		broadcasts += c.broadcasts
		maxSkew = max(maxSkew, c.maxSkew)
	}
	t.AddRow(seeds, broadcasts, maxSkew, "3d")
	r.Tables = append(r.Tables, t)

	// TPS-2: echo forgers fabricate second-phase messages for a broadcast
	// that never happened; no correct node may accept it.
	forged := metrics.NewTable("TPS-2 unforgeability under echo forgers (n=7)",
		"seeds", "forged acceptances")
	type tps2Cell struct {
		forged     int
		violations int
	}
	tps2 := sweepSeeds(opt, seeds, func(seed int) tps2Cell {
		var c tps2Cell
		res, err := opt.run(sim.Scenario{
			Params: pp,
			Seed:   int64(seed),
			Faulty: map[protocol.NodeID]protocol.Node{
				5: &byzantine.EchoForger{G: 0, ForgedP: 1, ForgedV: "forged", K: 1, At: 2 * pp.D},
				6: &byzantine.EchoForger{G: 0, ForgedP: 1, ForgedV: "forged", K: 1, At: 2 * pp.D},
			},
			Initiations: []sim.Initiation{{At: simtime.Real(2 * pp.D), G: 0, Value: "v"}},
			RunFor:      4 * pp.DeltaAgr(),
		})
		if err != nil {
			c.violations++
			return c
		}
		res.Rec.ForEachKind(func(ev protocol.TraceEvent) {
			if res.IsCorrect(ev.Node) && ev.M == "forged" {
				c.forged++
			}
		}, protocol.EvAccept)
		c.violations += countViolations(check.Agreement(res, 0))
		return c
	})
	forgedAccepts := 0
	for _, c := range tps2 {
		r.Violations += c.violations
		forgedAccepts += c.forged
	}
	forged.AddRow(seeds, forgedAccepts)
	r.Violations += forgedAccepts
	r.Tables = append(r.Tables, forged)
	return r
}

// E10MessageComplexity counts messages per agreement across n. The
// paper's bound is O(n²) per msgd-broadcast instance; a fault-free
// agreement runs Θ(n) instances, so the per-agreement total is Θ(n³)
// (measured at scale by S1, DESIGN.md §5).
func E10MessageComplexity(opt Options) *Result {
	r := &Result{ID: "E10", Title: "Message complexity"}
	seeds := opt.seeds(10)
	t := metrics.NewTable("messages per fault-free agreement",
		"n", "total msgs (mean)", "msgs / n²")

	type cell struct {
		total      float64
		ok         bool
		violations int
	}
	ns := opt.nSweep()
	cells := sweep(opt, ns, seeds, func(n, seed int) cell {
		var c cell
		sc, _ := correctGeneralScenario(n, int64(seed), 0, 0)
		res, err := opt.run(sc)
		if err != nil {
			c.violations++
			return c
		}
		total, _ := res.World.MessageCount()
		c.total = float64(total)
		c.ok = true
		return c
	})
	for i, n := range ns {
		var totals []float64
		for _, c := range cells[i] {
			r.Violations += c.violations
			if c.ok {
				totals = append(totals, c.total)
			}
		}
		mean := metrics.Summarize(totals).Mean
		t.AddRow(n, mean, mean/float64(n*n))
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"each msgd-broadcast instance is Θ(n²) (the all-to-all pattern of each stage) — the paper's per-primitive bound",
		"per agreement, msgs/n² grows ≈ 3n: Θ(n) deciders each run one broadcast instance, so the fault-free total is Θ(n³) (see S1 / DESIGN.md §5)")
	return r
}
