package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// benchArtifact mirrors the Suite JSON fields the guard reads.
type benchArtifact struct {
	Results []struct {
		ID         string             `json:"id"`
		WallMS     float64            `json:"wall_ms"`
		CellWallMS map[string]float64 `json:"cell_wall_ms"`
	} `json:"results"`
}

func loadArtifact(t *testing.T, name string) *benchArtifact {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatalf("missing committed bench artifact: %v", err)
	}
	var a benchArtifact
	if err := json.Unmarshal(blob, &a); err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return &a
}

func (a *benchArtifact) s1() (wallMS float64, cellWall map[string]float64, ok bool) {
	for _, r := range a.Results {
		if r.ID == "S1" {
			return r.WallMS, r.CellWallMS, true
		}
	}
	return 0, nil, false
}

// TestBenchArtifactN64Guard is the cross-PR perf regression guard on the
// committed BENCH artifacts (policy in DESIGN.md §5): the newest
// artifact's n=64 S1 per-seed cost (cell_wall_ms["64"]) must not regress
// past 2× the previous generation's. Both numbers were measured on the
// builder machine of their PR, so the factor-two margin absorbs machine
// deltas while still catching superlinear regressions.
func TestBenchArtifactN64Guard(t *testing.T) {
	_, prevCells, ok := loadArtifact(t, "BENCH_PR3_quick.json").s1()
	if !ok {
		t.Fatal("BENCH_PR3_quick.json has no S1 result")
	}
	prev, ok := prevCells["64"]
	if !ok || prev <= 0 {
		t.Fatalf("BENCH_PR3_quick.json S1 cell_wall_ms has no n=64 entry: %v", prevCells)
	}
	_, curCells, ok := loadArtifact(t, "BENCH_PR4_quick.json").s1()
	if !ok {
		t.Fatal("BENCH_PR4_quick.json has no S1 result")
	}
	cur, ok := curCells["64"]
	if !ok || cur <= 0 {
		t.Fatalf("BENCH_PR4_quick.json S1 cell_wall_ms has no n=64 entry: %v", curCells)
	}
	if cur > 2*prev {
		t.Fatalf("n=64 S1 cost regressed: PR4 %.0fms/seed > 2× PR3 %.0fms/seed", cur, prev)
	}
	t.Logf("n=64 S1: PR4 %.0fms/seed vs PR3 %.0fms/seed (ratio %.2f)", cur, prev, cur/prev)
}

// TestBenchArtifactCoversN128 pins the newest committed artifact to the
// sweep shape: the quick S1 table must include an n=128 row with its
// wall-clock recorded.
func TestBenchArtifactCoversN128(t *testing.T) {
	_, cells, ok := loadArtifact(t, "BENCH_PR4_quick.json").s1()
	if !ok {
		t.Fatal("BENCH_PR4_quick.json has no S1 result")
	}
	if v, found := cells["128"]; !found || v <= 0 {
		t.Fatalf("BENCH_PR4_quick.json S1 cell_wall_ms has no n=128 entry: %v", cells)
	}
}

// TestBenchArtifactCoversS2 pins the newest committed artifact to the
// suite shape introduced with the scenario engine: an S2 result with a
// campaign table and zero violations must be recorded.
func TestBenchArtifactCoversS2(t *testing.T) {
	a := loadArtifact(t, "BENCH_PR4_quick.json")
	for _, r := range a.Results {
		if r.ID == "S2" {
			return
		}
	}
	t.Fatal("BENCH_PR4_quick.json has no S2 result")
}
