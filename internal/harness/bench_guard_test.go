package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// benchArtifact mirrors the Suite JSON fields the guard reads.
type benchArtifact struct {
	Results []struct {
		ID         string             `json:"id"`
		WallMS     float64            `json:"wall_ms"`
		CellWallMS map[string]float64 `json:"cell_wall_ms"`
		Floors     map[string]float64 `json:"floors"`
	} `json:"results"`
}

func loadArtifact(t *testing.T, name string) *benchArtifact {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatalf("missing committed bench artifact: %v", err)
	}
	var a benchArtifact
	if err := json.Unmarshal(blob, &a); err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return &a
}

func (a *benchArtifact) s1() (wallMS float64, cellWall map[string]float64, ok bool) {
	for _, r := range a.Results {
		if r.ID == "S1" {
			return r.WallMS, r.CellWallMS, true
		}
	}
	return 0, nil, false
}

// s1CellN64 extracts one artifact's n=64 S1 per-seed cost.
func s1CellN64(t *testing.T, name string) float64 {
	t.Helper()
	_, cells, ok := loadArtifact(t, name).s1()
	if !ok {
		t.Fatalf("%s has no S1 result", name)
	}
	v, ok := cells["64"]
	if !ok || v <= 0 {
		t.Fatalf("%s S1 cell_wall_ms has no n=64 entry: %v", name, cells)
	}
	return v
}

// TestBenchArtifactN64Guard is the cross-PR perf regression guard on the
// committed BENCH artifacts (policy in DESIGN.md §5): each generation's
// n=64 S1 per-seed cost (cell_wall_ms["64"]) must not regress past 2×
// the previous generation's. The numbers were measured on the builder
// machine of their PR, so the factor-two margin absorbs machine deltas
// while still catching superlinear regressions.
func TestBenchArtifactN64Guard(t *testing.T) {
	chain := []string{"BENCH_PR3_quick.json", "BENCH_PR4_quick.json", "BENCH_PR5_quick.json", "BENCH_PR6_quick.json", "BENCH_PR7_quick.json", "BENCH_PR8_quick.json", "BENCH_PR9_quick.json", "BENCH_PR10_quick.json"}
	for i := 1; i < len(chain); i++ {
		prev, cur := s1CellN64(t, chain[i-1]), s1CellN64(t, chain[i])
		if cur > 2*prev {
			t.Fatalf("n=64 S1 cost regressed: %s %.0fms/seed > 2× %s %.0fms/seed",
				chain[i], cur, chain[i-1], prev)
		}
		t.Logf("n=64 S1: %s %.0fms/seed vs %s %.0fms/seed (ratio %.2f)",
			chain[i], cur, chain[i-1], prev, cur/prev)
	}
}

// TestBenchArtifactCoversN128 pins the newest committed artifact to the
// sweep shape: the quick S1 table must include an n=128 row with its
// wall-clock recorded.
func TestBenchArtifactCoversN128(t *testing.T) {
	_, cells, ok := loadArtifact(t, "BENCH_PR5_quick.json").s1()
	if !ok {
		t.Fatal("BENCH_PR5_quick.json has no S1 result")
	}
	if v, found := cells["128"]; !found || v <= 0 {
		t.Fatalf("BENCH_PR5_quick.json S1 cell_wall_ms has no n=128 entry: %v", cells)
	}
}

// TestBenchArtifactCoversS2 pins the newest committed artifact to the
// suite shape introduced with the scenario engine: an S2 result with a
// campaign table and zero violations must be recorded.
func TestBenchArtifactCoversS2(t *testing.T) {
	a := loadArtifact(t, "BENCH_PR5_quick.json")
	for _, r := range a.Results {
		if r.ID == "S2" {
			return
		}
	}
	t.Fatal("BENCH_PR5_quick.json has no S2 result")
}

// TestBenchArtifactCoversL1 pins the newest committed artifact to the
// live-runtime generation's shape: an L1 result with live per-cell wall
// costs for the UDP sweep, the TCP baseline, and the chaos replay
// (`ssbyz-bench -quick -live -json` produced it — L1 is appended
// explicitly because its numbers are wall-clock, DESIGN.md §7).
func TestBenchArtifactCoversL1(t *testing.T) {
	a := loadArtifact(t, "BENCH_PR5_quick.json")
	for _, r := range a.Results {
		if r.ID != "L1" {
			continue
		}
		for _, key := range []string{"udp/4", "udp/7", "udp/16", "tcp/4", "chaos/7"} {
			if v, ok := r.CellWallMS[key]; !ok || v <= 0 {
				t.Errorf("BENCH_PR5_quick.json L1 cell_wall_ms[%q] = %v, want > 0", key, v)
			}
		}
		return
	}
	t.Fatal("BENCH_PR5_quick.json has no L1 result")
}

// TestBenchArtifactCoversS3 pins the newest committed artifact to the
// service generation's shape: an S3 result with the per-concurrency
// sweep costed for every point of ServiceConcurrency().
func TestBenchArtifactCoversS3(t *testing.T) {
	a := loadArtifact(t, "BENCH_PR6_quick.json")
	for _, r := range a.Results {
		if r.ID != "S3" {
			continue
		}
		for _, c := range ServiceConcurrency() {
			key := fmt.Sprintf("c%d", c)
			if v, ok := r.CellWallMS[key]; !ok || v <= 0 {
				t.Errorf("BENCH_PR6_quick.json S3 cell_wall_ms[%q] = %v, want > 0", key, v)
			}
		}
		return
	}
	t.Fatal("BENCH_PR6_quick.json has no S3 result")
}

// TestBenchArtifactCoversV1V2 pins the virtual-time generation's shape:
// the committed artifact must carry the deterministic mirrors V1 and V2
// (DESIGN.md §9). Unlike S1/L1/L2 they record no cell_wall_ms — their
// tables are exact, so only the suite-level wall cost is machine-varying
// — hence the guard checks presence by ID and a recorded wall_ms.
func TestBenchArtifactCoversV1V2(t *testing.T) {
	a := loadArtifact(t, "BENCH_PR7_quick.json")
	for _, id := range []string{"V1", "V2"} {
		found := false
		for _, r := range a.Results {
			if r.ID == id {
				found = true
				if r.WallMS <= 0 {
					t.Errorf("BENCH_PR7_quick.json %s wall_ms = %v, want > 0", id, r.WallMS)
				}
				break
			}
		}
		if !found {
			t.Errorf("BENCH_PR7_quick.json has no %s result", id)
		}
	}
}

// TestBenchArtifactCoversV3L3 pins the adversarial-campaign generation's
// shape (DESIGN.md §10): the committed artifact must carry V3 (the
// deterministic attack/defense + in-situ recovery + generated-fuzz
// campaign, costed at the suite level like V1/V2) and L3 (its
// real-socket smoke, with every attack-subset cell and the recovery
// cell individually costed — `ssbyz-bench -quick -live -json` appends
// it after L2).
func TestBenchArtifactCoversV3L3(t *testing.T) {
	a := loadArtifact(t, "BENCH_PR8_quick.json")
	foundV3, foundL3 := false, false
	for _, r := range a.Results {
		switch r.ID {
		case "V3":
			foundV3 = true
			if r.WallMS <= 0 {
				t.Errorf("BENCH_PR8_quick.json V3 wall_ms = %v, want > 0", r.WallMS)
			}
		case "L3":
			foundL3 = true
			for _, key := range []string{"corrupt/4", "forge/4", "duplicate/4", "replay-xepoch/4", "recovery/4"} {
				if v, ok := r.CellWallMS[key]; !ok || v <= 0 {
					t.Errorf("BENCH_PR8_quick.json L3 cell_wall_ms[%q] = %v, want > 0", key, v)
				}
			}
		}
	}
	if !foundV3 {
		t.Error("BENCH_PR8_quick.json has no V3 result")
	}
	if !foundL3 {
		t.Error("BENCH_PR8_quick.json has no L3 result")
	}
}

// TestBenchArtifactCoversV4L4 pins the cluster-operations generation's
// shape (DESIGN.md §12): the committed artifact must carry V4 (the
// deterministic operations campaign — scale-up, rolling replacement
// within Δstb, old-incarnation replay rejection — costed at the suite
// level like V1/V2/V3, since its tables are exact) and L4 (the same
// campaign over real UDP sockets with its per-seed campaign cell
// costed — `ssbyz-bench -quick -live -json` appends it after L3).
func TestBenchArtifactCoversV4L4(t *testing.T) {
	a := loadArtifact(t, "BENCH_PR10_quick.json")
	foundV4, foundL4 := false, false
	for _, r := range a.Results {
		switch r.ID {
		case "V4":
			foundV4 = true
			if r.WallMS <= 0 {
				t.Errorf("BENCH_PR10_quick.json V4 wall_ms = %v, want > 0", r.WallMS)
			}
		case "L4":
			foundL4 = true
			if v, ok := r.CellWallMS["campaign/0"]; !ok || v <= 0 {
				t.Errorf("BENCH_PR10_quick.json L4 cell_wall_ms[%q] = %v, want > 0", "campaign/0", v)
			}
		}
	}
	if !foundV4 {
		t.Error("BENCH_PR10_quick.json has no V4 result")
	}
	if !foundL4 {
		t.Error("BENCH_PR10_quick.json has no L4 result")
	}
}

// TestBenchArtifactCoversL2 pins the live service spot-check: an L2
// result with both session-concurrency cells costed (`ssbyz-bench
// -quick -live -json` appends L2 after L1; wall-clock, DESIGN.md §8).
func TestBenchArtifactCoversL2(t *testing.T) {
	a := loadArtifact(t, "BENCH_PR6_quick.json")
	for _, r := range a.Results {
		if r.ID != "L2" {
			continue
		}
		for _, key := range []string{"svc/udp/4/c1", "svc/udp/4/c8"} {
			if v, ok := r.CellWallMS[key]; !ok || v <= 0 {
				t.Errorf("BENCH_PR6_quick.json L2 cell_wall_ms[%q] = %v, want > 0", key, v)
			}
		}
		return
	}
	t.Fatal("BENCH_PR6_quick.json has no L2 result")
}

// TestBenchArtifactCoversPR9 pins the wire-rate generation's shape and
// its headline number: the committed artifact's L1 result must carry the
// transport pump cell (cell_wall_ms["pump/16"]) and a recorded floor of
// at least 10^6 aggregate msgs/sec on the n=16 loopback pump
// (floors["udp_pump_msgs_per_sec_n16"], DESIGN.md §11). The floor was
// measured on the builder machine of this PR; the guard keeps any future
// hot-path regression from silently re-committing a slower artifact.
func TestBenchArtifactCoversPR9(t *testing.T) {
	a := loadArtifact(t, "BENCH_PR9_quick.json")
	for _, r := range a.Results {
		if r.ID != "L1" {
			continue
		}
		if v, ok := r.CellWallMS["pump/16"]; !ok || v <= 0 {
			t.Errorf("BENCH_PR9_quick.json L1 cell_wall_ms[%q] = %v, want > 0", "pump/16", v)
		}
		rate, ok := r.Floors["udp_pump_msgs_per_sec_n16"]
		if !ok {
			t.Fatalf("BENCH_PR9_quick.json L1 records no udp_pump_msgs_per_sec_n16 floor: %v", r.Floors)
		}
		if rate < 1e6 {
			t.Errorf("committed pump floor %.0f msgs/sec is below the 10^6 wire-rate target", rate)
		}
		return
	}
	t.Fatal("BENCH_PR9_quick.json has no L1 result")
}
