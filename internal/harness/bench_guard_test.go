package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// benchArtifact mirrors the Suite JSON fields the guard reads.
type benchArtifact struct {
	Results []struct {
		ID         string             `json:"id"`
		WallMS     float64            `json:"wall_ms"`
		CellWallMS map[string]float64 `json:"cell_wall_ms"`
	} `json:"results"`
}

func loadArtifact(t *testing.T, name string) *benchArtifact {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatalf("missing committed bench artifact: %v", err)
	}
	var a benchArtifact
	if err := json.Unmarshal(blob, &a); err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return &a
}

func (a *benchArtifact) s1() (wallMS float64, cellWall map[string]float64, ok bool) {
	for _, r := range a.Results {
		if r.ID == "S1" {
			return r.WallMS, r.CellWallMS, true
		}
	}
	return 0, nil, false
}

// TestBenchArtifactN64Guard is the cross-PR perf regression guard on the
// committed BENCH artifacts: PR3's n=64 S1 cost (cell_wall_ms["64"] mean
// per seed × 3 quick seeds) must not regress past 2× the whole PR2-era
// quick S1 sweep (whose n ≤ 64 run — wall_ms — was dominated by its three
// n=64 cells). Both numbers were measured on the builder machine of their
// PR, so the 2× margin absorbs machine deltas; the expected ratio after
// this PR's substrate rework is ≈0.2.
func TestBenchArtifactN64Guard(t *testing.T) {
	pr2Wall, _, ok := loadArtifact(t, "BENCH_PR2_quick.json").s1()
	if !ok || pr2Wall <= 0 {
		t.Fatal("BENCH_PR2_quick.json has no usable S1 wall_ms")
	}
	_, pr3Cells, ok := loadArtifact(t, "BENCH_PR3_quick.json").s1()
	if !ok {
		t.Fatal("BENCH_PR3_quick.json has no S1 result")
	}
	perSeed, ok := pr3Cells["64"]
	if !ok || perSeed <= 0 {
		t.Fatalf("BENCH_PR3_quick.json S1 cell_wall_ms has no n=64 entry: %v", pr3Cells)
	}
	const quickSeeds = 3
	pr3N64 := perSeed * quickSeeds
	if pr3N64 > 2*pr2Wall {
		t.Fatalf("n=64 S1 cost regressed: PR3 %.0fms (3 seeds) > 2× PR2 quick-sweep %.0fms", pr3N64, pr2Wall)
	}
	t.Logf("n=64 S1: PR3 %.0fms (3 seeds) vs PR2 quick-sweep %.0fms (ratio %.2f)", pr3N64, pr2Wall, pr3N64/pr2Wall)
}

// TestBenchArtifactCoversN128 pins the committed PR3 artifact to the new
// sweep shape: the quick S1 table must include an n=128 row with its
// wall-clock recorded.
func TestBenchArtifactCoversN128(t *testing.T) {
	_, cells, ok := loadArtifact(t, "BENCH_PR3_quick.json").s1()
	if !ok {
		t.Fatal("BENCH_PR3_quick.json has no S1 result")
	}
	if v, found := cells["128"]; !found || v <= 0 {
		t.Fatalf("BENCH_PR3_quick.json S1 cell_wall_ms has no n=128 entry: %v", cells)
	}
}
