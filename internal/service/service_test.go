package service

import (
	"fmt"
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
)

// TestPoissonArrivalsDeterministic pins the generator: same seed, same
// schedule; sorted; mean gap in the right ballpark.
func TestPoissonArrivalsDeterministic(t *testing.T) {
	a := PoissonArrivals(7, 1000, 500, 200)
	b := PoissonArrivals(7, 1000, 500, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across identical seeds: %d vs %d", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
	mean := float64(a[len(a)-1]-1000) / float64(len(a))
	if mean < 250 || mean > 1000 {
		t.Fatalf("empirical mean gap %.0f implausible for mean 500", mean)
	}
}

// TestSingleSessionLogCommits runs a small open-loop workload through the
// plain (sessions=1) protocol: every entry commits, the battery is clean,
// and the committed order is the arrival order (one slot is strictly
// sequential).
func TestSingleSessionLogCommits(t *testing.T) {
	pp := protocol.DefaultParams(7)
	arrivals := PoissonArrivals(3, simtime.Real(pp.D), 2*pp.Delta0(), 4)
	res, err := RunSim(SimConfig{
		Scenario: sim.Scenario{Params: pp, Seed: 11},
		Sessions: 1,
		Loads:    []Workload{{G: 0, Arrivals: arrivals}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Logs) != 1 {
		t.Fatalf("logs = %d, want 1", len(res.Logs))
	}
	lr := res.Logs[0]
	if len(lr.Committed) != len(arrivals) || lr.Dropped != 0 || lr.Failed != 0 {
		t.Fatalf("committed=%d dropped=%d failed=%d, want %d/0/0",
			len(lr.Committed), lr.Dropped, lr.Failed, len(arrivals))
	}
	for i, e := range lr.Committed {
		if e.Index != i {
			t.Fatalf("single-slot log order %v not arrival order", entryIndices(lr))
		}
	}
	if v := Battery(res.Res, res.Logs); len(v) != 0 {
		t.Fatalf("battery violations: %v", v)
	}
}

// TestConcurrentSessionsDrainFaster pins the tentpole claim: with C slots
// a backlogged workload drains ~C× faster than through one slot, because
// IG1's Δ0 rate limit applies per concurrent invocation (footnote 9).
// Every entry still commits and the full battery stays clean per session.
func TestConcurrentSessionsDrainFaster(t *testing.T) {
	pp := protocol.DefaultParams(7)
	const entries = 12
	arrivals := PoissonArrivals(5, simtime.Real(pp.D), simtime.Duration(pp.D), entries)

	run := func(sessions int) Stats {
		res, err := RunSim(SimConfig{
			Scenario:   sim.Scenario{Params: pp, Seed: 11},
			Sessions:   sessions,
			QueueLimit: entries, // no shedding: this test is about drain rate
			Loads:      []Workload{{G: 0, Arrivals: arrivals}},
		})
		if err != nil {
			t.Fatal(err)
		}
		lr := res.Logs[0]
		if len(lr.Committed) != entries || lr.Failed != 0 {
			t.Fatalf("sessions=%d: committed=%d failed=%d, want %d/0",
				sessions, len(lr.Committed), lr.Failed, entries)
		}
		if v := Battery(res.Res, res.Logs); len(v) != 0 {
			t.Fatalf("sessions=%d battery violations (%d): %v", sessions, len(v), v[0])
		}
		return lr.Stats()
	}

	seq := run(1)
	par := run(4)
	if par.MakespanTicks*2 >= seq.MakespanTicks {
		t.Fatalf("4 sessions makespan %d not ≥2× faster than 1 session's %d",
			par.MakespanTicks, seq.MakespanTicks)
	}
}

// TestQueueLimitSheds pins the open-loop contract: arrivals beyond the
// bounded queue are dropped, never silently delayed.
func TestQueueLimitSheds(t *testing.T) {
	pp := protocol.DefaultParams(7)
	// 8 arrivals in one burst through 1 slot with queue limit 2: the
	// burst finds at most 1 in flight + 2 queued; the rest must shed.
	arrivals := make([]simtime.Real, 8)
	for i := range arrivals {
		arrivals[i] = simtime.Real(pp.D) + simtime.Real(i)
	}
	res, err := RunSim(SimConfig{
		Scenario:   sim.Scenario{Params: pp, Seed: 2},
		Sessions:   1,
		QueueLimit: 2,
		Loads:      []Workload{{G: 0, Arrivals: arrivals}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lr := res.Logs[0]
	if lr.Dropped == 0 {
		t.Fatalf("burst of 8 through queue limit 2 shed nothing")
	}
	if len(lr.Committed)+lr.Dropped+lr.Failed != len(arrivals) {
		t.Fatalf("entries unaccounted: committed=%d dropped=%d failed=%d of %d",
			len(lr.Committed), lr.Dropped, lr.Failed, len(arrivals))
	}
	if v := Battery(res.Res, res.Logs); len(v) != 0 {
		t.Fatalf("battery violations: %v", v)
	}
}

// TestServiceTraceDeterministic runs the same concurrent-session workload
// twice and requires byte-identical traces — the engine's scheduling
// must be a pure function of the scenario.
func TestServiceTraceDeterministic(t *testing.T) {
	pp := protocol.DefaultParams(7)
	arrivals := PoissonArrivals(9, simtime.Real(pp.D), simtime.Duration(pp.D), 10)
	cfg := SimConfig{
		Scenario: sim.Scenario{Params: pp, Seed: 4},
		Sessions: 4,
		Loads:    []Workload{{G: 0, Arrivals: arrivals}, {G: 1, Arrivals: arrivals}},
	}
	a, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Res.Rec.Events(), b.Res.Rec.Events()
	if len(ea) != len(eb) {
		t.Fatalf("trace lengths differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("trace diverges at event %d: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

// TestWorkloadValidation pins the service's input contract.
func TestWorkloadValidation(t *testing.T) {
	pp := protocol.DefaultParams(7)
	bad := []SimConfig{
		{Scenario: sim.Scenario{Params: pp}, Loads: []Workload{{G: 99}}},
		{Scenario: sim.Scenario{Params: pp}, Loads: []Workload{{G: 0}, {G: 0}}},
		{Scenario: sim.Scenario{Params: pp, Faulty: map[protocol.NodeID]protocol.Node{2: nil}},
			Loads: []Workload{{G: 2}}},
		{Scenario: sim.Scenario{Params: pp},
			Loads: []Workload{{G: 0, Arrivals: []simtime.Real{100, 50}}}},
	}
	for i, cfg := range bad {
		if _, err := RunSim(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func entryIndices(lr *LogResult) []string {
	out := make([]string, len(lr.Committed))
	for i, e := range lr.Committed {
		out[i] = fmt.Sprint(e.Index)
	}
	return out
}

// TestDifferentialSingleSessionUnchanged is the compatibility proof for
// the service layer: a sessions=1 service run whose single arrival lands
// exactly on a pump poll instant produces a trace byte-identical to the
// pre-service scripted simulation initiating at the same virtual time.
// The pump only reads the recorder and calls the same InitiateAgreement
// the scripted path calls, so the protocol's behavior — every message,
// timer, and decision — is untouched by the service machinery.
func TestDifferentialSingleSessionUnchanged(t *testing.T) {
	pp := protocol.DefaultParams(7)
	at := simtime.Real(4 * (pp.D / 4)) // on the poll grid (poll = D/4)

	svc, err := RunSim(SimConfig{
		Scenario: sim.Scenario{Params: pp, Seed: 7, RunFor: 3 * pp.DeltaAgr()},
		Sessions: 1,
		Loads: []Workload{{G: 0, Arrivals: []simtime.Real{at},
			Payload: func(i int) protocol.Value { return "launch" }}},
	})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := sim.Run(sim.Scenario{
		Params: pp, Seed: 7, RunFor: 3 * pp.DeltaAgr(),
		Initiations: []sim.Initiation{{At: at, G: 0, Value: "0#launch"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := svc.Res.Rec.Events(), legacy.Rec.Events()
	if len(a) != len(b) {
		t.Fatalf("service trace has %d events, scripted trace %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at event %d:\n service: %+v\nscripted: %+v", i, a[i], b[i])
		}
	}
}
