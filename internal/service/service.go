// Package service turns ss-Byz-Agree into an agreement service: a
// replicated log per General, fed by an open-loop synthetic client and
// multiplexed over the footnote-9 concurrent-invocation slots. The paper
// positions the protocol as a primitive for higher layers that invoke it
// recurrently (pulse synchronization, replicated state machines); this
// package is that higher layer, built so the same pump drives both the
// discrete-event simulator and a live socket cluster.
//
// The model is deliberately open-loop: client proposals arrive on a
// Poisson process regardless of how the service is doing, queue in a
// bounded buffer, and are dropped when the buffer is full — so measured
// throughput reflects the protocol's sustained rate (IG1 admits one
// initiation per slot per Δ0 = 13d), not a closed feedback loop that
// politely waits. Each admitted entry becomes one agreement: the pump
// claims a free session slot, initiates the entry's uniquely-tagged wire
// value, and watches the shared trace recorder for the General's decide
// return. The committed prefix of a log is ordered by decision anchor
// rt(τG) — the one per-agreement instant the protocol itself synchronizes
// across correct nodes to within d (IA-1C) — so every correct observer
// reconstructs the same order.
package service

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"ssbyz/internal/core"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// EntryState is the lifecycle of one proposed log entry.
type EntryState int

const (
	// EntryPending: arrived, queued, not yet handed to the protocol.
	EntryPending EntryState = iota
	// EntryInitiated: occupies a session slot, agreement in flight.
	EntryInitiated
	// EntryCommitted: the General observed its own decide return.
	EntryCommitted
	// EntryFailed: the agreement aborted or outlived Δagr + 8d — the
	// protocol's worst-case extent (IA-3C) — without a decide.
	EntryFailed
	// EntryDropped: arrived while the bounded queue was full (open-loop
	// overload shedding).
	EntryDropped
)

// String names the state for tables and errors.
func (s EntryState) String() string {
	switch s {
	case EntryPending:
		return "pending"
	case EntryInitiated:
		return "initiated"
	case EntryCommitted:
		return "committed"
	case EntryFailed:
		return "failed"
	case EntryDropped:
		return "dropped"
	}
	return "unknown"
}

// Entry is one client proposal and its fate. Times are in ticks of the
// driving runtime (virtual for the simulator, wall-clock ticks live).
type Entry struct {
	Index   int            // arrival order within the log
	Payload protocol.Value // client value
	Wire    protocol.Value // unique on-the-wire value ("<idx>#<payload>", session-namespaced by the node)
	Slot    int            // session slot the agreement ran in
	State   EntryState

	ArrivedAt   simtime.Real
	InitiatedAt simtime.Real
	CommittedAt simtime.Real // decide return rt(τq) at the General
	Anchor      simtime.Real // decide anchor rt(τG) — the log-order key
}

// Workload is one General's open-loop client: a pre-drawn arrival
// schedule and an optional payload generator (default "p<i>").
type Workload struct {
	G        protocol.NodeID
	Arrivals []simtime.Real
	Payload  func(i int) protocol.Value
}

// PoissonArrivals draws count arrival instants after start with
// exponentially distributed gaps of the given mean — a Poisson process,
// the standard open-loop client model. Deterministic in seed.
func PoissonArrivals(seed int64, start simtime.Real, meanGap simtime.Duration, count int) []simtime.Real {
	rng := rand.New(rand.NewSource(seed))
	out := make([]simtime.Real, count)
	t := float64(start)
	for i := range out {
		t += rng.ExpFloat64() * float64(meanGap)
		out[i] = simtime.Real(t)
	}
	return out
}

// Backend is the runtime surface the pump drives: a way to start one
// agreement in one concurrent-invocation slot at General g. Initiate
// returns the exact wire value of the initiation (the node adds the
// footnote-9 "s<slot>|" namespace when it multiplexes sessions) — that
// value is how the pump recognizes the matching decide return in the
// trace. Sending-validity refusals (IG1–IG3) come back as core's
// sentinel errors.
type Backend interface {
	Initiate(g protocol.NodeID, slot int, v protocol.Value) (protocol.Value, error)
}

// PumpConfig assembles a Pump.
type PumpConfig struct {
	Params     protocol.Params
	Backend    Backend
	Recorder   *protocol.Recorder
	Sessions   int // concurrent slots per General (≥ 1)
	QueueLimit int // bounded pending buffer per log (default 4·Sessions)
	Loads      []Workload
}

// logState is one General's replicated log in flight.
type logState struct {
	load      Workload
	next      int   // next arrival index not yet admitted
	queue     []int // entry indices awaiting a free slot, arrival order
	slotEntry []int // slot -> in-flight entry index, -1 when free
	entries   []*Entry
	dropped   int
}

// Pump runs the service control loop. It is single-threaded by design:
// the simulator calls Step from scheduler callbacks, the live driver from
// one polling goroutine; determinism of the sim path follows.
type Pump struct {
	pp         protocol.Params
	be         Backend
	rec        *protocol.Recorder
	sessions   int
	queueLimit int
	logs       []*logState
	byWire     map[wireKey]wireRef
	decCursor  int
	failAfter  simtime.Real
}

type wireKey struct {
	g    protocol.NodeID
	wire protocol.Value
}

// wireRef locates an in-flight entry from its wire value.
type wireRef struct {
	log   int
	entry int
}

// NewPump wires the control loop up; Step drives it.
func NewPump(cfg PumpConfig) *Pump {
	sessions := cfg.Sessions
	if sessions < 1 {
		sessions = 1
	}
	queueLimit := cfg.QueueLimit
	if queueLimit <= 0 {
		queueLimit = 4 * sessions
	}
	p := &Pump{
		pp:         cfg.Params,
		be:         cfg.Backend,
		rec:        cfg.Recorder,
		sessions:   sessions,
		queueLimit: queueLimit,
		byWire:     make(map[wireKey]wireRef),
		// Δagr + 8d is the worst-case extent of one invocation (IA-3C);
		// a slot busier than that lost its agreement (abort or faulty
		// stall) and is reclaimed.
		failAfter: simtime.Real(cfg.Params.DeltaAgr()) + 8*simtime.Real(cfg.Params.D),
	}
	for _, load := range cfg.Loads {
		ls := &logState{load: load, slotEntry: make([]int, sessions)}
		for i := range ls.slotEntry {
			ls.slotEntry[i] = -1
		}
		p.logs = append(p.logs, ls)
	}
	return p
}

// Step runs one poll pass at the given instant: harvest decide returns,
// reclaim timed-out slots, admit arrivals into the bounded queues, and
// initiate queued entries into free slots.
func (p *Pump) Step(now simtime.Real) {
	p.harvest()
	for _, ls := range p.logs {
		p.reclaim(ls, now)
		p.admit(ls, now)
		p.initiate(ls, now)
	}
}

// harvest drains new decide returns from the recorder and commits the
// matching in-flight entries. Only the General's own return counts as the
// commit point (Agreement then guarantees every correct node returns the
// same value within 2d — checked separately by the battery).
func (p *Pump) harvest() {
	p.decCursor = p.rec.ForEachKindFrom(protocol.EvDecide, p.decCursor, func(ev protocol.TraceEvent) {
		if ev.Node != ev.G {
			return
		}
		key := wireKey{g: ev.G, wire: ev.M}
		ref, ok := p.byWire[key]
		if !ok {
			return
		}
		delete(p.byWire, key)
		ls := p.logs[ref.log]
		e := ls.entries[ref.entry]
		if e.State != EntryInitiated {
			return
		}
		e.State = EntryCommitted
		e.CommittedAt = ev.RT
		e.Anchor = ev.RTauG
		ls.slotEntry[e.Slot] = -1
	})
}

// reclaim frees slots whose agreement outlived Δagr + 8d without a decide
// return at the General — the abort / stalled case; the entry fails.
func (p *Pump) reclaim(ls *logState, now simtime.Real) {
	for slot, idx := range ls.slotEntry {
		if idx < 0 {
			continue
		}
		e := ls.entries[idx]
		if now-e.InitiatedAt <= p.failAfter {
			continue
		}
		e.State = EntryFailed
		delete(p.byWire, wireKey{g: ls.load.G, wire: e.Wire})
		ls.slotEntry[slot] = -1
	}
}

// admit moves due arrivals into the bounded queue, shedding to
// EntryDropped when the queue is at its limit (open-loop back-pressure).
func (p *Pump) admit(ls *logState, now simtime.Real) {
	for ls.next < len(ls.load.Arrivals) && ls.load.Arrivals[ls.next] <= now {
		i := ls.next
		ls.next++
		e := &Entry{Index: i, ArrivedAt: ls.load.Arrivals[i], Payload: p.payload(ls, i)}
		ls.entries = append(ls.entries, e)
		if len(ls.queue) >= p.queueLimit {
			e.State = EntryDropped
			ls.dropped++
			continue
		}
		ls.queue = append(ls.queue, len(ls.entries)-1)
	}
}

func (p *Pump) payload(ls *logState, i int) protocol.Value {
	if ls.load.Payload != nil {
		return ls.load.Payload(i)
	}
	return protocol.Value("p" + strconv.Itoa(i))
}

// initiate fills free slots from the queue head. IG1/IG3 refusals leave
// the entry queued for the next pass (the slot is merely rate-limited);
// any other refusal fails the entry.
func (p *Pump) initiate(ls *logState, now simtime.Real) {
	for slot := 0; slot < p.sessions && len(ls.queue) > 0; slot++ {
		if ls.slotEntry[slot] >= 0 {
			continue
		}
		idx := ls.queue[0]
		e := ls.entries[idx]
		// Unique per entry so IG2 (same value within Δv) never trips and
		// the decide return is attributable to exactly one entry.
		inner := protocol.Value(strconv.Itoa(e.Index) + "#" + string(e.Payload))
		wire, err := p.be.Initiate(ls.load.G, slot, inner)
		switch {
		case err == nil:
			ls.queue = ls.queue[1:]
			e.State = EntryInitiated
			e.InitiatedAt = now
			e.Slot = slot
			e.Wire = wire
			ls.slotEntry[slot] = idx
			p.byWire[wireKey{g: ls.load.G, wire: wire}] = wireRef{log: p.logIndex(ls), entry: idx}
		case errors.Is(err, core.ErrTooSoon) || errors.Is(err, core.ErrBackoff):
			// This slot is rate-limited (IG1) or backing off (IG3); another
			// slot may still take the entry.
			continue
		default:
			ls.queue = ls.queue[1:]
			e.State = EntryFailed
		}
	}
}

func (p *Pump) logIndex(ls *logState) int {
	for i, l := range p.logs {
		if l == ls {
			return i
		}
	}
	panic("service: unknown log")
}

// Idle reports whether the pump has nothing left to do: every arrival
// admitted, every queue empty, every slot free. Live drivers stop polling
// here; the sim driver stops rescheduling.
func (p *Pump) Idle() bool {
	for _, ls := range p.logs {
		if ls.next < len(ls.load.Arrivals) || len(ls.queue) > 0 {
			return false
		}
		for _, idx := range ls.slotEntry {
			if idx >= 0 {
				return false
			}
		}
	}
	return true
}

// LogResult is one General's finished replicated log.
type LogResult struct {
	G       protocol.NodeID
	Entries []*Entry // arrival order, every state
	// Committed is the log in its total order: ascending decision anchor
	// rt(τG) (ties by arrival index). IA-1C bounds correct nodes' anchors
	// for one agreement to within d of each other while Timeliness-4
	// keeps distinct agreements > 4d apart, so the anchor order is the
	// same at every correct observer.
	Committed []*Entry
	Dropped   int
	Failed    int
}

// Results snapshots every log after the run.
func (p *Pump) Results() []*LogResult {
	out := make([]*LogResult, 0, len(p.logs))
	for _, ls := range p.logs {
		lr := &LogResult{G: ls.load.G, Entries: ls.entries, Dropped: ls.dropped}
		for _, e := range ls.entries {
			switch e.State {
			case EntryCommitted:
				lr.Committed = append(lr.Committed, e)
			case EntryFailed:
				lr.Failed++
			}
		}
		sort.SliceStable(lr.Committed, func(i, j int) bool {
			a, b := lr.Committed[i], lr.Committed[j]
			if a.Anchor != b.Anchor {
				return a.Anchor < b.Anchor
			}
			return a.Index < b.Index
		})
		out = append(out, lr)
	}
	return out
}

// Stats are the service-level numbers of one log.
type Stats struct {
	Proposed  int
	Committed int
	Dropped   int
	Failed    int
	// MakespanTicks spans first arrival to last commit.
	MakespanTicks simtime.Duration
	// Latencies holds commit − arrival per committed entry, in ticks,
	// log order.
	Latencies []simtime.Duration
}

// Stats computes the service-level numbers of one finished log.
func (lr *LogResult) Stats() Stats {
	st := Stats{Proposed: len(lr.Entries), Committed: len(lr.Committed),
		Dropped: lr.Dropped, Failed: lr.Failed}
	if len(lr.Committed) == 0 {
		return st
	}
	first := lr.Entries[0].ArrivedAt
	last := simtime.Real(0)
	for _, e := range lr.Committed {
		if e.CommittedAt > last {
			last = e.CommittedAt
		}
		st.Latencies = append(st.Latencies, simtime.Duration(e.CommittedAt-e.ArrivedAt))
	}
	st.MakespanTicks = simtime.Duration(last - first)
	return st
}

func validateLoads(pp protocol.Params, faulty map[protocol.NodeID]protocol.Node, loads []Workload) error {
	seen := make(map[protocol.NodeID]bool)
	for _, load := range loads {
		if load.G < 0 || int(load.G) >= pp.N {
			return fmt.Errorf("service: workload General %d out of range [0,%d)", load.G, pp.N)
		}
		if seen[load.G] {
			return fmt.Errorf("service: two workloads for General %d", load.G)
		}
		seen[load.G] = true
		if _, bad := faulty[load.G]; bad {
			return fmt.Errorf("service: workload General %d is faulty", load.G)
		}
		for i := 1; i < len(load.Arrivals); i++ {
			if load.Arrivals[i] < load.Arrivals[i-1] {
				return fmt.Errorf("service: workload General %d arrivals not sorted", load.G)
			}
		}
	}
	return nil
}
