package service

import (
	"fmt"
	"time"

	"ssbyz/internal/indexed"
	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// LiveConfig runs the service against an in-process loopback socket
// cluster: the same pump as the simulator, but time is wall-clock ticks
// and initiations ride the kernel's network stack.
type LiveConfig struct {
	Params     protocol.Params
	Tick       time.Duration // wall-clock tick length (default 100µs)
	Transport  string        // nettrans.TransportUDP (default) or TCP
	Sessions   int           // concurrent slots per General (footnote 9)
	QueueLimit int           // bounded pending buffer (default 4·Sessions)
	Faulty     map[protocol.NodeID]protocol.Node
	Conditions []simnet.Condition
}

// LiveResult is a finished live service run.
type LiveResult struct {
	Res   *sim.Result
	Logs  []*LogResult
	Stats nettrans.Stats
}

// liveBackend adapts the socket cluster to the pump. Initiations are
// synchronous (DoWait into the General's event loop) with a short trace
// deadline; IG refusals pass through for the pump's retry logic.
type liveBackend struct {
	c *nettrans.Cluster
}

func (b *liveBackend) Initiate(g protocol.NodeID, slot int, v protocol.Value) (protocol.Value, error) {
	_, wire, err := b.c.InitiateIn(g, slot, v, 2*time.Second)
	return wire, err
}

// RunLive executes the workload against a loopback cluster, polling the
// pump on wall-clock until it drains or the timeout passes. Arrival
// instants in the loads are in ticks of cfg.Tick, like every protocol
// constant. The trace comes back in sim.Result form for the battery.
func RunLive(cfg LiveConfig, loads []Workload, timeout time.Duration) (*LiveResult, error) {
	sessions := cfg.Sessions
	if sessions < 1 {
		sessions = 1
	}
	if err := validateLoads(cfg.Params, cfg.Faulty, loads); err != nil {
		return nil, err
	}
	ccfg := nettrans.ClusterConfig{
		Params:     cfg.Params,
		Tick:       cfg.Tick,
		Transport:  cfg.Transport,
		Faulty:     cfg.Faulty,
		Conditions: cfg.Conditions,
	}
	if sessions > 1 {
		ccfg.NewNode = func() protocol.Node { return indexed.NewNode(sessions) }
	}
	c, err := nettrans.NewCluster(ccfg)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	pump := NewPump(PumpConfig{
		Params:     cfg.Params,
		Backend:    &liveBackend{c: c},
		Recorder:   c.Recorder(),
		Sessions:   sessions,
		QueueLimit: cfg.QueueLimit,
		Loads:      loads,
	})
	// Poll at quarter-d wall-clock granularity, the same cadence the sim
	// driver uses in virtual time.
	poll := c.Tick() * time.Duration(cfg.Params.D) / 4
	if poll <= 0 {
		poll = time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for {
		pump.Step(c.NowTicks())
		if pump.Idle() {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("service: live workload did not drain within %v", timeout)
		}
		time.Sleep(poll)
	}
	// Let the last decide returns settle at every correct node before the
	// trace is frozen (the General's own return leads peers by ≤ 2d).
	time.Sleep(2 * time.Duration(cfg.Params.D) * c.Tick())
	horizon := simtime.Duration(c.NowTicks())
	res := c.Result(horizon)
	return &LiveResult{Res: res, Logs: pump.Results(), Stats: c.Stats()}, nil
}
