package service

import (
	"fmt"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/indexed"
	"ssbyz/internal/nettrans"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// LiveConfig runs the service against an in-process loopback socket
// cluster: the same pump as the simulator, but time is wall-clock ticks
// and initiations ride the kernel's network stack.
type LiveConfig struct {
	Params     protocol.Params
	Tick       time.Duration // wall-clock tick length (default 100µs)
	Transport  string        // nettrans.TransportUDP (default) or TCP
	Sessions   int           // concurrent slots per General (footnote 9)
	QueueLimit int           // bounded pending buffer (default 4·Sessions)
	Faulty     map[protocol.NodeID]protocol.Node
	Conditions []simnet.Condition
	// Clock switches the run to virtual time when it is a *clock.Fake:
	// the cluster uses the deterministic in-memory wire and RunLive
	// drives the fake clock instead of polling the wall (nil = wall).
	Clock clock.Clock
	// Seed drives the virtual wire's delivery delays (virtual path only).
	Seed int64
}

// LiveResult is a finished live service run.
type LiveResult struct {
	Res   *sim.Result
	Logs  []*LogResult
	Stats nettrans.Stats
}

// liveBackend adapts the socket cluster to the pump. Initiations are
// synchronous (DoWait into the General's event loop) with a short trace
// deadline; IG refusals pass through for the pump's retry logic.
type liveBackend struct {
	c *nettrans.Cluster
}

func (b *liveBackend) Initiate(g protocol.NodeID, slot int, v protocol.Value) (protocol.Value, error) {
	_, wire, err := b.c.InitiateIn(g, slot, v, 2*time.Second)
	return wire, err
}

// RunLive executes the workload against a loopback cluster, polling the
// pump on wall-clock until it drains or the timeout passes. Arrival
// instants in the loads are in ticks of cfg.Tick, like every protocol
// constant. The trace comes back in sim.Result form for the battery.
func RunLive(cfg LiveConfig, loads []Workload, timeout time.Duration) (*LiveResult, error) {
	sessions := cfg.Sessions
	if sessions < 1 {
		sessions = 1
	}
	if err := validateLoads(cfg.Params, cfg.Faulty, loads); err != nil {
		return nil, err
	}
	ccfg := nettrans.ClusterConfig{
		Params:     cfg.Params,
		Tick:       cfg.Tick,
		Transport:  cfg.Transport,
		Faulty:     cfg.Faulty,
		Conditions: cfg.Conditions,
		Clock:      cfg.Clock,
		Seed:       cfg.Seed,
	}
	if sessions > 1 {
		ccfg.NewNode = func() protocol.Node { return indexed.NewNode(sessions) }
	}
	c, err := nettrans.NewCluster(ccfg)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	pump := NewPump(PumpConfig{
		Params:     cfg.Params,
		Backend:    &liveBackend{c: c},
		Recorder:   c.Recorder(),
		Sessions:   sessions,
		QueueLimit: cfg.QueueLimit,
		Loads:      loads,
	})
	// Poll at quarter-d granularity, the same cadence the sim driver
	// uses. On the virtual path the poll is an Advance of the fake
	// clock — the timeout becomes a virtual-time budget and the whole
	// drive is deterministic; on the wall path it is a real sleep.
	quarter := time.Duration(cfg.Params.D) / 4 * c.Tick()
	if quarter <= 0 {
		quarter = time.Millisecond
	}
	if fake := c.Virtual(); fake != nil {
		horizon := simtime.Duration(c.NowTicks()) + simtime.Duration(timeout/c.Tick())
		for {
			pump.Step(c.NowTicks())
			if pump.Idle() {
				break
			}
			if simtime.Duration(c.NowTicks()) >= horizon {
				return nil, fmt.Errorf("service: live workload did not drain within %v of virtual time", timeout)
			}
			fake.Advance(quarter)
		}
		fake.Advance(2 * time.Duration(cfg.Params.D) * c.Tick())
	} else {
		deadline := time.Now().Add(timeout)
		for {
			pump.Step(c.NowTicks())
			if pump.Idle() {
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("service: live workload did not drain within %v", timeout)
			}
			time.Sleep(quarter)
		}
		// Let the last decide returns settle at every correct node before
		// the trace is frozen (the General's own return leads peers by ≤ 2d).
		time.Sleep(2 * time.Duration(cfg.Params.D) * c.Tick())
	}
	horizon := simtime.Duration(c.NowTicks())
	res := c.Result(horizon)
	return &LiveResult{Res: res, Logs: pump.Results(), Stats: c.Stats()}, nil
}
