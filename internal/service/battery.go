package service

import (
	"fmt"

	"ssbyz/internal/check"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simtime"
)

// Battery runs the full per-session property battery over a finished
// service run: check.All for every General that carried a log (its
// checkers split concurrent invocations by the footnote-9 slot
// namespace), plus per-committed-entry Validity/Timeliness-2 anchored at
// the entry's traced initiation instant t0. A committed entry whose
// initiation never reached the trace is itself a violation — commit
// without initiation would be forged agreement.
func Battery(res *sim.Result, logs []*LogResult) []check.Violation {
	var out []check.Violation
	for _, lr := range logs {
		out = append(out, check.All(res, lr.G)...)
		t0s := initiationInstants(res, lr.G)
		for _, e := range lr.Committed {
			t0, ok := t0s[e.Wire]
			if !ok {
				out = append(out, check.Violation{Property: "Validity",
					Detail: fmt.Sprintf("entry %d of General %d committed %q without a traced initiation", e.Index, lr.G, e.Wire)})
				continue
			}
			out = append(out, check.ValidityFor(res, lr.G, t0, e.Wire)...)
		}
	}
	return out
}

// initiationInstants maps each wire value General g initiated to its
// first traced initiation instant (service wire values are unique per
// entry, so first is only).
func initiationInstants(res *sim.Result, g protocol.NodeID) map[protocol.Value]simtime.Real {
	out := make(map[protocol.Value]simtime.Real)
	for _, ev := range res.Initiations(g) {
		if _, ok := out[ev.M]; !ok {
			out[ev.M] = ev.RT
		}
	}
	return out
}
