package service

import (
	"bytes"
	"testing"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
	"ssbyz/internal/wire"
)

// TestLiveServiceMultiplexed drives the replicated log over real loopback
// sockets with concurrent footnote-9 sessions sharing one socket per
// node: every entry commits and the per-session battery is clean on the
// live trace. Wall-clock, so gated out of -short.
func TestLiveServiceMultiplexed(t *testing.T) {
	if testing.Short() {
		t.Skip("binds loopback sockets and runs wall-clock agreements; skipped in -short")
	}
	pp := protocol.DefaultParams(4)
	pp.D = 60 // keep Δagr wall-time small at the default 100µs tick
	const entries = 6
	arrivals := PoissonArrivals(1, simtime.Real(pp.D), simtime.Duration(pp.D), entries)
	res, err := RunLive(LiveConfig{
		Params:   pp,
		Sessions: 3,
	}, []Workload{{G: 0, Arrivals: arrivals}}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	lr := res.Logs[0]
	if len(lr.Committed) != entries || lr.Failed != 0 || lr.Dropped != 0 {
		t.Fatalf("committed=%d failed=%d dropped=%d, want %d/0/0",
			len(lr.Committed), lr.Failed, lr.Dropped, entries)
	}
	if v := Battery(res.Res, res.Logs); len(v) != 0 {
		t.Fatalf("battery violations on live trace (%d): %v", len(v), v[0])
	}
}

// TestLiveServiceVirtual is the multiplexed service burst under virtual
// time: same pump, same sockets-shaped pipeline, but the cluster runs on
// a fake clock over the deterministic in-memory wire, so it needs no
// -short gate and two executions must agree byte for byte — committed
// logs, commit instants, and the full trace stream. This is the L2
// deterministic-live cell the default `go test ./...` runs.
func TestLiveServiceVirtual(t *testing.T) {
	run := func(seed int64) (*LiveResult, []byte) {
		pp := protocol.DefaultParams(4)
		pp.D = 250
		const entries = 6
		arrivals := PoissonArrivals(1, simtime.Real(pp.D), simtime.Duration(pp.D), entries)
		res, err := RunLive(LiveConfig{
			Params:   pp,
			Sessions: 3,
			Clock:    clock.NewFake(time.Time{}),
			Seed:     seed,
		}, []Workload{{G: 0, Arrivals: arrivals}}, 10*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		var blob []byte
		for _, ev := range res.Res.Rec.Events() {
			blob = wire.AppendTraceEvent(blob, ev)
		}
		return res, blob
	}
	res1, blob1 := run(11)
	res2, blob2 := run(11)
	lr := res1.Logs[0]
	if len(lr.Committed) != 6 || lr.Failed != 0 || lr.Dropped != 0 {
		t.Fatalf("committed=%d failed=%d dropped=%d, want 6/0/0",
			len(lr.Committed), lr.Failed, lr.Dropped)
	}
	if v := Battery(res1.Res, res1.Logs); len(v) != 0 {
		t.Fatalf("battery violations on virtual live trace (%d): %v", len(v), v[0])
	}
	if !bytes.Equal(blob1, blob2) {
		t.Fatalf("virtual service traces differ across executions: %d vs %d bytes", len(blob1), len(blob2))
	}
	for i, e := range res1.Logs[0].Committed {
		e2 := res2.Logs[0].Committed[i]
		if *e != *e2 {
			t.Fatalf("committed entry %d differs across executions: %+v vs %+v", i, e, e2)
		}
	}
}

// TestLiveServiceConcurrentStress is the race-detector stress for the
// session-multiplexed engine: two Generals serve replicated logs at the
// same time, each draining a burst through 8 concurrent footnote-9
// sessions, so node event loops, shared timers, the wire codec, and the
// pump's wall-clock polling all interleave under load. Run under -race
// (CI's service race gate) it proves the multiplexing added no data
// races; in any build the verdict is full commitment and a clean
// per-session battery. Wall-clock, so gated out of -short.
func TestLiveServiceConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("binds loopback sockets and runs wall-clock agreements; skipped in -short")
	}
	pp := protocol.DefaultParams(4)
	pp.D = 60
	const entries = 8
	burst := make([]simtime.Real, entries)
	for i := range burst {
		burst[i] = simtime.Real(2 * pp.D) // all at once: every session busy
	}
	res, err := RunLive(LiveConfig{
		Params:     pp,
		Sessions:   8,
		QueueLimit: entries,
	}, []Workload{
		{G: 0, Arrivals: burst},
		{G: 1, Arrivals: burst},
	}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.Logs {
		if len(lr.Committed) != entries || lr.Failed != 0 || lr.Dropped != 0 {
			t.Fatalf("G%d: committed=%d failed=%d dropped=%d, want %d/0/0",
				lr.G, len(lr.Committed), lr.Failed, lr.Dropped, entries)
		}
	}
	if v := Battery(res.Res, res.Logs); len(v) != 0 {
		t.Fatalf("battery violations on live trace (%d): %v", len(v), v[0])
	}
}
