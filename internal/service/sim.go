package service

import (
	"fmt"

	"ssbyz/internal/indexed"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// SimConfig runs the service against the discrete-event simulator.
type SimConfig struct {
	// Scenario is the base world: Params, Seed, Faulty, Conditions, … .
	// NewNode and Drive are owned by the service runner; RunFor defaults
	// to a horizon that provably outlives the workload (see horizon).
	Scenario sim.Scenario
	// Sessions is the concurrent-invocation slot count per node
	// (footnote 9); 1 runs the plain single-session protocol of Fig. 1.
	Sessions int
	// QueueLimit bounds each log's pending buffer (default 4·Sessions).
	QueueLimit int
	// Poll is the pump's poll interval (default D/4).
	Poll simtime.Duration
	// Loads are the per-General open-loop clients.
	Loads []Workload
}

// SimResult is a finished simulated service run.
type SimResult struct {
	Res  *sim.Result
	Logs []*LogResult
}

// simBackend adapts the simulator world to the pump: virtual time and
// direct (in-scheduler-callback) initiation on the General's node.
type simBackend struct {
	w        *simnet.World
	sessions int
}

func (b *simBackend) Initiate(g protocol.NodeID, slot int, v protocol.Value) (protocol.Value, error) {
	switch n := b.w.Node(g).(type) {
	case sim.SlotInitiator:
		return protocol.SlotValue(slot, v), n.InitiateAgreement(slot, v)
	case sim.Initiator:
		if slot != 0 {
			return v, fmt.Errorf("service: node %d has no concurrent slots", g)
		}
		return v, n.InitiateAgreement(v)
	default:
		return v, fmt.Errorf("service: node %d cannot initiate agreements", g)
	}
}

// RunSim executes the workload to completion in virtual time. Sessions > 1
// installs the indexed (footnote-9) node factory; Sessions == 1 keeps the
// plain core node, so a single-session service run is bit-identical to the
// pre-service protocol (the differential test pins this).
func RunSim(cfg SimConfig) (*SimResult, error) {
	sc := cfg.Scenario
	if sc.Params.N == 0 {
		sc.Params = protocol.DefaultParams(7)
	}
	sessions := cfg.Sessions
	if sessions < 1 {
		sessions = 1
	}
	if err := validateLoads(sc.Params, sc.Faulty, cfg.Loads); err != nil {
		return nil, err
	}
	if sc.NewNode == nil && sessions > 1 {
		sc.NewNode = func() protocol.Node { return indexed.NewNode(sessions) }
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = sc.Params.D / 4
	}
	if sc.RunFor == 0 {
		sc.RunFor = horizon(sc.Params, sessions, cfg.Loads)
	}

	var pump *Pump
	sc.Drive = func(w *simnet.World) {
		pump = NewPump(PumpConfig{
			Params:     sc.Params,
			Backend:    &simBackend{w: w, sessions: sessions},
			Recorder:   w.Recorder(),
			Sessions:   sessions,
			QueueLimit: cfg.QueueLimit,
			Loads:      cfg.Loads,
		})
		var tick func()
		tick = func() {
			pump.Step(w.Now())
			if !pump.Idle() {
				w.Scheduler().At(w.Now()+simtime.Real(poll), tick)
			}
		}
		w.Scheduler().At(0, tick)
	}

	res, err := sim.Run(sc)
	if err != nil {
		return nil, err
	}
	return &SimResult{Res: res, Logs: pump.Results()}, nil
}

// horizon bounds the virtual time the workload needs: after the last
// arrival, each log still holds at most its queue of entries, admitted
// one per slot per Δ0 (IG1), each taking at most Δagr + 8d (IA-3C) —
// plus two slack rounds for poll granularity.
func horizon(pp protocol.Params, sessions int, loads []Workload) simtime.Duration {
	var last simtime.Real
	maxCount := 0
	for _, load := range loads {
		if n := len(load.Arrivals); n > 0 {
			if t := load.Arrivals[n-1]; t > last {
				last = t
			}
			if n > maxCount {
				maxCount = n
			}
		}
	}
	rounds := simtime.Duration((maxCount+sessions-1)/sessions + 2)
	return simtime.Duration(last) + rounds*pp.Delta0() + pp.DeltaAgr() + 16*pp.D
}
