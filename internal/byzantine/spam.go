package byzantine

import (
	"math/rand"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Spammer floods the network with syntactically valid protocol messages
// carrying random Generals, values, and rounds. It attacks memory bounds
// (decay must keep state finite) and the unforgeability properties (no
// amount of spam may produce an I-accept or acceptance without correct
// participation).
type Spammer struct {
	rt protocol.Runtime
	// Every is the local-time spacing between bursts (default d).
	Every simtime.Duration
	// Burst is how many messages per burst (default 2n).
	Burst int
	// Values is the pool of values to spam (default a fixed set).
	Values []protocol.Value
	// Stop, when positive, ends the spam after this much local time.
	Stop simtime.Duration

	elapsed simtime.Duration
	rng     *rand.Rand
}

var _ protocol.Node = (*Spammer)(nil)

// Start arms the burst loop.
func (s *Spammer) Start(rt protocol.Runtime) {
	s.rt = rt
	if s.Every == 0 {
		s.Every = rt.Params().D
	}
	if s.Burst == 0 {
		s.Burst = 2 * rt.Params().N
	}
	if len(s.Values) == 0 {
		s.Values = []protocol.Value{"spam-a", "spam-b", "spam-c"}
	}
	if adv, ok := rt.(simnet.AdversaryRuntime); ok {
		s.rng = adv.Rand()
	} else {
		s.rng = rand.New(rand.NewSource(int64(rt.ID()) + 42))
	}
	rt.After(s.Every, protocol.TimerTag{Name: "spam"})
}

// OnMessage implements protocol.Node.
func (s *Spammer) OnMessage(protocol.NodeID, protocol.Message) {}

// OnTimer emits one burst and re-arms.
func (s *Spammer) OnTimer(tag protocol.TimerTag) {
	if tag.Name != "spam" {
		return
	}
	pp := s.rt.Params()
	kinds := []protocol.MsgKind{
		protocol.Initiator, protocol.Support, protocol.Approve, protocol.Ready,
		protocol.Init, protocol.Echo, protocol.InitPrime, protocol.EchoPrime,
	}
	for i := 0; i < s.Burst; i++ {
		m := protocol.Message{
			Kind: kinds[s.rng.Intn(len(kinds))],
			G:    protocol.NodeID(s.rng.Intn(pp.N)),
			M:    s.Values[s.rng.Intn(len(s.Values))],
			P:    protocol.NodeID(s.rng.Intn(pp.N)),
			K:    s.rng.Intn(2*pp.F + 2),
		}
		s.rt.Send(protocol.NodeID(s.rng.Intn(pp.N)), m)
	}
	s.elapsed += s.Every
	if s.Stop > 0 && s.elapsed >= s.Stop {
		return
	}
	s.rt.After(s.Every, protocol.TimerTag{Name: "spam"})
}

// Replayer records every message it receives and re-broadcasts the whole
// capture after Delay — the classic replay attack against the decay and
// separation machinery.
type Replayer struct {
	rt protocol.Runtime
	// Delay is the local time to hold the capture before replaying.
	Delay simtime.Duration
	// Repeat, when positive, replays again every Repeat thereafter.
	Repeat simtime.Duration

	capture []protocol.Message
}

var _ protocol.Node = (*Replayer)(nil)

// Start arms the replay timer.
func (r *Replayer) Start(rt protocol.Runtime) {
	r.rt = rt
	if r.Delay == 0 {
		r.Delay = rt.Params().DeltaRmv()
	}
	rt.After(r.Delay, protocol.TimerTag{Name: "replay"})
}

// OnMessage records the capture.
func (r *Replayer) OnMessage(_ protocol.NodeID, m protocol.Message) {
	// Note: the replayer can only re-send messages under its own identity;
	// the transport's authentication prevents re-sending as the original
	// sender, exactly as in the paper's model.
	r.capture = append(r.capture, m)
}

// OnTimer replays the capture.
func (r *Replayer) OnTimer(tag protocol.TimerTag) {
	if tag.Name != "replay" {
		return
	}
	for _, m := range r.capture {
		r.rt.Broadcast(m)
	}
	if r.Repeat > 0 {
		r.rt.After(r.Repeat, protocol.TimerTag{Name: "replay"})
	}
}

// EchoForger attacks msgd-broadcast's unforgeability (TPS-2): it emits
// echo / init′ / echo′ messages for broadcasts that were never sent.
type EchoForger struct {
	rt protocol.Runtime
	// G is the agreement context to attack; ForgedP the claimed
	// broadcaster; ForgedV the value; K the round.
	G, ForgedP protocol.NodeID
	ForgedV    protocol.Value
	K          int
	// At is the local time of the forgery.
	At simtime.Duration
}

var _ protocol.Node = (*EchoForger)(nil)

// Start arms the forgery.
func (e *EchoForger) Start(rt protocol.Runtime) {
	e.rt = rt
	rt.After(e.At, protocol.TimerTag{Name: "forge"})
}

// OnMessage implements protocol.Node.
func (e *EchoForger) OnMessage(protocol.NodeID, protocol.Message) {}

// OnTimer emits the forged second-phase messages.
func (e *EchoForger) OnTimer(tag protocol.TimerTag) {
	if tag.Name != "forge" {
		return
	}
	for _, kind := range []protocol.MsgKind{protocol.Echo, protocol.InitPrime, protocol.EchoPrime} {
		e.rt.Broadcast(protocol.Message{Kind: kind, G: e.G, M: e.ForgedV, P: e.ForgedP, K: e.K})
	}
}
