package byzantine

import (
	"ssbyz/internal/protocol"
)

// mirrorKey dedupes MirrorVoter reflections per (recipient, kind, G, m).
type mirrorKey struct {
	to protocol.NodeID
	k  protocol.MsgKind
	g  protocol.NodeID
	m  protocol.Value
}

// MirrorVoter reflects every wave message straight back at its sender —
// and ONLY its sender: node q sees the mirror echoing exactly what q
// itself already said, while every other node sees the mirror stay silent.
// It is the most view-splitting participation a single faulty node can
// produce without forging identities (which the transport forbids): each
// correct node counts the mirror toward a different, privately observed
// wave, probing the distinct-sender thresholds of Initiator-Accept
// (IA-1/IA-4) from n different directions at once. An Initiator is
// mirrored as a Support for the General's value.
type MirrorVoter struct {
	rt   protocol.Runtime
	sent map[mirrorKey]bool
}

var _ protocol.Node = (*MirrorVoter)(nil)

// Start implements protocol.Node.
func (v *MirrorVoter) Start(rt protocol.Runtime) {
	v.rt = rt
	v.sent = make(map[mirrorKey]bool)
}

// OnMessage reflects the observed wave message back at its sender.
func (v *MirrorVoter) OnMessage(from protocol.NodeID, m protocol.Message) {
	kind := m.Kind
	switch kind {
	case protocol.Initiator:
		kind = protocol.Support
	case protocol.Support, protocol.Approve, protocol.Ready:
	default:
		return
	}
	key := mirrorKey{to: from, k: kind, g: m.G, m: m.M}
	if v.sent[key] {
		return
	}
	v.sent[key] = true
	v.rt.Send(from, protocol.Message{Kind: kind, G: m.G, M: m.M})
}

// OnTimer implements protocol.Node.
func (*MirrorVoter) OnTimer(protocol.TimerTag) {}

// waveKey identifies one wave for EdgeSupporter's sender counting.
type waveKey struct {
	k protocol.MsgKind
	g protocol.NodeID
	m protocol.Value
}

// EdgeSupporter contributes to a wave at exactly the moment the wave's
// distinct-sender count reaches one short of the Byzantine quorum n−2f —
// so each threshold of the primitive is crossed only through the faulty
// node's own vote, at the last admissible instant. Waves that would have
// died at n−2f−1 senders are pushed just over the edge, and waves with
// broad support gain nothing: the sharpest probe of the "at least one
// correct sender behind every quorum" counting arguments (IA-2, TPS-2).
type EdgeSupporter struct {
	rt      protocol.Runtime
	senders map[waveKey]map[protocol.NodeID]bool
	sent    map[waveKey]bool
}

var _ protocol.Node = (*EdgeSupporter)(nil)

// Start implements protocol.Node.
func (e *EdgeSupporter) Start(rt protocol.Runtime) {
	e.rt = rt
	e.senders = make(map[waveKey]map[protocol.NodeID]bool)
	e.sent = make(map[waveKey]bool)
}

// OnMessage counts distinct senders per wave and votes on the edge.
func (e *EdgeSupporter) OnMessage(from protocol.NodeID, m protocol.Message) {
	switch m.Kind {
	case protocol.Support, protocol.Approve, protocol.Ready:
	default:
		return
	}
	key := waveKey{k: m.Kind, g: m.G, m: m.M}
	set := e.senders[key]
	if set == nil {
		set = make(map[protocol.NodeID]bool)
		e.senders[key] = set
	}
	set[from] = true
	pp := e.rt.Params()
	if e.sent[key] || len(set) != pp.ByzQuorum()-1 {
		return
	}
	e.sent[key] = true
	e.rt.Broadcast(protocol.Message{Kind: m.Kind, G: m.G, M: m.M})
}

// OnTimer implements protocol.Node.
func (*EdgeSupporter) OnTimer(protocol.TimerTag) {}
