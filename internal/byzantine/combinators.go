package byzantine

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// This file holds the adversary combinators: Composite runs several
// strategies on one faulty node, Staged switches strategies at scripted
// local times, and Adaptive arms a strategy when a watched protocol event
// is observed. The paper's proofs quantify over EVERY Byzantine strategy,
// so combinators multiply the strategies a single faulty node (of the ≤ f
// the model admits) can exhibit — the scenario generator composes them
// into randomized attacks the hand-written single-strategy suite never
// reaches.
//
// Members keep their own timers: each member runs behind a subRuntime that
// re-tags the timers it arms with a routing prefix ("<i>·name"), and the
// combinator dispatches expiries back to the member that armed them with
// the original tag restored. Nested combinators compose naturally — each
// layer strips exactly its own prefix.

// subRuntime is the runtime handed to one member of a combinator. It
// passes everything through to the parent runtime except After (timers are
// re-tagged for routing) and implements the full simnet.AdversaryRuntime
// surface so members keep their adversarial timing power when the parent
// has it.
type subRuntime struct {
	protocol.Runtime
	prefix string
}

func (s *subRuntime) After(dl simtime.Duration, tag protocol.TimerTag) protocol.TimerID {
	tag.Name = s.prefix + tag.Name
	return s.Runtime.After(dl, tag)
}

// SendAt delegates precise delivery timing when the parent runtime is the
// simulator's adversary runtime, degrading to a plain send elsewhere.
func (s *subRuntime) SendAt(to protocol.NodeID, m protocol.Message, delay simtime.Duration) {
	if adv, ok := s.Runtime.(simnet.AdversaryRuntime); ok {
		adv.SendAt(to, m, delay)
		return
	}
	s.Runtime.Send(to, m)
}

// Rand exposes the world RNG when available, else a per-node fallback.
func (s *subRuntime) Rand() *rand.Rand {
	if adv, ok := s.Runtime.(simnet.AdversaryRuntime); ok {
		return adv.Rand()
	}
	return rand.New(rand.NewSource(int64(s.Runtime.ID()) + 97))
}

// RealNow leaks virtual real time when available (0 elsewhere).
func (s *subRuntime) RealNow() simtime.Real {
	if adv, ok := s.Runtime.(simnet.AdversaryRuntime); ok {
		return adv.RealNow()
	}
	return 0
}

var _ simnet.AdversaryRuntime = (*subRuntime)(nil)

// memberRuntime builds the prefixed runtime for member i.
func memberRuntime(rt protocol.Runtime, i int) *subRuntime {
	return &subRuntime{Runtime: rt, prefix: fmt.Sprintf("%d·", i)}
}

// routeTimer recovers the member index a combinator timer belongs to and
// the member's original tag. ok is false for tags no member armed (e.g.
// a combinator's own control timers).
func routeTimer(tag protocol.TimerTag) (int, protocol.TimerTag, bool) {
	head, rest, found := strings.Cut(tag.Name, "·")
	if !found {
		return 0, tag, false
	}
	i, err := strconv.Atoi(head)
	if err != nil || i < 0 {
		return 0, tag, false
	}
	tag.Name = rest
	return i, tag, true
}

// Composite runs several strategies concurrently on ONE faulty node: every
// received message fans out to every part, and each part sends under the
// shared identity. One Byzantine node of the model's ≤ f budget thereby
// plays several roles at once (e.g. equivocating General + echo forger).
type Composite struct {
	// Parts are the member strategies; nil members are skipped.
	Parts []protocol.Node

	rt protocol.Runtime
}

var _ protocol.Node = (*Composite)(nil)

// Start starts every part behind its routing runtime.
func (c *Composite) Start(rt protocol.Runtime) {
	c.rt = rt
	for i, p := range c.Parts {
		if p != nil {
			p.Start(memberRuntime(rt, i))
		}
	}
}

// OnMessage fans the message to every part.
func (c *Composite) OnMessage(from protocol.NodeID, m protocol.Message) {
	for _, p := range c.Parts {
		if p != nil {
			p.OnMessage(from, m)
		}
	}
}

// OnTimer routes the expiry to the part that armed it.
func (c *Composite) OnTimer(tag protocol.TimerTag) {
	if i, inner, ok := routeTimer(tag); ok && i < len(c.Parts) && c.Parts[i] != nil {
		c.Parts[i].OnTimer(inner)
	}
}

// stagedSwitch is the Staged combinator's own control-timer name. It
// contains no routing separator, so it can never collide with a member
// timer.
const stagedSwitch = "staged-switch"

// Stage is one phase of a Staged adversary.
type Stage struct {
	// At is the local time at which this stage takes over; the first
	// stage's At is ignored (it runs from the start).
	At simtime.Duration
	// Node is the strategy of the stage; nil plays dead for the stage.
	Node protocol.Node
}

// Staged switches strategies at scripted local times: stage 0 runs from
// the start, each later stage takes over at its At tick. Messages reach
// only the active stage; timers armed by a superseded stage are dropped.
// A faulty node can thereby behave correctly through one agreement and
// turn traitor in the next — an attack no fixed single strategy models.
type Staged struct {
	Stages []Stage

	rt     protocol.Runtime
	active int
}

var _ protocol.Node = (*Staged)(nil)

// Start enters stage 0 and arms the switch timer of every later stage.
func (s *Staged) Start(rt protocol.Runtime) {
	s.rt = rt
	s.active = -1
	for i := 1; i < len(s.Stages); i++ {
		rt.After(s.Stages[i].At, protocol.TimerTag{Name: stagedSwitch, K: i})
	}
	if len(s.Stages) > 0 {
		s.enter(0)
	}
}

func (s *Staged) enter(i int) {
	s.active = i
	if n := s.Stages[i].Node; n != nil {
		n.Start(memberRuntime(s.rt, i))
	}
}

// OnMessage delivers to the active stage only.
func (s *Staged) OnMessage(from protocol.NodeID, m protocol.Message) {
	if s.active >= 0 {
		if n := s.Stages[s.active].Node; n != nil {
			n.OnMessage(from, m)
		}
	}
}

// OnTimer performs stage switches and routes member timers, dropping
// expiries armed by superseded stages.
func (s *Staged) OnTimer(tag protocol.TimerTag) {
	if tag.Name == stagedSwitch {
		if tag.K > s.active && tag.K < len(s.Stages) {
			s.enter(tag.K)
		}
		return
	}
	if i, inner, ok := routeTimer(tag); ok && i == s.active {
		if n := s.Stages[i].Node; n != nil {
			n.OnTimer(inner)
		}
	}
}

// Trigger decides whether an observed message arms an Adaptive adversary.
type Trigger func(from protocol.NodeID, m protocol.Message) bool

// OnKind returns a trigger that fires on the first observed message of the
// given kind for General g — the protocol events an omniscient-enough
// adversary reacts to (e.g. "the wave reached Ready: start colluding").
func OnKind(g protocol.NodeID, kind protocol.MsgKind) Trigger {
	return func(_ protocol.NodeID, m protocol.Message) bool {
		return m.Kind == kind && m.G == g
	}
}

// OnGeneral returns a trigger that fires on the first wave message of any
// kind observed for General g.
func OnGeneral(g protocol.NodeID) Trigger {
	return func(_ protocol.NodeID, m protocol.Message) bool {
		return m.G == g
	}
}

// Adaptive is the state-reactive wrapper: it behaves as Base (nil = lies
// dormant) until Trigger matches an observed message, then builds and arms
// Then, which also receives the triggering message. The armed strategy
// permanently replaces the base — timers the base armed are dropped.
type Adaptive struct {
	// Base runs until the trigger fires.
	Base protocol.Node
	// Trigger inspects every received message; nil never triggers.
	Trigger Trigger
	// Then builds the armed strategy on trigger.
	Then func() protocol.Node

	rt    protocol.Runtime
	armed protocol.Node
}

var _ protocol.Node = (*Adaptive)(nil)

// Start starts the base behavior.
func (a *Adaptive) Start(rt protocol.Runtime) {
	a.rt = rt
	if a.Base != nil {
		a.Base.Start(memberRuntime(rt, 0))
	}
}

// OnMessage checks the trigger, then delivers to the active strategy.
func (a *Adaptive) OnMessage(from protocol.NodeID, m protocol.Message) {
	if a.armed == nil && a.Trigger != nil && a.Then != nil && a.Trigger(from, m) {
		a.armed = a.Then()
		if a.armed != nil {
			a.armed.Start(memberRuntime(a.rt, 1))
		}
	}
	if a.armed != nil {
		a.armed.OnMessage(from, m)
		return
	}
	if a.Base != nil {
		a.Base.OnMessage(from, m)
	}
}

// OnTimer routes to the strategy that armed the timer; base timers are
// dropped once the adversary armed.
func (a *Adaptive) OnTimer(tag protocol.TimerTag) {
	i, inner, ok := routeTimer(tag)
	if !ok {
		return
	}
	switch {
	case i == 1 && a.armed != nil:
		a.armed.OnTimer(inner)
	case i == 0 && a.armed == nil && a.Base != nil:
		a.Base.OnTimer(inner)
	}
}
