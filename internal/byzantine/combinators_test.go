package byzantine

import (
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

func TestCompositeRunsAllPartsWithOwnTimers(t *testing.T) {
	pp := protocol.DefaultParams(4)
	// Two timer-driven parts with clashing timer tag names: each must fire
	// under its own routing and emit its own initiation.
	adv := &Composite{Parts: []protocol.Node{
		&PartialGeneral{Invitees: []protocol.NodeID{0}, Value: "a", At: pp.D},
		&PartialGeneral{Invitees: []protocol.NodeID{0}, Value: "b", At: 2 * pp.D},
	}}
	w, cap0 := adversaryWorld(t, adv, 20)
	w.RunUntil(simtime.Real(20 * pp.D))
	var vals []protocol.Value
	for _, m := range cap0.msgs {
		if m.From == 3 && m.Kind == protocol.Initiator {
			vals = append(vals, m.M)
		}
	}
	if len(vals) != 2 || vals[0] != "a" || vals[1] != "b" {
		t.Errorf("composite initiations = %v, want [a b]", vals)
	}
}

func TestCompositeFansMessagesToAllParts(t *testing.T) {
	adv := &Composite{Parts: []protocol.Node{
		&Yeasayer{},
		&LateSupporter{G: 1, Value: "v"},
	}}
	w, cap0 := adversaryWorld(t, adv, 21)
	w.Scheduler().At(100, func() {
		w.Runtime(1).Broadcast(protocol.Message{Kind: protocol.Support, G: 1, M: "v"})
	})
	w.RunUntil(100000)
	// Both parts react: the Yeasayer pushes approve/ready, the late
	// supporter contributes its support — all under node 3's identity.
	k := cap0.kinds()
	if k[protocol.Support] < 2 || k[protocol.Approve] < 1 || k[protocol.Ready] < 1 {
		t.Errorf("composite parts missing reactions: %v", k)
	}
}

func TestStagedSwitchesStrategiesAtLocalTicks(t *testing.T) {
	pp := protocol.DefaultParams(4)
	adv := &Staged{Stages: []Stage{
		{Node: &Silent{}},
		{At: 5 * pp.D, Node: &Yeasayer{}},
	}}
	w, cap0 := adversaryWorld(t, adv, 22)
	// A wave in stage 0 (silent) must be ignored; the same wave after the
	// switch must be amplified.
	w.Scheduler().At(simtime.Real(pp.D), func() {
		w.Runtime(1).Broadcast(protocol.Message{Kind: protocol.Support, G: 1, M: "early"})
	})
	w.Scheduler().At(simtime.Real(8*pp.D), func() {
		w.Runtime(1).Broadcast(protocol.Message{Kind: protocol.Support, G: 1, M: "late"})
	})
	w.RunUntil(simtime.Real(20 * pp.D))
	for _, m := range cap0.msgs {
		if m.From != 3 {
			continue
		}
		if m.M == "early" {
			t.Errorf("stage 0 (silent) leaked a reaction: %v", m)
		}
	}
	sawLate := false
	for _, m := range cap0.msgs {
		if m.From == 3 && m.M == "late" {
			sawLate = true
		}
	}
	if !sawLate {
		t.Error("stage 1 (yeasayer) never reacted after the switch")
	}
}

func TestStagedDropsSupersededStageTimers(t *testing.T) {
	pp := protocol.DefaultParams(4)
	// Stage 0 arms an initiation at 10d, but stage 1 takes over at 2d: the
	// stale stage-0 timer must be dropped, not delivered cross-stage.
	adv := &Staged{Stages: []Stage{
		{Node: &PartialGeneral{Invitees: []protocol.NodeID{0}, Value: "stale", At: 10 * pp.D}},
		{At: 2 * pp.D, Node: &Silent{}},
	}}
	w, cap0 := adversaryWorld(t, adv, 23)
	w.RunUntil(simtime.Real(30 * pp.D))
	for _, m := range cap0.msgs {
		if m.From == 3 {
			t.Errorf("superseded stage still acted: %v", m)
		}
	}
}

func TestAdaptiveArmsOnObservedEvent(t *testing.T) {
	pp := protocol.DefaultParams(4)
	adv := &Adaptive{
		Trigger: OnKind(1, protocol.Support),
		Then: func() protocol.Node {
			return &PartialGeneral{Invitees: []protocol.NodeID{0}, Value: "armed", At: pp.D}
		},
	}
	w, cap0 := adversaryWorld(t, adv, 24)
	w.RunUntil(simtime.Real(10 * pp.D))
	if len(cap0.msgs) != 0 {
		t.Fatalf("adaptive acted before its trigger: %v", cap0.msgs)
	}
	w.Scheduler().At(w.Now()+100, func() {
		w.Runtime(1).Broadcast(protocol.Message{Kind: protocol.Support, G: 1, M: "v"})
	})
	w.RunUntil(simtime.Real(30 * pp.D))
	sawArmed := false
	for _, m := range cap0.msgs {
		if m.From == 3 && m.Kind == protocol.Initiator && m.M == "armed" {
			sawArmed = true
		}
	}
	if !sawArmed {
		t.Error("adaptive never armed after the trigger event")
	}
}

func TestMirrorVoterReflectsOnlyToSender(t *testing.T) {
	pp := protocol.DefaultParams(4)
	adv := &MirrorVoter{}
	w, cap0 := adversaryWorld(t, adv, 25)
	w.Scheduler().At(100, func() {
		// Node 1 (not node 0) supports a wave; the mirror must answer node
		// 1 alone, so the capture at node 0 sees nothing from the mirror.
		w.Runtime(1).Send(3, protocol.Message{Kind: protocol.Support, G: 1, M: "v"})
	})
	w.RunUntil(simtime.Real(10 * pp.D))
	for _, m := range cap0.msgs {
		if m.From == 3 {
			t.Errorf("mirror leaked a reflection to a third party: %v", m)
		}
	}

	// Now node 0 sends: it must get exactly one mirrored Support back, even
	// if it repeats itself.
	w.Scheduler().At(w.Now()+100, func() {
		w.Runtime(0).Send(3, protocol.Message{Kind: protocol.Support, G: 1, M: "v"})
		w.Runtime(0).Send(3, protocol.Message{Kind: protocol.Support, G: 1, M: "v"})
	})
	w.RunUntil(simtime.Real(20 * pp.D))
	mirrored := 0
	for _, m := range cap0.msgs {
		if m.From == 3 && m.Kind == protocol.Support && m.M == "v" {
			mirrored++
		}
	}
	if mirrored != 1 {
		t.Errorf("node 0 got %d reflections, want exactly 1", mirrored)
	}
}

func TestEdgeSupporterVotesOnThresholdEdge(t *testing.T) {
	// n=4, f=1: ByzQuorum = n−2f = 2, so the edge is 1 distinct sender.
	pp := protocol.DefaultParams(4)
	adv := &EdgeSupporter{}
	w, cap0 := adversaryWorld(t, adv, 26)
	w.Scheduler().At(100, func() {
		w.Runtime(1).Broadcast(protocol.Message{Kind: protocol.Approve, G: 1, M: "v"})
	})
	w.RunUntil(simtime.Real(10 * pp.D))
	votes := 0
	for _, m := range cap0.msgs {
		if m.From == 3 && m.Kind == protocol.Approve && m.M == "v" {
			votes++
		}
	}
	if votes != 1 {
		t.Fatalf("edge supporter votes = %d, want exactly 1 at the n−2f edge", votes)
	}
	// A second sender puts the wave past the edge: no further vote.
	w.Scheduler().At(w.Now()+100, func() {
		w.Runtime(2).Broadcast(protocol.Message{Kind: protocol.Approve, G: 1, M: "v"})
	})
	w.RunUntil(simtime.Real(20 * pp.D))
	votes = 0
	for _, m := range cap0.msgs {
		if m.From == 3 && m.Kind == protocol.Approve && m.M == "v" {
			votes++
		}
	}
	if votes != 1 {
		t.Errorf("edge supporter voted again past the edge: %d votes", votes)
	}
}

func TestNestedCombinatorsRouteTimers(t *testing.T) {
	pp := protocol.DefaultParams(4)
	// Compose inside Staged: the inner part's timer must survive two
	// routing layers and fire with its original tag.
	adv := &Staged{Stages: []Stage{
		{Node: &Composite{Parts: []protocol.Node{
			&Silent{},
			&PartialGeneral{Invitees: []protocol.NodeID{0}, Value: "nested", At: 2 * pp.D},
		}}},
	}}
	w, cap0 := adversaryWorld(t, adv, 27)
	w.RunUntil(simtime.Real(20 * pp.D))
	saw := false
	for _, m := range cap0.msgs {
		if m.From == 3 && m.Kind == protocol.Initiator && m.M == "nested" {
			saw = true
		}
	}
	if !saw {
		t.Error("nested combinator timer never fired through both routing layers")
	}
}
