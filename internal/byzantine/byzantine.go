// Package byzantine provides the adversary strategies used by the tests
// and experiments. Each strategy implements protocol.Node and, in the
// simulator, may type-assert its runtime to simnet.AdversaryRuntime for
// precise timing control (the standard "adversary schedules the network"
// power). Faulty nodes cannot forge sender identities — the transport
// authenticates From once the network is non-faulty, exactly as in the
// paper's model.
package byzantine

import (
	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Silent is a crash-faulty node: it never sends anything.
type Silent struct{}

var _ protocol.Node = (*Silent)(nil)

// Start implements protocol.Node.
func (*Silent) Start(protocol.Runtime) {}

// OnMessage implements protocol.Node.
func (*Silent) OnMessage(protocol.NodeID, protocol.Message) {}

// OnTimer implements protocol.Node.
func (*Silent) OnTimer(protocol.TimerTag) {}

// sendAt uses adversarial delay control when available, falling back to a
// plain send.
func sendAt(rt protocol.Runtime, to protocol.NodeID, m protocol.Message, delay simtime.Duration) {
	if adv, ok := rt.(simnet.AdversaryRuntime); ok {
		adv.SendAt(to, m, delay)
		return
	}
	rt.Send(to, m)
}

// Yeasayer is a maximally helpful faulty participant: it immediately sends
// support, approve and ready for every (G, m) wave it observes, ignoring
// the exclusivity and rate-limiting rules a correct node obeys. It is the
// strongest amplifier for an equivocating General.
type Yeasayer struct {
	rt   protocol.Runtime
	sent map[struct {
		k protocol.MsgKind
		g protocol.NodeID
		m protocol.Value
	}]bool
}

var _ protocol.Node = (*Yeasayer)(nil)

// Start implements protocol.Node.
func (y *Yeasayer) Start(rt protocol.Runtime) {
	y.rt = rt
	y.sent = make(map[struct {
		k protocol.MsgKind
		g protocol.NodeID
		m protocol.Value
	}]bool)
}

// OnMessage pushes every observed wave.
func (y *Yeasayer) OnMessage(_ protocol.NodeID, m protocol.Message) {
	switch m.Kind {
	case protocol.Initiator, protocol.Support, protocol.Approve, protocol.Ready:
		y.push(m.G, m.M)
	}
}

// OnTimer implements protocol.Node.
func (y *Yeasayer) OnTimer(protocol.TimerTag) {}

func (y *Yeasayer) push(g protocol.NodeID, v protocol.Value) {
	for _, kind := range []protocol.MsgKind{protocol.Support, protocol.Approve, protocol.Ready} {
		key := struct {
			k protocol.MsgKind
			g protocol.NodeID
			m protocol.Value
		}{kind, g, v}
		if y.sent[key] {
			continue
		}
		y.sent[key] = true
		y.rt.Broadcast(protocol.Message{Kind: kind, G: g, M: v})
	}
}

// Equivocator is a faulty General that disseminates different values to
// different partitions of the nodes at time At (on its local clock), and
// otherwise behaves as a Yeasayer for every wave — the canonical attack on
// the Uniqueness property IA-4.
type Equivocator struct {
	Yeasayer
	// Values are sent round-robin across recipients (≥ 2 for a real
	// equivocation).
	Values []protocol.Value
	// At is the local time of the attack.
	At simtime.Duration
}

var _ protocol.Node = (*Equivocator)(nil)

// Start arms the attack timer.
func (e *Equivocator) Start(rt protocol.Runtime) {
	e.Yeasayer.Start(rt)
	rt.After(e.At, protocol.TimerTag{Name: "equivocate"})
}

// OnTimer fires the split initiation.
func (e *Equivocator) OnTimer(tag protocol.TimerTag) {
	if tag.Name != "equivocate" || len(e.Values) == 0 {
		return
	}
	pp := e.rt.Params()
	self := e.rt.ID()
	for i := 0; i < pp.N; i++ {
		v := e.Values[i%len(e.Values)]
		e.rt.Send(protocol.NodeID(i), protocol.Message{Kind: protocol.Initiator, G: self, M: v})
	}
	// Push all of its own values too.
	for _, v := range e.Values {
		e.push(self, v)
	}
}

// PartialGeneral is a faulty General that sends its Initiator message only
// to a chosen subset of the nodes (and supports its own wave), leaving the
// rest to find out — or not — through the primitive itself.
type PartialGeneral struct {
	rt protocol.Runtime
	// Invitees receive the Initiator message.
	Invitees []protocol.NodeID
	Value    protocol.Value
	// At is the local time of the initiation.
	At simtime.Duration
	// SupportDelay delays the General's own support messages.
	SupportDelay simtime.Duration
}

var _ protocol.Node = (*PartialGeneral)(nil)

// Start arms the initiation timer.
func (p *PartialGeneral) Start(rt protocol.Runtime) {
	p.rt = rt
	rt.After(p.At, protocol.TimerTag{Name: "partial-init"})
}

// OnMessage implements protocol.Node.
func (p *PartialGeneral) OnMessage(protocol.NodeID, protocol.Message) {}

// OnTimer fires the partial initiation.
func (p *PartialGeneral) OnTimer(tag protocol.TimerTag) {
	if tag.Name != "partial-init" {
		return
	}
	self := p.rt.ID()
	for _, to := range p.Invitees {
		p.rt.Send(to, protocol.Message{Kind: protocol.Initiator, G: self, M: p.Value})
	}
	for _, kind := range []protocol.MsgKind{protocol.Support, protocol.Approve, protocol.Ready} {
		m := protocol.Message{Kind: kind, G: self, M: p.Value}
		for i := 0; i < p.rt.Params().N; i++ {
			sendAt(p.rt, protocol.NodeID(i), m, p.SupportDelay)
		}
	}
}

// LateSupporter is a colluding faulty node: when it observes a wave for
// (G, Value) it contributes its support/approve/ready messages Delay late,
// stretching the primitive's stage windows as far as they allow.
type LateSupporter struct {
	rt protocol.Runtime
	// G and Value select the wave to collude with; empty Value colludes
	// with any value of G.
	G     protocol.NodeID
	Value protocol.Value
	// Delay postpones each contribution (clamped to the network's legal
	// delay range; combine with a timer for longer stretches).
	Delay simtime.Duration
	// HoldLocal additionally defers the send decision on the local clock.
	HoldLocal simtime.Duration

	sent map[struct {
		k protocol.MsgKind
		m protocol.Value
	}]bool
}

var _ protocol.Node = (*LateSupporter)(nil)

// Start implements protocol.Node.
func (l *LateSupporter) Start(rt protocol.Runtime) {
	l.rt = rt
	l.sent = make(map[struct {
		k protocol.MsgKind
		m protocol.Value
	}]bool)
}

// OnMessage watches for the colluding wave.
func (l *LateSupporter) OnMessage(_ protocol.NodeID, m protocol.Message) {
	if m.G != l.G {
		return
	}
	if l.Value != protocol.Bottom && m.M != l.Value {
		return
	}
	switch m.Kind {
	case protocol.Initiator, protocol.Support:
		l.contribute(protocol.Support, m.M)
	case protocol.Approve:
		l.contribute(protocol.Approve, m.M)
	case protocol.Ready:
		l.contribute(protocol.Ready, m.M)
	}
}

// OnTimer sends a held contribution.
func (l *LateSupporter) OnTimer(tag protocol.TimerTag) {
	if tag.Name != "late-send" {
		return
	}
	l.broadcastAt(protocol.Message{Kind: protocol.MsgKind(tag.K), G: l.G, M: tag.M}, l.Delay)
}

func (l *LateSupporter) contribute(kind protocol.MsgKind, v protocol.Value) {
	key := struct {
		k protocol.MsgKind
		m protocol.Value
	}{kind, v}
	if l.sent[key] {
		return
	}
	l.sent[key] = true
	if l.HoldLocal > 0 {
		l.rt.After(l.HoldLocal, protocol.TimerTag{Name: "late-send", G: l.G, M: v, K: int(kind)})
		return
	}
	l.broadcastAt(protocol.Message{Kind: kind, G: l.G, M: v}, l.Delay)
}

func (l *LateSupporter) broadcastAt(m protocol.Message, delay simtime.Duration) {
	for i := 0; i < l.rt.Params().N; i++ {
		sendAt(l.rt, protocol.NodeID(i), m, delay)
	}
}
