package byzantine

import (
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// capture is a correct-side probe collecting whatever the adversary sends.
type capture struct {
	rt   protocol.Runtime
	msgs []protocol.Message
}

func (c *capture) Start(rt protocol.Runtime)                       { c.rt = rt }
func (c *capture) OnMessage(_ protocol.NodeID, m protocol.Message) { c.msgs = append(c.msgs, m) }
func (c *capture) OnTimer(protocol.TimerTag)                       {}

func (c *capture) kinds() map[protocol.MsgKind]int {
	out := make(map[protocol.MsgKind]int)
	for _, m := range c.msgs {
		out[m.Kind]++
	}
	return out
}

// adversaryWorld wires the adversary at node 3 and captures at node 0.
func adversaryWorld(t *testing.T, adv protocol.Node, seed int64) (*simnet.World, *capture) {
	t.Helper()
	pp := protocol.DefaultParams(4)
	w, err := simnet.New(simnet.Config{Params: pp, Seed: seed})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	cap0 := &capture{}
	w.SetNode(0, cap0)
	w.SetNode(1, &capture{})
	w.SetNode(2, &capture{})
	w.SetNode(3, adv)
	w.Start()
	return w, cap0
}

func TestSilentSendsNothing(t *testing.T) {
	w, cap0 := adversaryWorld(t, &Silent{}, 1)
	w.RunUntil(100000)
	if len(cap0.msgs) != 0 {
		t.Errorf("Silent sent %d messages", len(cap0.msgs))
	}
}

func TestYeasayerAmplifiesWave(t *testing.T) {
	w, cap0 := adversaryWorld(t, &Yeasayer{}, 2)
	w.Scheduler().At(100, func() {
		w.Runtime(1).Broadcast(protocol.Message{Kind: protocol.Support, G: 1, M: "v"})
	})
	w.RunUntil(100000)
	k := cap0.kinds()
	if k[protocol.Support] < 2 || k[protocol.Approve] < 1 || k[protocol.Ready] < 1 {
		t.Errorf("Yeasayer amplification missing: %v", k)
	}
}

func TestYeasayerPushesEachWaveOnce(t *testing.T) {
	w, cap0 := adversaryWorld(t, &Yeasayer{}, 3)
	for i := 0; i < 5; i++ {
		at := simtime.Real(100 + i*500)
		w.Scheduler().At(at, func() {
			w.Runtime(1).Broadcast(protocol.Message{Kind: protocol.Support, G: 1, M: "v"})
		})
	}
	w.RunUntil(100000)
	fromAdv := 0
	for _, m := range cap0.msgs {
		if m.From == 3 && m.Kind == protocol.Ready && m.M == "v" {
			fromAdv++
		}
	}
	if fromAdv != 1 {
		t.Errorf("Yeasayer sent ready %d times for one wave, want 1", fromAdv)
	}
}

func TestEquivocatorRoundRobinsValues(t *testing.T) {
	adv := &Equivocator{Values: []protocol.Value{"a", "b"}, At: 500}
	pp := protocol.DefaultParams(4)
	w, err := simnet.New(simnet.Config{Params: pp, Seed: 4})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	caps := make([]*capture, 4)
	for i := 0; i < 3; i++ {
		caps[i] = &capture{}
		w.SetNode(protocol.NodeID(i), caps[i])
	}
	w.SetNode(3, adv)
	w.Start()
	w.RunUntil(100000)
	// Recipients i get Values[i % 2]: node 0 "a", node 1 "b".
	want := []protocol.Value{"a", "b", "a"}
	for i := 0; i < 3; i++ {
		var got protocol.Value
		for _, m := range caps[i].msgs {
			if m.Kind == protocol.Initiator && m.From == 3 {
				got = m.M
			}
		}
		if got != want[i] {
			t.Errorf("node %d received Initiator %q, want %q", i, got, want[i])
		}
	}
}

func TestPartialGeneralInvitesSubset(t *testing.T) {
	adv := &PartialGeneral{Invitees: []protocol.NodeID{1}, Value: "p", At: 500}
	pp := protocol.DefaultParams(4)
	w, err := simnet.New(simnet.Config{Params: pp, Seed: 5})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	caps := make([]*capture, 4)
	for i := 0; i < 3; i++ {
		caps[i] = &capture{}
		w.SetNode(protocol.NodeID(i), caps[i])
	}
	w.SetNode(3, adv)
	w.Start()
	w.RunUntil(100000)
	for i := 0; i < 3; i++ {
		sawInit := false
		sawSupport := false
		for _, m := range caps[i].msgs {
			if m.From != 3 {
				continue
			}
			if m.Kind == protocol.Initiator {
				sawInit = true
			}
			if m.Kind == protocol.Support {
				sawSupport = true
			}
		}
		if (i == 1) != sawInit {
			t.Errorf("node %d Initiator receipt = %v, want %v", i, sawInit, i == 1)
		}
		if !sawSupport {
			t.Errorf("node %d missing the General's support wave", i)
		}
	}
}

func TestLateSupporterContributesOncePerKind(t *testing.T) {
	adv := &LateSupporter{G: 1, Value: "v"}
	w, cap0 := adversaryWorld(t, adv, 6)
	w.Scheduler().At(100, func() {
		w.Runtime(1).Broadcast(protocol.Message{Kind: protocol.Support, G: 1, M: "v"})
		w.Runtime(1).Broadcast(protocol.Message{Kind: protocol.Support, G: 1, M: "v"})
		w.Runtime(1).Broadcast(protocol.Message{Kind: protocol.Approve, G: 1, M: "v"})
	})
	w.RunUntil(100000)
	counts := map[protocol.MsgKind]int{}
	for _, m := range cap0.msgs {
		if m.From == 3 {
			counts[m.Kind]++
		}
	}
	if counts[protocol.Support] != 1 || counts[protocol.Approve] != 1 {
		t.Errorf("LateSupporter contributions = %v, want one per kind", counts)
	}
}

func TestLateSupporterIgnoresOtherGenerals(t *testing.T) {
	adv := &LateSupporter{G: 2}
	w, cap0 := adversaryWorld(t, adv, 7)
	w.Scheduler().At(100, func() {
		w.Runtime(1).Broadcast(protocol.Message{Kind: protocol.Support, G: 1, M: "v"})
	})
	w.RunUntil(100000)
	for _, m := range cap0.msgs {
		if m.From == 3 {
			t.Errorf("LateSupporter reacted to a foreign General: %v", m)
		}
	}
}

func TestLateSupporterHoldLocal(t *testing.T) {
	pp := protocol.DefaultParams(4)
	adv := &LateSupporter{G: 1, HoldLocal: 5 * pp.D}
	w, cap0 := adversaryWorld(t, adv, 8)
	var sentAt simtime.Real
	w.Scheduler().At(100, func() {
		sentAt = w.Now()
		w.Runtime(1).Broadcast(protocol.Message{Kind: protocol.Support, G: 1, M: "v"})
	})
	w.RunUntil(simtime.Real(20 * pp.D))
	for _, m := range cap0.msgs {
		if m.From == 3 && m.Kind == protocol.Support {
			return // held contribution arrived
		}
	}
	_ = sentAt
	t.Error("held contribution never arrived")
}

func TestSpammerBurstsAndStops(t *testing.T) {
	pp := protocol.DefaultParams(4)
	adv := &Spammer{Every: pp.D, Burst: 8, Stop: 3 * pp.D}
	w, cap0 := adversaryWorld(t, adv, 9)
	w.RunUntil(simtime.Real(50 * pp.D))
	if len(cap0.msgs) == 0 {
		t.Fatal("Spammer sent nothing")
	}
	// After Stop, no further messages: find the latest arrival.
	lastBurst := len(cap0.msgs)
	w.RunUntil(simtime.Real(100 * pp.D))
	if len(cap0.msgs) != lastBurst {
		t.Errorf("Spammer kept sending after Stop: %d -> %d", lastBurst, len(cap0.msgs))
	}
}

func TestReplayerReplaysCapture(t *testing.T) {
	pp := protocol.DefaultParams(4)
	adv := &Replayer{Delay: 10 * pp.D}
	w, cap0 := adversaryWorld(t, adv, 10)
	w.Scheduler().At(100, func() {
		w.Runtime(1).Broadcast(protocol.Message{Kind: protocol.Ready, G: 1, M: "v"})
	})
	w.RunUntil(simtime.Real(50 * pp.D))
	replayed := false
	for _, m := range cap0.msgs {
		// The replay arrives under the replayer's own identity: the
		// transport prevents re-sending as the original sender.
		if m.From == 3 && m.Kind == protocol.Ready && m.M == "v" {
			replayed = true
		}
	}
	if !replayed {
		t.Error("Replayer never replayed the capture")
	}
}

func TestEchoForgerEmitsSecondPhase(t *testing.T) {
	pp := protocol.DefaultParams(4)
	adv := &EchoForger{G: 1, ForgedP: 2, ForgedV: "f", K: 1, At: 2 * pp.D}
	w, cap0 := adversaryWorld(t, adv, 11)
	w.RunUntil(simtime.Real(20 * pp.D))
	k := cap0.kinds()
	if k[protocol.Echo] != 1 || k[protocol.InitPrime] != 1 || k[protocol.EchoPrime] != 1 {
		t.Errorf("EchoForger output = %v, want one of each second-phase kind", k)
	}
	for _, m := range cap0.msgs {
		if m.P != 2 || m.M != "f" {
			t.Errorf("forged triple wrong: %+v", m)
		}
	}
}
