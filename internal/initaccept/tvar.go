package initaccept

import (
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// updates tracks the update history of one of the paper's timed variables
// (lastq(G) or lastq(G,m)). Every assignment in Fig. 2 stores the current
// local time, so the variable's value and its update instant coincide; the
// cleanup block then expires the variable when its stored time falls
// outside [τq − expiry, τq].
//
// Line K1 additionally needs the variable's state d time units in the past
// ("lastq(G,m) = ⊥ at τq − d"), so a short history of update times is kept
// rather than just the newest.
type updates struct {
	times []simtime.Local // ascending update times
}

// touch records an update at now. It returns true when this changed state
// (i.e. now is not already the newest recorded time).
func (u *updates) touch(now simtime.Local) bool {
	if n := len(u.times); n > 0 && u.times[n-1] == now {
		return false
	}
	u.times = append(u.times, now)
	return true
}

// definedAt reports whether the variable held an unexpired value at local
// time t: some update u ≤ t exists with t − u ≤ expiry. Future-stamped
// updates (transient residue) never count.
func (u *updates) definedAt(t simtime.Local, expiry simtime.Duration, p protocol.Params) bool {
	for i := len(u.times) - 1; i >= 0; i-- {
		age := p.Sub(t, u.times[i])
		if age < 0 {
			continue // update after t (or future garbage)
		}
		return age <= expiry
	}
	return false
}

// defined reports whether the variable is non-⊥ right now.
func (u *updates) defined(now simtime.Local, expiry simtime.Duration, p protocol.Params) bool {
	return u.definedAt(now, expiry, p)
}

// newest returns the latest non-future update time.
func (u *updates) newest(now simtime.Local, p protocol.Params) (simtime.Local, bool) {
	for i := len(u.times) - 1; i >= 0; i-- {
		if p.Sub(now, u.times[i]) >= 0 {
			return u.times[i], true
		}
	}
	return 0, false
}

// prune drops updates older than keep, and future garbage, retaining the
// newest entry at or before now−keep so definedAt stays answerable for
// recent queries.
func (u *updates) prune(now simtime.Local, keep simtime.Duration, p protocol.Params) {
	var kept []simtime.Local
	for _, t := range u.times {
		age := p.Sub(now, t)
		if age < 0 || age > keep {
			continue
		}
		kept = append(kept, t)
	}
	u.times = kept
}

// inject installs an arbitrary update time (transient-fault injector only).
func (u *updates) inject(t simtime.Local) { u.times = append(u.times, t) }
