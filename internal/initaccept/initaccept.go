// Package initaccept implements the Initiator-Accept primitive of the
// paper (Fig. 2): the self-stabilizing mechanism by which all correct
// nodes associate a consistent local-time anchor τG with a (possibly
// faulty) General's initiation and converge to a single candidate value.
//
// The primitive guarantees, once the system is stable and n > 3f
// (Theorem 1):
//
//	IA-1 Correctness    — a correct General's value is I-accepted by all
//	                      correct nodes within 4d, within 2d of each
//	                      other, with recording times within d.
//	IA-2 Unforgeability — no I-accept without a correct invocation.
//	IA-3 Δagr-Relay     — one correct I-accept (within Δagr of its
//	                      anchor) pulls every correct node along within
//	                      2d, anchors within 6d.
//	IA-4 Uniqueness     — anchors for different values are > 4d apart;
//	                      for the same value they are ≤ 6d or > 2Δrmv−3d
//	                      apart.
package initaccept

import (
	"ssbyz/internal/msglog"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// sentKey dedupes our own sends per (kind, value). The paper lets nodes
// re-send the same message repeatedly and explicitly permits optimizations
// that avoid it; suppression windows are chosen so a legitimate later wave
// (spaced by the sending-validity criteria) is never suppressed.
type sentKey struct {
	kind protocol.MsgKind
	m    protocol.Value
}

// IAcceptFn receives the primitive's output: the node I-accepts ⟨G, m, τG⟩.
type IAcceptFn func(m protocol.Value, tauG simtime.Local)

// Instance is one node's state for the Initiator-Accept primitive of a
// single General G. It is driven by a single event loop (no locking).
type Instance struct {
	rt protocol.Runtime
	g  protocol.NodeID
	pp protocol.Params

	log *msglog.Log

	// iValues is the i_values[G,*] vector: candidate recording times.
	iValues map[protocol.Value]simtime.Local
	// lastG / lastGM are the rate-limiting variables lastq(G), lastq(G,m).
	lastG  updates
	lastGM map[protocol.Value]*updates
	// ready holds the set time of each ready_{G,m} flag (decays at Δrmv).
	ready map[protocol.Value]simtime.Local

	sent           map[sentKey]simtime.Local
	lastSupportAny simtime.Local
	hasSupportAny  bool

	// pending holds Initiator receipts awaiting a successful Block K
	// evaluation; entries are retried briefly and then dropped.
	pending map[protocol.Value]simtime.Local
	// ignoreUntil implements "ignore all (G,m) messages for 3d" after N4.
	ignoreUntil map[protocol.Value]simtime.Local

	// lineTimes records the completion times of lines L4/M4/N4 per value,
	// used by a correct General to detect failed invocations (IG3).
	lineL4, lineM4, lineN4 map[protocol.Value]simtime.Local

	// actVals/actStates list the values Evaluate iterates (and their
	// cached per-value state) in first-seen order (deterministic). They
	// grow as values gain live state and are rebuilt on Cleanup/reset, so
	// Evaluate does not re-derive the set from maps on every incoming
	// message (the hot path, DESIGN.md §5).
	actVals   []protocol.Value
	actStates []*valState
	vals      map[protocol.Value]*valState

	onIAccept IAcceptFn
}

// valState caches one value's msglog key resolutions, so the per-message
// block evaluation skips the Key-struct hash (which includes the value
// string) on every count and record.
type valState struct {
	inAct                      bool
	hSupport, hApprove, hReady msglog.Handle
}

// New creates the instance for General g at the node owning rt.
func New(rt protocol.Runtime, g protocol.NodeID, onIAccept IAcceptFn) *Instance {
	pp := rt.Params()
	return &Instance{
		rt:          rt,
		g:           g,
		pp:          pp,
		log:         msglog.New(pp.Wrap),
		iValues:     make(map[protocol.Value]simtime.Local),
		lastGM:      make(map[protocol.Value]*updates),
		ready:       make(map[protocol.Value]simtime.Local),
		sent:        make(map[sentKey]simtime.Local),
		pending:     make(map[protocol.Value]simtime.Local),
		ignoreUntil: make(map[protocol.Value]simtime.Local),
		lineL4:      make(map[protocol.Value]simtime.Local),
		lineM4:      make(map[protocol.Value]simtime.Local),
		lineN4:      make(map[protocol.Value]simtime.Local),
		vals:        make(map[protocol.Value]*valState),
		onIAccept:   onIAccept,
	}
}

// noteValue marks m live for the fixed-point evaluator and returns its
// cached state.
func (ia *Instance) noteValue(m protocol.Value) *valState {
	vs, ok := ia.vals[m]
	if !ok {
		vs = &valState{
			hSupport: ia.log.NewHandleSized(msglog.Key{Kind: protocol.Support, G: ia.g, M: m}, ia.pp.N),
			hApprove: ia.log.NewHandleSized(msglog.Key{Kind: protocol.Approve, G: ia.g, M: m}, ia.pp.N),
			hReady:   ia.log.NewHandleSized(msglog.Key{Kind: protocol.Ready, G: ia.g, M: m}, ia.pp.N),
		}
		ia.vals[m] = vs
	}
	if !vs.inAct {
		vs.inAct = true
		ia.actVals = append(ia.actVals, m)
		ia.actStates = append(ia.actStates, vs)
	}
	return vs
}

// rebuildActive recomputes the live-value list from current state
// (pending invocations, logged receptions, ready flags), keeping
// first-seen order for survivors. Values that drop out lose their cached
// state too (a later reappearance rebuilds it).
func (ia *Instance) rebuildActive() {
	old := ia.actVals
	for _, vs := range ia.actStates {
		vs.inAct = false
	}
	ia.actVals = nil
	ia.actStates = ia.actStates[:0]
	for _, m := range old {
		if _, ok := ia.pending[m]; ok {
			ia.noteValue(m)
			continue
		}
		if _, ok := ia.ready[m]; ok {
			ia.noteValue(m)
		}
	}
	ia.log.ForEachKey(func(k msglog.Key) { ia.noteValue(k.M) })
	// Pending/ready values not in the old list cannot exist (every path
	// that adds one calls noteValue), so the rebuilt list is complete.
	for m, vs := range ia.vals {
		if !vs.inAct {
			delete(ia.vals, m)
		}
	}
}

// General returns the General this instance tracks.
func (ia *Instance) General() protocol.NodeID { return ia.g }

func (ia *Instance) d() simtime.Duration { return ia.pp.D }

// gm returns (creating if needed) the lastq(G,m) history for m.
func (ia *Instance) gm(m protocol.Value) *updates {
	u, ok := ia.lastGM[m]
	if !ok {
		u = &updates{}
		ia.lastGM[m] = u
	}
	return u
}

// ignored reports whether (G,m) messages are inside the 3d post-N4 ignore
// window.
func (ia *Instance) ignored(m protocol.Value, now simtime.Local) bool {
	until, ok := ia.ignoreUntil[m]
	if !ok {
		return false
	}
	if ia.pp.Sub(until, now) > 0 {
		return true
	}
	delete(ia.ignoreUntil, m)
	return false
}

// iValue returns the unexpired i_values[G,m] entry. Entries decay Δrmv
// after their recording time; future-stamped entries are clearly wrong.
func (ia *Instance) iValue(m protocol.Value, now simtime.Local) (simtime.Local, bool) {
	rec, ok := ia.iValues[m]
	if !ok {
		return 0, false
	}
	age := ia.pp.Sub(now, rec)
	if age < 0 || age > ia.pp.DeltaRmv() {
		delete(ia.iValues, m)
		return 0, false
	}
	return rec, true
}

// anyOtherIValue reports whether i_values[G,m′] is defined for some m′≠m.
func (ia *Instance) anyOtherIValue(m protocol.Value, now simtime.Local) bool {
	for m2 := range ia.iValues {
		if m2 == m {
			continue
		}
		if _, ok := ia.iValue(m2, now); ok {
			return true
		}
	}
	return false
}

// readyDefined reports whether ready_{G,m} holds an unexpired true.
func (ia *Instance) readyDefined(m protocol.Value, now simtime.Local) bool {
	at, ok := ia.ready[m]
	if !ok {
		return false
	}
	age := ia.pp.Sub(now, at)
	if age < 0 || age > ia.pp.DeltaRmv() {
		delete(ia.ready, m)
		return false
	}
	return true
}

// canSend applies the send-suppression window.
func (ia *Instance) canSend(kind protocol.MsgKind, m protocol.Value, now simtime.Local) bool {
	at, ok := ia.sent[sentKey{kind, m}]
	if !ok {
		return true
	}
	age := ia.pp.Sub(now, at)
	return age < 0 || age > ia.pp.DeltaRmv()
}

func (ia *Instance) markSent(kind protocol.MsgKind, m protocol.Value, now simtime.Local) {
	ia.sent[sentKey{kind, m}] = now
}

// lastGExpiry and lastGMExpiry are the cleanup-block expiry ages.
func (ia *Instance) lastGExpiry() simtime.Duration { return ia.pp.Delta0() - 6*ia.d() }
func (ia *Instance) lastGMExpiry() simtime.Duration {
	return 2*ia.pp.DeltaRmv() + 9*ia.d()
}

// Invoke processes receipt of (Initiator, G, m): Block Q1/K. The caller
// (the agreement layer) has already authenticated that the message came
// from G.
func (ia *Instance) Invoke(m protocol.Value, now simtime.Local) {
	if ia.ignored(m, now) {
		return
	}
	ia.pending[m] = now
	ia.noteValue(m)
	// Retry Block K shortly in case a condition (e.g. "sent support in the
	// last d") clears within the allowance.
	ia.rt.After(ia.d(), protocol.TimerTag{Name: TagRetry, G: ia.g, M: m})
	ia.rt.After(2*ia.d(), protocol.TimerTag{Name: TagRetry, G: ia.g, M: m})
	ia.Evaluate(now)
}

// Timer tag names used by the instance.
const (
	// TagRetry re-evaluates pending Block K invocations.
	TagRetry = "ia-retry"
	// TagSweep triggers periodic decay of logs and histories.
	TagSweep = "ia-sweep"
)

// OnTimer handles this instance's timer tags.
func (ia *Instance) OnTimer(tag protocol.TimerTag) {
	now := ia.rt.Now()
	switch tag.Name {
	case TagRetry:
		ia.Evaluate(now)
	case TagSweep:
		ia.Cleanup(now)
	}
}

// OnMessage records an incoming support/approve/ready message and
// re-evaluates the primitive. from is authenticated by the transport.
func (ia *Instance) OnMessage(from protocol.NodeID, m protocol.Message) {
	if m.G != ia.g {
		return
	}
	switch m.Kind {
	case protocol.Support, protocol.Approve, protocol.Ready:
	default:
		return
	}
	now := ia.rt.Now()
	if ia.ignored(m.M, now) {
		return
	}
	vs := ia.noteValue(m.M)
	switch m.Kind {
	case protocol.Support:
		ia.log.RecordVia(&vs.hSupport, from, now)
	case protocol.Approve:
		ia.log.RecordVia(&vs.hApprove, from, now)
	case protocol.Ready:
		ia.log.RecordVia(&vs.hReady, from, now)
	}
	ia.Evaluate(now)
}

// Evaluate runs all enabled lines to a fixed point at local time now. The
// iteration set is the maintained live-value list (noteValue), so a quiet
// re-evaluation allocates nothing, and each block hides its window
// queries behind an O(1) record-count guard (msglog.LenVia): a threshold
// of c distinct senders cannot hold with fewer than c records in the log.
func (ia *Instance) Evaluate(now simtime.Local) {
	for iter := 0; iter < 8; iter++ {
		changed := false
		for i := 0; i < len(ia.actVals); i++ {
			m, vs := ia.actVals[i], ia.actStates[i]
			if ia.tryK(m, now) {
				changed = true
			}
			if ia.tryL(m, vs, now) {
				changed = true
			}
			if ia.tryM(m, vs, now) {
				changed = true
			}
			if ia.tryN(m, vs, now) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// tryK evaluates Block K for a pending invocation of value m.
//
//	K1. if i_values[G,m′] = ⊥ for every m′ ≠ m  &  lastq(G) = ⊥  &
//	    did not send any (support,G,∗) in [τq−d, τq]  &
//	    lastq(G,m) = ⊥ at τq−d then
//	K2. i_values[G,m] := τq − d;  send (support,G,m) to all;
//	    lastq(G,m) = τq
func (ia *Instance) tryK(m protocol.Value, now simtime.Local) bool {
	recvAt, ok := ia.pending[m]
	if !ok {
		return false
	}
	// Drop stale invocations: Block K is tied to the receipt instant, with
	// a short retry allowance.
	if age := ia.pp.Sub(now, recvAt); age < 0 || age > 2*ia.d() {
		delete(ia.pending, m)
		return false
	}
	if ia.anyOtherIValue(m, now) {
		return false
	}
	if ia.lastG.defined(now, ia.lastGExpiry(), ia.pp) {
		return false
	}
	if ia.hasSupportAny {
		age := ia.pp.Sub(now, ia.lastSupportAny)
		if age >= 0 && age <= ia.d() {
			return false
		}
	}
	if ia.gm(m).definedAt(ia.pp.Add(now, -ia.d()), ia.lastGMExpiry(), ia.pp) {
		return false
	}
	// K2.
	delete(ia.pending, m)
	ia.iValues[m] = ia.pp.Add(now, -ia.d())
	ia.rt.Broadcast(protocol.Message{Kind: protocol.Support, G: ia.g, M: m})
	ia.lastSupportAny = now
	ia.hasSupportAny = true
	ia.markSent(protocol.Support, m, now)
	ia.gm(m).touch(now)
	return true
}

// tryL evaluates Block L for value m.
//
//	L1. support from ≥ n−2f distinct nodes in [τq−α, τq], α ≤ 4d (shortest)
//	L2.   i_values[G,m] := max{i_values[G,m], τq−α−2d}; lastq(G,m) = τq
//	L3. support from ≥ n−f distinct nodes in [τq−2d, τq]
//	L4.   send (approve,G,m) to all; lastq(G,m) = τq
func (ia *Instance) tryL(m protocol.Value, vs *valState, now simtime.Local) bool {
	if ia.log.LenVia(&vs.hSupport) < ia.pp.ByzQuorum() {
		return false // no support threshold can hold yet (L1 and L3 both need ≥ n−2f records)
	}
	changed := false
	if tc, ok := ia.log.KthNewestVia(&vs.hSupport, ia.pp.ByzQuorum(), now); ok {
		if alpha := ia.pp.Sub(now, tc); alpha >= 0 && alpha <= 4*ia.d() {
			rec := ia.pp.Add(tc, -2*ia.d())
			if cur, ok := ia.iValue(m, now); !ok || ia.pp.Sub(rec, cur) > 0 {
				ia.iValues[m] = rec
				changed = true
			}
			if ia.gm(m).touch(now) {
				changed = true
			}
		}
	}
	if ia.log.CountWithinVia(&vs.hSupport, 2*ia.d(), now) >= ia.pp.Quorum() {
		if ia.canSend(protocol.Approve, m, now) {
			ia.rt.Broadcast(protocol.Message{Kind: protocol.Approve, G: ia.g, M: m})
			ia.markSent(protocol.Approve, m, now)
			ia.lineL4[m] = now
			changed = true
		}
		if ia.gm(m).touch(now) {
			changed = true
		}
	}
	return changed
}

// tryM evaluates Block M for value m.
//
//	M1. approve from ≥ n−2f distinct nodes in [τq−5d, τq]
//	M2.   ready_{G,m} = true; lastq(G,m) = τq
//	M3. approve from ≥ n−f distinct nodes in [τq−3d, τq]
//	M4.   send (ready,G,m) to all; lastq(G,m) = τq
func (ia *Instance) tryM(m protocol.Value, vs *valState, now simtime.Local) bool {
	if ia.log.LenVia(&vs.hApprove) < ia.pp.ByzQuorum() {
		return false // M1 and M3 both need ≥ n−2f approve records
	}
	changed := false
	if ia.log.CountWithinVia(&vs.hApprove, 5*ia.d(), now) >= ia.pp.ByzQuorum() {
		if at, ok := ia.ready[m]; !ok || at != now {
			ia.ready[m] = now
			changed = true
		}
		if ia.gm(m).touch(now) {
			changed = true
		}
	}
	if ia.log.CountWithinVia(&vs.hApprove, 3*ia.d(), now) >= ia.pp.Quorum() {
		if ia.canSend(protocol.Ready, m, now) {
			ia.rt.Broadcast(protocol.Message{Kind: protocol.Ready, G: ia.g, M: m})
			ia.markSent(protocol.Ready, m, now)
			ia.lineM4[m] = now
			changed = true
		}
		if ia.gm(m).touch(now) {
			changed = true
		}
	}
	return changed
}

// tryN evaluates Block N for value m. Block N is untimed; staleness is
// bounded only by message decay (Δrmv), which the count honors.
//
//	N1. ready_{G,m} & ready from ≥ n−2f distinct nodes
//	N2.   send (ready,G,m) to all; lastq(G,m) = τq
//	N3. ready_{G,m} & ready from ≥ n−f distinct nodes
//	N4.   τG := i_values[G,m]; i_values[G,∗] := ⊥;
//	      remove all (G,m) messages, ignore them for 3d;
//	      I-accept ⟨G,m,τG⟩; lastq(G,m) = τq; lastq(G) := τq
func (ia *Instance) tryN(m protocol.Value, vs *valState, now simtime.Local) bool {
	if !ia.readyDefined(m, now) {
		return false
	}
	if ia.log.LenVia(&vs.hReady) < ia.pp.ByzQuorum() {
		return false // N1 and N3 both need ≥ n−2f ready records
	}
	changed := false
	cnt := ia.log.CountWithinVia(&vs.hReady, ia.pp.DeltaRmv(), now)
	if cnt >= ia.pp.ByzQuorum() && ia.canSend(protocol.Ready, m, now) {
		ia.rt.Broadcast(protocol.Message{Kind: protocol.Ready, G: ia.g, M: m})
		ia.markSent(protocol.Ready, m, now)
		changed = true
		if ia.gm(m).touch(now) {
			changed = true
		}
	}
	if cnt >= ia.pp.Quorum() {
		tauG, ok := ia.iValue(m, now)
		if !ok {
			// The candidate recording time decayed (possible only outside
			// the relay precondition); the acceptance cannot anchor.
			return changed
		}
		// N4.
		ia.iValues = make(map[protocol.Value]simtime.Local)
		ia.log.RemoveMatching(func(k msglog.Key) bool { return k.M == m })
		ia.ignoreUntil[m] = ia.pp.Add(now, 3*ia.d())
		ia.gm(m).touch(now)
		ia.lastG.touch(now)
		ia.lineN4[m] = now
		delete(ia.pending, m)
		ia.rt.Trace(protocol.TraceEvent{
			Kind: protocol.EvIAccept, G: ia.g, M: m, TauG: tauG,
		})
		if ia.onIAccept != nil {
			ia.onIAccept(m, tauG)
		}
		return true
	}
	return changed
}

// Cleanup applies the background decay rules.
func (ia *Instance) Cleanup(now simtime.Local) {
	ia.log.DecayOlderThan(ia.pp.DeltaRmv(), now)
	ia.lastG.prune(now, ia.lastGExpiry()+2*ia.d(), ia.pp)
	for m, u := range ia.lastGM {
		u.prune(now, ia.lastGMExpiry()+2*ia.d(), ia.pp)
		if len(u.times) == 0 {
			delete(ia.lastGM, m)
		}
	}
	for m := range ia.ready {
		ia.readyDefined(m, now) // deletes when expired
	}
	for m := range ia.iValues {
		ia.iValue(m, now) // deletes when expired
	}
	for k, at := range ia.sent {
		age := ia.pp.Sub(now, at)
		if age < 0 || age > ia.pp.DeltaRmv()+2*ia.d() {
			delete(ia.sent, k)
		}
	}
	for m, until := range ia.ignoreUntil {
		if ia.pp.Sub(now, until) > 0 {
			delete(ia.ignoreUntil, m)
		}
	}
	for m, at := range ia.pending {
		if age := ia.pp.Sub(now, at); age < 0 || age > 2*ia.d() {
			delete(ia.pending, m)
		}
	}
	ia.rebuildActive()
}

// ResetAcceptState clears the acceptance machinery 3d after the agreement
// layer returned a value, per Fig. 1's cleanup ("reset Initiator-Accept").
// The rate-limiting variables lastq(G) and lastq(G,m) survive: their own
// expiry rules in the cleanup block enforce the separation properties
// (IA-4); clearing them here would let a faulty General immediately drive
// a second wave.
func (ia *Instance) ResetAcceptState() {
	ia.log.Clear()
	ia.iValues = make(map[protocol.Value]simtime.Local)
	ia.ready = make(map[protocol.Value]simtime.Local)
	ia.sent = make(map[sentKey]simtime.Local)
	ia.pending = make(map[protocol.Value]simtime.Local)
	ia.hasSupportAny = false
	ia.rebuildActive()
}

// ClearMessages drops received messages only. A correct General calls it
// on itself before initiating ("the General removes from its memory all
// previously received messages associated with any previous invocation").
func (ia *Instance) ClearMessages() {
	ia.log.Clear()
	ia.rebuildActive()
}

// LineTimes reports when lines L4, M4, N4 last completed for value m, for
// the General's IG3 failure detection. Zero times with false mean never.
func (ia *Instance) LineTimes(m protocol.Value) (l4, m4, n4 simtime.Local, okL, okM, okN bool) {
	l4, okL = ia.lineL4[m]
	m4, okM = ia.lineM4[m]
	n4, okN = ia.lineN4[m]
	return
}
