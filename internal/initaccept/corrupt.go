package initaccept

import (
	"ssbyz/internal/msglog"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// This file exposes state-injection hooks used exclusively by the
// transient-fault injector and white-box tests: a transient failure may
// leave every variable of Fig. 2 holding an arbitrary value, and
// self-stabilization must recover from all of them.

// InjectIValue installs an arbitrary i_values[G,m] recording time.
func (ia *Instance) InjectIValue(m protocol.Value, rec simtime.Local) {
	ia.iValues[m] = rec
}

// InjectLastG installs an arbitrary lastq(G) update.
func (ia *Instance) InjectLastG(t simtime.Local) { ia.lastG.inject(t) }

// InjectLastGM installs an arbitrary lastq(G,m) update.
func (ia *Instance) InjectLastGM(m protocol.Value, t simtime.Local) {
	ia.gm(m).inject(t)
}

// InjectReady installs an arbitrary ready_{G,m} flag set time.
func (ia *Instance) InjectReady(m protocol.Value, t simtime.Local) {
	ia.ready[m] = t
	ia.noteValue(m)
}

// InjectRecord installs a spurious reception record.
func (ia *Instance) InjectRecord(kind protocol.MsgKind, m protocol.Value, sender protocol.NodeID, at simtime.Local) {
	ia.noteValue(m)
	ia.log.InjectRaw(msglog.Key{Kind: kind, G: ia.g, M: m}, sender, at)
}

// InjectPending installs a phantom pending invocation.
func (ia *Instance) InjectPending(m protocol.Value, at simtime.Local) {
	ia.pending[m] = at
	ia.noteValue(m)
}

// LogLen reports the number of stored reception records (for tests).
func (ia *Instance) LogLen() int { return ia.log.Len() }
