package initaccept

import (
	"testing"

	"ssbyz/internal/protocol"
)

// BenchmarkFullWave measures one complete Initiator-Accept wave at a
// single node: invoke + 5 supports + 5 approves + 5 readys → I-accept.
func BenchmarkFullWave(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt, ia, _ := newFake()
		ia.Invoke("v", rt.now)
		feed(rt, ia, protocol.Support, "v", 2, 3, 4, 5, 6)
		feed(rt, ia, protocol.Approve, "v", 2, 3, 4, 5, 6)
		feed(rt, ia, protocol.Ready, "v", 2, 3, 4, 5, 6)
	}
}

// BenchmarkEvaluateQuiescent measures the per-message re-evaluation cost
// on a node with live state but nothing new to conclude — the primitive's
// hot path under message load.
func BenchmarkEvaluateQuiescent(b *testing.B) {
	rt, ia, _ := newFake()
	ia.Invoke("v", rt.now)
	feed(rt, ia, protocol.Support, "v", 2, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ia.Evaluate(rt.now)
	}
}

// BenchmarkCleanup measures the background decay sweep.
func BenchmarkCleanup(b *testing.B) {
	rt, ia, _ := newFake()
	ia.Invoke("v", rt.now)
	feed(rt, ia, protocol.Support, "v", 2, 3, 4, 5, 6)
	feed(rt, ia, protocol.Approve, "v", 2, 3, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ia.Cleanup(rt.now)
	}
}
