package initaccept

import (
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// fakeRT is a hand-cranked runtime: the test controls the local clock and
// inspects outgoing broadcasts, timers, and traces.
type fakeRT struct {
	id     protocol.NodeID
	now    simtime.Local
	pp     protocol.Params
	sent   []protocol.Message
	timers []protocol.TimerTag
	traces []protocol.TraceEvent
}

var _ protocol.Runtime = (*fakeRT)(nil)

func (f *fakeRT) ID() protocol.NodeID     { return f.id }
func (f *fakeRT) Now() simtime.Local      { return f.now }
func (f *fakeRT) Params() protocol.Params { return f.pp }
func (f *fakeRT) Send(to protocol.NodeID, m protocol.Message) {
	f.sent = append(f.sent, m)
}
func (f *fakeRT) Broadcast(m protocol.Message) { f.sent = append(f.sent, m) }
func (f *fakeRT) After(dl simtime.Duration, tag protocol.TimerTag) protocol.TimerID {
	f.timers = append(f.timers, tag)
	return protocol.TimerID(len(f.timers))
}
func (f *fakeRT) Cancel(protocol.TimerID)      {}
func (f *fakeRT) Trace(ev protocol.TraceEvent) { f.traces = append(f.traces, ev) }
func (f *fakeRT) sentKinds() []protocol.MsgKind {
	out := make([]protocol.MsgKind, len(f.sent))
	for i, m := range f.sent {
		out[i] = m.Kind
	}
	return out
}
func (f *fakeRT) lastSent() (protocol.Message, bool) {
	if len(f.sent) == 0 {
		return protocol.Message{}, false
	}
	return f.sent[len(f.sent)-1], true
}

// newFake builds an instance for General 0 at node 1, n=7 f=2 d=1000.
func newFake() (*fakeRT, *Instance, *[]protocol.Value) {
	rt := &fakeRT{id: 1, pp: protocol.DefaultParams(7), now: 100_000}
	accepted := &[]protocol.Value{}
	ia := New(rt, 0, func(m protocol.Value, tauG simtime.Local) {
		*accepted = append(*accepted, m)
	})
	return rt, ia, accepted
}

// feed records one message from each given sender at the current time.
func feed(rt *fakeRT, ia *Instance, kind protocol.MsgKind, v protocol.Value, senders ...protocol.NodeID) {
	for _, s := range senders {
		ia.OnMessage(s, protocol.Message{Kind: kind, G: 0, M: v})
	}
}

func TestBlockKSendsSupport(t *testing.T) {
	rt, ia, _ := newFake()
	ia.Invoke("v", rt.now)
	m, ok := rt.lastSent()
	if !ok || m.Kind != protocol.Support || m.M != "v" {
		t.Fatalf("Invoke did not send support: %v", rt.sent)
	}
	// Recording time is τq − d (Line K2).
	rec, ok := ia.iValue("v", rt.now)
	if !ok || rec != rt.now.Add(-rt.pp.D) {
		t.Errorf("i_values[G,m] = (%d,%v), want (%d,true)", rec, ok, rt.now.Add(-rt.pp.D))
	}
}

func TestBlockKRefusesSecondValue(t *testing.T) {
	rt, ia, _ := newFake()
	ia.Invoke("v", rt.now)
	sentBefore := len(rt.sent)
	rt.now = rt.now.Add(2 * rt.pp.D)
	ia.Invoke("w", rt.now) // i_values[G,v] still defined → K1 fails
	for _, m := range rt.sent[sentBefore:] {
		if m.Kind == protocol.Support && m.M == "w" {
			t.Error("support sent for a second concurrent value")
		}
	}
}

func TestBlockKRefusesAfterRecentSupport(t *testing.T) {
	rt, ia, _ := newFake()
	ia.Invoke("v", rt.now)
	// Erase the i_values entry to isolate the "sent support in [τq−d, τq]"
	// condition.
	ia.iValues = map[protocol.Value]simtime.Local{}
	ia.lastGM = map[protocol.Value]*updates{}
	sentBefore := len(rt.sent)
	rt.now = rt.now.Add(rt.pp.D / 2)
	ia.Invoke("w", rt.now)
	for _, m := range rt.sent[sentBefore:] {
		if m.Kind == protocol.Support {
			t.Error("support sent within d of the previous support")
		}
	}
}

func TestBlockLApproveNeedsQuorumWithin2d(t *testing.T) {
	rt, ia, _ := newFake()
	d := rt.pp.D
	// n−2f = 3 supports inside 4d: records the candidate but no approve.
	feed(rt, ia, protocol.Support, "v", 2, 3, 4)
	if _, ok := ia.iValue("v", rt.now); !ok {
		t.Error("L2 did not record a candidate from a byz-quorum of supports")
	}
	for _, k := range rt.sentKinds() {
		if k == protocol.Approve {
			t.Fatal("approve sent before an n−f quorum")
		}
	}
	// Two more supports arrive within 2d: quorum reached → approve.
	rt.now = rt.now.Add(d)
	feed(rt, ia, protocol.Support, "v", 5, 6)
	found := false
	for _, k := range rt.sentKinds() {
		if k == protocol.Approve {
			found = true
		}
	}
	if !found {
		t.Error("approve not sent after n−f supports within 2d")
	}
}

func TestBlockLWindowExcludesStaleSupports(t *testing.T) {
	rt, ia, _ := newFake()
	d := rt.pp.D
	feed(rt, ia, protocol.Support, "v", 2, 3, 4)
	rt.now = rt.now.Add(3 * d) // stale: outside the 2d window for L3
	feed(rt, ia, protocol.Support, "v", 5, 6)
	for _, k := range rt.sentKinds() {
		if k == protocol.Approve {
			t.Error("approve sent although the five supports never shared a 2d window")
		}
	}
}

func TestBlockLRecordingTimeMaxRule(t *testing.T) {
	rt, ia, _ := newFake()
	d := rt.pp.D
	feed(rt, ia, protocol.Support, "v", 2, 3, 4)
	rec1, _ := ia.iValue("v", rt.now)
	// A later, tighter window must only move the recording time forward.
	rt.now = rt.now.Add(d)
	feed(rt, ia, protocol.Support, "v", 5, 6)
	rec2, ok := ia.iValue("v", rt.now)
	if !ok || rt.pp.Sub(rec2, rec1) < 0 {
		t.Errorf("recording time moved backwards: %d -> %d", rec1, rec2)
	}
}

func TestBlockMReadyFlagAndMessage(t *testing.T) {
	rt, ia, _ := newFake()
	feed(rt, ia, protocol.Approve, "v", 2, 3, 4)
	if !ia.readyDefined("v", rt.now) {
		t.Error("ready flag not set by a byz-quorum of approves (M2)")
	}
	for _, k := range rt.sentKinds() {
		if k == protocol.Ready {
			t.Fatal("ready sent before an n−f quorum of approves")
		}
	}
	feed(rt, ia, protocol.Approve, "v", 5, 6)
	found := false
	for _, k := range rt.sentKinds() {
		if k == protocol.Ready {
			found = true
		}
	}
	if !found {
		t.Error("ready not sent after n−f approves within 3d (M4)")
	}
}

func TestBlockNRequiresReadyFlag(t *testing.T) {
	rt, ia, accepted := newFake()
	// n−f ready messages but the local ready flag was never set (M2):
	// transient residue must not drive an I-accept (Claim 4 machinery).
	feed(rt, ia, protocol.Ready, "v", 2, 3, 4, 5, 6)
	if len(*accepted) != 0 {
		t.Error("I-accept fired without the local ready flag")
	}
}

func TestFullWaveIAccepts(t *testing.T) {
	rt, ia, accepted := newFake()
	ia.Invoke("v", rt.now)
	feed(rt, ia, protocol.Support, "v", 2, 3, 4, 5, 6)
	feed(rt, ia, protocol.Approve, "v", 2, 3, 4, 5, 6)
	feed(rt, ia, protocol.Ready, "v", 2, 3, 4, 5, 6)
	if len(*accepted) != 1 || (*accepted)[0] != "v" {
		t.Fatalf("I-accepts = %v, want [v]", *accepted)
	}
	// N4 side effects: i_values cleared, (G,m) messages removed and
	// ignored for 3d, trace emitted.
	if _, ok := ia.iValue("v", rt.now); ok {
		t.Error("i_values not cleared by N4")
	}
	if !ia.ignored("v", rt.now.Add(rt.pp.D)) {
		t.Error("messages not ignored after N4")
	}
	if ia.ignored("v", rt.now.Add(4*rt.pp.D)) {
		t.Error("ignore window outlived 3d")
	}
	foundTrace := false
	for _, ev := range rt.traces {
		if ev.Kind == protocol.EvIAccept && ev.M == "v" {
			foundTrace = true
		}
	}
	if !foundTrace {
		t.Error("no EvIAccept trace")
	}
}

func TestIAcceptOnlyOncePerWave(t *testing.T) {
	rt, ia, accepted := newFake()
	ia.Invoke("v", rt.now)
	feed(rt, ia, protocol.Support, "v", 2, 3, 4, 5, 6)
	feed(rt, ia, protocol.Approve, "v", 2, 3, 4, 5, 6)
	feed(rt, ia, protocol.Ready, "v", 2, 3, 4, 5, 6)
	// Replays right after: inside the 3d ignore window.
	feed(rt, ia, protocol.Ready, "v", 2, 3, 4, 5, 6)
	rt.now = rt.now.Add(rt.pp.D)
	feed(rt, ia, protocol.Ready, "v", 2, 3, 4, 5, 6)
	if len(*accepted) != 1 {
		t.Errorf("I-accepted %d times, want 1", len(*accepted))
	}
}

func TestSeparationLastGBlocksNextInvoke(t *testing.T) {
	rt, ia, accepted := newFake()
	ia.Invoke("v", rt.now)
	feed(rt, ia, protocol.Support, "v", 2, 3, 4, 5, 6)
	feed(rt, ia, protocol.Approve, "v", 2, 3, 4, 5, 6)
	feed(rt, ia, protocol.Ready, "v", 2, 3, 4, 5, 6)
	if len(*accepted) != 1 {
		t.Fatal("setup wave failed")
	}
	// A new value right away: lastq(G) blocks Block K until Δ0−6d.
	rt.now = rt.now.Add(4 * rt.pp.D)
	sentBefore := len(rt.sent)
	ia.Invoke("w", rt.now)
	for _, m := range rt.sent[sentBefore:] {
		if m.Kind == protocol.Support && m.M == "w" {
			t.Error("support for a new value within the lastq(G) separation window")
		}
	}
	// After Δ0 the separation clears.
	rt.now = rt.now.Add(rt.pp.Delta0())
	ia.Cleanup(rt.now)
	ia.Invoke("w", rt.now)
	found := false
	for _, m := range rt.sent[sentBefore:] {
		if m.Kind == protocol.Support && m.M == "w" {
			found = true
		}
	}
	if !found {
		t.Error("support still blocked after Δ0")
	}
}

func TestCleanupDecaysRecords(t *testing.T) {
	rt, ia, _ := newFake()
	feed(rt, ia, protocol.Support, "v", 2, 3)
	if ia.LogLen() == 0 {
		t.Fatal("no records stored")
	}
	rt.now = rt.now.Add(rt.pp.DeltaRmv() + rt.pp.D)
	ia.Cleanup(rt.now)
	if got := ia.LogLen(); got != 0 {
		t.Errorf("records survived Δrmv decay: %d", got)
	}
}

func TestCleanupRemovesFutureGarbage(t *testing.T) {
	rt, ia, _ := newFake()
	ia.InjectRecord(protocol.Support, "ghost", 2, rt.now+simtime.Local(10*rt.pp.DeltaRmv()))
	ia.InjectIValue("ghost", rt.now+simtime.Local(10*rt.pp.DeltaRmv()))
	ia.Cleanup(rt.now)
	if got := ia.LogLen(); got != 0 {
		t.Errorf("future-stamped record survived cleanup: %d", got)
	}
	if _, ok := ia.iValue("ghost", rt.now); ok {
		t.Error("future-stamped i_value survived")
	}
}

func TestResetAcceptStateKeepsRateLimits(t *testing.T) {
	rt, ia, accepted := newFake()
	ia.Invoke("v", rt.now)
	feed(rt, ia, protocol.Support, "v", 2, 3, 4, 5, 6)
	feed(rt, ia, protocol.Approve, "v", 2, 3, 4, 5, 6)
	feed(rt, ia, protocol.Ready, "v", 2, 3, 4, 5, 6)
	if len(*accepted) != 1 {
		t.Fatal("setup wave failed")
	}
	ia.ResetAcceptState()
	if ia.LogLen() != 0 {
		t.Error("ResetAcceptState left records")
	}
	// lastq(G) must survive the reset: the separation property depends on
	// it (clearing it would let a faulty General drive an immediate second
	// wave).
	if !ia.lastG.defined(rt.now, ia.lastGExpiry(), rt.pp) {
		t.Error("ResetAcceptState cleared lastq(G)")
	}
}

func TestGeneralAndLineTimes(t *testing.T) {
	rt, ia, _ := newFake()
	if got := ia.General(); got != 0 {
		t.Errorf("General = %d, want 0", got)
	}
	if _, _, _, okL, okM, okN := ia.LineTimes("v"); okL || okM || okN {
		t.Error("LineTimes non-empty on a fresh instance")
	}
	ia.Invoke("v", rt.now)
	feed(rt, ia, protocol.Support, "v", 2, 3, 4, 5, 6)
	feed(rt, ia, protocol.Approve, "v", 2, 3, 4, 5, 6)
	feed(rt, ia, protocol.Ready, "v", 2, 3, 4, 5, 6)
	if _, _, _, okL, okM, okN := ia.LineTimes("v"); !okL || !okM || !okN {
		t.Errorf("LineTimes after a full wave: L=%v M=%v N=%v, want all true", okL, okM, okN)
	}
}

func TestWrongGeneralIgnored(t *testing.T) {
	rt, ia, _ := newFake()
	ia.OnMessage(2, protocol.Message{Kind: protocol.Support, G: 5, M: "v"})
	if ia.LogLen() != 0 {
		t.Error("message for another General recorded")
	}
	_ = rt
}

func TestTimerTags(t *testing.T) {
	rt, ia, _ := newFake()
	ia.Invoke("v", rt.now)
	// Invoke arms retry timers.
	retries := 0
	for _, tag := range rt.timers {
		if tag.Name == TagRetry {
			retries++
		}
	}
	if retries == 0 {
		t.Error("Invoke armed no retry timers")
	}
	// Dispatching the tags must not panic and re-evaluates pending state.
	for _, tag := range rt.timers {
		ia.OnTimer(tag)
	}
	ia.OnTimer(protocol.TimerTag{Name: TagSweep})
}

// ---- tvar (timed variable) unit tests ----

func TestUpdatesTouchAndDefined(t *testing.T) {
	pp := protocol.DefaultParams(7)
	var u updates
	if u.defined(100, 50, pp) {
		t.Error("zero updates defined")
	}
	if !u.touch(100) {
		t.Error("first touch reported no change")
	}
	if u.touch(100) {
		t.Error("same-time touch reported change")
	}
	if !u.defined(120, 50, pp) {
		t.Error("fresh update not defined")
	}
	if u.defined(200, 50, pp) {
		t.Error("expired update still defined")
	}
}

func TestUpdatesDefinedAtPast(t *testing.T) {
	pp := protocol.DefaultParams(7)
	var u updates
	u.touch(100)
	u.touch(160)
	// At t=150 only the first update existed and it was 50 old.
	if !u.definedAt(150, 60, pp) {
		t.Error("definedAt(150) missed the first update")
	}
	if u.definedAt(150, 40, pp) {
		t.Error("definedAt(150) used an expired update")
	}
}

func TestUpdatesNewestSkipsFuture(t *testing.T) {
	pp := protocol.DefaultParams(7)
	var u updates
	u.inject(500) // future at now=100
	u.touch(90)   // out-of-order times via inject/touch
	got, ok := u.newest(100, pp)
	if !ok || got != 90 {
		t.Errorf("newest = (%d,%v), want (90,true)", got, ok)
	}
}

func TestUpdatesPrune(t *testing.T) {
	pp := protocol.DefaultParams(7)
	var u updates
	u.touch(10)
	u.touch(100)
	u.inject(9999) // future garbage
	u.prune(150, 60, pp)
	if len(u.times) != 1 || u.times[0] != 100 {
		t.Errorf("prune kept %v, want [100]", u.times)
	}
}
