package indexed

import (
	"errors"
	"testing"

	"ssbyz/internal/core"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// indexedWorld assembles n indexed nodes with the given slot count.
func indexedWorld(t *testing.T, n, slots int, seed int64) (*simnet.World, []*Node) {
	t.Helper()
	pp := protocol.DefaultParams(n)
	w, err := simnet.New(simnet.Config{Params: pp, Seed: seed, DelayMin: pp.D / 2, DelayMax: pp.D})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = NewNode(slots)
		w.SetNode(protocol.NodeID(i), nodes[i])
	}
	w.Start()
	return w, nodes
}

// TestConcurrentInvocationsSameGeneral is the footnote-9 headline: one
// General runs three agreements AT THE SAME INSTANT — impossible under
// IG1 without the index — and every slot completes independently.
func TestConcurrentInvocationsSameGeneral(t *testing.T) {
	w, nodes := indexedWorld(t, 7, 3, 1)
	pp := w.Params()
	w.Scheduler().At(simtime.Real(2*pp.D), func() {
		for slot := 0; slot < 3; slot++ {
			v := protocol.Value([]string{"alpha", "beta", "gamma"}[slot])
			if err := nodes[0].InitiateAgreement(slot, v); err != nil {
				t.Errorf("slot %d: %v", slot, err)
			}
		}
	})
	w.RunUntil(simtime.Real(3 * pp.DeltaAgr()))
	want := []protocol.Value{"alpha", "beta", "gamma"}
	for slot := 0; slot < 3; slot++ {
		for i, node := range nodes {
			returned, decided, v := node.Result(slot, 0)
			if !returned || !decided || v != want[slot] {
				t.Errorf("node %d slot %d: (%v,%v,%q), want decide %q", i, slot, returned, decided, v, want[slot])
			}
		}
	}
}

func TestIG1StillAppliesWithinSlot(t *testing.T) {
	w, nodes := indexedWorld(t, 4, 2, 2)
	pp := w.Params()
	var second error
	w.Scheduler().At(simtime.Real(2*pp.D), func() {
		if err := nodes[0].InitiateAgreement(0, "a"); err != nil {
			t.Errorf("first: %v", err)
		}
		second = nodes[0].InitiateAgreement(0, "b") // same slot, immediate
	})
	w.RunUntil(simtime.Real(pp.DeltaAgr()))
	if !errors.Is(second, core.ErrTooSoon) {
		t.Errorf("same-slot immediate reinitiation error = %v, want ErrTooSoon", second)
	}
}

func TestSlotRangeChecked(t *testing.T) {
	_, nodes := indexedWorld(t, 4, 2, 3)
	if err := nodes[0].InitiateAgreement(5, "v"); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if err := nodes[0].InitiateAgreement(-1, "v"); err == nil {
		t.Error("negative slot accepted")
	}
	if returned, _, _ := nodes[0].Result(9, 0); returned {
		t.Error("Result for out-of-range slot returned")
	}
}

// TestCrossSlotIsolation: messages of slot 0 must never complete a quorum
// in slot 1 even when a faulty node forges the Aux routing field.
func TestCrossSlotIsolation(t *testing.T) {
	pp := protocol.DefaultParams(4)
	w, err := simnet.New(simnet.Config{Params: pp, Seed: 4})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	nodes := make([]*Node, 4)
	for i := 0; i < 4; i++ {
		nodes[i] = NewNode(2)
		w.SetNode(protocol.NodeID(i), nodes[i])
	}
	w.Start()
	// Forged cross-slot replay: slot-0-namespaced values with Aux = 1.
	w.Scheduler().At(100, func() {
		for _, kind := range []protocol.MsgKind{protocol.Support, protocol.Approve, protocol.Ready} {
			w.Runtime(3).Broadcast(protocol.Message{
				Kind: kind, G: 0, M: SlotValue(0, "forged"), Aux: 1,
			})
		}
	})
	w.RunUntil(simtime.Real(3 * pp.DeltaAgr()))
	for i, node := range nodes {
		if _, decided, _ := node.Result(1, 0); decided {
			t.Errorf("node %d decided in slot 1 from forged cross-slot traffic", i)
		}
	}
}

func TestSlotValueRoundTrip(t *testing.T) {
	cases := []struct {
		slot int
		v    protocol.Value
	}{
		{0, "x"}, {7, "with|bar"}, {123, ""},
	}
	for _, tc := range cases {
		slot, inner, ok := ParseSlotValue(SlotValue(tc.slot, tc.v))
		if !ok || slot != tc.slot || inner != tc.v {
			t.Errorf("round trip (%d,%q) = (%d,%q,%v)", tc.slot, tc.v, slot, inner, ok)
		}
	}
	for _, raw := range []protocol.Value{"", "plain", "s|", "sx|v"} {
		if _, _, ok := ParseSlotValue(raw); ok {
			t.Errorf("ParseSlotValue(%q) accepted a non-namespaced value", raw)
		}
	}
}

func TestTagRoundTrip(t *testing.T) {
	slot, inner, ok := parseTag(makeTag(3, "agr-sweep"))
	if !ok || slot != 3 || inner != "agr-sweep" {
		t.Errorf("tag round trip = (%d,%q,%v)", slot, inner, ok)
	}
	if _, _, ok := parseTag("agr-sweep"); ok {
		t.Error("parseTag accepted an un-namespaced tag")
	}
}

func TestMinimumOneSlot(t *testing.T) {
	n := NewNode(0)
	if n.Slots() != 1 {
		t.Errorf("Slots = %d, want 1", n.Slots())
	}
}

// TestDecisionSkewPerSlot: concurrent slots keep the Timeliness-1a skew
// bound independently.
func TestDecisionSkewPerSlot(t *testing.T) {
	w, nodes := indexedWorld(t, 7, 2, 5)
	pp := w.Params()
	w.Scheduler().At(simtime.Real(2*pp.D), func() {
		_ = nodes[0].InitiateAgreement(0, "s0")
		_ = nodes[1].InitiateAgreement(1, "s1") // different General, other slot
	})
	w.RunUntil(simtime.Real(3 * pp.DeltaAgr()))
	// Group decide traces by namespaced value and check skews.
	byValue := make(map[protocol.Value][]simtime.Real)
	for _, ev := range w.Recorder().ByKind(protocol.EvDecide) {
		byValue[ev.M] = append(byValue[ev.M], ev.RT)
	}
	for v, rts := range byValue {
		if len(rts) != 7 {
			t.Errorf("value %q decided by %d nodes, want 7", v, len(rts))
			continue
		}
		lo, hi := rts[0], rts[0]
		for _, rt := range rts {
			if rt < lo {
				lo = rt
			}
			if rt > hi {
				hi = rt
			}
		}
		if hi-lo > 2*simtime.Real(pp.D) {
			t.Errorf("value %q: decision skew %d > 2d", v, hi-lo)
		}
	}
}
