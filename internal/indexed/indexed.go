// Package indexed implements the paper's footnote-9 extension:
//
//	"One can expand the protocol to a number of concurrent invocations
//	by using an index to differentiate among the concurrent
//	invocations."
//
// A Node multiplexes S independent ss-Byz-Agree slots. Each slot is a
// complete inner protocol node with its own Initiator-Accept rate-limit
// state, so a General may run up to S agreements concurrently — the
// sending-validity criteria IG1–IG3 apply per slot, exactly the
// "counters added to concurrent agreement initiations" the paper
// describes. The wire traffic of slot s is namespaced two ways: the
// message's Aux field carries the slot index (routing), and values are
// prefixed "s<idx>|" (so no message-log window of one slot can ever count
// messages of another).
//
// All safety properties hold per slot because each slot IS a full
// instance of the protocol over the same node set; slots share nothing
// but the transport.
package indexed

import (
	"fmt"
	"strconv"
	"strings"

	"ssbyz/internal/core"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// tagPrefix namespaces timer tags per slot.
const tagPrefix = "ix"

// Node multiplexes a fixed number of concurrent agreement slots. It
// implements protocol.Node.
type Node struct {
	rt    protocol.Runtime
	slots []*core.Node
}

var _ protocol.Node = (*Node)(nil)

// NewNode returns a node with the given number of concurrent slots
// (minimum 1).
func NewNode(slots int) *Node {
	if slots < 1 {
		slots = 1
	}
	n := &Node{slots: make([]*core.Node, slots)}
	for i := range n.slots {
		n.slots[i] = core.NewNode()
	}
	return n
}

// Slots returns the number of concurrent slots.
func (n *Node) Slots() int { return len(n.slots) }

// Start attaches the runtime and starts every slot behind its own
// namespacing runtime.
func (n *Node) Start(rt protocol.Runtime) {
	n.rt = rt
	for i, slot := range n.slots {
		slot.Start(&slotRT{Runtime: rt, slot: i})
	}
}

// InitiateAgreement starts agreement on v in the given slot with this
// node as General. Different slots run concurrently; within one slot the
// usual IG1–IG3 criteria apply.
func (n *Node) InitiateAgreement(slot int, v protocol.Value) error {
	if slot < 0 || slot >= len(n.slots) {
		return fmt.Errorf("indexed: slot %d out of range [0,%d)", slot, len(n.slots))
	}
	return n.slots[slot].InitiateAgreement(SlotValue(slot, v))
}

// Result returns slot's outcome for General g, with the slot namespace
// stripped from the value.
func (n *Node) Result(slot int, g protocol.NodeID) (returned, decided bool, v protocol.Value) {
	if slot < 0 || slot >= len(n.slots) {
		return false, false, protocol.Bottom
	}
	returned, decided, nv := n.slots[slot].Result(g)
	if decided {
		if _, inner, ok := ParseSlotValue(nv); ok {
			nv = inner
		}
	}
	return returned, decided, nv
}

// OnMessage routes by the Aux slot index. Messages with out-of-range
// slots (a faulty sender or another configuration) are dropped.
func (n *Node) OnMessage(from protocol.NodeID, m protocol.Message) {
	if m.Kind == protocol.BaselineRound {
		return
	}
	if m.Aux < 0 || m.Aux >= len(n.slots) {
		return
	}
	// Defense in depth: the value must carry the same slot namespace, so
	// cross-slot replays are droppable even if Aux is forged to match.
	if s, _, ok := ParseSlotValue(m.M); ok && s != m.Aux {
		return
	}
	n.slots[m.Aux].OnMessage(from, m)
}

// OnTimer strips the slot namespace and forwards.
func (n *Node) OnTimer(tag protocol.TimerTag) {
	slot, inner, ok := parseTag(tag.Name)
	if !ok || slot < 0 || slot >= len(n.slots) {
		return
	}
	tag.Name = inner
	n.slots[slot].OnTimer(tag)
}

// SlotValue namespaces v for a slot. It is protocol.SlotValue, kept as an
// alias for this package's historical callers.
func SlotValue(slot int, v protocol.Value) protocol.Value {
	return protocol.SlotValue(slot, v)
}

// ParseSlotValue splits a namespaced value (alias of
// protocol.ParseSlotValue).
func ParseSlotValue(v protocol.Value) (slot int, inner protocol.Value, ok bool) {
	return protocol.ParseSlotValue(v)
}

// makeTag / parseTag namespace timer-tag names per slot.
func makeTag(slot int, name string) string {
	return tagPrefix + strconv.Itoa(slot) + "|" + name
}

func parseTag(name string) (slot int, inner string, ok bool) {
	if !strings.HasPrefix(name, tagPrefix) {
		return 0, name, false
	}
	rest := name[len(tagPrefix):]
	bar := strings.IndexByte(rest, '|')
	if bar < 1 {
		return 0, name, false
	}
	slot, err := strconv.Atoi(rest[:bar])
	if err != nil {
		return 0, name, false
	}
	return slot, rest[bar+1:], true
}

// slotRT namespaces one slot's traffic: outgoing messages get Aux = slot,
// timer tags get a slot prefix. Everything else passes through.
type slotRT struct {
	protocol.Runtime
	slot int
}

func (s *slotRT) Send(to protocol.NodeID, m protocol.Message) {
	m.Aux = s.slot
	s.Runtime.Send(to, m)
}

func (s *slotRT) Broadcast(m protocol.Message) {
	m.Aux = s.slot
	s.Runtime.Broadcast(m)
}

func (s *slotRT) After(dl simtime.Duration, tag protocol.TimerTag) protocol.TimerID {
	tag.Name = makeTag(s.slot, tag.Name)
	return s.Runtime.After(dl, tag)
}
