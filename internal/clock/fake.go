package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Fake is a deterministic virtual clock. Time moves only under explicit
// control — Advance/AdvanceTo/Step from a driving goroutine, or the
// AutoAdvance loop — and pending timers fire one at a time in a total
// (deadline, registration-sequence) order, so a run scheduled against a
// Fake is reproducible event for event.
//
// Determinism rests on quiescence: the clock never advances while any
// busy token is outstanding (Gate — the event-loop mailboxes hold one
// per undrained event), and it fires exactly one timer, then waits for
// the resulting cascade of enqueues to drain back to zero before firing
// the next. All cross-node traffic in the virtual runtimes rides clock
// timers, so at most one causal cascade is ever in flight.
//
// Timer bodies run on the advancing goroutine; they may schedule new
// timers but must not call Advance/Step/WaitIdle themselves (that would
// self-deadlock).
type Fake struct {
	mu   sync.Mutex
	cond *sync.Cond

	now time.Time
	seq uint64
	th  timerHeap

	// busy counts outstanding work units (Gate); the clock is quiescent
	// only at zero.
	busy int
	// sleeping counts goroutines currently blocked in Sleep; registered
	// counts goroutines that declared themselves drivers (Register).
	// AutoAdvance fires only while every registered driver is asleep.
	sleeping, registered int
	// advancing serializes Advance/AdvanceTo/Step/auto loops.
	advancing bool
}

// FakeEpoch is the canonical starting instant of NewFake(time.Time{}):
// an arbitrary fixed wall date, so virtual runs are identical across
// hosts and independent of the real clock.
var FakeEpoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// NewFake returns a virtual clock reading start; a zero start means
// FakeEpoch.
func NewFake(start time.Time) *Fake {
	if start.IsZero() {
		start = FakeEpoch
	}
	f := &Fake{now: start}
	f.cond = sync.NewCond(&f.mu)
	return f
}

var _ Clock = (*Fake)(nil)
var _ Gate = (*Fake)(nil)

// fakeTimer is one pending virtual timer.
type fakeTimer struct {
	f       *Fake
	when    time.Time
	seq     uint64
	fn      func()
	ch      chan time.Time
	sleeper bool
	idx     int // heap index; -1 once fired or stopped
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

// Stop cancels the timer if still pending.
func (t *fakeTimer) Stop() bool {
	f := t.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if t.idx < 0 {
		return false
	}
	heap.Remove(&f.th, t.idx)
	f.cond.Broadcast()
	return true
}

// timerHeap orders by (when, seq): deadline first, registration order
// breaking ties — the total order every virtual run fires in.
type timerHeap []*fakeTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*fakeTimer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.idx = -1
	*h = old[:n-1]
	return t
}

// schedule registers a timer d from now; mu must be held. A past or
// zero d fires at the current instant on the next advance.
func (f *Fake) schedule(d time.Duration, fn func(), ch chan time.Time, sleeper bool) *fakeTimer {
	if d < 0 {
		d = 0
	}
	f.seq++
	t := &fakeTimer{f: f, when: f.now.Add(d), seq: f.seq, fn: fn, ch: ch, sleeper: sleeper}
	heap.Push(&f.th, t)
	f.cond.Broadcast()
	return t
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since implements Clock.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// Sleep implements Clock: it blocks until the virtual clock passes
// now+d. The sleeper is counted (WaiterCount/BlockUntilWaiters), and a
// registered driver in Sleep is what lets AutoAdvance move time.
func (f *Fake) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan time.Time, 1)
	f.mu.Lock()
	f.schedule(d, nil, ch, true)
	f.sleeping++
	f.cond.Broadcast()
	f.mu.Unlock()
	<-ch
}

// After implements Clock.
func (f *Fake) After(d time.Duration) <-chan time.Time { return f.NewTimer(d).C() }

// NewTimer implements Clock.
func (f *Fake) NewTimer(d time.Duration) Timer {
	ch := make(chan time.Time, 1)
	f.mu.Lock()
	t := f.schedule(d, nil, ch, false)
	f.mu.Unlock()
	return t
}

// AfterFunc implements Clock: fn runs on the advancing goroutine when
// virtual time reaches now+d.
func (f *Fake) AfterFunc(d time.Duration, fn func()) Timer {
	f.mu.Lock()
	t := f.schedule(d, fn, nil, false)
	f.mu.Unlock()
	return t
}

// AddBusy implements Gate.
func (f *Fake) AddBusy(n int) {
	f.mu.Lock()
	f.busy += n
	f.mu.Unlock()
}

// DoneBusy implements Gate.
func (f *Fake) DoneBusy(n int) {
	f.mu.Lock()
	f.busy -= n
	if f.busy < 0 {
		panic("clock: DoneBusy below zero")
	}
	if f.busy == 0 {
		f.cond.Broadcast()
	}
	f.mu.Unlock()
}

// Register declares the calling goroutine a driver: AutoAdvance will
// only move time while every registered driver is blocked in Sleep.
func (f *Fake) Register() {
	f.mu.Lock()
	f.registered++
	f.mu.Unlock()
}

// Unregister retires one Register.
func (f *Fake) Unregister() {
	f.mu.Lock()
	f.registered--
	f.cond.Broadcast()
	f.mu.Unlock()
}

// WaiterCount returns how many goroutines are blocked in Sleep.
func (f *Fake) WaiterCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sleeping
}

// PendingTimers returns how many timers are scheduled.
func (f *Fake) PendingTimers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.th)
}

// BlockUntilWaiters blocks until at least n goroutines are in Sleep —
// the handshake a test uses before Advance, so the sleepers it means to
// wake are scheduled before time moves.
func (f *Fake) BlockUntilWaiters(n int) {
	f.mu.Lock()
	for f.sleeping < n {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// WaitIdle blocks until the clock is quiescent: no advance in progress
// and no busy tokens outstanding. Pending timers do not count — with
// self-rearming protocol timers the heap never empties.
func (f *Fake) WaitIdle() {
	f.mu.Lock()
	for f.advancing || f.busy > 0 {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// Advance moves the clock forward by d, firing every timer due in the
// window one at a time in (deadline, seq) order, waiting for quiescence
// between fires. It returns with the clock reading exactly old+d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	for f.advancing {
		f.cond.Wait()
	}
	target := f.now.Add(d)
	f.advanceToLocked(target)
	f.mu.Unlock()
}

// AdvanceTo is Advance to an absolute instant (no-op if target is in
// the past).
func (f *Fake) AdvanceTo(target time.Time) {
	f.mu.Lock()
	for f.advancing {
		f.cond.Wait()
	}
	f.advanceToLocked(target)
	f.mu.Unlock()
}

// advanceToLocked runs the fire loop up to target; mu held, advancing
// false on entry and on return.
func (f *Fake) advanceToLocked(target time.Time) {
	f.advancing = true
	for {
		for f.busy > 0 {
			f.cond.Wait()
		}
		if len(f.th) == 0 || f.th[0].when.After(target) {
			break
		}
		f.fireNextLocked()
	}
	if target.After(f.now) {
		f.now = target
	}
	f.advancing = false
	f.cond.Broadcast()
}

// Step fires the single earliest pending timer (jumping the clock to
// its deadline) and waits for the cascade to drain. It reports false if
// no timer was pending.
func (f *Fake) Step() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.advancing {
		f.cond.Wait()
	}
	f.advancing = true
	for f.busy > 0 {
		f.cond.Wait()
	}
	fired := false
	if len(f.th) > 0 {
		f.fireNextLocked()
		fired = true
		for f.busy > 0 {
			f.cond.Wait()
		}
	}
	f.advancing = false
	f.cond.Broadcast()
	return fired
}

// fireNextLocked pops and delivers the earliest timer; mu held (and
// released around the delivery). On return the body has run, but busy
// tokens it created may still be outstanding.
func (f *Fake) fireNextLocked() {
	t := heap.Pop(&f.th).(*fakeTimer)
	if t.when.After(f.now) {
		f.now = t.when
	}
	if t.sleeper {
		// The sleeper wakes: account it before releasing the lock so
		// AutoAdvance cannot observe a stale "all drivers asleep".
		f.sleeping--
	}
	when := f.now
	f.mu.Unlock()
	if t.fn != nil {
		t.fn()
	} else {
		t.ch <- when
	}
	f.mu.Lock()
	for f.busy > 0 {
		f.cond.Wait()
	}
}

// AutoAdvance starts a goroutine that moves time whenever the clock is
// quiescent and every registered driver is blocked in Sleep, firing
// pending timers in order — the Navarch-style mode where a test's
// driver goroutine just Sleeps through virtual hours and the clock
// rushes to each wakeup. With no Register calls time free-runs, which
// spins forever against self-rearming timers: soak drivers must
// Register. The returned stop function halts the loop and waits for it
// to exit; it must not be called from a timer body.
func (f *Fake) AutoAdvance() (stop func()) {
	done := make(chan struct{})
	quit := false
	go func() {
		defer close(done)
		f.mu.Lock()
		defer f.mu.Unlock()
		for {
			for !quit && !(f.busy == 0 && !f.advancing && len(f.th) > 0 &&
				f.sleeping >= f.registered) {
				f.cond.Wait()
			}
			if quit {
				return
			}
			f.advancing = true
			f.fireNextLocked()
			f.advancing = false
			f.cond.Broadcast()
		}
	}()
	return func() {
		f.mu.Lock()
		quit = true
		f.cond.Broadcast()
		f.mu.Unlock()
		<-done
	}
}
