package clock

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFakeFiresInDeadlineSeqOrder pins the total order: deadline first,
// registration sequence breaking ties.
func TestFakeFiresInDeadlineSeqOrder(t *testing.T) {
	f := NewFake(time.Time{})
	var got []int
	f.AfterFunc(30*time.Millisecond, func() { got = append(got, 3) })
	f.AfterFunc(10*time.Millisecond, func() { got = append(got, 1) })
	f.AfterFunc(20*time.Millisecond, func() { got = append(got, 20) })
	f.AfterFunc(20*time.Millisecond, func() { got = append(got, 21) })
	f.AfterFunc(0, func() { got = append(got, 0) })
	f.Advance(25 * time.Millisecond)
	if want := []int{0, 1, 20, 21}; !reflect.DeepEqual(got, want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	if f.PendingTimers() != 1 {
		t.Fatalf("pending = %d, want 1", f.PendingTimers())
	}
	f.Advance(5 * time.Millisecond)
	if want := []int{0, 1, 20, 21, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
}

// TestFakeBodyReschedulesWithinWindow: a body scheduling a new timer
// inside the Advance window fires within the same Advance, at the right
// instant.
func TestFakeBodyReschedulesWithinWindow(t *testing.T) {
	f := NewFake(time.Time{})
	start := f.Now()
	var at []time.Duration
	f.AfterFunc(10*time.Millisecond, func() {
		at = append(at, f.Now().Sub(start))
		f.AfterFunc(15*time.Millisecond, func() {
			at = append(at, f.Now().Sub(start))
		})
	})
	f.Advance(40 * time.Millisecond)
	want := []time.Duration{10 * time.Millisecond, 25 * time.Millisecond}
	if !reflect.DeepEqual(at, want) {
		t.Fatalf("fired at %v, want %v", at, want)
	}
	if f.Since(start) != 40*time.Millisecond {
		t.Fatalf("clock at %v, want 40ms", f.Since(start))
	}
}

// TestFakeTimerStop: a stopped timer never fires and reports whether it
// was still pending, matching time.Timer.
func TestFakeTimerStop(t *testing.T) {
	f := NewFake(time.Time{})
	fired := false
	tm := f.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop of pending timer = false, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop = true, want false")
	}
	f.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
	tm2 := f.NewTimer(time.Second)
	f.Advance(time.Second)
	select {
	case <-tm2.C():
	default:
		t.Fatal("NewTimer did not deliver at its deadline")
	}
	if tm2.Stop() {
		t.Fatal("Stop of fired timer = true, want false")
	}
}

// TestFakeSleepAndBlockUntilWaiters is the test-handshake pattern: the
// driver blocks until n sleepers are scheduled, then advances past
// their wakeups.
func TestFakeSleepAndBlockUntilWaiters(t *testing.T) {
	f := NewFake(time.Time{})
	const sleepers = 4
	var woke atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < sleepers; i++ {
		wg.Add(1)
		d := time.Duration(i+1) * time.Minute
		go func() {
			defer wg.Done()
			f.Sleep(d)
			woke.Add(1)
		}()
	}
	f.BlockUntilWaiters(sleepers)
	if got := f.WaiterCount(); got != sleepers {
		t.Fatalf("WaiterCount = %d, want %d", got, sleepers)
	}
	f.Advance(2 * time.Minute)
	// Two sleepers are due; the rest still wait.
	if f.WaiterCount() != sleepers-2 {
		t.Fatalf("WaiterCount after 2min = %d, want %d", f.WaiterCount(), sleepers-2)
	}
	f.Advance(10 * time.Minute)
	wg.Wait()
	if woke.Load() != sleepers {
		t.Fatalf("woke = %d, want %d", woke.Load(), sleepers)
	}
}

// TestFakeGateBlocksAdvance: Advance must not move time across an
// outstanding busy token (the mailbox-in-flight quiescence rule).
func TestFakeGateBlocksAdvance(t *testing.T) {
	f := NewFake(time.Time{})
	f.AddBusy(1)
	done := make(chan struct{})
	go func() {
		f.Advance(time.Second)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Advance returned while a busy token was outstanding")
	case <-time.After(20 * time.Millisecond):
	}
	f.DoneBusy(1)
	<-done
}

// TestFakeAutoAdvance: with a registered driver asleep, the auto loop
// rushes virtual time to each wakeup — simulated hours in wall
// microseconds.
func TestFakeAutoAdvance(t *testing.T) {
	f := NewFake(time.Time{})
	stop := f.AutoAdvance()
	defer stop()
	f.Register()
	defer f.Unregister()
	var fires atomic.Int32
	f.AfterFunc(time.Hour, func() { fires.Add(1) })
	f.AfterFunc(3*time.Hour, func() { fires.Add(1) })
	start := f.Now()
	f.Sleep(4 * time.Hour)
	if fires.Load() != 2 {
		t.Fatalf("fires = %d, want 2", fires.Load())
	}
	if got := f.Since(start); got < 4*time.Hour {
		t.Fatalf("advanced %v, want ≥ 4h", got)
	}
}

// TestFakeAutoAdvancePausesWhileDriverRuns: between Sleeps of the
// registered driver, the auto loop must hold time still, so actions the
// driver takes land at the instant it woke.
func TestFakeAutoAdvancePausesWhileDriverRuns(t *testing.T) {
	f := NewFake(time.Time{})
	stop := f.AutoAdvance()
	defer stop()
	f.Register()
	defer f.Unregister()
	// A self-rearming timer, like the protocol's decay sweeps: with no
	// driver-awareness the auto loop would spin time forever.
	var rearm func()
	rearm = func() { f.AfterFunc(time.Minute, func() { rearm() }) }
	rearm()
	start := f.Now()
	f.Sleep(10 * time.Minute)
	woke := f.Since(start)
	// The driver is awake: time must not move while we look at it.
	for i := 0; i < 50; i++ {
		if got := f.Since(start); got != woke {
			t.Fatalf("clock moved while registered driver was awake: %v → %v", woke, got)
		}
	}
	if woke != 10*time.Minute {
		t.Fatalf("woke at %v, want exactly 10m", woke)
	}
}

// TestFakeStressAdvanceSleepStop is the -race waiter-accounting stress:
// concurrent Advance, Sleep, Timer.Stop, AfterFunc and gate traffic on
// one clock must neither race nor deadlock nor corrupt the heap.
func TestFakeStressAdvanceSleepStop(t *testing.T) {
	f := NewFake(time.Time{})
	var wg sync.WaitGroup
	stopAll := make(chan struct{})

	// Advancers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				f.Advance(time.Duration(j%7+1) * time.Millisecond)
			}
		}()
	}
	// Sleepers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for j := 0; j < 50; j++ {
				f.Sleep(time.Duration(rng.Intn(5)+1) * time.Millisecond)
			}
		}(i)
	}
	// Timer churn: schedule and racily stop.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + i)))
			for j := 0; j < 100; j++ {
				tm := f.AfterFunc(time.Duration(rng.Intn(10))*time.Millisecond, func() {})
				if rng.Intn(2) == 0 {
					tm.Stop()
				}
			}
		}(i)
	}
	// Gate traffic: bounded and yielding, so the busy flag toggles
	// without starving the advancers of a busy==0 observation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 2000; j++ {
			f.AddBusy(1)
			runtime.Gosched()
			f.DoneBusy(1)
		}
	}()

	fin := make(chan struct{})
	go func() {
		wg.Wait()
		close(fin)
	}()
	// The sleepers need someone to keep advancing after the advancers
	// finish; drain until everything exits.
	for {
		select {
		case <-fin:
			close(stopAll)
			return
		default:
			f.Advance(time.Millisecond)
		}
	}
}

// TestRealVsFakeOrdering is the differential test: the same scenario —
// three timers and a sleeping goroutine with well-separated deadlines —
// must produce the same observable order on the wall clock and on the
// Fake. On the wall clock, real time gives the woken sleeper its slice
// before the next deadline; on the Fake the sleeper gets the same
// guarantee by being a registered driver under AutoAdvance (a bare
// Advance would not wait for a woken goroutine — that asymmetry is the
// documented semantic this test pins). The real run uses 30ms spacings
// so OS scheduling noise cannot reorder it.
func TestRealVsFakeOrdering(t *testing.T) {
	scenario := func(c Clock, f *Fake) []string {
		var mu sync.Mutex
		var order []string
		add := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if f != nil {
				f.Register()
				defer f.Unregister()
			}
			c.Sleep(45 * time.Millisecond)
			add("sleep45")
		}()
		// Ensure the sleeper is scheduled before the timers, on both
		// clocks, so registration order is part of the shared scenario.
		if f != nil {
			f.BlockUntilWaiters(1)
		} else {
			time.Sleep(5 * time.Millisecond)
		}
		c.AfterFunc(30*time.Millisecond, func() { add("t30") })
		c.AfterFunc(90*time.Millisecond, func() { add("t90") })
		tm := c.AfterFunc(60*time.Millisecond, func() { add("t60-cancelled") })
		c.AfterFunc(1*time.Millisecond, func() { tm.Stop() })
		if f != nil {
			stop := f.AutoAdvance()
			f.Register()
			f.Sleep(120 * time.Millisecond)
			f.Unregister()
			stop()
		} else {
			time.Sleep(150 * time.Millisecond)
		}
		wg.Wait()
		mu.Lock()
		defer mu.Unlock()
		return order
	}

	fake := NewFake(time.Time{})
	fakeOrder := scenario(fake, fake)
	realOrder := scenario(Real(), nil)

	want := []string{"t30", "sleep45", "t90"}
	if !reflect.DeepEqual(fakeOrder, want) {
		t.Fatalf("fake order %v, want %v", fakeOrder, want)
	}
	if !reflect.DeepEqual(realOrder, want) {
		t.Fatalf("real order %v, want %v (host too loaded?)", realOrder, want)
	}
}
