// Package clock abstracts time for the real-time runtimes (livenet's
// in-process channels, nettrans's sockets, the ssbyz-node daemon): a
// Clock interface mirroring the package time operations those layers
// use, a Real implementation that delegates to the wall clock, and a
// deterministic Fake (fake.go) that fires timers in a total
// (deadline, registration) order under explicit Advance/Step control.
//
// The point is ROADMAP item 5 — one protocol core, three runtimes: the
// discrete-event simulator owns virtual time natively; with the Clock
// injected, the live runtimes run either on the wall clock (production,
// the -live campaigns) or on a Fake (deterministic CI campaigns,
// faster-than-real soaks) with no change to protocol or transport code.
package clock

import "time"

// Clock is the time source a runtime schedules against. Real() wraps
// package time; NewFake() returns a virtual clock that only moves when
// told to.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Since returns the elapsed time from t to Now.
	Since(t time.Time) time.Duration
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
	// After returns a channel that receives the fire instant once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules fn after d on a clock-owned goroutine (the
	// advancing goroutine, for a Fake) and returns a cancellation handle.
	AfterFunc(d time.Duration, fn func()) Timer
	// NewTimer returns a channel-based timer firing after d.
	NewTimer(d time.Duration) Timer
}

// Timer is a cancellable pending timer, the subset of *time.Timer the
// runtimes need.
type Timer interface {
	// C returns the delivery channel (nil for AfterFunc timers).
	C() <-chan time.Time
	// Stop cancels the timer; it reports whether the timer was still
	// pending. As with time.Timer, Stop does not wait for an AfterFunc
	// body that already started.
	Stop() bool
}

// Gate is the quiescence hook a deterministic clock exposes: work units
// created outside timer bodies (mailbox events in flight, receive-loop
// deliveries) register as busy so the clock never advances across them.
// The Real clock does not implement Gate; callers obtain it with a type
// assertion and skip the accounting on the wall-clock path.
type Gate interface {
	// AddBusy registers n outstanding work units.
	AddBusy(n int)
	// DoneBusy retires n work units.
	DoneBusy(n int)
}

// realClock delegates to package time.
type realClock struct{}

// Real returns the wall clock. It is stateless; every call returns an
// equivalent value.
func Real() Clock { return realClock{} }

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (realClock) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{t: time.AfterFunc(d, fn)}
}

func (realClock) NewTimer(d time.Duration) Timer {
	return realTimer{t: time.NewTimer(d)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time { return rt.t.C }
func (rt realTimer) Stop() bool          { return rt.t.Stop() }
