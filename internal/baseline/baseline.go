// Package baseline reimplements the synchronous Byzantine agreement of
// Toueg, Perry and Srikanth (SIAM J. Comput. 16(3), 1987) — the protocol
// whose building-block structure ss-Byz-Agree follows and whose speed it
// improves on. It is the comparator for the paper's headline claim:
//
//	"Our protocol ... has the additional advantage of having a
//	message-driven rounds structure and not time-driven rounds
//	structure. Thus the actual time for terminating the protocol
//	depends on the actual communication network speed and not on the
//	worst possible bound on message delivery time."
//
// The baseline therefore advances in lock-step rounds of fixed duration Φ
// on each node's local clock, anchored at the General's round-0 initiation:
// messages of round r are sent at the start of round r and evaluated only
// at round boundaries, no matter how early they arrive. Measured on the
// same delay traces as ss-Byz-Agree, the baseline's latency is flat at the
// worst-case round span while ss-Byz-Agree's tracks the actual delay —
// exactly the shape experiment E5/F2 reproduces.
//
// The baseline is NOT self-stabilizing: it assumes the conventional
// synchronous model (all correct nodes start round 0 together, clean
// initial state). The simulator grants it that assumption by having every
// correct node anchor its round structure at the receipt of the General's
// initiation message.
package baseline

import (
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// Sub-kinds carried in Message.Aux for protocol.BaselineRound messages.
const (
	// AuxInitiator is the General's round-0 value dissemination.
	AuxInitiator = iota + 1
	// AuxInit, AuxEcho, AuxInitPrime, AuxEchoPrime are the TPS broadcast
	// primitive's message types, relayed in lock-step rounds.
	AuxInit
	AuxEcho
	AuxInitPrime
	AuxEchoPrime
)

// tagRound drives the lock-step round structure.
const tagRound = "baseline-round"

// triple identifies one TPS broadcast (p, m, k).
type triple struct {
	P protocol.NodeID
	M protocol.Value
	K int
}

// Node runs the TPS-87 agreement as one correct participant. It implements
// protocol.Node. A single agreement per General is supported (the
// comparator only needs one-shot runs).
type Node struct {
	rt protocol.Runtime
	pp protocol.Params

	// sessions is the per-General agreement state.
	sessions map[protocol.NodeID]*session
}

var _ protocol.Node = (*Node)(nil)

// NewNode returns an unattached baseline node.
func NewNode() *Node {
	return &Node{sessions: make(map[protocol.NodeID]*session)}
}

// session is the per-General state: the TPS broadcast primitive plus the
// agreement's phase logic, clocked by lock-step rounds.
type session struct {
	g        protocol.NodeID
	anchored bool
	anchor   simtime.Local // local time of round 0
	round    int           // current round index (advances by timer only)

	// Received message sets, keyed by sub-kind and triple, with the round
	// at which each arrival becomes visible (the NEXT round boundary —
	// the essence of time-driven rounds).
	inits      map[triple]int
	echoes     map[triple]map[protocol.NodeID]int
	initPrimes map[triple]map[protocol.NodeID]int
	echoPrimes map[triple]map[protocol.NodeID]int

	sentEcho      map[triple]bool
	sentInitPrime map[triple]bool
	sentEchoPrime map[triple]bool
	accepted      map[triple]int // triple -> round of acceptance
	broadcasters  map[protocol.NodeID]bool

	value    protocol.Value
	haveInit bool
	initVal  protocol.Value

	returned bool
	decided  bool
	retVal   protocol.Value
}

// Start attaches the runtime.
func (n *Node) Start(rt protocol.Runtime) {
	n.rt = rt
	n.pp = rt.Params()
}

// session returns (creating) the per-General state.
func (n *Node) session(g protocol.NodeID) *session {
	s, ok := n.sessions[g]
	if !ok {
		s = &session{
			g:          g,
			inits:      make(map[triple]int),
			echoes:     make(map[triple]map[protocol.NodeID]int),
			initPrimes: make(map[triple]map[protocol.NodeID]int),
			echoPrimes: make(map[triple]map[protocol.NodeID]int),

			sentEcho:      make(map[triple]bool),
			sentInitPrime: make(map[triple]bool),
			sentEchoPrime: make(map[triple]bool),
			accepted:      make(map[triple]int),
			broadcasters:  make(map[protocol.NodeID]bool),
		}
		n.sessions[g] = s
	}
	return s
}

// InitiateAgreement starts agreement with this node as General: it
// disseminates m in round 0.
func (n *Node) InitiateAgreement(m protocol.Value) {
	self := n.rt.ID()
	n.rt.Trace(protocol.TraceEvent{Kind: protocol.EvInitiate, G: self, M: m})
	n.rt.Broadcast(protocol.Message{
		Kind: protocol.BaselineRound, Aux: AuxInitiator, G: self, M: m,
	})
}

// Result returns the outcome for General g.
func (n *Node) Result(g protocol.NodeID) (returned, decided bool, value protocol.Value) {
	s, ok := n.sessions[g]
	if !ok {
		return false, false, protocol.Bottom
	}
	return s.returned, s.decided, s.retVal
}

// OnMessage records arrivals; nothing is evaluated before the next round
// boundary (time-driven rounds).
func (n *Node) OnMessage(from protocol.NodeID, m protocol.Message) {
	if m.Kind != protocol.BaselineRound {
		return
	}
	if int(m.G) < 0 || int(m.G) >= n.pp.N {
		return
	}
	s := n.session(m.G)
	switch m.Aux {
	case AuxInitiator:
		if from != m.G {
			return
		}
		if !s.anchored {
			// Synchronous-model assumption: receipt of the General's
			// round-0 message starts the round structure.
			s.anchored = true
			s.anchor = n.rt.Now()
			s.round = 0
			n.rt.Trace(protocol.TraceEvent{Kind: protocol.EvInvoke, G: m.G, M: m.M})
			n.armRound(s, 1)
		}
		if !s.haveInit {
			s.haveInit = true
			s.initVal = m.M
		}
	case AuxInit:
		if from != m.P {
			return
		}
		tr := triple{P: m.P, M: m.M, K: m.K}
		if _, ok := s.inits[tr]; !ok {
			s.inits[tr] = s.nextRound()
		}
	case AuxEcho:
		s.record(s.echoes, m, from)
	case AuxInitPrime:
		s.record(s.initPrimes, m, from)
	case AuxEchoPrime:
		s.record(s.echoPrimes, m, from)
	}
}

// record stores one arrival with its visibility round.
func (s *session) record(set map[triple]map[protocol.NodeID]int, m protocol.Message, from protocol.NodeID) {
	tr := triple{P: m.P, M: m.M, K: m.K}
	senders, ok := set[tr]
	if !ok {
		senders = make(map[protocol.NodeID]int)
		set[tr] = senders
	}
	if _, ok := senders[from]; !ok {
		senders[from] = s.nextRound()
	}
}

// nextRound is the round at which a message arriving now becomes visible:
// the upcoming boundary. Before the anchor is set, arrivals are visible
// from round 0 on (they were "in the mailbox at the start").
func (s *session) nextRound() int {
	if !s.anchored {
		return 0
	}
	return s.round + 1
}

// countVisible counts distinct senders visible at round r.
func countVisible(set map[triple]map[protocol.NodeID]int, tr triple, r int) int {
	n := 0
	for _, vis := range set[tr] {
		if vis <= r {
			n++
		}
	}
	return n
}

// armRound schedules the boundary of round r (at anchor + r·Φ local time).
func (n *Node) armRound(s *session, r int) {
	elapsed := n.pp.Sub(n.rt.Now(), s.anchor)
	dl := simtime.Duration(r)*n.pp.Phi() - elapsed
	if dl < 0 {
		dl = 0
	}
	n.rt.After(dl, protocol.TimerTag{Name: tagRound, G: s.g, K: r})
}

// OnTimer advances the lock-step round structure.
func (n *Node) OnTimer(tag protocol.TimerTag) {
	if tag.Name != tagRound {
		return
	}
	s, ok := n.sessions[tag.G]
	if !ok || !s.anchored || s.returned {
		return
	}
	if tag.K <= s.round {
		return
	}
	s.round = tag.K
	n.stepRound(s)
	if !s.returned && s.round <= 2*(n.pp.F+1)+3 {
		n.armRound(s, s.round+1)
	}
}

// stepRound executes the round logic at a boundary: first the broadcast
// primitive's relays, then the agreement's phase rules. Phases of the
// agreement span two rounds each, exactly like ss-Byz-Agree's 2k·Φ
// structure, so latencies are directly comparable.
func (n *Node) stepRound(s *session) {
	r := s.round

	// Round 1: echo the General's value as the k=1 broadcast init (the
	// General's dissemination doubles as broadcast (G, m, 1)) and, at every
	// node, start relaying the primitive.
	if s.haveInit {
		tr := triple{P: s.g, M: s.initVal, K: 0}
		if _, ok := s.inits[tr]; !ok {
			s.inits[tr] = r
		}
	}

	// TPS broadcast primitive, time-driven: for every known triple run the
	// round-guarded relay rules.
	for tr := range s.inits {
		if s.inits[tr] <= r && !s.sentEcho[tr] && r <= 2*tr.K+1 {
			s.sentEcho[tr] = true
			n.broadcastAux(AuxEcho, s.g, tr)
		}
	}
	all := make(map[triple]bool)
	for tr := range s.echoes {
		all[tr] = true
	}
	for tr := range s.initPrimes {
		all[tr] = true
	}
	for tr := range s.echoPrimes {
		all[tr] = true
	}
	for tr := range all {
		if r <= 2*tr.K+2 {
			if cnt := countVisible(s.echoes, tr, r); cnt >= n.pp.ByzQuorum() && !s.sentInitPrime[tr] {
				s.sentInitPrime[tr] = true
				n.broadcastAux(AuxInitPrime, s.g, tr)
			}
			if cnt := countVisible(s.echoes, tr, r); cnt >= n.pp.Quorum() {
				n.accept(s, tr, r)
			}
		}
		if r <= 2*tr.K+3 {
			if cnt := countVisible(s.initPrimes, tr, r); cnt >= n.pp.ByzQuorum() {
				s.broadcasters[tr.P] = true
			}
			if cnt := countVisible(s.initPrimes, tr, r); cnt >= n.pp.Quorum() && !s.sentEchoPrime[tr] {
				s.sentEchoPrime[tr] = true
				n.broadcastAux(AuxEchoPrime, s.g, tr)
			}
		}
		if cnt := countVisible(s.echoPrimes, tr, r); cnt >= n.pp.ByzQuorum() && !s.sentEchoPrime[tr] {
			s.sentEchoPrime[tr] = true
			n.broadcastAux(AuxEchoPrime, s.g, tr)
		}
		if cnt := countVisible(s.echoPrimes, tr, r); cnt >= n.pp.Quorum() {
			n.accept(s, tr, r)
		}
	}

	n.stepAgreement(s)
}

// broadcastAux sends one primitive message for tr to all nodes.
func (n *Node) broadcastAux(aux int, g protocol.NodeID, tr triple) {
	n.rt.Broadcast(protocol.Message{
		Kind: protocol.BaselineRound, Aux: aux, G: g, M: tr.M, P: tr.P, K: tr.K,
	})
}

// accept records acceptance of tr (once).
func (n *Node) accept(s *session, tr triple, r int) {
	if _, ok := s.accepted[tr]; ok {
		return
	}
	s.accepted[tr] = r
	n.rt.Trace(protocol.TraceEvent{Kind: protocol.EvAccept, G: s.g, M: tr.M, K: tr.K, P: tr.P})
}

// stepAgreement runs the TPS-87 agreement phase rules at a boundary.
// Phase p spans rounds 2p..2p+1; a node decides when it has accepted the
// General's value plus p distinct relays by the end of phase p, and aborts
// when the broadcaster count lags the phase index.
func (n *Node) stepAgreement(s *session) {
	if s.returned {
		return
	}
	r := s.round

	// Decide path: accepted (G, m, 0) plus k distinct (p_i, m, i) chains.
	for tr, ar := range s.accepted {
		if tr.P != s.g || tr.K != 0 || ar > r {
			continue
		}
		// Count relay chains for this value.
		relays := n.distinctRelays(s, tr.M, r)
		phase := (r - 1) / 2
		if phase < 0 {
			phase = 0
		}
		need := phase
		if need > n.pp.F {
			need = n.pp.F
		}
		if relays >= need || phase == 0 {
			s.returned = true
			s.decided = true
			s.retVal = tr.M
			// Relay our own endorsement so laggards catch up.
			self := n.rt.ID()
			mytr := triple{P: self, M: tr.M, K: relays + 1}
			if !s.sentEcho[mytr] {
				n.broadcastAux(AuxInit, s.g, mytr)
			}
			n.rt.Trace(protocol.TraceEvent{
				Kind: protocol.EvBaselineDecide, G: s.g, M: tr.M, K: r,
			})
			return
		}
	}

	// Abort path: past phase 2f+1 with no decision.
	if r > 2*(n.pp.F+1)+3 {
		s.returned = true
		s.decided = false
		s.retVal = protocol.Bottom
		n.rt.Trace(protocol.TraceEvent{
			Kind: protocol.EvAbort, G: s.g, M: protocol.Bottom, K: r,
		})
	}
}

// distinctRelays counts distinct non-General nodes whose relay broadcast
// (p, m, k≥1) this node has accepted by round r.
func (n *Node) distinctRelays(s *session, m protocol.Value, r int) int {
	seen := make(map[protocol.NodeID]bool)
	for tr, ar := range s.accepted {
		if ar <= r && tr.M == m && tr.K >= 1 && tr.P != s.g {
			seen[tr.P] = true
		}
	}
	return len(seen)
}
