package baseline

import (
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// runWorld assembles a world of n baseline nodes with the given delay
// range, initiates value m at General 0 at t=2d, and runs to quiescence.
func runWorld(t *testing.T, n int, delayMin, delayMax simtime.Duration, m protocol.Value) (*simnet.World, []*Node) {
	t.Helper()
	pp := protocol.DefaultParams(n)
	w, err := simnet.New(simnet.Config{
		Params:   pp,
		Seed:     42,
		DelayMin: delayMin,
		DelayMax: delayMax,
	})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = NewNode()
		w.SetNode(protocol.NodeID(i), nodes[i])
	}
	w.Start()
	w.Scheduler().At(simtime.Real(2*pp.D), func() {
		nodes[0].InitiateAgreement(m)
	})
	w.RunUntil(simtime.Real(10 * pp.DeltaAgr()))
	return w, nodes
}

func TestCorrectGeneralAllDecide(t *testing.T) {
	for _, n := range []int{4, 7, 10} {
		n := n
		t.Run(map[int]string{4: "n4", 7: "n7", 10: "n10"}[n], func(t *testing.T) {
			_, nodes := runWorld(t, n, 500, 1000, "v")
			for i, node := range nodes {
				returned, decided, v := node.Result(0)
				if !returned || !decided || v != "v" {
					t.Errorf("node %d: returned=%v decided=%v value=%q, want decide \"v\"", i, returned, decided, v)
				}
			}
		})
	}
}

// TestLatencyIsTimeDriven verifies the defining property of the baseline:
// its decision latency is pinned to whole round spans (multiples of Φ on
// the local clock) and does not shrink when the actual network delay does.
func TestLatencyIsTimeDriven(t *testing.T) {
	pp := protocol.DefaultParams(7)
	latency := func(delayMax simtime.Duration) simtime.Real {
		w, _ := runWorld(t, 7, delayMax/2, delayMax, "v")
		decs := w.Recorder().ByKind(protocol.EvBaselineDecide)
		if len(decs) == 0 {
			t.Fatal("no baseline decisions recorded")
		}
		var last simtime.Real
		for _, ev := range decs {
			if ev.RT > last {
				last = ev.RT
			}
		}
		return last
	}
	fast := latency(pp.D / 10)
	slow := latency(pp.D)
	// Both runs must take at least 2 full rounds (2Φ = 16d) after the
	// initiation at 2d; a message-driven protocol would finish the fast run
	// an order of magnitude sooner.
	floor := simtime.Real(2 * pp.Phi())
	if fast < floor {
		t.Errorf("fast-network latency %d below the round-structure floor %d: baseline is not time-driven", fast, floor)
	}
	// The fast run saves at most the delivery slack of the initiation leg,
	// not the round structure: the two latencies stay within one Φ.
	diff := slow - fast
	if diff < 0 {
		diff = -diff
	}
	if diff > simtime.Real(pp.Phi()) {
		t.Errorf("latency gap %d between fast and slow networks exceeds Φ=%d; rounds are not lock-step", diff, pp.Phi())
	}
}

func TestNoInitiationNoDecision(t *testing.T) {
	pp := protocol.DefaultParams(4)
	w, err := simnet.New(simnet.Config{Params: pp, Seed: 1})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i] = NewNode()
		w.SetNode(protocol.NodeID(i), nodes[i])
	}
	w.Start()
	w.RunUntil(simtime.Real(3 * pp.DeltaAgr()))
	for i, node := range nodes {
		if returned, _, _ := node.Result(0); returned {
			t.Errorf("node %d returned without any initiation", i)
		}
	}
}

func TestSilentGeneralOthersDoNotDecide(t *testing.T) {
	pp := protocol.DefaultParams(7)
	w, err := simnet.New(simnet.Config{Params: pp, Seed: 7})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	nodes := make([]*Node, 7)
	for i := range nodes {
		nodes[i] = NewNode()
		w.SetNode(protocol.NodeID(i), nodes[i])
	}
	w.Start()
	// General 3 never initiates; some other node's session state for G=3
	// must never decide.
	w.RunUntil(simtime.Real(5 * pp.DeltaAgr()))
	for i, node := range nodes {
		if _, decided, _ := node.Result(3); decided {
			t.Errorf("node %d decided for a silent General", i)
		}
	}
}

func TestResultUnknownGeneral(t *testing.T) {
	n := NewNode()
	returned, decided, v := n.Result(5)
	if returned || decided || v != protocol.Bottom {
		t.Errorf("Result on fresh node = (%v,%v,%q), want (false,false,⊥)", returned, decided, v)
	}
}
