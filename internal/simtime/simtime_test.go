package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSubAndAdd(t *testing.T) {
	cases := []struct {
		name      string
		now, then Local
		want      Duration
	}{
		{"forward", 100, 30, 70},
		{"zero", 55, 55, 0},
		{"backward", 30, 100, -70},
		{"negative readings", -10, -50, 40},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.now.Sub(tc.then); got != tc.want {
				t.Errorf("(%d).Sub(%d) = %d, want %d", tc.now, tc.then, got, tc.want)
			}
			if got := tc.then.Add(tc.want); got != tc.now {
				t.Errorf("(%d).Add(%d) = %d, want %d", tc.then, tc.want, got, tc.now)
			}
		})
	}
}

func TestRealArithmetic(t *testing.T) {
	if got := Real(500).Sub(Real(200)); got != 300 {
		t.Errorf("Real Sub = %d, want 300", got)
	}
	if got := Real(500).Add(Duration(-100)); got != 400 {
		t.Errorf("Real Add = %d, want 400", got)
	}
}

func TestWrapSub(t *testing.T) {
	const wrap = 1000
	cases := []struct {
		name      string
		now, then Local
		want      Duration
	}{
		{"plain", 700, 600, 100},
		{"across wrap", 50, 950, 100},
		{"zero", 123, 123, 0},
		{"half backwards", 100, 700, -600 + 1000}, // 400 forward (< wrap/2)
		{"future then", 900, 100, -200},           // 800 > wrap/2 → negative
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := WrapSub(tc.now, tc.then, wrap); got != tc.want {
				t.Errorf("WrapSub(%d,%d,%d) = %d, want %d", tc.now, tc.then, wrap, got, tc.want)
			}
		})
	}
}

func TestWrapSubNoWrap(t *testing.T) {
	if got := WrapSub(10, 500, 0); got != -490 {
		t.Errorf("WrapSub with wrap=0 = %d, want -490", got)
	}
}

func TestWrapAdd(t *testing.T) {
	const wrap = 1000
	cases := []struct {
		name string
		t    Local
		dl   Duration
		want Local
	}{
		{"plain", 100, 200, 300},
		{"across wrap", 900, 200, 100},
		{"negative across", 100, -200, 900},
		{"zero", 500, 0, 500},
		{"full cycle", 321, 1000, 321},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := WrapAdd(tc.t, tc.dl, wrap); got != tc.want {
				t.Errorf("WrapAdd(%d,%d,%d) = %d, want %d", tc.t, tc.dl, wrap, got, tc.want)
			}
		})
	}
}

// TestWrapRoundTripProperty: for any reading and any interval shorter than
// wrap/2, advancing then subtracting recovers the interval exactly.
func TestWrapRoundTripProperty(t *testing.T) {
	const wrap = 1 << 20
	f := func(start int64, dlRaw int64) bool {
		base := Local(((start % wrap) + wrap) % wrap)
		dl := Duration(((dlRaw % (wrap / 2)) + wrap/2) % (wrap / 2)) // [0, wrap/2)
		end := WrapAdd(base, dl, wrap)
		return WrapSub(end, base, wrap) == dl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWrapSubAntisymmetry: WrapSub(a,b) == −WrapSub(b,a) unless the gap is
// exactly wrap/2.
func TestWrapSubAntisymmetry(t *testing.T) {
	const wrap = 1 << 16
	f := func(aRaw, bRaw int64) bool {
		a := Local(((aRaw % wrap) + wrap) % wrap)
		b := Local(((bRaw % wrap) + wrap) % wrap)
		d1, d2 := WrapSub(a, b, wrap), WrapSub(b, a, wrap)
		if d1 == wrap/2 || d2 == wrap/2 {
			return true // boundary is one-sided by convention
		}
		return d1 == -d2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockZeroValueIsIdeal(t *testing.T) {
	var c Clock
	for _, rt := range []Real{0, 1, 1000, 1 << 40} {
		if got := c.ReadAt(rt); got != Local(rt) {
			t.Errorf("zero clock ReadAt(%d) = %d", rt, got)
		}
	}
	if got := c.RealAfter(500); got != 500 {
		t.Errorf("zero clock RealAfter(500) = %d", got)
	}
}

func TestClockOffset(t *testing.T) {
	c := Clock{OffsetTicks: 250}
	if got := c.ReadAt(100); got != 350 {
		t.Errorf("ReadAt(100) = %d, want 350", got)
	}
}

func TestDriftClockFastAndSlow(t *testing.T) {
	fast := DriftClock(0, +1000, 0) // +1000 ppm
	slow := DriftClock(0, -1000, 0)
	const span = 1_000_000
	if got := fast.ReadAt(span); got != span+1000 {
		t.Errorf("fast ReadAt = %d, want %d", got, span+1000)
	}
	if got := slow.ReadAt(span); got != span-1000 {
		t.Errorf("slow ReadAt = %d, want %d", got, span-1000)
	}
}

// TestRealAfterNeverEarly: a timer scheduled via RealAfter must never fire
// before the local clock has advanced by the requested amount.
func TestRealAfterNeverEarly(t *testing.T) {
	clocks := []Clock{
		{},
		DriftClock(0, +500, 0),
		DriftClock(0, -500, 0),
		DriftClock(123, +1_000_000/2, 0), // 50% fast
	}
	f := func(startRaw, dlRaw int64) bool {
		start := Real(startRaw % (1 << 30))
		if start < 0 {
			start = -start
		}
		dl := Duration(dlRaw % (1 << 20))
		if dl < 0 {
			dl = -dl
		}
		for _, c := range clocks {
			fire := start.Add(c.RealAfter(dl))
			if c.ReadAt(fire).Sub(c.ReadAt(start)) < dl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockWrap(t *testing.T) {
	c := Clock{OffsetTicks: 900, Wrap: 1000}
	if got := c.ReadAt(200); got != 100 {
		t.Errorf("wrapped ReadAt(200) = %d, want 100", got)
	}
}

func TestClockString(t *testing.T) {
	if s := (Clock{}).String(); s == "" {
		t.Error("empty Clock String")
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.At(10, func() { order = append(order, 11) }) // same instant: FIFO
	s.RunUntil(100)
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
	if s.Now() != 100 {
		t.Errorf("Now = %d, want 100 (deadline)", s.Now())
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	id := s.At(10, func() { ran = true })
	s.Cancel(id)
	s.Cancel(id) // double cancel is a no-op
	s.RunUntil(100)
	if ran {
		t.Error("cancelled event ran")
	}
}

func TestSchedulerPastSchedulingClamps(t *testing.T) {
	s := NewScheduler()
	s.At(50, func() {})
	s.RunUntil(50)
	ran := false
	s.At(10, func() { ran = true }) // in the past → clamped to now
	s.RunUntil(60)
	if !ran {
		t.Error("past-scheduled event never ran")
	}
}

func TestSchedulerAfter(t *testing.T) {
	s := NewScheduler()
	var at Real
	s.At(40, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.RunUntil(100)
	if at != 45 {
		t.Errorf("After fired at %d, want 45", at)
	}
}

func TestSchedulerStep(t *testing.T) {
	s := NewScheduler()
	if s.Step() {
		t.Error("Step on empty scheduler returned true")
	}
	s.At(5, func() {})
	if !s.Step() {
		t.Error("Step with one event returned false")
	}
	if s.Now() != 5 {
		t.Errorf("Now = %d after Step, want 5", s.Now())
	}
}

func TestSchedulerDeadlineEventsRun(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.At(100, func() { ran = true })
	s.RunUntil(100)
	if !ran {
		t.Error("event exactly at deadline did not run")
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			s.After(1, recurse)
		}
	}
	s.At(0, recurse)
	s.RunUntil(10)
	if depth != 5 {
		t.Errorf("nested chain depth = %d, want 5", depth)
	}
}

func TestSchedulerPending(t *testing.T) {
	s := NewScheduler()
	s.At(1, func() {})
	s.At(2, func() {})
	if got := s.Pending(); got != 2 {
		t.Errorf("Pending = %d, want 2", got)
	}
	s.RunUntil(5)
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending after run = %d, want 0", got)
	}
}

// TestSchedulerPostInterleavesWithAt: uncancellable Post events share the
// same (time, schedule-order) total order as cancellable At events.
func TestSchedulerPostInterleavesWithAt(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(10, func() { order = append(order, 1) })
	s.Post(10, func() { order = append(order, 2) }) // same instant: FIFO
	s.PostAfter(5, func() { order = append(order, 0) })
	s.At(20, func() { order = append(order, 3) })
	s.RunUntil(100)
	want := []int{0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
}

type recordingHandler struct {
	fired *[]Real
	s     *Scheduler
}

func (h recordingHandler) RunEvent() { *h.fired = append(*h.fired, h.s.Now()) }

// TestSchedulerPostHandler: handler events fire exactly like fn events.
func TestSchedulerPostHandler(t *testing.T) {
	s := NewScheduler()
	var fired []Real
	h := recordingHandler{fired: &fired, s: s}
	s.PostHandler(30, h)
	s.PostHandlerAfter(10, h)
	s.RunUntil(100)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 30 {
		t.Errorf("handler events fired at %v, want [10 30]", fired)
	}
}

// TestSchedulerProcessed: the deterministic cost counter counts executed
// events only — cancelled placeholders are excluded.
func TestSchedulerProcessed(t *testing.T) {
	s := NewScheduler()
	id := s.At(5, func() {})
	s.At(10, func() {})
	s.Post(15, func() {})
	s.Cancel(id)
	s.RunUntil(100)
	if got := s.Processed(); got != 2 {
		t.Errorf("Processed = %d, want 2", got)
	}
}

// TestSchedulerCancelBookkeeping: cancellable IDs leave no residue in the
// live map once run or cancelled, so long simulations don't leak.
func TestSchedulerCancelBookkeeping(t *testing.T) {
	s := NewScheduler()
	id := s.At(5, func() {})
	s.At(6, func() {})
	s.Cancel(id)
	s.RunUntil(10)
	if len(s.live) != 0 {
		t.Errorf("live map holds %d entries after drain, want 0", len(s.live))
	}
	s.Cancel(id)            // long after it was cancelled: no-op
	s.Cancel(EventID(9999)) // never issued: no-op
	if len(s.live) != 0 {
		t.Errorf("stale Cancel created %d entries", len(s.live))
	}
}

// TestSchedulerScheduleBehindBase: the staged-run pattern. A RunUntil
// deadline can stop execution with the wheel base already swept forward
// to the next pending event's tick; an event then scheduled between the
// deadline and that tick must still run at its own time and in order
// (regression: it used to land in a bucket the base had passed and run
// one wheel period late, after the later event).
func TestSchedulerScheduleBehindBase(t *testing.T) {
	s := NewScheduler()
	var order []Real
	note := func() { order = append(order, s.Now()) }
	s.Post(5000, note)
	s.RunUntil(1000) // base hunts ahead to 5000; now stays 1000
	if s.Now() != 1000 {
		t.Fatalf("Now = %d after RunUntil(1000), want 1000", s.Now())
	}
	s.Post(1100, note) // between the deadline and the pending event
	s.Post(30000, note)
	s.RunUntil(100000)
	want := []Real{1100, 5000, 30000}
	if len(order) != len(want) {
		t.Fatalf("fired at %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired at %v, want %v", order, want)
		}
	}
	if s.Now() != 100000 {
		t.Errorf("Now = %d, want 100000", s.Now())
	}
}

// TestSchedulerRewindKeepsCancelSemantics: rewinding the wheel must not
// resurrect cancelled events nor lose pending cancellable ones.
func TestSchedulerRewindKeepsCancelSemantics(t *testing.T) {
	s := NewScheduler()
	ran := make(map[string]bool)
	s.At(5000, func() { ran["keep"] = true })
	id := s.At(5001, func() { ran["cancelled"] = true })
	s.Cancel(id)
	s.RunUntil(1000) // sweeps base forward toward 5000
	s.Post(1100, func() { ran["early"] = true })
	s.RunUntil(100000)
	if !ran["early"] || !ran["keep"] || ran["cancelled"] {
		t.Errorf("ran = %v, want early+keep only", ran)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after drain, want 0", s.Pending())
	}
}

// TestSchedulerManyEventsSorted: a property-style stress of heap ordering.
func TestSchedulerManyEventsSorted(t *testing.T) {
	s := NewScheduler()
	var fired []Real
	// Deterministic pseudo-random times.
	x := int64(12345)
	for i := 0; i < 500; i++ {
		x = (x*6364136223846793005 + 1442695040888963407) % (1 << 20)
		at := Real(x)
		if at < 0 {
			at = -at
		}
		s.At(at, func() { fired = append(fired, s.Now()) })
	}
	s.RunUntil(math.MaxInt32)
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events fired out of order: %d after %d", fired[i], fired[i-1])
		}
	}
	if len(fired) != 500 {
		t.Errorf("fired %d events, want 500", len(fired))
	}
}
