package simtime

// EventID identifies a cancellable scheduled event. Uncancellable events
// (the Post* family) have no ID and cost neither an allocation nor a map
// entry — they are the bulk of a simulation's events (message deliveries).
type EventID uint64

// Handler is a no-closure event payload: implementations carry their own
// state and are invoked by RunEvent when the event fires. The simulated
// transport uses pooled handlers so that scheduling a message delivery
// performs zero heap allocations.
type Handler interface {
	RunEvent()
}

// funcHandler adapts a plain func() to Handler. Closure-based events (the
// At/Post family) box one per call; the hot delivery path never does.
type funcHandler func()

func (f funcHandler) RunEvent() { f() }

// event is one wheel entry. Its tick is implied by the bucket it sits in
// (and its wrap-aware distance from the wheel base), so wheel storage is
// 32 bytes per in-flight event with a single pointer-carrying field — the
// dominant memory of a large-n broadcast storm, where millions of events
// are in flight at once. seq breaks same-instant ties so events run in
// schedule order.
type event struct {
	seq uint64
	id  EventID
	h   Handler
}

// timedEvent is an overflow-heap entry: an event plus its explicit tick.
type timedEvent struct {
	at Real
	event
}

// chunkEvents sizes a bucket chunk so the whole chunk (511 × 32-byte
// events + the next pointer) lands exactly in the 16KB allocator size
// class. Buckets are chains of these fixed chunks instead of growing
// slices: a run shorter than one wheel rotation used to regrow every
// touched bucket from zero capacity through the large-alloc doubling
// ladder, and the allocator's zeroing of those ever-larger arrays was
// ~40% of a big-n S1 cell. Chunks drained by advance() go to a freelist
// and are reused, so steady-state scheduling allocates nothing.
const chunkEvents = 511

// chunk is one fixed-size segment of a bucket's FIFO.
type chunk struct {
	ev   [chunkEvents]event
	next *chunk
}

// bucket is one wheel slot: an append-only chain of chunks. All chunks
// before tail are full, so entry i lives in chunk i/chunkEvents at
// offset i%chunkEvents. n counts entries appended since the last reset.
type bucket struct {
	head, tail *chunk
	n          int
}

// wheelBits sizes the timing wheel: one bucket per tick over a horizon of
// 2^wheelBits ticks. The default d is 1000 ticks, so the whole delivery
// horizon (delays ≤ d) and the short protocol timers (≤ ~13d) fall inside
// the wheel; only the long Δ-constant timers overflow to the heap.
const wheelBits = 14

const wheelSize = 1 << wheelBits
const wheelMask = wheelSize - 1

// Scheduler is a deterministic discrete-event scheduler. Events scheduled
// for the same instant run in the order they were scheduled. Scheduler is
// not safe for concurrent use; the discrete-event runtimes drive it from a
// single goroutine.
//
// The queue is a timing wheel (one FIFO bucket per tick over a fixed
// horizon) with an overflow binary min-heap for events beyond the horizon:
// O(1) schedule and pop for the near-future events that dominate a network
// simulation, instead of an O(log E) sift through a heap of every
// in-flight message. Buckets migrate from the overflow heap exactly when
// their tick enters the horizon, before any direct insert for that tick
// can happen, so the (at, seq) execution order is identical to a single
// global priority queue.
type Scheduler struct {
	now Real
	seq uint64

	// wheel[(base+k) & wheelMask] holds the events for tick base+k,
	// 0 ≤ k < wheelSize, appended in schedule order. base ≤ now at all
	// times. cursor indexes the first unconsumed event of bucket base;
	// curChunk/curBase cache the chunk holding entry cursor (curBase =
	// index of that chunk's first entry) so peek/Step stay O(1).
	wheel    [wheelSize]bucket
	base     Real
	cursor   int
	curChunk *chunk
	curBase  int
	inWheel  int

	// free is the chunk freelist: chains released by drained buckets,
	// reused by bucketAppend before any new allocation.
	free *chunk

	// overflow holds events at ticks ≥ base+wheelSize, ordered by
	// (at, seq).
	overflow []timedEvent

	nextID EventID
	// live tracks cancellable events only: false = pending, true =
	// cancelled (lazy deletion; the entry is skipped when reached).
	live map[EventID]bool

	processed uint64
}

// NewScheduler returns a scheduler positioned at real time 0.
func NewScheduler() *Scheduler {
	return &Scheduler{live: make(map[EventID]bool)}
}

// Now returns the current virtual real time.
func (s *Scheduler) Now() Real { return s.now }

// Processed returns how many events have run so far. It is a deterministic
// cost metric: for a fixed scenario and seed the count is identical on
// every machine, which is what the S1 scaling experiment reports where
// wall-clock would break run-to-run reproducibility.
func (s *Scheduler) Processed() uint64 { return s.processed }

// AddProcessed credits n extra events to the Processed counter. The batched
// delivery path of the simulated transport uses it so that Processed keeps
// counting individual message deliveries: a batch of k same-tick deliveries
// is one scheduler event but k units of simulated work, and the metric must
// stay byte-identical with the per-recipient fan-out it replaced.
func (s *Scheduler) AddProcessed(n uint64) { s.processed += n }

// tickOfSlot recovers the tick a wheel slot currently stands for: the
// unique t ≡ slot (mod wheelSize) within [base, base+wheelSize).
func (s *Scheduler) tickOfSlot(slot int) Real {
	off := (slot - int(s.base)) & wheelMask
	return s.base + Real(off)
}

// schedule enqueues e for tick at, clamping past times to the present
// (scheduling in the past can only arise from adversarial or transient
// inputs).
func (s *Scheduler) schedule(at Real, e event) {
	if at < s.now {
		at = s.now
	}
	if at < s.base {
		// peek ran the base ahead of the clock hunting for the next event
		// and a RunUntil deadline stopped execution before reaching it
		// (base tracks the next event's tick, now the deadline). A new
		// event in [now, base) needs the wheel rewound, or its bucket
		// would not be reached until one full wheel period later.
		s.rewind(at)
	}
	if at < s.base+wheelSize {
		s.bucketAppend(&s.wheel[int(at)&wheelMask], e)
		s.inWheel++
		return
	}
	s.heapPush(timedEvent{at: at, event: e})
}

// bucketAppend appends e to b, extending the chunk chain from the
// freelist (or the heap, only while the fleet of chunks is still
// growing toward the run's peak in-flight population).
func (s *Scheduler) bucketAppend(b *bucket, e event) {
	i := b.n % chunkEvents
	if i == 0 {
		c := s.free
		if c != nil {
			s.free = c.next
			c.next = nil
		} else {
			c = new(chunk)
		}
		if b.tail == nil {
			b.head, b.tail = c, c
		} else {
			b.tail.next = c
			b.tail = c
		}
	}
	b.tail.ev[i] = e
	b.n++
}

// releaseBucket returns b's chunk chain to the freelist and resets b.
// Chunks are zeroed on the way out: the memclr runs over cache-warm
// recycled memory (cheap — the storm this design removes was the
// allocator zeroing ever-larger FRESH arrays), and a freelist of
// nil-pointer chunks costs the garbage collector near nothing to scan,
// where stale Handler words would drag findObject/greyobject work across
// every cycle of a large-n run.
func (s *Scheduler) releaseBucket(b *bucket) {
	if b.tail != nil {
		for c := b.head; c != nil; c = c.next {
			c.ev = [chunkEvents]event{}
		}
		b.tail.next = s.free
		s.free = b.head
	}
	*b = bucket{}
}

// seek positions curChunk/curBase at the chunk holding entry s.cursor of
// the base bucket b. Amortized O(1): the cache only ever moves forward
// until a bucket reset clears it.
func (s *Scheduler) seek(b *bucket) {
	if s.curChunk == nil {
		s.curChunk, s.curBase = b.head, 0
	}
	for s.cursor-s.curBase >= chunkEvents {
		s.curChunk = s.curChunk.next
		s.curBase += chunkEvents
	}
}

// rewind moves the wheel base back to tick to (now ≤ to < base), used on
// the rare staged-run pattern where events are scheduled between
// RunUntil calls at times the base has already swept past. It evacuates
// every pending wheel event to the overflow heap and re-migrates the
// ones inside the new horizon, so bucket contents always match the
// window [base, base+wheelSize). O(wheelSize); never on the hot path.
func (s *Scheduler) rewind(to Real) {
	for i := range s.wheel {
		b := &s.wheel[i]
		if b.n == 0 {
			continue
		}
		at := s.tickOfSlot(i)
		// The base bucket's consumed prefix is stale (Step does not
		// zero slots); only entries from the cursor on are pending.
		skip := 0
		if at == s.base {
			skip = s.cursor
		}
		idx := 0
		for c := b.head; c != nil; c = c.next {
			limit := min(b.n-idx, chunkEvents)
			for j := 0; j < limit; j++ {
				if idx >= skip {
					e := c.ev[j]
					if e.h != nil || e.id != 0 {
						s.heapPush(timedEvent{at: at, event: e})
					}
				}
				idx++
			}
		}
		s.releaseBucket(b)
	}
	s.inWheel = 0
	s.cursor, s.curChunk, s.curBase = 0, nil, 0
	s.base = to
	s.migrate()
}

// migrate moves overflow events whose tick is inside the horizon into
// their buckets.
func (s *Scheduler) migrate() {
	edge := s.base + wheelSize - 1
	for len(s.overflow) > 0 && s.overflow[0].at <= edge {
		e := s.heapPop()
		s.bucketAppend(&s.wheel[int(e.at)&wheelMask], e.event)
		s.inWheel++
	}
}

// At schedules fn to run at real time t and returns an ID for Cancel.
func (s *Scheduler) At(t Real, fn func()) EventID {
	s.seq++
	s.nextID++
	s.live[s.nextID] = false
	s.schedule(t, event{seq: s.seq, id: s.nextID, h: funcHandler(fn)})
	return s.nextID
}

// After schedules fn to run dl ticks of real time from now.
func (s *Scheduler) After(dl Duration, fn func()) EventID {
	return s.At(s.now.Add(dl), fn)
}

// Post schedules fn to run at real time t without cancellation support:
// no ID is assigned and no bookkeeping entry is created. Use it for
// fire-and-forget events off the hot path (the delivery bulk goes through
// PostHandler, which does not even box a closure).
func (s *Scheduler) Post(t Real, fn func()) {
	s.PostHandler(t, funcHandler(fn))
}

// PostAfter is Post at dl ticks from now.
func (s *Scheduler) PostAfter(dl Duration, fn func()) {
	s.Post(s.now.Add(dl), fn)
}

// PostHandler schedules h.RunEvent at real time t without cancellation
// support and without any allocation in the scheduler (the event is a
// value in a bucket and h is caller-owned, typically pooled).
func (s *Scheduler) PostHandler(t Real, h Handler) {
	s.seq++
	s.schedule(t, event{seq: s.seq, h: h})
}

// PostHandlerAfter is PostHandler at dl ticks from now.
func (s *Scheduler) PostHandlerAfter(dl Duration, h Handler) {
	s.PostHandler(s.now.Add(dl), h)
}

// Cancel prevents a scheduled event from running. Cancelling an event that
// already ran or was already cancelled is a no-op.
func (s *Scheduler) Cancel(id EventID) {
	if cancelled, ok := s.live[id]; ok && !cancelled {
		s.live[id] = true
	}
}

// Pending reports how many events (including cancelled placeholders) are
// still queued.
func (s *Scheduler) Pending() int {
	return s.inWheel - s.cursor + len(s.overflow)
}

// advance moves the wheel base to the next tick, recycling the drained
// bucket and migrating overflow events whose tick just entered the
// horizon. The caller guarantees the current bucket is fully consumed.
func (s *Scheduler) advance() {
	b := &s.wheel[int(s.base)&wheelMask]
	s.inWheel -= b.n
	s.releaseBucket(b)
	s.cursor, s.curChunk, s.curBase = 0, nil, 0
	s.base++
	s.migrate()
}

// peek positions the scheduler at the next runnable event and returns its
// time. Cancelled placeholders encountered on the way are consumed without
// running. It returns false when no events remain.
func (s *Scheduler) peek() (Real, bool) {
	for {
		b := &s.wheel[int(s.base)&wheelMask]
		if s.cursor < b.n {
			s.seek(b)
			e := &s.curChunk.ev[s.cursor-s.curBase]
			if e.id != 0 && s.live[e.id] {
				delete(s.live, e.id)
				*e = event{} // release references
				s.cursor++
				continue
			}
			return s.base, true
		}
		if s.inWheel-s.cursor > 0 {
			s.advance()
			continue
		}
		if len(s.overflow) == 0 {
			return 0, false
		}
		// The wheel is empty: jump the base straight to the earliest
		// overflow tick instead of sweeping the gap bucket by bucket.
		s.inWheel -= b.n
		s.releaseBucket(b)
		s.cursor, s.curChunk, s.curBase = 0, nil, 0
		s.base = s.overflow[0].at
		s.migrate()
	}
}

// Step runs the next event, advancing virtual time to it. It returns false
// when no events remain.
func (s *Scheduler) Step() bool {
	at, ok := s.peek()
	if !ok {
		return false
	}
	// peek left curChunk/curBase positioned at the cursor entry.
	e := s.curChunk.ev[s.cursor-s.curBase]
	s.cursor++
	// The consumed slot is NOT zeroed: its handler reference lives until
	// the chunk is recycled and overwritten on a later bucket drain, which
	// retains only pooled (already live) deliveries or an occasional
	// closure for a bounded time — where clearing 32 bytes per event is a
	// measurable share of a large-n run.
	if e.id != 0 {
		delete(s.live, e.id)
	}
	s.now = at
	s.processed++
	if e.h != nil {
		e.h.RunEvent()
	}
	return true
}

// RunUntil executes events until virtual time would exceed deadline or no
// events remain. The clock is left at min(deadline, time of last event).
// Events scheduled exactly at deadline do run.
func (s *Scheduler) RunUntil(deadline Real) {
	for {
		at, ok := s.peek()
		if !ok || at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// ---- overflow heap (binary min-heap by (at, seq)) ----

func (s *Scheduler) heapLess(i, j int) bool {
	if s.overflow[i].at != s.overflow[j].at {
		return s.overflow[i].at < s.overflow[j].at
	}
	return s.overflow[i].seq < s.overflow[j].seq
}

func (s *Scheduler) heapPush(e timedEvent) {
	s.overflow = append(s.overflow, e)
	i := len(s.overflow) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(i, parent) {
			break
		}
		s.overflow[i], s.overflow[parent] = s.overflow[parent], s.overflow[i]
		i = parent
	}
}

func (s *Scheduler) heapPop() timedEvent {
	top := s.overflow[0]
	n := len(s.overflow) - 1
	s.overflow[0] = s.overflow[n]
	s.overflow[n] = timedEvent{}
	s.overflow = s.overflow[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.heapLess(l, smallest) {
			smallest = l
		}
		if r < n && s.heapLess(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s.overflow[i], s.overflow[smallest] = s.overflow[smallest], s.overflow[i]
		i = smallest
	}
	return top
}
