package simtime

import "container/heap"

// EventID identifies a scheduled event so that it can be cancelled.
type EventID uint64

// event is one entry in the scheduler's priority queue.
type event struct {
	at        Real
	seq       uint64 // tie-break so same-time events run in schedule order
	id        EventID
	fn        func()
	cancelled bool
	index     int // heap index
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event scheduler. Events scheduled
// for the same instant run in the order they were scheduled. Scheduler is
// not safe for concurrent use; the discrete-event runtimes drive it from a
// single goroutine.
type Scheduler struct {
	now    Real
	heap   eventHeap
	seq    uint64
	nextID EventID
	byID   map[EventID]*event
}

// NewScheduler returns a scheduler positioned at real time 0.
func NewScheduler() *Scheduler {
	return &Scheduler{byID: make(map[EventID]*event)}
}

// Now returns the current virtual real time.
func (s *Scheduler) Now() Real { return s.now }

// At schedules fn to run at real time t. Scheduling in the past (t < Now)
// runs the event at the current instant (it is clamped to Now), which can
// only arise from adversarial or transient inputs.
func (s *Scheduler) At(t Real, fn func()) EventID {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.nextID++
	e := &event{at: t, seq: s.seq, id: s.nextID, fn: fn}
	heap.Push(&s.heap, e)
	s.byID[e.id] = e
	return e.id
}

// After schedules fn to run dl ticks of real time from now.
func (s *Scheduler) After(dl Duration, fn func()) EventID {
	return s.At(s.now.Add(dl), fn)
}

// Cancel prevents a scheduled event from running. Cancelling an event that
// already ran or was already cancelled is a no-op.
func (s *Scheduler) Cancel(id EventID) {
	if e, ok := s.byID[id]; ok {
		e.cancelled = true
		delete(s.byID, id)
	}
}

// Pending reports how many events (including cancelled placeholders) are
// still queued.
func (s *Scheduler) Pending() int { return len(s.heap) }

// Step runs the next event, advancing virtual time to it. It returns false
// when no events remain.
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(*event)
		if e.cancelled {
			continue
		}
		delete(s.byID, e.id)
		s.now = e.at
		e.fn()
		return true
	}
	return false
}

// RunUntil executes events until virtual time would exceed deadline or no
// events remain. The clock is left at min(deadline, time of last event).
// Events scheduled exactly at deadline do run.
func (s *Scheduler) RunUntil(deadline Real) {
	for len(s.heap) > 0 {
		// Peek.
		next := s.heap[0]
		if next.cancelled {
			heap.Pop(&s.heap)
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}
