// Package simtime provides the virtual-time substrate for the simulator:
// a distinction between real time and per-node local (drifting, possibly
// wrapping) clock readings, wrap-aware interval arithmetic, and a
// deterministic discrete-event scheduler.
//
// The paper's model distinguishes t (real time) and τ (a node's local
// reading), related through a bounded drift ρ:
//
//	(1−ρ)(v−u) ≤ τ(v)−τ(u) ≤ (1+ρ)(v−u)
//
// Real and Local are distinct types so that protocol code cannot
// accidentally mix frames of reference.
package simtime

import "fmt"

// Real is a point in virtual real time, in ticks. One tick is an abstract
// unit; scenarios typically set d (the message-delivery bound) to 1000
// ticks so that a tick reads as a microsecond when d = 1ms.
type Real int64

// Local is a reading of some node's local clock, in the same tick unit.
// Local readings at different nodes are not comparable with each other;
// only intervals measured on the same clock are meaningful, matching the
// paper's model where "the actual reading of the various timers may be
// arbitrarily apart, but their relative rate is bounded".
type Local int64

// Duration is a span of time in ticks. It is used for both real-time and
// local-time intervals; the drift bound makes the two interchangeable up
// to a (1±ρ) factor, which the paper folds into d.
type Duration int64

// Sub returns the elapsed local time from then to now on a non-wrapping
// clock.
func (now Local) Sub(then Local) Duration { return Duration(now - then) }

// Add advances a local reading by dl.
func (t Local) Add(dl Duration) Local { return t + Local(dl) }

// Add advances a real-time point by dl.
func (t Real) Add(dl Duration) Real { return t + Real(dl) }

// Sub returns the elapsed real time from then to now.
func (now Real) Sub(then Real) Duration { return Duration(now - then) }

// WrapSub returns the elapsed local time from then to now on a clock that
// wraps at modulus wrap (wrap == 0 means the clock does not wrap). The
// result is correct as long as the true elapsed time is smaller than
// wrap/2, which the paper guarantees by assuming "the local time wrap
// around is larger than a constant factor of the maximal interval of time
// need to be measured".
func WrapSub(now, then Local, wrap Duration) Duration {
	if wrap == 0 {
		return now.Sub(then)
	}
	d := (int64(now) - int64(then)) % int64(wrap)
	if d < 0 {
		d += int64(wrap)
	}
	// Intervals longer than wrap/2 are interpreted as negative (a reading
	// from the "future", e.g. transient garbage).
	if d > int64(wrap)/2 {
		d -= int64(wrap)
	}
	return Duration(d)
}

// WrapAdd advances a local reading by dl on a clock wrapping at wrap.
func WrapAdd(t Local, dl Duration, wrap Duration) Local {
	if wrap == 0 {
		return t.Add(dl)
	}
	v := (int64(t) + int64(dl)) % int64(wrap)
	if v < 0 {
		v += int64(wrap)
	}
	return Local(v)
}

// Clock models one node's hardware clock: a local reading that advances at
// rate within [1−ρ, 1+ρ] of real time, from an arbitrary offset, optionally
// wrapping at a modulus. The zero value is a perfect, non-wrapping clock
// starting at local time 0.
type Clock struct {
	// OffsetTicks is the local reading at real time 0.
	OffsetTicks Local
	// RateNum/RateDen express the drift rate as a rational so that the
	// simulation is exactly deterministic (no floating point). A perfect
	// clock has RateNum == RateDen. Zero values mean rate 1.
	RateNum, RateDen int64
	// Wrap is the wrap-around modulus of the local reading; 0 disables
	// wrapping.
	Wrap Duration
}

// rate returns the numerator/denominator, defaulting to 1/1.
func (c Clock) rate() (int64, int64) {
	if c.RateNum == 0 || c.RateDen == 0 {
		return 1, 1
	}
	return c.RateNum, c.RateDen
}

// ReadAt returns the local reading at real time t.
func (c Clock) ReadAt(t Real) Local {
	num, den := c.rate()
	elapsed := int64(t) * num / den
	return WrapAdd(c.OffsetTicks, Duration(elapsed), c.Wrap)
}

// RealAfter converts a local duration into the real duration that must
// elapse for the local clock to advance by dl. It is used to schedule
// timers expressed in local time.
func (c Clock) RealAfter(dl Duration) Duration {
	num, den := c.rate()
	// ceil(dl * den / num) so the timer never fires early in local terms.
	v := (int64(dl)*den + num - 1) / num
	return Duration(v)
}

// DriftClock builds a clock with drift expressed in parts-per-million.
// ppm = +100 means the clock runs 100 ppm fast; negative means slow.
func DriftClock(offset Local, ppm int64, wrap Duration) Clock {
	const million = 1_000_000
	return Clock{OffsetTicks: offset, RateNum: million + ppm, RateDen: million, Wrap: wrap}
}

func (c Clock) String() string {
	num, den := c.rate()
	return fmt.Sprintf("Clock(offset=%d rate=%d/%d wrap=%d)", c.OffsetTicks, num, den, c.Wrap)
}
