package simtime

import "testing"

func BenchmarkSchedulerAtStep(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.At(Real(i), fn)
		s.Step()
	}
}

func BenchmarkSchedulerMixed(b *testing.B) {
	// The simulator's actual pattern: bursts of schedules, occasional
	// cancels, interleaved steps.
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id1 := s.At(Real(i+10), fn)
		s.At(Real(i+5), fn)
		s.At(Real(i+20), fn)
		s.Cancel(id1)
		s.Step()
		s.Step()
	}
}

func BenchmarkClockReadAt(b *testing.B) {
	c := DriftClock(12345, 137, 1<<40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.ReadAt(Real(i))
	}
}

func BenchmarkWrapSub(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = WrapSub(Local(i), Local(i/2), 1<<30)
	}
}
