package simtime

import "testing"

func BenchmarkSchedulerAtStep(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.At(Real(i), fn)
		s.Step()
	}
}

func BenchmarkSchedulerMixed(b *testing.B) {
	// The simulator's actual pattern: bursts of schedules, occasional
	// cancels, interleaved steps.
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id1 := s.At(Real(i+10), fn)
		s.At(Real(i+5), fn)
		s.At(Real(i+20), fn)
		s.Cancel(id1)
		s.Step()
		s.Step()
	}
}

// BenchmarkSchedulerPostStep measures the uncancellable fast path the
// transport uses for message deliveries: no EventID, no map entry, and no
// per-event allocation (the heap stores events by value).
func BenchmarkSchedulerPostStep(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Post(Real(i), fn)
		s.Step()
	}
}

type nopHandler struct{}

func (nopHandler) RunEvent() {}

// BenchmarkSchedulerPostHandlerStep is the handler variant (what pooled
// deliveries use).
func BenchmarkSchedulerPostHandlerStep(b *testing.B) {
	s := NewScheduler()
	var h nopHandler
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.PostHandler(Real(i), h)
		s.Step()
	}
}

// BenchmarkSchedulerDeepQueue schedules into a standing queue of 4096
// events — the heap-depth regime of an n=64 committee mid-agreement.
func BenchmarkSchedulerDeepQueue(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < 4096; i++ {
		s.Post(Real(i*1000), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Post(s.Now()+Real(500), fn)
		s.Step()
	}
}

func BenchmarkClockReadAt(b *testing.B) {
	c := DriftClock(12345, 137, 1<<40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.ReadAt(Real(i))
	}
}

func BenchmarkWrapSub(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = WrapSub(Local(i), Local(i/2), 1<<30)
	}
}
