// Package msglog implements the time-stamped message log every node keeps:
// reception records per (kind, G, m, p, k) with distinct-sender counting
// over sliding local-time windows, shortest-interval queries (Block L of
// Initiator-Accept), and age-based decay (the cleanup rules).
//
// The paper requires each node to "record the local-time at which it
// receives each message" and to evaluate conditions of the form "received
// X from ≥ c distinct nodes in the interval [τq − α, τq]". Records with
// timestamps in the future (possible only as transient-fault residue) are
// "clearly wrong" and are ignored by window queries and removed by decay.
package msglog

import (
	"sort"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// Key identifies one message class. For Initiator-Accept messages P and K
// are zero; for msgd-broadcast messages M, P, K identify the triple.
type Key struct {
	Kind protocol.MsgKind
	G    protocol.NodeID
	M    protocol.Value
	P    protocol.NodeID
	K    int
}

// KeyOf derives the log key from a wire message.
func KeyOf(m protocol.Message) Key {
	switch m.Kind {
	case protocol.Support, protocol.Approve, protocol.Ready, protocol.Initiator:
		return Key{Kind: m.Kind, G: m.G, M: m.M}
	default:
		return Key{Kind: m.Kind, G: m.G, M: m.M, P: m.P, K: m.K}
	}
}

// Log stores reception records. The zero value is not usable; use New.
type Log struct {
	wrap simtime.Duration
	recs map[Key]map[protocol.NodeID]simtime.Local
}

// New returns an empty log whose window arithmetic honors the given
// local-clock wrap modulus (0 disables wrapping).
func New(wrap simtime.Duration) *Log {
	return &Log{wrap: wrap, recs: make(map[Key]map[protocol.NodeID]simtime.Local)}
}

// Record notes that sender's message for key was received at local time
// now. Repeated messages from the same sender keep only the latest
// reception ("multiple messages sent by an individual node are ignored").
func (l *Log) Record(key Key, sender protocol.NodeID, now simtime.Local) {
	m, ok := l.recs[key]
	if !ok {
		m = make(map[protocol.NodeID]simtime.Local)
		l.recs[key] = m
	}
	m[sender] = now
}

// InjectRaw inserts an arbitrary record, bypassing invariants. It exists
// solely for the transient-fault injector, which fills logs with spurious
// residue (including future timestamps).
func (l *Log) InjectRaw(key Key, sender protocol.NodeID, at simtime.Local) {
	l.Record(key, sender, at)
}

// Has reports whether a record from sender exists for key.
func (l *Log) Has(key Key, sender protocol.NodeID) bool {
	_, ok := l.recs[key][sender]
	return ok
}

// CountWithin returns the number of distinct senders whose latest record
// for key lies in the window [now−width, now]. Future-stamped records are
// not counted.
func (l *Log) CountWithin(key Key, width simtime.Duration, now simtime.Local) int {
	n := 0
	for _, at := range l.recs[key] {
		age := simtime.WrapSub(now, at, l.wrap)
		if age >= 0 && age <= width {
			n++
		}
	}
	return n
}

// CountAll returns the number of distinct senders recorded for key with a
// non-future timestamp, regardless of age (Block N of Initiator-Accept is
// untimed; staleness is handled by decay).
func (l *Log) CountAll(key Key, now simtime.Local) int {
	n := 0
	for _, at := range l.recs[key] {
		if simtime.WrapSub(now, at, l.wrap) >= 0 {
			n++
		}
	}
	return n
}

// KthNewest returns the reception time of the k-th most recent distinct
// sender for key (k ≥ 1), ignoring future-stamped records. The second
// result is false when fewer than k distinct senders are recorded.
//
// It drives the shortest-interval condition of Line L1: the minimal α such
// that [now−α, now] contains ≥ c distinct senders is now − KthNewest(c).
func (l *Log) KthNewest(key Key, k int, now simtime.Local) (simtime.Local, bool) {
	if k <= 0 {
		return 0, false
	}
	ages := make([]simtime.Duration, 0, len(l.recs[key]))
	for _, at := range l.recs[key] {
		age := simtime.WrapSub(now, at, l.wrap)
		if age >= 0 {
			ages = append(ages, age)
		}
	}
	if len(ages) < k {
		return 0, false
	}
	sort.Slice(ages, func(i, j int) bool { return ages[i] < ages[j] })
	return simtime.WrapAdd(now, -ages[k-1], l.wrap), true
}

// Senders returns the distinct senders recorded for key in unspecified
// order.
func (l *Log) Senders(key Key) []protocol.NodeID {
	out := make([]protocol.NodeID, 0, len(l.recs[key]))
	for id := range l.recs[key] {
		out = append(out, id)
	}
	return out
}

// DecayOlderThan removes every record whose age exceeds maxAge, as well as
// future-stamped records (clearly wrong per the paper). It implements the
// cleanup rules ("Remove any value or message that is older than Δrmv").
func (l *Log) DecayOlderThan(maxAge simtime.Duration, now simtime.Local) {
	for key, m := range l.recs {
		for sender, at := range m {
			age := simtime.WrapSub(now, at, l.wrap)
			if age < 0 || age > maxAge {
				delete(m, sender)
			}
		}
		if len(m) == 0 {
			delete(l.recs, key)
		}
	}
}

// RemoveMatching deletes all records whose key satisfies pred. Line N4
// uses it to "remove all (G,m) messages".
func (l *Log) RemoveMatching(pred func(Key) bool) {
	for key := range l.recs {
		if pred(key) {
			delete(l.recs, key)
		}
	}
}

// Keys returns the keys currently holding at least one record.
func (l *Log) Keys() []Key {
	out := make([]Key, 0, len(l.recs))
	for k := range l.recs {
		out = append(out, k)
	}
	return out
}

// Len returns the total number of records across all keys.
func (l *Log) Len() int {
	n := 0
	for _, m := range l.recs {
		n += len(m)
	}
	return n
}

// Clear removes everything (used when an instance resets).
func (l *Log) Clear() {
	l.recs = make(map[Key]map[protocol.NodeID]simtime.Local)
}
