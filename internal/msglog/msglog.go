// Package msglog implements the time-stamped message log every node keeps:
// reception records per (kind, G, m, p, k) with distinct-sender counting
// over sliding local-time windows, shortest-interval queries (Block L of
// Initiator-Accept), and age-based decay (the cleanup rules).
//
// The paper requires each node to "record the local-time at which it
// receives each message" and to evaluate conditions of the form "received
// X from ≥ c distinct nodes in the interval [τq − α, τq]". Records with
// timestamps in the future (possible only as transient-fault residue) are
// "clearly wrong" and are ignored by window queries and removed by decay.
//
// Layout. Each key holds one record per distinct sender (the latest
// reception), kept in a slice sorted oldest→newest by wrap-aware reception
// time, plus a sender index for O(1) duplicate replacement. Window queries
// are two binary searches over the sorted slice — O(log s) for s senders,
// with no allocation — because counting distinct senders in [now−α, now]
// is exactly counting records in that age range. Keys iterate in first-
// recording order, so enumeration is deterministic (maps are not).
//
// Wrapped clocks. Sortedness is maintained with the same WrapSub
// arithmetic the queries use, so results are exact whenever the live
// records of a key span less than wrap/2 — the paper's own premise ("the
// local time wrap around is larger than a constant factor of the maximal
// interval of time need to be measured"), guaranteed in steady state by
// decay at Δrmv ≪ wrap. Arbitrary transient residue can violate that
// span until the first decay sweep; during that interval the slice may
// not be age-sorted and windowed counts can be inexact in either
// direction (never exceeding the number of distinct senders — each is
// recorded once). That is within the self-stabilization model: a
// transiently corrupted node may behave arbitrarily until cleanup, and
// DecayOlderThan removes the out-of-span records and re-sorts the
// survivors, restoring exactness.
package msglog

import (
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// Key identifies one message class. For Initiator-Accept messages P and K
// are zero; for msgd-broadcast messages M, P, K identify the triple.
type Key struct {
	Kind protocol.MsgKind
	G    protocol.NodeID
	M    protocol.Value
	P    protocol.NodeID
	K    int
}

// KeyOf derives the log key from a wire message.
func KeyOf(m protocol.Message) Key {
	switch m.Kind {
	case protocol.Support, protocol.Approve, protocol.Ready, protocol.Initiator:
		return Key{Kind: m.Kind, G: m.G, M: m.M}
	default:
		return Key{Kind: m.Kind, G: m.G, M: m.M, P: m.P, K: m.K}
	}
}

// rec is one reception record: the latest local receive time of one
// distinct sender.
type rec struct {
	at     simtime.Local
	sender protocol.NodeID
}

// seenWords sizes the inline sender bitmap: 4 words cover IDs < 256, the
// full committee range the substrate targets, without a pointer chase on
// the per-arrival duplicate test. Larger IDs spill to the overflow slice.
const seenWords = 4

// keyLog holds one key's records, sorted oldest→newest (wrap-aware).
// seen is a sender bitmap standing in for the per-key sender map the log
// used to carry: senders are dense in [0, N) (the transports authenticate
// identities), so one bit per sender answers the duplicate test in O(1)
// with no hashing and no per-key map to allocate, walk, or garbage-collect
// — the per-arrival cost that dominated large-n runs (DESIGN.md §5).
type keyLog struct {
	recs     []rec
	seen     [seenWords]uint64
	seenOver []uint64 // bits for senders ≥ 64·seenWords
}

// hasSender reports whether sender holds a record (bitmap test).
func (kl *keyLog) hasSender(sender protocol.NodeID) bool {
	w := uint(sender) >> 6
	if w < seenWords {
		return kl.seen[w]&(1<<(uint(sender)&63)) != 0
	}
	w -= seenWords
	return int(w) < len(kl.seenOver) && kl.seenOver[w]&(1<<(uint(sender)&63)) != 0
}

// setSender marks sender as recorded, growing the overflow as needed.
func (kl *keyLog) setSender(sender protocol.NodeID) {
	w := uint(sender) >> 6
	if w < seenWords {
		kl.seen[w] |= 1 << (uint(sender) & 63)
		return
	}
	w -= seenWords
	for int(w) >= len(kl.seenOver) {
		kl.seenOver = append(kl.seenOver, 0)
	}
	kl.seenOver[w] |= 1 << (uint(sender) & 63)
}

// clearSender removes sender from the bitmap.
func (kl *keyLog) clearSender(sender protocol.NodeID) {
	w := uint(sender) >> 6
	if w < seenWords {
		kl.seen[w] &^= 1 << (uint(sender) & 63)
		return
	}
	w -= seenWords
	if int(w) < len(kl.seenOver) {
		kl.seenOver[w] &^= 1 << (uint(sender) & 63)
	}
}

// Log stores reception records. The zero value is not usable; use New.
type Log struct {
	wrap simtime.Duration
	recs map[Key]*keyLog
	// order lists live keys in first-recording order, making Keys and
	// ForEachKey deterministic.
	order []Key
	total int
	// gen invalidates Handles whenever a key's records are dropped
	// wholesale (Clear, decay-to-empty, RemoveMatching).
	gen uint64
}

// Handle is a cached resolution of one key, letting a caller that queries
// the same key repeatedly (the fixed-point evaluators) skip the hash of
// the full Key struct on every operation. A Handle belongs to the Log
// that the caller uses it with; the zero-ish value from NewHandle is
// valid and resolves lazily.
type Handle struct {
	key  Key
	kl   *keyLog
	gen  uint64
	hint int
}

// NewHandle returns an unresolved handle for key.
func (l *Log) NewHandle(key Key) Handle { return Handle{key: key} }

// NewHandleSized is NewHandle with a capacity hint: when the key's storage
// is first created through this handle, its record slice is presized for
// hint senders, sparing the quorum-sized keys (echo waves collect ~n
// records each) the append-growth copies.
func (l *Log) NewHandleSized(key Key, hint int) Handle {
	return Handle{key: key, hint: hint}
}

// resolve returns the key's records, consulting the cache first. With
// create it installs an empty keyLog (Record path); otherwise it returns
// nil when the key has none. Key deletions bump l.gen, so a stale pointer
// is never used after its keyLog left the map.
func (l *Log) resolve(h *Handle, create bool) *keyLog {
	if h.kl != nil && h.gen == l.gen {
		return h.kl
	}
	kl, ok := l.recs[h.key]
	if !ok {
		if !create {
			return nil
		}
		kl = &keyLog{}
		if h.hint > 0 {
			kl.recs = make([]rec, 0, h.hint)
		}
		l.recs[h.key] = kl
		l.order = append(l.order, h.key)
	}
	h.kl, h.gen = kl, l.gen
	return kl
}

// RecordVia is Record through a cached handle.
func (l *Log) RecordVia(h *Handle, sender protocol.NodeID, now simtime.Local) {
	l.record(l.resolve(h, true), sender, now)
}

// CountWithinVia is CountWithin through a cached handle.
func (l *Log) CountWithinVia(h *Handle, width simtime.Duration, now simtime.Local) int {
	kl := l.resolve(h, false)
	if kl == nil {
		return 0
	}
	return kl.firstFuture(now, l.wrap) - kl.firstWithin(width, now, l.wrap)
}

// LenVia returns how many records the handle's key holds, in O(1). It is
// the incremental support counter of the threshold fast paths: bumped on
// insert, adjusted when decay closes the window, and always ≥ any windowed
// count of the key (window queries only ever exclude records), so
// LenVia < c proves CountWithinVia/KthNewest would miss a threshold of c
// without running the binary searches.
func (l *Log) LenVia(h *Handle) int {
	kl := l.resolve(h, false)
	if kl == nil {
		return 0
	}
	return len(kl.recs)
}

// LenOf is LenVia by key.
func (l *Log) LenOf(key Key) int {
	if kl, ok := l.recs[key]; ok {
		return len(kl.recs)
	}
	return 0
}

// HasVia is Has through a cached handle.
func (l *Log) HasVia(h *Handle, sender protocol.NodeID) bool {
	kl := l.resolve(h, false)
	if kl == nil {
		return false
	}
	return kl.hasSender(sender)
}

// New returns an empty log whose window arithmetic honors the given
// local-clock wrap modulus (0 disables wrapping).
func New(wrap simtime.Duration) *Log {
	return &Log{wrap: wrap, recs: make(map[Key]*keyLog)}
}

// Record notes that sender's message for key was received at local time
// now. Repeated messages from the same sender keep only the latest
// reception ("multiple messages sent by an individual node are ignored").
func (l *Log) Record(key Key, sender protocol.NodeID, now simtime.Local) {
	h := Handle{key: key}
	l.record(l.resolve(&h, true), sender, now)
}

// record inserts (sender, now) into kl, replacing the sender's previous
// record if any. Senders must be non-negative (IDs are dense in [0, N) and
// the transports authenticate them); a negative sender is dropped.
func (l *Log) record(kl *keyLog, sender protocol.NodeID, now simtime.Local) {
	if sender < 0 {
		return
	}
	if kl.hasSender(sender) {
		// Duplicate: "multiple messages sent by an individual node are
		// ignored" — only the latest reception is kept. Duplicates cannot
		// occur from correct nodes (sends are suppressed per kind), so the
		// linear scan is off the hot path.
		kl.removeRec(sender)
		l.total--
	}
	kl.setSender(sender)
	l.total++
	// Insert in sorted position. Records arrive in (nearly) nondecreasing
	// local time, so the scan from the newest end is O(1) amortized.
	i := len(kl.recs)
	kl.recs = append(kl.recs, rec{})
	for i > 0 && simtime.WrapSub(kl.recs[i-1].at, now, l.wrap) > 0 {
		kl.recs[i] = kl.recs[i-1]
		i--
	}
	kl.recs[i] = rec{at: now, sender: sender}
}

// removeRec deletes sender's record from the slice.
func (kl *keyLog) removeRec(sender protocol.NodeID) {
	for i := len(kl.recs) - 1; i >= 0; i-- {
		if kl.recs[i].sender == sender {
			copy(kl.recs[i:], kl.recs[i+1:])
			kl.recs = kl.recs[:len(kl.recs)-1]
			return
		}
	}
}

// InjectRaw inserts an arbitrary record, bypassing invariants. It exists
// solely for the transient-fault injector, which fills logs with spurious
// residue (including future timestamps).
func (l *Log) InjectRaw(key Key, sender protocol.NodeID, at simtime.Local) {
	l.Record(key, sender, at)
}

// Has reports whether a record from sender exists for key.
func (l *Log) Has(key Key, sender protocol.NodeID) bool {
	kl, ok := l.recs[key]
	if !ok {
		return false
	}
	return kl.hasSender(sender)
}

// firstWithin returns the index of the first record with age ≤ width at
// local time now. Ages are nonincreasing along the sorted slice, so the
// predicate is monotone and a binary search applies.
func (kl *keyLog) firstWithin(width simtime.Duration, now simtime.Local, wrap simtime.Duration) int {
	lo, hi := 0, len(kl.recs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if simtime.WrapSub(now, kl.recs[mid].at, wrap) <= width {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// firstFuture returns the index of the first future-stamped record (age
// < 0) at local time now; records at and beyond it are ignored by every
// query ("clearly wrong").
func (kl *keyLog) firstFuture(now simtime.Local, wrap simtime.Duration) int {
	return kl.firstWithin(-1, now, wrap)
}

// CountWithin returns the number of distinct senders whose latest record
// for key lies in the window [now−width, now]. Future-stamped records are
// not counted. Cost: O(log s), allocation-free.
func (l *Log) CountWithin(key Key, width simtime.Duration, now simtime.Local) int {
	kl, ok := l.recs[key]
	if !ok {
		return 0
	}
	return kl.firstFuture(now, l.wrap) - kl.firstWithin(width, now, l.wrap)
}

// CountAll returns the number of distinct senders recorded for key with a
// non-future timestamp, regardless of age (Block N of Initiator-Accept is
// untimed; staleness is handled by decay).
func (l *Log) CountAll(key Key, now simtime.Local) int {
	kl, ok := l.recs[key]
	if !ok {
		return 0
	}
	return kl.firstFuture(now, l.wrap)
}

// KthNewest returns the reception time of the k-th most recent distinct
// sender for key (k ≥ 1), ignoring future-stamped records. The second
// result is false when fewer than k distinct senders are recorded.
//
// It drives the shortest-interval condition of Line L1: the minimal α such
// that [now−α, now] contains ≥ c distinct senders is now − KthNewest(c).
// Cost: O(log s), allocation-free.
func (l *Log) KthNewest(key Key, k int, now simtime.Local) (simtime.Local, bool) {
	if k <= 0 {
		return 0, false
	}
	kl, ok := l.recs[key]
	if !ok {
		return 0, false
	}
	j := kl.firstFuture(now, l.wrap)
	if j < k {
		return 0, false
	}
	return kl.recs[j-k].at, true
}

// KthNewestVia is KthNewest through a cached handle.
func (l *Log) KthNewestVia(h *Handle, k int, now simtime.Local) (simtime.Local, bool) {
	if k <= 0 {
		return 0, false
	}
	kl := l.resolve(h, false)
	if kl == nil {
		return 0, false
	}
	j := kl.firstFuture(now, l.wrap)
	if j < k {
		return 0, false
	}
	return kl.recs[j-k].at, true
}

// Senders returns the distinct senders recorded for key, oldest reception
// first (deterministic order).
func (l *Log) Senders(key Key) []protocol.NodeID {
	kl, ok := l.recs[key]
	if !ok {
		return nil
	}
	out := make([]protocol.NodeID, len(kl.recs))
	for i, r := range kl.recs {
		out[i] = r.sender
	}
	return out
}

// DecayOlderThan removes every record whose age exceeds maxAge, as well as
// future-stamped records (clearly wrong per the paper). It implements the
// cleanup rules ("Remove any value or message that is older than Δrmv")
// and, as a side effect, restores exact sortedness after transient residue
// (all survivors fit one wrap/2 span relative to now).
func (l *Log) DecayOlderThan(maxAge simtime.Duration, now simtime.Local) {
	removedKey := false
	for key, kl := range l.recs {
		kept := kl.recs[:0]
		for _, r := range kl.recs {
			age := simtime.WrapSub(now, r.at, l.wrap)
			if age < 0 || age > maxAge {
				kl.clearSender(r.sender)
				l.total--
				continue
			}
			kept = append(kept, r)
		}
		kl.recs = kept
		// Insertion sort by age: survivors are nearly sorted already, and
		// re-sorting here is what repairs any ordering damage done by
		// wrap-anomalous residue.
		for i := 1; i < len(kl.recs); i++ {
			r := kl.recs[i]
			j := i
			for j > 0 && simtime.WrapSub(now, kl.recs[j-1].at, l.wrap) < simtime.WrapSub(now, r.at, l.wrap) {
				kl.recs[j] = kl.recs[j-1]
				j--
			}
			kl.recs[j] = r
		}
		if len(kl.recs) == 0 {
			delete(l.recs, key)
			removedKey = true
		}
	}
	if removedKey {
		l.gen++
		l.compactOrder()
	}
}

// RemoveMatching deletes all records whose key satisfies pred. Line N4
// uses it to "remove all (G,m) messages".
func (l *Log) RemoveMatching(pred func(Key) bool) {
	removed := false
	for key, kl := range l.recs {
		if pred(key) {
			l.total -= len(kl.recs)
			delete(l.recs, key)
			removed = true
		}
	}
	if removed {
		l.gen++
		l.compactOrder()
	}
}

// compactOrder drops keys no longer present from the iteration order.
func (l *Log) compactOrder() {
	kept := l.order[:0]
	for _, k := range l.order {
		if _, ok := l.recs[k]; ok {
			kept = append(kept, k)
		}
	}
	l.order = kept
}

// Keys returns the keys currently holding at least one record, in
// first-recording order.
func (l *Log) Keys() []Key {
	out := make([]Key, len(l.order))
	copy(out, l.order)
	return out
}

// ForEachKey calls fn for every key currently holding at least one record,
// in first-recording order, without allocating. fn must not mutate the
// log.
func (l *Log) ForEachKey(fn func(Key)) {
	for _, k := range l.order {
		fn(k)
	}
}

// Len returns the total number of records across all keys.
func (l *Log) Len() int { return l.total }

// Clear removes everything (used when an instance resets).
func (l *Log) Clear() {
	l.recs = make(map[Key]*keyLog)
	l.order = l.order[:0]
	l.total = 0
	l.gen++
}
