package msglog

import (
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// populate fills a log with senders×waves records for one key.
func populate(l *Log, senders, waves int) {
	for w := 0; w < waves; w++ {
		for s := 0; s < senders; s++ {
			l.Record(supKey, protocol.NodeID(s), simtime.Local(w*1000+s))
		}
	}
}

func BenchmarkMsglogRecord(b *testing.B) {
	l := New(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Record(supKey, protocol.NodeID(i%31), simtime.Local(i))
	}
}

func BenchmarkMsglogCountWithin(b *testing.B) {
	l := New(0)
	populate(l, 31, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.CountWithin(supKey, 2000, 4000)
	}
}

func BenchmarkMsglogKthNewest(b *testing.B) {
	l := New(0)
	populate(l, 31, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.KthNewest(supKey, 11, 4000)
	}
}

func BenchmarkMsglogCountWithinWrapped(b *testing.B) {
	l := New(1 << 30)
	populate(l, 31, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.CountWithin(supKey, 2000, 4000)
	}
}

func BenchmarkMsglogDecay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		l := New(0)
		populate(l, 31, 8)
		b.StartTimer()
		l.DecayOlderThan(3000, 8000)
	}
}
